"""Aggregated run statistics for one core."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoreStats:
    """Everything a benchmark harness needs to report."""

    instructions: int = 0
    uops: int = 0
    cycles: int = 0
    # frontend
    fetch_bubbles: int = 0
    taken_branch_bubbles: int = 0
    direction_mispredicts: int = 0
    target_mispredicts: int = 0
    ras_mispredicts: int = 0
    indirect_mispredicts: int = 0
    branches: int = 0
    icache_stall_cycles: int = 0
    lbuf_supplied: int = 0
    # backend
    rob_stall_cycles: int = 0
    iq_stall_cycles: int = 0
    sq_stall_cycles: int = 0
    lsu_violations: int = 0
    lsu_forwards: int = 0
    memdep_delays: int = 0
    serializations: int = 0
    vector_instructions: int = 0
    vector_beats: int = 0
    # RAS (reliability) events from the memory hierarchy
    ecc_corrected: int = 0
    ecc_uncorrectable: int = 0
    parity_errors: int = 0
    ways_disabled: int = 0
    # emulator decode cache (functional front end, not the timing I$)
    decode_cache_hits: int = 0
    decode_cache_misses: int = 0

    extra: dict = field(default_factory=dict)

    #: Fields excluded from :meth:`as_comparable`: ``extra`` holds
    #: harness-side annotations (block-cache counters) and the decode
    #: cache belongs to the functional emulator, not the timing model,
    #: so neither is part of the timing-equivalence contract.
    _NON_TIMING_FIELDS = frozenset(
        {"extra", "decode_cache_hits", "decode_cache_misses"})

    def as_comparable(self) -> dict:
        """Timing-model counters as a plain dict, for equality checks.

        Two models are *stats-identical* iff their ``as_comparable()``
        dicts are equal; this is the contract the fast path is gated on.
        """
        return {name: value for name, value in vars(self).items()
                if name not in self._NON_TIMING_FIELDS}

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def branch_mispredict_rate(self) -> float:
        if not self.branches:
            return 0.0
        return self.direction_mispredicts / self.branches

    def mpki(self, event_count: int) -> float:
        """Events per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * event_count / self.instructions

    def summary(self) -> str:
        lines = [
            f"instructions      {self.instructions}",
            f"cycles            {self.cycles}",
            f"IPC               {self.ipc:.3f}",
            f"branches          {self.branches}"
            f" (mispredict {100 * self.branch_mispredict_rate:.2f}%)",
            f"taken bubbles     {self.taken_branch_bubbles}",
            f"icache stalls     {self.icache_stall_cycles}",
            f"LBUF supplied     {self.lbuf_supplied}",
            f"LSU violations    {self.lsu_violations}"
            f" forwards {self.lsu_forwards}",
        ]
        if self.decode_cache_hits or self.decode_cache_misses:
            total = self.decode_cache_hits + self.decode_cache_misses
            rate = 100 * self.decode_cache_hits / total if total else 0.0
            lines.append(
                f"decode cache      {self.decode_cache_hits} hits /"
                f" {self.decode_cache_misses} misses ({rate:.1f}%)")
        if (self.ecc_corrected or self.ecc_uncorrectable
                or self.parity_errors or self.ways_disabled):
            lines.append(
                f"RAS events        ecc_corrected {self.ecc_corrected}"
                f" uncorrectable {self.ecc_uncorrectable}"
                f" parity {self.parity_errors}"
                f" ways_disabled {self.ways_disabled}")
        return "\n".join(lines)
