"""Branch direction prediction (paper section III.A).

XT-910 uses a hybrid multi-mode predictor: SRAM banks of history-based
counters with a dynamic monitoring algorithm selecting the final result,
plus the two-level prefetch-buffer scheme (BUF1/BUF2) that hides the
one-cycle SRAM read latency so back-to-back branches predict in
consecutive cycles.

The model implements the hybrid as a bimodal table + a gshare bank with
a per-branch chooser ("dynamic monitoring"), and exposes the BUF1/BUF2
mechanism as ``consecutive_ok`` — when disabled, two conditional
branches in adjacent cycles cost a bubble, which the frontend model
charges.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DirectionConfig:
    bimodal_bits: int = 12          # 4K-entry bimodal bank
    gshare_bits: int = 12           # 4K-entry gshare bank
    history_bits: int = 12
    chooser_bits: int = 12
    two_level_buffers: bool = True  # BUF1/BUF2 prefetch scheme


@dataclass
class DirectionStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions


class _CounterTable:
    """2-bit saturating counter bank (an SRAM bank in hardware)."""

    def __init__(self, index_bits: int, init: int = 1):
        self.mask = (1 << index_bits) - 1
        self.table = [init] * (1 << index_bits)

    def predict(self, index: int) -> bool:
        return self.table[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self.mask
        value = self.table[i]
        if taken:
            self.table[i] = min(value + 1, 3)
        else:
            self.table[i] = max(value - 1, 0)


class HybridDirectionPredictor:
    """Bimodal + gshare banks with a chooser (the "dynamic monitoring
    algorithm" that selects one bank's output as the final result)."""

    def __init__(self, config: DirectionConfig | None = None):
        self.config = config if config is not None else DirectionConfig()
        self._bimodal = _CounterTable(self.config.bimodal_bits)
        self._gshare = _CounterTable(self.config.gshare_bits)
        self._chooser = _CounterTable(self.config.chooser_bits, init=2)
        self._history = 0
        self._history_mask = (1 << self.config.history_bits) - 1
        self.stats = DirectionStats()

    def _gshare_index(self, pc: int) -> int:
        return (pc >> 1) ^ self._history

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at *pc*."""
        use_gshare = self._chooser.predict(pc >> 1)
        if use_gshare:
            return self._gshare.predict(self._gshare_index(pc))
        return self._bimodal.predict(pc >> 1)

    def update(self, pc: int, taken: bool) -> bool:
        """Train with the real outcome; returns True iff mispredicted."""
        bimodal_pred = self._bimodal.predict(pc >> 1)
        gshare_index = self._gshare_index(pc)
        gshare_pred = self._gshare.predict(gshare_index)
        used_gshare = self._chooser.predict(pc >> 1)
        prediction = gshare_pred if used_gshare else bimodal_pred

        self.stats.predictions += 1
        mispredicted = prediction != taken
        if mispredicted:
            self.stats.mispredictions += 1

        # Chooser trains toward whichever bank was right (when they differ).
        if bimodal_pred != gshare_pred:
            self._chooser.update(pc >> 1, gshare_pred == taken)
        self._bimodal.update(pc >> 1, taken)
        self._gshare.update(gshare_index, taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return mispredicted

    @property
    def consecutive_ok(self) -> bool:
        """Can two adjacent-cycle branches both be predicted?

        True with the BUF1/BUF2 two-level prefetch buffers (section
        III.A, Fig. 6); without them the SRAM read latency inserts a
        one-cycle gap between dependent predictions.
        """
        return self.config.two_level_buffers
