"""Core presets: the XT-910 and the comparison cores of Figs. 17-19.

Each preset instantiates the same pipeline model with that core's
published microarchitecture parameters (issue width, pipeline depth,
orderedness, predictor and cache sizes).  Absolute scores are not
comparable with hardware, but ratios between presets on the same
binary reproduce the shape of the paper's cross-core comparisons.

Parameters are from the paper (XT-910), vendor documentation and the
usual public microarchitecture references for the others.
"""

from __future__ import annotations

from dataclasses import replace

from ..mem.dram import DramConfig
from ..mem.hierarchy import MemHierConfig
from ..mem.prefetch import PrefetchConfig
from .branch import DirectionConfig
from .btb import BtbConfig
from .config import CoreConfig, FrontendConfig, FuConfig, LsuConfig
from .loopbuf import LoopBufferConfig


def _mem(l1_kb: int = 64, l2_kb: int = 2048, dram_latency: int = 160,
         prefetch: bool = True, pf_distance: int = 8,
         mshrs: int = 4) -> MemHierConfig:
    pf = PrefetchConfig(distance=pf_distance) if prefetch \
        else PrefetchConfig.disabled()
    l2pf = PrefetchConfig(distance=pf_distance * 2, max_depth=64) \
        if prefetch else PrefetchConfig.disabled()
    return MemHierConfig(
        l1i_size=l1_kb << 10, l1d_size=l1_kb << 10,
        l2_size=l2_kb << 10,
        dram=DramConfig(latency=dram_latency),
        l1_prefetch=pf, l2_prefetch=l2pf, mshrs=mshrs)


def xt910(l1_kb: int = 64, l2_kb: int = 2048,
          vector: bool = True, xt_extensions: bool = True,
          dram_latency: int = 160) -> CoreConfig:
    """The XT-910: 12-stage, 3-decode, 8-issue OoO, RV64GCV (+custom)."""
    return CoreConfig(
        name="xt910" + ("" if vector else "-novec"),
        frequency_mhz=2500,
        out_of_order=True,
        decode_width=3, rename_width=4, issue_width=8, retire_width=4,
        rob_entries=192, iq_entries=48,
        frontend=FrontendConfig(),
        fu=FuConfig(),
        lsu=LsuConfig(),
        mem=_mem(l1_kb, l2_kb, dram_latency),
        vector_enabled=vector,
        xt_extensions=xt_extensions,
    )


def xt910_base_isa(**kw) -> CoreConfig:
    """XT-910 with the non-standard extensions disabled (Fig. 20 mode:
    'fully compatible with the standard RISC-V')."""
    cfg = xt910(xt_extensions=False, **kw)
    return replace(cfg, name="xt910-baseisa")


def u74(l1_kb: int = 32, l2_kb: int = 2048) -> CoreConfig:
    """SiFive U74-like: dual-issue in-order, 8-stage (Fig. 17 reference:
    'by far the highest performance RISC-V processor available')."""
    return CoreConfig(
        name="u74",
        frequency_mhz=1500,
        out_of_order=False,
        decode_width=2, rename_width=2, issue_width=2, retire_width=2,
        rob_entries=8, iq_entries=8,
        frontend=FrontendConfig(
            fetch_bytes=8, fetch_insts=4, ibuf_entries=8, depth=5,
            direction=DirectionConfig(bimodal_bits=10, gshare_bits=10,
                                      history_bits=10, chooser_bits=10),
            btb=BtbConfig(l0_entries=0, l1_entries=256, l1_ways=2),
            ras_entries=6, indirect_entries=64,
            loop_buffer=LoopBufferConfig(enabled=False),
            taken_bubble_l1=1, taken_bubble_miss=2, mispredict_extra=1),
        fu=FuConfig(alu_count=2, fpu_count=1, mul_latency=3,
                    div_latency_min=6, div_latency_max=34),
        lsu=LsuConfig(lq_entries=4, sq_entries=4, dual_issue=False,
                      pseudo_dual_store=False, memdep_predictor=False,
                      load_to_use=2),
        mem=_mem(l1_kb, l2_kb, prefetch=True, pf_distance=4),
        vector_enabled=False, xt_extensions=False,
    )


def u54(l1_kb: int = 32, l2_kb: int = 2048) -> CoreConfig:
    """SiFive U54-like: single-issue in-order 5-stage."""
    cfg = u74(l1_kb, l2_kb)
    return replace(
        cfg, name="u54", decode_width=1, rename_width=1, issue_width=1,
        retire_width=1,
        frontend=replace(cfg.frontend, depth=3, fetch_bytes=4, fetch_insts=2,
                         direction=DirectionConfig(bimodal_bits=8,
                                                   gshare_bits=8,
                                                   history_bits=6,
                                                   chooser_bits=8),
                         btb=BtbConfig(l0_entries=0, l1_entries=64,
                                       l1_ways=2),
                         taken_bubble_l1=2, taken_bubble_miss=3),
        fu=FuConfig(alu_count=1, fpu_count=1, bju_count=1, mul_latency=5,
                    div_latency_min=8, div_latency_max=64),
        lsu=replace(cfg.lsu, load_to_use=3),
    )


def cortex_a73(l1_kb: int = 64, l2_kb: int = 2048) -> CoreConfig:
    """Cortex-A73-like: 2-decode out-of-order, 11-stage, strong memory
    system (the paper's primary non-RISC-V reference, section X)."""
    return CoreConfig(
        name="cortex-a73",
        frequency_mhz=2400,
        out_of_order=True,
        decode_width=2, rename_width=4, issue_width=7, retire_width=4,
        rob_entries=64, iq_entries=40,
        frontend=FrontendConfig(
            fetch_bytes=16, fetch_insts=4, ibuf_entries=24, depth=6,
            direction=DirectionConfig(bimodal_bits=13, gshare_bits=13,
                                      history_bits=13, chooser_bits=13),
            btb=BtbConfig(l0_entries=8, l1_entries=2048, l1_ways=4),
            ras_entries=16, indirect_entries=1024,
            loop_buffer=LoopBufferConfig(enabled=True, entries=32),
            mispredict_extra=3),
        fu=FuConfig(alu_count=2, fpu_count=2, mul_latency=3,
                    div_latency_min=4, div_latency_max=20,
                    fp_latency=3, fmul_latency=4),
        lsu=LsuConfig(lq_entries=32, sq_entries=16, dual_issue=True,
                      pseudo_dual_store=False, memdep_predictor=True,
                      load_to_use=3),
        # The Kirin-970 testbed's mature mobile memory path: lower
        # effective DRAM latency and the A73's 8-entry linefill buffer.
        mem=_mem(l1_kb, l2_kb, dram_latency=135, pf_distance=12, mshrs=8),
        vector_enabled=False, xt_extensions=False,
    )


def cortex_a55(l1_kb: int = 64, l2_kb: int = 512) -> CoreConfig:
    """Cortex-A55-like: dual-issue in-order, 8-stage."""
    cfg = u74(l1_kb, l2_kb)
    return replace(
        cfg, name="cortex-a55",
        frontend=replace(cfg.frontend, depth=5,
                         btb=BtbConfig(l0_entries=8, l1_entries=512,
                                       l1_ways=2)),
        lsu=replace(cfg.lsu, load_to_use=3, dual_issue=True),
        mem=_mem(l1_kb, l2_kb, pf_distance=6),
    )


def swerv(l1_kb: int = 32, l2_kb: int = 256) -> CoreConfig:
    """Western Digital SweRV-like: 2-way superscalar 9-stage in-order."""
    cfg = u74(l1_kb, l2_kb)
    return replace(
        cfg, name="swerv",
        frontend=replace(cfg.frontend, depth=6, mispredict_extra=2),
        mem=_mem(l1_kb, l2_kb, prefetch=False),
    )


def cortex_a53(l1_kb: int = 32, l2_kb: int = 1024) -> CoreConfig:
    """Cortex-A53-like: dual-issue in-order 8-stage, weaker frontend."""
    cfg = u74(l1_kb, l2_kb)
    return replace(
        cfg, name="cortex-a53",
        frontend=replace(
            cfg.frontend, depth=5, fetch_bytes=8,
            direction=DirectionConfig(bimodal_bits=9, gshare_bits=9,
                                      history_bits=8, chooser_bits=9),
            btb=BtbConfig(l0_entries=0, l1_entries=256, l1_ways=2),
            taken_bubble_l1=2),
        # A53's dual-issue has restrictive pairing rules; one full-rate
        # ALU plus the BJU approximates its sustainable mix.
        fu=FuConfig(alu_count=1, fpu_count=1, mul_latency=4,
                    div_latency_min=4, div_latency_max=34),
        lsu=replace(cfg.lsu, load_to_use=3),
        mem=_mem(l1_kb, l2_kb, pf_distance=4),
    )


def rocket(l1_kb: int = 16, l2_kb: int = 512) -> CoreConfig:
    """Berkeley Rocket-like: single-issue in-order 5-stage (the academic
    baseline the paper's related work opens with)."""
    cfg = u54(l1_kb, l2_kb)
    return replace(
        cfg, name="rocket",
        frontend=replace(cfg.frontend,
                         direction=DirectionConfig(bimodal_bits=9,
                                                   gshare_bits=9,
                                                   history_bits=7,
                                                   chooser_bits=9),
                         btb=BtbConfig(l0_entries=0, l1_entries=64,
                                       l1_ways=2),
                         ras_entries=2),
        mem=_mem(l1_kb, l2_kb, prefetch=False),
    )


PRESETS = {
    "xt910": xt910,
    "xt910-novec": lambda **kw: xt910(vector=False, **kw),
    "xt910-baseisa": xt910_base_isa,
    "u74": u74,
    "u54": u54,
    "cortex-a73": cortex_a73,
    "cortex-a55": cortex_a55,
    "cortex-a53": cortex_a53,
    "swerv": swerv,
    "rocket": rocket,
}


def get_preset(name: str, **kw) -> CoreConfig:
    try:
        return PRESETS[name](**kw)
    except KeyError:
        raise KeyError(
            f"unknown core preset {name!r}; have {sorted(PRESETS)}") from None
