"""Declarative microarchitecture configs (YAML/JSON) for CoreConfig.

Every knob the paper names — issue/decode/retire width, ROB/IQ sizes,
BTB and loop-buffer geometry, L1/L2 sizes, prefetch streams, DRAM
latency, vector slices and VLEN — is expressible as a validated config
*document*: a nested mapping that mirrors the
:class:`~repro.uarch.config.CoreConfig` dataclass tree.  The schema is
derived from the dataclasses themselves (``schema()``), so a new knob
added to the model is automatically a legal document key and a typo is
automatically an "unknown key" error — the two can never drift.

Documents compose the TBM way (AmbiML/trace-based-model): a *base*
document (``--uarch base.yaml``) plus any number of *overlay*
documents (``--extend overlay.yaml``).  Overlays are partial: scalars
overwrite, nested mappings merge key-by-key, and a mapping carrying
``replace: true`` replaces the whole object instead of merging into it.

The bundled Python presets (:mod:`repro.uarch.presets`) remain the
ground truth; the committed files under ``configs/`` are their dumped
form, and :func:`load_config` of each is asserted *equal* to the
constructor output (dataclass equality, hence golden-stats
bit-identity) by tests and the ``config-validate`` CI job.

``config_digest`` canonicalizes a document to sorted-key JSON and
hashes it — the config half of the (program, config, tier) key used by
the ``repro explore`` result store and the service result cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import typing
from typing import Any, Iterator, Mapping

from .config import CoreConfig
from .presets import PRESETS, get_preset

try:
    import yaml
except ImportError:  # minimal environments: JSON documents still work
    yaml = None  # type: ignore[assignment]

#: Bump when the document schema changes incompatibly; part of every
#: config digest so stale cached sweep results can never be replayed
#: against a reinterpreted document.
SCHEMA_VERSION = 1

#: Top-level keys that are documentation, not knobs.
_META_KEYS = frozenset({"description"})

#: The overlay-merge marker (TBM semantics): a mapping containing
#: ``replace: true`` replaces the base object instead of merging.
_REPLACE_KEY = "replace"

#: Width-like knobs: must be 1..64 (an "out-of-range width" is the
#: canonical drive-by YAML edit the validator exists to catch).
_WIDTH_FIELDS = frozenset({
    "decode_width", "rename_width", "issue_width", "retire_width",
    "fetch_insts", "alu_count", "bju_count", "fpu_count", "vec_slices",
})

#: Knobs that must be strictly positive (zero would be a degenerate,
#: not-a-core configuration the timing model does not defend against).
_POSITIVE_FIELDS = frozenset({
    "frequency_mhz", "rob_entries", "iq_entries", "phys_int_regs",
    "fetch_bytes", "ibuf_entries", "depth", "line_size",
    "l1i_size", "l1i_assoc", "l1d_size", "l1d_assoc",
    "l2_size", "l2_assoc", "lq_entries", "sq_entries",
    "utlb_entries", "jtlb_entries", "jtlb_ways", "asid_bits",
    "bytes_per_cycle", "streams", "max_depth", "distance",
    "mul_latency", "div_latency_min", "div_latency_max",
    "fp_latency", "fmul_latency", "fdiv_latency",
    "valu_latency", "vmul_latency", "vfp_latency", "vfmul_latency",
    "vdiv_latency", "vperm_latency", "vreduce_latency",
    "mshrs", "capture_threshold",
})

#: String knobs with a fixed vocabulary.
_CHOICE_FIELDS: dict[str, frozenset[str]] = {
    "mode": frozenset({"global", "multi"}),
}

#: Power-of-two knobs (the RVV spec requires it for VLEN).
_POW2_FIELDS = frozenset({"vlen"})


class UconfigError(ValueError):
    """A config document failed validation.

    ``problems`` lists every independent issue (dotted path + message),
    so a drive-by edit that breaks three knobs is reported as three
    problems in one round trip, not one per rerun.
    """

    def __init__(self, problems: list[str], source: str | None = None):
        self.problems = list(problems)
        self.source = source
        where = f" in {source}" if source else ""
        lines = [f"{len(self.problems)} config problem(s){where}:"]
        lines += [f"  - {problem}" for problem in self.problems]
        super().__init__("\n".join(lines))


# -- schema ------------------------------------------------------------------


def _type_hints(cls: type) -> dict[str, Any]:
    """Resolved field types (``from __future__ import annotations``
    stores them as strings)."""
    return typing.get_type_hints(cls)


def _field_types(cls: type) -> dict[str, Any]:
    hints = _type_hints(cls)
    return {f.name: hints[f.name] for f in dataclasses.fields(cls)}


def _walk_schema(cls: type, prefix: str) -> Iterator[tuple[str, str]]:
    for name, ftype in _field_types(cls).items():
        path = f"{prefix}{name}"
        if dataclasses.is_dataclass(ftype):
            yield from _walk_schema(ftype, f"{path}.")
        else:
            yield path, ftype.__name__


def schema() -> dict[str, str]:
    """Every settable knob as ``dotted.path -> type name``.

    Derived from the :class:`CoreConfig` dataclass tree, so this is by
    construction the complete, current knob surface.
    """
    return dict(_walk_schema(CoreConfig, ""))


# -- validation --------------------------------------------------------------


def _check_leaf(path: str, name: str, ftype: Any, value: Any,
                problems: list[str]) -> None:
    if ftype is bool:
        if not isinstance(value, bool):
            problems.append(f"{path}: expected bool, got "
                            f"{type(value).__name__} {value!r}")
        return
    if ftype is int:
        if isinstance(value, bool) or not isinstance(value, int):
            problems.append(f"{path}: expected int, got "
                            f"{type(value).__name__} {value!r}")
            return
        if name in _WIDTH_FIELDS and not 1 <= value <= 64:
            problems.append(f"{path}: width {value} out of range 1..64")
        elif name in _POSITIVE_FIELDS and value < 1:
            problems.append(f"{path}: must be >= 1, got {value}")
        elif value < 0:
            problems.append(f"{path}: must be >= 0, got {value}")
        if name in _POW2_FIELDS and (value < 64 or value & (value - 1)):
            problems.append(f"{path}: must be a power of two >= 64, "
                            f"got {value}")
        return
    if ftype is str:
        if not isinstance(value, str):
            problems.append(f"{path}: expected str, got "
                            f"{type(value).__name__} {value!r}")
            return
        choices = _CHOICE_FIELDS.get(name)
        if choices is not None and value not in choices:
            problems.append(f"{path}: {value!r} not one of "
                            f"{sorted(choices)}")
        elif name == "name" and (not value or any(c.isspace()
                                                  for c in value)):
            problems.append(f"{path}: core name must be a non-empty "
                            f"token without whitespace, got {value!r}")
        return
    problems.append(f"{path}: unsupported schema type {ftype!r}")


def _validate_node(cls: type, doc: Mapping[str, Any], prefix: str,
                   problems: list[str]) -> None:
    types = _field_types(cls)
    for key, value in doc.items():
        path = f"{prefix}{key}"
        if prefix == "" and key in _META_KEYS:
            if not isinstance(value, str):
                problems.append(f"{path}: expected str, got "
                                f"{type(value).__name__}")
            continue
        if key == _REPLACE_KEY:
            problems.append(
                f"{path}: 'replace' is an overlay-merge marker; it is "
                f"not valid in a resolved document")
            continue
        ftype = types.get(key)
        if ftype is None:
            known = ", ".join(sorted(types))
            problems.append(f"{path}: unknown key (known: {known})")
            continue
        if dataclasses.is_dataclass(ftype):
            if not isinstance(value, Mapping):
                problems.append(f"{path}: expected a mapping of "
                                f"{ftype.__name__} knobs, got "
                                f"{type(value).__name__} {value!r}")
            else:
                _validate_node(ftype, value, f"{path}.", problems)
        else:
            _check_leaf(path, key, ftype, value, problems)


def validate(doc: Mapping[str, Any], source: str | None = None) -> None:
    """Check *doc* against the CoreConfig schema; raise
    :class:`UconfigError` listing every problem found.

    Documents may be partial (missing knobs keep their dataclass
    defaults); they may never carry unknown keys, wrong types or
    out-of-range values.
    """
    problems: list[str] = []
    if not isinstance(doc, Mapping):
        raise UconfigError(
            [f"document root: expected a mapping, got "
             f"{type(doc).__name__}"], source)
    _validate_node(CoreConfig, doc, "", problems)
    if problems:
        raise UconfigError(problems, source)


# -- document <-> CoreConfig -------------------------------------------------


def _to_doc(obj: Any) -> dict[str, Any]:
    doc: dict[str, Any] = {}
    for name, ftype in _field_types(type(obj)).items():
        value = getattr(obj, name)
        doc[name] = _to_doc(value) if dataclasses.is_dataclass(ftype) \
            else value
    return doc


def config_to_doc(config: CoreConfig) -> dict[str, Any]:
    """Dump *config* as a full document: every knob explicit, in
    dataclass field order (stable for committed files)."""
    return _to_doc(config)


def _from_doc(cls: type, doc: Mapping[str, Any]) -> Any:
    kwargs: dict[str, Any] = {}
    for name, ftype in _field_types(cls).items():
        if name not in doc:
            continue
        value = doc[name]
        kwargs[name] = _from_doc(ftype, value) \
            if dataclasses.is_dataclass(ftype) else value
    return cls(**kwargs)


def config_from_doc(doc: Mapping[str, Any],
                    source: str | None = None) -> CoreConfig:
    """Validate *doc* and build the :class:`CoreConfig`; knobs the
    document omits keep their dataclass defaults."""
    validate(doc, source)
    config = _from_doc(CoreConfig, {k: v for k, v in doc.items()
                                    if k not in _META_KEYS})
    assert isinstance(config, CoreConfig)
    return config


# -- overlay merge -----------------------------------------------------------


def merge_overlay(base: Mapping[str, Any],
                  overlay: Mapping[str, Any]) -> dict[str, Any]:
    """Apply *overlay* onto *base* (neither is mutated).

    Scalars overwrite, mappings merge recursively, and an overlay
    mapping containing ``replace: true`` replaces the base object
    wholesale (minus the marker) instead of merging into it.
    """
    merged: dict[str, Any] = {key: value for key, value in base.items()}
    for key, value in overlay.items():
        if isinstance(value, Mapping):
            if value.get(_REPLACE_KEY) is True:
                merged[key] = {k: v for k, v in value.items()
                               if k != _REPLACE_KEY}
            elif isinstance(merged.get(key), Mapping):
                merged[key] = merge_overlay(merged[key], value)
            else:
                merged[key] = {k: v for k, v in value.items()
                               if k != _REPLACE_KEY}
        else:
            merged[key] = value
    return merged


def apply_overrides(doc: Mapping[str, Any],
                    overrides: Mapping[str, Any]) -> dict[str, Any]:
    """Set ``dotted.path -> value`` overrides on a copy of *doc* (the
    sweep-axis mechanism: one override per axis point)."""
    overlay: dict[str, Any] = {}
    for path, value in overrides.items():
        node = overlay
        parts = path.split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise UconfigError(
                    [f"{path}: override path collides with scalar "
                     f"override at {part!r}"])
        node[parts[-1]] = value
    return merge_overlay(doc, overlay)


# -- file I/O ----------------------------------------------------------------


def _is_yaml_path(path: str) -> bool:
    return path.endswith((".yaml", ".yml"))


def load_doc(path: str) -> dict[str, Any]:
    """Read a document file: ``.yaml``/``.yml`` via PyYAML (when
    available), anything else as JSON."""
    with open(path) as handle:
        text = handle.read()
    if _is_yaml_path(path):
        if yaml is None:
            raise UconfigError(
                [f"{path}: PyYAML is not installed; use a .json "
                 f"document instead"], path)
        loaded = yaml.safe_load(text)
    else:
        try:
            loaded = json.loads(text)
        except json.JSONDecodeError as exc:
            raise UconfigError([f"{path}: invalid JSON: {exc}"],
                               path) from exc
    if not isinstance(loaded, dict):
        raise UconfigError(
            [f"{path}: expected a mapping at document root, got "
             f"{type(loaded).__name__}"], path)
    return loaded


def dump_doc(doc: Mapping[str, Any], path: str) -> None:
    """Write a document file by extension (YAML or JSON)."""
    if _is_yaml_path(path):
        if yaml is None:
            raise UconfigError(
                [f"{path}: PyYAML is not installed; dump to .json "
                 f"instead"], path)
        payload = yaml.safe_dump(dict(doc), sort_keys=False,
                                 default_flow_style=False)
    else:
        payload = json.dumps(dict(doc), indent=2) + "\n"
    with open(path, "w") as handle:
        handle.write(payload)


def dump_config(config: CoreConfig, path: str,
                description: str | None = None) -> None:
    """Dump *config* as a committed-style full document."""
    doc: dict[str, Any] = {}
    if description:
        doc["description"] = description
    doc.update(config_to_doc(config))
    dump_doc(doc, path)


# -- digest ------------------------------------------------------------------


def canonical_json(doc: Mapping[str, Any]) -> str:
    """Sorted-key, minimal-separator JSON: one spelling per document."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def config_digest(config: CoreConfig | Mapping[str, Any]) -> str:
    """Content hash of a config (document or CoreConfig).

    Documents that build equal ``CoreConfig`` objects digest equally:
    the digest is taken over the *resolved* full document (defaults
    filled in, metadata stripped), prefixed with the schema version.
    """
    if isinstance(config, Mapping):
        config = config_from_doc(config)
    blob = f"{SCHEMA_VERSION}\x00{canonical_json(config_to_doc(config))}"
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# -- core resolution ---------------------------------------------------------


def describe_core_choices() -> str:
    """The error-message tail for a core that failed to resolve."""
    return (f"known presets: {', '.join(sorted(PRESETS))}; or pass a "
            f"config document path (.yaml/.yml/.json)")


def resolve_core(core: CoreConfig | Mapping[str, Any] | str,
                 extends: tuple[str, ...] | list[str] = ()) -> CoreConfig:
    """Resolve anything a user can name a core with into a CoreConfig.

    *core* may be a :class:`CoreConfig`, an inline document mapping, a
    preset name, or a document file path.  ``extends`` overlay files
    are merged on top in order (TBM ``--extend`` semantics).  The
    resolution is deliberately lazy — argparse never sees a closed
    ``choices`` list, so file-based configs get a clear error path
    instead of parser rejection.
    """
    if isinstance(core, CoreConfig):
        doc = config_to_doc(core)
        source = core.name
    elif isinstance(core, Mapping):
        doc = dict(core)
        source = "<inline config>"
    elif core in PRESETS:
        doc = config_to_doc(get_preset(core))
        source = f"preset {core}"
    elif _is_yaml_path(core) or core.endswith(".json") \
            or os.path.exists(core):
        doc = load_doc(core)
        source = core
    else:
        raise UconfigError(
            [f"unknown core {core!r}: not a preset and not a config "
             f"file on disk ({describe_core_choices()})"], str(core))
    for overlay_path in extends:
        doc = merge_overlay(doc, load_doc(overlay_path))
    return config_from_doc(doc, source)


def load_config(path: str,
                extends: tuple[str, ...] | list[str] = ()) -> CoreConfig:
    """``--uarch path --extend overlay...`` in one call."""
    return resolve_core(path, extends)


# -- committed-config gate ---------------------------------------------------


def check_committed_configs(root: str = "configs") -> list[str]:
    """Vet every committed document under *root*; returns problems.

    ``<root>/<name>.yaml`` files must be full documents that build a
    CoreConfig *equal* to the preset of the same name (dataclass
    equality — which is what makes the golden stats bit-identical).
    ``<root>/overlays/*.yaml`` files must merge cleanly onto the xt910
    base and validate as a whole.  An empty list means the directory
    and the Python constructors agree; the ``config-validate`` CI job
    fails on any entry.
    """
    problems: list[str] = []
    names = sorted(fn for fn in os.listdir(root)
                   if fn.endswith((".yaml", ".yml", ".json")))
    if not names:
        return [f"{root}: no config documents found"]
    seen = set()
    for filename in names:
        path = os.path.join(root, filename)
        stem = filename.rsplit(".", 1)[0]
        seen.add(stem)
        try:
            loaded = load_config(path)
        except (UconfigError, OSError) as exc:
            problems.append(f"{path}: {exc}")
            continue
        if stem not in PRESETS:
            problems.append(
                f"{path}: no preset named {stem!r} to check against "
                f"({describe_core_choices()})")
            continue
        expected = get_preset(stem)
        if loaded != expected:
            drift = _describe_drift(config_to_doc(expected),
                                    config_to_doc(loaded))
            problems.append(f"{path}: diverges from preset {stem!r} "
                            f"({drift})")
    missing = sorted(set(PRESETS) - seen)
    if missing:
        problems.append(f"{root}: presets without a committed config "
                        f"file: {', '.join(missing)}")
    overlays_dir = os.path.join(root, "overlays")
    if os.path.isdir(overlays_dir):
        base = config_to_doc(get_preset("xt910"))
        for filename in sorted(os.listdir(overlays_dir)):
            if not filename.endswith((".yaml", ".yml", ".json")):
                continue
            path = os.path.join(overlays_dir, filename)
            try:
                config_from_doc(merge_overlay(base, load_doc(path)),
                                source=path)
            except (UconfigError, OSError) as exc:
                problems.append(f"{path}: {exc}")
    return problems


def _describe_drift(expected: Mapping[str, Any],
                    actual: Mapping[str, Any],
                    prefix: str = "") -> str:
    """First differing knob between two documents, dotted-path form."""
    for key in expected:
        exp = expected[key]
        act = actual.get(key)
        if isinstance(exp, Mapping) and isinstance(act, Mapping):
            drift = _describe_drift(exp, act, f"{prefix}{key}.")
            if drift:
                return drift
        elif exp != act:
            return f"first drift at {prefix}{key}: {act!r} != {exp!r}"
    return ""


__all__ = [
    "SCHEMA_VERSION", "UconfigError", "schema", "validate",
    "config_to_doc", "config_from_doc", "merge_overlay",
    "apply_overrides", "load_doc", "dump_doc", "dump_config",
    "canonical_json", "config_digest", "resolve_core", "load_config",
    "describe_core_choices", "check_committed_configs",
]
