"""The trace-driven 12-stage out-of-order pipeline model.

The model pushes the functional emulator's dynamic instruction stream
through the XT-910 pipeline structure (Fig. 4):

* a frontend (IF/IP/IB) with the hybrid direction predictor, cascaded
  L0/L1 BTBs, return-address stack, indirect predictor and loop buffer,
  all trained *online* with real outcomes and charged with redirect
  bubbles at the pipeline stage where each correction happens;
* decode (3-wide), rename (4-wide) with ROB/IQ/SQ occupancy
  backpressure;
* out-of-order issue into 8 execution pipes (2 ALU, 1 BJU, a dual-issue
  LSU with split st.addr/st.data micro-ops, 2 FPUs, 2 vector slices)
  with full operand forwarding;
* in-order retirement through a 192-entry ROB.

Every instruction receives fetch/dispatch/issue/complete/retire
timestamps; widths and structural hazards are enforced by monotonic
slot allocators, so the model is cycle-accounting rather than
event-queue driven — the standard trace-driven methodology (see
DESIGN.md for the accepted approximations).

Fast path
---------

The model has two equivalent execution paths:

* the **staged methods** (`_frontend`/`_dispatch`/`_execute`/`_retire`/
  `_resolve_control`) — the readable specification, used by the
  incremental :meth:`PipelineModel.feed` interface (SMP interleaving)
  and by :mod:`repro.tools.profiler`;
* the **batched hot loop** in :meth:`PipelineModel.run` — a hand-inlined
  port of the same accounting that charges whole trace batches
  (``Emulator.fast_trace`` yields one ``TranslatedBlock`` worth of
  records at a time) through cached per-PC :class:`TimingInfo` records.

Static per-instruction facts (pipe selection, latency, operand register
ids, store addr/data operand split, branch kind) are resolved once per
static instruction and cached by PC; the cache validates by
``Instruction`` object identity, so the same fence.i / icache events
that rebuild the emulator's decode cache and block cache automatically
invalidate stale timing entries (a re-decoded PC carries a fresh
``Instruction``).  Scheduling state lives in flat ring buffers
(:class:`PipeGroup`, the ROB, the register scoreboard) so the per
dynamic instruction cost is a short run of array operations.  The two
paths are locked together by differential tests against the frozen
:mod:`repro.uarch.refmodel` oracle — see DESIGN.md ("Timing fast
path") for the equivalence argument.
"""

from __future__ import annotations

from collections.abc import Iterable
from heapq import heappush, heappop

from ..isa.instructions import InstrClass
from ..mem.cache import LineState
from ..mem.hierarchy import MemoryHierarchy
from ..sim.trace import DynInst
from .branch import HybridDirectionPredictor
from .btb import BtbLevel, CascadedBtb, IndirectPredictor, ReturnAddressStack
from .config import CoreConfig
from .loopbuf import LoopBuffer
from .lsu import MemDepPredictor, StoreQueueModel, StoreRecord
from .stats import CoreStats

#: Cycle span of the PipeGroup booking window; bookings outside the
#: window spill to an exact overflow dict, so the window size is a
#: performance knob, not a correctness bound.
_WINDOW = 1 << 15
_MASK = _WINDOW - 1
_ZEROS = [0] * _WINDOW

#: Flat register-id space: x0-x31 -> 0-31, f0-f31 -> 32-63, v0-v31 -> 64-95.
_FILE_BASE = {"x": 0, "f": 32, "v": 64}
_NUM_REGS = 96

#: TimingInfo.kind codes.
K_SIMPLE, K_DIV, K_VEC, K_LOAD, K_VLOAD, K_STORE = range(6)
#: TimingInfo.pipe codes (indices into PipelineModel._pipe_list).
P_ALU, P_BJU, P_DIV, P_LOAD, P_STADDR, P_STDATA, P_FPU, P_VEC = range(8)
_PIPE_NAMES = ("alu", "bju", "div", "load", "staddr", "stdata", "fpu", "vec")
#: TimingInfo.ctrl codes.
(C_NONE, C_BRANCH, C_JAL_CALL, C_JAL,
 C_RETURN, C_IND_CALL, C_INDIRECT) = range(7)

#: Static timing cache bound (distinct static PCs; cleared when full).
TCACHE_LIMIT = 1 << 16


class SlotAllocator:
    """Bandwidth limiter: at most ``width`` grants per cycle, monotonic."""

    def __init__(self, width: int):
        self.width = width
        self.cycle = -1
        self.used = 0

    def allocate(self, earliest: int) -> int:
        if earliest > self.cycle:
            self.cycle = earliest
            self.used = 1
            return earliest
        if self.used < self.width:
            self.used += 1
            return self.cycle
        self.cycle += 1
        self.used = 1
        return self.cycle


class PipeGroup:
    """N identical execution pipes with out-of-order backfill.

    Bookings are per-cycle counters rather than next-free pointers, so a
    younger instruction whose operands are ready early can slip into a
    cycle an older long-waiting instruction left idle — what an age-
    vector scheduler actually does.

    Counters live in a flat ring covering ``[_base, _base + _WINDOW)``;
    bookings outside the window go to the exact ``_far`` dict (normally
    empty).  :meth:`prune` advances the window floor, recycling slots,
    so memory stays constant over arbitrarily long runs.
    """

    __slots__ = ("count", "_ring", "_base", "_limit", "_far")

    def __init__(self, count: int):
        self.count = max(count, 1)
        self._ring = [0] * _WINDOW
        self._base = 0
        self._limit = _WINDOW
        self._far: dict[int, int] = {}

    def reset(self) -> None:
        """Clear all bookings in place (cheaper than reallocating)."""
        self._ring[:] = _ZEROS
        self._base = 0
        self._limit = _WINDOW
        self._far.clear()

    @property
    def used(self) -> dict[int, int]:
        """Booked {cycle: pipes-in-use} view (introspection/tests)."""
        booked = {}
        ring = self._ring
        for cycle in range(self._base, self._limit):
            n = ring[cycle & _MASK]
            if n:
                booked[cycle] = n
        booked.update(self._far)
        return booked

    def _get(self, cycle: int) -> int:
        if self._base <= cycle < self._limit:
            return self._ring[cycle & _MASK]
        return self._far.get(cycle, 0)

    def earliest(self, ready: int, occupy: int = 1) -> int:
        count = self.count
        if occupy <= 1:
            if not self._far:
                ring = self._ring
                base = self._base
                limit = self._limit
                cycle = ready
                while base <= cycle < limit and ring[cycle & _MASK] >= count:
                    cycle += 1
                # cycle < base (pruned horizon: free) or past the
                # window (no far bookings: free) both terminate here.
                return cycle
            get = self._get
            cycle = ready
            while get(cycle) >= count:
                cycle += 1
            return cycle
        get = self._get
        cycle = ready
        while True:
            k = 0
            while k < occupy and get(cycle + k) < count:
                k += 1
            if k == occupy:
                return cycle
            # Slot cycle+k is full: every window containing it fails,
            # so the next candidate start is just past the blocker.
            cycle += k + 1

    def book(self, cycle: int, occupy: int = 1) -> None:
        base = self._base
        limit = self._limit
        ring = self._ring
        for k in range(occupy):
            c = cycle + k
            if base <= c < limit:
                ring[c & _MASK] += 1
            else:
                far = self._far
                far[c] = far.get(c, 0) + 1

    def prune(self, before: int) -> None:
        """Forget bookings below *before* and recycle their slots."""
        self.advance(before)

    def advance(self, floor: int) -> None:
        base = self._base
        if floor <= base:
            return
        ring = self._ring
        if floor - base >= _WINDOW:
            ring[:] = _ZEROS
        else:
            lo = base & _MASK
            hi = floor & _MASK
            if lo < hi:
                ring[lo:hi] = _ZEROS[lo:hi]
            else:
                ring[lo:] = _ZEROS[lo:]
                ring[:hi] = _ZEROS[:hi]
        self._base = floor
        self._limit = limit = floor + _WINDOW
        far = self._far
        if far:
            for c in [c for c in far if c < floor]:
                del far[c]
            for c in [c for c in far if c < limit]:
                ring[c & _MASK] += far.pop(c)


class TimingInfo:
    """Static timing facts for one decoded instruction, cached by PC.

    Everything here is a function of the ``Instruction`` alone (plus
    core config), so it is resolved once per static instruction instead
    of once per dynamic instance.  ``inst`` anchors cache validation:
    a re-decode after fence.i/icache maintenance produces a fresh
    ``Instruction`` object, which fails the identity check and forces a
    rebuild — the same invalidation events as the emulator's decode and
    block caches.
    """

    __slots__ = ("inst", "kind", "pipe", "latency", "occupy", "base",
                 "is_vdiv", "src_rids", "dest_rids", "addr_rids",
                 "data_rids", "serialize", "is_store_q", "vec_stat",
                 "is_amo", "ctrl", "size",
                 # Unrolled dependency fields for the stream hot loop:
                 # s0..s2 are src_rids padded with _NUM_REGS (a spare
                 # reg-ready slot that is never written, so it always
                 # reads 0); d0 is the first dest padded with
                 # _NUM_REGS + 1 (a spare slot that is never read).
                 # The rare >3-src / >1-dest remainders live in
                 # src_rest / dest_rest.
                 "s0", "s1", "s2", "src_rest", "d0", "dest_rest")


class PipelineModel:
    """Runs a dynamic instruction stream through one core."""

    def __init__(self, config: CoreConfig | None = None,
                 hierarchy: MemoryHierarchy | None = None):
        self.config = config = config if config is not None else CoreConfig()
        self.hier = hierarchy if hierarchy is not None \
            else MemoryHierarchy(config.mem)
        self.stats = CoreStats()
        self._vec_bits = config.fu.vec_slices * 128
        self._tcache: dict[int, TimingInfo] = {}
        #: opt-in observability hooks (repro.obs): a PipelineTracer /
        #: GuestProfiler, None-guarded in the hot loops like the
        #: sanitizer — None costs nothing and changes nothing.
        self.tracer = None
        self.profiler = None
        self._reset_run_state()

    # -- public API ---------------------------------------------------------------

    def run(self, trace: Iterable) -> CoreStats:
        """Consume a dynamic instruction stream; returns the statistics.

        Accepts either a flat :class:`DynInst` iterator
        (``Emulator.trace``) or a batched one yielding lists/tuples of
        records (``Emulator.fast_trace``) — the timing result is
        identical, batching only amortises per-instruction overhead
        through the inlined hot loop.
        """
        self._reset_run_state()
        self._run_stream(trace)
        self._drain()
        self._collect_ras()
        return self.stats

    def feed(self, dyn: DynInst) -> None:
        """Incremental interface: time one instruction (multi-core
        interleaving uses this to keep per-core clocks aligned)."""
        self._simulate(dyn)

    def finish(self) -> CoreStats:
        """Close out an incremental run started with :meth:`feed`."""
        self._drain()
        self._collect_ras()
        return self.stats

    def _collect_ras(self) -> None:
        """Fold the hierarchy's RAS counters into the run statistics.

        With a shared L2 (SMP runs) the L2's events appear in every
        core's stats; the campaign reads the hierarchy directly when it
        needs exact attribution.
        """
        summary = self.hier.ras_summary()
        self.stats.ecc_corrected = summary["ecc_corrected"]
        self.stats.ecc_uncorrectable = summary["ecc_uncorrectable"]
        self.stats.parity_errors = summary["parity_errors"]
        self.stats.ways_disabled = summary["ways_disabled"]

    # -- state -----------------------------------------------------------------------

    def _reset_run_state(self) -> None:
        """Restore a reused model to its construction state.

        Recreates the predictors as well as the scheduling structures,
        so two runs on the same model object start from identical
        state (the static timing cache survives — it holds facts, not
        history, and revalidates by instruction identity).
        """
        cfg = self.config
        fe = cfg.frontend
        self.direction = HybridDirectionPredictor(fe.direction)
        self.btb = CascadedBtb(fe.btb)
        self.ras = ReturnAddressStack(fe.ras_entries)
        self.indirect = IndirectPredictor(fe.indirect_entries)
        self.lbuf = LoopBuffer(fe.loop_buffer)
        self.memdep = MemDepPredictor(cfg.lsu.memdep_entries,
                                      cfg.lsu.memdep_predictor)
        self.stats = CoreStats()
        self._fetch_cycle = 0
        self._fetch_group: int | None = None
        self._fetch_slots = 0
        self._group_shift = fe.fetch_bytes.bit_length() - 1
        self._pending_redirect: int | None = None
        self._last_was_branch_cycle = -2
        self._decode_slots = SlotAllocator(cfg.decode_width)
        self._last_decode = 0
        self._last_dispatch = 0
        self._rename_slots = SlotAllocator(cfg.rename_width)
        self._retire_slots = SlotAllocator(cfg.retire_width)
        # IBUF ring: fetch may run at most ibuf_entries ahead of the
        # cycle decode drains into rename.
        self._dr_cap = max(fe.ibuf_entries, 1)
        self._dr_buf = [0] * self._dr_cap
        self._dr_start = 0
        self._dr_count = 0
        # Register scoreboard: flat ready-cycle array indexed by rid.
        # Two spare slots back the unrolled dependency fields: index
        # _NUM_REGS is src padding (never written, always reads 0) and
        # _NUM_REGS + 1 is dest padding (written, never read).
        self._reg_ready = [0] * (_NUM_REGS + 2)
        # ROB ring: only the completion cycle is needed per entry.
        self._rob_size = max(cfg.rob_entries, 1)
        self._rob_buf = [0] * self._rob_size
        self._rob_head = 0
        self._rob_count = 0
        self._last_retire = 0
        self._iq_heap: list[int] = []
        self._sq_heap: list[int] = []
        self._serialize_until = 0
        self._last_issue = 0          # for in-order issue
        self._inorder_slots = SlotAllocator(cfg.issue_width)
        self._max_complete = 0
        self._last_target_seen: dict[int, int] = {}
        self._prune_countdown = 8192
        fu = cfg.fu
        pipes = getattr(self, "_pipe_list", None)
        if pipes is not None:
            # Reuse the existing rings: zeroing in place avoids the
            # allocate/free churn of ~9 window-sized lists per run.
            self._issue_bw.reset()
            for group in dict.fromkeys(pipes):
                group.reset()
        else:
            self._issue_bw = PipeGroup(cfg.issue_width)
            alu = PipeGroup(fu.alu_count)
            load = PipeGroup(1)
            if cfg.lsu.dual_issue:
                staddr = PipeGroup(1)
                stdata = PipeGroup(1)
            else:
                staddr = stdata = load
            self._pipe_list = [alu, PipeGroup(fu.bju_count), PipeGroup(1),
                               load, staddr, stdata,
                               PipeGroup(fu.fpu_count),
                               PipeGroup(fu.vec_slices)]
            self._pipes = dict(zip(_PIPE_NAMES, self._pipe_list))
        self._stores = StoreQueueModel(cfg.lsu.sq_entries * 2)

    # -- static timing cache --------------------------------------------------------

    def _info(self, dyn: DynInst) -> TimingInfo:
        info = self._tcache.get(dyn.pc)
        if info is not None and info.inst is dyn.inst:
            return info
        return self._build_info(dyn)

    def _build_info(self, dyn: DynInst) -> TimingInfo:
        inst = dyn.inst
        spec = inst.spec
        iclass = spec.iclass
        fu = self.config.fu
        ti = TimingInfo()
        ti.inst = inst
        ti.size = inst.size
        ti.src_rids = srcs = tuple(
            _FILE_BASE[r.file] + r.index for r in inst.srcs)
        ti.dest_rids = dests = tuple(_FILE_BASE[r.file] + r.index
                                     for r in inst.dests)
        pad = (_NUM_REGS, _NUM_REGS, _NUM_REGS)
        ti.s0, ti.s1, ti.s2 = (srcs + pad)[:3]
        ti.src_rest = srcs[3:]
        ti.d0 = dests[0] if dests else _NUM_REGS + 1
        ti.dest_rest = dests[1:]
        ti.serialize = iclass is InstrClass.CSR \
            or iclass is InstrClass.SYSTEM
        ti.vec_stat = iclass.value[0] == "v"
        ti.is_store_q = False
        ti.is_amo = iclass is InstrClass.AMO
        ti.is_vdiv = False
        ti.addr_rids = ti.data_rids = ()
        ti.base = 0

        if iclass is InstrClass.BRANCH:
            ti.ctrl = C_BRANCH
        elif iclass is InstrClass.JUMP:
            if spec.mnemonic == "jal":
                ti.ctrl = C_JAL_CALL if inst.rd == 1 else C_JAL
            elif inst.rd == 0 and inst.rs1 == 1:
                ti.ctrl = C_RETURN
            elif inst.rd == 1:
                ti.ctrl = C_IND_CALL
            else:
                ti.ctrl = C_INDIRECT
        else:
            ti.ctrl = C_NONE

        ti.kind = K_SIMPLE
        ti.pipe = P_ALU
        ti.latency = 1
        ti.occupy = 1
        if iclass is InstrClass.ALU:
            pass
        elif iclass is InstrClass.LOAD or iclass is InstrClass.AMO:
            ti.kind = K_LOAD
            ti.pipe = P_LOAD
        elif iclass is InstrClass.STORE or iclass is InstrClass.VSTORE:
            ti.kind = K_STORE
            ti.pipe = P_STADDR
            ti.is_store_q = True
            addr_rids: list[int] = []
            data_rids: list[int] = []
            fmt = spec.fmt
            for reg in inst.srcs:
                if fmt == "S":
                    is_data = reg.file == spec.rs2_file \
                        and reg.index == inst.rs2
                elif fmt == "XTIDXS":
                    is_data = reg.file == "x" and reg.index == inst.rs3
                elif fmt in ("VS", "VSS"):
                    is_data = reg.file == "v"
                else:
                    is_data = False
                (data_rids if is_data else addr_rids).append(
                    _FILE_BASE[reg.file] + reg.index)
            ti.addr_rids = tuple(addr_rids)
            ti.data_rids = tuple(data_rids)
        elif iclass is InstrClass.BRANCH or iclass is InstrClass.JUMP:
            ti.pipe = P_BJU
        elif iclass is InstrClass.MUL:
            ti.latency = fu.mul_latency
        elif iclass is InstrClass.DIV:
            ti.kind = K_DIV
            ti.pipe = P_DIV
            ti.latency = fu.div_latency_min
            ti.base = fu.div_latency_max - fu.div_latency_min
        elif iclass is InstrClass.FP:
            ti.pipe = P_FPU
            ti.latency = fu.fp_latency
        elif iclass is InstrClass.FMUL:
            ti.pipe = P_FPU
            ti.latency = fu.fmul_latency
        elif iclass is InstrClass.FDIV:
            ti.pipe = P_FPU
            ti.latency = fu.fdiv_latency
            ti.occupy = fu.fdiv_latency
        elif iclass in (InstrClass.CSR, InstrClass.SYSTEM, InstrClass.VSET):
            pass
        elif iclass is InstrClass.VLOAD:
            ti.kind = K_VLOAD
            ti.pipe = P_LOAD
        else:
            # vector compute classes
            ti.kind = K_VEC
            ti.pipe = P_VEC
            ti.base = {InstrClass.VALU: fu.valu_latency,
                       InstrClass.VMUL: fu.vmul_latency,
                       InstrClass.VFP: fu.vfp_latency,
                       InstrClass.VFMUL: fu.vfmul_latency,
                       InstrClass.VFDIV: fu.vdiv_latency,
                       InstrClass.VDIV: fu.vdiv_latency,
                       InstrClass.VREDUCE: fu.vreduce_latency,
                       InstrClass.VPERM: fu.vperm_latency}.get(iclass, 3)
            ti.is_vdiv = iclass in (InstrClass.VDIV, InstrClass.VFDIV)

        tcache = self._tcache
        if len(tcache) >= TCACHE_LIMIT:
            tcache.clear()
        tcache[dyn.pc] = ti
        return ti

    # -- batched hot loop -----------------------------------------------------------

    def _run_stream(self, trace: Iterable) -> None:
        """Inlined port of the staged per-instruction accounting.

        One dynamic instruction costs a short run of array and integer
        operations over cached :class:`TimingInfo`; all mutable scalar
        state lives in locals and is written back in ``finally``.  The
        staged methods remain the readable specification; differential
        tests pin this loop to them and to the frozen reference model.
        """
        cfg = self.config
        fe = cfg.frontend
        lsu = cfg.lsu
        st = self.stats
        hier = self.hier
        access_inst = hier.access_inst
        access_data = hier.access_data

        # Memory fast path: pre-resolved structures for the all-hit
        # case (single-line access, 4K-private uTLB hit, clean L1 hit).
        # Anything else falls back to the full access_data/access_inst
        # path, which performs the identical accounting.
        h_cfg = hier.config
        h_stats = hier.stats
        tlb = hier.tlb
        utlb = tlb._utlb
        tlb_stats = tlb.stats
        mem_tlb = h_cfg.model_tlb
        mem_inline = (not mem_tlb) or h_cfg.tlb.utlb_latency == 0
        l1_latency = h_cfg.l1_latency
        l1d = hier.l1d
        l1d_shift = l1d._offset_bits
        l1d_nsets = l1d.num_sets
        l1d_sets = l1d._sets
        l1d_stats = l1d.stats
        l1i = hier.l1i
        l1i_shift = l1i._offset_bits
        l1i_nsets = l1i.num_sets
        l1i_sets = l1i._sets
        l1i_stats = l1i.stats
        observe_l1 = hier.l1_prefetcher.observe
        INVALID = LineState.INVALID
        MODIFIED = LineState.MODIFIED
        wstates = (LineState.EXCLUSIVE, LineState.SHARED, LineState.OWNED)

        tcache_get = self._tcache.get
        build_info = self._build_info
        tracer = self.tracer
        profiler = self.profiler
        reg_ready = self._reg_ready
        iq_heap = self._iq_heap
        sq_heap = self._sq_heap
        pipe_list = self._pipe_list
        pipe_set = list(dict.fromkeys(pipe_list)) + [self._issue_bw]
        issue_on = self._issue_on
        issue_bw = self._issue_bw
        bw_ring = issue_bw._ring
        bw_far = issue_bw._far
        bw_base = issue_bw._base
        bw_limit = issue_bw._limit
        bw_cnt = issue_bw.count
        p_load = pipe_list[P_LOAD]
        p_staddr = pipe_list[P_STADDR]
        p_stdata = pipe_list[P_STDATA]

        out_of_order = cfg.out_of_order
        decode_width = cfg.decode_width
        fetch_insts = fe.fetch_insts
        group_shift = self._group_shift
        rob_entries = cfg.rob_entries
        iq_entries = cfg.iq_entries
        sq_entries = lsu.sq_entries
        mispredict_extra = fe.mispredict_extra
        tb_l0 = fe.taken_bubble_l0
        tb_l1 = fe.taken_bubble_l1
        tb_miss = fe.taken_bubble_miss
        load_to_use = lsu.load_to_use
        forward_latency = lsu.forward_latency
        violation_flush_penalty = lsu.violation_flush_penalty
        pseudo_dual = lsu.pseudo_dual_store
        vec_bits = self._vec_bits

        dirp = self.direction
        bim_tab = dirp._bimodal.table
        bim_mask = dirp._bimodal.mask
        gsh_tab = dirp._gshare.table
        gsh_mask = dirp._gshare.mask
        cho_tab = dirp._chooser.table
        cho_mask = dirp._chooser.mask
        dir_hist = dirp._history
        dir_hist_mask = dirp._history_mask
        consecutive_ok = dirp.config.two_level_buffers
        btb = self.btb
        btb_l0 = btb._l0
        btb_l1 = btb._l1
        btb_l1_nsets = btb._l1_sets
        btb_stats = btb.stats
        btb_l1_ways = btb.config.l1_ways
        btb_l0_entries = btb.config.l0_entries
        ras = self.ras
        indirect_update = self.indirect.update
        lbuf = self.lbuf
        observe_branch = lbuf.observe_branch
        lb_enabled = lbuf.config.enabled
        lbuf_active = lbuf._active
        loop_lo = lbuf._loop_target if lbuf_active else 0
        loop_hi = lbuf._loop_pc if lbuf_active else 0
        memdep = self.memdep
        memdep_on = memdep.enabled
        md_tagged = memdep._tagged
        sq_deque = self._stores._stores
        sq_model_cap = self._stores.capacity
        # Cached seq of the oldest queued store (sentinel when empty):
        # turns the per-instruction age-prune check into one compare.
        sq0_seq = sq_deque[0].seq if sq_deque else 1 << 62
        last_target_seen = self._last_target_seen

        # Mutable scalar state (sentinel -1 encodes None).
        fetch_cycle = self._fetch_cycle
        fetch_group = -1 if self._fetch_group is None else self._fetch_group
        fetch_slots = self._fetch_slots
        pending_redirect = -1 if self._pending_redirect is None \
            else self._pending_redirect
        last_was_branch_cycle = self._last_was_branch_cycle
        last_dispatch = self._last_dispatch
        last_retire = self._last_retire
        serialize_until = self._serialize_until
        last_issue = self._last_issue
        max_complete = self._max_complete
        prune_countdown = self._prune_countdown
        dec = self._decode_slots
        dec_cycle, dec_used, dec_width = dec.cycle, dec.used, dec.width
        ren = self._rename_slots
        ren_cycle, ren_used, ren_width = ren.cycle, ren.used, ren.width
        ret = self._retire_slots
        ret_cycle, ret_used, ret_width = ret.cycle, ret.used, ret.width
        ino = self._inorder_slots
        io_cycle, io_used, io_width = ino.cycle, ino.used, ino.width
        dr_buf = self._dr_buf
        dr_cap = self._dr_cap
        dr_start = self._dr_start
        dr_count = self._dr_count
        rob_buf = self._rob_buf
        rob_size = self._rob_size
        rob_head = self._rob_head
        rob_count = self._rob_count

        # Hot statistics accumulate in locals; written back in finally.
        n_inst = 0
        n_uops = 0
        n_branch = 0
        n_taken_bub = 0
        n_lbuf = 0
        n_vec = 0
        n_beats = 0
        dir_preds = 0
        dir_misp = 0

        try:
            for item in trace:
                batch = (item,) if type(item) is DynInst else item
                for dyn in batch:
                    pc = dyn.pc
                    inst = dyn.inst
                    ti = tcache_get(pc)
                    if ti is None or ti.inst is not inst:
                        ti = build_info(dyn)
                    n_inst += 1

                    # ---- frontend (IF/IP/IB) ----
                    if pending_redirect >= 0:
                        if pending_redirect > fetch_cycle:
                            fetch_cycle = pending_redirect
                        fetch_group = -1
                        pending_redirect = -1
                    if lbuf_active and loop_lo <= pc <= loop_hi:
                        if fetch_slots >= decode_width:
                            fetch_cycle += 1
                            fetch_slots = 0
                        fetch_slots += 1
                        n_lbuf += 1
                        fetch_group = -1
                        fetch = fetch_cycle
                    else:
                        group = pc >> group_shift
                        if group != fetch_group \
                                or fetch_slots >= fetch_insts:
                            if fetch_group != -1:
                                fetch_cycle += 1
                            laddr = pc >> l1i_shift
                            cs = l1i_sets[laddr % l1i_nsets]
                            line = cs.get(laddr)
                            if line is not None \
                                    and line.state is not INVALID \
                                    and not line.tag_fault \
                                    and not line.data_faults:
                                # Clean L1I hit: access_inst would
                                # charge 0 cycles and touch only these
                                # counters and the LRU order.
                                cs.move_to_end(laddr)
                                l1i_stats.hits += 1
                                if line.prefetched:
                                    l1i_stats.prefetch_hits += 1
                                    line.prefetched = False
                                h_stats.inst_fetches += 1
                            else:
                                extra = access_inst(pc, fetch_cycle)
                                if extra:
                                    fetch_cycle += extra
                                    st.icache_stall_cycles += extra
                            fetch_group = group
                            fetch_slots = 0
                        fetch_slots += 1
                        if dr_count == dr_cap:
                            t = dr_buf[dr_start]
                            if t > fetch_cycle:
                                fetch_cycle = t
                        fetch = fetch_cycle

                    # ---- decode/rename/dispatch ----
                    e = fetch + 3
                    if e > dec_cycle:
                        dec_cycle = e
                        dec_used = 1
                        decode = e
                    elif dec_used < dec_width:
                        dec_used += 1
                        decode = dec_cycle
                    else:
                        dec_cycle += 1
                        dec_used = 1
                        decode = dec_cycle

                    earliest = decode + 2
                    if last_dispatch > earliest:
                        earliest = last_dispatch
                    floor = earliest

                    if ti.serialize:
                        wait = max_complete \
                            if max_complete > serialize_until \
                            else serialize_until
                        if wait > earliest:
                            st.serializations += 1
                            earliest = wait
                        serialize_until = earliest
                    elif serialize_until > earliest:
                        earliest = serialize_until

                    if rob_count >= rob_entries:
                        head_complete = rob_buf[rob_head]
                        rob_head += 1
                        if rob_head == rob_size:
                            rob_head = 0
                        rob_count -= 1
                        e = head_complete + 2
                        if e > ret_cycle:
                            ret_cycle = e
                            ret_used = 1
                            head_retire = e
                        elif ret_used < ret_width:
                            ret_used += 1
                            head_retire = ret_cycle
                        else:
                            ret_cycle += 1
                            ret_used = 1
                            head_retire = ret_cycle
                        if head_retire > last_retire:
                            last_retire = head_retire
                        if head_retire > earliest:
                            st.rob_stall_cycles += head_retire - floor
                            earliest = head_retire

                    while iq_heap and iq_heap[0] <= earliest:
                        heappop(iq_heap)
                    if len(iq_heap) >= iq_entries:
                        soonest = heappop(iq_heap)
                        if soonest > earliest:
                            st.iq_stall_cycles += soonest - earliest
                            earliest = soonest

                    if ti.is_store_q:
                        while sq_heap and sq_heap[0] <= earliest:
                            heappop(sq_heap)
                        if len(sq_heap) >= sq_entries:
                            soonest = heappop(sq_heap)
                            if soonest > earliest:
                                st.sq_stall_cycles += soonest - earliest
                                earliest = soonest

                    if earliest > ren_cycle:
                        ren_cycle = earliest
                        ren_used = 1
                        dispatch = earliest
                    elif ren_used < ren_width:
                        ren_used += 1
                        dispatch = ren_cycle
                    else:
                        ren_cycle += 1
                        ren_used = 1
                        dispatch = ren_cycle
                    last_dispatch = dispatch

                    if dr_count == dr_cap:
                        dr_buf[dr_start] = dispatch - 2
                        dr_start += 1
                        if dr_start == dr_cap:
                            dr_start = 0
                    else:
                        idx = dr_start + dr_count
                        if idx >= dr_cap:
                            idx -= dr_cap
                        dr_buf[idx] = dispatch - 2
                        dr_count += 1

                    # ---- issue/execute ----
                    ready = dispatch + 1
                    t = reg_ready[ti.s0]
                    if t > ready:
                        ready = t
                    t = reg_ready[ti.s1]
                    if t > ready:
                        ready = t
                    t = reg_ready[ti.s2]
                    if t > ready:
                        ready = t
                    rest = ti.src_rest
                    if rest:
                        for rid in rest:
                            t = reg_ready[rid]
                            if t > ready:
                                ready = t
                    if not out_of_order:
                        if last_issue > ready:
                            ready = last_issue
                        if ready > io_cycle:
                            io_cycle = ready
                            io_used = 1
                        elif io_used < io_width:
                            io_used += 1
                            ready = io_cycle
                        else:
                            io_cycle += 1
                            io_used = 1
                            ready = io_cycle
                        last_issue = ready

                    kind = ti.kind
                    if kind == 0:       # K_SIMPLE
                        occupy = ti.occupy
                        pipe = pipe_list[ti.pipe]
                        if occupy == 1 and not pipe._far and not bw_far \
                                and ready >= pipe._base and ready >= bw_base:
                            p_ring = pipe._ring
                            p_cnt = pipe.count
                            lim = pipe._limit
                            if bw_limit < lim:
                                lim = bw_limit
                            c = ready
                            while c < lim and (p_ring[c & _MASK] >= p_cnt
                                               or bw_ring[c & _MASK]
                                               >= bw_cnt):
                                c += 1
                            if c < lim:
                                p_ring[c & _MASK] += 1
                                bw_ring[c & _MASK] += 1
                                issue = c
                            else:
                                issue = issue_on(ti.pipe, ready, 1)
                        else:
                            issue = issue_on(ti.pipe, ready, occupy)
                        complete = issue + ti.latency
                    elif kind == 3 or kind == 4:    # K_LOAD / K_VLOAD
                        pipe = p_load
                        if not pipe._far and not bw_far \
                                and ready >= pipe._base and ready >= bw_base:
                            p_ring = pipe._ring
                            p_cnt = pipe.count
                            lim = pipe._limit
                            if bw_limit < lim:
                                lim = bw_limit
                            c = ready
                            while c < lim and (p_ring[c & _MASK] >= p_cnt
                                               or bw_ring[c & _MASK]
                                               >= bw_cnt):
                                c += 1
                            if c < lim:
                                p_ring[c & _MASK] += 1
                                bw_ring[c & _MASK] += 1
                                issue = c
                            else:
                                issue = issue_on(P_LOAD, ready, 1)
                        else:
                            issue = issue_on(P_LOAD, ready, 1)

                        seq = dyn.seq
                        if memdep_on and md_tagged.get(pc, 0) > 0:
                            barrier = 0
                            unresolved = False
                            for s in sq_deque:
                                if s.seq < seq and s.addr_ready > issue:
                                    unresolved = True
                                    if s.addr_ready > barrier:
                                        barrier = s.addr_ready
                            if unresolved:
                                if barrier > issue:
                                    st.memdep_delays += 1
                                    issue = issue_on(P_LOAD, barrier, 1)
                            else:
                                memdep.train_no_conflict(pc)

                        addr = dyn.mem_addr
                        size = dyn.mem_size
                        if size < 1:
                            size = 1
                        violation_store = None
                        forward_store = None
                        for s in sq_deque:
                            if s.seq < seq:
                                s_addr = s.addr
                                if addr < s_addr + s.size \
                                        and s_addr < addr + size:
                                    if s.addr_ready > issue:
                                        violation_store = s
                                    else:
                                        forward_store = s
                        if violation_store is not None:
                            st.lsu_violations += 1
                            memdep.train_violation(pc)
                            restart = violation_store.data_ready \
                                + violation_flush_penalty
                            if restart < issue:
                                restart = issue
                            issue = issue_on(P_LOAD, restart, 1)
                            forward_store = violation_store
                        if forward_store is not None:
                            st.lsu_forwards += 1
                            fwd_data = forward_store.data_ready
                            if fwd_data <= issue + 1:
                                complete = issue + forward_latency + 1
                                alt = fwd_data + forward_latency
                                if alt > complete:
                                    complete = alt
                            else:
                                complete = fwd_data + forward_latency + 1
                        else:
                            extra = -1
                            laddr = addr >> l1d_shift
                            if mem_inline and not ti.is_amo \
                                    and (addr + size - 1) >> l1d_shift \
                                    == laddr:
                                if mem_tlb:
                                    tkey = (addr >> 12, 4096, tlb.asid)
                                    tentry = None if tlb._utlb_nonstd \
                                        else utlb.get(tkey)
                                    tlb_ok = tentry is not None \
                                        and not tentry.poisoned
                                else:
                                    tlb_ok = True
                                if tlb_ok:
                                    cs = l1d_sets[laddr % l1d_nsets]
                                    line = cs.get(laddr)
                                    if line is not None \
                                            and line.state is not INVALID \
                                            and not line.tag_fault \
                                            and not line.data_faults:
                                        if mem_tlb:
                                            utlb.move_to_end(tkey)
                                            tlb_stats.utlb_hits += 1
                                        cs.move_to_end(laddr)
                                        l1d_stats.hits += 1
                                        if line.prefetched:
                                            l1d_stats.prefetch_hits += 1
                                            line.prefetched = False
                                        h_stats.loads += 1
                                        observe_l1(addr, issue)
                                        extra = l1_latency
                            if extra < 0:
                                extra = access_data(addr, issue,
                                                    ti.is_amo, size)
                            if kind == 4:
                                vl = dyn.vl
                                if vl < 1:
                                    vl = 1
                                sew = dyn.sew
                                if sew < 8:
                                    sew = 8
                                extra += (vl * sew + vec_bits - 1) \
                                    // vec_bits - 1
                            complete = issue + load_to_use + extra
                    elif kind == 5:     # K_STORE
                        n_uops += 1     # the extra st.data uop
                        if pseudo_dual:
                            addr_ready = dispatch + 1
                            for rid in ti.addr_rids:
                                t = reg_ready[rid]
                                if t > addr_ready:
                                    addr_ready = t
                            data_ready = dispatch + 1
                            for rid in ti.data_rids:
                                t = reg_ready[rid]
                                if t > data_ready:
                                    data_ready = t
                            if not out_of_order:
                                if ready > addr_ready:
                                    addr_ready = ready
                                if ready > data_ready:
                                    data_ready = ready
                            pipe = p_staddr
                            if not pipe._far and not bw_far \
                                    and addr_ready >= pipe._base \
                                    and addr_ready >= bw_base:
                                p_ring = pipe._ring
                                p_cnt = pipe.count
                                lim = pipe._limit
                                if bw_limit < lim:
                                    lim = bw_limit
                                c = addr_ready
                                while c < lim \
                                        and (p_ring[c & _MASK] >= p_cnt
                                             or bw_ring[c & _MASK]
                                             >= bw_cnt):
                                    c += 1
                                if c < lim:
                                    p_ring[c & _MASK] += 1
                                    bw_ring[c & _MASK] += 1
                                    addr_issue = c
                                else:
                                    addr_issue = issue_on(P_STADDR,
                                                          addr_ready, 1)
                            else:
                                addr_issue = issue_on(P_STADDR,
                                                      addr_ready, 1)
                            pipe = p_stdata
                            if not pipe._far and not bw_far \
                                    and data_ready >= pipe._base \
                                    and data_ready >= bw_base:
                                p_ring = pipe._ring
                                p_cnt = pipe.count
                                lim = pipe._limit
                                if bw_limit < lim:
                                    lim = bw_limit
                                c = data_ready
                                while c < lim \
                                        and (p_ring[c & _MASK] >= p_cnt
                                             or bw_ring[c & _MASK]
                                             >= bw_cnt):
                                    c += 1
                                if c < lim:
                                    p_ring[c & _MASK] += 1
                                    bw_ring[c & _MASK] += 1
                                    data_issue = c
                                else:
                                    data_issue = issue_on(P_STDATA,
                                                          data_ready, 1)
                            else:
                                data_issue = issue_on(P_STDATA,
                                                      data_ready, 1)
                        else:
                            addr_issue = issue_on(P_STADDR, ready, 1)
                            data_issue = addr_issue
                        addr_done = addr_issue + 1
                        data_done = data_issue + 1
                        complete = data_done if data_done > addr_done \
                            else addr_done
                        size = dyn.mem_size
                        if size < 1:
                            size = 1
                        addr = dyn.mem_addr
                        drain = -1
                        laddr = addr >> l1d_shift
                        if mem_inline \
                                and (addr + size - 1) >> l1d_shift == laddr:
                            if mem_tlb:
                                tkey = (addr >> 12, 4096, tlb.asid)
                                tentry = None if tlb._utlb_nonstd \
                                    else utlb.get(tkey)
                                tlb_ok = tentry is not None \
                                    and not tentry.poisoned
                            else:
                                tlb_ok = True
                            if tlb_ok:
                                cs = l1d_sets[laddr % l1d_nsets]
                                line = cs.get(laddr)
                                if line is not None \
                                        and line.state is not INVALID \
                                        and not line.tag_fault \
                                        and not line.data_faults:
                                    if mem_tlb:
                                        utlb.move_to_end(tkey)
                                        tlb_stats.utlb_hits += 1
                                    cs.move_to_end(laddr)
                                    l1d_stats.hits += 1
                                    if line.prefetched:
                                        l1d_stats.prefetch_hits += 1
                                        line.prefetched = False
                                    line.dirty = True
                                    if line.state in wstates:
                                        line.state = MODIFIED
                                    h_stats.stores += 1
                                    observe_l1(addr, complete)
                                    drain = l1_latency
                        if drain < 0:
                            drain = access_data(addr, complete, True,
                                                size)
                        heappush(sq_heap, complete + drain)
                        if not sq_deque:
                            sq0_seq = dyn.seq
                        sq_deque.append(StoreRecord(
                            seq=dyn.seq, pc=pc, addr=dyn.mem_addr,
                            size=size, addr_ready=addr_done,
                            data_ready=data_done))
                        if len(sq_deque) > sq_model_cap:
                            sq_deque.popleft()
                            sq0_seq = sq_deque[0].seq
                        issue = data_issue if data_issue > addr_issue \
                            else addr_issue
                    elif kind == 1:     # K_DIV
                        spread = ti.base
                        if spread <= 0:
                            latency = ti.latency
                        else:
                            bits = dyn.div_bits
                            if bits < 1:
                                bits = 1
                            elif bits > 64:
                                bits = 64
                            latency = ti.latency + (spread * bits) // 64
                        issue = issue_on(P_DIV, ready, latency)
                        complete = issue + latency
                    else:               # K_VEC
                        vl = dyn.vl
                        if vl < 1:
                            vl = 1
                        sew = dyn.sew
                        if sew < 8:
                            sew = 8
                        beats = (vl * sew + vec_bits - 1) // vec_bits
                        n_beats += beats
                        base = ti.base
                        occupy = base * beats if ti.is_vdiv else beats
                        issue = issue_on(P_VEC, ready, occupy)
                        complete = issue + base + beats - 1

                    if ti.vec_stat:
                        n_vec += 1
                    reg_ready[ti.d0] = complete
                    rest = ti.dest_rest
                    if rest:
                        for rid in rest:
                            reg_ready[rid] = complete
                    if complete > max_complete:
                        max_complete = complete
                    heappush(iq_heap, issue)

                    # ---- retire bookkeeping ----
                    n_uops += 1
                    idx = rob_head + rob_count
                    if idx >= rob_size:
                        idx -= rob_size
                    rob_buf[idx] = complete
                    rob_count += 1
                    bound = dyn.seq - rob_entries
                    while sq0_seq < bound:
                        sq_deque.popleft()
                        sq0_seq = sq_deque[0].seq if sq_deque \
                            else 1 << 62
                    prune_countdown -= 1
                    if prune_countdown <= 0:
                        prune_countdown = 8192
                        floor_c = dispatch - 64
                        for pg in pipe_set:
                            pg.advance(floor_c)
                        bw_base = issue_bw._base
                        bw_limit = issue_bw._limit

                    # ---- observability hooks (None = off) ----
                    if tracer is not None:
                        tracer.record(dyn, fetch, decode, dispatch,
                                      issue, complete)
                    if profiler is not None:
                        profiler.record(pc, complete, ti.ctrl,
                                        dyn.target)

                    # ---- control resolution ----
                    ctrl = ti.ctrl
                    if ctrl:
                        n_branch += 1
                        taken = dyn.taken
                        target = dyn.target
                        seq = dyn.seq
                        key = target if taken else dyn.next_pc
                        in_lbuf = lbuf_active and loop_lo <= pc <= loop_hi
                        # observe_branch() is a no-op unless a backward
                        # taken branch can start/stop a capture or the
                        # locked loop's own branch falls through — gate
                        # the call (and the body-size lookup) on that.
                        if lb_enabled:
                            if taken and target <= pc:
                                if not (lbuf_active and pc == loop_hi):
                                    body = 0
                                    last_seen = last_target_seen.get(target)
                                    if last_seen is not None:
                                        body = seq - last_seen
                                    observe_branch(pc, key, taken, body)
                                    lbuf_active = lbuf._active
                                    if lbuf_active:
                                        loop_lo = lbuf._loop_target
                                        loop_hi = lbuf._loop_pc
                            elif lbuf_active and not taken \
                                    and pc == loop_hi:
                                observe_branch(pc, key, taken, 0)
                                lbuf_active = lbuf._active
                        last_target_seen[key] = seq
                        if len(last_target_seen) > 4096:
                            last_target_seen.clear()

                        if ctrl == 1:   # conditional branch
                            i_b = pc >> 1
                            bi = i_b & bim_mask
                            b_val = bim_tab[bi]
                            bimodal_pred = b_val >= 2
                            gi = (i_b ^ dir_hist) & gsh_mask
                            g_val = gsh_tab[gi]
                            gshare_pred = g_val >= 2
                            ci = i_b & cho_mask
                            prediction = gshare_pred \
                                if cho_tab[ci] >= 2 else bimodal_pred
                            dir_preds += 1
                            mispredicted = prediction != taken
                            if mispredicted:
                                dir_misp += 1
                            if bimodal_pred != gshare_pred:
                                cv = cho_tab[ci]
                                if gshare_pred == taken:
                                    if cv < 3:
                                        cho_tab[ci] = cv + 1
                                elif cv > 0:
                                    cho_tab[ci] = cv - 1
                            if taken:
                                if b_val < 3:
                                    bim_tab[bi] = b_val + 1
                                if g_val < 3:
                                    gsh_tab[gi] = g_val + 1
                            else:
                                if b_val > 0:
                                    bim_tab[bi] = b_val - 1
                                if g_val > 0:
                                    gsh_tab[gi] = g_val - 1
                            dir_hist = ((dir_hist << 1) | taken) \
                                & dir_hist_mask
                            if mispredicted:
                                resume = complete + mispredict_extra
                                if resume > pending_redirect:
                                    pending_redirect = resume
                                continue
                            if taken:
                                # Fused CascadedBtb.predict + .update
                                # (same lookups, LRU moves, eviction
                                # decisions and counters, one pass).
                                l1s = btb_l1[(pc >> 1) % btb_l1_nsets]
                                predicted = btb_l0.get(pc)
                                if predicted is not None:
                                    btb_l0.move_to_end(pc)
                                    btb_stats.l0_hits += 1
                                    lvl = 0
                                else:
                                    predicted = l1s.get(pc)
                                    if predicted is not None:
                                        l1s.move_to_end(pc)
                                        btb_stats.l1_hits += 1
                                        lvl = 1
                                    else:
                                        btb_stats.misses += 1
                                        lvl = 2
                                if pc in l1s:
                                    l1s[pc] = target
                                    l1s.move_to_end(pc)
                                else:
                                    if len(l1s) >= btb_l1_ways:
                                        l1s.popitem(last=False)
                                    l1s[pc] = target
                                if btb_l0_entries > 0:
                                    if pc in btb_l0:
                                        btb_l0[pc] = target
                                        btb_l0.move_to_end(pc)
                                    else:
                                        if len(btb_l0) >= btb_l0_entries:
                                            btb_l0.popitem(last=False)
                                        btb_l0[pc] = target
                                if predicted is not None \
                                        and predicted != target:
                                    btb_stats.target_mispredicts += 1
                                    st.target_mispredicts += 1
                                    bubbles = tb_miss
                                elif in_lbuf:
                                    bubbles = 0
                                elif lvl == 0:
                                    bubbles = tb_l0
                                elif lvl == 1:
                                    bubbles = tb_l1
                                else:
                                    bubbles = tb_miss
                                if bubbles:
                                    fetch_cycle += bubbles
                                    n_taken_bub += bubbles
                                fetch_group = -1
                            if not consecutive_ok:
                                if fetch - last_was_branch_cycle <= 1:
                                    fetch_cycle += 1
                                    st.fetch_bubbles += 1
                            last_was_branch_cycle = fetch
                            continue

                        # jumps
                        redirected = False
                        if ctrl == 2:       # jal, rd == ra
                            ras.push(pc + ti.size)
                        elif ctrl == 4:     # jalr return
                            predicted = ras.predict_pop()
                            if ras.check(predicted, target):
                                st.ras_mispredicts += 1
                                resume = complete + mispredict_extra
                                if resume > pending_redirect:
                                    pending_redirect = resume
                                redirected = True
                        elif ctrl == 5 or ctrl == 6:    # jalr indirect
                            if ctrl == 5:
                                ras.push(pc + ti.size)
                            if indirect_update(pc, target):
                                st.indirect_mispredicts += 1
                                resume = complete + mispredict_extra
                                if resume > pending_redirect:
                                    pending_redirect = resume
                                redirected = True
                        if not redirected:
                            l1s = btb_l1[(pc >> 1) % btb_l1_nsets]
                            predicted = btb_l0.get(pc)
                            if predicted is not None:
                                btb_l0.move_to_end(pc)
                                btb_stats.l0_hits += 1
                                lvl = 0
                            else:
                                predicted = l1s.get(pc)
                                if predicted is not None:
                                    l1s.move_to_end(pc)
                                    btb_stats.l1_hits += 1
                                    lvl = 1
                                else:
                                    btb_stats.misses += 1
                                    lvl = 2
                            if pc in l1s:
                                l1s[pc] = target
                                l1s.move_to_end(pc)
                            else:
                                if len(l1s) >= btb_l1_ways:
                                    l1s.popitem(last=False)
                                l1s[pc] = target
                            if btb_l0_entries > 0:
                                if pc in btb_l0:
                                    btb_l0[pc] = target
                                    btb_l0.move_to_end(pc)
                                else:
                                    if len(btb_l0) >= btb_l0_entries:
                                        btb_l0.popitem(last=False)
                                    btb_l0[pc] = target
                            if predicted is not None \
                                    and predicted != target:
                                btb_stats.target_mispredicts += 1
                                st.target_mispredicts += 1
                                bubbles = tb_miss
                            elif in_lbuf:
                                bubbles = 0
                            elif lvl == 0:
                                bubbles = tb_l0
                            elif lvl == 1:
                                bubbles = tb_l1
                            else:
                                bubbles = tb_miss
                            if bubbles:
                                fetch_cycle += bubbles
                                n_taken_bub += bubbles
                            fetch_group = -1
        finally:
            self._fetch_cycle = fetch_cycle
            self._fetch_group = None if fetch_group == -1 else fetch_group
            self._fetch_slots = fetch_slots
            self._pending_redirect = None if pending_redirect < 0 \
                else pending_redirect
            self._last_was_branch_cycle = last_was_branch_cycle
            self._last_dispatch = last_dispatch
            self._last_retire = last_retire
            self._serialize_until = serialize_until
            self._last_issue = last_issue
            self._max_complete = max_complete
            self._prune_countdown = prune_countdown
            dec.cycle, dec.used = dec_cycle, dec_used
            ren.cycle, ren.used = ren_cycle, ren_used
            ret.cycle, ret.used = ret_cycle, ret_used
            ino.cycle, ino.used = io_cycle, io_used
            self._dr_start = dr_start
            self._dr_count = dr_count
            self._rob_head = rob_head
            self._rob_count = rob_count
            st.instructions += n_inst
            st.uops += n_uops
            st.branches += n_branch
            st.taken_branch_bubbles += n_taken_bub
            st.lbuf_supplied += n_lbuf
            st.vector_instructions += n_vec
            st.vector_beats += n_beats
            st.direction_mispredicts += dir_misp
            dirp.stats.predictions += dir_preds
            dirp.stats.mispredictions += dir_misp
            dirp._history = dir_hist
            lbuf.stats.supplied_insts += n_lbuf

    # -- per-instruction simulation (staged specification) ---------------------------

    def _simulate(self, dyn: DynInst) -> None:
        self.stats.instructions += 1
        fetch = self._frontend(dyn)
        dispatch = self._dispatch(dyn, fetch)
        issue, complete = self._execute(dyn, dispatch)
        self._retire(dyn, dispatch, complete)
        tracer = self.tracer
        if tracer is not None:
            tracer.record(dyn, fetch, self._last_decode, dispatch,
                          issue, complete)
        profiler = self.profiler
        if profiler is not None:
            profiler.record(dyn.pc, complete, self._info(dyn).ctrl,
                            dyn.target)
        self._resolve_control(dyn, fetch, complete)

    # -- frontend -------------------------------------------------------------------------

    def _frontend(self, dyn: DynInst) -> int:
        fe = self.config.frontend
        pc = dyn.pc
        if self._pending_redirect is not None:
            self._fetch_cycle = max(self._fetch_cycle,
                                    self._pending_redirect)
            self._fetch_group = None
            self._pending_redirect = None

        from_lbuf = self.lbuf.active and self.lbuf.covers(pc)
        if from_lbuf:
            # LBUF supplies decode-width instructions per cycle with no
            # I$ access and no taken-branch bubble.
            if self._fetch_slots >= self.config.decode_width:
                self._fetch_cycle += 1
                self._fetch_slots = 0
            self._fetch_slots += 1
            self.lbuf.supply()
            self.stats.lbuf_supplied += 1
            self._fetch_group = None
            return self._fetch_cycle

    # Normal path: one 128-bit aligned group per cycle.
        group = pc >> self._group_shift
        if group != self._fetch_group or self._fetch_slots >= fe.fetch_insts:
            if self._fetch_group is not None:
                self._fetch_cycle += 1
            extra = self.hier.access_inst(pc, self._fetch_cycle)
            if extra:
                self._fetch_cycle += extra
                self.stats.icache_stall_cycles += extra
            self._fetch_group = group
            self._fetch_slots = 0
        self._fetch_slots += 1

        # IBUF capacity: fetch cannot run further ahead than the buffer.
        if self._dr_count == self._dr_cap:
            oldest = self._dr_buf[self._dr_start]
            if oldest > self._fetch_cycle:
                self._fetch_cycle = oldest
        return self._fetch_cycle

    def _dispatch(self, dyn: DynInst, fetch: int) -> int:
        cfg = self.config
        ti = self._info(dyn)
        decode = self._decode_slots.allocate(fetch + 3)      # IF/IP/IB -> ID
        self._last_decode = decode      # exposed for the tracer hook
        earliest = max(decode + 2, self._last_dispatch)      # ID/IR -> IS
        floor = earliest

        if ti.serialize:
            # Serializing: wait for the machine to drain.
            wait = max(self._max_complete, self._serialize_until)
            if wait > earliest:
                self.stats.serializations += 1
                earliest = wait
            self._serialize_until = earliest
        elif self._serialize_until > earliest:
            earliest = self._serialize_until

        # ROB occupancy: a full window stalls rename until the oldest
        # entry retires.
        if self._rob_count >= cfg.rob_entries:
            head_complete = self._rob_buf[self._rob_head]
            self._rob_head += 1
            if self._rob_head == self._rob_size:
                self._rob_head = 0
            self._rob_count -= 1
            head_retire = self._retire_slots.allocate(head_complete + 2)
            self._last_retire = max(self._last_retire, head_retire)
            if head_retire > earliest:
                self.stats.rob_stall_cycles += head_retire - floor
                earliest = head_retire

        # IQ occupancy (the 8 shared instruction slots + queues).
        heap = self._iq_heap
        while heap and heap[0] <= earliest:
            heappop(heap)
        if len(heap) >= cfg.iq_entries:
            soonest = heappop(heap)
            if soonest > earliest:
                self.stats.iq_stall_cycles += soonest - earliest
                earliest = soonest

        # SQ occupancy for stores.
        if ti.is_store_q:
            sq = self._sq_heap
            while sq and sq[0] <= earliest:
                heappop(sq)
            if len(sq) >= cfg.lsu.sq_entries:
                soonest = heappop(sq)
                if soonest > earliest:
                    self.stats.sq_stall_cycles += soonest - earliest
                    earliest = soonest

        # The rename-bandwidth allocation comes last so dispatch times
        # stay monotonic even after structural stalls.
        dispatch = self._rename_slots.allocate(earliest)
        self._last_dispatch = dispatch
        # Backend pressure reaches the IBUF through the decode ring:
        # fetch may run at most ibuf_entries instructions ahead of the
        # point where decode actually drains into rename.
        if self._dr_count == self._dr_cap:
            self._dr_buf[self._dr_start] = dispatch - 2
            self._dr_start += 1
            if self._dr_start == self._dr_cap:
                self._dr_start = 0
        else:
            idx = self._dr_start + self._dr_count
            if idx >= self._dr_cap:
                idx -= self._dr_cap
            self._dr_buf[idx] = dispatch - 2
            self._dr_count += 1
        return dispatch

    # -- execute ---------------------------------------------------------------------------

    def _execute(self, dyn: DynInst, dispatch: int) -> tuple[int, int]:
        ti = self._info(dyn)
        reg_ready = self._reg_ready
        ready = dispatch + 1
        for rid in ti.src_rids:
            t = reg_ready[rid]
            if t > ready:
                ready = t
        if not self.config.out_of_order:
            ready = max(ready, self._last_issue)
            ready = self._inorder_slots.allocate(ready)
            self._last_issue = ready

        kind = ti.kind
        if kind == K_STORE:
            issue, complete = self._execute_store(dyn, ti, dispatch, ready)
        elif kind == K_LOAD:
            issue, complete = self._execute_load(dyn, ti, ready)
        elif kind == K_VLOAD:
            issue, complete = self._execute_load(dyn, ti, ready,
                                                 vector=True)
        elif kind == K_SIMPLE:
            issue = self._issue_on(ti.pipe, ready, ti.occupy)
            complete = issue + ti.latency
        elif kind == K_DIV:
            spread = ti.base
            if spread <= 0:
                latency = ti.latency
            else:
                bits = min(max(dyn.div_bits, 1), 64)
                latency = ti.latency + (spread * bits) // 64
            issue = self._issue_on(P_DIV, ready, latency)
            complete = issue + latency
        else:   # K_VEC
            beats = self._vector_beats(dyn)
            self.stats.vector_beats += beats
            base = ti.base
            occupy = base * beats if ti.is_vdiv else beats
            issue = self._issue_on(P_VEC, ready, occupy)
            complete = issue + base + beats - 1

        if ti.vec_stat:
            self.stats.vector_instructions += 1
        for rid in ti.dest_rids:
            reg_ready[rid] = complete
        if complete > self._max_complete:
            self._max_complete = complete
        heappush(self._iq_heap, issue)
        return issue, complete

    def _issue_on(self, pipe_index: int, ready: int, occupy: int = 1) -> int:
        """Find the earliest cycle satisfying the pipe and the global
        8-wide issue bandwidth, then book both."""
        pipe = self._pipe_list[pipe_index]
        bw = self._issue_bw
        cycle = ready
        while True:
            c1 = pipe.earliest(cycle, occupy)
            c2 = bw.earliest(c1)
            if c2 == c1:
                pipe.book(c1, occupy)
                bw.book(c1)
                return c1
            cycle = c2

    def _prune_pipes(self, before: int) -> None:
        self._prune_countdown -= 1
        if self._prune_countdown <= 0:
            self._prune_countdown = 8192
            floor = before - 64
            for pipe in set(self._pipe_list):
                pipe.advance(floor)
            self._issue_bw.advance(floor)

    def _vector_beats(self, dyn: DynInst) -> int:
        """Beats from the slice datapath: 2 slices x 2 pipes x 64 bits =
        256 result bits per cycle (section VII)."""
        work = max(dyn.vl, 1) * max(dyn.sew, 8)
        return max(1, -(-work // self._vec_bits))

    # -- LSU -----------------------------------------------------------------------------------

    def _execute_store(self, dyn: DynInst, ti: TimingInfo, dispatch: int,
                       ready_all: int) -> tuple[int, int]:
        lsu = self.config.lsu
        self.stats.uops += 1  # the extra st.data uop
        if lsu.pseudo_dual_store:
            reg_ready = self._reg_ready
            addr_ready = dispatch + 1
            for rid in ti.addr_rids:
                t = reg_ready[rid]
                if t > addr_ready:
                    addr_ready = t
            data_ready = dispatch + 1
            for rid in ti.data_rids:
                t = reg_ready[rid]
                if t > data_ready:
                    data_ready = t
            if not self.config.out_of_order:
                addr_ready = max(addr_ready, ready_all)
                data_ready = max(data_ready, ready_all)
            addr_issue = self._issue_on(P_STADDR, addr_ready)
            data_issue = self._issue_on(P_STDATA, data_ready)
        else:
            addr_issue = self._issue_on(P_STADDR, ready_all)
            data_issue = addr_issue
        addr_done = addr_issue + 1
        data_done = data_issue + 1
        complete = max(addr_done, data_done)
        # The merged write drains from the SQ's write buffer to the
        # cache after both halves arrive.
        drain_latency = self.hier.access_data(
            dyn.mem_addr, complete, is_write=True,
            size=max(dyn.mem_size, 1))
        heappush(self._sq_heap, complete + drain_latency)
        self._stores.add(StoreRecord(
            seq=dyn.seq, pc=dyn.pc, addr=dyn.mem_addr,
            size=max(dyn.mem_size, 1), addr_ready=addr_done,
            data_ready=data_done))
        return max(addr_issue, data_issue), complete

    def _execute_load(self, dyn: DynInst, ti: TimingInfo, ready: int,
                      vector: bool = False) -> tuple[int, int]:
        lsu = self.config.lsu
        issue = self._issue_on(P_LOAD, ready)

        # Memory-dependence prediction: tagged loads wait for older
        # unresolved store addresses instead of speculating.
        if self.memdep.predicts_conflict(dyn.pc):
            unresolved = self._stores.unresolved_at(dyn.seq, issue)
            if unresolved:
                barrier = max(s.addr_ready for s in unresolved)
                if barrier > issue:
                    self.stats.memdep_delays += 1
                    issue = self._issue_on(P_LOAD, barrier)
            else:
                self.memdep.train_no_conflict(dyn.pc)

        conflicts = self._stores.conflicting_stores(
            dyn.seq, dyn.mem_addr, max(dyn.mem_size, 1))
        violation_store = None
        forward_store = None
        for store in conflicts:
            if store.addr_ready > issue:
                violation_store = store
            else:
                forward_store = store

        if violation_store is not None:
            # The load executed before an older same-address store's
            # address resolved: speculative failure, global flush.
            self.stats.lsu_violations += 1
            self.memdep.train_violation(dyn.pc)
            restart = violation_store.data_ready \
                + lsu.violation_flush_penalty
            issue = self._issue_on(P_LOAD, max(issue, restart))
            forward_store = violation_store

        if forward_store is not None and forward_store.data_ready <= issue + 1:
            self.stats.lsu_forwards += 1
            complete = max(issue + lsu.forward_latency + 1,
                           forward_store.data_ready + lsu.forward_latency)
            return issue, complete
        if forward_store is not None:
            # Data not yet available: wait for it, then forward.
            self.stats.lsu_forwards += 1
            complete = forward_store.data_ready + lsu.forward_latency + 1
            return issue, complete

        extra = self.hier.access_data(dyn.mem_addr, issue,
                                      is_write=ti.is_amo,
                                      size=max(dyn.mem_size, 1))
        if vector:
            extra += self._vector_beats(dyn) - 1
        complete = issue + lsu.load_to_use + extra
        return issue, complete

    # -- retire --------------------------------------------------------------------------------

    def _retire(self, dyn: DynInst, dispatch: int, complete: int) -> None:
        self.stats.uops += 1
        idx = self._rob_head + self._rob_count
        if idx >= self._rob_size:
            idx -= self._rob_size
        self._rob_buf[idx] = complete
        self._rob_count += 1
        self._stores.retire_older_than(dyn.seq - self.config.rob_entries)
        self._prune_pipes(dispatch)

    def _drain(self) -> None:
        while self._rob_count:
            head_complete = self._rob_buf[self._rob_head]
            self._rob_head += 1
            if self._rob_head == self._rob_size:
                self._rob_head = 0
            self._rob_count -= 1
            cycle = self._retire_slots.allocate(head_complete + 2)
            self._last_retire = max(self._last_retire, cycle)
        self.stats.cycles = max(self._last_retire, self._fetch_cycle, 1)
        self.hier.drain_pending()

    # -- control resolution ----------------------------------------------------------------------

    def _resolve_control(self, dyn: DynInst, fetch: int,
                         complete: int) -> None:
        ti = self._info(dyn)
        ctrl = ti.ctrl
        if ctrl == C_NONE:
            return
        fe = self.config.frontend
        self.stats.branches += 1
        pc = dyn.pc

        # Loop-buffer tracking: distance back to the target in dynamic
        # instructions approximates the body size.
        body = 0
        if dyn.taken and dyn.target <= pc:
            last_seen = self._last_target_seen.get(dyn.target)
            if last_seen is not None:
                body = dyn.seq - last_seen
        self._last_target_seen[dyn.target if dyn.taken else dyn.next_pc] \
            = dyn.seq
        if len(self._last_target_seen) > 4096:
            self._last_target_seen.clear()
        in_lbuf = self.lbuf.active and self.lbuf.covers(pc)
        self.lbuf.observe_branch(pc, dyn.target if dyn.taken else dyn.next_pc,
                                 dyn.taken, body)

        if ctrl == C_BRANCH:
            mispredicted = self.direction.update(pc, dyn.taken)
            if mispredicted:
                self.stats.direction_mispredicts += 1
                self._redirect(complete + fe.mispredict_extra)
                return
            if dyn.taken:
                self._taken_bubble(pc, dyn.target, in_lbuf)
            # Back-to-back conditional branches without the two-level
            # prefetch buffers cost one dead cycle (section III.A).
            if not self.direction.consecutive_ok:
                if fetch - self._last_was_branch_cycle <= 1:
                    self._fetch_cycle += 1
                    self.stats.fetch_bubbles += 1
            self._last_was_branch_cycle = fetch
            return

        # Jumps.
        if ctrl == C_JAL_CALL:
            self.ras.push(pc + ti.size)
            self._taken_bubble(pc, dyn.target, in_lbuf)
            return
        if ctrl == C_JAL:
            self._taken_bubble(pc, dyn.target, in_lbuf)
            return
        if ctrl == C_RETURN:
            predicted = self.ras.predict_pop()
            if self.ras.check(predicted, dyn.target):
                self.stats.ras_mispredicts += 1
                self._redirect(complete + fe.mispredict_extra)
            else:
                self._taken_bubble(pc, dyn.target, in_lbuf)
            return
        if ctrl == C_IND_CALL:
            self.ras.push(pc + ti.size)
        if self.indirect.update(pc, dyn.target):
            self.stats.indirect_mispredicts += 1
            self._redirect(complete + fe.mispredict_extra)
        else:
            self._taken_bubble(pc, dyn.target, in_lbuf)

    def _taken_bubble(self, pc: int, target: int, in_lbuf: bool) -> None:
        """Charge the taken-redirect cost by where the target came from."""
        fe = self.config.frontend
        level, predicted = self.btb.predict(pc)
        if self.btb.update(pc, target, predicted):
            self.stats.target_mispredicts += 1
            bubbles = fe.taken_bubble_miss
        elif in_lbuf:
            bubbles = 0   # LBUF: last and first instruction co-issue
        elif level is BtbLevel.L0:
            bubbles = fe.taken_bubble_l0
        elif level is BtbLevel.L1:
            bubbles = fe.taken_bubble_l1
        else:
            bubbles = fe.taken_bubble_miss
        if bubbles:
            self._fetch_cycle += bubbles
            self.stats.taken_branch_bubbles += bubbles
        self._fetch_group = None  # next fetch starts a new group

    def _redirect(self, resume_cycle: int) -> None:
        self._pending_redirect = max(
            self._pending_redirect or 0, resume_cycle)
