"""LSU ordering structures (paper section V.A).

The model covers the three mechanisms the paper describes:

* **LQ/SQ ordering checks** — a load probes all older stores still in
  the store queue; matching addresses forward; a load that slipped past
  an older same-address store whose address was not yet known triggers
  a speculative failure and a global flush.
* **store-to-load forwarding** — same-address older store with data
  ready forwards at a short latency instead of going to the cache.
* **memory-dependence prediction** — loads that caused violations are
  tagged; future instances are held until the conflicting store's
  address resolves ("the execution is blocked by the execution unit to
  ensure that the load instruction is not executed ahead of the store").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(slots=True)
class StoreRecord:
    """One in-flight store's timing/address facts."""

    seq: int
    pc: int
    addr: int
    size: int
    addr_ready: int      # cycle the st.addr uop completes
    data_ready: int      # cycle the st.data uop completes

    def overlaps(self, addr: int, size: int) -> bool:
        return addr < self.addr + self.size and self.addr < addr + size


class MemDepPredictor:
    """Store-set-lite: tags load PCs that violated ordering."""

    def __init__(self, entries: int = 256, enabled: bool = True):
        self.entries = entries
        self.enabled = enabled
        self._tagged: dict[int, int] = {}   # load pc -> confidence

    def predicts_conflict(self, load_pc: int) -> bool:
        return self.enabled and self._tagged.get(load_pc, 0) > 0

    def train_violation(self, load_pc: int) -> None:
        if not self.enabled:
            return
        if len(self._tagged) >= self.entries and load_pc not in self._tagged:
            # Evict the weakest tag.
            weakest = min(self._tagged, key=self._tagged.get)
            del self._tagged[weakest]
        self._tagged[load_pc] = min(self._tagged.get(load_pc, 0) + 2, 3)

    def train_no_conflict(self, load_pc: int) -> None:
        if load_pc in self._tagged:
            self._tagged[load_pc] -= 1
            if self._tagged[load_pc] <= 0:
                del self._tagged[load_pc]


class StoreQueueModel:
    """Sliding window over in-flight stores for ordering checks.

    Records are appended in program order (strictly increasing ``seq``),
    so both eviction paths work from the left end of a deque instead of
    rebuilding the container — ``retire_older_than`` runs once per
    retired instruction, which made the old list rebuild the hottest
    allocation site in the timing model.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._stores: deque[StoreRecord] = deque()

    def add(self, record: StoreRecord) -> None:
        self._stores.append(record)
        if len(self._stores) > self.capacity:
            self._stores.popleft()

    def retire_older_than(self, seq: int) -> None:
        stores = self._stores
        while stores and stores[0].seq < seq:
            stores.popleft()

    def conflicting_stores(self, seq: int, addr: int,
                           size: int) -> list[StoreRecord]:
        """Older stores whose footprint overlaps [addr, addr+size)."""
        return [s for s in self._stores
                if s.seq < seq and s.overlaps(addr, size)]

    def unresolved_at(self, seq: int, cycle: int) -> list[StoreRecord]:
        """Older stores whose address is still unknown at *cycle*."""
        return [s for s in self._stores
                if s.seq < seq and s.addr_ready > cycle]
