"""Frozen pre-fast-path pipeline model (the differential-test oracle).

This is a verbatim copy of ``repro.uarch.core`` as it stood before the
timing fast path (static ``TimingInfo`` cache, ring-array scheduling
structures, block-batched feed) landed.  It exists for one purpose: the
equivalence gate.  ``tests/uarch/test_timing_fastpath.py`` replays the
same dynamic instruction trace through this model and the optimised one
and requires bit-identical :class:`~repro.uarch.stats.CoreStats`.

Do not optimise or "fix" this module.  If the timing semantics are ever
*intentionally* changed, change :mod:`repro.uarch.core` first, update
this copy to match in the same commit, and regenerate
``tests/uarch/golden_stats.json``.
"""


from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass

from ..isa.instructions import InstrClass
from ..isa.registers import Reg
from ..mem.hierarchy import MemoryHierarchy
from ..sim.trace import DynInst
from .branch import HybridDirectionPredictor
from .btb import BtbLevel, CascadedBtb, IndirectPredictor, ReturnAddressStack
from .config import CoreConfig
from .loopbuf import LoopBuffer
from .lsu import MemDepPredictor, StoreRecord
from .stats import CoreStats


class _FrozenStoreQueueModel:
    """The pre-fast-path (list-rebuilding) store queue, kept verbatim so
    the oracle's cost profile stays representative of the old model."""

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._stores: list[StoreRecord] = []

    def add(self, record: StoreRecord) -> None:
        self._stores.append(record)
        if len(self._stores) > self.capacity:
            self._stores.pop(0)

    def retire_older_than(self, seq: int) -> None:
        self._stores = [s for s in self._stores if s.seq >= seq]

    def conflicting_stores(self, seq: int, addr: int,
                           size: int) -> list[StoreRecord]:
        return [s for s in self._stores
                if s.seq < seq and s.overlaps(addr, size)]

    def unresolved_at(self, seq: int, cycle: int) -> list[StoreRecord]:
        return [s for s in self._stores
                if s.seq < seq and s.addr_ready > cycle]


class SlotAllocator:
    """Bandwidth limiter: at most ``width`` grants per cycle, monotonic."""

    def __init__(self, width: int):
        self.width = width
        self.cycle = -1
        self.used = 0

    def allocate(self, earliest: int) -> int:
        if earliest > self.cycle:
            self.cycle = earliest
            self.used = 1
            return earliest
        if self.used < self.width:
            self.used += 1
            return self.cycle
        self.cycle += 1
        self.used = 1
        return self.cycle


class PipeGroup:
    """N identical execution pipes with out-of-order backfill.

    Bookings are per-cycle counters rather than next-free pointers, so a
    younger instruction whose operands are ready early can slip into a
    cycle an older long-waiting instruction left idle — what an age-
    vector scheduler actually does.
    """

    def __init__(self, count: int):
        self.count = max(count, 1)
        self.used: dict[int, int] = {}

    def earliest(self, ready: int, occupy: int = 1) -> int:
        cycle = ready
        if occupy <= 1:
            while self.used.get(cycle, 0) >= self.count:
                cycle += 1
            return cycle
        while True:
            if all(self.used.get(cycle + k, 0) < self.count
                   for k in range(occupy)):
                return cycle
            cycle += 1

    def book(self, cycle: int, occupy: int = 1) -> None:
        for k in range(occupy):
            slot = cycle + k
            self.used[slot] = self.used.get(slot, 0) + 1

    def prune(self, before: int) -> None:
        if len(self.used) > 4096:
            self.used = {c: n for c, n in self.used.items() if c >= before}


@dataclass
class _RobEntry:
    seq: int
    complete: int


class ReferencePipelineModel:
    """Runs a dynamic instruction stream through one core."""

    def __init__(self, config: CoreConfig | None = None,
                 hierarchy: MemoryHierarchy | None = None):
        self.config = config = config if config is not None else CoreConfig()
        self.hier = hierarchy if hierarchy is not None \
            else MemoryHierarchy(config.mem)
        fe = config.frontend
        self.direction = HybridDirectionPredictor(fe.direction)
        self.btb = CascadedBtb(fe.btb)
        self.ras = ReturnAddressStack(fe.ras_entries)
        self.indirect = IndirectPredictor(fe.indirect_entries)
        self.lbuf = LoopBuffer(fe.loop_buffer)
        self.memdep = MemDepPredictor(config.lsu.memdep_entries,
                                      config.lsu.memdep_predictor)
        self.stats = CoreStats()
        self._reset_run_state()

    # -- public API ---------------------------------------------------------------

    def run(self, trace: Iterable) -> CoreStats:
        """Consume a dynamic instruction stream; returns the statistics.

        Accepts either a flat :class:`DynInst` iterator
        (``Emulator.trace``) or a batched one yielding lists/tuples of
        records (``Emulator.fast_trace``) — the timing result is
        identical, batching only amortises generator overhead.
        """
        self._reset_run_state()
        simulate = self._simulate
        for item in trace:
            if type(item) is DynInst:
                simulate(item)
            else:
                for dyn in item:
                    simulate(dyn)
        self._drain()
        self._collect_ras()
        return self.stats

    def feed(self, dyn: DynInst) -> None:
        """Incremental interface: time one instruction (multi-core
        interleaving uses this to keep per-core clocks aligned)."""
        self._simulate(dyn)

    def finish(self) -> CoreStats:
        """Close out an incremental run started with :meth:`feed`."""
        self._drain()
        self._collect_ras()
        return self.stats

    def _collect_ras(self) -> None:
        """Fold the hierarchy's RAS counters into the run statistics.

        With a shared L2 (SMP runs) the L2's events appear in every
        core's stats; the campaign reads the hierarchy directly when it
        needs exact attribution.
        """
        summary = self.hier.ras_summary()
        self.stats.ecc_corrected = summary["ecc_corrected"]
        self.stats.ecc_uncorrectable = summary["ecc_uncorrectable"]
        self.stats.parity_errors = summary["parity_errors"]
        self.stats.ways_disabled = summary["ways_disabled"]

    # -- state -----------------------------------------------------------------------

    def _reset_run_state(self) -> None:
        cfg = self.config
        self.stats = CoreStats()
        self._fetch_cycle = 0
        self._fetch_group: int | None = None
        self._fetch_slots = 0
        self._group_shift = cfg.frontend.fetch_bytes.bit_length() - 1
        self._pending_redirect: int | None = None
        self._last_was_branch_cycle = -2
        self._decode_slots = SlotAllocator(cfg.decode_width)
        self._last_dispatch = 0
        self._rename_slots = SlotAllocator(cfg.rename_width)
        self._retire_slots = SlotAllocator(cfg.retire_width)
        self._decode_ring: deque[int] = deque(maxlen=cfg.frontend.ibuf_entries)
        self._reg_ready: dict[Reg, int] = {}
        self._rob: deque[_RobEntry] = deque()
        self._last_retire = 0
        self._iq_heap: list[int] = []
        self._sq_heap: list[int] = []
        self._serialize_until = 0
        self._last_issue = 0          # for in-order issue
        self._inorder_slots = SlotAllocator(cfg.issue_width)
        self._max_complete = 0
        self._loop_head_seq: dict[int, int] = {}
        self._last_target_seen: dict[int, int] = {}
        self._issue_bw = PipeGroup(cfg.issue_width)
        self._prune_countdown = 8192
        fu = self.config.fu
        self._pipes = {
            "alu": PipeGroup(fu.alu_count),
            "bju": PipeGroup(fu.bju_count),
            "div": PipeGroup(1),
            "load": PipeGroup(1),
            "staddr": PipeGroup(1),
            "stdata": PipeGroup(1),
            "fpu": PipeGroup(fu.fpu_count),
            "vec": PipeGroup(fu.vec_slices),
        }
        if not self.config.lsu.dual_issue:
            shared = PipeGroup(1)
            self._pipes["load"] = shared
            self._pipes["staddr"] = shared
            self._pipes["stdata"] = shared
        self._stores = _FrozenStoreQueueModel(self.config.lsu.sq_entries * 2)

    # -- per-instruction simulation ------------------------------------------------------

    def _simulate(self, dyn: DynInst) -> None:
        self.stats.instructions += 1
        fetch = self._frontend(dyn)
        dispatch = self._dispatch(dyn, fetch)
        issue, complete = self._execute(dyn, dispatch)
        self._retire(dyn, dispatch, complete)
        self._resolve_control(dyn, fetch, complete)

    # -- frontend -------------------------------------------------------------------------

    def _frontend(self, dyn: DynInst) -> int:
        fe = self.config.frontend
        pc = dyn.pc
        if self._pending_redirect is not None:
            self._fetch_cycle = max(self._fetch_cycle,
                                    self._pending_redirect)
            self._fetch_group = None
            self._pending_redirect = None

        from_lbuf = self.lbuf.active and self.lbuf.covers(pc)
        if from_lbuf:
            # LBUF supplies decode-width instructions per cycle with no
            # I$ access and no taken-branch bubble.
            if self._fetch_slots >= self.config.decode_width:
                self._fetch_cycle += 1
                self._fetch_slots = 0
            self._fetch_slots += 1
            self.lbuf.supply()
            self.stats.lbuf_supplied += 1
            self._fetch_group = None
            return self._fetch_cycle

    # Normal path: one 128-bit aligned group per cycle.
        group = pc >> self._group_shift
        if group != self._fetch_group or self._fetch_slots >= fe.fetch_insts:
            if self._fetch_group is not None:
                self._fetch_cycle += 1
            extra = self.hier.access_inst(pc, self._fetch_cycle)
            if extra:
                self._fetch_cycle += extra
                self.stats.icache_stall_cycles += extra
            self._fetch_group = group
            self._fetch_slots = 0
        self._fetch_slots += 1

        # IBUF capacity: fetch cannot run further ahead than the buffer.
        if len(self._decode_ring) == self._decode_ring.maxlen:
            self._fetch_cycle = max(self._fetch_cycle, self._decode_ring[0])
        return self._fetch_cycle

    def _dispatch(self, dyn: DynInst, fetch: int) -> int:
        cfg = self.config
        decode = self._decode_slots.allocate(fetch + 3)      # IF/IP/IB -> ID
        earliest = max(decode + 2, self._last_dispatch)      # ID/IR -> IS
        floor = earliest

        if dyn.inst.iclass in (InstrClass.CSR, InstrClass.SYSTEM):
            # Serializing: wait for the machine to drain.
            wait = max(self._max_complete, self._serialize_until)
            if wait > earliest:
                self.stats.serializations += 1
                earliest = wait
            self._serialize_until = earliest
        elif self._serialize_until > earliest:
            earliest = self._serialize_until

        # ROB occupancy: a full window stalls rename until the oldest
        # entry retires.
        if len(self._rob) >= cfg.rob_entries:
            head = self._rob.popleft()
            head_retire = self._retire_slots.allocate(head.complete + 2)
            self._last_retire = max(self._last_retire, head_retire)
            if head_retire > earliest:
                self.stats.rob_stall_cycles += head_retire - floor
                earliest = head_retire

        # IQ occupancy (the 8 shared instruction slots + queues).
        heap = self._iq_heap
        while heap and heap[0] <= earliest:
            heapq.heappop(heap)
        if len(heap) >= cfg.iq_entries:
            soonest = heapq.heappop(heap)
            if soonest > earliest:
                self.stats.iq_stall_cycles += soonest - earliest
                earliest = soonest

        # SQ occupancy for stores.
        if dyn.inst.iclass in (InstrClass.STORE, InstrClass.VSTORE):
            sq = self._sq_heap
            while sq and sq[0] <= earliest:
                heapq.heappop(sq)
            if len(sq) >= cfg.lsu.sq_entries:
                soonest = heapq.heappop(sq)
                if soonest > earliest:
                    self.stats.sq_stall_cycles += soonest - earliest
                    earliest = soonest

        # The rename-bandwidth allocation comes last so dispatch times
        # stay monotonic even after structural stalls.
        dispatch = self._rename_slots.allocate(earliest)
        self._last_dispatch = dispatch
        # Backend pressure reaches the IBUF through the decode ring:
        # fetch may run at most ibuf_entries instructions ahead of the
        # point where decode actually drains into rename.
        self._decode_ring.append(dispatch - 2)
        return dispatch

    # -- execute ---------------------------------------------------------------------------

    def _execute(self, dyn: DynInst, dispatch: int) -> tuple[int, int]:
        inst = dyn.inst
        iclass = inst.iclass
        ready = dispatch + 1
        for src in inst.srcs:
            t = self._reg_ready.get(src, 0)
            if t > ready:
                ready = t
        if not self.config.out_of_order:
            ready = max(ready, self._last_issue)
            ready = self._inorder_slots.allocate(ready)
            self._last_issue = ready

        if iclass in (InstrClass.STORE, InstrClass.VSTORE):
            issue, complete = self._execute_store(dyn, dispatch, ready)
        elif iclass in (InstrClass.LOAD, InstrClass.AMO):
            issue, complete = self._execute_load(dyn, dispatch, ready)
        elif iclass == InstrClass.VLOAD:
            issue, complete = self._execute_load(dyn, dispatch, ready,
                                                 vector=True)
        else:
            pipe, latency, occupy = self._pipe_and_latency(dyn)
            issue = self._issue_on(pipe, ready, occupy)
            complete = issue + latency

        if iclass.value.startswith("v"):
            self.stats.vector_instructions += 1
        for dest in inst.dests:
            self._reg_ready[dest] = complete
        if complete > self._max_complete:
            self._max_complete = complete
        heapq.heappush(self._iq_heap, issue)
        return issue, complete

    def _issue_on(self, pipe_name: str, ready: int, occupy: int = 1) -> int:
        """Find the earliest cycle satisfying the pipe and the global
        8-wide issue bandwidth, then book both."""
        pipe = self._pipes[pipe_name]
        cycle = ready
        while True:
            c1 = pipe.earliest(cycle, occupy)
            c2 = self._issue_bw.earliest(c1)
            if c2 == c1:
                pipe.book(c1, occupy)
                self._issue_bw.book(c1)
                return c1
            cycle = c2

    def _prune_pipes(self, before: int) -> None:
        self._prune_countdown -= 1
        if self._prune_countdown <= 0:
            self._prune_countdown = 8192
            for pipe in set(self._pipes.values()):
                pipe.prune(before - 64)
            self._issue_bw.prune(before - 64)

    def _pipe_and_latency(self, dyn: DynInst) -> tuple[str, int, int]:
        fu = self.config.fu
        iclass = dyn.inst.iclass
        if iclass == InstrClass.ALU:
            return "alu", 1, 1
        if iclass == InstrClass.MUL:
            return "alu", fu.mul_latency, 1
        if iclass == InstrClass.DIV:
            latency = self._div_latency(fu.div_latency_min,
                                        fu.div_latency_max, dyn)
            return "div", latency, latency
        if iclass in (InstrClass.BRANCH, InstrClass.JUMP):
            return "bju", 1, 1
        if iclass == InstrClass.FP:
            return "fpu", fu.fp_latency, 1
        if iclass == InstrClass.FMUL:
            return "fpu", fu.fmul_latency, 1
        if iclass == InstrClass.FDIV:
            return "fpu", fu.fdiv_latency, fu.fdiv_latency
        if iclass in (InstrClass.CSR, InstrClass.SYSTEM, InstrClass.VSET):
            return "alu", 1, 1
        # vector classes
        beats = self._vector_beats(dyn)
        self.stats.vector_beats += beats
        base = {InstrClass.VALU: fu.valu_latency,
                InstrClass.VMUL: fu.vmul_latency,
                InstrClass.VFP: fu.vfp_latency,
                InstrClass.VFMUL: fu.vfmul_latency,
                InstrClass.VFDIV: fu.vdiv_latency,
                InstrClass.VDIV: fu.vdiv_latency,
                InstrClass.VREDUCE: fu.vreduce_latency,
                InstrClass.VPERM: fu.vperm_latency}.get(iclass, 3)
        occupy = beats if iclass not in (InstrClass.VDIV, InstrClass.VFDIV) \
            else base * beats
        return "vec", base + beats - 1, occupy

    def _vector_beats(self, dyn: DynInst) -> int:
        """Beats from the slice datapath: 2 slices x 2 pipes x 64 bits =
        256 result bits per cycle (section VII)."""
        bits_per_cycle = self.config.fu.vec_slices * 128
        work = max(dyn.vl, 1) * max(dyn.sew, 8)
        return max(1, -(-work // bits_per_cycle))

    @staticmethod
    def _div_latency(lo: int, hi: int, dyn: DynInst) -> int:
        """Early-out divider: latency scales with the dividend's
        magnitude, which the emulator records in the trace."""
        spread = hi - lo
        if spread <= 0:
            return lo
        bits = min(max(dyn.div_bits, 1), 64)
        return lo + (spread * bits) // 64

    # -- LSU -----------------------------------------------------------------------------------

    def _split_store_operands(self, dyn: DynInst) -> tuple[list[Reg], list[Reg]]:
        """(address-generation sources, data sources) for a store."""
        inst = dyn.inst
        spec = inst.spec
        addr_srcs: list[Reg] = []
        data_srcs: list[Reg] = []
        for reg in inst.srcs:
            if spec.fmt == "S":
                (data_srcs if (reg.file == spec.rs2_file
                               and reg.index == inst.rs2)
                 else addr_srcs).append(reg)
            elif spec.fmt == "XTIDXS":
                (data_srcs if (reg.file == "x" and reg.index == inst.rs3)
                 else addr_srcs).append(reg)
            elif spec.fmt in ("VS", "VSS"):
                (data_srcs if reg.file == "v" else addr_srcs).append(reg)
            else:
                addr_srcs.append(reg)
        return addr_srcs, data_srcs

    def _execute_store(self, dyn: DynInst, dispatch: int,
                       ready_all: int) -> tuple[int, int]:
        lsu = self.config.lsu
        self.stats.uops += 1  # the extra st.data uop
        if lsu.pseudo_dual_store:
            addr_srcs, data_srcs = self._split_store_operands(dyn)
            addr_ready = dispatch + 1
            for reg in addr_srcs:
                addr_ready = max(addr_ready, self._reg_ready.get(reg, 0))
            data_ready = dispatch + 1
            for reg in data_srcs:
                data_ready = max(data_ready, self._reg_ready.get(reg, 0))
            if not self.config.out_of_order:
                addr_ready = max(addr_ready, ready_all)
                data_ready = max(data_ready, ready_all)
            addr_issue = self._issue_on("staddr", addr_ready)
            data_issue = self._issue_on("stdata", data_ready)
        else:
            addr_issue = self._issue_on("staddr", ready_all)
            data_issue = addr_issue
        addr_done = addr_issue + 1
        data_done = data_issue + 1
        complete = max(addr_done, data_done)
        # The merged write drains from the SQ's write buffer to the
        # cache after both halves arrive.
        drain_latency = self.hier.access_data(
            dyn.mem_addr, complete, is_write=True,
            size=max(dyn.mem_size, 1))
        heapq.heappush(self._sq_heap, complete + drain_latency)
        self._stores.add(StoreRecord(
            seq=dyn.seq, pc=dyn.pc, addr=dyn.mem_addr,
            size=max(dyn.mem_size, 1), addr_ready=addr_done,
            data_ready=data_done))
        return max(addr_issue, data_issue), complete

    def _execute_load(self, dyn: DynInst, dispatch: int, ready: int,
                      vector: bool = False) -> tuple[int, int]:
        lsu = self.config.lsu
        issue = self._issue_on("load", ready)

        # Memory-dependence prediction: tagged loads wait for older
        # unresolved store addresses instead of speculating.
        if self.memdep.predicts_conflict(dyn.pc):
            unresolved = self._stores.unresolved_at(dyn.seq, issue)
            if unresolved:
                barrier = max(s.addr_ready for s in unresolved)
                if barrier > issue:
                    self.stats.memdep_delays += 1
                    issue = self._issue_on("load", barrier)
            else:
                self.memdep.train_no_conflict(dyn.pc)

        conflicts = self._stores.conflicting_stores(
            dyn.seq, dyn.mem_addr, max(dyn.mem_size, 1))
        violation_store = None
        forward_store = None
        for store in conflicts:
            if store.addr_ready > issue:
                violation_store = store
            else:
                forward_store = store

        if violation_store is not None:
            # The load executed before an older same-address store's
            # address resolved: speculative failure, global flush.
            self.stats.lsu_violations += 1
            self.memdep.train_violation(dyn.pc)
            restart = violation_store.data_ready \
                + lsu.violation_flush_penalty
            issue = self._issue_on("load", max(issue, restart))
            forward_store = violation_store

        if forward_store is not None and forward_store.data_ready <= issue + 1:
            self.stats.lsu_forwards += 1
            complete = max(issue + lsu.forward_latency + 1,
                           forward_store.data_ready + lsu.forward_latency)
            return issue, complete
        if forward_store is not None:
            # Data not yet available: wait for it, then forward.
            self.stats.lsu_forwards += 1
            complete = forward_store.data_ready + lsu.forward_latency + 1
            return issue, complete

        is_amo = dyn.inst.iclass == InstrClass.AMO
        extra = self.hier.access_data(dyn.mem_addr, issue, is_write=is_amo,
                                      size=max(dyn.mem_size, 1))
        if vector:
            extra += self._vector_beats(dyn) - 1
        complete = issue + lsu.load_to_use + extra
        return issue, complete

    # -- retire --------------------------------------------------------------------------------

    def _retire(self, dyn: DynInst, dispatch: int, complete: int) -> None:
        self.stats.uops += 1
        self._rob.append(_RobEntry(seq=dyn.seq, complete=complete))
        self._stores.retire_older_than(dyn.seq - self.config.rob_entries)
        self._prune_pipes(dispatch)

    def _drain(self) -> None:
        while self._rob:
            head = self._rob.popleft()
            cycle = self._retire_slots.allocate(head.complete + 2)
            self._last_retire = max(self._last_retire, cycle)
        self.stats.cycles = max(self._last_retire, self._fetch_cycle, 1)
        self.hier.drain_pending()

    # -- control resolution ----------------------------------------------------------------------

    def _resolve_control(self, dyn: DynInst, fetch: int,
                         complete: int) -> None:
        inst = dyn.inst
        iclass = inst.iclass
        if iclass not in (InstrClass.BRANCH, InstrClass.JUMP):
            return
        fe = self.config.frontend
        self.stats.branches += 1
        pc = dyn.pc

        # Loop-buffer tracking: distance back to the target in dynamic
        # instructions approximates the body size.
        body = 0
        if dyn.taken and dyn.target <= pc:
            last_seen = self._last_target_seen.get(dyn.target)
            if last_seen is not None:
                body = dyn.seq - last_seen
        self._last_target_seen[dyn.target if dyn.taken else dyn.next_pc] \
            = dyn.seq
        if len(self._last_target_seen) > 4096:
            self._last_target_seen.clear()
        in_lbuf = self.lbuf.active and self.lbuf.covers(pc)
        self.lbuf.observe_branch(pc, dyn.target if dyn.taken else dyn.next_pc,
                                 dyn.taken, body)

        if iclass == InstrClass.BRANCH:
            mispredicted = self.direction.update(pc, dyn.taken)
            if mispredicted:
                self.stats.direction_mispredicts += 1
                self._redirect(complete + fe.mispredict_extra)
                return
            if dyn.taken:
                self._taken_bubble(pc, dyn.target, in_lbuf)
            # Back-to-back conditional branches without the two-level
            # prefetch buffers cost one dead cycle (section III.A).
            if not self.direction.consecutive_ok:
                if fetch - self._last_was_branch_cycle <= 1:
                    self._fetch_cycle += 1
                    self.stats.fetch_bubbles += 1
            self._last_was_branch_cycle = fetch
            return

        # Jumps.
        mn = inst.spec.mnemonic
        if mn == "jal":
            if inst.rd == 1:
                self.ras.push(pc + inst.size)
            self._taken_bubble(pc, dyn.target, in_lbuf)
            return
        # jalr family
        is_return = inst.rd == 0 and inst.rs1 == 1
        is_call = inst.rd == 1
        if is_return:
            predicted = self.ras.predict_pop()
            if self.ras.check(predicted, dyn.target):
                self.stats.ras_mispredicts += 1
                self._redirect(complete + fe.mispredict_extra)
            else:
                self._taken_bubble(pc, dyn.target, in_lbuf)
            return
        if is_call:
            self.ras.push(pc + inst.size)
        if self.indirect.update(pc, dyn.target):
            self.stats.indirect_mispredicts += 1
            self._redirect(complete + fe.mispredict_extra)
        else:
            self._taken_bubble(pc, dyn.target, in_lbuf)

    def _taken_bubble(self, pc: int, target: int, in_lbuf: bool) -> None:
        """Charge the taken-redirect cost by where the target came from."""
        fe = self.config.frontend
        level, predicted = self.btb.predict(pc)
        if self.btb.update(pc, target, predicted):
            self.stats.target_mispredicts += 1
            bubbles = fe.taken_bubble_miss
        elif in_lbuf:
            bubbles = 0   # LBUF: last and first instruction co-issue
        elif level is BtbLevel.L0:
            bubbles = fe.taken_bubble_l0
        elif level is BtbLevel.L1:
            bubbles = fe.taken_bubble_l1
        else:
            bubbles = fe.taken_bubble_miss
        if bubbles:
            self._fetch_cycle += bubbles
            self.stats.taken_branch_bubbles += bubbles
        self._fetch_group = None  # next fetch starts a new group

    def _redirect(self, resume_cycle: int) -> None:
        self._pending_redirect = max(
            self._pending_redirect or 0, resume_cycle)
