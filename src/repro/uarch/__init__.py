"""Microarchitecture timing models: predictors, pipeline, presets."""

from .branch import DirectionConfig, HybridDirectionPredictor  # noqa: F401
from .btb import (  # noqa: F401
    BtbConfig,
    BtbLevel,
    CascadedBtb,
    IndirectPredictor,
    ReturnAddressStack,
)
from .config import CoreConfig, FrontendConfig, FuConfig, LsuConfig  # noqa: F401
from .core import PipelineModel  # noqa: F401
from .loopbuf import LoopBuffer, LoopBufferConfig  # noqa: F401
from .lsu import MemDepPredictor, StoreQueueModel, StoreRecord  # noqa: F401
from .presets import PRESETS, get_preset  # noqa: F401
from .stats import CoreStats  # noqa: F401
