"""Cascaded branch target buffers (paper section III.B).

* **L0 BTB** — 16 entries, fully associative, consulted at the IF
  stage.  A hit executes the jump immediately, eliminating the taken-
  branch bubble entirely.  It exists for jump-dense code whose bubbles
  the IBUF cannot hide.
* **L1 BTB** — the main BTB, >1K entries, set-associative, providing
  the target for jumps executed at the IP stage (one bubble, usually
  hidden by IBUF occupancy).  Its prediction is checked at IB and
  corrected immediately on mismatch.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass


class BtbLevel(enum.Enum):
    """Where a taken branch found its target (drives the bubble cost)."""

    L0 = "l0"        # jump at IF: zero bubbles
    L1 = "l1"        # jump at IP: one bubble
    MISS = "miss"    # no target known: redirect at IB after decode


@dataclass
class BtbConfig:
    l0_entries: int = 16
    l1_entries: int = 1024
    l1_ways: int = 4


@dataclass
class BtbStats:
    l0_hits: int = 0
    l1_hits: int = 0
    misses: int = 0
    target_mispredicts: int = 0


class CascadedBtb:
    """The L0/L1 target-buffer pair."""

    def __init__(self, config: BtbConfig | None = None):
        self.config = config if config is not None else BtbConfig()
        self._l0: OrderedDict[int, int] = OrderedDict()
        self._l1_sets = max(1, self.config.l1_entries // self.config.l1_ways)
        self._l1: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self._l1_sets)]
        self.stats = BtbStats()

    def _l1_set(self, pc: int) -> OrderedDict[int, int]:
        return self._l1[(pc >> 1) % self._l1_sets]

    def predict(self, pc: int) -> tuple[BtbLevel, int | None]:
        """Look up the target for the (predicted-taken) branch at *pc*."""
        target = self._l0.get(pc)
        if target is not None:
            self._l0.move_to_end(pc)
            self.stats.l0_hits += 1
            return BtbLevel.L0, target
        l1_set = self._l1_set(pc)
        target = l1_set.get(pc)
        if target is not None:
            l1_set.move_to_end(pc)
            self.stats.l1_hits += 1
            return BtbLevel.L1, target
        self.stats.misses += 1
        return BtbLevel.MISS, None

    def update(self, pc: int, target: int, predicted: int | None) -> bool:
        """Install/refresh the target; returns True on target mispredict."""
        mispredicted = predicted is not None and predicted != target
        if mispredicted:
            self.stats.target_mispredicts += 1
        l1_set = self._l1_set(pc)
        if pc in l1_set:
            l1_set[pc] = target
            l1_set.move_to_end(pc)
        else:
            if len(l1_set) >= self.config.l1_ways:
                l1_set.popitem(last=False)
            l1_set[pc] = target
        # Promote into L0: it captures the branches whose bubbles the
        # IBUF cannot hide; a simple recency policy approximates that.
        if self.config.l0_entries > 0:
            if pc in self._l0:
                self._l0[pc] = target
                self._l0.move_to_end(pc)
            else:
                if len(self._l0) >= self.config.l0_entries:
                    self._l0.popitem(last=False)
                self._l0[pc] = target
        return mispredicted


@dataclass
class RasStats:
    pushes: int = 0
    pops: int = 0
    mispredicts: int = 0
    overflows: int = 0


class ReturnAddressStack:
    """The subroutine return-address predictor (section III.B)."""

    def __init__(self, entries: int = 16):
        self.entries = entries
        self._stack: list[int] = []
        self.stats = RasStats()

    def push(self, return_addr: int) -> None:
        self.stats.pushes += 1
        if len(self._stack) >= self.entries:
            self._stack.pop(0)  # circular overwrite of the oldest
            self.stats.overflows += 1
        self._stack.append(return_addr)

    def predict_pop(self) -> int | None:
        self.stats.pops += 1
        if self._stack:
            return self._stack.pop()
        return None

    def check(self, predicted: int | None, actual: int) -> bool:
        """Returns True iff the return target was mispredicted."""
        if predicted != actual:
            self.stats.mispredicts += 1
            self._stack.clear()  # corrupted beyond repair after a miss
            return True
        return False


@dataclass
class IndirectStats:
    predictions: int = 0
    mispredicts: int = 0


class IndirectPredictor:
    """Target predictor for non-return indirect branches.

    Tagged, path-history-hashed target table (ITTAGE-lite): good enough
    to capture switch dispatch and virtual calls, the cases the paper's
    "indirect branch predictor" exists for.
    """

    def __init__(self, entries: int = 512, history_bits: int = 8):
        self._mask = entries - 1
        self._table: dict[int, int] = {}
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self.stats = IndirectStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 1) ^ (self._history << 2)) & self._mask

    def predict(self, pc: int) -> int | None:
        return self._table.get(self._index(pc))

    def update(self, pc: int, target: int) -> bool:
        """Train; returns True iff the prediction was wrong/absent."""
        self.stats.predictions += 1
        index = self._index(pc)
        predicted = self._table.get(index)
        self._table[index] = target
        folded = (target >> 1) ^ (target >> 6) ^ (target >> 12)
        self._history = ((self._history << 1) ^ folded) \
            & self._history_mask
        if predicted != target:
            self.stats.mispredicts += 1
            return True
        return False
