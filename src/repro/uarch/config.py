"""Core configuration: every microarchitecture knob in one place.

``CoreConfig`` parameterizes the pipeline model enough to describe both
the XT-910 and the comparison cores of Fig. 17-19 (SiFive U74/U54,
ARM Cortex-A73/A55, SweRV) — same simulator, different knobs, which is
how the reproduction preserves the paper's cross-core comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mem.hierarchy import MemHierConfig
from .branch import DirectionConfig
from .btb import BtbConfig
from .loopbuf import LoopBufferConfig


@dataclass
class FrontendConfig:
    """IFU parameters (sections II, III)."""

    fetch_bytes: int = 16          # 128-bit fetch line per cycle
    fetch_insts: int = 8           # up to 8 (compressed) instructions
    ibuf_entries: int = 32         # instruction buffer depth
    depth: int = 7                 # frontend pipe stages IF..RF
    direction: DirectionConfig = field(default_factory=DirectionConfig)
    btb: BtbConfig = field(default_factory=BtbConfig)
    ras_entries: int = 16
    indirect_entries: int = 512
    loop_buffer: LoopBufferConfig = field(default_factory=LoopBufferConfig)
    # Bubbles by redirect point (paper section III.B):
    taken_bubble_l0: int = 0       # jump executed at IF
    taken_bubble_l1: int = 1       # jump executed at IP
    taken_bubble_miss: int = 2     # corrected at IB
    mispredict_extra: int = 2      # flush/refill overhead beyond resolve


@dataclass
class FuConfig:
    """Execution-unit counts and latencies (section II, IV, VII)."""

    alu_count: int = 2             # two single-cycle ALUs
    bju_count: int = 1             # one branch/jump unit
    fpu_count: int = 2             # two scalar FP units
    vec_slices: int = 2            # two 64-bit vector slices
    mul_latency: int = 3           # shares the ALU pipe
    div_latency_min: int = 6
    div_latency_max: int = 20      # multi-cycle ALU/divider pipe
    fp_latency: int = 3
    fmul_latency: int = 4
    fdiv_latency: int = 12
    # Vector latencies (section VII): most ops 3-4 cycles, FP multiply
    # 5 cycles, divides 6-25 cycles.
    valu_latency: int = 3
    vmul_latency: int = 4
    vfp_latency: int = 4
    vfmul_latency: int = 5
    vdiv_latency: int = 16
    vperm_latency: int = 4         # cross-slice data exchange
    vreduce_latency: int = 5


@dataclass
class LsuConfig:
    """Load-store unit (section V.A, V.B)."""

    lq_entries: int = 32
    sq_entries: int = 24
    dual_issue: bool = True        # dedicated load pipe + store pipe
    pseudo_dual_store: bool = True  # st.addr / st.data uop split
    memdep_predictor: bool = True
    memdep_entries: int = 256
    load_to_use: int = 3           # AG/DC/DA/WB pipeline depth
    forward_latency: int = 1       # store-to-load forwarding
    violation_flush_penalty: int = 12  # global flush on ordering violation


@dataclass
class CoreConfig:
    """One core's complete microarchitecture description."""

    name: str = "xt910"
    frequency_mhz: int = 2500
    out_of_order: bool = True
    decode_width: int = 3
    rename_width: int = 4
    issue_width: int = 8           # 8 shared instruction slots
    retire_width: int = 4
    rob_entries: int = 192
    iq_entries: int = 48
    phys_int_regs: int = 128
    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    fu: FuConfig = field(default_factory=FuConfig)
    lsu: LsuConfig = field(default_factory=LsuConfig)
    mem: MemHierConfig = field(default_factory=MemHierConfig)
    vector_enabled: bool = True
    vlen: int = 128
    # ISA feature switches (Fig. 20: extensions can be disabled for
    # standard-RISC-V-compatible mode).
    xt_extensions: bool = True

    @property
    def dispatch_width(self) -> int:
        """Sustained frontend throughput: decode is the narrow point."""
        return min(self.decode_width, self.rename_width)
