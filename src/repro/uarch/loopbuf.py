"""The loop buffer (paper section III.C, Fig. 7).

Small loop bodies are captured whole in a 16-entry buffer.  While the
frontend streams from the LBUF:

* no L1 instruction-cache access happens (power, and immunity to I$
  misses),
* the backward jump costs no bubble, and
* the last instruction of iteration *n* can issue together with the
  first instruction of iteration *n+1*.

Forward branches inside the body are allowed (if/else bodies), so the
capture condition is: a backward taken branch whose body fits in 16
entries, with no other backward control flow inside.  The buffer is
flushed on context switches.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LoopBufferConfig:
    enabled: bool = True
    entries: int = 16
    # A loop must iterate this many times back-to-back before the LBUF
    # locks on (hardware detects "small loop executing").
    capture_threshold: int = 2


@dataclass
class LoopBufferStats:
    captures: int = 0
    supplied_insts: int = 0
    exits: int = 0
    flushes: int = 0


class LoopBuffer:
    """Detects and replays small hot loops."""

    def __init__(self, config: LoopBufferConfig | None = None):
        self.config = config if config is not None else LoopBufferConfig()
        self._loop_pc: int | None = None       # backward branch PC
        self._loop_target: int | None = None   # loop head
        self._hit_count = 0
        self._active = False
        self._body_size = 0
        self.stats = LoopBufferStats()

    @property
    def active(self) -> bool:
        return self._active

    def covers(self, pc: int) -> bool:
        """Is *pc* inside the currently-locked loop body?"""
        if not self._active:
            return False
        assert self._loop_target is not None and self._loop_pc is not None
        return self._loop_target <= pc <= self._loop_pc

    def observe_branch(self, pc: int, target: int, taken: bool,
                       body_insts: int) -> None:
        """Feed every executed branch; manages capture and exit.

        ``body_insts`` is the dynamic instruction count since the last
        visit to *target* (the frontend tracks it), used as the
        16-entry capacity check.
        """
        if not self.config.enabled:
            return
        backward = target <= pc
        if self._active:
            if pc == self._loop_pc:
                if not taken:
                    self._exit()
                return
            if backward and taken:
                # A different backward branch: not a simple small loop.
                self._exit()
            return
        if not (backward and taken):
            return
        if body_insts == 0 or body_insts > self.config.entries:
            self._reset_candidate()
            return
        if pc == self._loop_pc and target == self._loop_target:
            self._hit_count += 1
            if self._hit_count >= self.config.capture_threshold:
                self._active = True
                self._body_size = body_insts
                self.stats.captures += 1
        else:
            self._loop_pc = pc
            self._loop_target = target
            self._hit_count = 1

    def supply(self, count: int = 1) -> None:
        """Record instructions streamed from the buffer (no I$ access)."""
        self.stats.supplied_insts += count

    def _exit(self) -> None:
        self._active = False
        self._hit_count = 0
        self.stats.exits += 1

    def _reset_candidate(self) -> None:
        self._loop_pc = None
        self._loop_target = None
        self._hit_count = 0

    def flush(self) -> None:
        """Context switch: the loop buffer is flushed (section III.C)."""
        self._exit_if_active()
        self._reset_candidate()
        self.stats.flushes += 1

    def _exit_if_active(self) -> None:
        if self._active:
            self._active = False
            self.stats.exits += 1
