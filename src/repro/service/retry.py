"""Retry policy (exponential backoff + jitter) and circuit breaker.

Both are deterministic given a seeded RNG, so a chaos campaign replays
identically: the same seed produces the same backoff delays and the
same quarantine decisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class RetryPolicy:
    """How transient failures (crashes, wall timeouts) are retried.

    Delay for attempt *k* (1-based, i.e. before attempt ``k+1``) is
    ``min(cap, base * 2**(k-1))`` scaled by a jitter factor drawn
    uniformly from ``[1 - jitter, 1 + jitter]`` — full-jitter style, so
    a burst of crashed jobs does not retry in lockstep against the same
    overloaded machine.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before the attempt after *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = min(self.backoff_cap_s,
                  self.backoff_base_s * (2.0 ** (attempt - 1)))
        factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw * factor)

    def exhausted(self, attempt: int) -> bool:
        return attempt >= self.max_attempts


class CircuitBreaker:
    """Quarantine a program hash after N *consecutive* failures.

    A program that keeps crashing workers or timing out is toxic: every
    further attempt burns a worker slot other jobs could use.  After
    ``threshold`` consecutive terminal failures for the same program
    hash the breaker opens and subsequent submissions short-circuit to
    ``QUARANTINED`` without touching the pool.  Any success resets the
    count (and a manual :meth:`reset` closes an open breaker).
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._failures: dict[str, int] = {}
        self._open: set[str] = set()
        self.trips = 0

    def is_open(self, key: str) -> bool:
        return key in self._open

    def record_success(self, key: str) -> None:
        self._failures.pop(key, None)

    def record_failure(self, key: str) -> bool:
        """Count one terminal failure; returns True when this trips."""
        count = self._failures.get(key, 0) + 1
        self._failures[key] = count
        if count >= self.threshold and key not in self._open:
            self._open.add(key)
            self.trips += 1
            return True
        return False

    def reset(self, key: str | None = None) -> None:
        """Close one breaker (or all of them) and forget the history."""
        if key is None:
            self._failures.clear()
            self._open.clear()
        else:
            self._failures.pop(key, None)
            self._open.discard(key)

    @property
    def open_keys(self) -> frozenset[str]:
        return frozenset(self._open)


__all__ = ["RetryPolicy", "CircuitBreaker"]
