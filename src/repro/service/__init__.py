"""Hardened simulation job service.

The fault-tolerance layer over the emulator + timing-model stack:
crash-isolated worker processes, wall-clock and instruction watchdogs,
retry with backoff + jitter, a per-program circuit breaker, a
content-addressed result cache, and the fast→precise degradation
ladder.  The chaos harness (:mod:`repro.service.chaos`) proves the
core invariant — every submitted job terminates in a definitive state
with no silent loss — and CI gates it at zero.
"""

from __future__ import annotations

from .cache import ResultCache
from .core import JobService, default_workers
from .errors import (
    DivergenceDetected,
    GuestFault,
    ResourceExhausted,
    ServiceError,
    WatchdogTimeout,
    WorkerCrash,
    error_from_dict,
)
from .job import TERMINAL_STATES, JobResult, JobSpec, JobState
from .pool import TaskOutcome, WorkerPool, run_tasks
from .retry import CircuitBreaker, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "DivergenceDetected",
    "GuestFault",
    "JobResult",
    "JobService",
    "JobSpec",
    "JobState",
    "ResourceExhausted",
    "ResultCache",
    "RetryPolicy",
    "ServiceError",
    "TERMINAL_STATES",
    "TaskOutcome",
    "WatchdogTimeout",
    "WorkerCrash",
    "WorkerPool",
    "default_workers",
    "error_from_dict",
    "run_tasks",
]
