"""Deterministic chaos harness for the job service.

Generates a seeded mix of healthy jobs, poison guest programs and
injected infrastructure faults (worker crashes, hangs, internal
exceptions, fast-path faults), drives them through a real
:class:`~repro.service.core.JobService` with process isolation, and
audits the invariant the service exists to provide:

    **every submitted job terminates in a definitive terminal state,
    with a structured serializable error chain when it did not
    complete — zero silent losses.**

Reporting follows the RAS campaign's discipline (corrected / detected
/ silent): a fault the service *recovered from* (retry, fallback,
cache) is the analogue of an ECC correction, a fault that terminated a
job *with a classified error* is a detection, and a job that vanished,
ended non-terminal, mis-stated, or failed without a structured error
is **silent** — the number CI gates at zero.

Everything is seeded: the plan (job kinds, poison payloads, injected
fault schedules) comes from one ``random.Random(seed)``, the service's
backoff jitter is seeded separately, and workers inject faults only
from their spec's own plan, so a campaign replays exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from random import Random
from typing import Any

from ..harness.report import ExperimentResult
from .core import JobService
from .errors import error_from_dict
from .job import JobResult, JobSpec, JobState
from .retry import RetryPolicy
from .worker import MAX_SOURCE_BYTES

#: wall-clock budget for jobs whose chaos plan includes a hang; the
#: budget must comfortably cover a *clean* retry attempt on a loaded
#: CI machine, or the retry itself gets reaped and the job flakes.
HANG_WALL_TIMEOUT_S = 3.0


# -- guest program generators ------------------------------------------------


def clean_source(variant: int) -> str:
    """A tiny verified kernel; ``variant`` makes the hash unique."""
    n = 40 + (variant % 37)
    return f"""
    .data
result: .dword 0
    .text
_start:                     # chaos-clean variant {variant}
    li t0, {n}
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    la t2, result
    sd t1, 0(t2)
    li a0, 0
    li a7, 93
    ecall
"""


def loop_source(variant: int = 0) -> str:
    """An infinite loop: only the instruction watchdog ends it."""
    return f"""
    .text
_start:                     # chaos-loop variant {variant}
loop:
    j loop
"""


def wild_jump_source(variant: int = 0) -> str:
    """Register-indirect jump to unmapped memory: a runtime fetch
    fault static vetting cannot see."""
    return f"""
    .text
_start:                     # chaos-wild-jump variant {variant}
    li t0, {0x4000_0000 + 16 * (variant % 7)}
    jr t0
"""


def decode_bomb_source(variant: int = 0) -> str:
    """Jump into the data section: garbage bytes reach the decoder."""
    return f"""
    .data
bomb:
    .dword 0xffffffffffffffff
    .dword {0xdeadbeefcafe0000 + (variant % 13)}
    .text
_start:                     # chaos-decode-bomb variant {variant}
    la t0, bomb
    jr t0
"""


def stack_smash_source(variant: int = 0) -> str:
    """Overwrite the saved return address, then return through it."""
    return f"""
    .text
_start:                     # chaos-stack-smash variant {variant}
    addi sp, sp, -16
    sd ra, 8(sp)
    li t0, {0x6660_0000 + 8 * (variant % 5)}
    sd t0, 8(sp)
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
"""


def wild_store_source(variant: int = 0) -> str:
    """Store through a small constant address: the ``mem-wild``
    checker rejects this at admission when vetting is on."""
    return f"""
    .text
_start:                     # chaos-wild-store variant {variant}
    li t0, {120 + 8 * (variant % 3)}
    sd zero, 0(t0)
    li a0, 0
    li a7, 93
    ecall
"""


def oversized_source(variant: int = 0) -> str:
    """Source text past the admission cap."""
    filler = f"# chaos-oversized variant {variant} " + "x" * 120 + "\n"
    body = filler * (MAX_SOURCE_BYTES // len(filler) + 2)
    return body + loop_source(variant)


# -- plan generation ---------------------------------------------------------


@dataclass
class PlannedJob:
    """One campaign entry: the spec plus what must happen to it."""

    kind: str
    spec: JobSpec
    expected_states: frozenset[JobState]
    faults: int                       # injected faults this job carries
    expect_retry: bool = False
    expect_downgrade: bool = False


#: (kind, weight) — the mixed main-batch distribution
_KIND_WEIGHTS: tuple[tuple[str, int], ...] = (
    ("clean-functional", 4),
    ("clean-timed", 2),
    ("poison-loop", 3),
    ("poison-wild-jump", 2),
    ("poison-decode-bomb", 2),
    ("poison-stack-smash", 2),
    ("poison-wild-store", 2),
    ("poison-oversized", 1),
    ("crash-once", 3),
    ("crash-always", 2),
    ("hang-once", 2),
    ("error-once", 2),
    ("fast-fault", 2),
    ("tier3-fault", 2),
    ("divergence", 2),
)


def _plan_job(kind: str, variant: int) -> PlannedJob:
    completed = frozenset({JobState.COMPLETED})
    if kind == "clean-functional":
        spec = JobSpec(source=clean_source(variant), core=None,
                       name=f"{kind}-{variant}")
        return PlannedJob(kind, spec, completed, faults=0)
    if kind == "clean-timed":
        spec = JobSpec(source=clean_source(variant), core="xt910",
                       name=f"{kind}-{variant}")
        return PlannedJob(kind, spec, completed, faults=0)
    if kind == "poison-loop":
        spec = JobSpec(source=loop_source(variant), core=None,
                       max_insts=20_000, name=f"{kind}-{variant}")
        return PlannedJob(kind, spec, frozenset({JobState.TIMEOUT}),
                          faults=1)
    if kind == "poison-wild-jump":
        spec = JobSpec(source=wild_jump_source(variant), core=None,
                       name=f"{kind}-{variant}")
        return PlannedJob(kind, spec, frozenset({JobState.FAILED}),
                          faults=1)
    if kind == "poison-decode-bomb":
        spec = JobSpec(source=decode_bomb_source(variant), core=None,
                       name=f"{kind}-{variant}")
        return PlannedJob(kind, spec, frozenset({JobState.FAILED}),
                          faults=1)
    if kind == "poison-stack-smash":
        spec = JobSpec(source=stack_smash_source(variant), core=None,
                       vet=False, name=f"{kind}-{variant}")
        return PlannedJob(kind, spec, frozenset({JobState.FAILED}),
                          faults=1)
    if kind == "poison-wild-store":
        spec = JobSpec(source=wild_store_source(variant), core=None,
                       vet=True, name=f"{kind}-{variant}")
        return PlannedJob(kind, spec, frozenset({JobState.REJECTED}),
                          faults=1)
    if kind == "poison-oversized":
        spec = JobSpec(source=oversized_source(variant), core=None,
                       name=f"{kind}-{variant}")
        return PlannedJob(kind, spec, frozenset({JobState.REJECTED}),
                          faults=1)
    if kind == "crash-once":
        spec = JobSpec(source=clean_source(variant), core=None,
                       name=f"{kind}-{variant}",
                       chaos={"crash_attempts": [1]})
        return PlannedJob(kind, spec, completed, faults=1,
                          expect_retry=True)
    if kind == "crash-always":
        spec = JobSpec(source=clean_source(variant), core=None,
                       name=f"{kind}-{variant}",
                       chaos={"crash_attempts": [1, 2, 3]})
        return PlannedJob(kind, spec, frozenset({JobState.FAILED}),
                          faults=3, expect_retry=True)
    if kind == "hang-once":
        spec = JobSpec(source=clean_source(variant), core=None,
                       name=f"{kind}-{variant}",
                       wall_timeout_s=HANG_WALL_TIMEOUT_S,
                       chaos={"hang_attempts": [1]})
        return PlannedJob(kind, spec, completed, faults=1,
                          expect_retry=True)
    if kind == "error-once":
        spec = JobSpec(source=clean_source(variant), core=None,
                       name=f"{kind}-{variant}",
                       chaos={"error_attempts": [1]})
        return PlannedJob(kind, spec, completed, faults=1,
                          expect_retry=True)
    if kind == "fast-fault":
        spec = JobSpec(source=clean_source(variant), core="xt910",
                       name=f"{kind}-{variant}",
                       chaos={"fast_fault": True})
        return PlannedJob(kind, spec, completed, faults=1,
                          expect_downgrade=True)
    if kind == "tier3-fault":
        # Only the specializing translator fails; the ladder must stop
        # one rung down, on the block-cache tier, and still complete.
        spec = JobSpec(source=clean_source(variant), core="xt910",
                       name=f"{kind}-{variant}",
                       chaos={"tier3_fault": True})
        return PlannedJob(kind, spec, completed, faults=1,
                          expect_downgrade=True)
    if kind == "divergence":
        spec = JobSpec(source=clean_source(variant), core="xt910",
                       name=f"{kind}-{variant}",
                       chaos={"divergence": True})
        return PlannedJob(kind, spec, completed, faults=1,
                          expect_downgrade=True)
    raise ValueError(f"unknown chaos job kind: {kind}")


def generate_plan(target_faults: int, seed: int) -> list[PlannedJob]:
    """Seeded mixed-batch plan carrying >= ``target_faults`` faults."""
    rng = Random(seed)
    kinds = [kind for kind, weight in _KIND_WEIGHTS for _ in range(weight)]
    plan: list[PlannedJob] = []
    faults = 0
    variant = 0
    while faults < target_faults:
        kind = rng.choice(kinds)
        job = _plan_job(kind, variant)
        plan.append(job)
        faults += job.faults
        variant += 1
    return plan


# -- campaign ----------------------------------------------------------------


@dataclass
class ChaosReport:
    """Audited outcome of one chaos campaign."""

    jobs: int = 0
    faults_injected: int = 0
    outcomes: dict[str, int] = field(default_factory=dict)
    #: jobs whose terminal state was not the planned one
    unexpected: list[str] = field(default_factory=list)
    #: the gate: missing / non-terminal / unserializable / unclassified
    silent: list[str] = field(default_factory=list)
    service_counters: dict[str, Any] = field(default_factory=dict)

    def bump(self, outcome: str) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1

    @property
    def definitive(self) -> int:
        """Jobs that reached an audited definitive terminal state."""
        return self.jobs - len(self.silent)


def _audit(job: PlannedJob, result: JobResult | None,
           report: ChaosReport) -> None:
    """Classify one campaign result; silent findings are the gate."""
    label = job.spec.name
    if result is None:
        report.silent.append(f"{label}: no result returned")
        return
    if not result.terminal:
        report.silent.append(f"{label}: non-terminal state "
                             f"{result.state.value}")
        return
    # Definitive also means *reportable*: the result must survive JSON
    # and a failed job must carry a reconstructible error chain.
    try:
        payload = json.dumps(result.to_dict())
        JobResult.from_dict(json.loads(payload))
        if result.error is not None:
            error_from_dict(result.error).render()
    except Exception as exc:
        report.silent.append(f"{label}: unserializable result "
                             f"({type(exc).__name__}: {exc})")
        return
    if result.state is not JobState.COMPLETED and result.error is None:
        report.silent.append(f"{label}: {result.state.value} without a "
                             f"structured error")
        return
    if result.state not in job.expected_states:
        report.unexpected.append(
            f"{label}: expected "
            f"{sorted(s.value for s in job.expected_states)}, got "
            f"{result.state.value}")
    if result.state is JobState.COMPLETED:
        if result.cache_hit:
            report.bump("recovered-cache")
        elif result.downgraded:
            report.bump("recovered-fallback")
        elif result.attempts > 1:
            report.bump("recovered-retry")
        else:
            report.bump("completed-clean")
        if job.expect_downgrade and not result.downgraded \
                and not result.cache_hit:
            report.unexpected.append(f"{label}: planned fallback did "
                                     f"not engage")
        if job.expect_retry and result.attempts <= 1 \
                and not result.cache_hit:
            report.unexpected.append(f"{label}: planned retry did not "
                                     f"engage")
    else:
        report.bump(f"detected-{result.state.value}")


def run_chaos(target_faults: int = 100, seed: int = 2020,
              workers: int | None = None,
              toxic_submissions: int = 5,
              breaker_threshold: int = 3) -> ChaosReport:
    """Run one full campaign; every gate lives in the returned report."""
    plan = generate_plan(target_faults, seed)
    service = JobService(
        workers=workers, seed=seed + 1,
        breaker_threshold=breaker_threshold,
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.02,
                          backoff_cap_s=0.25, jitter=0.5))
    report = ChaosReport()
    results = service.run([job.spec for job in plan])
    for job, result in zip(plan, results):
        report.bump(f"kind-{job.kind}")
        _audit(job, result, report)
    report.jobs += len(plan)
    report.faults_injected += sum(job.faults for job in plan)

    # Breaker arm: one toxic program (crashes every attempt) submitted
    # repeatedly in separate batches — the first ``threshold``
    # submissions fail through retries, the rest must short-circuit to
    # QUARANTINED without touching the pool.
    toxic = _plan_job("crash-always", variant=1_000_003)
    for round_no in range(toxic_submissions):
        expected = (frozenset({JobState.FAILED})
                    if round_no < breaker_threshold
                    else frozenset({JobState.QUARANTINED}))
        planned = PlannedJob("toxic-repeat", toxic.spec, expected,
                             faults=3 if round_no < breaker_threshold
                             else 0, expect_retry=True)
        result = service.submit(planned.spec)
        report.bump("kind-toxic-repeat")
        if result.state is JobState.QUARANTINED:
            planned = PlannedJob("toxic-repeat", toxic.spec, expected,
                                 faults=0)
        _audit(planned, result, report)
        report.jobs += 1
        report.faults_injected += planned.faults

    # Cache arm: resubmit a clean job twice — the second must be free.
    cached = _plan_job("clean-functional", variant=2_000_003)
    first = service.submit(cached.spec)
    second = service.submit(cached.spec)
    for result in (first, second):
        report.bump("kind-cache-repeat")
        _audit(cached, result, report)
        report.jobs += 1
    if not second.cache_hit:
        report.unexpected.append("cache-repeat: second submission "
                                 "missed the result cache")

    report.service_counters = service.counters()
    return report


# -- harness integration -----------------------------------------------------


def run_service(quick: bool = True,
                jobs: int | None = None) -> ExperimentResult:
    """Harness entry point: the chaos-campaign robustness experiment."""
    target = 100 if quick else 400
    campaign = run_chaos(target_faults=target, workers=jobs)
    result = ExperimentResult(
        experiment="service",
        title=f"chaos campaign, >= {target} injected faults on the "
              f"job service")
    result.add("jobs", None, campaign.jobs)
    result.add("faults injected", f">={target}", campaign.faults_injected)
    result.add("definitive terminal states", campaign.jobs,
               campaign.definitive)
    result.add("silent losses", 0, len(campaign.silent))
    result.add("unexpected outcomes", 0, len(campaign.unexpected))
    for outcome in sorted(campaign.outcomes):
        if not outcome.startswith("kind-"):
            result.add(outcome, None, campaign.outcomes[outcome])
    counters = campaign.service_counters
    for key in ("retries", "fallbacks", "worker_crashes", "wall_timeouts",
                "breaker_trips", "cache_hits"):
        result.add(f"service.{key}", None, counters.get(key, 0))
    result.notes.append(
        "recovered-* = the service absorbed an injected fault (retry / "
        "precise fallback / cache); detected-* = definitive classified "
        "failure; silent is the invariant and must be 0")
    result.raw = {
        "jobs": campaign.jobs,
        "faults": campaign.faults_injected,
        "silent": len(campaign.silent),
        "silent_detail": list(campaign.silent),
        "unexpected": len(campaign.unexpected),
        "unexpected_detail": list(campaign.unexpected),
        "outcomes": dict(campaign.outcomes),
        "ok": not campaign.silent and not campaign.unexpected
        and campaign.faults_injected >= target,
    }
    result.metric("jobs", campaign.jobs)
    result.metric("faults_injected", campaign.faults_injected)
    result.metric("silent", len(campaign.silent))
    result.metric("unexpected", len(campaign.unexpected))
    result.metric("definitive", campaign.definitive)
    for outcome, count in sorted(campaign.outcomes.items()):
        result.metric(f"outcomes.{outcome}", count)
    for key, value in sorted(counters.items()):
        if isinstance(value, (int, float)):
            result.metric(f"pool.{key}", value)
    return result


__all__ = [
    "ChaosReport",
    "PlannedJob",
    "generate_plan",
    "run_chaos",
    "run_service",
]
