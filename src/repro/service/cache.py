"""Content-addressed result cache in front of the worker pool.

Keyed by ``(program_hash, config_hash, mode, tier)`` — the full
content address of one deterministic simulation, including the numeric
execution tier so tier-3 (specializing translator) results can never
collide with tier-2/precise entries — so a retry of a completed
job, a resubmission of the same program, or a duplicate inside one
batch never reaches a worker.  Only :class:`~repro.service.job.
JobState.COMPLETED` results are cacheable: failures must re-execute
(they may have been environmental) and partial timeout data is bounded
by a budget the next submission might raise.

Entries round-trip through ``JobResult.to_dict()`` on both put and
get, so a cached hit is a fresh object — callers mutating their result
cannot poison the cache.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Any

from .job import JobResult, JobState

CacheKey = tuple[str, str, str, int]


class ResultCache:
    """Bounded LRU over completed job results."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._store: OrderedDict[CacheKey, dict[str, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._store

    def get(self, key: CacheKey) -> JobResult | None:
        payload = self._store.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        # Deep copy: from_dict's shallow copy would share the nested
        # metrics/error dicts with the store, so a caller mutating its
        # hit could poison every later hit.
        result = JobResult.from_dict(copy.deepcopy(payload))
        result.cache_hit = True
        return result

    def put(self, key: CacheKey, result: JobResult) -> bool:
        """Store a completed result; returns False for non-cacheables."""
        if result.state is not JobState.COMPLETED:
            return False
        payload = result.to_dict()
        payload["cache_hit"] = False
        self._store[key] = payload
        self._store.move_to_end(key)
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
        return True

    def clear(self) -> None:
        self._store.clear()

    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._store)}


__all__ = ["ResultCache", "CacheKey"]
