"""What runs inside one crash-isolated worker: vet, execute, classify.

``execute_job`` is the pool task function for the job service.  It is
deliberately *total* over the domain of hostile inputs: every job
either returns a terminal :class:`~repro.service.job.JobResult` dict
or dies in a way the supervisor classifies (crash / wall timeout) —
it never raises for guest-program problems.

The execution ladder for ``mode="auto"`` (the default):

1. **tier 3** — the specializing translator (per-block compiled
   Python) feeding the timing model,
2. **tier 2 (fast)** — the block-translation cache; entered when the
   tier-3 rung fails for *any* reason — a codegen fault, an injected
   :class:`~repro.service.errors.DivergenceDetected`, an unexpected
   exception,
3. **tier 1 (precise)** — the per-step interpreter; the last rung.
   Success on a lower rung records ``downgraded=True`` plus the chain
   of per-rung reasons in the result metadata instead of failing the
   job; a failure that survives the precise rung is classified into
   the error taxonomy and becomes the job's terminal error.

``mode="tier3"/"fast"/"precise"`` pin a single rung: a failure there
is terminal, never silently downgraded.

The instruction watchdog is *not* on the ladder: an expired budget is
deterministic (precise mode would burn the same budget), so it
terminates the job as ``TIMEOUT`` — with the partial statistics
snapshot the watchdog now carries, so bounded jobs still return data.

Chaos injection (``JobSpec.chaos``) is honoured only here, at the
worker boundary, from the spec's own plan — nothing is random inside
the worker, so a seeded campaign replays exactly:

* ``crash_attempts: [n, ...]`` — ``os._exit`` before doing any work on
  those attempt numbers (a worker crash the supervisor must reap),
* ``hang_attempts: [n, ...]``  — spin forever (the supervisor's
  wall-clock watchdog must SIGKILL the worker),
* ``error_attempts: [n, ...]`` — raise a raw exception (an internal
  worker bug the pool must serialize and contain),
* ``fast_fault: true``         — the block-cache machinery fails
  (tiers 3 and 2 both depend on it, so the ladder must ride all the
  way down to precise),
* ``tier3_fault: true``        — only the tier-3 translator fails
  (the ladder must stop one rung down, at fast),
* ``divergence: true``         — divergence is detected after a
  translated run (fails tiers 3 and 2; precise cannot diverge from
  itself).
"""

from __future__ import annotations

import os
import time
from typing import Any, NoReturn

from ..analysis import Sanitizer, SanitizerViolation, lint_program
from ..analysis.checks import SEV_ERROR
from ..asm import assemble
from ..asm.program import Program
from ..harness.runner import RunResult, run_on_core
from ..sim.emulator import Emulator, EmulatorError, WatchdogExpired
from .errors import (
    DivergenceDetected,
    GuestFault,
    ResourceExhausted,
    ServiceError,
    WatchdogTimeout,
)
from .job import JobResult, JobSpec, JobState

#: admission caps: reject before burning worker time on absurd inputs
MAX_SOURCE_BYTES = 1 << 20      # 1 MiB of assembly source
MAX_TEXT_BYTES = 1 << 18        # 256 KiB of encoded text section
#: stdout kept per result (the service is not a log store)
MAX_STDOUT_CHARS = 4096


def execute_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Pool task function: one attempt of one job, start to terminal."""
    spec = JobSpec.from_dict(payload["spec"])
    attempt = int(payload.get("attempt", 1))
    _apply_chaos(spec.chaos, attempt)
    try:
        program = _admit(spec)
    except ServiceError as exc:
        return _error_result(spec, JobState.REJECTED, exc)
    try:
        if spec.core is None and spec.uarch is None:
            result = _run_functional(spec, program)
        else:
            result = _run_timed(spec, program)
    except ServiceError as exc:
        return _error_result(spec, JobState.FAILED, exc)
    except Exception as exc:  # simulator bug: still a definitive state
        internal = ServiceError(
            f"internal execution failure: {type(exc).__name__}: {exc}")
        internal.__cause__ = exc
        return _error_result(spec, JobState.FAILED, internal)
    return result.to_dict()


# -- chaos ------------------------------------------------------------------


def _apply_chaos(chaos: dict[str, Any], attempt: int) -> None:
    if not chaos:
        return
    if attempt in chaos.get("crash_attempts", ()):
        os._exit(86)                      # simulated hard worker death
    if attempt in chaos.get("hang_attempts", ()):
        while True:                       # simulated wedged guest/worker;
            time.sleep(0.05)              # only SIGKILL gets us out
    if attempt in chaos.get("error_attempts", ()):
        raise RuntimeError(f"chaos: injected worker exception "
                           f"(attempt {attempt})")


# -- admission --------------------------------------------------------------


def _admit(spec: JobSpec) -> Program:
    """Vet an untrusted program before it reaches the execution engine.

    Raises :class:`ResourceExhausted` for size-cap violations and
    :class:`GuestFault` for programs that fail to assemble, crash the
    static analyzer, carry error-severity lint findings, or ship an
    inline ``uarch`` document that fails schema validation.
    """
    if spec.uarch is not None:
        from ..uarch import uconfig

        try:
            uconfig.resolve_core(spec.uarch)
        except uconfig.UconfigError as exc:
            raise GuestFault(
                f"invalid uarch config document: {exc}",
                detail={"stage": "admission",
                        "problems": list(exc.problems)},
                retryable=False) from exc
    raw = len(spec.source.encode())
    if raw > MAX_SOURCE_BYTES:
        raise ResourceExhausted(
            f"source is {raw} bytes; admission cap is "
            f"{MAX_SOURCE_BYTES}",
            detail={"stage": "admission", "source_bytes": raw,
                    "cap": MAX_SOURCE_BYTES})
    try:
        program = assemble(spec.source, compress=spec.compress)
    except Exception as exc:
        raise GuestFault("assembly failed",
                         detail={"stage": "admission"}) from exc
    if len(program.text) > MAX_TEXT_BYTES:
        raise ResourceExhausted(
            f"text section is {len(program.text)} bytes; admission cap "
            f"is {MAX_TEXT_BYTES}",
            detail={"stage": "admission",
                    "text_bytes": len(program.text),
                    "cap": MAX_TEXT_BYTES})
    if spec.vet:
        try:
            report = lint_program(program, name=spec.name)
        except Exception as exc:
            raise GuestFault("static analysis failed during admission",
                             detail={"stage": "admission"}) from exc
        errors = [f for f in report.findings if f.severity == SEV_ERROR]
        if errors:
            raise GuestFault(
                f"admission lint: {len(errors)} error-severity "
                f"finding(s)",
                detail={"stage": "admission",
                        "findings": sorted(f.key for f in errors)})
    return program


# -- execution --------------------------------------------------------------


def _ladder(mode: str) -> tuple[int, ...]:
    """Tier rungs for *mode*; single-rung modes never downgrade."""
    return {"auto": (3, 2, 1), "tier3": (3,), "fast": (2,),
            "precise": (1,)}[mode]


def _chaos_tier_fault(chaos: dict[str, Any], tier: int) -> None:
    """Honour the per-tier chaos injection keys for one rung."""
    if tier == 3 and chaos.get("tier3_fault"):
        raise RuntimeError("chaos: injected tier-3 codegen fault")
    if tier in (2, 3) and chaos.get("fast_fault"):
        raise RuntimeError("chaos: injected fast-path fault")


def _run_timed(spec: JobSpec, program: Program) -> JobResult:
    """Emulator + 12-stage timing model, with the degradation ladder."""
    assert spec.core is not None or spec.uarch is not None
    if spec.uarch is not None:
        # Admission already validated the document; resolution here
        # cannot fail for schema reasons.
        from ..uarch import uconfig

        core = uconfig.resolve_core(spec.uarch)
    else:
        core = spec.core
    rungs = _ladder(spec.mode)
    reasons: list[str] = []
    for index, tier in enumerate(rungs):
        last = index == len(rungs) - 1
        try:
            _chaos_tier_fault(spec.chaos, tier)
            run = run_on_core(program, core, tier=tier,
                              max_insts=spec.max_insts,
                              partial_on_watchdog=True)
            if tier != 1 and spec.chaos.get("divergence"):
                raise DivergenceDetected(
                    "chaos: injected translated/precise divergence",
                    detail={"injected": True, "tier": tier})
            return _timed_result(
                spec, run, tier=tier,
                downgrade_reason="; ".join(reasons) or None)
        except Exception as exc:
            if last:
                _raise_classified(exc)
            reasons.append(f"tier{tier}: {type(exc).__name__}: {exc}")
    raise AssertionError("unreachable: ladder exhausted without raising")


def _timed_result(spec: JobSpec, run: RunResult, tier: int,
                  downgrade_reason: str | None) -> JobResult:
    stats = run.stats
    metrics: dict[str, Any] = {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "ipc": round(stats.ipc, 6),
        "tier": tier,
        "stats": stats.as_comparable(),
    }
    if run.watchdog is not None:
        error = WatchdogTimeout(
            f"instruction watchdog: limit {spec.max_insts} expired",
            detail={"watchdog": "instructions",
                    "instret": run.watchdog.partial.get("instret"),
                    "limit": spec.max_insts},
            retryable=False)
        return JobResult(
            name=spec.name, state=JobState.TIMEOUT,
            error=error.to_dict(), metrics=metrics,
            stdout=run.stdout[:MAX_STDOUT_CHARS], partial=True,
            downgraded=downgrade_reason is not None,
            downgrade_reason=downgrade_reason,
            program_hash=spec.program_hash)
    return JobResult(
        name=spec.name, state=JobState.COMPLETED,
        exit_code=run.exit_code, metrics=metrics,
        stdout=run.stdout[:MAX_STDOUT_CHARS],
        downgraded=downgrade_reason is not None,
        downgrade_reason=downgrade_reason,
        program_hash=spec.program_hash)


def _run_functional(spec: JobSpec, program: Program) -> JobResult:
    """Emulator-only execution; the exit code is data, not a fault."""
    rungs = _ladder(spec.mode)
    reasons: list[str] = []
    for index, tier in enumerate(rungs):
        last = index == len(rungs) - 1
        try:
            _chaos_tier_fault(spec.chaos, tier)
            return _functional_attempt(
                spec, program, tier=tier,
                downgrade_reason="; ".join(reasons) or None)
        except WatchdogExpired as exc:
            # Deterministic across tiers: not a ladder rung.
            return _functional_timeout(
                spec, exc, downgraded=bool(reasons),
                downgrade_reason="; ".join(reasons) or None)
        except SanitizerViolation as exc:
            # A vetting hit is a property of the guest, not the tier.
            raise GuestFault(
                f"sanitizer: {exc.violation.render()}",
                detail={"stage": "runtime"}) from exc
        except Exception as exc:
            if last:
                _raise_classified(exc)
            reasons.append(f"tier{tier}: {type(exc).__name__}: {exc}")
    raise AssertionError("unreachable: ladder exhausted without raising")


def _functional_attempt(spec: JobSpec, program: Program, tier: int,
                        downgrade_reason: str | None) -> JobResult:
    emulator = Emulator(program, instruction_limit=spec.max_insts)
    if tier != 1 and spec.vet:
        # Runtime arm of the vetting layer: the static summaries ride
        # along as shadow state on the block-cache path.  A sanitizer
        # makes the emulator tier-3-ineligible, so a vetted tier-3
        # request transparently executes on the tier-2 engine.
        emulator.sanitizer = Sanitizer(program)
    code = emulator.run(tier=tier)
    metrics: dict[str, Any] = {
        "instret": emulator.state.instret,
        "exit_code": code,
        "tier": tier,
    }
    metrics.update(emulator.counters())
    return JobResult(
        name=spec.name, state=JobState.COMPLETED, exit_code=code,
        metrics=metrics, stdout=emulator.stdout[:MAX_STDOUT_CHARS],
        downgraded=downgrade_reason is not None,
        downgrade_reason=downgrade_reason,
        program_hash=spec.program_hash)


def _functional_timeout(spec: JobSpec, exc: WatchdogExpired,
                        downgraded: bool,
                        downgrade_reason: str | None = None) -> JobResult:
    error = WatchdogTimeout(
        f"instruction watchdog: limit {spec.max_insts} expired",
        detail={"watchdog": "instructions",
                "instret": exc.partial.get("instret"),
                "limit": spec.max_insts},
        retryable=False)
    metrics: dict[str, Any] = {
        "instret": exc.partial.get("instret", 0),
    }
    metrics.update(exc.partial.get("counters", {}))
    return JobResult(
        name=spec.name, state=JobState.TIMEOUT, error=error.to_dict(),
        metrics=metrics, partial=True, downgraded=downgraded,
        downgrade_reason=downgrade_reason,
        program_hash=spec.program_hash)


# -- classification ---------------------------------------------------------


def _raise_classified(exc: BaseException) -> NoReturn:
    """Re-raise *exc* in taxonomy form, chaining unless it already is."""
    classified = _classify(exc)
    if classified is exc:
        raise classified
    raise classified from exc


def _classify(exc: BaseException) -> ServiceError:
    """Map an execution-time exception into the error taxonomy."""
    if isinstance(exc, ServiceError):
        return exc
    if isinstance(exc, MemoryError):
        return ResourceExhausted("memory exhausted during execution")
    if isinstance(exc, EmulatorError):
        return GuestFault(f"runtime fault: {exc}",
                          detail={"stage": "runtime"})
    if isinstance(exc, RuntimeError):
        # run_on_core raises RuntimeError for a nonzero guest exit on a
        # timed run; blockcache internals use it for translation faults.
        return GuestFault(str(exc), detail={"stage": "runtime"})
    return ServiceError(
        f"unclassified execution failure: {type(exc).__name__}: {exc}")


def _error_result(spec: JobSpec, state: JobState,
                  error: ServiceError) -> dict[str, Any]:
    return JobResult(
        name=spec.name, state=state, error=error.to_dict(),
        program_hash=spec.program_hash).to_dict()


__all__ = ["execute_job", "MAX_SOURCE_BYTES", "MAX_TEXT_BYTES"]
