"""Structured error taxonomy for the simulation job service.

Every way a job can fail maps to exactly one :class:`ServiceError`
subclass, the same discipline the RAS campaign applies to hardware
faults: a failure that cannot be named cannot be counted, and a
failure that cannot be counted can hide.  Each error is JSON-round-
trippable *including its cause chain* (``raise X from Y`` links), so a
failure that happened inside a worker process survives the pipe back
to the supervisor and into a ``JobResult`` without losing provenance.

The five terminal kinds:

* :class:`GuestFault`        — the guest program itself is at fault
                               (assembly error, admission lint error,
                               runtime decode/fetch fault, nonzero
                               exit on a timed run),
* :class:`WatchdogTimeout`   — a bound fired: the instruction-count
                               watchdog (deterministic, not retried)
                               or the supervisor's wall-clock deadline
                               (load-dependent, retried),
* :class:`WorkerCrash`       — the worker process died (SIGKILL, OOM
                               kill, ``os._exit``); always retryable,
* :class:`ResourceExhausted` — an admission or execution resource cap
                               (oversized program, memory),
* :class:`DivergenceDetected`— the fast execution path disagreed with
                               expectations; triggers the degradation
                               ladder (precise re-execution), never a
                               user-visible failure on its own.
"""

from __future__ import annotations

from typing import Any, ClassVar


class ServiceError(Exception):
    """Base of the job-service failure taxonomy.

    ``detail`` carries structured, JSON-safe context (the failing
    stage, lint finding keys, watchdog counters).  ``retryable``
    defaults per subclass but is overridable per instance — a wall
    timeout is transient, an instruction-watchdog expiry is not.
    """

    kind: ClassVar[str] = "internal"
    default_retryable: ClassVar[bool] = False

    def __init__(self, message: str, *,
                 detail: dict[str, Any] | None = None,
                 retryable: bool | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.detail: dict[str, Any] = detail if detail is not None else {}
        self.retryable: bool = (self.default_retryable
                                if retryable is None else retryable)

    def to_dict(self) -> dict[str, Any]:
        """Serialize this error and its explicit cause chain."""
        payload: dict[str, Any] = {
            "kind": self.kind,
            "type": type(self).__name__,
            "message": self.message,
            "retryable": self.retryable,
        }
        if self.detail:
            payload["detail"] = self.detail
        cause = self.__cause__
        if cause is not None:
            payload["cause"] = _cause_dict(cause)
        return payload

    def render(self) -> str:
        """One-line human rendering including the cause chain."""
        parts = [f"{self.kind}: {self.message}"]
        node = self.to_dict().get("cause")
        while node is not None:
            parts.append(f"caused by {node['type']}: {node['message']}")
            node = node.get("cause")
        return " <- ".join(parts)


class GuestFault(ServiceError):
    """The guest program is at fault (vetting or runtime)."""

    kind = "guest-fault"
    default_retryable = False


class WatchdogTimeout(ServiceError):
    """An execution bound fired (instruction watchdog or wall clock).

    ``detail["watchdog"]`` is ``"instructions"`` or ``"wall-clock"``;
    only the wall-clock flavour is retryable (a loaded machine can hang
    a healthy job, but an instruction budget expires deterministically).
    """

    kind = "watchdog-timeout"
    default_retryable = False


class WorkerCrash(ServiceError):
    """The worker process died without reporting a result."""

    kind = "worker-crash"
    default_retryable = True


class ResourceExhausted(ServiceError):
    """A resource cap was hit (program size, memory)."""

    kind = "resource-exhausted"
    default_retryable = False


class DivergenceDetected(ServiceError):
    """Fast-path execution diverged; the job degrades to precise mode."""

    kind = "divergence"
    default_retryable = False


_BY_KIND: dict[str, type[ServiceError]] = {
    cls.kind: cls
    for cls in (ServiceError, GuestFault, WatchdogTimeout, WorkerCrash,
                ResourceExhausted, DivergenceDetected)
}


def _cause_dict(exc: BaseException) -> dict[str, Any]:
    """Serialize an arbitrary exception node in a cause chain."""
    if isinstance(exc, ServiceError):
        return exc.to_dict()
    node: dict[str, Any] = {
        "kind": "external",
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if exc.__cause__ is not None:
        node["cause"] = _cause_dict(exc.__cause__)
    return node


def error_from_dict(payload: dict[str, Any]) -> ServiceError:
    """Reconstruct a :class:`ServiceError` (with cause chain) from JSON.

    External (non-taxonomy) causes come back as plain  ``Exception``
    instances whose message preserves the original type name, so the
    chain stays renderable without importing arbitrary classes.
    """
    cause_payload = payload.get("cause")
    cause: BaseException | None = None
    if cause_payload is not None:
        if cause_payload.get("kind") in _BY_KIND:
            cause = error_from_dict(cause_payload)
        else:
            cause = Exception(f"{cause_payload.get('type', 'Exception')}: "
                              f"{cause_payload.get('message', '')}")
            nested = cause_payload.get("cause")
            if nested is not None:
                cause.__cause__ = (error_from_dict(nested)
                                   if nested.get("kind") in _BY_KIND
                                   else Exception(
                                       f"{nested.get('type', 'Exception')}: "
                                       f"{nested.get('message', '')}"))
    cls = _BY_KIND.get(payload.get("kind", "internal"), ServiceError)
    error = cls(payload.get("message", ""),
                detail=payload.get("detail"),
                retryable=payload.get("retryable"))
    if cause is not None:
        error.__cause__ = cause
    return error


__all__ = [
    "ServiceError",
    "GuestFault",
    "WatchdogTimeout",
    "WorkerCrash",
    "ResourceExhausted",
    "DivergenceDetected",
    "error_from_dict",
]
