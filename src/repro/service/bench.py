"""Service throughput benchmark (``python -m repro bench --service``).

Drives a healthy mixed load (functional + timed jobs, unique program
hashes so the result cache cannot shortcut the measurement) through a
fully-isolated :class:`~repro.service.core.JobService` and records
jobs/sec plus end-to-end latency percentiles to ``BENCH_service.json``.

The committed JSON doubles as the CI regression baseline, mirroring
``BENCH_emulator.json``: the bench job re-runs the quick profile and
fails when throughput drops more than the tolerance below the
checked-in number.  Process-isolation cost (fork + pipe per job)
dominates and varies widely across hosts, so the default tolerance is
looser than the emulator bench's.
"""

from __future__ import annotations

import json
import time
from typing import Any

from .chaos import clean_source
from .core import JobService, default_workers
from .job import JobSpec, JobState

#: JSON schema version of BENCH_service.json
SCHEMA = 1
DEFAULT_TOLERANCE = 0.50


def _load(jobs: int, timed_every: int = 4) -> list[JobSpec]:
    """A healthy mixed batch with *jobs* unique program hashes."""
    specs = []
    for index in range(jobs):
        timed = index % timed_every == 0
        specs.append(JobSpec(
            source=clean_source(index),
            name=f"bench-{'timed' if timed else 'functional'}-{index}",
            core="xt910" if timed else None))
    return specs


def run_bench(quick: bool = True, jobs: int | None = None,
              workers: int | None = None) -> dict[str, Any]:
    """Benchmark the service; returns the BENCH_service.json payload."""
    count = jobs if jobs is not None else (32 if quick else 128)
    width = workers if workers is not None else default_workers()
    service = JobService(workers=width, use_cache=False)
    specs = _load(count)
    start = time.perf_counter()
    results = service.run(specs)
    wall_s = time.perf_counter() - start
    completed = sum(1 for r in results if r.state is JobState.COMPLETED)
    counters = service.counters()
    return {
        "schema": SCHEMA,
        "bench": "service",
        "quick": quick,
        "jobs": count,
        "workers": width,
        "completed": completed,
        "wall_s": round(wall_s, 3),
        "jobs_per_s": round(count / wall_s, 3),
        "latency_p50_ms": counters["latency_p50_ms"],
        "latency_p99_ms": counters["latency_p99_ms"],
        "workers_launched": counters["workers_launched"],
        "retries": counters["retries"],
    }


def check_regression(payload: dict[str, Any], baseline: dict[str, Any],
                     tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Compare a fresh service bench against the committed baseline.

    Returns human-readable failure strings (empty = no regression).
    Two gates: every job must complete (a correctness floor, no
    tolerance), and jobs/sec must stay within *tolerance* of baseline.
    """
    failures = []
    if payload["completed"] != payload["jobs"]:
        failures.append(
            f"service bench lost jobs: {payload['completed']} completed "
            f"of {payload['jobs']}")
    base = baseline.get("jobs_per_s")
    if base:
        current = payload["jobs_per_s"]
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"jobs_per_s regressed: {current} < {floor:.3f} "
                f"(baseline {base}, tolerance {tolerance:.0%})")
    return failures


def render(payload: dict[str, Any]) -> str:
    """Terminal table for the service bench payload."""
    lines = [
        f"service bench: {payload['jobs']} jobs on "
        f"{payload['workers']} workers "
        f"({'quick' if payload['quick'] else 'full'} profile)",
        f"{'completed':16s}{payload['completed']:>10}",
        f"{'wall':16s}{payload['wall_s']:>10.3f}  s",
        f"{'throughput':16s}{payload['jobs_per_s']:>10.3f}  jobs/s",
        f"{'latency p50':16s}{payload['latency_p50_ms']:>10.3f}  ms",
        f"{'latency p99':16s}{payload['latency_p99_ms']:>10.3f}  ms",
        f"{'workers launched':16s}{payload['workers_launched']:>10}",
    ]
    lines.append("(end-to-end submit-to-terminal latency; every job runs "
                 "in its own reapable worker process)")
    return "\n".join(lines)


def save(payload: dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path: str) -> dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


__all__ = ["run_bench", "check_regression", "render", "save", "load",
           "DEFAULT_TOLERANCE", "SCHEMA"]
