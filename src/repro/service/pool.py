"""Crash-isolated worker pool with wall-clock reaping.

The pool runs every task in a **single-shot child process**: the task
function executes once, ships its result (or serialized exception)
back over a dedicated pipe, and the process exits.  Compared to a
persistent-worker executor this trades a cheap ``fork()`` per task for
three robustness properties the service core is built on:

* **containment** — a task that segfaults, ``os._exit``\\ s, or is
  OOM-killed takes down exactly one process; sibling tasks and the
  supervisor never see more than a closed pipe,
* **reapability** — a hung task is removed with ``SIGKILL``.  Because
  each result travels over its own pipe there is no shared queue whose
  internal lock a killed worker could be holding — the classic way
  ``multiprocessing.Queue``-based pools deadlock or lose results,
* **attribution** — the supervisor always knows which task a dead
  process was running, so a crash becomes a *classified outcome for
  that task* instead of a pool-wide ``BrokenProcessPool``.

The supervisor never raises for task-level problems: every submitted
task produces exactly one :class:`TaskOutcome` whose ``status`` is
``ok``, ``error`` (the function raised; serialized exception payload),
``crash`` (process died) or ``timeout`` (deadline exceeded, SIGKILLed).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Hashable, cast

from .errors import ServiceError

#: traceback tail kept in serialized error payloads
_TRACEBACK_LIMIT = 20


@dataclass
class TaskOutcome:
    """What happened to one submitted task."""

    status: str                       # "ok" | "error" | "crash" | "timeout"
    value: Any = None                 # result ("ok") or error payload dict
    exitcode: int | None = None       # child exit code for crash outcomes
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _Running:
    key: Hashable
    process: Any                      # multiprocessing.Process
    conn: multiprocessing.connection.Connection
    started: float
    deadline: float | None


@dataclass
class _Queued:
    key: Hashable
    payload: Any
    timeout: float | None


def serialize_exception(exc: BaseException) -> dict[str, Any]:
    """JSON-safe payload for an exception crossing the process pipe.

    :class:`ServiceError` serializes its full taxonomy form (kind,
    detail, cause chain); anything else keeps its type name, message
    and a traceback tail for post-mortems.
    """
    if isinstance(exc, ServiceError):
        return exc.to_dict()
    return {
        "kind": "external",
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exception(
            type(exc), exc, exc.__traceback__, limit=_TRACEBACK_LIMIT),
    }


def _task_main(conn: multiprocessing.connection.Connection,
               fn: Callable[[Any], Any], payload: Any) -> None:
    """Child entry point: run the task, ship one message, exit."""
    try:
        result = fn(payload)
    except BaseException as exc:  # noqa: B036 - the pipe IS the handler
        try:
            conn.send(("error", serialize_exception(exc)))
        except Exception:
            os._exit(81)          # unpicklable error payload: crash outcome
    else:
        try:
            conn.send(("ok", result))
        except Exception:
            os._exit(82)          # unpicklable result: crash outcome
    finally:
        conn.close()


class WorkerPool:
    """Bounded-concurrency supervisor over single-shot task processes.

    Use as a context manager.  ``submit`` queues work; ``wait`` blocks
    until at least one outcome is available (launching queued tasks as
    slots free up); ``drain`` collects everything outstanding.
    """

    def __init__(self, workers: int,
                 fn: Callable[[Any], Any],
                 start_method: str | None = None,
                 poll_interval_s: float = 0.02) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.fn = fn
        self._ctx = (multiprocessing.get_context(start_method)
                     if start_method else multiprocessing.get_context())
        self._poll = poll_interval_s
        self._queue: list[_Queued] = []
        self._running: list[_Running] = []
        self._outcomes: list[tuple[Hashable, TaskOutcome]] = []
        self.launched = 0
        self.crashes = 0
        self.timeouts = 0

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Kill anything still running and drop queued work."""
        for entry in self._running:
            if entry.process.is_alive():
                entry.process.kill()
            entry.process.join()
            entry.conn.close()
        self._running.clear()
        self._queue.clear()

    # -- submission ---------------------------------------------------------

    def submit(self, key: Hashable, payload: Any,
               timeout: float | None = None) -> None:
        """Queue one task; ``timeout`` is its wall-clock budget."""
        self._queue.append(_Queued(key, payload, timeout))
        self._launch_ready()

    @property
    def outstanding(self) -> int:
        """Tasks submitted but not yet resolved to an outcome."""
        return len(self._queue) + len(self._running)

    def _launch_ready(self) -> None:
        while self._queue and len(self._running) < self.workers:
            task = self._queue.pop(0)
            parent, child = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_task_main, args=(child, self.fn, task.payload),
                daemon=True)
            process.start()
            child.close()
            now = time.monotonic()
            deadline = now + task.timeout if task.timeout is not None \
                else None
            self._running.append(_Running(task.key, process, parent,
                                          now, deadline))
            self.launched += 1

    # -- collection ---------------------------------------------------------

    def wait(self, timeout: float | None = None) \
            -> list[tuple[Hashable, TaskOutcome]]:
        """Block until at least one outcome is ready (or ``timeout``).

        Returns every outcome that resolved, in completion order.
        """
        start = time.monotonic()
        while not self._outcomes and self.outstanding:
            self._launch_ready()
            self._step()
            if self._outcomes:
                break
            if timeout is not None \
                    and time.monotonic() - start >= timeout:
                break
        ready = self._outcomes
        self._outcomes = []
        return ready

    def drain(self) -> list[tuple[Hashable, TaskOutcome]]:
        """Run everything to completion; returns all pending outcomes."""
        collected: list[tuple[Hashable, TaskOutcome]] = []
        while self.outstanding:
            collected.extend(self.wait())
        collected.extend(self._outcomes)
        self._outcomes = []
        return collected

    def _step(self) -> None:
        """One supervision quantum: results, corpses, deadlines."""
        if not self._running:
            return
        conns = [entry.conn for entry in self._running]
        ready = multiprocessing.connection.wait(conns, timeout=self._poll)
        now = time.monotonic()
        still_running: list[_Running] = []
        for entry in self._running:
            outcome: TaskOutcome | None = None
            if entry.conn in ready:
                outcome = self._collect(entry, now)
            elif not entry.process.is_alive():
                outcome = self._reap_crash(entry, now)
            elif entry.deadline is not None and now >= entry.deadline:
                outcome = self._reap_timeout(entry, now)
            if outcome is None:
                still_running.append(entry)
            else:
                self._outcomes.append((entry.key, outcome))
        self._running = still_running

    def _collect(self, entry: _Running, now: float) -> TaskOutcome:
        """The task's pipe is readable: a result, or EOF from a corpse."""
        duration = now - entry.started
        try:
            status, value = entry.conn.recv()
        except (EOFError, OSError):
            return self._finish_crash(entry, duration)
        # A worker that reported but wedged on the way out must not
        # wedge the supervisor: give it a moment, then reap it.
        entry.process.join(timeout=5.0)
        if entry.process.is_alive():
            entry.process.kill()
            entry.process.join()
        entry.conn.close()
        return TaskOutcome(status=status, value=value, duration_s=duration)

    def _reap_crash(self, entry: _Running, now: float) -> TaskOutcome:
        """Process died; its last words may still be in the pipe.

        A worker can send its result and exit between the connection
        wait and the aliveness check — that is a completion, not a
        crash, so the pipe is always drained first.  ``_collect``'s
        ``recv`` turns a truly empty pipe (EOF) into the crash outcome.
        """
        if entry.conn.poll(0):
            return self._collect(entry, now)
        return self._finish_crash(entry, now - entry.started)

    def _finish_crash(self, entry: _Running, duration: float) -> TaskOutcome:
        entry.process.join()
        entry.conn.close()
        self.crashes += 1
        return TaskOutcome(status="crash",
                           exitcode=entry.process.exitcode,
                           duration_s=duration)

    def _reap_timeout(self, entry: _Running, now: float) -> TaskOutcome:
        """Deadline exceeded: SIGKILL the worker, classify as timeout.

        A worker that slipped its result in just before the kill still
        counts as completed — the pipe is checked one final time.
        """
        if entry.conn.poll(0):
            return self._collect(entry, now)
        entry.process.kill()
        entry.process.join()
        entry.conn.close()
        self.timeouts += 1
        return TaskOutcome(status="timeout", duration_s=now - entry.started)


def run_tasks(fn: Callable[[Any], Any], payloads: list[Any],
              workers: int, timeout: float | None = None) \
        -> list[TaskOutcome]:
    """Convenience: run ``fn`` over ``payloads``, input-order outcomes."""
    outcomes: dict[int, TaskOutcome] = {}
    with WorkerPool(workers, fn) as pool:
        for index, payload in enumerate(payloads):
            pool.submit(index, payload, timeout=timeout)
        for key, outcome in pool.drain():
            outcomes[cast(int, key)] = outcome
    return [outcomes[i] for i in range(len(payloads))]


__all__ = ["WorkerPool", "TaskOutcome", "run_tasks", "serialize_exception"]
