"""Job schema: what users submit and what the service returns.

A :class:`JobSpec` is a plain, picklable description of one simulation
request — assembly source plus execution knobs.  Hashing is content-
addressed: ``program_hash`` covers the guest program bytes-to-be,
``config_hash`` covers every knob that changes the answer, and the two
together (plus the resolved execution mode) key the result cache, so
retries and repeat submissions of identical work are free.

A :class:`JobResult` is the service's *only* answer shape: every job —
completed, degraded, timed out, rejected, crashed-out or quarantined —
terminates in exactly one terminal :class:`JobState` with a
serializable error chain when it did not complete.  "Every submitted
job reaches a definitive state" is the invariant the chaos harness
(:mod:`repro.service.chaos`) exists to prove.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Any


class JobState(str, Enum):
    """Lifecycle states; everything below PENDING/RUNNING is terminal."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"      # ran to exit (possibly degraded)
    TIMEOUT = "timeout"          # watchdog fired; partial data attached
    FAILED = "failed"            # structured ServiceError, all retries spent
    REJECTED = "rejected"        # admission vetting refused the program
    QUARANTINED = "quarantined"  # circuit breaker: program hash is toxic


TERMINAL_STATES = frozenset({
    JobState.COMPLETED, JobState.TIMEOUT, JobState.FAILED,
    JobState.REJECTED, JobState.QUARANTINED,
})

#: entry tier per execution mode (``auto`` starts the ladder at 3)
_MODE_TIERS = {"precise": 1, "fast": 2, "tier3": 3, "auto": 3}


@dataclass
class JobSpec:
    """One simulation request.

    ``core=None`` runs the functional emulator only; a preset name adds
    the 12-stage timing model.  ``uarch`` optionally carries an inline
    config *document* (the ``repro.uarch.uconfig`` schema — what
    ``--uarch file.yaml --extend overlay.yaml`` resolves to): when set
    it defines the timing core, is schema-validated at admission
    (invalid documents are REJECTED, never executed), and is folded
    into ``config_hash`` so differently-configured runs of the same
    program never share a cache entry.  ``mode`` selects the execution
    tier:
    ``"tier3"`` (specializing translator), ``"fast"`` (block-translation
    cache), ``"precise"`` (per-step interpreter) or ``"auto"`` — tier-3
    with automatic fast-then-precise fallback when a tier fails or
    diverges (the degradation ladder).  ``chaos`` is the deterministic
    fault-injection door used by the chaos harness; production
    submissions leave it empty.
    """

    source: str
    name: str = "job"
    core: str | None = "xt910"
    uarch: dict[str, Any] | None = None
    mode: str = "auto"
    max_insts: int = 5_000_000
    wall_timeout_s: float | None = 60.0
    compress: bool = True
    vet: bool = True
    chaos: dict[str, Any] = field(default_factory=dict)

    @property
    def program_hash(self) -> str:
        """Content hash of the guest program (source + encoding knobs)."""
        blob = f"{self.compress}\x00{self.source}".encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    @property
    def config_hash(self) -> str:
        """Content hash of every knob that changes the result."""
        config = {
            "core": self.core,
            "uarch": self.uarch,
            "max_insts": self.max_insts,
            "vet": self.vet,
        }
        blob = json.dumps(config, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    @property
    def execution_tier(self) -> int:
        """Numeric tier the mode *starts* at (1 precise, 2 fast,
        3 specializing translator; ``auto`` enters the ladder at 3)."""
        return _MODE_TIERS.get(self.mode, 3)

    def cache_key(self, mode: str | None = None) -> tuple[str, str, str, int]:
        """(program, config, mode, tier) key for the content-addressed
        cache.  The tier component keeps tier-3 results from colliding
        with tier-2/precise entries even for modes that share a string
        (``auto`` historically meant "fast with fallback"; it now
        enters at tier 3)."""
        resolved = mode if mode is not None else self.mode
        return (self.program_hash, self.config_hash, resolved,
                _MODE_TIERS.get(resolved, 3))

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobSpec":
        return cls(**payload)


@dataclass
class JobResult:
    """The definitive outcome of one job."""

    name: str
    state: JobState
    job_id: int = 0
    attempts: int = 1
    duration_s: float = 0.0
    exit_code: int | None = None
    error: dict[str, Any] | None = None
    metrics: dict[str, Any] = field(default_factory=dict)
    stdout: str = ""
    downgraded: bool = False
    downgrade_reason: str | None = None
    cache_hit: bool = False
    partial: bool = False
    program_hash: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def ok(self) -> bool:
        return self.state is JobState.COMPLETED

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["state"] = self.state.value
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobResult":
        data = dict(payload)
        data["state"] = JobState(data["state"])
        return cls(**data)

    def summary(self) -> str:
        """One line for the ``repro submit`` table."""
        bits = [self.state.value]
        if self.downgraded:
            bits.append("degraded")
        if self.cache_hit:
            bits.append("cached")
        if self.partial:
            bits.append("partial")
        if self.attempts > 1:
            bits.append(f"{self.attempts} attempts")
        head = f"{self.name}: {', '.join(bits)}"
        if self.state is JobState.COMPLETED and "ipc" in self.metrics:
            head += (f"  cycles={self.metrics.get('cycles')} "
                     f"ipc={self.metrics['ipc']:.3f}")
        elif self.state is JobState.COMPLETED:
            head += f"  instret={self.metrics.get('instret')}"
        elif self.error is not None:
            head += f"  [{self.error['kind']}] {self.error['message']}"
        return head


__all__ = ["JobSpec", "JobResult", "JobState", "TERMINAL_STATES"]
