"""The fault-tolerant job service: submit specs, get terminal results.

:class:`JobService` wraps the whole existing stack — analyzer/sanitizer
vetting, blockcache/fast-path execution, the timing model, the metrics
surface — behind one supervisor with a full robustness envelope:

* a **content-addressed result cache** in front of the pool, so
  retries and repeat submissions of identical work are free,
* a **circuit breaker** per program hash, so a toxic program stops
  burning worker slots after N consecutive terminal failures,
* **crash-isolated execution** on :class:`~repro.service.pool.
  WorkerPool` — a worker that dies or wedges is reaped and classified,
  never propagated,
* **retry with exponential backoff + jitter** for the transient
  failure classes (worker crash, wall-clock timeout, internal worker
  error), seeded so campaigns replay deterministically,
* the **degradation ladder** inside the worker (fast → precise) for
  fast-path faults and divergence.

The service-level invariant, proven by :mod:`repro.service.chaos` and
gated in CI: *every submitted job terminates in exactly one definitive
terminal state, with a structured, serializable error chain when it
did not complete* — no job is ever silently lost.
"""

from __future__ import annotations

import heapq
import os
import random
import time
from typing import Any, Sequence, cast

from .cache import ResultCache
from .errors import ServiceError, WatchdogTimeout, WorkerCrash
from .job import JobResult, JobSpec, JobState
from .pool import TaskOutcome, WorkerPool, serialize_exception
from .retry import CircuitBreaker, RetryPolicy
from .worker import execute_job


def default_workers() -> int:
    """A sensible pool width for this machine."""
    return max(1, min(8, os.cpu_count() or 1))


class JobService:
    """Supervisor for batches of simulation jobs.

    ``isolation=False`` runs jobs inline in this process — no crash
    containment and no wall-clock reaping (chaos crash/hang plans
    would take this process with them), but single-stepping a job
    under pdb works.  The default is full process isolation.
    """

    def __init__(self, *, workers: int | None = None,
                 retry: RetryPolicy | None = None,
                 breaker_threshold: int = 3,
                 cache_capacity: int = 4096,
                 use_cache: bool = True,
                 seed: int = 2020,
                 isolation: bool = True,
                 start_method: str | None = None) -> None:
        self.workers = workers if workers is not None else default_workers()
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = CircuitBreaker(breaker_threshold)
        self.cache: ResultCache | None = (
            ResultCache(cache_capacity) if use_cache else None)
        self.isolation = isolation
        self._start_method = start_method
        self._rng = random.Random(seed)
        self._job_seq = 0
        self.latencies_s: list[float] = []
        self._counts: dict[str, int] = {
            "jobs_submitted": 0, "jobs_completed": 0, "jobs_degraded": 0,
            "jobs_timeout": 0, "jobs_failed": 0, "jobs_rejected": 0,
            "jobs_quarantined": 0, "retries": 0, "fallbacks": 0,
            "worker_crashes": 0, "wall_timeouts": 0, "internal_errors": 0,
            "workers_launched": 0,
        }

    # -- public API ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobResult:
        """Run one job to its terminal state."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[JobSpec]) -> list[JobResult]:
        """Run a batch; the result list parallels the input order.

        Every entry is terminal on return — the method does not raise
        for job-level problems of any kind.
        """
        if not specs:
            return []
        self._counts["jobs_submitted"] += len(specs)
        results: list[JobResult | None] = [None] * len(specs)
        started = [0.0] * len(specs)
        #: (ready_time, index, attempt) — jobs awaiting (re)launch
        ready: list[tuple[float, int, int]] = []
        now = time.monotonic()
        for index in range(len(specs)):
            started[index] = now
            heapq.heappush(ready, (now, index, 1))
        if self.isolation:
            self._run_pooled(specs, results, started, ready)
        else:
            self._run_inline(specs, results, started, ready)
        done = [result for result in results if result is not None]
        assert len(done) == len(specs)  # the no-silent-loss invariant
        return done

    # -- supervision --------------------------------------------------------

    def _run_pooled(self, specs: Sequence[JobSpec],
                    results: list[JobResult | None],
                    started: list[float],
                    ready: list[tuple[float, int, int]]) -> None:
        with WorkerPool(self.workers, execute_job,
                        start_method=self._start_method) as pool:
            while ready or pool.outstanding:
                now = time.monotonic()
                while ready and ready[0][0] <= now:
                    _, index, attempt = heapq.heappop(ready)
                    self._launch(pool, specs, results, started,
                                 index, attempt)
                if pool.outstanding:
                    next_ready = ready[0][0] - now if ready else None
                    for key, outcome in pool.wait(timeout=next_ready):
                        index, attempt = cast(tuple[int, int], key)
                        self._absorb(specs, results, started, ready,
                                     index, attempt, outcome)
                elif ready:
                    time.sleep(max(0.0, min(ready[0][0] - now, 0.05)))
            self._counts["workers_launched"] += pool.launched

    def _run_inline(self, specs: Sequence[JobSpec],
                    results: list[JobResult | None],
                    started: list[float],
                    ready: list[tuple[float, int, int]]) -> None:
        while ready:
            ready_time, index, attempt = heapq.heappop(ready)
            time.sleep(max(0.0, ready_time - time.monotonic()))
            spec = specs[index]
            if self.breaker.is_open(spec.program_hash):
                self._finalize(results, started, index,
                               self._quarantined(spec), spec)
                continue
            if attempt == 1:
                cached = self._cache_get(spec)
                if cached is not None:
                    self._finalize(results, started, index, cached, spec,
                                   from_cache=True)
                    continue
            payload = {"spec": spec.to_dict(), "attempt": attempt}
            try:
                outcome = TaskOutcome(status="ok",
                                      value=execute_job(payload))
            except Exception as exc:
                outcome = TaskOutcome(status="error",
                                      value=serialize_exception(exc))
            self._absorb(specs, results, started, ready,
                         index, attempt, outcome)

    def _launch(self, pool: WorkerPool, specs: Sequence[JobSpec],
                results: list[JobResult | None], started: list[float],
                index: int, attempt: int) -> None:
        spec = specs[index]
        # The breaker may have opened — and a duplicate spec earlier in
        # the batch may have populated the cache — while this job sat
        # in the queue.
        if self.breaker.is_open(spec.program_hash):
            self._finalize(results, started, index,
                           self._quarantined(spec), spec)
            return
        if attempt == 1:
            cached = self._cache_get(spec)
            if cached is not None:
                self._finalize(results, started, index, cached, spec,
                               from_cache=True)
                return
        payload = {"spec": spec.to_dict(), "attempt": attempt}
        pool.submit((index, attempt), payload,
                    timeout=spec.wall_timeout_s)

    def _absorb(self, specs: Sequence[JobSpec],
                results: list[JobResult | None], started: list[float],
                ready: list[tuple[float, int, int]],
                index: int, attempt: int, outcome: TaskOutcome) -> None:
        """Fold one pool outcome into a terminal result or a retry."""
        spec = specs[index]
        if outcome.status == "ok":
            result = JobResult.from_dict(outcome.value)
            result.attempts = attempt
            error = result.error
            retryable = bool(error and error.get("retryable"))
        else:
            error_obj = self._supervisor_error(outcome, attempt)
            result = JobResult(
                name=spec.name,
                state=(JobState.TIMEOUT
                       if isinstance(error_obj, WatchdogTimeout)
                       else JobState.FAILED),
                attempts=attempt, error=error_obj.to_dict(),
                program_hash=spec.program_hash)
            retryable = error_obj.retryable
        if retryable and not self.retry.exhausted(attempt) \
                and not self.breaker.is_open(spec.program_hash):
            self._counts["retries"] += 1
            delay = self.retry.delay(attempt, self._rng)
            heapq.heappush(ready,
                           (time.monotonic() + delay, index, attempt + 1))
            return
        self._finalize(results, started, index, result, spec)

    def _supervisor_error(self, outcome: TaskOutcome,
                          attempt: int) -> ServiceError:
        """Classify an outcome the worker could not report itself."""
        if outcome.status == "crash":
            self._counts["worker_crashes"] += 1
            return WorkerCrash(
                f"worker process died (exit code {outcome.exitcode}) "
                f"on attempt {attempt}",
                detail={"exitcode": outcome.exitcode,
                        "attempt": attempt})
        if outcome.status == "timeout":
            self._counts["wall_timeouts"] += 1
            return WatchdogTimeout(
                f"wall-clock watchdog: worker exceeded its deadline "
                f"({outcome.duration_s:.2f}s) on attempt {attempt}",
                detail={"watchdog": "wall-clock",
                        "duration_s": round(outcome.duration_s, 3),
                        "attempt": attempt},
                retryable=True)
        # "error": the worker raised outside the job's own containment.
        self._counts["internal_errors"] += 1
        payload = outcome.value if isinstance(outcome.value, dict) else {}
        message = payload.get("message", "worker exception")
        error = ServiceError(
            f"internal worker error on attempt {attempt}: "
            f"{payload.get('type', 'Exception')}: {message}",
            detail={"attempt": attempt}, retryable=True)
        return error

    # -- bookkeeping --------------------------------------------------------

    def _quarantined(self, spec: JobSpec) -> JobResult:
        error = ServiceError(
            f"circuit breaker open for program {spec.program_hash}: "
            f"{self.breaker.threshold} consecutive failures",
            detail={"program_hash": spec.program_hash},
            retryable=False)
        return JobResult(name=spec.name, state=JobState.QUARANTINED,
                         error=error.to_dict(), attempts=0,
                         program_hash=spec.program_hash)

    def _cache_get(self, spec: JobSpec) -> JobResult | None:
        if self.cache is None:
            return None
        return self.cache.get(spec.cache_key())

    def _finalize(self, results: list[JobResult | None],
                  started: list[float], index: int, result: JobResult,
                  spec: JobSpec, from_cache: bool = False) -> None:
        self._job_seq += 1
        result.job_id = self._job_seq
        result.duration_s = round(time.monotonic() - started[index], 6)
        results[index] = result
        self.latencies_s.append(result.duration_s)
        state_counter = {
            JobState.COMPLETED: "jobs_completed",
            JobState.TIMEOUT: "jobs_timeout",
            JobState.FAILED: "jobs_failed",
            JobState.REJECTED: "jobs_rejected",
            JobState.QUARANTINED: "jobs_quarantined",
        }[result.state]
        self._counts[state_counter] += 1
        if result.downgraded:
            self._counts["jobs_degraded"] += 1
            self._counts["fallbacks"] += 1
        if from_cache:
            return
        if result.state is JobState.COMPLETED:
            self.breaker.record_success(spec.program_hash)
            if self.cache is not None:
                self.cache.put(spec.cache_key(), result)
        elif result.state is not JobState.QUARANTINED:
            self.breaker.record_failure(spec.program_hash)

    # -- metrics ------------------------------------------------------------

    def counters(self) -> dict[str, Any]:
        """Service-namespace counter snapshot (ints/floats only)."""
        counters: dict[str, Any] = dict(self._counts)
        counters["breaker_trips"] = self.breaker.trips
        counters["breaker_open"] = len(self.breaker.open_keys)
        if self.cache is not None:
            for name, value in self.cache.counters().items():
                counters[f"cache_{name}"] = value
        lat = sorted(self.latencies_s)
        counters["latency_p50_ms"] = round(_percentile(lat, 50.0) * 1e3, 3)
        counters["latency_p99_ms"] = round(_percentile(lat, 99.0) * 1e3, 3)
        return counters


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(-(-q * len(sorted_values) // 100)))  # ceil
    return sorted_values[min(rank, len(sorted_values)) - 1]


__all__ = ["JobService", "default_workers"]
