"""Whole-program control-flow-graph recovery from decoded text sections.

The builder walks the statically decoded instruction stream
(:func:`repro.isa.classify.iter_text`), splits it at leaders, and links
basic blocks with branch, jump, call-fall-through and recovered
indirect-jump edges.  Indirect jumps (``jr``) get their successor set
from code pointers found in the data section and symbol table — the
jump-table idiom every compiler emits for dense switches.  On top of
the raw graph it partitions blocks into functions (program entry plus
every static call target), computes per-function dominator trees, and
flags code no edge can reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..isa.classify import (
    DecodedInst,
    exit_syscall_value,
    is_branch,
    is_call,
    is_indirect_jump,
    is_plain_jump,
    is_ret,
    iter_text,
    jump_target,
)
from ..isa.instructions import InstrClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..asm.program import Program

#: mnemonics that end a basic block because control may not fall through
_SYSTEM_TERMINATORS = frozenset({"ecall", "ebreak", "mret", "sret"})

#: block terminator classification
KIND_FALL = "fall"          # runs into the next block
KIND_BRANCH = "branch"      # conditional: target + fall-through
KIND_JUMP = "jump"          # unconditional direct jump
KIND_CALL = "call"          # direct or indirect call; falls through on return
KIND_RET = "ret"            # function return
KIND_INDIRECT = "indirect"  # jump-table style jalr
KIND_EXIT = "exit"          # ecall with a statically-known exit a7
KIND_SYSTEM = "system"      # ecall/ebreak/mret/sret with unknown continuation


@dataclass
class BasicBlock:
    """One maximal straight-line run of instructions."""

    start: int
    insts: list[DecodedInst]
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    kind: str = KIND_FALL
    #: static call target (``jal ra``); None for indirect calls
    call_target: int | None = None

    @property
    def end(self) -> int:
        last = self.insts[-1]
        return last.addr + last.inst.size

    @property
    def terminator(self) -> DecodedInst:
        return self.insts[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BasicBlock({self.start:#x}..{self.end:#x} "
                f"{self.kind} -> {[hex(s) for s in self.succs]})")


@dataclass
class Function:
    """A connected region of blocks reachable from one call target."""

    entry: int
    name: str
    blocks: list[int] = field(default_factory=list)
    #: starts of blocks ending in ``ret``
    rets: list[int] = field(default_factory=list)
    #: immediate dominator per block start (entry maps to itself)
    idom: dict[int, int] = field(default_factory=dict)

    def dominates(self, a: int, b: int) -> bool:
        """Whether block *a* dominates block *b* inside this function."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom.get(node)
            if parent is None or parent == node:
                return a == node
            node = parent


class CFG:
    """The recovered whole-program control-flow graph."""

    def __init__(self, program: Program):
        self.program = program
        self.blocks: dict[int, BasicBlock] = {}
        #: block starts in address order
        self.order: list[int] = []
        self.entry: int = program.entry
        self.functions: dict[int, Function] = {}
        #: block start -> owning function entry
        self.block_func: dict[int, int] = {}
        #: function entry -> call-site block starts
        self.callers: dict[int, list[int]] = {}
        #: block starts no edge (or call) reaches
        self.unreachable: list[int] = []
        #: recovered indirect-jump target pool (jump tables)
        self.indirect_targets: list[int] = []

    # -- lookups -----------------------------------------------------------

    def block_at(self, addr: int) -> BasicBlock | None:
        """The block containing *addr*, if any."""
        block = self.blocks.get(addr)
        if block is not None:
            return block
        for start in self.order:
            candidate = self.blocks[start]
            if candidate.start <= addr < candidate.end:
                return candidate
        return None

    def function_of(self, block_start: int) -> Function | None:
        entry = self.block_func.get(block_start)
        return self.functions.get(entry) if entry is not None else None

    # -- interprocedural successor view ------------------------------------

    def super_succs(self, block: BasicBlock) -> list[int]:
        """Successors in the interprocedural supergraph.

        Call blocks flow into their callee's entry (the fall-through is
        reached *through* the callee's return); return blocks flow back
        to the fall-through of every recorded call site.
        """
        if block.kind == KIND_CALL and block.call_target is not None:
            if block.call_target in self.blocks:
                return [block.call_target]
            return list(block.succs)
        if block.kind == KIND_RET:
            entry = self.block_func.get(block.start)
            sites: list[int] = []
            for site in self.callers.get(entry if entry is not None else -1,
                                         []):
                call_block = self.blocks[site]
                sites.extend(call_block.succs)
            return sites
        return list(block.succs)


def _code_pointers(program: Program, starts: set[int]) -> list[int]:
    """Instruction addresses the data section points at.

    Jump tables are ``.dword label`` runs, so every aligned data dword
    that lands on a decoded instruction start is a candidate indirect
    target.  Deliberately *not* the whole symbol table: routing every
    ``jr`` to every label would fuse unrelated functions together.
    """
    targets: set[int] = set()
    data = program.data
    for offset in range(0, len(data) - 7, 8):
        value = int.from_bytes(data[offset:offset + 8], "little")
        if value in starts:
            targets.add(value)
    return sorted(targets)


def build_cfg(program: Program) -> CFG:
    """Recover the CFG of *program*'s text section."""
    cfg = CFG(program)
    insts = list(iter_text(program))
    if not insts:
        return cfg
    index_of = {di.addr: i for i, di in enumerate(insts)}
    starts = set(index_of)

    # -- pass 1: leaders and terminators -----------------------------------
    leaders: set[int] = {program.entry} if program.entry in starts \
        else {insts[0].addr}
    terminator_at: dict[int, str] = {}
    for i, di in enumerate(insts):
        inst = di.inst
        kind: str | None = None
        if is_branch(inst):
            kind = KIND_BRANCH
            leaders.add(jump_target(inst, di.addr))
        elif is_call(inst):
            kind = KIND_CALL
            if inst.spec.mnemonic == "jal":
                leaders.add(jump_target(inst, di.addr))
        elif is_ret(inst):
            kind = KIND_RET
        elif is_plain_jump(inst):
            kind = KIND_JUMP
            leaders.add(jump_target(inst, di.addr))
        elif is_indirect_jump(inst):
            kind = KIND_INDIRECT
        elif inst.spec.mnemonic in _SYSTEM_TERMINATORS:
            if (inst.spec.mnemonic == "ecall"
                    and exit_syscall_value(insts, i) == 93):
                kind = KIND_EXIT
            else:
                kind = KIND_SYSTEM
        if kind is not None:
            terminator_at[di.addr] = kind
            if i + 1 < len(insts):
                leaders.add(insts[i + 1].addr)
    leaders &= starts

    # -- pass 2: carve blocks ----------------------------------------------
    current: list[DecodedInst] = []
    block_start = insts[0].addr
    for di in insts:
        if di.addr in leaders and current:
            cfg.blocks[block_start] = BasicBlock(block_start, current)
            current = []
        if not current:
            block_start = di.addr
        current.append(di)
        if di.addr in terminator_at:
            block = BasicBlock(block_start, current,
                               kind=terminator_at[di.addr])
            cfg.blocks[block_start] = block
            current = []
    if current:
        cfg.blocks[block_start] = BasicBlock(block_start, current)
    cfg.order = sorted(cfg.blocks)

    cfg.indirect_targets = _code_pointers(program, leaders)

    # -- pass 3: edges ------------------------------------------------------
    block_starts = set(cfg.order)

    def fall_through(block: BasicBlock) -> int | None:
        nxt = block.end
        return nxt if nxt in block_starts else None

    for start in cfg.order:
        block = cfg.blocks[start]
        term = block.terminator
        inst = term.inst
        succs: list[int] = []
        if block.kind == KIND_BRANCH:
            target = jump_target(inst, term.addr)
            if target in block_starts:
                succs.append(target)
            fall = fall_through(block)
            if fall is not None:
                succs.append(fall)
        elif block.kind == KIND_JUMP:
            target = jump_target(inst, term.addr)
            if target in block_starts:
                succs.append(target)
        elif block.kind == KIND_CALL:
            if inst.spec.mnemonic == "jal":
                block.call_target = jump_target(inst, term.addr)
            fall = fall_through(block)
            if fall is not None:
                succs.append(fall)
        elif block.kind == KIND_INDIRECT:
            succs.extend(t for t in cfg.indirect_targets
                         if t in block_starts)
        elif block.kind in (KIND_RET, KIND_EXIT, KIND_SYSTEM):
            pass
        else:  # plain fall-through (incl. non-terminating system insts)
            fall = fall_through(block)
            if fall is not None:
                succs.append(fall)
        block.succs = succs
    for start in cfg.order:
        for succ in cfg.blocks[start].succs:
            cfg.blocks[succ].preds.append(start)

    _partition_functions(cfg)
    _compute_dominators(cfg)
    _find_unreachable(cfg)
    return cfg


def _function_name(program: Program, addr: int) -> str:
    names = sorted(name for name, value in program.symbols.items()
                   if value == addr)
    if names:
        return names[0]
    return f"func_{addr:#x}"


def _partition_functions(cfg: CFG) -> None:
    """Assign blocks to functions by intra-procedural reachability."""
    program = cfg.program
    entries: list[int] = []
    if cfg.entry in cfg.blocks:
        entries.append(cfg.entry)
    call_sites: dict[int, list[int]] = {}
    for start in cfg.order:
        block = cfg.blocks[start]
        if block.kind == KIND_CALL and block.call_target is not None:
            call_sites.setdefault(block.call_target, []).append(start)
            if (block.call_target in cfg.blocks
                    and block.call_target not in entries):
                entries.append(block.call_target)
    cfg.callers = call_sites

    # Pre-claim each entry for its own function so that stray edges
    # into a callee's first block (e.g. recovered indirect targets)
    # cannot absorb the callee into its caller.
    claimed: dict[int, int] = {entry: entry for entry in entries}
    for entry in entries:
        func = Function(entry=entry, name=_function_name(program, entry))
        stack = [entry]
        while stack:
            start = stack.pop()
            if start in claimed and claimed[start] != entry:
                continue
            if start in func.blocks:
                continue
            claimed[start] = entry
            func.blocks.append(start)
            block = cfg.blocks[start]
            if block.kind == KIND_RET:
                func.rets.append(start)
            stack.extend(s for s in block.succs if s not in claimed)
        func.blocks.sort()
        cfg.functions[entry] = func
    cfg.block_func = claimed


def _compute_dominators(cfg: CFG) -> None:
    """Iterative dominator computation (Cooper/Harvey/Kennedy) per
    function, over the intra-procedural edges."""
    for func in cfg.functions.values():
        members = set(func.blocks)
        # Reverse postorder from the function entry.
        order: list[int] = []
        seen: set[int] = set()

        def visit(start: int, members: set[int] = members,
                  order: list[int] = order, seen: set[int] = seen) -> None:
            stack = [(start, iter(cfg.blocks[start].succs))]
            seen.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ in members and succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(cfg.blocks[succ].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(func.entry)
        rpo = list(reversed(order))
        rpo_index = {b: i for i, b in enumerate(rpo)}
        idom: dict[int, int] = {func.entry: func.entry}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while rpo_index[a] > rpo_index[b]:
                    a = idom[a]
                while rpo_index[b] > rpo_index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in rpo:
                if node == func.entry:
                    continue
                preds = [p for p in cfg.blocks[node].preds
                         if p in rpo_index and p in idom]
                if not preds:
                    continue
                new = preds[0]
                for pred in preds[1:]:
                    new = intersect(new, pred)
                if idom.get(node) != new:
                    idom[node] = new
                    changed = True
        func.idom = idom


def _find_unreachable(cfg: CFG) -> None:
    """Blocks no edge, call or recovered indirect target reaches."""
    reached: set[int] = set()
    roots = [cfg.entry] if cfg.entry in cfg.blocks else []
    stack = list(roots)
    while stack:
        start = stack.pop()
        if start in reached:
            continue
        reached.add(start)
        block = cfg.blocks[start]
        succs = list(block.succs)
        if block.kind == KIND_CALL and block.call_target is not None \
                and block.call_target in cfg.blocks:
            succs.append(block.call_target)
        if block.kind == KIND_INDIRECT:
            # succs already carry the recovered pool
            pass
        stack.extend(succs)
    cfg.unreachable = [start for start in cfg.order if start not in reached]
