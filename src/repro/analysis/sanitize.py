"""Runtime sanitizer: static facts validated on the block-cache path.

:class:`Sanitizer` hangs off an :class:`~repro.sim.emulator.Emulator`
(``emulator.sanitizer``); the fast dispatch loops call
:meth:`pre_block` before and :meth:`post_block` after each translated
block.  Because translated blocks are straight-line, block granularity
is exact: entering a block executes its whole use/def summary unless a
trap or exit cuts it short, and the retired count from the engine
covers that case.

Two invariant families are enforced:

* **register init state** — a shadow bitmask (same layout as
  :mod:`repro.analysis.dataflow`) tracks definitely-written registers;
  a block whose uses-before-defs exceed the mask is a violation,
* **stack discipline** — a shadow call stack pushed at calls records
  the expected return PC and stack pointer; every return must match
  both (frame balance + control-flow integrity).

Summaries are computed once per :class:`TranslatedBlock` and cached on
the block's ``sanitize`` slot, so steady-state overhead is two integer
ANDs per block.  With ``emulator.sanitizer`` left at ``None`` the fast
loops skip both hooks entirely — retired state and
:class:`~repro.uarch.stats.CoreStats` are bit-identical to an
unsanitized run.
"""

from __future__ import annotations

from ..isa.classify import is_call, is_ret
from ..isa.instructions import Instruction
from .dataflow import ENTRY_MASK, bit_name, def_mask, use_mask


class SanitizerViolation(RuntimeError):
    """Raised in strict mode when a runtime invariant breaks."""

    def __init__(self, violation: Violation):
        super().__init__(violation.render())
        self.violation = violation


class Violation:
    """One runtime invariant failure."""

    __slots__ = ("kind", "pc", "line", "message", "detail", "source")

    def __init__(self, kind: str, pc: int, message: str,
                 detail: str = "", line: int = 0, source: str = ""):
        self.kind = kind
        self.pc = pc
        self.line = line
        self.message = message
        self.detail = detail
        self.source = source

    def render(self) -> str:
        loc = f"line {self.line}" if self.line else f"pc={self.pc:#x}"
        text = f"[{self.kind}] {loc}: {self.message}"
        if self.source:
            text += f"  |  {self.source}"
        return text

    def to_dict(self) -> dict:
        return {"kind": self.kind, "pc": self.pc, "line": self.line,
                "message": self.message, "detail": self.detail,
                "source": self.source}


class _BlockSummary:
    """Static use/def facts of one translated block."""

    __slots__ = ("use_before_def", "def_masks", "full_defs",
                 "terminator", "call_fall")

    def __init__(self, entries: list):
        use_bd = 0
        defs = 0
        self.def_masks: list[int] = []
        for _handler, inst, _pc, _fall, _flags, _rec in entries:
            use_bd |= use_mask(inst) & ~defs
            defs |= def_mask(inst)
            self.def_masks.append(defs)
        self.use_before_def = use_bd
        self.full_defs = defs
        self.terminator = ""
        self.call_fall = 0
        if entries:
            last: Instruction = entries[-1][1]
            if is_call(last):
                self.terminator = "call"
                self.call_fall = entries[-1][3]
            elif is_ret(last):
                self.terminator = "ret"


class Sanitizer:
    """Shadow state checked at translated-block boundaries."""

    def __init__(self, program=None, strict: bool = True,
                 shadow: int = ENTRY_MASK):
        self.program = program
        self.strict = strict
        #: definitely-written register bits (dataflow bit layout)
        self.shadow = shadow
        #: (expected return pc, expected sp) per active call frame
        self.call_stack: list[tuple[int, int]] = []
        self.violations: list[Violation] = []
        self.blocks_checked = 0
        self.max_depth = 0

    # -- hooks called from the emulator's fast loops -----------------------

    def pre_block(self, block) -> None:
        """Validate the block's uses against the shadow init mask."""
        summary = block.sanitize
        if summary is None:
            summary = block.sanitize = _BlockSummary(block.entries)
        self.blocks_checked += 1
        missing = summary.use_before_def & ~self.shadow
        if missing:
            self._attribute_uninit(block, missing)

    def post_block(self, block, retired: int, state) -> None:
        """Fold in the executed prefix's defs; track calls/returns."""
        summary = block.sanitize
        entries = block.entries
        if retired >= len(entries):
            self.shadow |= summary.full_defs
            if summary.terminator == "call":
                self.call_stack.append((summary.call_fall, state.regs[2]))
                if len(self.call_stack) > self.max_depth:
                    self.max_depth = len(self.call_stack)
            elif summary.terminator == "ret":
                self._check_return(entries[-1][2], state)
        elif retired > 0:
            self.shadow |= summary.def_masks[retired - 1]

    # -- violation details -------------------------------------------------

    def _attribute_uninit(self, block, missing: int) -> None:
        """Walk the block to name the first offending read per register."""
        shadow = self.shadow
        for _handler, inst, pc, _fall, _flags, _rec in block.entries:
            bad = use_mask(inst) & ~shadow
            bit = 0
            while bad >> bit:
                if bad >> bit & 1:
                    name = bit_name(bit)
                    if bit == 96:
                        self._report(
                            "vector-no-vsetvl", pc,
                            f"vector instruction "
                            f"'{inst.spec.mnemonic}' executed before "
                            f"any vsetvl", detail=name)
                    else:
                        self._report(
                            "uninit-read", pc,
                            f"read of never-written register {name}",
                            detail=name)
                bit += 1
            shadow |= def_mask(inst)

    def _check_return(self, ret_pc: int, state) -> None:
        if not self.call_stack:
            self._report(
                "stack-underflow", ret_pc,
                "return executed with no active call frame")
            return
        expected_pc, expected_sp = self.call_stack.pop()
        sp = state.regs[2]
        if sp != expected_sp:
            self._report(
                "stack-imbalance", ret_pc,
                f"return with sp={sp:#x}, expected {expected_sp:#x} "
                f"({sp - expected_sp:+#x})",
                detail=f"{sp - expected_sp:+#x}")
        if state.pc != expected_pc:
            self._report(
                "return-target", ret_pc,
                f"return to {state.pc:#x}, call site expects "
                f"{expected_pc:#x}", detail=f"{state.pc:#x}")

    def _report(self, kind: str, pc: int, message: str,
                detail: str = "") -> None:
        line = 0
        source = ""
        program = self.program
        if program is not None:
            line = getattr(program, "lines", {}).get(pc, 0)
            source = program.source_line(pc)
        violation = Violation(kind, pc, message, detail=detail,
                              line=line, source=source)
        self.violations.append(violation)
        if self.strict:
            raise SanitizerViolation(violation)

    def summary(self) -> dict:
        return {
            "blocks_checked": self.blocks_checked,
            "violations": len(self.violations),
            "max_call_depth": self.max_depth,
        }
