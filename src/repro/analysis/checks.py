"""The lint checker suite over a recovered CFG.

Each checker turns dataflow facts into :class:`Finding` records with
source-line provenance.  Finding keys deliberately use function name,
source line and register — not raw addresses — so the committed
baselines survive unrelated code motion.

Checks implemented (ids in brackets):

* maybe-uninitialized register reads [``uninit-read``],
* vector instruction with no dominating ``vsetvl`` [``vector-no-vsetvl``],
* vector reconfiguration while differently-configured registers are
  live [``vreconfig-live``],
* callee-saved register clobbered without save/restore
  [``callee-clobber``],
* unbalanced stack-pointer adjustment at return [``stack-imbalance``]
  and untracked stack-pointer writes [``sp-untracked``],
* LR/SC pairing and forward-progress rules [``lrsc-unpaired``,
  ``lrsc-orphan-sc``, ``lrsc-progress``],
* statically wild or misaligned effective addresses [``mem-wild``,
  ``mem-misaligned``, ``store-to-text``],
* code no edge reaches [``unreachable-code``].
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import STACK_TOP, TOHOST_ADDR
from ..isa.classify import (
    CALLEE_SAVED_F,
    CALLEE_SAVED_X,
    SP,
    DecodedInst,
    is_vector_config,
)
from ..isa.instructions import Instruction, InstrClass
from .cfg import CFG, KIND_RET, BasicBlock, Function
from .dataflow import (
    ALL_BITS,
    F_BASE,
    V_BASE,
    VCONFIG_BIT,
    bit_name,
    def_mask,
    live_at,
    liveness,
    must_init,
    walk_init,
)

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"

#: forward-progress window the architecture guarantees for LR/SC loops
_LRSC_WINDOW = 16

#: vtype lattice sentinels (values >= 0 are concrete vtype immediates)
_VTYPE_TOP = -2
_VTYPE_UNKNOWN = -1


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic with source provenance."""

    check: str
    severity: str
    function: str
    addr: int
    line: int
    message: str
    #: short detail (usually a register name) that disambiguates the key
    extra: str = ""
    source: str = ""

    @property
    def key(self) -> str:
        """Baseline identity: stable across address-only code motion."""
        return f"{self.check}:{self.function}:{self.line}:{self.extra}"

    def render(self) -> str:
        loc = f"line {self.line}" if self.line else f"{self.addr:#x}"
        text = (f"{self.severity}: [{self.check}] {self.function} {loc}: "
                f"{self.message}")
        if self.source:
            text += f"  |  {self.source}"
        return text


def run_checks(cfg: CFG) -> list[Finding]:
    """Run every checker; findings come back in address order."""
    findings: list[Finding] = []
    findings += check_init(cfg)
    findings += check_callee_saved(cfg)
    findings += check_stack(cfg)
    findings += check_vector_reconfig(cfg)
    findings += check_lrsc(cfg)
    findings += check_memory(cfg)
    findings += check_unreachable(cfg)
    findings.sort(key=lambda f: (f.addr, f.check, f.extra))
    return findings


def _finding(cfg: CFG, check: str, severity: str, di: DecodedInst,
             message: str, extra: str = "") -> Finding:
    func = cfg.function_of(cfg.block_at(di.addr).start
                           if cfg.block_at(di.addr) else di.addr)
    return Finding(
        check=check, severity=severity,
        function=func.name if func else "?",
        addr=di.addr, line=di.line, message=message, extra=extra,
        source=cfg.program.source_line(di.addr))


# -- initialization + vector configuration ----------------------------------

def check_init(cfg: CFG) -> list[Finding]:
    """Flag reads of registers no path has definitely written, and
    vector instructions executing with no ``vsetvl`` on some path."""
    findings: list[Finding] = []
    state_in = must_init(cfg)
    for start in cfg.order:
        state = state_in[start]
        if state == ALL_BITS:  # unreachable: vacuous
            continue
        for di, missing, _before in walk_init(cfg.blocks[start], state):
            bit = 0
            while missing >> bit:
                if missing >> bit & 1:
                    name = bit_name(bit)
                    if bit == VCONFIG_BIT:
                        findings.append(_finding(
                            cfg, "vector-no-vsetvl", SEV_ERROR, di,
                            f"vector instruction "
                            f"'{di.inst.spec.mnemonic}' with no "
                            f"dominating vsetvl/vsetvli"))
                    else:
                        findings.append(_finding(
                            cfg, "uninit-read", SEV_WARNING, di,
                            f"read of maybe-uninitialized register "
                            f"{name}", extra=name))
                bit += 1
    return findings


# -- ABI: callee-saved preservation -----------------------------------------

def check_callee_saved(cfg: CFG) -> list[Finding]:
    """Callee-saved registers written by a function must be spilled to
    the stack and reloaded before return."""
    findings: list[Finding] = []
    for entry, func in cfg.functions.items():
        if entry == cfg.entry:
            continue  # the entry routine has no caller to preserve for
        clobbers: dict[int, DecodedInst] = {}
        saved: set[int] = set()
        restored: set[int] = set()
        for start in func.blocks:
            for di in cfg.blocks[start].insts:
                inst = di.inst
                spec = inst.spec
                if (spec.iclass is InstrClass.STORE and inst.rs1 == SP
                        and spec.rs2_file in ("x", "f")):
                    bit = inst.rs2 if spec.rs2_file == "x" \
                        else F_BASE + inst.rs2
                    if _is_callee_saved(bit):
                        saved.add(bit)
                        continue
                if (spec.iclass is InstrClass.LOAD and inst.rs1 == SP
                        and spec.rd_file in ("x", "f")):
                    bit = inst.rd if spec.rd_file == "x" \
                        else F_BASE + inst.rd
                    if _is_callee_saved(bit):
                        restored.add(bit)
                        continue
                for reg in inst.dests:
                    if reg.file == "x" and reg.index in CALLEE_SAVED_X:
                        clobbers.setdefault(reg.index, di)
                    elif reg.file == "f" and reg.index in CALLEE_SAVED_F:
                        clobbers.setdefault(F_BASE + reg.index, di)
        for bit, di in sorted(clobbers.items()):
            if bit in saved and bit in restored:
                continue
            name = bit_name(bit)
            findings.append(_finding(
                cfg, "callee-clobber", SEV_WARNING, di,
                f"callee-saved register {name} clobbered without "
                f"save/restore in '{func.name}'", extra=name))
    return findings


def _is_callee_saved(bit: int) -> bool:
    if bit < F_BASE:
        return bit in CALLEE_SAVED_X
    return (bit - F_BASE) in CALLEE_SAVED_F


# -- ABI: stack-pointer balance ---------------------------------------------

def check_stack(cfg: CFG) -> list[Finding]:
    """Track ``addi sp, sp, imm`` deltas through each function; at
    every return the net adjustment must be zero."""
    findings: list[Finding] = []
    for func in cfg.functions.values():
        members = set(func.blocks)
        delta_in: dict[int, int | None] = {}
        delta_in[func.entry] = 0
        worklist = [func.entry]
        flagged_untracked: set[int] = set()
        while worklist:
            start = worklist.pop()
            delta = delta_in[start]
            block = cfg.blocks[start]
            for di in block.insts:
                inst = di.inst
                if not any(r.file == "x" and r.index == SP
                           for r in inst.dests):
                    continue
                if (inst.spec.mnemonic in ("addi", "addiw")
                        and inst.rs1 == SP and delta is not None):
                    delta += inst.imm
                else:
                    if di.addr not in flagged_untracked:
                        flagged_untracked.add(di.addr)
                        findings.append(_finding(
                            cfg, "sp-untracked", SEV_INFO, di,
                            f"stack pointer written by "
                            f"'{inst.spec.mnemonic}'; frame tracking "
                            f"lost"))
                    delta = None
            if block.kind == KIND_RET and delta is not None and delta != 0:
                findings.append(_finding(
                    cfg, "stack-imbalance", SEV_ERROR, block.terminator,
                    f"return from '{func.name}' with unbalanced stack "
                    f"pointer ({delta:+#x})", extra=f"{delta:+#x}"))
            for succ in block.succs:
                if succ not in members:
                    continue
                if succ not in delta_in:
                    delta_in[succ] = delta
                    worklist.append(succ)
                elif delta_in[succ] != delta:
                    if delta_in[succ] is not None:
                        delta_in[succ] = None
                        worklist.append(succ)
    return findings


# -- vector reconfiguration hazards -----------------------------------------

def _static_vtype(inst: Instruction) -> int:
    """The vtype a config instruction establishes, if static."""
    if inst.spec.mnemonic == "vsetvli":
        return inst.imm
    return _VTYPE_UNKNOWN


def _meet_vtype(a: int, b: int) -> int:
    if a == _VTYPE_TOP:
        return b
    if b == _VTYPE_TOP or a == b:
        return a
    return _VTYPE_UNKNOWN


def check_vector_reconfig(cfg: CFG) -> list[Finding]:
    """Flag ``vsetvl`` reconfigurations while vector registers defined
    under a *different* configuration are still live.

    Reading such a register after the reconfiguration is
    implementation-defined under RVV 0.7.1 (the paper's vector unit
    reshuffles element layout with LMUL) — legitimate widening idioms
    do this on purpose, which is what the lint baseline is for.
    """
    findings: list[Finding] = []
    for func in cfg.functions.values():
        touches_vector = any(
            di.inst.spec.iclass is InstrClass.VSET
            for start in func.blocks
            for di in cfg.blocks[start].insts)
        if not touches_vector:
            continue
        members = set(func.blocks)
        _live_in, live_out = liveness(cfg, func)

        # Forward pass: (current vtype, per-vreg definition vtype).
        state_in: dict[int, tuple[int, tuple[int, ...]]] = {
            func.entry: (_VTYPE_TOP, (_VTYPE_TOP,) * 32)}
        worklist = [func.entry]
        visited_states: dict[int, tuple[int, tuple[int, ...]]] = {}
        while worklist:
            start = worklist.pop()
            state = state_in[start]
            if visited_states.get(start) == state:
                continue
            visited_states[start] = state
            cur, defs = state
            defs_list = list(defs)
            for di in cfg.blocks[start].insts:
                inst = di.inst
                if is_vector_config(inst):
                    cur = _static_vtype(inst)
                for reg in inst.dests:
                    if reg.file == "v":
                        defs_list[reg.index] = cur
            out = (cur, tuple(defs_list))
            for succ in cfg.blocks[start].succs:
                if succ not in members:
                    continue
                if succ not in state_in:
                    state_in[succ] = out
                else:
                    old_cur, old_defs = state_in[succ]
                    state_in[succ] = (
                        _meet_vtype(old_cur, out[0]),
                        tuple(_meet_vtype(a, b)
                              for a, b in zip(old_defs, out[1])))
                if state_in[succ] != visited_states.get(succ):
                    worklist.append(succ)

        # Report pass: at each static reconfig, check live v-regs.
        for start in func.blocks:
            if start not in visited_states:
                continue
            cur, defs = visited_states[start]
            defs_list = list(defs)
            after = live_at(cfg.blocks[start], live_out[start])
            for di in cfg.blocks[start].insts:
                inst = di.inst
                if is_vector_config(inst):
                    new = _static_vtype(inst)
                    if new >= 0:
                        live = after[di.addr]
                        for v in range(32):
                            if (live >> (V_BASE + v) & 1
                                    and defs_list[v] >= 0
                                    and defs_list[v] != new):
                                findings.append(_finding(
                                    cfg, "vreconfig-live", SEV_INFO, di,
                                    f"vtype reconfiguration while v{v} "
                                    f"(defined under vtype "
                                    f"{defs_list[v]:#x}) is live",
                                    extra=f"v{v}"))
                    cur = new
                for reg in inst.dests:
                    if reg.file == "v":
                        defs_list[reg.index] = cur
    return findings


# -- LR/SC pairing and forward progress -------------------------------------

def check_lrsc(cfg: CFG) -> list[Finding]:
    """Enforce the architecture's LR/SC forward-progress envelope: a
    reservation must reach its SC within a short straight-line window
    free of other memory accesses and control transfers."""
    findings: list[Finding] = []
    insts: list[DecodedInst] = []
    for start in cfg.order:
        insts.extend(cfg.blocks[start].insts)
    matched_sc: set[int] = set()
    for i, di in enumerate(insts):
        mn = di.inst.spec.mnemonic
        if not mn.startswith("lr."):
            continue
        width = mn[3:]
        paired = False
        for j in range(i + 1, min(i + 1 + _LRSC_WINDOW, len(insts))):
            other = insts[j]
            omn = other.inst.spec.mnemonic
            if omn == f"sc.{width}":
                paired = True
                matched_sc.add(other.addr)
                break
            if omn.startswith(("sc.", "lr.")):
                break
            iclass = other.inst.spec.iclass
            if iclass in (InstrClass.LOAD, InstrClass.STORE,
                          InstrClass.AMO, InstrClass.VLOAD,
                          InstrClass.VSTORE):
                findings.append(_finding(
                    cfg, "lrsc-progress", SEV_WARNING, other,
                    f"memory access '{omn}' inside an LR/SC "
                    f"reservation window breaks forward-progress "
                    f"guarantees", extra=omn))
            elif iclass in (InstrClass.BRANCH, InstrClass.JUMP,
                            InstrClass.SYSTEM, InstrClass.CSR):
                findings.append(_finding(
                    cfg, "lrsc-progress", SEV_WARNING, other,
                    f"control transfer '{omn}' inside an LR/SC "
                    f"reservation window may lose the reservation",
                    extra=omn))
        if not paired:
            findings.append(_finding(
                cfg, "lrsc-unpaired", SEV_ERROR, di,
                f"'{mn}' with no matching sc.{width} within "
                f"{_LRSC_WINDOW} instructions"))
    for di in insts:
        mn = di.inst.spec.mnemonic
        if mn.startswith("sc.") and di.addr not in matched_sc:
            findings.append(_finding(
                cfg, "lrsc-orphan-sc", SEV_ERROR, di,
                f"'{mn}' with no preceding lr.{mn[3:]} reservation"))
    return findings


# -- static effective addresses ---------------------------------------------

def check_memory(cfg: CFG) -> list[Finding]:
    """Evaluate block-local constant address computations and flag
    accesses that are misaligned or fall outside every mapped region."""
    findings: list[Finding] = []
    program = cfg.program
    text_lo, text_hi = program.text_base, program.text_end
    for start in cfg.order:
        known: dict[int, int] = {0: 0}
        for di in cfg.blocks[start].insts:
            inst = di.inst
            spec = inst.spec
            ea: int | None = None
            if spec.mem_bytes and spec.rs1_file == "x" \
                    and spec.iclass in (InstrClass.LOAD, InstrClass.STORE):
                base = known.get(inst.rs1)
                if base is not None:
                    ea = (base + inst.imm) & ((1 << 64) - 1)
            if ea is not None:
                width = spec.mem_bytes
                is_store = spec.iclass is InstrClass.STORE
                if ea % width:
                    findings.append(_finding(
                        cfg, "mem-misaligned", SEV_WARNING, di,
                        f"{width}-byte access to statically misaligned "
                        f"address {ea:#x}", extra=f"{ea:#x}"))
                if not _mapped(program, ea, width):
                    findings.append(_finding(
                        cfg, "mem-wild", SEV_ERROR, di,
                        f"access to unmapped address {ea:#x}",
                        extra=f"{ea:#x}"))
                elif is_store and text_lo <= ea < text_hi:
                    findings.append(_finding(
                        cfg, "store-to-text", SEV_WARNING, di,
                        f"store to text-section address {ea:#x}",
                        extra=f"{ea:#x}"))
            _constprop_step(known, inst, di.addr)
    return findings


def _mapped(program, ea: int, width: int) -> bool:
    end = ea + width
    if program.text_base <= ea and end <= program.text_end:
        return True
    # data, bss, heap and the descending stack share one region.
    if program.data_base <= ea and end <= STACK_TOP:
        return True
    if TOHOST_ADDR <= ea and end <= TOHOST_ADDR + 8:
        return True
    return False


def _constprop_step(known: dict[int, int], inst: Instruction,
                    pc: int) -> None:
    """Block-local constant propagation over the li/la idioms."""
    spec = inst.spec
    mn = spec.mnemonic
    mask64 = (1 << 64) - 1
    value: int | None = None
    if mn == "lui":
        value = inst.imm & mask64
    elif mn == "auipc":
        value = (pc + inst.imm) & mask64
    elif mn in ("addi", "addiw"):
        base = known.get(inst.rs1)
        if base is not None:
            value = (base + inst.imm) & mask64
            if mn == "addiw":
                value = _sext32(value)
    elif mn in ("add", "addw"):
        a, b = known.get(inst.rs1), known.get(inst.rs2)
        if a is not None and b is not None:
            value = (a + b) & mask64
            if mn == "addw":
                value = _sext32(value)
    elif mn == "slli":
        base = known.get(inst.rs1)
        if base is not None:
            value = (base << inst.imm) & mask64
    # Any write invalidates stale knowledge; x0 stays pinned to zero.
    for reg in inst.dests:
        if reg.file == "x":
            known.pop(reg.index, None)
    if value is not None and spec.rd_file == "x" and inst.rd != 0:
        known[inst.rd] = value
    known[0] = 0


def _sext32(value: int) -> int:
    value &= (1 << 64) - 1
    low = value & 0xFFFF_FFFF
    if low & 0x8000_0000:
        return (low | ~0xFFFF_FFFF) & ((1 << 64) - 1)
    return low


# -- unreachable code -------------------------------------------------------

def check_unreachable(cfg: CFG) -> list[Finding]:
    findings: list[Finding] = []
    for start in cfg.unreachable:
        block = cfg.blocks[start]
        di = block.insts[0]
        findings.append(_finding(
            cfg, "unreachable-code", SEV_INFO, di,
            f"block at {start:#x} ({len(block.insts)} instructions) is "
            f"unreachable from the entry point"))
    return findings
