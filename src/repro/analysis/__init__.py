"""Static analysis for guest RISC-V programs.

Recovers a whole-program CFG from the decoded text section, runs
classic dataflow passes (definite initialization, liveness, reaching
definitions) and a checker suite on top: maybe-uninitialized register
reads, ABI violations, vector-configuration hazards, LR/SC pairing and
statically-wild memory addressing.  ``python -m repro lint`` is the
command-line entry point; :mod:`repro.analysis.sanitize` feeds the
static facts back into the emulator at run time.
"""

from .cfg import CFG, BasicBlock, Function, build_cfg  # noqa: F401
from .checks import Finding, run_checks  # noqa: F401
from .lint import (  # noqa: F401
    LintReport,
    compare_to_baseline,
    lint_program,
    lint_source,
    lint_workloads,
    load_baseline,
    save_baseline,
)
from .sanitize import Sanitizer, SanitizerViolation, Violation  # noqa: F401
