"""Lint driver: run the checker suite and diff against a baseline.

The committed baseline (``lint_baseline.json`` next to this module)
records the accepted findings per workload as stable keys.  CI runs
``python -m repro lint --workloads`` and fails when a finding appears
that the baseline does not carry — the workflow for an intentional
finding (e.g. the widening-MAC vector reconfiguration idiom) is to
re-run with ``--update-baseline`` and commit the diff.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..asm import assemble
from ..asm.program import Program
from .cfg import CFG, build_cfg
from .checks import SEV_ERROR, SEV_INFO, SEV_WARNING, Finding, run_checks

#: baseline shipped with the analyzer package
DEFAULT_BASELINE = Path(__file__).with_name("lint_baseline.json")

_SEV_ORDER = {SEV_ERROR: 0, SEV_WARNING: 1, SEV_INFO: 2}


@dataclass
class LintReport:
    """Lint results for one program."""

    name: str
    findings: list[Finding] = field(default_factory=list)
    blocks: int = 0
    functions: int = 0
    instructions: int = 0

    @property
    def keys(self) -> list[str]:
        return sorted({f.key for f in self.findings})

    def worst_severity(self) -> str | None:
        if not self.findings:
            return None
        return min((f.severity for f in self.findings),
                   key=lambda s: _SEV_ORDER.get(s, 3))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "blocks": self.blocks,
            "functions": self.functions,
            "instructions": self.instructions,
            "findings": [finding_dict(f) for f in self.findings],
        }


def finding_dict(finding: Finding) -> dict:
    return {
        "check": finding.check,
        "severity": finding.severity,
        "function": finding.function,
        "addr": finding.addr,
        "line": finding.line,
        "message": finding.message,
        "extra": finding.extra,
        "source": finding.source,
        "key": finding.key,
    }


def lint_program(program: Program, name: str = "program",
                 cfg: CFG | None = None) -> LintReport:
    """Run every checker over an assembled program."""
    if cfg is None:
        cfg = build_cfg(program)
    report = LintReport(
        name=name,
        findings=run_checks(cfg),
        blocks=len(cfg.blocks),
        functions=len(cfg.functions),
        instructions=sum(len(b.insts) for b in cfg.blocks.values()),
    )
    return report


def lint_source(source: str, name: str = "program",
                compress: bool = True) -> LintReport:
    """Assemble *source* and lint the result."""
    return lint_program(assemble(source, compress=compress), name=name)


def lint_workloads() -> list[LintReport]:
    """Lint every bundled workload, in registry order."""
    from ..workloads import all_workloads

    reports = []
    for workload in all_workloads():
        reports.append(lint_program(workload.program(),
                                    name=workload.name))
    return reports


# -- baseline workflow ------------------------------------------------------

def load_baseline(path: Path | str = DEFAULT_BASELINE) -> dict[str, list[str]]:
    """Accepted finding keys per program name; {} when absent."""
    path = Path(path)
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    if payload.get("version") != 1:
        raise ValueError(f"unsupported lint baseline version in {path}")
    return {name: list(keys)
            for name, keys in payload.get("programs", {}).items()}


def save_baseline(reports: list[LintReport],
                  path: Path | str = DEFAULT_BASELINE) -> None:
    payload = {
        "version": 1,
        "programs": {r.name: r.keys for r in reports if r.keys},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")


def compare_to_baseline(
    reports: list[LintReport],
    baseline: dict[str, list[str]],
) -> tuple[list[tuple[str, Finding]], list[tuple[str, str]]]:
    """Diff reports against the accepted baseline.

    Returns ``(new, stale)``: findings the baseline does not cover
    (these fail CI) and baseline keys no longer produced (safe to
    prune with ``--update-baseline``).
    """
    new: list[tuple[str, Finding]] = []
    stale: list[tuple[str, str]] = []
    seen_programs = set()
    for report in reports:
        seen_programs.add(report.name)
        accepted = set(baseline.get(report.name, ()))
        produced = set()
        for finding in report.findings:
            produced.add(finding.key)
            if finding.key not in accepted:
                new.append((report.name, finding))
        for key in sorted(accepted - produced):
            stale.append((report.name, key))
    for name in sorted(set(baseline) - seen_programs):
        for key in baseline[name]:
            stale.append((name, key))
    return new, stale
