"""Classic dataflow passes over the recovered CFG.

All register state is packed into one Python int per program point:
bits 0-31 are the integer registers, 32-63 the FP registers, 64-95 the
vector registers, and bit 96 records "vector unit configured by
``vsetvl``".  Must-analyses meet with AND (top is all-ones), may-
analyses with OR — big-int bitwise ops keep the worklist iterations
cheap even for whole-program runs.

Three passes live here:

* :func:`must_init` — interprocedural definite-initialization over the
  supergraph (call and return edges included),
* :func:`liveness` — per-function backward live-register analysis,
* :func:`reaching_definitions` — per-function reaching defs with
  def-use chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.classify import needs_vector_config
from ..isa.instructions import Instruction, InstrClass
from ..isa.registers import Reg, fpr_name, gpr_name
from .cfg import CFG, BasicBlock, Function

#: bit layout of a register-state word
X_BASE = 0
F_BASE = 32
V_BASE = 64
VCONFIG_BIT = 96
STATE_BITS = 97
ALL_BITS = (1 << STATE_BITS) - 1

#: registers the emulator defines before the first instruction:
#: x0 (hardwired), sp and gp (set by reset to the memory-layout values).
ENTRY_MASK = (1 << 0) | (1 << 2) | (1 << 3)

_FILE_BASE = {"x": X_BASE, "f": F_BASE, "v": V_BASE}


def reg_bit(reg: Reg) -> int:
    """State-word bit index of an architectural register."""
    return _FILE_BASE[reg.file] + reg.index


def bit_name(bit: int) -> str:
    """Human-readable register name for a state-word bit."""
    if bit == VCONFIG_BIT:
        return "vconfig"
    if bit >= V_BASE:
        return f"v{bit - V_BASE}"
    if bit >= F_BASE:
        return fpr_name(bit - F_BASE)
    return gpr_name(bit)


def use_mask(inst: Instruction) -> int:
    """Bits *inst* reads, including the implicit vector-config state."""
    mask = 0
    for reg in inst.srcs:
        mask |= 1 << reg_bit(reg)
    if needs_vector_config(inst):
        mask |= 1 << VCONFIG_BIT
    return mask


def def_mask(inst: Instruction) -> int:
    """Bits *inst* writes.

    ``vsetvl`` establishes the vector configuration; ``ecall`` returns
    its result in a0 (the syscall shim always writes it).
    """
    mask = 0
    for reg in inst.dests:
        mask |= 1 << reg_bit(reg)
    if inst.spec.iclass is InstrClass.VSET:
        mask |= 1 << VCONFIG_BIT
    if inst.spec.mnemonic == "ecall":
        mask |= 1 << 10  # a0
    return mask


@dataclass(frozen=True)
class BlockFacts:
    """Straight-line gen/kill summary of one basic block."""

    #: bits read before any write inside the block
    use_before_def: int
    #: bits written anywhere in the block
    defs: int


def block_facts(block: BasicBlock) -> BlockFacts:
    facts_use = 0
    facts_def = 0
    for di in block.insts:
        facts_use |= use_mask(di.inst) & ~facts_def
        facts_def |= def_mask(di.inst)
    return BlockFacts(use_before_def=facts_use, defs=facts_def)


# -- definite initialization ------------------------------------------------

def must_init(cfg: CFG, entry_mask: int = ENTRY_MASK) -> dict[int, int]:
    """Definitely-initialized register bits at each block entry.

    Forward must-analysis over the interprocedural supergraph: call
    blocks flow into their callee, return blocks flow back to every
    call site's fall-through.  Blocks never reached keep the top value
    ``ALL_BITS`` (vacuously all-initialized).
    """
    state_in: dict[int, int] = dict.fromkeys(cfg.order, ALL_BITS)
    defs = {start: block_facts(cfg.blocks[start]).defs
            for start in cfg.order}
    if cfg.entry not in cfg.blocks:
        return state_in
    state_in[cfg.entry] = entry_mask
    worklist = [cfg.entry]
    while worklist:
        start = worklist.pop()
        block = cfg.blocks[start]
        out = state_in[start] | defs[start]
        for succ in cfg.super_succs(block):
            if succ not in state_in:
                continue
            new = state_in[succ] & out
            if new != state_in[succ]:
                state_in[succ] = new
                worklist.append(succ)
    return state_in


def walk_init(block: BasicBlock, state: int):
    """Yield ``(decoded, missing_mask, state_before)`` for each
    instruction of *block*, threading the init state through."""
    for di in block.insts:
        missing = use_mask(di.inst) & ~state
        yield di, missing, state
        state |= def_mask(di.inst)


# -- liveness ---------------------------------------------------------------

def liveness(cfg: CFG, func: Function) -> tuple[dict[int, int],
                                                dict[int, int]]:
    """Backward live-register analysis over one function.

    Returns ``(live_in, live_out)`` per block start.  Intra-procedural:
    call blocks keep their fall-through edge, callee effects are not
    modelled (conservative for the vector checks this feeds).
    """
    members = set(func.blocks)
    facts = {start: block_facts(cfg.blocks[start]) for start in members}
    live_in = dict.fromkeys(members, 0)
    live_out = dict.fromkeys(members, 0)
    changed = True
    while changed:
        changed = False
        for start in reversed(func.blocks):
            block = cfg.blocks[start]
            out = 0
            for succ in block.succs:
                if succ in members:
                    out |= live_in[succ]
            fact = facts[start]
            new_in = fact.use_before_def | (out & ~fact.defs)
            if out != live_out[start] or new_in != live_in[start]:
                live_out[start] = out
                live_in[start] = new_in
                changed = True
    return live_in, live_out


def live_at(block: BasicBlock, live_out: int) -> dict[int, int]:
    """Live-bit mask *after* each instruction address in *block*."""
    after: dict[int, int] = {}
    state = live_out
    for di in reversed(block.insts):
        after[di.addr] = state
        state = use_mask(di.inst) | (state & ~def_mask(di.inst))
    return after


# -- reaching definitions ---------------------------------------------------

@dataclass
class ReachingDefs:
    """Reaching definitions and def-use chains for one function.

    Definition sites are numbered densely; per-block in/out sets are
    bitmasks over site ids.
    """

    #: site id -> (instruction address, state-word bit defined)
    sites: list[tuple[int, int]] = field(default_factory=list)
    #: block start -> mask of sites reaching block entry
    reach_in: dict[int, int] = field(default_factory=dict)
    #: use address -> {state bit -> list of defining site addresses}
    use_defs: dict[int, dict[int, list[int]]] = field(default_factory=dict)
    #: definition address -> list of use addresses it reaches
    def_uses: dict[int, list[int]] = field(default_factory=dict)


def reaching_definitions(cfg: CFG, func: Function) -> ReachingDefs:
    result = ReachingDefs()
    members = set(func.blocks)

    sites: list[tuple[int, int]] = []
    sites_by_bit: dict[int, list[int]] = {}
    site_at: dict[int, list[int]] = {}
    for start in func.blocks:
        for di in cfg.blocks[start].insts:
            mask = def_mask(di.inst)
            ids: list[int] = []
            bit = 0
            while mask >> bit:
                if mask >> bit & 1:
                    site_id = len(sites)
                    sites.append((di.addr, bit))
                    sites_by_bit.setdefault(bit, []).append(site_id)
                    ids.append(site_id)
                bit += 1
            if ids:
                site_at[di.addr] = ids
    result.sites = sites

    kill_mask = {bit: sum(1 << s for s in ids)
                 for bit, ids in sites_by_bit.items()}

    gen: dict[int, int] = {}
    kill: dict[int, int] = {}
    for start in func.blocks:
        g = 0
        k = 0
        for di in cfg.blocks[start].insts:
            for site_id in site_at.get(di.addr, ()):
                _, bit = sites[site_id]
                k |= kill_mask[bit]
                g = (g & ~kill_mask[bit]) | (1 << site_id)
        gen[start] = g
        kill[start] = k

    reach_in = dict.fromkeys(members, 0)
    changed = True
    while changed:
        changed = False
        for start in func.blocks:
            block = cfg.blocks[start]
            in_mask = 0
            for pred in block.preds:
                if pred in members:
                    in_mask |= (reach_in[pred] & ~kill[pred]) | gen[pred]
            if in_mask != reach_in[start]:
                reach_in[start] = in_mask
                changed = True
    result.reach_in = reach_in

    for start in func.blocks:
        state = reach_in[start]
        for di in cfg.blocks[start].insts:
            uses = use_mask(di.inst)
            if uses:
                per_bit: dict[int, list[int]] = {}
                for site_id, (addr, bit) in enumerate(sites):
                    if state >> site_id & 1 and uses >> bit & 1:
                        per_bit.setdefault(bit, []).append(addr)
                        result.def_uses.setdefault(addr, []).append(di.addr)
                if per_bit:
                    result.use_defs[di.addr] = per_bit
            for site_id in site_at.get(di.addr, ()):
                _, bit = sites[site_id]
                state = (state & ~kill_mask[bit]) | (1 << site_id)
    return result
