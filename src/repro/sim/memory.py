"""Sparse flat physical memory for the functional model.

Backed by 4 KiB pages allocated on demand.  Unaligned accesses are
legal (the XT-910 LSU supports unaligned data access, section II), so
reads and writes transparently cross page boundaries.
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Byte-addressable sparse memory with optional MMIO windows."""

    def __init__(self):
        self._pages: dict[int, bytearray] = {}
        self._mmio: list[tuple[int, int, object]] = []  # (base, size, device)

    def register_mmio(self, base: int, size: int, device) -> None:
        """Map *device* at [base, base+size).

        The device implements ``load(offset, size) -> int`` and
        ``store(offset, value, size)``; accesses must not straddle the
        window boundary.
        """
        self._mmio.append((base, size, device))

    def _mmio_at(self, addr: int):
        for base, size, device in self._mmio:
            if base <= addr < base + size:
                return base, device
        return None

    def _page(self, ppn: int) -> bytearray:
        page = self._pages.get(ppn)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[ppn] = page
        return page

    def load_bytes(self, addr: int, size: int) -> bytes:
        if self._mmio:
            hit = self._mmio_at(addr)
            if hit is not None:
                base, device = hit
                value = device.load(addr - base, size)
                return (value & ((1 << (size * 8)) - 1)).to_bytes(
                    size, "little")
        return self._load_bytes_ram(addr, size)

    def _load_bytes_ram(self, addr: int, size: int) -> bytes:
        ppn, offset = addr >> PAGE_SHIFT, addr & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page = self._pages.get(ppn)
            if page is None:
                return bytes(size)
            return bytes(page[offset:offset + size])
        out = bytearray()
        while size:
            chunk = min(size, PAGE_SIZE - offset)
            page = self._pages.get(ppn)
            out += (page[offset:offset + chunk] if page is not None
                    else bytes(chunk))
            size -= chunk
            ppn += 1
            offset = 0
        return bytes(out)

    def store_bytes(self, addr: int, data: bytes) -> None:
        if self._mmio:
            hit = self._mmio_at(addr)
            if hit is not None:
                base, device = hit
                device.store(addr - base,
                             int.from_bytes(data, "little"), len(data))
                return
        ppn, offset = addr >> PAGE_SHIFT, addr & PAGE_MASK
        size = len(data)
        if offset + size <= PAGE_SIZE:
            self._page(ppn)[offset:offset + size] = data
            return
        pos = 0
        while pos < size:
            chunk = min(size - pos, PAGE_SIZE - offset)
            self._page(ppn)[offset:offset + chunk] = data[pos:pos + chunk]
            pos += chunk
            ppn += 1
            offset = 0

    def load_int(self, addr: int, size: int, signed: bool = False) -> int:
        # Fast path: RAM-only, within one page (the overwhelmingly
        # common shape) — skips the load_bytes/_load_bytes_ram frames.
        offset = addr & PAGE_MASK
        if not self._mmio and offset + size <= PAGE_SIZE:
            page = self._pages.get(addr >> PAGE_SHIFT)
            value = 0 if page is None else int.from_bytes(
                page[offset:offset + size], "little")
        else:
            value = int.from_bytes(self.load_bytes(addr, size), "little")
        if signed and value >= 1 << (size * 8 - 1):
            value -= 1 << (size * 8)
        return value

    def store_int(self, addr: int, value: int, size: int) -> None:
        data = (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
        offset = addr & PAGE_MASK
        if not self._mmio and offset + size <= PAGE_SIZE:
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[addr >> PAGE_SHIFT] = page
            page[offset:offset + size] = data
            return
        self.store_bytes(addr, data)

    def load_program(self, program) -> None:
        """Copy a :class:`repro.asm.Program`'s segments into memory."""
        self.store_bytes(program.text_base, program.text)
        if program.data:
            self.store_bytes(program.data_base, program.data)

    @property
    def has_mmio(self) -> bool:
        """True when any MMIO window is mapped (vector batch paths
        fall back to per-element accesses in that case)."""
        return bool(self._mmio)

    def ram_view(self, addr: int, size: int,
                 allocate: bool = False) -> memoryview | None:
        """Writable view of [addr, addr+size) when it sits inside ONE
        RAM page; None otherwise (MMIO mapped, page-crossing span, or
        — unless *allocate* — a page that was never touched).

        With ``allocate=True`` the backing page is materialised, which
        must only be done on store paths (loads from untouched memory
        read zeros without allocating).
        """
        if self._mmio or size <= 0:
            return None
        offset = addr & PAGE_MASK
        if offset + size > PAGE_SIZE:
            return None
        ppn = addr >> PAGE_SHIFT
        page = self._page(ppn) if allocate else self._pages.get(ppn)
        if page is None:
            return None
        return memoryview(page)[offset:offset + size]

    @property
    def allocated_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE
