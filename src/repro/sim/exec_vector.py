"""Functional semantics for the 0.7.1-flavoured vector extension.

Vector state lives in :class:`~repro.sim.state.MachineState`: 32
VLEN-bit registers, ``vl``/``vtype`` set by vsetvl(i).  Operations are
tail-undisturbed and honour the v0 mask when the instruction's ``vm``
bit (``inst.aux``) is 0, matching the paper's description of masked
dual-issue vector execution (section VII).
"""

from __future__ import annotations

from typing import Callable

from ..isa.instructions import Instruction
from .state import (
    MachineState,
    f16_bits_to_float,
    f32_bits_to_float,
    f64_bits_to_float,
    float_to_f16_bits,
    float_to_f32_bits,
    float_to_f64_bits,
    to_signed,
)

VectorHandler = Callable[[MachineState, Instruction], None]
VECTOR_EXEC: dict[str, VectorHandler] = {}

_FP_UNPACK = {16: f16_bits_to_float, 32: f32_bits_to_float,
              64: f64_bits_to_float}
_FP_PACK = {16: float_to_f16_bits, 32: float_to_f32_bits,
            64: float_to_f64_bits}


def _vop(*names: str):
    def register(fn: VectorHandler) -> VectorHandler:
        for name in names:
            VECTOR_EXEC[name] = fn
        return fn
    return register


# -- element access ------------------------------------------------------------

def _read_group(s: MachineState, start: int, sew: int, count: int,
                signed: bool = False, lmul: int | None = None) -> list[int]:
    lmul = lmul if lmul is not None else s.lmul
    width = sew // 8
    data = bytes(s.vregs[start]) if lmul == 1 else bytes(
        b for r in range(lmul) for b in s.vregs[(start + r) % 32])
    out = []
    for idx in range(count):
        value = int.from_bytes(data[idx * width:(idx + 1) * width], "little")
        if signed and value >= 1 << (sew - 1):
            value -= 1 << sew
        out.append(value)
    return out


def _write_group(s: MachineState, start: int, sew: int,
                 values: dict[int, int], lmul: int | None = None) -> None:
    """Write {element-index: value}; untouched elements keep old bytes."""
    lmul = lmul if lmul is not None else s.lmul
    width = sew // 8
    per_reg = s.vlenb // width
    for idx, value in values.items():
        reg = s.vregs[(start + idx // per_reg) % 32]
        off = (idx % per_reg) * width
        reg[off:off + width] = (value & ((1 << sew) - 1)).to_bytes(
            width, "little")


def _active(s: MachineState, inst: Instruction) -> list[int]:
    """Element indices this op touches (vl and mask applied)."""
    if inst.aux:  # unmasked
        return list(range(s.vl))
    return [e for e in range(s.vl) if s.mask_bit(e)]


def _operand_rs1(s: MachineState, inst: Instruction, sew: int,
                 count: int, signed: bool) -> list[int]:
    """The vs1/rs1/imm operand broadcast appropriately."""
    spec = inst.spec
    if spec.rs1_file == "v":
        return _read_group(s, inst.rs1, sew, count, signed)
    if spec.rs1_file == "x":
        scalar = s.regs[inst.rs1] & ((1 << sew) - 1)
        if signed and scalar >= 1 << (sew - 1):
            scalar -= 1 << sew
        return [scalar] * count
    if spec.rs1_file == "f":
        return [s.fregs[inst.rs1]] * count  # raw bits; FP ops unpack
    value = inst.imm
    return [value] * count


# -- configuration ----------------------------------------------------------------

@_vop("vsetvli")
def _vsetvli(s, i):
    avl = s.regs[i.rs1] if i.rs1 else (s.vlen * 8)  # rs1=x0: VLMAX request
    s.write_x(i.rd, s.set_vtype(i.imm, avl))


@_vop("vsetvl")
def _vsetvl(s, i):
    avl = s.regs[i.rs1] if i.rs1 else (s.vlen * 8)
    s.write_x(i.rd, s.set_vtype(s.regs[i.rs2], avl))


# -- integer ALU -------------------------------------------------------------------

def _int_binop(fn, signed: bool = False):
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        active = _active(s, i)
        a = _read_group(s, i.rs2, sew, s.vl, signed)   # vs2
        b = _operand_rs1(s, i, sew, s.vl, signed)      # vs1/rs1/imm
        _write_group(s, i.rd, sew, {e: fn(a[e], b[e], sew) for e in active})
    return handler


VECTOR_EXEC.update({
    f"vadd.{sfx}": _int_binop(lambda x, y, w: x + y)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC.update({
    f"vsub.{sfx}": _int_binop(lambda x, y, w: x - y)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC.update({
    f"vrsub.{sfx}": _int_binop(lambda x, y, w: y - x)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC.update({
    f"vand.{sfx}": _int_binop(lambda x, y, w: x & y)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC.update({
    f"vor.{sfx}": _int_binop(lambda x, y, w: x | y)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC.update({
    f"vxor.{sfx}": _int_binop(lambda x, y, w: x ^ y)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC.update({
    f"vsll.{sfx}": _int_binop(lambda x, y, w: x << (y & (w - 1)))
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC.update({
    f"vsrl.{sfx}": _int_binop(lambda x, y, w: (x & ((1 << w) - 1)) >> (y & (w - 1)))
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC.update({
    f"vsra.{sfx}": _int_binop(lambda x, y, w: x >> (y & (w - 1)), signed=True)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC.update({
    f"vmin.{sfx}": _int_binop(min, signed=True) for sfx in ("vv", "vx")})
VECTOR_EXEC.update({
    f"vmax.{sfx}": _int_binop(max, signed=True) for sfx in ("vv", "vx")})
VECTOR_EXEC.update({
    f"vminu.{sfx}": _int_binop(min) for sfx in ("vv", "vx")})
VECTOR_EXEC.update({
    f"vmaxu.{sfx}": _int_binop(max) for sfx in ("vv", "vx")})
VECTOR_EXEC.update({
    f"vmul.{sfx}": _int_binop(lambda x, y, w: x * y, signed=True)
    for sfx in ("vv", "vx")})
VECTOR_EXEC.update({
    f"vmulh.{sfx}": _int_binop(lambda x, y, w: (x * y) >> w, signed=True)
    for sfx in ("vv", "vx")})
VECTOR_EXEC.update({
    f"vmulhu.{sfx}": _int_binop(lambda x, y, w: (x * y) >> w)
    for sfx in ("vv", "vx")})


def _int_div(fn, signed: bool):
    def div_op(x: int, y: int, w: int) -> int:
        if y == 0:
            return -1 if signed else (1 << w) - 1
        q = abs(x) // abs(y)
        if (x < 0) != (y < 0):
            q = -q
        return fn(x, y, q)
    return _int_binop(div_op, signed)


VECTOR_EXEC.update({f"vdiv.{s}": _int_div(lambda x, y, q: q, True)
                    for s in ("vv", "vx")})
VECTOR_EXEC.update({f"vdivu.{s}": _int_div(lambda x, y, q: q, False)
                    for s in ("vv", "vx")})
VECTOR_EXEC.update({f"vrem.{s}": _int_div(lambda x, y, q: x - q * y, True)
                    for s in ("vv", "vx")})
VECTOR_EXEC.update({f"vremu.{s}": _int_div(lambda x, y, q: x - q * y, False)
                    for s in ("vv", "vx")})


def _int_mac(sign: int, dest_is_addend: bool):
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        active = _active(s, i)
        a = _read_group(s, i.rs2, sew, s.vl, True)
        b = _operand_rs1(s, i, sew, s.vl, True)
        d = _read_group(s, i.rd, sew, s.vl, True)
        if dest_is_addend:  # vmacc: vd += vs1*vs2
            out = {e: d[e] + sign * a[e] * b[e] for e in active}
        else:               # vmadd: vd = vd*vs1 + vs2
            out = {e: d[e] * b[e] + sign * a[e] for e in active}
        _write_group(s, i.rd, sew, out)
    return handler


for _sfx in ("vv", "vx"):
    VECTOR_EXEC[f"vmacc.{_sfx}"] = _int_mac(1, True)
    VECTOR_EXEC[f"vnmsac.{_sfx}"] = _int_mac(-1, True)
    VECTOR_EXEC[f"vmadd.{_sfx}"] = _int_mac(1, False)


# Widening ops: destination EEW = 2*SEW, EMUL = 2*LMUL.
def _widening(fn, mac: bool = False, signed: bool = True):
    def handler(s: MachineState, i: Instruction) -> None:
        sew, wide = s.sew, s.sew * 2
        active = _active(s, i)
        a = _read_group(s, i.rs2, sew, s.vl, signed)
        b = _operand_rs1(s, i, sew, s.vl, signed)
        wide_lmul = min(s.lmul * 2, 8)
        if mac:
            d = _read_group(s, i.rd, wide, s.vl, signed, lmul=wide_lmul)
            out = {e: d[e] + fn(a[e], b[e]) for e in active}
        else:
            out = {e: fn(a[e], b[e]) for e in active}
        _write_group(s, i.rd, wide, out, lmul=wide_lmul)
    return handler


for _sfx in ("vv", "vx"):
    VECTOR_EXEC[f"vwmul.{_sfx}"] = _widening(lambda x, y: x * y)
    VECTOR_EXEC[f"vwmulu.{_sfx}"] = _widening(lambda x, y: x * y, signed=False)
    VECTOR_EXEC[f"vwmacc.{_sfx}"] = _widening(lambda x, y: x * y, mac=True)
    VECTOR_EXEC[f"vwmaccu.{_sfx}"] = _widening(lambda x, y: x * y, mac=True,
                                               signed=False)
    VECTOR_EXEC[f"vwadd.{_sfx}"] = _widening(lambda x, y: x + y)
    VECTOR_EXEC[f"vwaddu.{_sfx}"] = _widening(lambda x, y: x + y, signed=False)


# Compares write mask bits into vd.
def _compare(fn, signed: bool):
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        active = _active(s, i)
        a = _read_group(s, i.rs2, sew, s.vl, signed)
        b = _operand_rs1(s, i, sew, s.vl, signed)
        dest = s.vregs[i.rd]
        for e in active:
            if fn(a[e], b[e]):
                dest[e >> 3] |= 1 << (e & 7)
            else:
                dest[e >> 3] &= ~(1 << (e & 7))
    return handler


for _sfx in ("vv", "vx"):
    VECTOR_EXEC[f"vmseq.{_sfx}"] = _compare(lambda x, y: x == y, False)
    VECTOR_EXEC[f"vmsne.{_sfx}"] = _compare(lambda x, y: x != y, False)
    VECTOR_EXEC[f"vmsltu.{_sfx}"] = _compare(lambda x, y: x < y, False)
    VECTOR_EXEC[f"vmslt.{_sfx}"] = _compare(lambda x, y: x < y, True)
    VECTOR_EXEC[f"vmsleu.{_sfx}"] = _compare(lambda x, y: x <= y, False)
    VECTOR_EXEC[f"vmsle.{_sfx}"] = _compare(lambda x, y: x <= y, True)


# Merge and moves.
def _merge(s: MachineState, i: Instruction) -> None:
    sew = s.sew
    a = _read_group(s, i.rs2, sew, s.vl)
    b = _operand_rs1(s, i, sew, s.vl, False)
    out = {e: b[e] if s.mask_bit(e) else a[e] for e in range(s.vl)}
    _write_group(s, i.rd, sew, out)


VECTOR_EXEC["vmerge.vvm"] = _merge
VECTOR_EXEC["vmerge.vxm"] = _merge


@_vop("vmv.v.v", "vmv.v.x", "vmv.v.i")
def _vmv_v(s, i):
    sew = s.sew
    b = _operand_rs1(s, i, sew, s.vl, False)
    _write_group(s, i.rd, sew, dict(enumerate(b[:s.vl])))


@_vop("vmv.x.s")
def _vmv_x_s(s, i):
    value = _read_group(s, i.rs2, s.sew, 1, signed=True)[0]
    s.write_x(i.rd, value)


@_vop("vmv.s.x")
def _vmv_s_x(s, i):
    _write_group(s, i.rd, s.sew, {0: s.regs[i.rs1]})


# Reductions: vd[0] = reduce(vs2[0..vl-1], init=vs1[0]).
def _reduce(fn, signed: bool, fp: bool = False):
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        elems = _read_group(s, i.rs2, sew, s.vl, signed)
        init = _read_group(s, i.rs1, sew, 1, signed)[0]
        if fp:
            unpack, pack = _FP_UNPACK[sew], _FP_PACK[sew]
            acc = unpack(init)
            for e in _active(s, i):
                acc = fn(acc, unpack(elems[e]))
            _write_group(s, i.rd, sew, {0: pack(acc)})
            return
        acc = init
        for e in _active(s, i):
            acc = fn(acc, elems[e])
        _write_group(s, i.rd, sew, {0: acc})
    return handler


VECTOR_EXEC["vredsum.vs"] = _reduce(lambda a, b: a + b, True)
VECTOR_EXEC["vredmax.vs"] = _reduce(max, True)
VECTOR_EXEC["vredmin.vs"] = _reduce(min, True)
VECTOR_EXEC["vredmaxu.vs"] = _reduce(max, False)
VECTOR_EXEC["vredminu.vs"] = _reduce(min, False)
VECTOR_EXEC["vredand.vs"] = _reduce(lambda a, b: a & b, False)
VECTOR_EXEC["vredor.vs"] = _reduce(lambda a, b: a | b, False)
VECTOR_EXEC["vredxor.vs"] = _reduce(lambda a, b: a ^ b, False)
VECTOR_EXEC["vfredsum.vs"] = _reduce(lambda a, b: a + b, False, fp=True)
VECTOR_EXEC["vfredmax.vs"] = _reduce(max, False, fp=True)
VECTOR_EXEC["vfredmin.vs"] = _reduce(min, False, fp=True)


# Mask-register logical operations: bitwise over the first vl bits.
def _mask_logical(fn):
    def handler(s: MachineState, i: Instruction) -> None:
        dest = s.vregs[i.rd]
        a = s.vregs[i.rs2]
        b = s.vregs[i.rs1]
        for e in range(s.vl):
            byte, bit = e >> 3, e & 7
            va = (a[byte] >> bit) & 1
            vb = (b[byte] >> bit) & 1
            if fn(va, vb):
                dest[byte] |= 1 << bit
            else:
                dest[byte] &= ~(1 << bit)
    return handler


VECTOR_EXEC["vmand.mm"] = _mask_logical(lambda a, b: a & b)
VECTOR_EXEC["vmor.mm"] = _mask_logical(lambda a, b: a | b)
VECTOR_EXEC["vmxor.mm"] = _mask_logical(lambda a, b: a ^ b)
VECTOR_EXEC["vmnand.mm"] = _mask_logical(lambda a, b: 1 - (a & b))
VECTOR_EXEC["vmnor.mm"] = _mask_logical(lambda a, b: 1 - (a | b))
VECTOR_EXEC["vmxnor.mm"] = _mask_logical(lambda a, b: 1 - (a ^ b))


@_vop("vid.v")
def _vid(s, i):
    out = {e: e for e in _active(s, i)}
    _write_group(s, i.rd, s.sew, out)


@_vop("vcpop.m")
def _vcpop(s, i):
    src = s.vregs[i.rs2]
    count = 0
    for e in range(s.vl):
        if not i.aux and not s.mask_bit(e):
            continue
        if (src[e >> 3] >> (e & 7)) & 1:
            count += 1
    s.write_x(i.rd, count)


# Permutations.
@_vop("vslideup.vx", "vslideup.vi")
def _vslideup(s, i):
    offset = s.regs[i.rs1] if i.spec.rs1_file == "x" else i.imm
    src = _read_group(s, i.rs2, s.sew, s.vl)
    out = {e: src[e - offset] for e in _active(s, i) if e >= offset}
    _write_group(s, i.rd, s.sew, out)


@_vop("vslidedown.vx", "vslidedown.vi")
def _vslidedown(s, i):
    offset = s.regs[i.rs1] if i.spec.rs1_file == "x" else i.imm
    src = _read_group(s, i.rs2, s.sew, s.vlmax)
    out = {e: (src[e + offset] if e + offset < s.vlmax else 0)
           for e in _active(s, i)}
    _write_group(s, i.rd, s.sew, out)


@_vop("vrgather.vv")
def _vrgather(s, i):
    indexes = _read_group(s, i.rs1, s.sew, s.vl)
    src = _read_group(s, i.rs2, s.sew, s.vlmax)
    out = {e: (src[indexes[e]] if indexes[e] < s.vlmax else 0)
           for e in _active(s, i)}
    _write_group(s, i.rd, s.sew, out)


# -- FP --------------------------------------------------------------------------

def _fp_operand(s: MachineState, i: Instruction, sew: int,
                count: int) -> list[float]:
    unpack = _FP_UNPACK[sew]
    if i.spec.rs1_file == "v":
        return [unpack(v) for v in _read_group(s, i.rs1, sew, count)]
    # scalar f register broadcast: take the raw low sew bits
    return [unpack(s.fregs[i.rs1])] * count


def _fp_binop(fn):
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        unpack, pack = _FP_UNPACK[sew], _FP_PACK[sew]
        active = _active(s, i)
        a = [unpack(v) for v in _read_group(s, i.rs2, sew, s.vl)]
        b = _fp_operand(s, i, sew, s.vl)
        out = {}
        for e in active:
            try:
                out[e] = pack(fn(a[e], b[e]))
            except ZeroDivisionError:
                out[e] = pack(float("inf") if a[e] > 0 else float("-inf"))
        _write_group(s, i.rd, sew, out)
    return handler


for _sfx in ("vv", "vf"):
    VECTOR_EXEC[f"vfadd.{_sfx}"] = _fp_binop(lambda x, y: x + y)
    VECTOR_EXEC[f"vfsub.{_sfx}"] = _fp_binop(lambda x, y: x - y)
    VECTOR_EXEC[f"vfmul.{_sfx}"] = _fp_binop(lambda x, y: x * y)
    VECTOR_EXEC[f"vfdiv.{_sfx}"] = _fp_binop(lambda x, y: x / y)
    VECTOR_EXEC[f"vfmin.{_sfx}"] = _fp_binop(min)
    VECTOR_EXEC[f"vfmax.{_sfx}"] = _fp_binop(max)


def _fp_mac(sign_prod: int, dest_is_addend: bool):
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        unpack, pack = _FP_UNPACK[sew], _FP_PACK[sew]
        active = _active(s, i)
        a = [unpack(v) for v in _read_group(s, i.rs2, sew, s.vl)]
        b = _fp_operand(s, i, sew, s.vl)
        d = [unpack(v) for v in _read_group(s, i.rd, sew, s.vl)]
        if dest_is_addend:
            out = {e: pack(sign_prod * a[e] * b[e] + d[e]) for e in active}
        else:
            out = {e: pack(sign_prod * d[e] * b[e] + a[e]) for e in active}
        _write_group(s, i.rd, sew, out)
    return handler


for _sfx in ("vv", "vf"):
    VECTOR_EXEC[f"vfmacc.{_sfx}"] = _fp_mac(1, True)
    VECTOR_EXEC[f"vfnmacc.{_sfx}"] = _fp_mac(-1, True)
    VECTOR_EXEC[f"vfmadd.{_sfx}"] = _fp_mac(1, False)


@_vop("vfsqrt.v")
def _vfsqrt(s, i):
    import math

    sew = s.sew
    unpack, pack = _FP_UNPACK[sew], _FP_PACK[sew]
    a = [unpack(v) for v in _read_group(s, i.rs2, sew, s.vl)]
    out = {e: pack(math.sqrt(a[e]) if a[e] >= 0 else float("nan"))
           for e in _active(s, i)}
    _write_group(s, i.rd, sew, out)


# -- memory ----------------------------------------------------------------------

def _vload(s: MachineState, i: Instruction) -> None:
    width = i.spec.mem_bytes
    base = s.regs[i.rs1]
    stride = s.regs[i.rs2] if i.spec.fmt == "VLS" else width
    out = {}
    for e in _active(s, i):
        out[e] = s.memory.load_int(base + e * stride, width)
    _write_group(s, i.rd, width * 8, out,
                 lmul=max(1, (s.vl * width + s.vlenb - 1) // s.vlenb))
    s.side.mem_addr = base
    s.side.mem_size = max(s.vl, 1) * (stride if stride > 0 else width)


def _vstore(s: MachineState, i: Instruction) -> None:
    width = i.spec.mem_bytes
    base = s.regs[i.rs1]
    stride = s.regs[i.rs2] if i.spec.fmt == "VSS" else width
    lmul = max(1, (s.vl * width + s.vlenb - 1) // s.vlenb)
    values = _read_group(s, i.rs3, width * 8, s.vl, lmul=lmul)
    for e in _active(s, i):
        s.memory.store_int(base + e * stride, values[e], width)
    s.side.mem_addr = base
    s.side.mem_size = max(s.vl, 1) * (stride if stride > 0 else width)


for _w in (8, 16, 32, 64):
    VECTOR_EXEC[f"vle{_w}.v"] = _vload
    VECTOR_EXEC[f"vlse{_w}.v"] = _vload
    VECTOR_EXEC[f"vse{_w}.v"] = _vstore
    VECTOR_EXEC[f"vsse{_w}.v"] = _vstore
