"""Functional semantics for the 0.7.1-flavoured vector extension.

Vector state lives in :class:`~repro.sim.state.MachineState`: 32
VLEN-bit registers backed by ONE contiguous numpy buffer, with
``vl``/``vtype`` set by vsetvl(i).  Operations are tail-undisturbed and
honour the v0 mask when the instruction's ``vm`` bit (``inst.aux``) is
0, matching the paper's description of masked dual-issue vector
execution (section VII).

Two interchangeable engines implement the same architectural contract:

``numpy`` (default)
    Whole-register SIMD: every handler reinterprets the register file
    through cached per-SEW views (``MachineState.vview_u/s/f``) and
    executes one batched numpy expression per instruction.  Masking is
    a boolean index unpacked from v0, tails are left untouched by slice
    assignment, and unit-stride/strided/indexed memory ops go through
    ``np.frombuffer`` views onto ``Memory`` pages (guarded cross-page
    fallbacks stay batched via span copies).  Shapes numpy cannot
    express bit-identically (div/rem, 128-bit widenings, FP reductions,
    wrapped register groups, MMIO-mapped memory) delegate to the
    reference engine and are counted as fallbacks.

``ref``
    The original per-element pure-Python implementation, retained
    verbatim as the differential oracle.  Selected with
    ``REPRO_VECTOR_ENGINE=ref`` (or :func:`select_engine`).

``VECTOR_EXEC`` is the live dispatch table all three execution tiers
bind against; :func:`select_engine` mutates it in place, so tier-2/3
engines that resolved handlers at translate time must be rebuilt (a
fresh :class:`~repro.sim.emulator.Emulator`) after switching.  Tier-3
additionally calls :func:`specialize` to constant-fold SEW/LMUL into a
handler once vtype is provably static inside a block.
"""

from __future__ import annotations

import math
import os
from typing import Any, Callable

import numpy as np

from ..isa.instructions import Instruction
from .memory import PAGE_SIZE
from .state import (
    MachineState,
    f16_bits_to_float,
    f32_bits_to_float,
    f64_bits_to_float,
    float_to_f16_bits,
    float_to_f32_bits,
    float_to_f64_bits,
)

VectorHandler = Callable[[MachineState, Instruction], None]

#: The live dispatch table (tier 1 looks it up per step; tiers 2/3 bind
#: handlers at translate time).  Populated by :func:`select_engine`.
VECTOR_EXEC: dict[str, VectorHandler] = {}
#: The per-element reference engine (the differential oracle).
VECTOR_EXEC_REF: dict[str, VectorHandler] = {}
#: The numpy-batched engine.
VECTOR_EXEC_NUMPY: dict[str, VectorHandler] = {}

_FP_UNPACK: dict[int, Callable[[int], float]] = {
    16: f16_bits_to_float, 32: f32_bits_to_float, 64: f64_bits_to_float}
_FP_PACK: dict[int, Callable[[float], int]] = {
    16: float_to_f16_bits, 32: float_to_f32_bits, 64: float_to_f64_bits}


def _vop(*names: str) -> Callable[[VectorHandler], VectorHandler]:
    def register(fn: VectorHandler) -> VectorHandler:
        for name in names:
            VECTOR_EXEC_REF[name] = fn
        return fn
    return register


# ===========================================================================
# The per-element REFERENCE engine (the differential oracle).
#
# This is the original implementation, kept semantically frozen: the
# numpy engine below must be bit-identical to it on every reachable
# input, and the hypothesis differential in tests/sim pins that down.
# ===========================================================================

# -- element access ----------------------------------------------------------

def _read_group(s: MachineState, start: int, sew: int, count: int,
                signed: bool = False, lmul: int | None = None) -> list[int]:
    lmul = lmul if lmul is not None else s.lmul
    width = sew // 8
    # lmul==1 hot path: read straight through the live memoryview —
    # no per-call bytes() copy of the register.
    data: memoryview | bytes = s.vregs[start] if lmul == 1 else bytes(
        b for r in range(lmul) for b in s.vregs[(start + r) % 32])
    out = []
    for idx in range(count):
        value = int.from_bytes(data[idx * width:(idx + 1) * width], "little")
        if signed and value >= 1 << (sew - 1):
            value -= 1 << sew
        out.append(value)
    return out


def _write_group(s: MachineState, start: int, sew: int,
                 values: dict[int, int], lmul: int | None = None) -> None:
    """Write {element-index: value}; untouched elements keep old bytes."""
    lmul = lmul if lmul is not None else s.lmul
    width = sew // 8
    per_reg = s.vlenb // width
    for idx, value in values.items():
        reg = s.vregs[(start + idx // per_reg) % 32]
        off = (idx % per_reg) * width
        reg[off:off + width] = (value & ((1 << sew) - 1)).to_bytes(
            width, "little")


def _active(s: MachineState, inst: Instruction) -> list[int]:
    """Element indices this op touches (vl and mask applied)."""
    if inst.aux:  # unmasked
        return list(range(s.vl))
    return [e for e in range(s.vl) if s.mask_bit(e)]


def _operand_rs1(s: MachineState, inst: Instruction, sew: int,
                 count: int, signed: bool) -> list[int]:
    """The vs1/rs1/imm operand broadcast appropriately."""
    spec = inst.spec
    if spec.rs1_file == "v":
        return _read_group(s, inst.rs1, sew, count, signed)
    if spec.rs1_file == "x":
        scalar = s.regs[inst.rs1] & ((1 << sew) - 1)
        if signed and scalar >= 1 << (sew - 1):
            scalar -= 1 << sew
        return [scalar] * count
    if spec.rs1_file == "f":
        return [s.fregs[inst.rs1]] * count  # raw bits; FP ops unpack
    value = inst.imm
    return [value] * count


# -- configuration -----------------------------------------------------------

@_vop("vsetvli")
def _vsetvli(s: MachineState, i: Instruction) -> None:
    avl = s.regs[i.rs1] if i.rs1 else (s.vlen * 8)  # rs1=x0: VLMAX request
    s.write_x(i.rd, s.set_vtype(i.imm, avl))


@_vop("vsetvl")
def _vsetvl(s: MachineState, i: Instruction) -> None:
    avl = s.regs[i.rs1] if i.rs1 else (s.vlen * 8)
    s.write_x(i.rd, s.set_vtype(s.regs[i.rs2], avl))


# -- integer ALU -------------------------------------------------------------

_IntOp = Callable[[int, int, int], int]


def _int_binop(fn: _IntOp, signed: bool = False) -> VectorHandler:
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        active = _active(s, i)
        a = _read_group(s, i.rs2, sew, s.vl, signed)   # vs2
        b = _operand_rs1(s, i, sew, s.vl, signed)      # vs1/rs1/imm
        _write_group(s, i.rd, sew, {e: fn(a[e], b[e], sew) for e in active})
    return handler


VECTOR_EXEC_REF.update({
    f"vadd.{sfx}": _int_binop(lambda x, y, w: x + y)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC_REF.update({
    f"vsub.{sfx}": _int_binop(lambda x, y, w: x - y)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC_REF.update({
    f"vrsub.{sfx}": _int_binop(lambda x, y, w: y - x)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC_REF.update({
    f"vand.{sfx}": _int_binop(lambda x, y, w: x & y)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC_REF.update({
    f"vor.{sfx}": _int_binop(lambda x, y, w: x | y)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC_REF.update({
    f"vxor.{sfx}": _int_binop(lambda x, y, w: x ^ y)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC_REF.update({
    f"vsll.{sfx}": _int_binop(lambda x, y, w: x << (y & (w - 1)))
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC_REF.update({
    f"vsrl.{sfx}": _int_binop(
        lambda x, y, w: (x & ((1 << w) - 1)) >> (y & (w - 1)))
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC_REF.update({
    f"vsra.{sfx}": _int_binop(lambda x, y, w: x >> (y & (w - 1)), signed=True)
    for sfx in ("vv", "vx", "vi")})
VECTOR_EXEC_REF.update({
    f"vmin.{sfx}": _int_binop(lambda x, y, w: min(x, y), signed=True)
    for sfx in ("vv", "vx")})
VECTOR_EXEC_REF.update({
    f"vmax.{sfx}": _int_binop(lambda x, y, w: max(x, y), signed=True)
    for sfx in ("vv", "vx")})
VECTOR_EXEC_REF.update({
    f"vminu.{sfx}": _int_binop(lambda x, y, w: min(x, y))
    for sfx in ("vv", "vx")})
VECTOR_EXEC_REF.update({
    f"vmaxu.{sfx}": _int_binop(lambda x, y, w: max(x, y))
    for sfx in ("vv", "vx")})
VECTOR_EXEC_REF.update({
    f"vmul.{sfx}": _int_binop(lambda x, y, w: x * y, signed=True)
    for sfx in ("vv", "vx")})
VECTOR_EXEC_REF.update({
    f"vmulh.{sfx}": _int_binop(lambda x, y, w: (x * y) >> w, signed=True)
    for sfx in ("vv", "vx")})
VECTOR_EXEC_REF.update({
    f"vmulhu.{sfx}": _int_binop(lambda x, y, w: (x * y) >> w)
    for sfx in ("vv", "vx")})


def _int_div(fn: _IntOp, signed: bool) -> VectorHandler:
    def div_op(x: int, y: int, w: int) -> int:
        if y == 0:
            return -1 if signed else (1 << w) - 1
        q = abs(x) // abs(y)
        if (x < 0) != (y < 0):
            q = -q
        return fn(x, y, q)
    return _int_binop(div_op, signed)


VECTOR_EXEC_REF.update({f"vdiv.{s}": _int_div(lambda x, y, q: q, True)
                        for s in ("vv", "vx")})
VECTOR_EXEC_REF.update({f"vdivu.{s}": _int_div(lambda x, y, q: q, False)
                        for s in ("vv", "vx")})
VECTOR_EXEC_REF.update({f"vrem.{s}": _int_div(lambda x, y, q: x - q * y, True)
                        for s in ("vv", "vx")})
VECTOR_EXEC_REF.update({f"vremu.{s}": _int_div(lambda x, y, q: x - q * y,
                                               False)
                        for s in ("vv", "vx")})


def _int_mac(sign: int, dest_is_addend: bool) -> VectorHandler:
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        active = _active(s, i)
        a = _read_group(s, i.rs2, sew, s.vl, True)
        b = _operand_rs1(s, i, sew, s.vl, True)
        d = _read_group(s, i.rd, sew, s.vl, True)
        if dest_is_addend:  # vmacc: vd += vs1*vs2
            out = {e: d[e] + sign * a[e] * b[e] for e in active}
        else:               # vmadd: vd = vd*vs1 + vs2
            out = {e: d[e] * b[e] + sign * a[e] for e in active}
        _write_group(s, i.rd, sew, out)
    return handler


for _sfx in ("vv", "vx"):
    VECTOR_EXEC_REF[f"vmacc.{_sfx}"] = _int_mac(1, True)
    VECTOR_EXEC_REF[f"vnmsac.{_sfx}"] = _int_mac(-1, True)
    VECTOR_EXEC_REF[f"vmadd.{_sfx}"] = _int_mac(1, False)


# Widening ops: destination EEW = 2*SEW, EMUL = 2*LMUL.
def _widening(fn: Callable[[int, int], int], mac: bool = False,
              signed: bool = True) -> VectorHandler:
    def handler(s: MachineState, i: Instruction) -> None:
        sew, wide = s.sew, s.sew * 2
        active = _active(s, i)
        a = _read_group(s, i.rs2, sew, s.vl, signed)
        b = _operand_rs1(s, i, sew, s.vl, signed)
        wide_lmul = min(s.lmul * 2, 8)
        if mac:
            d = _read_group(s, i.rd, wide, s.vl, signed, lmul=wide_lmul)
            out = {e: d[e] + fn(a[e], b[e]) for e in active}
        else:
            out = {e: fn(a[e], b[e]) for e in active}
        _write_group(s, i.rd, wide, out, lmul=wide_lmul)
    return handler


for _sfx in ("vv", "vx"):
    VECTOR_EXEC_REF[f"vwmul.{_sfx}"] = _widening(lambda x, y: x * y)
    VECTOR_EXEC_REF[f"vwmulu.{_sfx}"] = _widening(lambda x, y: x * y,
                                                  signed=False)
    VECTOR_EXEC_REF[f"vwmacc.{_sfx}"] = _widening(lambda x, y: x * y,
                                                  mac=True)
    VECTOR_EXEC_REF[f"vwmaccu.{_sfx}"] = _widening(lambda x, y: x * y,
                                                   mac=True, signed=False)
    VECTOR_EXEC_REF[f"vwadd.{_sfx}"] = _widening(lambda x, y: x + y)
    VECTOR_EXEC_REF[f"vwaddu.{_sfx}"] = _widening(lambda x, y: x + y,
                                                  signed=False)


# Compares write mask bits into vd.
def _compare(fn: Callable[[int, int], bool], signed: bool) -> VectorHandler:
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        active = _active(s, i)
        a = _read_group(s, i.rs2, sew, s.vl, signed)
        b = _operand_rs1(s, i, sew, s.vl, signed)
        dest = s.vregs[i.rd]
        for e in active:
            if fn(a[e], b[e]):
                dest[e >> 3] |= 1 << (e & 7)
            else:
                dest[e >> 3] &= ~(1 << (e & 7)) & 0xFF
    return handler


for _sfx in ("vv", "vx"):
    VECTOR_EXEC_REF[f"vmseq.{_sfx}"] = _compare(lambda x, y: x == y, False)
    VECTOR_EXEC_REF[f"vmsne.{_sfx}"] = _compare(lambda x, y: x != y, False)
    VECTOR_EXEC_REF[f"vmsltu.{_sfx}"] = _compare(lambda x, y: x < y, False)
    VECTOR_EXEC_REF[f"vmslt.{_sfx}"] = _compare(lambda x, y: x < y, True)
    VECTOR_EXEC_REF[f"vmsleu.{_sfx}"] = _compare(lambda x, y: x <= y, False)
    VECTOR_EXEC_REF[f"vmsle.{_sfx}"] = _compare(lambda x, y: x <= y, True)


# Merge and moves.
def _merge(s: MachineState, i: Instruction) -> None:
    sew = s.sew
    a = _read_group(s, i.rs2, sew, s.vl)
    b = _operand_rs1(s, i, sew, s.vl, False)
    out = {e: b[e] if s.mask_bit(e) else a[e] for e in range(s.vl)}
    _write_group(s, i.rd, sew, out)


VECTOR_EXEC_REF["vmerge.vvm"] = _merge
VECTOR_EXEC_REF["vmerge.vxm"] = _merge


@_vop("vmv.v.v", "vmv.v.x", "vmv.v.i")
def _vmv_v(s: MachineState, i: Instruction) -> None:
    sew = s.sew
    b = _operand_rs1(s, i, sew, s.vl, False)
    _write_group(s, i.rd, sew, dict(enumerate(b[:s.vl])))


@_vop("vmv.x.s")
def _vmv_x_s(s: MachineState, i: Instruction) -> None:
    value = _read_group(s, i.rs2, s.sew, 1, signed=True)[0]
    s.write_x(i.rd, value)


@_vop("vmv.s.x")
def _vmv_s_x(s: MachineState, i: Instruction) -> None:
    _write_group(s, i.rd, s.sew, {0: s.regs[i.rs1]})


# Reductions: vd[0] = reduce(vs2[0..vl-1], init=vs1[0]).
def _reduce(fn: Callable[[Any, Any], Any], signed: bool,
            fp: bool = False) -> VectorHandler:
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        elems = _read_group(s, i.rs2, sew, s.vl, signed)
        init = _read_group(s, i.rs1, sew, 1, signed)[0]
        if fp:
            unpack, pack = _FP_UNPACK[sew], _FP_PACK[sew]
            acc = unpack(init)
            for e in _active(s, i):
                acc = fn(acc, unpack(elems[e]))
            _write_group(s, i.rd, sew, {0: pack(acc)})
            return
        acc = init
        for e in _active(s, i):
            acc = fn(acc, elems[e])
        _write_group(s, i.rd, sew, {0: acc})
    return handler


VECTOR_EXEC_REF["vredsum.vs"] = _reduce(lambda a, b: a + b, True)
VECTOR_EXEC_REF["vredmax.vs"] = _reduce(max, True)
VECTOR_EXEC_REF["vredmin.vs"] = _reduce(min, True)
VECTOR_EXEC_REF["vredmaxu.vs"] = _reduce(max, False)
VECTOR_EXEC_REF["vredminu.vs"] = _reduce(min, False)
VECTOR_EXEC_REF["vredand.vs"] = _reduce(lambda a, b: a & b, False)
VECTOR_EXEC_REF["vredor.vs"] = _reduce(lambda a, b: a | b, False)
VECTOR_EXEC_REF["vredxor.vs"] = _reduce(lambda a, b: a ^ b, False)
VECTOR_EXEC_REF["vfredsum.vs"] = _reduce(lambda a, b: a + b, False, fp=True)
VECTOR_EXEC_REF["vfredmax.vs"] = _reduce(max, False, fp=True)
VECTOR_EXEC_REF["vfredmin.vs"] = _reduce(min, False, fp=True)


# Mask-register logical operations: bitwise over the first vl bits.
def _mask_logical(fn: Callable[[int, int], int]) -> VectorHandler:
    def handler(s: MachineState, i: Instruction) -> None:
        dest = s.vregs[i.rd]
        a = s.vregs[i.rs2]
        b = s.vregs[i.rs1]
        for e in range(s.vl):
            byte, bit = e >> 3, e & 7
            va = (a[byte] >> bit) & 1
            vb = (b[byte] >> bit) & 1
            if fn(va, vb):
                dest[byte] |= 1 << bit
            else:
                dest[byte] &= ~(1 << bit) & 0xFF
    return handler


VECTOR_EXEC_REF["vmand.mm"] = _mask_logical(lambda a, b: a & b)
VECTOR_EXEC_REF["vmor.mm"] = _mask_logical(lambda a, b: a | b)
VECTOR_EXEC_REF["vmxor.mm"] = _mask_logical(lambda a, b: a ^ b)
VECTOR_EXEC_REF["vmnand.mm"] = _mask_logical(lambda a, b: 1 - (a & b))
VECTOR_EXEC_REF["vmnor.mm"] = _mask_logical(lambda a, b: 1 - (a | b))
VECTOR_EXEC_REF["vmxnor.mm"] = _mask_logical(lambda a, b: 1 - (a ^ b))


@_vop("vid.v")
def _vid(s: MachineState, i: Instruction) -> None:
    out = {e: e for e in _active(s, i)}
    _write_group(s, i.rd, s.sew, out)


@_vop("vcpop.m")
def _vcpop(s: MachineState, i: Instruction) -> None:
    src = s.vregs[i.rs2]
    count = 0
    for e in range(s.vl):
        if not i.aux and not s.mask_bit(e):
            continue
        if (src[e >> 3] >> (e & 7)) & 1:
            count += 1
    s.write_x(i.rd, count)


# Permutations.
@_vop("vslideup.vx", "vslideup.vi")
def _vslideup(s: MachineState, i: Instruction) -> None:
    offset = s.regs[i.rs1] if i.spec.rs1_file == "x" else i.imm
    src = _read_group(s, i.rs2, s.sew, s.vl)
    out = {e: src[e - offset] for e in _active(s, i) if e >= offset}
    _write_group(s, i.rd, s.sew, out)


@_vop("vslidedown.vx", "vslidedown.vi")
def _vslidedown(s: MachineState, i: Instruction) -> None:
    offset = s.regs[i.rs1] if i.spec.rs1_file == "x" else i.imm
    src = _read_group(s, i.rs2, s.sew, s.vlmax)
    out = {e: (src[e + offset] if e + offset < s.vlmax else 0)
           for e in _active(s, i)}
    _write_group(s, i.rd, s.sew, out)


@_vop("vrgather.vv")
def _vrgather(s: MachineState, i: Instruction) -> None:
    indexes = _read_group(s, i.rs1, s.sew, s.vl)
    src = _read_group(s, i.rs2, s.sew, s.vlmax)
    out = {e: (src[indexes[e]] if indexes[e] < s.vlmax else 0)
           for e in _active(s, i)}
    _write_group(s, i.rd, s.sew, out)


# -- FP ----------------------------------------------------------------------

def _fp_operand(s: MachineState, i: Instruction, sew: int,
                count: int) -> list[float]:
    unpack = _FP_UNPACK[sew]
    if i.spec.rs1_file == "v":
        return [unpack(v) for v in _read_group(s, i.rs1, sew, count)]
    # scalar f register broadcast: take the raw low sew bits
    return [unpack(s.fregs[i.rs1])] * count


_FloatOp = Callable[[float, float], float]


def _fp_binop(fn: _FloatOp) -> VectorHandler:
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        unpack, pack = _FP_UNPACK[sew], _FP_PACK[sew]
        active = _active(s, i)
        a = [unpack(v) for v in _read_group(s, i.rs2, sew, s.vl)]
        b = _fp_operand(s, i, sew, s.vl)
        out = {}
        for e in active:
            try:
                out[e] = pack(fn(a[e], b[e]))
            except ZeroDivisionError:
                out[e] = pack(float("inf") if a[e] > 0 else float("-inf"))
        _write_group(s, i.rd, sew, out)
    return handler


for _sfx in ("vv", "vf"):
    VECTOR_EXEC_REF[f"vfadd.{_sfx}"] = _fp_binop(lambda x, y: x + y)
    VECTOR_EXEC_REF[f"vfsub.{_sfx}"] = _fp_binop(lambda x, y: x - y)
    VECTOR_EXEC_REF[f"vfmul.{_sfx}"] = _fp_binop(lambda x, y: x * y)
    VECTOR_EXEC_REF[f"vfdiv.{_sfx}"] = _fp_binop(lambda x, y: x / y)
    VECTOR_EXEC_REF[f"vfmin.{_sfx}"] = _fp_binop(min)
    VECTOR_EXEC_REF[f"vfmax.{_sfx}"] = _fp_binop(max)


def _fp_mac(sign_prod: int, dest_is_addend: bool) -> VectorHandler:
    def handler(s: MachineState, i: Instruction) -> None:
        sew = s.sew
        unpack, pack = _FP_UNPACK[sew], _FP_PACK[sew]
        active = _active(s, i)
        a = [unpack(v) for v in _read_group(s, i.rs2, sew, s.vl)]
        b = _fp_operand(s, i, sew, s.vl)
        d = [unpack(v) for v in _read_group(s, i.rd, sew, s.vl)]
        if dest_is_addend:
            out = {e: pack(sign_prod * a[e] * b[e] + d[e]) for e in active}
        else:
            out = {e: pack(sign_prod * d[e] * b[e] + a[e]) for e in active}
        _write_group(s, i.rd, sew, out)
    return handler


for _sfx in ("vv", "vf"):
    VECTOR_EXEC_REF[f"vfmacc.{_sfx}"] = _fp_mac(1, True)
    VECTOR_EXEC_REF[f"vfnmacc.{_sfx}"] = _fp_mac(-1, True)
    VECTOR_EXEC_REF[f"vfmadd.{_sfx}"] = _fp_mac(1, False)


@_vop("vfsqrt.v")
def _vfsqrt(s: MachineState, i: Instruction) -> None:
    sew = s.sew
    unpack, pack = _FP_UNPACK[sew], _FP_PACK[sew]
    a = [unpack(v) for v in _read_group(s, i.rs2, sew, s.vl)]
    out = {e: pack(math.sqrt(a[e]) if a[e] >= 0 else float("nan"))
           for e in _active(s, i)}
    _write_group(s, i.rd, sew, out)


# -- memory ------------------------------------------------------------------

def _mem_group_lmul(s: MachineState, width: int) -> int:
    """Effective destination-group LMUL for a vl*width-byte access."""
    return max(1, (s.vl * width + s.vlenb - 1) // s.vlenb)


def _vload(s: MachineState, i: Instruction) -> None:
    width = i.spec.mem_bytes
    base = s.regs[i.rs1]
    stride = s.regs[i.rs2] if i.spec.fmt == "VLS" else width
    out = {}
    for e in _active(s, i):
        out[e] = s.memory.load_int(base + e * stride, width)
    _write_group(s, i.rd, width * 8, out, lmul=_mem_group_lmul(s, width))
    s.side.mem_addr = base
    s.side.mem_size = max(s.vl, 1) * (stride if stride > 0 else width)


def _vstore(s: MachineState, i: Instruction) -> None:
    width = i.spec.mem_bytes
    base = s.regs[i.rs1]
    stride = s.regs[i.rs2] if i.spec.fmt == "VSS" else width
    values = _read_group(s, i.rs3, width * 8, s.vl,
                         lmul=_mem_group_lmul(s, width))
    for e in _active(s, i):
        s.memory.store_int(base + e * stride, values[e], width)
    s.side.mem_addr = base
    s.side.mem_size = max(s.vl, 1) * (stride if stride > 0 else width)


def _vload_indexed(s: MachineState, i: Instruction) -> None:
    """vlxei*: data EEW from the mnemonic, indices at SEW from vs2."""
    width = i.spec.mem_bytes
    base = s.regs[i.rs1]
    idx = _read_group(s, i.rs2, s.sew, s.vl)
    out = {}
    for e in _active(s, i):
        out[e] = s.memory.load_int(base + idx[e], width)
    _write_group(s, i.rd, width * 8, out, lmul=_mem_group_lmul(s, width))
    s.side.mem_addr = base
    s.side.mem_size = max(s.vl, 1) * width


def _vstore_indexed(s: MachineState, i: Instruction) -> None:
    width = i.spec.mem_bytes
    base = s.regs[i.rs1]
    idx = _read_group(s, i.rs2, s.sew, s.vl)
    values = _read_group(s, i.rs3, width * 8, s.vl,
                         lmul=_mem_group_lmul(s, width))
    for e in _active(s, i):
        s.memory.store_int(base + idx[e], values[e], width)
    s.side.mem_addr = base
    s.side.mem_size = max(s.vl, 1) * width


for _w in (8, 16, 32, 64):
    VECTOR_EXEC_REF[f"vle{_w}.v"] = _vload
    VECTOR_EXEC_REF[f"vlse{_w}.v"] = _vload
    VECTOR_EXEC_REF[f"vse{_w}.v"] = _vstore
    VECTOR_EXEC_REF[f"vsse{_w}.v"] = _vstore
    VECTOR_EXEC_REF[f"vlxei{_w}.v"] = _vload_indexed
    VECTOR_EXEC_REF[f"vsxei{_w}.v"] = _vstore_indexed


# ===========================================================================
# The numpy-batched engine.
# ===========================================================================

_DT_U: dict[int, Any] = {8: np.uint8, 16: np.uint16,
                         32: np.uint32, 64: np.uint64}
_DT_S: dict[int, Any] = {8: np.int8, 16: np.int16,
                         32: np.int32, 64: np.int64}
_DT_F: dict[int, Any] = {16: np.float16, 32: np.float32, 64: np.float64}

#: specializable mnemonics: mnemonic -> (sew, lmul) -> handler
_SPECIALIZE: dict[str, Callable[[int, int], VectorHandler]] = {}


def _fb(s: MachineState, i: Instruction) -> None:
    """Delegate to the reference engine, counting the fallback."""
    s.vec_counters["fallback_ops"] += 1
    VECTOR_EXEC_REF[i.spec.mnemonic](s, i)


def _group(s: MachineState, start: int, sew: int, count: int,
           signed: bool = False) -> Any:
    """Typed lane view of *count* registers starting at v[start].

    Returns None when the group wraps past v31 (the reference engine
    handles that via modular register numbering; we fall back).
    """
    per = (s.vlenb * 8) // sew
    lo = start * per
    hi = lo + count * per
    view = s.vview_s[sew] if signed else s.vview_u[sew]
    if hi > 32 * per:
        return None
    return view[lo:hi]


def _group_f(s: MachineState, start: int, sew: int, count: int) -> Any:
    per = (s.vlenb * 8) // sew
    lo = start * per
    hi = lo + count * per
    if hi > 32 * per:
        return None
    return s.vview_f[sew][lo:hi]


def _mask_bools(s: MachineState, vl: int) -> Any:
    """First *vl* bits of v0 as a boolean lane mask."""
    nbytes = (vl + 7) >> 3
    return np.unpackbits(s.vbuf[:nbytes],
                         bitorder="little")[:vl].astype(bool)


def _begin(s: MachineState, i: Instruction, vl: int) -> Any:
    """Count the batched op; return the active-lane mask (None=all)."""
    c = s.vec_counters
    c["batched_ops"] += 1
    c["elems_total"] += vl
    if i.aux:
        c["elems_active"] += vl
        return None
    c["masked_ops"] += 1
    m = _mask_bools(s, vl)
    c["elems_active"] += int(m.sum())
    return m


def _masked_store(dst: Any, m: Any, res: Any) -> None:
    if m is None:
        dst[:] = res
    else:
        np.putmask(dst, m, res)


def _np_operand(s: MachineState, i: Instruction, sew: int, count: int,
                signed: bool) -> Any:
    """vs1 lanes / x-scalar / immediate as a dtype array or scalar.

    Returns None when a vs1 register group wraps (fallback signal).
    """
    spec = i.spec
    if spec.rs1_file == "v":
        return _group(s, i.rs1, sew, count, signed)
    dt = _DT_S[sew] if signed else _DT_U[sew]
    if spec.rs1_file == "x":
        scalar = s.regs[i.rs1] & ((1 << sew) - 1)
    else:
        scalar = i.imm & ((1 << sew) - 1)
    if signed and scalar >= 1 << (sew - 1):
        scalar -= 1 << sew
    return dt(scalar)


# -- integer cores -----------------------------------------------------------

def _int_binop_core(s: MachineState, i: Instruction, sew: int, lmul: int,
                    op: Callable[[Any, Any, int], Any],
                    signed: bool) -> None:
    vl = s.vl
    dst = _group(s, i.rd, sew, lmul, signed)
    a = _group(s, i.rs2, sew, lmul, signed)
    b = _np_operand(s, i, sew, lmul, signed)
    if dst is None or a is None or b is None:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if not vl:
        return
    if isinstance(b, np.ndarray):
        b = b[:vl]
    _masked_store(dst[:vl], m, op(a[:vl], b, sew))


def _mulh_core(s: MachineState, i: Instruction, sew: int, lmul: int,
               signed: bool) -> None:
    if sew == 64:  # needs a 128-bit intermediate: per-element exact math
        _fb(s, i)
        return
    vl = s.vl
    dst = _group(s, i.rd, sew, lmul, signed)
    a = _group(s, i.rs2, sew, lmul, signed)
    b = _np_operand(s, i, sew, lmul, signed)
    if dst is None or a is None or b is None:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if not vl:
        return
    wd = _DT_S[sew * 2] if signed else _DT_U[sew * 2]
    aw = a[:vl].astype(wd)
    bw = (b[:vl].astype(wd) if isinstance(b, np.ndarray) else wd(int(b)))
    _masked_store(dst[:vl], m, ((aw * bw) >> wd(sew)).astype(dst.dtype))


def _mac_core(s: MachineState, i: Instruction, sew: int, lmul: int,
              sign: int, dest_is_addend: bool) -> None:
    vl = s.vl
    dst = _group(s, i.rd, sew, lmul, True)
    a = _group(s, i.rs2, sew, lmul, True)
    b = _np_operand(s, i, sew, lmul, True)
    if dst is None or a is None or b is None:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if not vl:
        return
    if isinstance(b, np.ndarray):
        b = b[:vl]
    d = dst[:vl]
    dt = dst.dtype
    if dest_is_addend:  # vmacc/vnmsac: vd += sign * vs1*vs2
        res = d + dt.type(sign) * (a[:vl] * b)
    else:               # vmadd: vd = vd*vs1 + vs2
        res = d * b + dt.type(sign) * a[:vl]
    _masked_store(d, m, res)


def _widening_core(s: MachineState, i: Instruction, sew: int, lmul: int,
                   mul: bool, mac: bool, signed: bool) -> None:
    if sew == 64 or lmul * 2 > 8:
        _fb(s, i)  # 128-bit lanes / clamped EMUL: exact per-element path
        return
    vl = s.vl
    wide, wlm = sew * 2, lmul * 2
    wd = _DT_S[wide] if signed else _DT_U[wide]
    dst = _group(s, i.rd, wide, wlm, signed)
    a = _group(s, i.rs2, sew, lmul, signed)
    b = _np_operand(s, i, sew, lmul, signed)
    if dst is None or a is None or b is None:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if not vl:
        return
    aw = a[:vl].astype(wd)
    bw = (b[:vl].astype(wd) if isinstance(b, np.ndarray) else wd(int(b)))
    res = aw * bw if mul else aw + bw
    if mac:
        res = dst[:vl] + res
    _masked_store(dst[:vl], m, res)


def _compare_core(s: MachineState, i: Instruction, sew: int, lmul: int,
                  op: Callable[[Any, Any], Any], signed: bool) -> None:
    vl = s.vl
    a = _group(s, i.rs2, sew, lmul, signed)
    b = _np_operand(s, i, sew, lmul, signed)
    if a is None or b is None:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if not vl:
        return
    if isinstance(b, np.ndarray):
        b = b[:vl]
    lo = i.rd * s.vlenb
    bits = np.unpackbits(s.vbuf[lo:lo + s.vlenb], bitorder="little")
    _masked_store(bits[:vl], m, op(a[:vl], b))
    s.vbuf[lo:lo + s.vlenb] = np.packbits(bits, bitorder="little")


def _merge_core(s: MachineState, i: Instruction, sew: int,
                lmul: int) -> None:
    vl = s.vl
    dst = _group(s, i.rd, sew, lmul)
    a = _group(s, i.rs2, sew, lmul)
    b = _np_operand(s, i, sew, lmul, False)
    if dst is None or a is None or b is None:
        _fb(s, i)
        return
    c = s.vec_counters
    c["batched_ops"] += 1
    c["masked_ops"] += 1
    c["elems_total"] += vl
    c["elems_active"] += vl
    if not vl:
        return
    if isinstance(b, np.ndarray):
        b = b[:vl]
    dst[:vl] = np.where(_mask_bools(s, vl), b, a[:vl])


def _vmv_v_core(s: MachineState, i: Instruction, sew: int,
                lmul: int) -> None:
    vl = s.vl
    dst = _group(s, i.rd, sew, lmul)
    b = _np_operand(s, i, sew, lmul, False)
    if dst is None or b is None:
        _fb(s, i)
        return
    _begin(s, i, vl)
    if not vl:
        return
    dst[:vl] = b[:vl] if isinstance(b, np.ndarray) else b


def _reduce_core(s: MachineState, i: Instruction, sew: int, lmul: int,
                 kind: str, signed: bool) -> None:
    vl = s.vl
    elems = _group(s, i.rs2, sew, lmul, signed)
    init_g = _group(s, i.rs1, sew, 1, signed)
    dst = _group(s, i.rd, sew, 1, signed)
    if elems is None or init_g is None or dst is None:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    init = init_g[0]
    sel = elems[:vl] if m is None else elems[:vl][m]
    if sel.size == 0:
        acc = init
    elif kind == "sum":
        acc = init + np.add.reduce(sel)       # dtype arithmetic: wraps
    elif kind == "max":
        acc = max(init, sel.max())
    elif kind == "min":
        acc = min(init, sel.min())
    elif kind == "and":
        acc = init & np.bitwise_and.reduce(sel)
    elif kind == "or":
        acc = init | np.bitwise_or.reduce(sel)
    else:
        acc = init ^ np.bitwise_xor.reduce(sel)
    dst[0] = acc


def _mask_logical_core(s: MachineState, i: Instruction,
                       op: Callable[[Any, Any], Any]) -> None:
    vl = s.vl
    c = s.vec_counters
    c["batched_ops"] += 1
    c["elems_total"] += vl
    c["elems_active"] += vl
    if not vl:
        return
    vlenb = s.vlenb
    buf = s.vbuf
    a = np.unpackbits(buf[i.rs2 * vlenb:(i.rs2 + 1) * vlenb],
                      bitorder="little")
    b = np.unpackbits(buf[i.rs1 * vlenb:(i.rs1 + 1) * vlenb],
                      bitorder="little")
    d = np.unpackbits(buf[i.rd * vlenb:(i.rd + 1) * vlenb],
                      bitorder="little")
    d[:vl] = op(a[:vl], b[:vl]) & 1
    buf[i.rd * vlenb:(i.rd + 1) * vlenb] = np.packbits(
        d, bitorder="little")


def _vid_core(s: MachineState, i: Instruction, sew: int,
              lmul: int) -> None:
    vl = s.vl
    dst = _group(s, i.rd, sew, lmul)
    if dst is None:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if not vl:
        return
    _masked_store(dst[:vl], m, np.arange(vl).astype(dst.dtype))


def _vcpop_np(s: MachineState, i: Instruction) -> None:
    vl = s.vl
    m = _begin(s, i, vl)
    lo = i.rs2 * s.vlenb
    bits = np.unpackbits(s.vbuf[lo:lo + s.vlenb],
                         bitorder="little")[:vl].astype(bool)
    if m is not None:
        bits = bits & m
    s.write_x(i.rd, int(np.count_nonzero(bits)))


def _slideup_core(s: MachineState, i: Instruction, sew: int,
                  lmul: int) -> None:
    offset = s.regs[i.rs1] if i.spec.rs1_file == "x" else i.imm
    vl = s.vl
    dst = _group(s, i.rd, sew, lmul)
    src = _group(s, i.rs2, sew, lmul)
    if dst is None or src is None or offset < 0:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if not vl or offset >= vl:
        return
    seg = dst[offset:vl]
    res = src[:vl - offset].copy()  # dst may alias src: snapshot first
    _masked_store(seg, m if m is None else m[offset:], res)


def _slidedown_core(s: MachineState, i: Instruction, sew: int,
                    lmul: int) -> None:
    offset = s.regs[i.rs1] if i.spec.rs1_file == "x" else i.imm
    vl = s.vl
    vlmax = (s.vlen * lmul) // sew
    dst = _group(s, i.rd, sew, lmul)
    src = _group(s, i.rs2, sew, lmul)
    if dst is None or src is None or offset < 0:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if not vl:
        return
    res = np.zeros(vl, dtype=dst.dtype)
    if offset < vlmax:
        n = min(vl, vlmax - offset)
        res[:n] = src[offset:offset + n]
    _masked_store(dst[:vl], m, res)


def _gather_core(s: MachineState, i: Instruction, sew: int,
                 lmul: int) -> None:
    vl = s.vl
    vlmax = (s.vlen * lmul) // sew
    dst = _group(s, i.rd, sew, lmul)
    src = _group(s, i.rs2, sew, lmul)
    idx = _group(s, i.rs1, sew, lmul)
    if dst is None or src is None or idx is None:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if not vl:
        return
    lanes = idx[:vl]
    valid = lanes < _DT_U[sew](vlmax) if vlmax < (1 << sew) else (
        np.ones(vl, dtype=bool))
    safe = np.where(valid, lanes, _DT_U[sew](0)).astype(np.int64)
    res = src[:vlmax][safe]
    res[~valid] = 0
    _masked_store(dst[:vl], m, res)


# -- FP cores ----------------------------------------------------------------

def _fp_prep(s: MachineState, i: Instruction, sew: int,
             lmul: int) -> tuple[Any, Any, Any] | None:
    """(dst_lanes, a64, b64) for an FP op, or None to fall back."""
    if sew not in _DT_F:
        return None
    dst = _group(s, i.rd, sew, lmul)
    a = _group_f(s, i.rs2, sew, lmul)
    if dst is None or a is None:
        return None
    if i.spec.rs1_file == "v":
        bg = _group_f(s, i.rs1, sew, lmul)
        if bg is None:
            return None
        b64 = bg[:s.vl].astype(np.float64)
    else:  # scalar f register broadcast: raw low sew bits
        b64 = np.float64(_FP_UNPACK[sew](s.fregs[i.rs1]))
    return dst, a[:s.vl].astype(np.float64), b64


def _fp_store(s: MachineState, dst: Any, m: Any, sew: int,
              res64: Any) -> None:
    """Round float64 results to the target format and store the bits."""
    bits = res64.astype(_DT_F[sew]).view(_DT_U[sew])
    _masked_store(dst[:s.vl], m, bits)


def _fp_binop_core(s: MachineState, i: Instruction, sew: int, lmul: int,
                   op: Callable[[Any, Any], Any]) -> None:
    prep = _fp_prep(s, i, sew, lmul)
    if prep is None:
        _fb(s, i)
        return
    dst, a64, b64 = prep
    m = _begin(s, i, s.vl)
    if not s.vl:
        return
    with np.errstate(all="ignore"):
        _fp_store(s, dst, m, sew, op(a64, b64))


def _fdiv_op(a: Any, b: Any) -> Any:
    # The reference engine's try/except ZeroDivisionError shape: ANY
    # zero divisor (either sign) yields +/-inf by the sign test on a,
    # with non-positive/NaN dividends mapping to -inf.
    r = a / b
    return np.where(b == 0.0, np.where(a > 0.0, np.float64(np.inf),
                                       np.float64(-np.inf)), r)


def _fp_mac_core(s: MachineState, i: Instruction, sew: int, lmul: int,
                 sign_prod: int, dest_is_addend: bool) -> None:
    prep = _fp_prep(s, i, sew, lmul)
    if prep is None:
        _fb(s, i)
        return
    dst, a64, b64 = prep
    m = _begin(s, i, s.vl)
    if not s.vl:
        return
    dg = _group_f(s, i.rd, sew, lmul)
    d64 = dg[:s.vl].astype(np.float64)
    sp = np.float64(sign_prod)
    with np.errstate(all="ignore"):
        if dest_is_addend:
            res = sp * a64 * b64 + d64
        else:
            res = sp * d64 * b64 + a64
        _fp_store(s, dst, m, sew, res)


def _fsqrt_core(s: MachineState, i: Instruction, sew: int,
                lmul: int) -> None:
    if sew not in _DT_F:
        _fb(s, i)
        return
    dst = _group(s, i.rd, sew, lmul)
    a = _group_f(s, i.rs2, sew, lmul)
    if dst is None or a is None:
        _fb(s, i)
        return
    m = _begin(s, i, s.vl)
    if not s.vl:
        return
    a64 = a[:s.vl].astype(np.float64)
    with np.errstate(all="ignore"):
        res = np.sqrt(a64)
    # negative inputs produce the reference's canonical float("nan");
    # -0.0 passes the >= 0 test and keeps sqrt(-0.0) == -0.0.
    res = np.where(a64 >= 0.0, res, np.float64(float("nan")))
    _fp_store(s, dst, m, sew, res)


# -- memory cores ------------------------------------------------------------

def _np_vload(s: MachineState, i: Instruction) -> None:
    spec = i.spec
    width = spec.mem_bytes
    base = s.regs[i.rs1]
    strided = spec.fmt == "VLS"
    stride = s.regs[i.rs2] if strided else width
    vl = s.vl
    mem = s.memory
    dst = _group(s, i.rd, width * 8, _mem_group_lmul(s, width))
    span = (vl - 1) * stride + width if vl else 0
    if (dst is None or mem.has_mmio or stride <= 0
            or span > 4 * PAGE_SIZE):
        _fb(s, i)  # wrapped group / MMIO / degenerate or huge stride
        return
    m = _begin(s, i, vl)
    if vl:
        dt = _DT_U[width * 8]
        view = mem.ram_view(base, span)
        buf = (np.frombuffer(view, dtype=np.uint8) if view is not None
               else np.frombuffer(mem.load_bytes(base, span),
                                  dtype=np.uint8))
        if stride == width:
            vals = buf.view(dt)
        else:
            rows = np.arange(vl, dtype=np.int64) * stride
            cols = np.arange(width, dtype=np.int64)
            vals = buf[rows[:, None] + cols[None, :]].view(dt).ravel()
        _masked_store(dst[:vl], m, vals)
    s.side.mem_addr = base
    s.side.mem_size = max(vl, 1) * (stride if stride > 0 else width)


def _np_vstore(s: MachineState, i: Instruction) -> None:
    spec = i.spec
    width = spec.mem_bytes
    base = s.regs[i.rs1]
    strided = spec.fmt == "VSS"
    stride = s.regs[i.rs2] if strided else width
    vl = s.vl
    mem = s.memory
    src = _group(s, i.rs3, width * 8, _mem_group_lmul(s, width))
    if src is None or mem.has_mmio or (strided and stride < width):
        _fb(s, i)  # wrapped group / MMIO / overlapping lanes (order!)
        return
    m = _begin(s, i, vl)
    if vl and (m is None or m.any()):
        vals = src[:vl]
        span = (vl - 1) * stride + width
        view = mem.ram_view(base, span, allocate=True)
        if view is not None:
            lanes = np.frombuffer(view, dtype=np.uint8)
            if stride == width:
                _masked_store(lanes.view(_DT_U[width * 8]), m, vals)
            else:
                rows = np.arange(vl, dtype=np.int64) * stride
                cols = np.arange(width, dtype=np.int64)
                byte_idx = rows[:, None] + cols[None, :]
                vb = vals.view(np.uint8).reshape(vl, width)
                if m is None:
                    lanes[byte_idx] = vb
                else:
                    lanes[byte_idx[m]] = vb[m]
        elif stride == width and m is None:
            # contiguous cross-page: every byte in the span is written,
            # so the bulk path allocates exactly the pages the
            # reference's per-element stores would.
            mem.store_bytes(base, vals.tobytes())
        else:
            # masked/strided cross-page: per-element keeps page
            # allocation identical (no page under an inactive lane).
            st = mem.store_int
            active = range(vl) if m is None else np.nonzero(m)[0]
            for e in active:
                st(base + int(e) * stride, int(vals[e]), width)
    s.side.mem_addr = base
    s.side.mem_size = max(vl, 1) * (stride if stride > 0 else width)


def _load_indexed_core(s: MachineState, i: Instruction, sew: int,
                       lmul: int) -> None:
    width = i.spec.mem_bytes
    base = s.regs[i.rs1]
    vl = s.vl
    mem = s.memory
    idx_g = _group(s, i.rs2, sew, lmul)
    dst = _group(s, i.rd, width * 8, _mem_group_lmul(s, width))
    if idx_g is None or dst is None or mem.has_mmio:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if vl:
        idx = idx_g[:vl]
        lo = base + int(idx.min())
        span = base + int(idx.max()) + width - lo
        view = mem.ram_view(lo, span) if span <= PAGE_SIZE else None
        if view is not None:
            buf = np.frombuffer(view, dtype=np.uint8)
            rel = (idx - idx.min()).astype(np.int64)
            cols = np.arange(width, dtype=np.int64)
            vals = buf[rel[:, None] + cols[None, :]].view(
                _DT_U[width * 8]).ravel()
            _masked_store(dst[:vl], m, vals)
        else:  # spans pages / unallocated: exact per-element gather
            ld = mem.load_int
            active = range(vl) if m is None else np.nonzero(m)[0]
            for e in active:
                dst[int(e)] = _DT_U[width * 8](ld(base + int(idx[e]),
                                                  width))
    s.side.mem_addr = base
    s.side.mem_size = max(vl, 1) * width


def _store_indexed_core(s: MachineState, i: Instruction, sew: int,
                        lmul: int) -> None:
    width = i.spec.mem_bytes
    base = s.regs[i.rs1]
    vl = s.vl
    mem = s.memory
    idx_g = _group(s, i.rs2, sew, lmul)
    src = _group(s, i.rs3, width * 8, _mem_group_lmul(s, width))
    if idx_g is None or src is None or mem.has_mmio:
        _fb(s, i)
        return
    m = _begin(s, i, vl)
    if vl and (m is None or m.any()):
        idx = idx_g[:vl]
        vals = src[:vl]
        if m is not None:
            idx, vals = idx[m], vals[m]
        lo = base + int(idx.min())
        span = base + int(idx.max()) + width - lo
        # Scatter order must match the sequential reference when lanes
        # overlap (duplicate indices, or elements closer than width).
        disjoint = (idx.size < 2
                    or int(np.min(np.diff(np.sort(idx.astype(
                        np.int64))))) >= width)
        view = (mem.ram_view(lo, span, allocate=True)
                if span <= PAGE_SIZE and disjoint else None)
        if view is not None:
            lanes = np.frombuffer(view, dtype=np.uint8)
            rel = (idx - idx.min()).astype(np.int64)
            cols = np.arange(width, dtype=np.int64)
            lanes[rel[:, None] + cols[None, :]] = vals.view(
                np.uint8).reshape(idx.size, width)
        else:
            st = mem.store_int
            for e in range(idx.size):
                st(base + int(idx[e]), int(vals[e]), width)
    s.side.mem_addr = base
    s.side.mem_size = max(vl, 1) * width


# -- registration ------------------------------------------------------------

def _np_register(name: str, core: Callable[..., None],
                 *args: Any) -> None:
    """Register a generic (runtime sew/lmul) handler plus its
    SEW/LMUL-specializing factory (the tier-3 constant-fold hook)."""
    def generic(s: MachineState, i: Instruction) -> None:
        core(s, i, s.sew, s.lmul, *args)

    def make_specialized(sew: int, lmul: int) -> VectorHandler:
        def specialized(s: MachineState, i: Instruction) -> None:
            s.vec_counters["specialized_ops"] += 1
            core(s, i, sew, lmul, *args)
        return specialized

    VECTOR_EXEC_NUMPY[name] = generic
    _SPECIALIZE[name] = make_specialized


for _sfx in ("vv", "vx", "vi"):
    _np_register(f"vadd.{_sfx}", _int_binop_core,
                 lambda a, b, w: a + b, False)
    _np_register(f"vsub.{_sfx}", _int_binop_core,
                 lambda a, b, w: a - b, False)
    _np_register(f"vrsub.{_sfx}", _int_binop_core,
                 lambda a, b, w: b - a, False)
    _np_register(f"vand.{_sfx}", _int_binop_core,
                 lambda a, b, w: a & b, False)
    _np_register(f"vor.{_sfx}", _int_binop_core,
                 lambda a, b, w: a | b, False)
    _np_register(f"vxor.{_sfx}", _int_binop_core,
                 lambda a, b, w: a ^ b, False)
    _np_register(f"vsll.{_sfx}", _int_binop_core,
                 lambda a, b, w: a << (b & (w - 1)), False)
    _np_register(f"vsrl.{_sfx}", _int_binop_core,
                 lambda a, b, w: a >> (b & (w - 1)), False)
    _np_register(f"vsra.{_sfx}", _int_binop_core,
                 lambda a, b, w: a >> (b & (w - 1)), True)
for _sfx in ("vv", "vx"):
    _np_register(f"vmin.{_sfx}", _int_binop_core,
                 lambda a, b, w: np.minimum(a, b), True)
    _np_register(f"vmax.{_sfx}", _int_binop_core,
                 lambda a, b, w: np.maximum(a, b), True)
    _np_register(f"vminu.{_sfx}", _int_binop_core,
                 lambda a, b, w: np.minimum(a, b), False)
    _np_register(f"vmaxu.{_sfx}", _int_binop_core,
                 lambda a, b, w: np.maximum(a, b), False)
    _np_register(f"vmul.{_sfx}", _int_binop_core,
                 lambda a, b, w: a * b, True)
    _np_register(f"vmulh.{_sfx}", _mulh_core, True)
    _np_register(f"vmulhu.{_sfx}", _mulh_core, False)
    _np_register(f"vmacc.{_sfx}", _mac_core, 1, True)
    _np_register(f"vnmsac.{_sfx}", _mac_core, -1, True)
    _np_register(f"vmadd.{_sfx}", _mac_core, 1, False)
    _np_register(f"vwmul.{_sfx}", _widening_core, True, False, True)
    _np_register(f"vwmulu.{_sfx}", _widening_core, True, False, False)
    _np_register(f"vwmacc.{_sfx}", _widening_core, True, True, True)
    _np_register(f"vwmaccu.{_sfx}", _widening_core, True, True, False)
    _np_register(f"vwadd.{_sfx}", _widening_core, False, False, True)
    _np_register(f"vwaddu.{_sfx}", _widening_core, False, False, False)
    _np_register(f"vmseq.{_sfx}", _compare_core,
                 lambda a, b: a == b, False)
    _np_register(f"vmsne.{_sfx}", _compare_core,
                 lambda a, b: a != b, False)
    _np_register(f"vmsltu.{_sfx}", _compare_core,
                 lambda a, b: a < b, False)
    _np_register(f"vmslt.{_sfx}", _compare_core,
                 lambda a, b: a < b, True)
    _np_register(f"vmsleu.{_sfx}", _compare_core,
                 lambda a, b: a <= b, False)
    _np_register(f"vmsle.{_sfx}", _compare_core,
                 lambda a, b: a <= b, True)

_np_register("vmerge.vvm", _merge_core)
_np_register("vmerge.vxm", _merge_core)
_np_register("vmv.v.v", _vmv_v_core)
_np_register("vmv.v.x", _vmv_v_core)
_np_register("vmv.v.i", _vmv_v_core)
_np_register("vredsum.vs", _reduce_core, "sum", True)
_np_register("vredmax.vs", _reduce_core, "max", True)
_np_register("vredmin.vs", _reduce_core, "min", True)
_np_register("vredmaxu.vs", _reduce_core, "max", False)
_np_register("vredminu.vs", _reduce_core, "min", False)
_np_register("vredand.vs", _reduce_core, "and", False)
_np_register("vredor.vs", _reduce_core, "or", False)
_np_register("vredxor.vs", _reduce_core, "xor", False)
_np_register("vid.v", _vid_core)
_np_register("vslideup.vx", _slideup_core)
_np_register("vslideup.vi", _slideup_core)
_np_register("vslidedown.vx", _slidedown_core)
_np_register("vslidedown.vi", _slidedown_core)
_np_register("vrgather.vv", _gather_core)

for _sfx in ("vv", "vf"):
    _np_register(f"vfadd.{_sfx}", _fp_binop_core, lambda a, b: a + b)
    _np_register(f"vfsub.{_sfx}", _fp_binop_core, lambda a, b: a - b)
    _np_register(f"vfmul.{_sfx}", _fp_binop_core, lambda a, b: a * b)
    _np_register(f"vfdiv.{_sfx}", _fp_binop_core, _fdiv_op)
    # min/max replicate the reference's Python min()/max() tie and NaN
    # behaviour: the SECOND operand wins only on a strict compare.
    _np_register(f"vfmin.{_sfx}", _fp_binop_core,
                 lambda a, b: np.where(b < a, b, a))
    _np_register(f"vfmax.{_sfx}", _fp_binop_core,
                 lambda a, b: np.where(b > a, b, a))
    _np_register(f"vfmacc.{_sfx}", _fp_mac_core, 1, True)
    _np_register(f"vfnmacc.{_sfx}", _fp_mac_core, -1, True)
    _np_register(f"vfmadd.{_sfx}", _fp_mac_core, 1, False)
_np_register("vfsqrt.v", _fsqrt_core)

for _w in (8, 16, 32, 64):
    VECTOR_EXEC_NUMPY[f"vle{_w}.v"] = _np_vload
    VECTOR_EXEC_NUMPY[f"vlse{_w}.v"] = _np_vload
    VECTOR_EXEC_NUMPY[f"vse{_w}.v"] = _np_vstore
    VECTOR_EXEC_NUMPY[f"vsse{_w}.v"] = _np_vstore
    _np_register(f"vlxei{_w}.v", _load_indexed_core)
    _np_register(f"vsxei{_w}.v", _store_indexed_core)

VECTOR_EXEC_NUMPY["vcpop.m"] = _vcpop_np
for _mn, _op in (("vmand.mm", lambda a, b: a & b),
                 ("vmor.mm", lambda a, b: a | b),
                 ("vmxor.mm", lambda a, b: a ^ b),
                 ("vmnand.mm", lambda a, b: 1 - (a & b)),
                 ("vmnor.mm", lambda a, b: 1 - (a | b)),
                 ("vmxnor.mm", lambda a, b: 1 - (a ^ b))):
    def _mk_mask(op: Callable[[Any, Any], Any]) -> VectorHandler:
        def handler(s: MachineState, i: Instruction) -> None:
            _mask_logical_core(s, i, op)
        return handler
    VECTOR_EXEC_NUMPY[_mn] = _mk_mask(_op)

#: scalar/config ops shared verbatim with the reference engine (no
#: lanes to batch, no counters).
_SHARED = ("vsetvli", "vsetvl", "vmv.x.s", "vmv.s.x")
for _mn in _SHARED:
    VECTOR_EXEC_NUMPY[_mn] = VECTOR_EXEC_REF[_mn]


def _ref_fallback(name: str) -> VectorHandler:
    ref = VECTOR_EXEC_REF[name]

    def handler(s: MachineState, i: Instruction) -> None:
        s.vec_counters["fallback_ops"] += 1
        ref(s, i)
    return handler


# Everything the numpy engine does not batch bit-identically runs the
# reference per-element path, counted as a permanent fallback:
# div/rem (C-truncation semantics) and ordered FP reductions.
for _mn in VECTOR_EXEC_REF:
    if _mn not in VECTOR_EXEC_NUMPY:
        VECTOR_EXEC_NUMPY[_mn] = _ref_fallback(_mn)


# ===========================================================================
# Engine selection.
# ===========================================================================

_ENGINES: dict[str, dict[str, VectorHandler]] = {
    "ref": VECTOR_EXEC_REF, "numpy": VECTOR_EXEC_NUMPY}
_active_engine = "numpy"


def select_engine(name: str) -> str:
    """Swap the live ``VECTOR_EXEC`` table in place.

    Tier-1 picks the change up immediately; tier-2/3 engines bind
    handlers at translate time, so build a fresh Emulator after
    switching.
    """
    global _active_engine
    key = (name or "numpy").strip().lower()
    if key not in _ENGINES:
        raise ValueError(
            f"unknown vector engine {name!r} (expected one of "
            f"{sorted(_ENGINES)})")
    VECTOR_EXEC.clear()
    VECTOR_EXEC.update(_ENGINES[key])
    _active_engine = key
    return key


def active_engine() -> str:
    """Name of the engine currently wired into ``VECTOR_EXEC``."""
    return _active_engine


def specialize(mnemonic: str, sew: int, lmul: int) -> VectorHandler | None:
    """A handler with SEW/LMUL constant-folded, for tier-3 blocks where
    vtype is provably static; None when no specialization applies
    (reference engine active, or a non-specializable mnemonic)."""
    if _active_engine != "numpy":
        return None
    factory = _SPECIALIZE.get(mnemonic)
    return factory(sew, lmul) if factory is not None else None


select_engine(os.environ.get("REPRO_VECTOR_ENGINE", "numpy"))

__all__ = ["VECTOR_EXEC", "VECTOR_EXEC_REF", "VECTOR_EXEC_NUMPY",
           "VectorHandler", "select_engine", "active_engine",
           "specialize"]
