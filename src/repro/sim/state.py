"""Architectural machine state for the functional emulator."""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..isa.csr import (
    CSR_CYCLE,
    CSR_INSTRET,
    CSR_TIME,
    CSR_VL,
    CSR_VTYPE,
    CsrFile,
    PrivMode,
)
from .memory import Memory

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1


def to_signed(value: int, bits: int = 64) -> int:
    value &= (1 << bits) - 1
    return value - (1 << bits) if value >= 1 << (bits - 1) else value


def to_unsigned(value: int, bits: int = 64) -> int:
    return value & ((1 << bits) - 1)


def sext32(value: int) -> int:
    """Sign-extend the low 32 bits of *value* into a 64-bit value."""
    value &= MASK32
    return (value | ~MASK32) & MASK64 if value >= 1 << 31 else value


def f32_bits_to_float(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & MASK32))[0]


def float_to_f32_bits(value: float) -> int:
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except OverflowError:
        sign = 0x8000_0000 if value < 0 else 0
        return sign | 0x7F80_0000  # +/- infinity

def f64_bits_to_float(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def float_to_f64_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def f16_bits_to_float(bits: int) -> float:
    return struct.unpack("<e", struct.pack("<H", bits & 0xFFFF))[0]


def float_to_f16_bits(value: float) -> int:
    try:
        return struct.unpack("<H", struct.pack("<e", value))[0]
    except OverflowError:
        return 0xFC00 if value < 0 else 0x7C00  # +/- infinity


@dataclass(slots=True)
class SideEffects:
    """Per-instruction scratch the emulator turns into a DynInst."""

    mem_addr: int = 0
    mem_size: int = 0
    taken: bool = False
    target: int = 0
    div_bits: int = 0      # dividend magnitude for early-out dividers

    def reset(self) -> None:
        self.mem_addr = 0
        self.mem_size = 0
        self.taken = False
        self.target = 0
        self.div_bits = 0


class MachineState:
    """Registers, CSRs, vector state, and memory for one hart."""

    VLEN_DEFAULT = 128  # bits; two 64-bit slices (section VII)

    def __init__(self, memory: Memory | None = None, hart_id: int = 0,
                 vlen: int = VLEN_DEFAULT):
        self.memory = memory if memory is not None else Memory()
        self.pc = 0
        self.regs: list[int] = [0] * 32
        self.fregs: list[int] = [0] * 32
        self.vlen = vlen
        self.vlenb = vlen // 8
        # The 32 VLEN-bit vector registers live in ONE contiguous numpy
        # buffer so the batched engine (repro.sim.exec_vector) can
        # reinterpret whole register groups as typed lanes without
        # copying.  ``vregs`` keeps the historical per-register byte
        # interface as writable memoryview slices of that buffer — the
        # per-element reference engine mutates registers through them
        # and the numpy views observe every write (same storage).
        self.vbuf: np.ndarray = np.zeros(32 * self.vlenb, dtype=np.uint8)
        _mv = self.vbuf.data  # writable memoryview over the same storage
        self.vregs: list[memoryview] = [
            _mv[r * self.vlenb:(r + 1) * self.vlenb] for r in range(32)]
        # Cached per-SEW reinterpretations of the whole file (unsigned,
        # signed, and float lanes).  Views are free to create but the
        # batched handlers hit these dicts on every instruction.
        self.vview_u: dict[int, np.ndarray] = {
            8: self.vbuf, 16: self.vbuf.view(np.uint16),
            32: self.vbuf.view(np.uint32), 64: self.vbuf.view(np.uint64)}
        self.vview_s: dict[int, np.ndarray] = {
            8: self.vbuf.view(np.int8), 16: self.vbuf.view(np.int16),
            32: self.vbuf.view(np.int32), 64: self.vbuf.view(np.int64)}
        self.vview_f: dict[int, np.ndarray] = {
            16: self.vbuf.view(np.float16), 32: self.vbuf.view(np.float32),
            64: self.vbuf.view(np.float64)}
        #: sim.vector.* counters (batched ops, fallbacks, mask density);
        #: only the numpy engine bumps these, the reference engine and
        #: the scalar pipeline leave them at zero.
        self.vec_counters: dict[str, int] = {
            "batched_ops": 0, "specialized_ops": 0, "fallback_ops": 0,
            "masked_ops": 0, "elems_total": 0, "elems_active": 0}
        self.vl = 0
        self.vtype = 0
        self.sew = 64
        self.lmul = 1
        self.priv = PrivMode.MACHINE
        self.csrs = CsrFile(hart_id=hart_id)
        self.instret = 0
        self.reservation: int | None = None  # LR/SC reservation address
        self.side = SideEffects()
        self.csrs.bind_counter(CSR_INSTRET, lambda: self.instret)
        self.csrs.bind_counter(CSR_CYCLE, lambda: self.instret)
        self.csrs.bind_counter(CSR_TIME, lambda: self.instret)
        self.csrs.bind_counter(CSR_VL, lambda: self.vl)
        self.csrs.bind_counter(CSR_VTYPE, lambda: self.vtype)

    # -- integer registers ---------------------------------------------------

    def read_x(self, index: int) -> int:
        return self.regs[index]

    def write_x(self, index: int, value: int) -> None:
        if index:
            self.regs[index] = value & MASK64

    # -- vector helpers --------------------------------------------------------

    def set_vtype(self, vtype: int, avl: int) -> int:
        """Apply a vsetvl and return the granted vl (VLMAX-clamped)."""
        from ..asm.assembler import decode_vtype

        self.vtype = vtype
        self.sew, self.lmul = decode_vtype(vtype)
        vlmax = self.vlen * self.lmul // self.sew
        self.vl = min(avl, vlmax)
        return self.vl

    @property
    def vlmax(self) -> int:
        return self.vlen * self.lmul // self.sew

    def vreg_group(self, start: int) -> bytearray:
        """Concatenated bytes of the LMUL register group starting at *start*."""
        out = bytearray()
        for i in range(self.lmul):
            out += self.vregs[(start + i) % 32]
        return out

    def write_vreg_group(self, start: int, data: bytearray) -> None:
        """Write a group back IN PLACE (the numpy views must see it)."""
        for i in range(self.lmul):
            chunk = bytes(data[i * self.vlenb:(i + 1) * self.vlenb])
            if len(chunk) < self.vlenb:
                chunk = chunk + bytes(self.vlenb - len(chunk))
            self.vregs[(start + i) % 32][:] = chunk

    def mask_bit(self, element: int) -> bool:
        """Bit *element* of the mask register v0."""
        return bool(self.vregs[0][element >> 3] >> (element & 7) & 1)
