"""Basic-block translation cache: decode straight-line runs once, replay fast.

The precise interpreter (:meth:`repro.sim.emulator.Emulator.step`) pays
per retired instruction for a handler-dict lookup, a side-effect reset,
a fresh :class:`~repro.sim.trace.DynInst` allocation, and the
fence/trap bookkeeping.  Profiles show those fixed costs outweigh the
actual instruction semantics by ~3:1, so this module translates each
basic block exactly once into a :class:`TranslatedBlock`:

* handler references are resolved at translation time (no
  ``SCALAR_EXEC``/``VECTOR_EXEC`` dict lookup per step),
* fall-through PCs are pre-computed per entry,
* each entry owns a reusable ``DynInst`` slot, pre-filled with every
  field that is constant across executions (pc, inst, and — for pure
  compute instructions — the whole record minus seq/vl/sew),
* instructions that provably produce no side effects, never read the
  PC and never trap take a short path that is just the handler call
  plus three slot writes.

Architectural behavior is preserved exactly: the full path below is a
line-for-line equivalent of ``Emulator.step`` (same trap delivery,
same ecall shim, same fence invalidation, same DynInst field values),
and the block dispatcher re-checks machine-check banks between blocks.
``fence.i``/``icache``/``sfence.vma`` invalidate the whole cache.
Self-modifying stores that hit the *not-yet-executed* tail of the
block being translated-and-run for the first time invalidate that tail
so the fresh bytes are re-decoded, matching the precise interpreter's
decode-at-first-execution order (see DESIGN.md for the one accepted
deviation: SMC without ``fence.i`` after a partial first execution).

Record lifetime contract: the lists yielded by
``Emulator.fast_trace`` reuse their ``DynInst`` slots — each batch is
only valid until the next batch is requested.  Consumers that need to
retain records (e.g. equivalence tests) must copy them.
"""

from __future__ import annotations

from ..isa.csr import PrivMode, TrapCause
from ..isa.instructions import InstrClass
from .exec_scalar import SCALAR_EXEC, EcallShim, Trap
from .exec_vector import VECTOR_EXEC
from .syscalls import ExitRequest
from .trace import DynInst

#: longest straight-line run translated into one block
MAX_BLOCK_INSTS = 64
#: cached blocks before the whole cache is flushed (bounds memory under
#: JIT-style guests that keep generating fresh code regions)
BLOCK_CACHE_LIMIT = 4096

# Per-entry flag bits.  flags == 0 is the short "pure compute" path.
FLAG_FULL = 1          # needs the step-equivalent path
FLAG_MAY_WRITE = 2     # store/AMO: may hit translated code
FLAG_FENCE_I = 4       # fence.i / icache.*: flush decode + block caches
FLAG_SFENCE = 8        # sfence.vma: same, plus a TLB flush
FLAG_VECTOR = 16       # VECTOR_EXEC handler: return value is discarded

#: classes that may redirect the PC and therefore end a block
_TERMINATORS = frozenset({InstrClass.BRANCH, InstrClass.JUMP,
                          InstrClass.SYSTEM, InstrClass.CSR})
#: classes whose handlers never touch ``state.side``, never read
#: ``state.pc`` and never raise (architecturally) — eligible for the
#: short path.  DIV is excluded (records div_bits), auipc reads the PC.
_SIMPLE_CLASSES = frozenset({InstrClass.ALU, InstrClass.MUL,
                             InstrClass.FP, InstrClass.FMUL,
                             InstrClass.FDIV})
_PC_READERS = frozenset({"auipc"})
_WRITE_CLASSES = frozenset({InstrClass.STORE, InstrClass.VSTORE,
                            InstrClass.AMO})

_MASK64 = (1 << 64) - 1


class TranslatedBlock:
    """One decoded straight-line run.

    ``entries`` holds ``(handler, inst, pc, fall, flags, rec)`` tuples
    in program order; ``records`` is the parallel list of reusable
    ``DynInst`` slots, so a fully executed block can yield it without
    any per-instruction list building.
    """

    __slots__ = ("start", "end", "entries", "records", "run_count",
                 "sanitize")

    def __init__(self, start: int, end: int, entries: list):
        self.start = start
        self.end = end          # exclusive byte bound of translated code
        self.entries = entries
        self.records = [entry[5] for entry in entries]
        self.run_count = 0
        #: lazily built repro.analysis.sanitize._BlockSummary
        self.sanitize = None


def _fill(rec: DynInst, state, side, next_pc: int) -> None:
    """Write one full record (cold paths; the hot path inlines this)."""
    rec.seq = state.instret
    rec.next_pc = next_pc
    rec.taken = side.taken
    rec.target = side.target
    rec.mem_addr = side.mem_addr
    rec.mem_size = side.mem_size
    rec.vl = state.vl
    rec.sew = state.sew
    rec.div_bits = side.div_bits


class BlockEngine:
    """Block cache + dispatcher state for one :class:`Emulator`."""

    def __init__(self, emulator):
        self.emu = emulator
        self.blocks: dict[int, TranslatedBlock] = {}
        # counters (surfaced through CoreStats.extra / bench output)
        self.translated_blocks = 0
        self.translated_insts = 0
        self.executions = 0
        self.flushes = 0
        self.smc_invalidations = 0

    # -- cache maintenance ---------------------------------------------------

    def invalidate(self) -> None:
        """Drop every translation (fence.i / sfence.vma semantics)."""
        if self.blocks:
            self.blocks.clear()
            self.flushes += 1
        codegen = self.emu._codegen
        if codegen is not None:
            codegen.invalidate()

    def _invalidate_tail(self, block: TranslatedBlock, executed: int) -> None:
        """A store hit the untranslated-yet-unexecuted tail of *block*.

        Drop the block and evict the tail's decode-cache entries (they
        were filled at translation time from the pre-store bytes) so
        the next dispatch re-decodes the fresh bytes — the order the
        precise interpreter would have seen.
        """
        self.smc_invalidations += 1
        self.blocks.pop(block.start, None)
        codegen = self.emu._codegen
        if codegen is not None:
            codegen.drop(block.start)
        decode_cache = self.emu._decode_cache
        for entry in block.entries[executed:]:
            decode_cache.pop(entry[2], None)

    # -- translation ---------------------------------------------------------

    def translate(self, pc: int) -> TranslatedBlock:
        """Decode the basic block starting at *pc* and cache it.

        Raises exactly what the precise interpreter would raise on its
        first step at *pc* (a fetch ``Trap`` or an ``EmulatorError``);
        decode problems *past* the first instruction just truncate the
        block, so the error surfaces when execution actually reaches
        the bad PC.
        """
        from .emulator import EmulatorError

        emu = self.emu
        entries: list = []
        cur = pc
        fall = pc
        while True:
            try:
                inst = emu._fetch(cur)
            except (Trap, EmulatorError):
                if not entries:
                    raise
                break
            spec = inst.spec
            mnemonic = spec.mnemonic
            vector = False
            handler = SCALAR_EXEC.get(mnemonic)
            if handler is None:
                handler = VECTOR_EXEC.get(mnemonic)
                if handler is None:
                    if not entries:
                        raise EmulatorError(
                            f"no semantics for {mnemonic} at pc={cur:#x}")
                    break
                vector = True
            fall = (cur + inst.size) & _MASK64
            iclass = spec.iclass
            if iclass in _SIMPLE_CLASSES and mnemonic not in _PC_READERS:
                flags = 0
            else:
                flags = FLAG_FULL
                if vector:
                    flags |= FLAG_VECTOR
                if iclass in _WRITE_CLASSES:
                    flags |= FLAG_MAY_WRITE
                if mnemonic in ("fence.i", "icache.iall", "icache.iva"):
                    flags |= FLAG_FENCE_I
                elif mnemonic == "sfence.vma":
                    flags |= FLAG_SFENCE
            rec = DynInst(seq=0, pc=cur, inst=inst, next_pc=fall)
            entries.append((handler, inst, cur, fall, flags, rec))
            if iclass in _TERMINATORS or len(entries) >= MAX_BLOCK_INSTS:
                break
            cur = fall
        block = TranslatedBlock(pc, fall, entries)
        if len(self.blocks) >= BLOCK_CACHE_LIMIT:
            self.blocks.clear()
            self.flushes += 1
        self.blocks[pc] = block
        self.translated_blocks += 1
        self.translated_insts += len(entries)
        return block

    # -- execution -----------------------------------------------------------

    def execute(self, block: TranslatedBlock, budget: int,
                record: bool = True):
        """Run *block* (at most *budget* instructions).

        Returns ``(retired_count, batch)`` where *batch* is the list of
        reused ``DynInst`` slots for the executed prefix (``None`` when
        *record* is false).  The loop below is the fast twin of
        ``Emulator.step``: every architectural effect, trap path and
        record field matches the precise interpreter bit for bit.
        """
        emu = self.emu
        state = emu.state
        side = state.side
        entries = block.entries
        if budget < len(entries):
            entries = entries[:budget]
        first_run = block.run_count == 0
        block.run_count += 1
        self.executions += 1
        start_ret = state.instret
        # The simple-path loop keeps instret/vl/sew in locals: simple
        # handlers never read them (no CSR access, no vector config),
        # so ``state`` only needs syncing around full-path entries.
        # On any exit the true count is max(state.instret, instret) —
        # whichever side advanced last.
        instret = start_ret
        vl_now = state.vl
        sew_now = state.sew
        recent_append = emu._recent.append
        try:
            for handler, inst, pc, fall, flags, rec in entries:
                if flags == 0:
                    # Pure compute: no side effects, no PC read, no
                    # traps.  rec.next_pc/taken/target/mem/div were
                    # pre-filled at translation time.
                    handler(state, inst)
                    if record:
                        rec.seq = instret
                        rec.vl = vl_now
                        rec.sew = sew_now
                    instret += 1
                    continue

                # -- full, step()-equivalent path -----------------------
                state.instret = instret
                state.pc = pc
                # side.reset() spelled out: one method call per
                # non-simple instruction adds up on branchy code.
                side.mem_addr = 0
                side.mem_size = 0
                side.taken = False
                side.target = 0
                side.div_bits = 0
                recent_append((pc, inst))
                next_pc = None
                try:
                    next_pc = handler(state, inst)
                except EcallShim:
                    if state.priv == PrivMode.MACHINE:
                        try:
                            emu.syscalls.handle(state)
                        except ExitRequest as exit_req:
                            emu.exit_code = exit_req.code
                            emu.halted = True
                        # fall through: retires like a plain instruction
                    else:
                        cause = (TrapCause.ECALL_FROM_U
                                 if state.priv == PrivMode.USER
                                 else TrapCause.ECALL_FROM_S)
                        emu._take_trap(Trap(cause, 0))
                        if record:
                            _fill(rec, state, side, state.pc)
                        state.instret += 1
                        break
                except ExitRequest as exit_req:
                    emu.exit_code = exit_req.code
                    emu.halted = True
                except Trap as trap:
                    emu._take_trap(trap)
                    if record:
                        _fill(rec, state, side, state.pc)
                    state.instret += 1
                    break

                if flags & (FLAG_FENCE_I | FLAG_SFENCE):
                    emu._decode_cache.clear()
                    self.invalidate()
                    if flags & FLAG_SFENCE and emu.mmu is not None:
                        emu.mmu.flush_tlb()
                if flags & FLAG_VECTOR:
                    next_pc = None  # step() ignores vector return values
                if next_pc is None:
                    next_pc = fall
                if record:
                    rec.seq = state.instret
                    rec.next_pc = next_pc
                    rec.taken = side.taken
                    rec.target = side.target
                    rec.mem_addr = side.mem_addr
                    rec.mem_size = side.mem_size
                    rec.vl = state.vl
                    rec.sew = state.sew
                    rec.div_bits = side.div_bits
                state.pc = next_pc
                state.instret += 1
                instret = state.instret
                vl_now = state.vl
                sew_now = state.sew

                if flags & FLAG_MAY_WRITE and first_run and side.mem_size:
                    addr = side.mem_addr
                    if addr < block.end and addr + side.mem_size > fall:
                        self._invalidate_tail(
                            block, state.instret - start_ret)
                        break
                if emu.halted or next_pc != fall:
                    break
            else:
                # Ran off the end of a straight-line (or budget-cut)
                # block: resume at the last fall-through.
                state.pc = entries[-1][3]
        except Exception as exc:
            from .emulator import EmulatorError

            if instret > state.instret:
                state.instret = instret
            if isinstance(exc, EmulatorError):
                raise
            retired = state.instret - start_ret
            index = min(retired, len(entries) - 1)
            bad = entries[index]
            raise EmulatorError(
                emu._crash_report(bad[2], bad[1].spec.mnemonic,
                                  exc)) from exc

        if instret > state.instret:
            state.instret = instret
        retired = state.instret - start_ret
        if not record:
            return retired, None
        records = block.records
        if retired == len(records):
            return retired, records
        return retired, records[:retired]

    def counters(self) -> dict[str, int]:
        return {
            "translated_blocks": self.translated_blocks,
            "translated_insts": self.translated_insts,
            "block_executions": self.executions,
            "block_flushes": self.flushes,
            "smc_invalidations": self.smc_invalidations,
        }


__all__ = ["BlockEngine", "TranslatedBlock", "MAX_BLOCK_INSTS",
           "BLOCK_CACHE_LIMIT"]
