"""Minimal bare-metal syscall shim (newlib-flavoured ecall ABI).

Workloads signal completion and print results through ``ecall`` with the
syscall number in a7.  Supported calls: exit(93), write(64) to the
captured stdout buffer, and a brk-style sbrk(214) over the heap region.
"""

from __future__ import annotations

from ..asm.program import HEAP_BASE
from .state import MachineState, to_signed

SYS_EXIT = 93
SYS_WRITE = 64
SYS_SBRK = 214


class ExitRequest(Exception):
    """Raised by the shim when the program calls exit."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class SyscallShim:
    """Dispatches ecall traps; captures program output."""

    def __init__(self):
        self.stdout = bytearray()
        self._brk = HEAP_BASE

    def handle(self, state: MachineState) -> None:
        number = state.regs[17]  # a7
        a0, a1, a2 = state.regs[10], state.regs[11], state.regs[12]
        if number == SYS_EXIT:
            raise ExitRequest(to_signed(a0, 32))
        if number == SYS_WRITE:
            data = state.memory.load_bytes(a1, a2)
            self.stdout += data
            state.write_x(10, a2)
            return
        if number == SYS_SBRK:
            old = self._brk
            self._brk += a0
            state.write_x(10, old)
            return
        raise ValueError(f"unsupported syscall {number}")

    @property
    def stdout_text(self) -> str:
        return self.stdout.decode(errors="replace")
