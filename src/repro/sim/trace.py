"""Dynamic-instruction records consumed by the timing model.

The timing pipeline is trace-driven: the functional emulator retires an
instruction and emits one :class:`DynInst` carrying everything the
cycle model needs — control-flow outcome for predictor training, memory
footprint for the cache/TLB hierarchy, and the static
:class:`~repro.isa.instructions.Instruction` for operand dependences.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instructions import Instruction


@dataclass(slots=True)
class DynInst:
    """One retired instruction in the dynamic stream."""

    seq: int
    pc: int
    inst: Instruction
    next_pc: int
    # Control flow (valid when inst is a branch/jump).
    taken: bool = False
    target: int = 0
    # Memory (valid for loads/stores/AMOs; vector accesses set
    # mem_size to the whole access footprint).
    mem_addr: int = 0
    mem_size: int = 0
    # Vector state at this instruction (for slice timing).
    vl: int = 0
    sew: int = 0
    # Dividend magnitude (bit length) for early-out divider timing.
    div_bits: int = 0

    @property
    def is_control(self) -> bool:
        return self.inst.spec.iclass.value in ("branch", "jump")

    @property
    def is_load(self) -> bool:
        return self.inst.spec.iclass.value in ("load", "vload", "amo")

    @property
    def is_store(self) -> bool:
        return self.inst.spec.iclass.value in ("store", "vstore", "amo")
