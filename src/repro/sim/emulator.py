"""The functional RV64GCV emulator.

Executes assembled programs instruction-by-instruction and (optionally)
yields a :class:`~repro.sim.trace.DynInst` stream for the timing model.
Decoding goes through the real binary encodings — the emulator fetches
bytes from memory, checks the RVC parcel bits, and expands/decodes, so
the assembler and decoder continuously validate each other.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..asm.program import STACK_TOP, Program
from ..isa import compressed
from ..isa.csr import TrapCause
from ..isa.encoding import decode_word
from ..isa.instructions import Instruction
from .exec_scalar import SCALAR_EXEC, EcallShim, Trap
from .exec_vector import VECTOR_EXEC
from .memory import Memory
from .state import MASK64, MachineState
from .syscalls import ExitRequest, SyscallShim
from .trace import DynInst


class EmulatorError(Exception):
    """Raised for unrecoverable emulation problems (bad fetch etc.)."""


class Emulator:
    """One hart running a program on a (possibly shared) memory."""

    def __init__(self, program: Program, memory: Memory | None = None,
                 hart_id: int = 0, stack_top: int = STACK_TOP,
                 load: bool = True, interrupt_fn=None,
                 enable_mmu: bool = False):
        self.program = program
        self.state = MachineState(memory=memory, hart_id=hart_id)
        #: optional zero-arg callable returning pending mip bits
        #: (wired to a CLINT/PLIC via repro.smp.interrupts)
        self.interrupt_fn = interrupt_fn
        self.mmu = None
        if enable_mmu:
            from .vm import VirtualMemoryView

            self.mmu = VirtualMemoryView(self.state.memory, self.state)
            self.state.memory = self.mmu
        if load:
            self.state.memory.load_program(program)
        self.state.pc = program.entry
        self.state.regs[2] = stack_top - hart_id * 0x1_0000  # sp
        self.state.regs[3] = program.data_base + 0x800       # gp anchor
        self.syscalls = SyscallShim()
        self.exit_code: int | None = None
        self.halted = False
        self._decode_cache: dict[int, Instruction] = {}
        self.instruction_limit = 50_000_000

    # -- fetch/decode -----------------------------------------------------------

    def _fetch(self, pc: int) -> Instruction:
        cached = self._decode_cache.get(pc)
        if cached is not None:
            return cached
        mem = self.state.memory
        if self.mmu is not None:
            half = int.from_bytes(self.mmu.fetch_bytes(pc, 2), "little")
        else:
            half = mem.load_int(pc, 2)
        try:
            if compressed.is_compressed(half):
                inst = compressed.expand(half)
            else:
                if self.mmu is not None:
                    upper = int.from_bytes(
                        self.mmu.fetch_bytes(pc + 2, 2), "little")
                else:
                    upper = mem.load_int(pc + 2, 2)
                word = half | (upper << 16)
                inst = decode_word(word)
        except Trap:
            raise
        except Exception as exc:
            raise EmulatorError(
                f"cannot decode instruction at pc={pc:#x}: {exc}") from exc
        if self.mmu is None or not self.mmu._active():
            self._decode_cache[pc] = inst
        return inst

    # -- execution --------------------------------------------------------------

    def step(self) -> DynInst:
        """Execute one instruction and return its dynamic record."""
        state = self.state
        if self.interrupt_fn is not None:
            self._check_interrupts()
        pc = state.pc
        try:
            inst = self._fetch(pc)
        except Trap as trap:
            self._take_trap(trap)
            state.instret += 1
            from ..isa.instructions import SPECS
            nop = Instruction(spec=SPECS["addi"])
            return DynInst(seq=state.instret, pc=pc, inst=nop,
                           next_pc=state.pc)
        side = state.side
        side.reset()
        mnemonic = inst.spec.mnemonic

        handler = SCALAR_EXEC.get(mnemonic)
        next_pc: int | None = None
        try:
            if handler is not None:
                next_pc = handler(state, inst)
            else:
                vhandler = VECTOR_EXEC.get(mnemonic)
                if vhandler is None:
                    raise EmulatorError(
                        f"no semantics for {mnemonic} at pc={pc:#x}")
                vhandler(state, inst)
        except EcallShim:
            from ..isa.csr import PrivMode, TrapCause

            if state.priv == PrivMode.MACHINE:
                try:
                    self.syscalls.handle(state)
                except ExitRequest as exit_req:
                    self.exit_code = exit_req.code
                    self.halted = True
            else:
                cause = TrapCause.ECALL_FROM_U                     if state.priv == PrivMode.USER                     else TrapCause.ECALL_FROM_S
                self._take_trap(Trap(cause, 0))
                record = self._record(pc, inst, state.pc)
                state.instret += 1
                return record
        except ExitRequest as exit_req:
            self.exit_code = exit_req.code
            self.halted = True
        except Trap as trap:
            self._take_trap(trap)
            next_pc = state.pc  # updated by the trap handler
            record = self._record(pc, inst, next_pc)
            state.pc = next_pc
            state.instret += 1
            return record

        if mnemonic == "sfence.vma":
            self._decode_cache.clear()
            if self.mmu is not None:
                self.mmu.flush_tlb()
        if next_pc is None:
            next_pc = (pc + inst.size) & MASK64
        record = self._record(pc, inst, next_pc)
        state.pc = next_pc
        state.instret += 1
        return record

    def _record(self, pc: int, inst: Instruction, next_pc: int) -> DynInst:
        side = self.state.side
        return DynInst(
            seq=self.state.instret, pc=pc, inst=inst, next_pc=next_pc,
            taken=side.taken, target=side.target,
            mem_addr=side.mem_addr, mem_size=side.mem_size,
            vl=self.state.vl, sew=self.state.sew,
            div_bits=side.div_bits)

    def _check_interrupts(self) -> None:
        """Take the highest-priority enabled pending interrupt, if any."""
        from ..isa.csr import (
            CSR_MCAUSE,
            CSR_MEPC,
            CSR_MIE,
            CSR_MSTATUS,
            CSR_MTVEC,
        )

        csrs = self.state.csrs
        mstatus = csrs.read(CSR_MSTATUS)
        if not mstatus & 0x8:        # mstatus.MIE clear: masked
            return
        pending = self.interrupt_fn() & csrs.read(CSR_MIE)
        if not pending:
            return
        # Priority order per the privileged spec: MEI > MSI > MTI.
        for bit, code in ((11, 11), (3, 3), (7, 7)):
            if (pending >> bit) & 1:
                break
        else:  # pragma: no cover
            return
        mtvec = csrs.read(CSR_MTVEC)
        if mtvec == 0:
            raise EmulatorError("interrupt pending with no mtvec handler")
        from ..isa.csr import PrivMode

        csrs.write(CSR_MEPC, self.state.pc)
        csrs.write(CSR_MCAUSE, (1 << 63) | code)
        # Push the interrupt-enable stack (MPIE <- MIE, MIE <- 0) and
        # record the interrupted privilege in MPP.
        mpie = (mstatus >> 3) & 1
        mstatus = (mstatus & ~0x88 & ~(3 << 11)) | (mpie << 7) \
            | (int(self.state.priv) << 11)
        csrs.write(CSR_MSTATUS, mstatus)
        self.state.priv = PrivMode.MACHINE
        self.state.pc = mtvec & ~3

    def _take_trap(self, trap: Trap) -> None:
        from ..isa.csr import CSR_MCAUSE, CSR_MEPC, CSR_MTVAL, CSR_MTVEC

        from ..isa.csr import CSR_MSTATUS, PrivMode

        csrs = self.state.csrs
        csrs.write(CSR_MEPC, self.state.pc)
        csrs.write(CSR_MCAUSE, trap.cause.value)
        csrs.write(CSR_MTVAL, trap.tval)
        mtvec = csrs.read(CSR_MTVEC)
        if mtvec == 0:
            raise EmulatorError(
                f"trap {trap.cause.name} at pc={self.state.pc:#x} "
                f"with no mtvec handler")
        # Record the interrupted privilege in mstatus.MPP; enter M-mode.
        mstatus = csrs.read(CSR_MSTATUS)
        mstatus = (mstatus & ~(3 << 11)) | (int(self.state.priv) << 11)
        csrs.write(CSR_MSTATUS, mstatus)
        self.state.priv = PrivMode.MACHINE
        self.state.pc = mtvec & ~3

    def run(self, max_steps: int | None = None) -> int:
        """Run to exit (or *max_steps*); returns the exit code."""
        limit = max_steps if max_steps is not None else self.instruction_limit
        steps = 0
        while not self.halted:
            if steps >= limit:
                raise EmulatorError(
                    f"instruction limit {limit} exceeded at "
                    f"pc={self.state.pc:#x}")
            self.step()
            steps += 1
        return self.exit_code if self.exit_code is not None else -1

    def trace(self, max_steps: int | None = None) -> Iterator[DynInst]:
        """Yield the dynamic instruction stream until exit."""
        limit = max_steps if max_steps is not None else self.instruction_limit
        steps = 0
        while not self.halted and steps < limit:
            yield self.step()
            steps += 1
        if not self.halted and steps >= limit:
            raise EmulatorError(
                f"instruction limit {limit} exceeded at "
                f"pc={self.state.pc:#x}")

    @property
    def stdout(self) -> str:
        return self.syscalls.stdout_text


def run_program(program: Program, max_steps: int | None = None) -> Emulator:
    """Convenience: run *program* to completion, return the emulator."""
    emulator = Emulator(program)
    emulator.run(max_steps)
    return emulator
