"""The functional RV64GCV emulator.

Executes assembled programs instruction-by-instruction and (optionally)
yields a :class:`~repro.sim.trace.DynInst` stream for the timing model.
Decoding goes through the real binary encodings — the emulator fetches
bytes from memory, checks the RVC parcel bits, and expands/decodes, so
the assembler and decoder continuously validate each other.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from ..asm.program import STACK_TOP, Program
from ..isa import compressed
from ..isa.csr import (
    CSR_MCAUSE,
    CSR_MCECNT,
    CSR_MCERR,
    CSR_MCERR_ADDR,
    CSR_MEPC,
    CSR_MIE,
    CSR_MSTATUS,
    CSR_MTVAL,
    CSR_MTVEC,
    MCERR_SOURCE_SHIFT,
    MCERR_UNCORRECTABLE,
    MCERR_VALID,
    PrivMode,
    TrapCause,
)
from ..isa.encoding import decode_word
from ..isa.instructions import SPECS, Instruction
from .exec_scalar import SCALAR_EXEC, EcallShim, Trap
from .exec_vector import VECTOR_EXEC
from .memory import Memory
from .state import MASK64, MachineState
from .syscalls import ExitRequest, SyscallShim
from .trace import DynInst


#: how many retired instructions the crash/watchdog backtrace keeps
RECENT_WINDOW = 16


class EmulatorError(Exception):
    """Raised for unrecoverable emulation problems (bad fetch etc.)."""


class WatchdogExpired(EmulatorError):
    """The instruction-limit watchdog fired (a hang, not a halt).

    Distinguishable from a normal exit and carries a post-mortem dump:
    ``pc``, the integer register file, a disassembled backtrace of the
    last retired instructions, and a ``partial`` snapshot (retired
    instruction count plus the functional-engine counters) so a
    bounded run still returns data instead of discarding everything it
    measured before the budget expired.
    """

    def __init__(self, message: str, pc: int, regs: list[int],
                 backtrace: list[str],
                 partial: dict | None = None):
        super().__init__(message)
        self.pc = pc
        self.regs = regs
        self.backtrace = backtrace
        self.partial = partial if partial is not None else {}


class MachineCheckError(EmulatorError):
    """An uncorrectable hardware error with no guest handler installed."""

    def __init__(self, message: str, addr: int, source: int):
        super().__init__(message)
        self.addr = addr
        self.source = source


class Emulator:
    """One hart running a program on a (possibly shared) memory."""

    DEFAULT_INSTRUCTION_LIMIT = 50_000_000
    #: decode-cache entries before a wholesale flush.  Self-modifying or
    #: JIT-style guests keep minting fresh PCs; without a bound the
    #: cache grows with the dynamic code footprint.
    DECODE_CACHE_LIMIT = 1 << 16

    def __init__(self, program: Program, memory: Memory | None = None,
                 hart_id: int = 0, stack_top: int = STACK_TOP,
                 load: bool = True, interrupt_fn=None,
                 enable_mmu: bool = False,
                 instruction_limit: int | None = None,
                 fault_injector=None, code_cache_dir: str | None = None):
        self.program = program
        self.state = MachineState(memory=memory, hart_id=hart_id)
        #: optional zero-arg callable returning pending mip bits
        #: (wired to a CLINT/PLIC via repro.smp.interrupts)
        self.interrupt_fn = interrupt_fn
        self.mmu = None
        if enable_mmu:
            from .vm import VirtualMemoryView

            self.mmu = VirtualMemoryView(self.state.memory, self.state)
            self.state.memory = self.mmu
        if load:
            self.state.memory.load_program(program)
        self.state.pc = program.entry
        self.state.regs[2] = stack_top - hart_id * 0x1_0000  # sp
        self.state.regs[3] = program.data_base + 0x800       # gp anchor
        self.syscalls = SyscallShim()
        self.exit_code: int | None = None
        self.halted = False
        self._decode_cache: dict[int, Instruction] = {}
        self.instruction_limit = (instruction_limit
                                  if instruction_limit is not None
                                  else self.DEFAULT_INSTRUCTION_LIMIT)
        #: optional repro.ras.FaultInjector applied at step boundaries
        self.fault_injector = fault_injector
        self.machine_checks = 0
        self._pending_mcheck: tuple[int, int] | None = None
        self._recent: deque[tuple[int, Instruction]] = deque(
            maxlen=RECENT_WINDOW)
        self.decode_cache_hits = 0
        self.decode_cache_misses = 0
        self.decode_cache_flushes = 0
        #: lazily created block-translation engine (fast mode)
        self._blocks = None
        #: lazily created tier-3 specializing translator
        self._codegen = None
        #: on-disk code cache override (None = env/default resolution)
        self.code_cache_dir = code_cache_dir
        #: optional repro.analysis.sanitize.Sanitizer checked at block
        #: boundaries on the fast path (None = zero overhead)
        self.sanitizer = None

    # -- fetch/decode -----------------------------------------------------------

    def _fetch(self, pc: int) -> Instruction:
        cached = self._decode_cache.get(pc)
        if cached is not None:
            self.decode_cache_hits += 1
            return cached
        self.decode_cache_misses += 1
        mem = self.state.memory
        if self.mmu is not None:
            half = int.from_bytes(self.mmu.fetch_bytes(pc, 2), "little")
        else:
            half = mem.load_int(pc, 2)
        try:
            if compressed.is_compressed(half):
                inst = compressed.expand(half)
            else:
                if self.mmu is not None:
                    upper = int.from_bytes(
                        self.mmu.fetch_bytes(pc + 2, 2), "little")
                else:
                    upper = mem.load_int(pc + 2, 2)
                word = half | (upper << 16)
                inst = decode_word(word)
        except Trap:
            raise
        except Exception as exc:
            raise EmulatorError(
                f"cannot decode instruction at pc={pc:#x}: {exc}\n"
                + self._recent_window_text()) from exc
        if self.mmu is None or not self.mmu._active():
            if len(self._decode_cache) >= self.DECODE_CACHE_LIMIT:
                self._decode_cache.clear()
                self.decode_cache_flushes += 1
            self._decode_cache[pc] = inst
        return inst

    # -- execution --------------------------------------------------------------

    def step(self) -> DynInst:
        """Execute one instruction and return its dynamic record."""
        state = self.state
        if self._pending_mcheck is not None:
            self._deliver_machine_check()
        if self.fault_injector is not None:
            self.fault_injector.step_hook(self)
        if self.interrupt_fn is not None:
            self._check_interrupts()
        pc = state.pc
        try:
            inst = self._fetch(pc)
        except Trap as trap:
            self._take_trap(trap)
            state.instret += 1
            nop = Instruction(spec=SPECS["addi"])
            return DynInst(seq=state.instret, pc=pc, inst=nop,
                           next_pc=state.pc)
        side = state.side
        side.reset()
        mnemonic = inst.spec.mnemonic
        self._recent.append((pc, inst))

        handler = SCALAR_EXEC.get(mnemonic)
        vhandler = None
        if handler is None:
            vhandler = VECTOR_EXEC.get(mnemonic)
            if vhandler is None:
                raise EmulatorError(
                    f"no semantics for {mnemonic} at pc={pc:#x}")
        next_pc: int | None = None
        try:
            if handler is not None:
                next_pc = handler(state, inst)
            else:
                vhandler(state, inst)
        except EcallShim:
            if state.priv == PrivMode.MACHINE:
                try:
                    self.syscalls.handle(state)
                except ExitRequest as exit_req:
                    self.exit_code = exit_req.code
                    self.halted = True
            else:
                cause = TrapCause.ECALL_FROM_U                     if state.priv == PrivMode.USER                     else TrapCause.ECALL_FROM_S
                self._take_trap(Trap(cause, 0))
                record = self._record(pc, inst, state.pc)
                state.instret += 1
                return record
        except ExitRequest as exit_req:
            self.exit_code = exit_req.code
            self.halted = True
        except Trap as trap:
            self._take_trap(trap)
            next_pc = state.pc  # updated by the trap handler
            record = self._record(pc, inst, next_pc)
            state.pc = next_pc
            state.instret += 1
            return record
        except EmulatorError:
            raise
        except Exception as exc:
            raise EmulatorError(
                self._crash_report(pc, mnemonic, exc)) from exc

        if mnemonic in ("fence.i", "icache.iall", "icache.iva"):
            # Instruction-stream synchronisation: stale decodes of
            # self-modified code must not survive the fence.
            self._decode_cache.clear()
            if self._blocks is not None:
                self._blocks.invalidate()
        elif mnemonic == "sfence.vma":
            self._decode_cache.clear()
            if self._blocks is not None:
                self._blocks.invalidate()
            if self.mmu is not None:
                self.mmu.flush_tlb()
        if next_pc is None:
            next_pc = (pc + inst.size) & MASK64
        record = self._record(pc, inst, next_pc)
        state.pc = next_pc
        state.instret += 1
        return record

    # -- diagnostics ------------------------------------------------------------

    def recent_instructions(self) -> list[str]:
        """Disassembled window of the last retired instructions."""
        from ..isa.disasm import disassemble

        lines = []
        for pc, inst in self._recent:
            try:
                text = disassemble(inst, pc)
            except Exception:
                text = inst.spec.mnemonic
            lines.append(f"{pc:#010x}: {text}")
        return lines

    def _recent_window_text(self, last: int = 8) -> str:
        recent = self.recent_instructions()
        window = "\n  ".join(recent[-last:]) if recent else "(none)"
        return f"last retired instructions:\n  {window}"

    def _crash_report(self, pc: int, mnemonic: str, exc: Exception) -> str:
        return (f"{type(exc).__name__} while executing {mnemonic} at "
                f"pc={pc:#x}: {exc}\n" + self._recent_window_text())

    def _watchdog(self, limit: int) -> WatchdogExpired:
        regs = list(self.state.regs)
        backtrace = self.recent_instructions()
        names = (("ra", 1), ("sp", 2), ("gp", 3), ("a0", 10), ("a7", 17))
        regdump = "  ".join(f"{n}={regs[i]:#x}" for n, i in names)
        message = (
            f"watchdog: instruction limit {limit} exceeded at "
            f"pc={self.state.pc:#x} (instret={self.state.instret})\n"
            f"  {regdump}\n" + self._recent_window_text())
        partial = {"instret": self.state.instret, "limit": limit,
                   "counters": self.counters()}
        return WatchdogExpired(message, self.state.pc, regs, backtrace,
                               partial=partial)

    # -- machine checks (RAS) ----------------------------------------------------

    def post_machine_check(self, addr: int, source: int = 0) -> None:
        """Bank an uncorrectable-error report; trap at the next boundary.

        The error is delivered asynchronously, like a real machine
        check: the failing address and source are latched in the mcerr
        CSRs, and the trap is taken before the next instruction issues.
        """
        if self._pending_mcheck is None:     # first error wins the bank
            self._pending_mcheck = (addr & MASK64, source)

    def report_corrected(self, addr: int = 0, source: int = 0) -> None:
        """Count a hardware-corrected error in the guest-visible CSR."""
        csrs = self.state.csrs
        csrs.write(CSR_MCECNT, csrs.read(CSR_MCECNT) + 1)

    def _deliver_machine_check(self) -> None:
        addr, source = self._pending_mcheck
        self._pending_mcheck = None
        csrs = self.state.csrs
        csrs.write(CSR_MCERR, MCERR_VALID | MCERR_UNCORRECTABLE
                   | ((source & 0xFF) << MCERR_SOURCE_SHIFT))
        csrs.write(CSR_MCERR_ADDR, addr)
        self.machine_checks += 1
        if csrs.read(CSR_MTVEC) == 0:
            raise MachineCheckError(
                f"uncorrectable hardware error at addr={addr:#x} "
                f"(source {source}) with no mtvec handler", addr, source)
        self._take_trap(Trap(TrapCause.MACHINE_CHECK, addr))

    def _record(self, pc: int, inst: Instruction, next_pc: int) -> DynInst:
        side = self.state.side
        return DynInst(
            seq=self.state.instret, pc=pc, inst=inst, next_pc=next_pc,
            taken=side.taken, target=side.target,
            mem_addr=side.mem_addr, mem_size=side.mem_size,
            vl=self.state.vl, sew=self.state.sew,
            div_bits=side.div_bits)

    def _check_interrupts(self) -> None:
        """Take the highest-priority enabled pending interrupt, if any."""
        csrs = self.state.csrs
        mstatus = csrs.read(CSR_MSTATUS)
        if not mstatus & 0x8:        # mstatus.MIE clear: masked
            return
        pending = self.interrupt_fn() & csrs.read(CSR_MIE)
        if not pending:
            return
        # Priority order per the privileged spec: MEI > MSI > MTI.
        for bit, code in ((11, 11), (3, 3), (7, 7)):
            if (pending >> bit) & 1:
                break
        else:  # pragma: no cover
            return
        mtvec = csrs.read(CSR_MTVEC)
        if mtvec == 0:
            raise EmulatorError("interrupt pending with no mtvec handler")
        csrs.write(CSR_MEPC, self.state.pc)
        csrs.write(CSR_MCAUSE, (1 << 63) | code)
        # Push the interrupt-enable stack (MPIE <- MIE, MIE <- 0) and
        # record the interrupted privilege in MPP.
        mpie = (mstatus >> 3) & 1
        mstatus = (mstatus & ~0x88 & ~(3 << 11)) | (mpie << 7) \
            | (int(self.state.priv) << 11)
        csrs.write(CSR_MSTATUS, mstatus)
        self.state.priv = PrivMode.MACHINE
        self.state.pc = mtvec & ~3

    def _take_trap(self, trap: Trap) -> None:
        csrs = self.state.csrs
        csrs.write(CSR_MEPC, self.state.pc)
        csrs.write(CSR_MCAUSE, trap.cause.value)
        csrs.write(CSR_MTVAL, trap.tval)
        mtvec = csrs.read(CSR_MTVEC)
        if mtvec == 0:
            raise EmulatorError(
                f"trap {trap.cause.name} at pc={self.state.pc:#x} "
                f"with no mtvec handler")
        # Record the interrupted privilege in mstatus.MPP; enter M-mode.
        mstatus = csrs.read(CSR_MSTATUS)
        mstatus = (mstatus & ~(3 << 11)) | (int(self.state.priv) << 11)
        csrs.write(CSR_MSTATUS, mstatus)
        self.state.priv = PrivMode.MACHINE
        self.state.pc = mtvec & ~3

    # -- fast (block-translated) execution ---------------------------------------

    def _fast_eligible(self) -> bool:
        """Whether block dispatch preserves exact semantics here.

        The fast path elides the per-step fault-injector, interrupt and
        MMU hooks, so any of those forces the precise interpreter.
        """
        return (self.mmu is None and self.fault_injector is None
                and self.interrupt_fn is None)

    def _engine(self):
        if self._blocks is None:
            from .blockcache import BlockEngine

            self._blocks = BlockEngine(self)
        return self._blocks

    def _tier3_eligible(self) -> bool:
        """Tier-3 additionally requires no sanitizer: compiled blocks
        skip the per-block pre/post hooks the sanitizer relies on."""
        return self._fast_eligible() and self.sanitizer is None

    def _codegen_engine(self):
        if self._codegen is None:
            from .codegen import CodegenEngine

            self._codegen = CodegenEngine(self,
                                          cache_dir=self.code_cache_dir)
        return self._codegen

    def counters(self) -> dict[str, int]:
        """Functional-engine counters (the repro.obs metrics surface):
        decode cache, machine checks, and — once the fast path has run —
        the block-translation engine's counters."""
        counters = {
            "decode_cache_hits": self.decode_cache_hits,
            "decode_cache_misses": self.decode_cache_misses,
            "decode_cache_flushes": self.decode_cache_flushes,
            "machine_checks": self.machine_checks,
        }
        if self._blocks is not None:
            counters.update(self._blocks.counters())
        if self._codegen is not None:
            counters.update({f"codegen_{name}": value for name, value
                             in self._codegen.counters().items()})
        counters.update({f"vector_{name}": value for name, value
                         in self.state.vec_counters.items()})
        return counters

    def fast_trace(self, max_steps: int | None = None):
        """Yield the dynamic instruction stream in block-sized batches.

        Batches are lists (or tuples) of :class:`DynInst` whose slots
        are **reused**: each batch is only valid until the next one is
        requested, so consumers that retain records must copy them.
        The retired stream is field-for-field identical to
        :meth:`trace`; when the configuration is not
        :meth:`_fast_eligible` this silently degrades to precise
        single-step batches.
        """
        limit = max_steps if max_steps is not None else self.instruction_limit
        steps = 0
        if not self._fast_eligible():
            while not self.halted and steps < limit:
                yield (self.step(),)
                steps += 1
            if not self.halted and steps >= limit:
                raise self._watchdog(limit)
            return
        engine = self._engine()
        blocks = engine.blocks
        state = self.state
        sanitizer = self.sanitizer
        while not self.halted and steps < limit:
            if self._pending_mcheck is not None:
                self._deliver_machine_check()
            pc = state.pc
            block = blocks.get(pc)
            if block is None:
                try:
                    block = engine.translate(pc)
                except Trap as trap:
                    # Same fetch-trap record the precise path emits.
                    self._take_trap(trap)
                    state.instret += 1
                    nop = Instruction(spec=SPECS["addi"])
                    yield (DynInst(seq=state.instret, pc=pc, inst=nop,
                                   next_pc=state.pc),)
                    steps += 1
                    continue
            if sanitizer is not None:
                sanitizer.pre_block(block)
            retired, batch = engine.execute(block, limit - steps)
            if sanitizer is not None:
                sanitizer.post_block(block, retired, state)
            steps += retired
            if batch:
                yield batch
        if not self.halted and steps >= limit:
            raise self._watchdog(limit)

    def run_fast(self, max_steps: int | None = None) -> int:
        """:meth:`run` through the block engine, recording nothing."""
        if not self._fast_eligible():
            return self.run(max_steps)
        limit = max_steps if max_steps is not None else self.instruction_limit
        engine = self._engine()
        blocks = engine.blocks
        state = self.state
        sanitizer = self.sanitizer
        steps = 0
        while not self.halted:
            if steps >= limit:
                raise self._watchdog(limit)
            if self._pending_mcheck is not None:
                self._deliver_machine_check()
            pc = state.pc
            block = blocks.get(pc)
            if block is None:
                try:
                    block = engine.translate(pc)
                except Trap as trap:
                    self._take_trap(trap)
                    state.instret += 1
                    steps += 1
                    continue
            if sanitizer is not None:
                sanitizer.pre_block(block)
            retired, _ = engine.execute(block, limit - steps, record=False)
            if sanitizer is not None:
                sanitizer.post_block(block, retired, state)
            steps += retired
        return self.exit_code if self.exit_code is not None else -1

    def run_codegen(self, max_steps: int | None = None) -> int:
        """:meth:`run` through tier-3 compiled blocks, recording nothing.

        Ineligible configurations degrade to :meth:`run_fast` (which
        itself degrades to the precise interpreter); newly compiled
        blocks are persisted to the on-disk code cache on the way out.
        """
        if not self._tier3_eligible():
            return self.run_fast(max_steps)
        limit = max_steps if max_steps is not None else self.instruction_limit
        engine = self._codegen_engine()
        try:
            return engine.run(limit)
        finally:
            engine.persist()

    def codegen_trace(self, max_steps: int | None = None):
        """:meth:`fast_trace` through tier-3 compiled blocks.

        Same record-reuse contract as :meth:`fast_trace`: each yielded
        batch is only valid until the next one is requested.
        """
        if not self._tier3_eligible():
            yield from self.fast_trace(max_steps)
            return
        limit = max_steps if max_steps is not None else self.instruction_limit
        engine = self._codegen_engine()
        try:
            yield from engine.trace(limit)
        finally:
            engine.persist()

    def run(self, max_steps: int | None = None, fast: bool = False,
            tier: int | None = None) -> int:
        """Run to exit (or the watchdog); returns the exit code.

        A normal halt returns; a runaway loop raises
        :class:`WatchdogExpired` with a post-mortem dump.  ``fast=True``
        dispatches through the block-translation cache when the
        configuration allows it (see :meth:`_fast_eligible`).

        ``tier`` selects the speed tier explicitly: 1 = precise
        interpreter, 2 = block cache (same as ``fast=True``), 3 =
        specializing translator.  Each tier silently falls back to the
        next-safer one when the configuration requires it.
        """
        if tier is not None and tier not in (1, 2, 3):
            raise ValueError(f"unknown execution tier {tier!r}")
        if tier == 3:
            return self.run_codegen(max_steps)
        if tier == 2 or (tier is None and fast):
            return self.run_fast(max_steps)
        limit = max_steps if max_steps is not None else self.instruction_limit
        steps = 0
        while not self.halted:
            if steps >= limit:
                raise self._watchdog(limit)
            self.step()
            steps += 1
        return self.exit_code if self.exit_code is not None else -1

    def trace(self, max_steps: int | None = None) -> Iterator[DynInst]:
        """Yield the dynamic instruction stream until exit."""
        limit = max_steps if max_steps is not None else self.instruction_limit
        steps = 0
        while not self.halted and steps < limit:
            yield self.step()
            steps += 1
        if not self.halted and steps >= limit:
            raise self._watchdog(limit)

    @property
    def stdout(self) -> str:
        return self.syscalls.stdout_text


def run_program(program: Program, max_steps: int | None = None) -> Emulator:
    """Convenience: run *program* to completion, return the emulator."""
    emulator = Emulator(program)
    emulator.run(max_steps)
    return emulator
