"""Tier-3 specializing translator: per-block Python codegen.

Tier-2 (:mod:`repro.sim.blockcache`) already decodes each basic block
once, but still pays per retired instruction for the dispatch loop:
tuple unpacking, a flags test, a handler call through a function
pointer, and the bookkeeping branches.  This module removes that last
layer: for every :class:`~repro.sim.blockcache.TranslatedBlock` it
emits *specialized straight-line Python source* — register indices,
immediates, fall-through PCs and handler references constant-folded
into the text — ``compile()``s it once, and runs the code object in
place of the interpretation loop.

Translation is two-pass, resolve-then-emit: pass one classifies every
entry of the tier-2 block (inline-specializable ALU/load/store/branch,
bare handler call, or the full ``step()``-equivalent "cold dance" for
CSR/AMO/DIV/system/vector instructions); pass two emits the source for
a ``make(E)`` factory whose inner ``run``/``trace`` functions bind the
handlers, instructions and record slots as default arguments (fast
locals, zero global lookups in the hot path).

Persistent code cache: compiled module code objects are marshalled to
disk keyed by (codegen version, interpreter bytecode magic, text
section sha256, text base, VLEN, block size limit), so a second run of
the same workload skips source generation and ``compile()`` entirely —
each stored block additionally carries a digest of its code bytes that
is re-checked at link time, so stale entries miss instead of silently
reusing.  A corrupt cache file is discarded (and counted), never
fatal.  ``fence.i``/``sfence.vma`` invalidate compiled blocks exactly
like tier-2, and nothing is persisted from a run that observed any
code mutation.

Semantics contract: the retired ``DynInst`` stream, architectural
state, exit code and memory image are bit-identical to tier-2 (and
therefore to ``Emulator.step``).  Two accepted diagnostic deviations,
mirroring tier-2's own envelope: inlined instructions do not append to
the crash-backtrace ring, and self-modifying stores are only detected
by the tier-2 first-run check (tier-3 only executes blocks tier-2 has
already run once) or an explicit ``fence.i``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
import tempfile
import time

from ..isa.instructions import SPECS, InstrClass, Instruction
from .exec_scalar import EcallShim, Trap
from .exec_vector import active_engine, specialize
from .syscalls import ExitRequest
from .trace import DynInst
from .blockcache import (
    FLAG_FENCE_I,
    FLAG_SFENCE,
    FLAG_VECTOR,
    MAX_BLOCK_INSTS,
    _fill,
)

#: bump on any change to the emitted source or the cold-path helpers —
#: stale on-disk code must never be reused across emitter revisions.
CODEGEN_VERSION = 2

#: compiled blocks kept in memory before a wholesale flush
CODE_CACHE_LIMIT = 4096
#: on-disk cache files kept before mtime-based pruning
DISK_CACHE_FILES = 64

_EXC = (EcallShim, ExitRequest, Trap)
_M64 = 0xFFFFFFFFFFFFFFFF
_MHEX = "0xFFFFFFFFFFFFFFFF"
_S64 = 0x8000000000000000

_LOADS = frozenset({"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu",
                    "flw", "fld"})
_STORES = frozenset({"sb", "sh", "sw", "sd", "fsw", "fsd"})
_BRANCH_COND = {
    "beq": "{a} == {b}",
    "bne": "{a} != {b}",
    "blt": "({a} ^ 0x8000000000000000) < ({b} ^ 0x8000000000000000)",
    "bge": "({a} ^ 0x8000000000000000) >= ({b} ^ 0x8000000000000000)",
    "bltu": "{a} < {b}",
    "bgeu": "{a} >= {b}",
}


def _cold(emu, exc, fall, rec):
    """The exceptional retire paths, shared by every compiled block.

    Line-for-line equivalent of the ``except`` arms in
    ``BlockEngine.execute``; the caller synced ``state.pc`` and
    ``state.instret`` before the handler ran, so the record/trap state
    here matches the interpreter exactly.  *rec* is ``None`` in the
    non-recording variant.
    """
    from ..isa.csr import PrivMode, TrapCause

    state = emu.state
    side = state.side
    if isinstance(exc, EcallShim):
        if state.priv == PrivMode.MACHINE:
            try:
                emu.syscalls.handle(state)
            except ExitRequest as exit_req:
                emu.exit_code = exit_req.code
                emu.halted = True
            if rec is not None:
                _fill(rec, state, side, fall)
            state.pc = fall
            state.instret += 1
            return
        cause = (TrapCause.ECALL_FROM_U if state.priv == PrivMode.USER
                 else TrapCause.ECALL_FROM_S)
        emu._take_trap(Trap(cause, 0))
        if rec is not None:
            _fill(rec, state, side, state.pc)
        state.instret += 1
        return
    if isinstance(exc, ExitRequest):
        emu.exit_code = exc.code
        emu.halted = True
        if rec is not None:
            _fill(rec, state, side, fall)
        state.pc = fall
        state.instret += 1
        return
    # a synchronous Trap raised mid-instruction
    emu._take_trap(exc)
    if rec is not None:
        _fill(rec, state, side, state.pc)
    state.instret += 1


# -- pass 1: resolve ---------------------------------------------------------

def _rx(index: int) -> str:
    """Integer-register read with the x0 constant folded."""
    return "0" if index == 0 else f"R[{index}]"


def _sxw(dst: str, expr: str) -> list[str]:
    """``dst = sext32(expr) & MASK64`` with the call inlined."""
    return [f"v = ({expr}) & 0xFFFFFFFF",
            f"{dst} = v + 0xFFFFFFFF00000000 if v > 0x7FFFFFFF else v"]


def _alu_lines(inst) -> list[str] | None:
    """Specialized source for one integer-computational instruction.

    Each template is the corresponding ``exec_scalar`` handler body
    with the register indices and immediate substituted — the Python
    expressions are identical, so the results are bit-identical.
    Returns ``None`` for mnemonics left to a bare handler call.
    """
    mn = inst.spec.mnemonic
    rd, imm = inst.rd, inst.imm
    a, b = _rx(inst.rs1), _rx(inst.rs2)
    dst = f"R[{rd}]"
    if mn == "lui":
        return [f"{dst} = {imm & _M64}"]
    if mn == "addi":
        if imm == 0 and inst.rs1:      # mv: the source is already masked
            return [f"{dst} = {a}"]
        return [f"{dst} = ({a} + {imm}) & {_MHEX}"]
    if mn == "add":
        return [f"{dst} = ({a} + {b}) & {_MHEX}"]
    if mn == "sub":
        return [f"{dst} = ({a} - {b}) & {_MHEX}"]
    if mn == "andi":
        # the outer mask only matters for sign-extended (negative) imms
        if imm >= 0:
            return [f"{dst} = {a} & {imm}"]
        return [f"{dst} = ({a} & {imm}) & {_MHEX}"]
    if mn == "ori":
        if imm >= 0:
            return [f"{dst} = {a} | {imm}"]
        return [f"{dst} = ({a} | {imm}) & {_MHEX}"]
    if mn == "xori":
        if imm >= 0:
            return [f"{dst} = {a} ^ {imm}"]
        return [f"{dst} = ({a} ^ {imm}) & {_MHEX}"]
    if mn == "and":
        return [f"{dst} = {a} & {b}"]
    if mn == "or":
        return [f"{dst} = {a} | {b}"]
    if mn == "xor":
        return [f"{dst} = {a} ^ {b}"]
    if mn == "slli":
        return [f"{dst} = ({a} << {imm}) & {_MHEX}"]
    if mn == "srli":
        return [f"{dst} = {a} >> {imm}"]
    if mn == "srai":
        return [f"v = {a}",
                f"{dst} = ((v - 0x10000000000000000 if v > "
                f"0x7FFFFFFFFFFFFFFF else v) >> {imm}) & {_MHEX}"]
    if mn == "sll":
        return [f"{dst} = ({a} << ({b} & 63)) & {_MHEX}"]
    if mn == "srl":
        return [f"{dst} = {a} >> ({b} & 63)"]
    if mn == "sra":
        return [f"v = {a}",
                f"{dst} = ((v - 0x10000000000000000 if v > "
                f"0x7FFFFFFFFFFFFFFF else v) >> ({b} & 63)) & {_MHEX}"]
    if mn == "slt":
        return [f"{dst} = int(({a} ^ 0x8000000000000000) < "
                f"({b} ^ 0x8000000000000000))"]
    if mn == "sltu":
        return [f"{dst} = int({a} < {b})"]
    if mn == "slti":
        return [f"{dst} = int(({a} ^ 0x8000000000000000) < "
                f"{(imm & _M64) ^ _S64})"]
    if mn == "sltiu":
        return [f"{dst} = int({a} < {imm & _M64})"]
    if mn == "addiw":
        return _sxw(dst, f"{a} + {imm}")
    if mn == "addw":
        return _sxw(dst, f"{a} + {b}")
    if mn == "subw":
        return _sxw(dst, f"{a} - {b}")
    if mn == "slliw":
        return _sxw(dst, f"{a} << {imm}")
    if mn == "srliw":
        return _sxw(dst, f"({a} & 0xFFFFFFFF) >> {imm}")
    if mn == "sllw":
        return _sxw(dst, f"{a} << ({b} & 31)")
    if mn == "srlw":
        return _sxw(dst, f"({a} & 0xFFFFFFFF) >> ({b} & 31)")
    if mn == "sraiw":
        return [f"v = {a} & 0xFFFFFFFF",
                f"v = (v - 0x100000000 if v > 0x7FFFFFFF else v) >> {imm}",
                f"{dst} = v & {_MHEX}"]
    if mn == "sraw":
        return [f"v = {a} & 0xFFFFFFFF",
                f"v = (v - 0x100000000 if v > 0x7FFFFFFF else v) "
                f">> ({b} & 31)",
                f"{dst} = v & {_MHEX}"]
    if mn == "mul":
        return [f"{dst} = ({a} * {b}) & {_MHEX}"]
    if mn == "mulw":
        return _sxw(dst, f"{a} * {b}")
    return None


def _resolve(entry) -> str:
    """Classify one tier-2 entry into an emission kind."""
    _handler, inst, _pc, _fall, flags, _rec = entry
    spec = inst.spec
    mn = spec.mnemonic
    if flags == 0:
        if _alu_lines(inst) is not None:
            return "alu"
        return "bare"
    if flags & (FLAG_FENCE_I | FLAG_SFENCE | FLAG_VECTOR):
        return "full"
    if mn == "auipc":
        return "auipc"
    if mn in _LOADS:
        return "load"
    if mn in _STORES:
        return "store"
    if mn in _BRANCH_COND:
        return "branch"
    if mn == "jal":
        return "jal"
    if mn == "jalr":
        return "jalr"
    return "full"


# -- pass 2: emit ------------------------------------------------------------

class _Emitter:
    """Builds one ``run``/``trace`` function body."""

    def __init__(self, trace: bool):
        self.trace = trace
        self.lines: list[str] = []
        self.params: list[str] = []
        self.needs_cold_state = False  # sd/rc locals required

    def out(self, line: str) -> None:
        self.lines.append("        " + line)

    def _simple_fill(self, k: int) -> None:
        """Record fill for tier-2 short-path entries (prefill intact)."""
        self.out(f"r{k}.seq = n0 + {k}")
        self.out(f"r{k}.vl = vl")
        self.out(f"r{k}.sew = sew")

    def _const_fill(self, k: int, fall: int, *, taken: str = "False",
                    target: str = "0", next_pc: str | None = None,
                    mem_addr: str = "0", mem_size: str = "0") -> None:
        """Record fill for inlined tier-2 full-path entries.

        Every field is written: the record may have been clobbered by
        a tier-2 execution of the same block (budget-cut dispatch).
        """
        self.out(f"r{k}.seq = n0 + {k}")
        self.out(f"r{k}.next_pc = {next_pc if next_pc is not None else fall}")
        self.out(f"r{k}.taken = {taken}")
        self.out(f"r{k}.target = {target}")
        self.out(f"r{k}.mem_addr = {mem_addr}")
        self.out(f"r{k}.mem_size = {mem_size}")
        self.out(f"r{k}.vl = vl")
        self.out(f"r{k}.sew = sew")
        self.out(f"r{k}.div_bits = 0")

    def emit(self, k: int, entry, kind, n: int) -> None:
        handler, inst, pc, fall, flags, _rec = entry
        spec = inst.spec
        static_vtype = None
        if isinstance(kind, tuple):  # ("full", (sew, lmul) | None)
            kind, static_vtype = kind
        if self.trace:
            self.params.append(f"r{k}=E[{k}][5]")
        if kind == "alu":
            if inst.rd:
                for line in _alu_lines(inst):
                    self.out(line)
            if self.trace:
                self._simple_fill(k)
            return
        if kind == "bare":
            self.params.append(f"h{k}=E[{k}][0]")
            self.params.append(f"i{k}=E[{k}][1]")
            self.out(f"h{k}(state, i{k})")
            if self.trace:
                self._simple_fill(k)
            return
        if kind == "auipc":
            if inst.rd:
                self.out(f"R[{inst.rd}] = {(pc + inst.imm) & _M64}")
            if self.trace:
                self._const_fill(k, fall)
            return
        if kind == "load":
            signed = not spec.mem_unsigned
            size = spec.mem_bytes
            self.out(f"a = ({_rx(inst.rs1)} + {inst.imm}) & {_MHEX}")
            call = f"ld(a, {size}, True)" if signed else f"ld(a, {size})"
            if spec.rd_file == "f":
                if size == 4:
                    self.out(f"F[{inst.rd}] = ({call} & 0xFFFFFFFF)"
                             f" | 0xFFFFFFFF00000000")
                else:
                    self.out(f"F[{inst.rd}] = {call} & {_MHEX}")
            elif inst.rd:
                # write_x masks: a signed load_int result is negative
                mask = f" & {_MHEX}" if signed else ""
                self.out(f"R[{inst.rd}] = {call}{mask}")
            else:
                self.out(call)  # keep the access (MMIO side effects)
            if self.trace:
                self._const_fill(k, fall, mem_addr="a", mem_size=str(size))
            return
        if kind == "store":
            size = spec.mem_bytes
            value = (f"F[{inst.rs2}]" if spec.rs2_file == "f"
                     else _rx(inst.rs2))
            self.out(f"a = ({_rx(inst.rs1)} + {inst.imm}) & {_MHEX}")
            self.out(f"st(a, {value}, {size})")
            if self.trace:
                self._const_fill(k, fall, mem_addr="a", mem_size=str(size))
            return
        if kind == "branch":
            target = (pc + inst.imm) & _M64
            cond = _BRANCH_COND[spec.mnemonic].format(
                a=_rx(inst.rs1), b=_rx(inst.rs2))
            self.out(f"t = {cond}")
            if self.trace:
                self._const_fill(k, fall, taken="t", target=str(target),
                                 next_pc=f"{target} if t else {fall}")
            self.out(f"state.instret = n0 + {n}")
            self.out(f"state.pc = {target} if t else {fall}")
            self.out(f"return {n}")
            return
        if kind == "jal":
            target = (pc + inst.imm) & _M64
            if inst.rd:
                self.out(f"R[{inst.rd}] = {(pc + inst.size) & _M64}")
            if self.trace:
                self._const_fill(k, fall, taken="True", target=str(target),
                                 next_pc=str(target))
            self.out(f"state.instret = n0 + {n}")
            self.out(f"state.pc = {target}")
            self.out(f"return {n}")
            return
        if kind == "jalr":
            self.out(f"t = ({_rx(inst.rs1)} + {inst.imm})"
                     f" & 0xFFFFFFFFFFFFFFFE")
            if inst.rd:
                self.out(f"R[{inst.rd}] = {(pc + inst.size) & _M64}")
            if self.trace:
                self._const_fill(k, fall, taken="True", target="t",
                                 next_pc="t")
            self.out(f"state.instret = n0 + {n}")
            self.out("state.pc = t")
            self.out(f"return {n}")
            return
        # -- the full step()-equivalent dance --------------------------------
        self.needs_cold_state = True
        if static_vtype is not None:
            # vtype is provably static here (a constant-imm vsetvli
            # dominates this entry inside the block): bind a handler
            # with SEW/LMUL constant-folded when the active vector
            # engine offers one, else the generic tier-2 handler.
            sew_c, lmul_c = static_vtype
            self.params.append(
                f"h{k}=_vspec({spec.mnemonic!r}, {sew_c}, {lmul_c})"
                f" or E[{k}][0]")
        else:
            self.params.append(f"h{k}=E[{k}][0]")
        self.params.append(f"i{k}=E[{k}][1]")
        terminator = spec.iclass in (InstrClass.BRANCH, InstrClass.JUMP,
                                     InstrClass.SYSTEM, InstrClass.CSR)
        vector = bool(flags & FLAG_VECTOR)
        rec = f"r{k}" if self.trace else "None"
        self.out(f"state.pc = {pc}")
        self.out(f"state.instret = n0 + {k}")
        self.out("sd.mem_addr = 0")
        self.out("sd.mem_size = 0")
        self.out("sd.taken = False")
        self.out("sd.target = 0")
        self.out("sd.div_bits = 0")
        self.out(f"rc(({pc}, i{k}))")
        self.out("try:")
        if vector:
            self.out(f"    h{k}(state, i{k})")
            self.out("    np = None")
        else:
            self.out(f"    np = h{k}(state, i{k})")
        self.out("except X as exc:")
        self.out(f"    cold(emu, exc, {fall}, {rec})")
        self.out(f"    return {k + 1}")
        if flags & (FLAG_FENCE_I | FLAG_SFENCE):
            self.out("emu._decode_cache.clear()")
            self.out("eng.on_fence()")
        self.out("if np is None:")
        self.out(f"    np = {fall}")
        if self.trace:
            self.out(f"r{k}.seq = state.instret")
            self.out(f"r{k}.next_pc = np")
            self.out(f"r{k}.taken = sd.taken")
            self.out(f"r{k}.target = sd.target")
            self.out(f"r{k}.mem_addr = sd.mem_addr")
            self.out(f"r{k}.mem_size = sd.mem_size")
            self.out("vl = state.vl")
            self.out("sew = state.sew")
            self.out(f"r{k}.vl = vl")
            self.out(f"r{k}.sew = sew")
            self.out(f"r{k}.div_bits = sd.div_bits")
        elif not terminator:
            pass  # run variant: vl/sew locals not tracked
        if terminator:
            self.out("state.pc = np")
            self.out(f"state.instret = n0 + {n}")
            self.out(f"return {n}")
        else:
            self.out(f"if np != {fall}:")
            self.out("    state.pc = np")
            self.out(f"    state.instret = n0 + {k + 1}")
            self.out(f"    return {k + 1}")


def emit_source(block) -> str:
    """Emit the ``make(E)`` factory module for one tier-2 block."""
    entries = block.entries
    n = len(entries)
    kinds: list = [_resolve(entry) for entry in entries]
    # Static-vtype scan: inside one straight-line block, a constant-imm
    # vsetvli fixes SEW/LMUL for every later vector entry (vsetvl takes
    # vtype from a register, so it resets the knowledge; jumps into the
    # middle of a block start a new block and never see these kinds).
    static = None
    for idx, entry in enumerate(entries):
        mn = entry[1].spec.mnemonic
        if mn == "vsetvli":
            from ..asm.assembler import decode_vtype
            static = decode_vtype(entry[1].imm)
        elif mn == "vsetvl":
            static = None
        elif kinds[idx] == "full" and (entry[4] & FLAG_VECTOR):
            kinds[idx] = ("full", static)
    parts = [f"# generated by repro.sim.codegen v{CODEGEN_VERSION} for "
             f"block {block.start:#x}..{block.end:#x} ({n} insts)",
             "def make(E):"]
    for variant in ("run", "trace"):
        emitter = _Emitter(trace=variant == "trace")
        for k, (entry, kind) in enumerate(zip(entries, kinds)):
            emitter.emit(k, entry, kind, n)
        last_kind = kinds[-1]
        if last_kind not in ("branch", "jal", "jalr") and not (
                last_kind == "full" and entries[-1][1].spec.iclass in (
                    InstrClass.BRANCH, InstrClass.JUMP,
                    InstrClass.SYSTEM, InstrClass.CSR)):
            # fell off the end of a straight-line (or truncated) block
            emitter.out(f"state.pc = {entries[-1][3]}")
            emitter.out(f"state.instret = n0 + {n}")
            emitter.out(f"return {n}")
        params = "".join(f", {p}" for p in emitter.params)
        if emitter.needs_cold_state:
            params += ", X=_EXC"
        parts.append(f"    def {variant}(emu, state, R, F, ld, st, "
                     f"cold, eng{params}):")
        parts.append("        n0 = state.instret")
        if emitter.trace:
            parts.append("        vl = state.vl")
            parts.append("        sew = state.sew")
        if emitter.needs_cold_state:
            parts.append("        sd = state.side")
            parts.append("        rc = emu._recent.append")
        parts.extend(emitter.lines)
    parts.append("    return run, trace")
    parts.append("")
    return "\n".join(parts)


class CompiledBlock:
    """One specialized block: two code paths plus its tier-2 twin."""

    __slots__ = ("start", "end", "n", "run", "trace", "records", "block")

    def __init__(self, block, run_fn, trace_fn):
        self.start = block.start
        self.end = block.end
        self.n = len(block.entries)
        self.run = run_fn
        self.trace = trace_fn
        self.records = block.records
        self.block = block


def _link(code, block):
    """Exec one generated module and bind it to *block*'s entries."""
    module_globals = {"_EXC": _EXC, "_vspec": specialize}
    exec(code, module_globals)
    run_fn, trace_fn = module_globals["make"](block.entries)
    return CompiledBlock(block, run_fn, trace_fn)


# -- the engine --------------------------------------------------------------

def default_cache_dir() -> str | None:
    """Resolve the on-disk code cache directory (None = disabled)."""
    if os.environ.get("REPRO_CODE_CACHE", "1").lower() in ("0", "off", ""):
        return None
    explicit = os.environ.get("REPRO_CODE_CACHE_DIR")
    if explicit:
        return explicit
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "repro-codegen")


class CodegenEngine:
    """Compiled-block cache + dispatcher for one :class:`Emulator`."""

    def __init__(self, emulator, cache_dir: str | None = None):
        self.emu = emulator
        self.blocks = emulator._engine()     # the tier-2 BlockEngine
        self.compiled: dict[int, CompiledBlock] = {}
        self.cache_dir = (cache_dir if cache_dir is not None
                          else default_cache_dir())
        #: pc -> (end, code_digest, module code object)
        self._disk: dict[int, tuple[int, bytes, object]] = {}
        self._disk_loaded = False
        self._dirty = False
        self._mutated = False
        # counters (surfaced as sim.codegen.* through repro.obs)
        self.blocks_compiled = 0
        self.compile_s = 0.0
        self.executions = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_corrupt = 0
        self.invalidations = 0
        self.smc_drops = 0
        self.evictions = 0
        self.persisted = 0

    # -- invalidation (wired from BlockEngine) -------------------------------

    def invalidate(self) -> None:
        """``fence.i``/``sfence.vma``: drop every compiled block."""
        if self.compiled:
            self.compiled.clear()
            self.invalidations += 1
        self._disk.clear()
        self._mutated = True

    def drop(self, start: int) -> None:
        """Tier-2 detected self-modified code in the block at *start*."""
        self.compiled.pop(start, None)
        self._disk.pop(start, None)
        self.smc_drops += 1
        self._mutated = True

    def on_fence(self) -> None:
        """Called from generated code; tier-2 notifies us back."""
        self.blocks.invalidate()

    # -- the persistent code cache -------------------------------------------

    def _cache_key(self) -> str:
        program = self.emu.program
        text_hash = hashlib.sha256(bytes(program.text)).hexdigest()
        raw = (f"{CODEGEN_VERSION}:{importlib.util.MAGIC_NUMBER.hex()}:"
               f"{text_hash}:{program.text_base}:{self.emu.state.vlen}:"
               f"{MAX_BLOCK_INSTS}:{active_engine()}")
        return hashlib.sha256(raw.encode()).hexdigest()[:24]

    def _cache_path(self) -> str | None:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, self._cache_key() + ".cgc")

    def _load_disk(self) -> None:
        self._disk_loaded = True
        path = self._cache_path()
        if path is None:
            return
        try:
            with open(path, "rb") as handle:
                payload = marshal.loads(handle.read())
            version, magic, blocks = payload
            if (version != CODEGEN_VERSION
                    or magic != importlib.util.MAGIC_NUMBER):
                raise ValueError("stale codegen cache header")
            self._disk = {int(pc): (int(end), digest, code)
                          for pc, (end, digest, code) in blocks.items()}
        except FileNotFoundError:
            pass
        except Exception:
            # Corrupt/stale cache files are discarded, never fatal.
            self.disk_corrupt += 1
            self._disk = {}
            try:
                os.unlink(path)
            except OSError:
                pass

    def _code_digest(self, start: int, end: int) -> bytes:
        memory = self.emu.state.memory
        return hashlib.sha256(memory.load_bytes(start, end - start)).digest()

    def persist(self) -> None:
        """Write newly compiled blocks to disk (atomic, prunable).

        Skipped when the run observed any code mutation — a cache
        entry must only describe immutable text.
        """
        path = self._cache_path()
        if path is None or not self._dirty or self._mutated:
            return
        self._dirty = False
        payload = marshal.dumps(
            (CODEGEN_VERSION, importlib.util.MAGIC_NUMBER,
             {pc: entry for pc, entry in self._disk.items()}))
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir,
                                            suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
            self.persisted += 1
            self._prune()
        except OSError:
            return  # a read-only cache dir degrades silently

    def _prune(self) -> None:
        try:
            entries = [os.path.join(self.cache_dir, name)
                       for name in os.listdir(self.cache_dir)
                       if name.endswith(".cgc")]
            if len(entries) <= DISK_CACHE_FILES:
                return
            entries.sort(key=lambda p: os.path.getmtime(p))
            for stale in entries[:len(entries) - DISK_CACHE_FILES]:
                os.unlink(stale)
        except OSError:
            pass

    # -- compilation ---------------------------------------------------------

    def compile_block(self, block) -> CompiledBlock:
        """Compile (or warm-link) *block* and cache the result."""
        if not self._disk_loaded:
            self._load_disk()
        if len(self.compiled) >= CODE_CACHE_LIMIT:
            self.compiled.clear()
            self.evictions += 1
        start = block.start
        digest = self._code_digest(start, block.end)
        stored = self._disk.get(start)
        if (stored is not None and stored[0] == block.end
                and stored[1] == digest):
            self.disk_hits += 1
            code = stored[2]
        else:
            self.disk_misses += 1
            began = time.perf_counter()
            source = emit_source(block)
            code = compile(source, f"<codegen:{start:#x}>", "exec")
            self.compile_s += time.perf_counter() - began
            self.blocks_compiled += 1
            self._disk[start] = (block.end, digest, code)
            self._dirty = True
        compiled = _link(code, block)
        self.compiled[start] = compiled
        return compiled

    # -- dispatch ------------------------------------------------------------

    def _crash(self, compiled: CompiledBlock, before: int, exc: Exception):
        from .emulator import EmulatorError

        state = self.emu.state
        if isinstance(exc, EmulatorError):
            raise exc
        retired = max(0, state.instret - before)
        index = min(retired, compiled.n - 1)
        entry = compiled.block.entries[index]
        raise EmulatorError(
            self.emu._crash_report(entry[2], entry[1].spec.mnemonic,
                                   exc)) from exc

    def run(self, limit: int) -> int:
        """Run to halt (or the watchdog) without recording."""
        emu = self.emu
        state = emu.state
        memory = state.memory
        regs, fregs = state.regs, state.fregs
        load, store = memory.load_int, memory.store_int
        compiled_map = self.compiled
        engine = self.blocks
        translated = engine.blocks
        steps = 0
        while not emu.halted:
            if steps >= limit:
                raise emu._watchdog(limit)
            if emu._pending_mcheck is not None:
                emu._deliver_machine_check()
            pc = state.pc
            compiled = compiled_map.get(pc)
            if compiled is not None and compiled.n <= limit - steps:
                self.executions += 1
                before = state.instret
                try:
                    steps += compiled.run(emu, state, regs, fregs,
                                          load, store, _cold, self)
                except _EXC:
                    raise
                except Exception as exc:
                    self._crash(compiled, before, exc)
                continue
            block = translated.get(pc)
            if block is None:
                try:
                    block = engine.translate(pc)
                except Trap as trap:
                    emu._take_trap(trap)
                    state.instret += 1
                    steps += 1
                    continue
            retired, _ = engine.execute(block, limit - steps, record=False)
            steps += retired
            if (compiled is None and not emu.halted
                    and translated.get(pc) is block):
                self.compile_block(block)
        return emu.exit_code if emu.exit_code is not None else -1

    def trace(self, limit: int):
        """Yield the DynInst stream in block batches (slots reused)."""
        emu = self.emu
        state = emu.state
        memory = state.memory
        regs, fregs = state.regs, state.fregs
        load, store = memory.load_int, memory.store_int
        compiled_map = self.compiled
        engine = self.blocks
        translated = engine.blocks
        steps = 0
        while not emu.halted and steps < limit:
            if emu._pending_mcheck is not None:
                emu._deliver_machine_check()
            pc = state.pc
            compiled = compiled_map.get(pc)
            if compiled is not None and compiled.n <= limit - steps:
                self.executions += 1
                before = state.instret
                try:
                    retired = compiled.trace(emu, state, regs, fregs,
                                             load, store, _cold, self)
                except _EXC:
                    raise
                except Exception as exc:
                    self._crash(compiled, before, exc)
                steps += retired
                yield (compiled.records if retired == compiled.n
                       else compiled.records[:retired])
                continue
            block = translated.get(pc)
            if block is None:
                try:
                    block = engine.translate(pc)
                except Trap as trap:
                    emu._take_trap(trap)
                    state.instret += 1
                    nop = Instruction(spec=SPECS["addi"])
                    yield (DynInst(seq=state.instret, pc=pc, inst=nop,
                                   next_pc=state.pc),)
                    steps += 1
                    continue
            retired, batch = engine.execute(block, limit - steps)
            steps += retired
            if (compiled is None and not emu.halted
                    and translated.get(pc) is block):
                self.compile_block(block)
            if batch:
                yield batch
        if not emu.halted and steps >= limit:
            raise emu._watchdog(limit)

    # -- metrics -------------------------------------------------------------

    def counters(self) -> dict:
        return {
            "blocks_compiled": self.blocks_compiled,
            "compile_s": round(self.compile_s, 6),
            "compiled_blocks": len(self.compiled),
            "executions": self.executions,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "disk_corrupt": self.disk_corrupt,
            "invalidations": self.invalidations,
            "smc_drops": self.smc_drops,
            "evictions": self.evictions,
            "persisted": self.persisted,
        }


__all__ = ["CodegenEngine", "CompiledBlock", "CODEGEN_VERSION",
           "CODE_CACHE_LIMIT", "emit_source", "default_cache_dir"]
