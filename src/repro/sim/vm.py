"""SV39 virtual memory for the functional emulator (section V.E).

``VirtualMemoryView`` wraps the physical :class:`Memory`: when ``satp``
selects SV39 and the hart is not in M-mode, every access is translated
through the page tables (with a small software TLB standing in for the
hardware uTLB/jTLB, flushed by ``sfence.vma``).  Permission violations
and unmapped pages raise the architecturally-correct page-fault traps.

Enable with ``Emulator(..., enable_mmu=True)``; the default stays the
bare-metal identity mapping so the fast path is untouched.
"""

from __future__ import annotations

from ..isa.csr import CSR_SATP, PrivMode, TrapCause
from ..mem.ptw import PTE_R, PTE_U, PTE_W, PTE_X, PageFault, PageTableWalker
from .exec_scalar import Trap
from .memory import Memory

SATP_MODE_SV39 = 8
PAGE_SIZE = 4096

_FAULT_BY_ACCESS = {
    "r": TrapCause.LOAD_PAGE_FAULT,
    "w": TrapCause.STORE_PAGE_FAULT,
    "x": TrapCause.INSTRUCTION_PAGE_FAULT,
}
_PERM_BIT = {"r": PTE_R, "w": PTE_W, "x": PTE_X}


class VirtualMemoryView:
    """A Memory-compatible view applying SV39 translation on demand."""

    def __init__(self, physical: Memory, state):
        self.physical = physical
        self.state = state
        self._tlb: dict[int, tuple[int, int, int]] = {}  # vpn -> (base, size, flags)
        self._cached_root: int | None = None

    # -- control ---------------------------------------------------------------

    def flush_tlb(self) -> None:
        """sfence.vma: drop every cached translation."""
        self._tlb.clear()

    # -- translation -----------------------------------------------------------

    def _active(self) -> bool:
        if self.state.priv == PrivMode.MACHINE:
            return False
        satp = self.state.csrs.read(CSR_SATP)
        return (satp >> 60) == SATP_MODE_SV39

    def _root(self) -> int:
        satp = self.state.csrs.read(CSR_SATP)
        return (satp & ((1 << 44) - 1)) << 12

    def translate(self, vaddr: int, access: str) -> int:
        """Translate one address (no page crossing); may raise Trap."""
        if not self._active():
            return vaddr
        vpn = vaddr >> 12
        cached = self._tlb.get(vpn)
        if cached is None:
            root = self._root()
            if root != self._cached_root:
                self._tlb.clear()
                self._cached_root = root
            walker = PageTableWalker(self.physical, root)
            try:
                translation = walker.walk(vaddr)
            except PageFault:
                raise Trap(_FAULT_BY_ACCESS[access], vaddr) from None
            # Cache at 4K granularity (one entry per touched 4K page,
            # even inside a huge page) — what a 4K-indexed TLB sees.
            huge_base_va = vaddr - (vaddr % translation.page_size)
            huge_base_pa = translation.paddr - (vaddr % translation.page_size)
            va_page = vaddr & ~(PAGE_SIZE - 1)
            pa_page = huge_base_pa + (va_page - huge_base_va)
            cached = (pa_page, PAGE_SIZE, translation.flags)
            self._tlb[vpn] = cached
        base, size, flags = cached
        if not flags & _PERM_BIT[access]:
            raise Trap(_FAULT_BY_ACCESS[access], vaddr)
        if self.state.priv == PrivMode.USER and not flags & PTE_U:
            raise Trap(_FAULT_BY_ACCESS[access], vaddr)
        if self.state.priv == PrivMode.SUPERVISOR and flags & PTE_U \
                and access == "x":
            raise Trap(_FAULT_BY_ACCESS[access], vaddr)
        return base + (vaddr % size)

    # -- Memory protocol ----------------------------------------------------------

    def _split(self, addr: int, size: int):
        """Yield (vaddr, chunk) pieces that never cross a page."""
        while size > 0:
            chunk = min(size, PAGE_SIZE - (addr % PAGE_SIZE))
            yield addr, chunk
            addr += chunk
            size -= chunk

    def load_bytes(self, addr: int, size: int) -> bytes:
        if not self._active():
            return self.physical.load_bytes(addr, size)
        out = bytearray()
        for vaddr, chunk in self._split(addr, size):
            paddr = self.translate(vaddr, "r")
            out += self.physical.load_bytes(paddr, chunk)
        return bytes(out)

    def store_bytes(self, addr: int, data: bytes) -> None:
        if not self._active():
            self.physical.store_bytes(addr, data)
            return
        pos = 0
        for vaddr, chunk in self._split(addr, len(data)):
            paddr = self.translate(vaddr, "w")
            self.physical.store_bytes(paddr, data[pos:pos + chunk])
            pos += chunk

    def fetch_bytes(self, addr: int, size: int) -> bytes:
        """Instruction fetch: translated with execute permission."""
        if not self._active():
            return self.physical.load_bytes(addr, size)
        out = bytearray()
        for vaddr, chunk in self._split(addr, size):
            paddr = self.translate(vaddr, "x")
            out += self.physical.load_bytes(paddr, chunk)
        return bytes(out)

    # Convenience parity with Memory.
    def load_int(self, addr: int, size: int, signed: bool = False) -> int:
        value = int.from_bytes(self.load_bytes(addr, size), "little")
        if signed and value >= 1 << (size * 8 - 1):
            value -= 1 << (size * 8)
        return value

    def store_int(self, addr: int, value: int, size: int) -> None:
        self.store_bytes(addr, (value & ((1 << (size * 8)) - 1))
                         .to_bytes(size, "little"))

    def load_program(self, program) -> None:
        self.physical.load_program(program)

    def register_mmio(self, base: int, size: int, device) -> None:
        self.physical.register_mmio(base, size, device)

    @property
    def allocated_bytes(self) -> int:
        return self.physical.allocated_bytes
