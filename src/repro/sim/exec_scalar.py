"""Functional semantics for the scalar ISA (RV64IMAFD + XT extensions).

Each handler mutates the :class:`~repro.sim.state.MachineState` and
returns the next PC, or ``None`` for straight-line fall-through.  The
emulator records control/memory side effects via ``state.side``.
"""

from __future__ import annotations

import math
from typing import Callable

from ..isa.csr import TrapCause
from ..isa.instructions import Instruction
from .state import (
    MASK32,
    MASK64,
    MachineState,
    f32_bits_to_float,
    f64_bits_to_float,
    float_to_f32_bits,
    float_to_f64_bits,
    sext32,
    to_signed,
)


class Trap(Exception):
    """A synchronous exception raised mid-instruction."""

    def __init__(self, cause: TrapCause, tval: int = 0):
        super().__init__(cause.name)
        self.cause = cause
        self.tval = tval


class EcallShim(Exception):
    """Raised on ecall so the emulator can run the syscall shim."""


Handler = Callable[[MachineState, Instruction], int | None]
SCALAR_EXEC: dict[str, Handler] = {}


def _op(*names: str):
    def register(fn: Handler) -> Handler:
        for name in names:
            SCALAR_EXEC[name] = fn
        return fn
    return register


# -- integer computational -------------------------------------------------

# The integer handlers below spell out ``write_x`` (guard + masked
# store) because the method call costs more than the instruction
# semantics at interpreter speed.  ``(x ^ _SIGN64)`` turns an unsigned
# 64-bit compare into the signed one without the to_signed() calls.
_SIGN64 = 1 << 63


@_op("lui")
def _lui(s, i):
    if i.rd:
        s.regs[i.rd] = i.imm & MASK64


@_op("auipc")
def _auipc(s, i):
    if i.rd:
        s.regs[i.rd] = (s.pc + i.imm) & MASK64


@_op("addi")
def _addi(s, i):
    if i.rd:
        s.regs[i.rd] = (s.regs[i.rs1] + i.imm) & MASK64


@_op("slti")
def _slti(s, i):
    if i.rd:
        s.regs[i.rd] = int(to_signed(s.regs[i.rs1]) < i.imm)


@_op("sltiu")
def _sltiu(s, i):
    if i.rd:
        s.regs[i.rd] = int(s.regs[i.rs1] < (i.imm & MASK64))


@_op("xori")
def _xori(s, i):
    if i.rd:
        s.regs[i.rd] = (s.regs[i.rs1] ^ i.imm) & MASK64


@_op("ori")
def _ori(s, i):
    if i.rd:
        s.regs[i.rd] = (s.regs[i.rs1] | i.imm) & MASK64


@_op("andi")
def _andi(s, i):
    if i.rd:
        s.regs[i.rd] = (s.regs[i.rs1] & i.imm) & MASK64


@_op("slli")
def _slli(s, i):
    if i.rd:
        s.regs[i.rd] = (s.regs[i.rs1] << i.imm) & MASK64


@_op("srli")
def _srli(s, i):
    if i.rd:
        s.regs[i.rd] = s.regs[i.rs1] >> i.imm


@_op("srai")
def _srai(s, i):
    if i.rd:
        s.regs[i.rd] = (to_signed(s.regs[i.rs1]) >> i.imm) & MASK64


@_op("add")
def _add(s, i):
    if i.rd:
        s.regs[i.rd] = (s.regs[i.rs1] + s.regs[i.rs2]) & MASK64


@_op("sub")
def _sub(s, i):
    if i.rd:
        s.regs[i.rd] = (s.regs[i.rs1] - s.regs[i.rs2]) & MASK64


@_op("sll")
def _sll(s, i):
    if i.rd:
        s.regs[i.rd] = (s.regs[i.rs1] << (s.regs[i.rs2] & 63)) & MASK64


@_op("slt")
def _slt(s, i):
    if i.rd:
        s.regs[i.rd] = int((s.regs[i.rs1] ^ _SIGN64)
                           < (s.regs[i.rs2] ^ _SIGN64))


@_op("sltu")
def _sltu(s, i):
    if i.rd:
        s.regs[i.rd] = int(s.regs[i.rs1] < s.regs[i.rs2])


@_op("xor")
def _xor(s, i):
    if i.rd:
        s.regs[i.rd] = s.regs[i.rs1] ^ s.regs[i.rs2]


@_op("srl")
def _srl(s, i):
    if i.rd:
        s.regs[i.rd] = s.regs[i.rs1] >> (s.regs[i.rs2] & 63)


@_op("sra")
def _sra(s, i):
    if i.rd:
        s.regs[i.rd] = (to_signed(s.regs[i.rs1])
                        >> (s.regs[i.rs2] & 63)) & MASK64


@_op("or")
def _or(s, i):
    if i.rd:
        s.regs[i.rd] = s.regs[i.rs1] | s.regs[i.rs2]


@_op("and")
def _and(s, i):
    if i.rd:
        s.regs[i.rd] = s.regs[i.rs1] & s.regs[i.rs2]


@_op("addiw")
def _addiw(s, i):
    if i.rd:
        s.regs[i.rd] = sext32(s.regs[i.rs1] + i.imm) & MASK64


@_op("slliw")
def _slliw(s, i):
    if i.rd:
        s.regs[i.rd] = sext32(s.regs[i.rs1] << i.imm) & MASK64


@_op("srliw")
def _srliw(s, i):
    if i.rd:
        s.regs[i.rd] = sext32((s.regs[i.rs1] & MASK32) >> i.imm) & MASK64


@_op("sraiw")
def _sraiw(s, i):
    if i.rd:
        s.regs[i.rd] = sext32(to_signed(s.regs[i.rs1], 32) >> i.imm) \
            & MASK64


@_op("addw")
def _addw(s, i):
    if i.rd:
        s.regs[i.rd] = sext32(s.regs[i.rs1] + s.regs[i.rs2]) & MASK64


@_op("subw")
def _subw(s, i):
    if i.rd:
        s.regs[i.rd] = sext32(s.regs[i.rs1] - s.regs[i.rs2]) & MASK64


@_op("sllw")
def _sllw(s, i):
    if i.rd:
        s.regs[i.rd] = sext32(s.regs[i.rs1]
                              << (s.regs[i.rs2] & 31)) & MASK64


@_op("srlw")
def _srlw(s, i):
    if i.rd:
        s.regs[i.rd] = sext32((s.regs[i.rs1] & MASK32)
                              >> (s.regs[i.rs2] & 31)) & MASK64


@_op("sraw")
def _sraw(s, i):
    if i.rd:
        s.regs[i.rd] = sext32(to_signed(s.regs[i.rs1], 32)
                              >> (s.regs[i.rs2] & 31)) & MASK64


# -- control flow ------------------------------------------------------------

@_op("jal")
def _jal(s, i):
    s.write_x(i.rd, s.pc + i.size)
    s.side.taken = True
    s.side.target = (s.pc + i.imm) & MASK64
    return s.side.target


@_op("jalr")
def _jalr(s, i):
    target = (s.regs[i.rs1] + i.imm) & MASK64 & ~1
    s.write_x(i.rd, s.pc + i.size)
    s.side.taken = True
    s.side.target = target
    return target


def _branch(cond_fn):
    def handler(s, i):
        taken = cond_fn(s.regs[i.rs1], s.regs[i.rs2])
        side = s.side
        side.taken = taken
        target = (s.pc + i.imm) & MASK64
        side.target = target
        return target if taken else None
    return handler


SCALAR_EXEC["beq"] = _branch(lambda a, b: a == b)
SCALAR_EXEC["bne"] = _branch(lambda a, b: a != b)
SCALAR_EXEC["blt"] = _branch(lambda a, b: (a ^ _SIGN64) < (b ^ _SIGN64))
SCALAR_EXEC["bge"] = _branch(lambda a, b: (a ^ _SIGN64) >= (b ^ _SIGN64))
SCALAR_EXEC["bltu"] = _branch(lambda a, b: a < b)
SCALAR_EXEC["bgeu"] = _branch(lambda a, b: a >= b)


# -- memory ------------------------------------------------------------------

def _load(s: MachineState, i: Instruction):
    addr = (s.regs[i.rs1] + i.imm) & MASK64
    spec = i.spec
    s.side.mem_addr = addr
    s.side.mem_size = spec.mem_bytes
    value = s.memory.load_int(addr, spec.mem_bytes,
                              signed=not spec.mem_unsigned)
    if spec.rd_file == "f":
        if spec.mem_bytes == 4:
            value = (value & MASK32) | 0xFFFF_FFFF_0000_0000  # NaN-box
        s.fregs[i.rd] = value & MASK64
    else:
        s.write_x(i.rd, value)


for _mn in ("lb", "lh", "lw", "ld", "lbu", "lhu", "lwu", "flw", "fld"):
    SCALAR_EXEC[_mn] = _load


def _store(s: MachineState, i: Instruction):
    addr = (s.regs[i.rs1] + i.imm) & MASK64
    spec = i.spec
    s.side.mem_addr = addr
    s.side.mem_size = spec.mem_bytes
    value = s.fregs[i.rs2] if spec.rs2_file == "f" else s.regs[i.rs2]
    s.memory.store_int(addr, value, spec.mem_bytes)


for _mn in ("sb", "sh", "sw", "sd", "fsw", "fsd"):
    SCALAR_EXEC[_mn] = _store


# -- M extension -------------------------------------------------------------

@_op("mul")
def _mul(s, i):
    s.write_x(i.rd, s.regs[i.rs1] * s.regs[i.rs2])


@_op("mulh")
def _mulh(s, i):
    s.write_x(i.rd, (to_signed(s.regs[i.rs1]) * to_signed(s.regs[i.rs2])) >> 64)


@_op("mulhsu")
def _mulhsu(s, i):
    s.write_x(i.rd, (to_signed(s.regs[i.rs1]) * s.regs[i.rs2]) >> 64)


@_op("mulhu")
def _mulhu(s, i):
    s.write_x(i.rd, (s.regs[i.rs1] * s.regs[i.rs2]) >> 64)


def _record_div(s: MachineState, a: int, bits: int) -> None:
    """Record dividend magnitude for the early-out divider timing."""
    s.side.div_bits = abs(to_signed(a, bits)).bit_length()


def _divmod(a: int, b: int, signed: bool, bits: int) -> tuple[int, int]:
    """RISC-V division semantics: trunc toward zero, defined div-by-0."""
    if signed:
        a, b = to_signed(a, bits), to_signed(b, bits)
        if b == 0:
            return -1, a
        minval = -(1 << (bits - 1))
        if a == minval and b == -1:
            return minval, 0
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return q, a - q * b
    if b == 0:
        return (1 << bits) - 1, a
    return a // b, a % b


@_op("div")
def _div(s, i):
    _record_div(s, s.regs[i.rs1], 64)
    q, _ = _divmod(s.regs[i.rs1], s.regs[i.rs2], True, 64)
    s.write_x(i.rd, q)


@_op("divu")
def _divu(s, i):
    _record_div(s, s.regs[i.rs1], 64)
    q, _ = _divmod(s.regs[i.rs1], s.regs[i.rs2], False, 64)
    s.write_x(i.rd, q)


@_op("rem")
def _rem(s, i):
    _record_div(s, s.regs[i.rs1], 64)
    _, r = _divmod(s.regs[i.rs1], s.regs[i.rs2], True, 64)
    s.write_x(i.rd, r)


@_op("remu")
def _remu(s, i):
    _record_div(s, s.regs[i.rs1], 64)
    _, r = _divmod(s.regs[i.rs1], s.regs[i.rs2], False, 64)
    s.write_x(i.rd, r)


@_op("mulw")
def _mulw(s, i):
    s.write_x(i.rd, sext32(s.regs[i.rs1] * s.regs[i.rs2]))


@_op("divw")
def _divw(s, i):
    _record_div(s, s.regs[i.rs1] & MASK32, 32)
    q, _ = _divmod(s.regs[i.rs1] & MASK32, s.regs[i.rs2] & MASK32, True, 32)
    s.write_x(i.rd, sext32(q))


@_op("divuw")
def _divuw(s, i):
    _record_div(s, s.regs[i.rs1] & MASK32, 32)
    q, _ = _divmod(s.regs[i.rs1] & MASK32, s.regs[i.rs2] & MASK32, False, 32)
    s.write_x(i.rd, sext32(q))


@_op("remw")
def _remw(s, i):
    _record_div(s, s.regs[i.rs1] & MASK32, 32)
    _, r = _divmod(s.regs[i.rs1] & MASK32, s.regs[i.rs2] & MASK32, True, 32)
    s.write_x(i.rd, sext32(r))


@_op("remuw")
def _remuw(s, i):
    _record_div(s, s.regs[i.rs1] & MASK32, 32)
    _, r = _divmod(s.regs[i.rs1] & MASK32, s.regs[i.rs2] & MASK32, False, 32)
    s.write_x(i.rd, sext32(r))


# -- A extension -------------------------------------------------------------

def _amo(s: MachineState, i: Instruction):
    mn = i.spec.mnemonic
    op, width = mn.rsplit(".", 1)
    nbytes = 4 if width == "w" else 8
    addr = s.regs[i.rs1] & MASK64
    s.side.mem_addr = addr
    s.side.mem_size = nbytes
    if addr % nbytes:
        raise Trap(TrapCause.STORE_MISALIGNED, addr)
    if op == "lr":
        value = s.memory.load_int(addr, nbytes, signed=True)
        s.reservation = addr
        s.write_x(i.rd, value)
        return
    if op == "sc":
        if s.reservation == addr:
            s.memory.store_int(addr, s.regs[i.rs2], nbytes)
            s.write_x(i.rd, 0)
        else:
            s.write_x(i.rd, 1)
        s.reservation = None
        return
    old = s.memory.load_int(addr, nbytes, signed=True)
    rs2 = s.regs[i.rs2]
    bits = nbytes * 8
    if op == "amoswap":
        new = rs2
    elif op == "amoadd":
        new = old + rs2
    elif op == "amoxor":
        new = old ^ rs2
    elif op == "amoand":
        new = old & rs2
    elif op == "amoor":
        new = old | rs2
    elif op == "amomin":
        new = min(old, to_signed(rs2, bits))
    elif op == "amomax":
        new = max(old, to_signed(rs2, bits))
    elif op == "amominu":
        new = min(old & ((1 << bits) - 1), rs2 & ((1 << bits) - 1))
    else:  # amomaxu
        new = max(old & ((1 << bits) - 1), rs2 & ((1 << bits) - 1))
    s.memory.store_int(addr, new, nbytes)
    s.write_x(i.rd, sext32(old) if nbytes == 4 else old)


for _amo_op in ("lr", "sc", "amoswap", "amoadd", "amoxor", "amoand",
                "amoor", "amomin", "amomax", "amominu", "amomaxu"):
    for _w in ("w", "d"):
        SCALAR_EXEC[f"{_amo_op}.{_w}"] = _amo


# -- F / D -------------------------------------------------------------------

def _fsrc(s: MachineState, idx: int, single: bool) -> float:
    bits = s.fregs[idx]
    return f32_bits_to_float(bits) if single else f64_bits_to_float(bits)


def _fdst(s: MachineState, idx: int, value: float, single: bool) -> None:
    if single:
        s.fregs[idx] = float_to_f32_bits(value) | 0xFFFF_FFFF_0000_0000
    else:
        s.fregs[idx] = float_to_f64_bits(value)


def _fp_binop(fn, single: bool):
    def handler(s, i):
        a, b = _fsrc(s, i.rs1, single), _fsrc(s, i.rs2, single)
        try:
            value = fn(a, b)
        except ZeroDivisionError:
            value = math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
        except (OverflowError, ValueError):
            value = math.nan
        _fdst(s, i.rd, value, single)
    return handler


for _single, _sfx in ((True, "s"), (False, "d")):
    SCALAR_EXEC[f"fadd.{_sfx}"] = _fp_binop(lambda a, b: a + b, _single)
    SCALAR_EXEC[f"fsub.{_sfx}"] = _fp_binop(lambda a, b: a - b, _single)
    SCALAR_EXEC[f"fmul.{_sfx}"] = _fp_binop(lambda a, b: a * b, _single)
    SCALAR_EXEC[f"fdiv.{_sfx}"] = _fp_binop(lambda a, b: a / b, _single)
    SCALAR_EXEC[f"fmin.{_sfx}"] = _fp_binop(
        lambda a, b: b if (math.isnan(a) or b < a) else a, _single)
    SCALAR_EXEC[f"fmax.{_sfx}"] = _fp_binop(
        lambda a, b: b if (math.isnan(a) or b > a) else a, _single)


def _fsqrt(single: bool):
    def handler(s, i):
        a = _fsrc(s, i.rs1, single)
        _fdst(s, i.rd, math.sqrt(a) if a >= 0 else math.nan, single)
    return handler


SCALAR_EXEC["fsqrt.s"] = _fsqrt(True)
SCALAR_EXEC["fsqrt.d"] = _fsqrt(False)


def _fsgnj(kind: str, single: bool):
    width_sign = 1 << (31 if single else 63)
    mask = MASK32 if single else MASK64

    def handler(s, i):
        a = s.fregs[i.rs1] & mask
        b = s.fregs[i.rs2] & mask
        if kind == "j":
            sign = b & width_sign
        elif kind == "n":
            sign = (~b) & width_sign
        else:
            sign = (a ^ b) & width_sign
        value = (a & ~width_sign) | sign
        if single:
            value |= 0xFFFF_FFFF_0000_0000
        s.fregs[i.rd] = value
    return handler


for _single, _sfx in ((True, "s"), (False, "d")):
    SCALAR_EXEC[f"fsgnj.{_sfx}"] = _fsgnj("j", _single)
    SCALAR_EXEC[f"fsgnjn.{_sfx}"] = _fsgnj("n", _single)
    SCALAR_EXEC[f"fsgnjx.{_sfx}"] = _fsgnj("x", _single)


def _fcmp(fn, single: bool):
    def handler(s, i):
        a, b = _fsrc(s, i.rs1, single), _fsrc(s, i.rs2, single)
        if math.isnan(a) or math.isnan(b):
            s.write_x(i.rd, 0)
        else:
            s.write_x(i.rd, int(fn(a, b)))
    return handler


for _single, _sfx in ((True, "s"), (False, "d")):
    SCALAR_EXEC[f"feq.{_sfx}"] = _fcmp(lambda a, b: a == b, _single)
    SCALAR_EXEC[f"flt.{_sfx}"] = _fcmp(lambda a, b: a < b, _single)
    SCALAR_EXEC[f"fle.{_sfx}"] = _fcmp(lambda a, b: a <= b, _single)


def _fclass(single: bool):
    def handler(s, i):
        a = _fsrc(s, i.rs1, single)
        if math.isnan(a):
            cls = 9  # quiet NaN
        elif math.isinf(a):
            cls = 7 if a > 0 else 0
        elif a == 0:
            cls = 4 if math.copysign(1.0, a) > 0 else 3
        elif a > 0:
            cls = 6
        else:
            cls = 1
        s.write_x(i.rd, 1 << cls)
    return handler


SCALAR_EXEC["fclass.s"] = _fclass(True)
SCALAR_EXEC["fclass.d"] = _fclass(False)


def _fma(sign_prod: int, sign_addend: int, single: bool):
    def handler(s, i):
        a, b = _fsrc(s, i.rs1, single), _fsrc(s, i.rs2, single)
        c = _fsrc(s, i.rs3, single)
        _fdst(s, i.rd, sign_prod * a * b + sign_addend * c, single)
    return handler


for _single, _sfx in ((True, "s"), (False, "d")):
    SCALAR_EXEC[f"fmadd.{_sfx}"] = _fma(1, 1, _single)
    SCALAR_EXEC[f"fmsub.{_sfx}"] = _fma(1, -1, _single)
    SCALAR_EXEC[f"fnmsub.{_sfx}"] = _fma(-1, 1, _single)
    SCALAR_EXEC[f"fnmadd.{_sfx}"] = _fma(-1, -1, _single)


def _clamp_int(value: float, signed: bool, bits: int) -> int:
    if math.isnan(value):
        return (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
    lo = -(1 << (bits - 1)) if signed else 0
    hi = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
    if value < lo:
        return lo
    if value > hi:
        return hi
    return int(value)


def _fcvt_to_int(signed: bool, bits: int, single: bool):
    def handler(s, i):
        a = _fsrc(s, i.rs1, single)
        value = _clamp_int(a, signed, bits)
        s.write_x(i.rd, sext32(value) if bits == 32 else value)
    return handler


def _fcvt_from_int(signed: bool, bits: int, single: bool):
    def handler(s, i):
        raw = s.regs[i.rs1]
        value = to_signed(raw, bits) if signed else raw & ((1 << bits) - 1)
        _fdst(s, i.rd, float(value), single)
    return handler


for _single, _sfx in ((True, "s"), (False, "d")):
    for _int, _signed, _bits in (("w", True, 32), ("wu", False, 32),
                                 ("l", True, 64), ("lu", False, 64)):
        SCALAR_EXEC[f"fcvt.{_int}.{_sfx}"] = _fcvt_to_int(_signed, _bits, _single)
        SCALAR_EXEC[f"fcvt.{_sfx}.{_int}"] = _fcvt_from_int(_signed, _bits, _single)


@_op("fcvt.s.d")
def _fcvt_s_d(s, i):
    _fdst(s, i.rd, f64_bits_to_float(s.fregs[i.rs1]), True)


@_op("fcvt.d.s")
def _fcvt_d_s(s, i):
    _fdst(s, i.rd, f32_bits_to_float(s.fregs[i.rs1]), False)


@_op("fmv.x.w")
def _fmv_x_w(s, i):
    s.write_x(i.rd, sext32(s.fregs[i.rs1]))


@_op("fmv.w.x")
def _fmv_w_x(s, i):
    s.fregs[i.rd] = (s.regs[i.rs1] & MASK32) | 0xFFFF_FFFF_0000_0000


@_op("fmv.x.d")
def _fmv_x_d(s, i):
    s.write_x(i.rd, s.fregs[i.rs1])


@_op("fmv.d.x")
def _fmv_d_x(s, i):
    s.fregs[i.rd] = s.regs[i.rs1] & MASK64


# -- system ------------------------------------------------------------------

@_op("fence", "fence.i", "wfi", "sfence.vma",
     "dcache.call", "dcache.iall", "dcache.ciall", "dcache.cva",
     "dcache.iva", "dcache.civa", "icache.iall", "icache.iva",
     "tlbi.bcast")
def _fence(s, i):
    return None


@_op("ecall")
def _ecall(s, i):
    raise EcallShim()


@_op("ebreak")
def _ebreak(s, i):
    raise Trap(TrapCause.BREAKPOINT, s.pc)


def _csr_value(s: MachineState, i: Instruction) -> int:
    if i.spec.fmt == "CSRI":
        return i.aux
    return s.regs[i.rs1]


@_op("csrrw", "csrrwi")
def _csrrw(s, i):
    old = s.csrs.read(i.imm) if i.rd else 0
    s.csrs.write(i.imm, _csr_value(s, i))
    s.write_x(i.rd, old)
    _apply_csr_side_effects(s, i.imm)


@_op("csrrs", "csrrsi")
def _csrrs(s, i):
    value = _csr_value(s, i)
    old = s.csrs.read(i.imm)
    if value:
        s.csrs.write(i.imm, old | value)
        _apply_csr_side_effects(s, i.imm)
    s.write_x(i.rd, old)


@_op("csrrc", "csrrci")
def _csrrc(s, i):
    value = _csr_value(s, i)
    old = s.csrs.read(i.imm)
    if value:
        s.csrs.write(i.imm, old & ~value)
        _apply_csr_side_effects(s, i.imm)
    s.write_x(i.rd, old)


def _apply_csr_side_effects(s: MachineState, addr: int) -> None:
    from ..isa.csr import CSR_VL, CSR_VTYPE

    if addr == CSR_VTYPE:
        s.set_vtype(s.csrs.read(CSR_VTYPE), s.vl)
    elif addr == CSR_VL:
        s.vl = s.csrs.read(CSR_VL)


@_op("mret")
def _mret(s, i):
    from ..isa.csr import CSR_MEPC, CSR_MSTATUS, PrivMode

    # Restore the interrupt-enable stack: MIE <- MPIE, MPIE <- 1,
    # and drop to the privilege recorded in MPP.
    mstatus = s.csrs.read(CSR_MSTATUS)
    mpie = (mstatus >> 7) & 1
    mpp = (mstatus >> 11) & 3
    mstatus = (mstatus & ~0x8 & ~(3 << 11)) | (mpie << 3) | (1 << 7)
    s.csrs.write(CSR_MSTATUS, mstatus)
    s.priv = PrivMode(mpp) if mpp != 2 else PrivMode.MACHINE
    return s.csrs.read(CSR_MEPC)


@_op("sret")
def _sret(s, i):
    from ..isa.csr import CSR_SEPC

    return s.csrs.read(CSR_SEPC)


# -- XT custom extensions (section VIII) -------------------------------------

def _xt_index_addr(s: MachineState, i: Instruction) -> int:
    index = s.regs[i.rs2]
    if i.spec.funct7 & 0x08:  # address-generation zero extension
        index &= MASK32
    return (s.regs[i.rs1] + (index << i.aux)) & MASK64


def _xt_load(s: MachineState, i: Instruction):
    addr = _xt_index_addr(s, i)
    spec = i.spec
    s.side.mem_addr = addr
    s.side.mem_size = spec.mem_bytes
    s.write_x(i.rd, s.memory.load_int(addr, spec.mem_bytes,
                                      signed=not spec.mem_unsigned))


def _xt_store(s: MachineState, i: Instruction):
    addr = _xt_index_addr(s, i)
    spec = i.spec
    s.side.mem_addr = addr
    s.side.mem_size = spec.mem_bytes
    s.memory.store_int(addr, s.regs[i.rs3], spec.mem_bytes)


for _mn in ("lrb", "lrh", "lrw", "lrd", "lrbu", "lrhu", "lrwu"):
    SCALAR_EXEC[_mn] = _xt_load
    SCALAR_EXEC[f"{_mn}.u"] = _xt_load
for _mn in ("srb", "srh", "srw", "srd"):
    SCALAR_EXEC[_mn] = _xt_store
    SCALAR_EXEC[f"{_mn}.u"] = _xt_store


@_op("addsl")
def _addsl(s, i):
    s.write_x(i.rd, s.regs[i.rs1] + (s.regs[i.rs2] << i.aux))


@_op("ext")
def _ext(s, i):
    msb, lsb = i.imm >> 6 & 0x3F, i.imm & 0x3F
    width = msb - lsb + 1
    value = (s.regs[i.rs1] >> lsb) & ((1 << width) - 1)
    s.write_x(i.rd, to_signed(value, width))


@_op("extu")
def _extu(s, i):
    msb, lsb = i.imm >> 6 & 0x3F, i.imm & 0x3F
    width = msb - lsb + 1
    s.write_x(i.rd, (s.regs[i.rs1] >> lsb) & ((1 << width) - 1))


@_op("ff0")
def _ff0(s, i):
    value = s.regs[i.rs1]
    for bit in range(63, -1, -1):
        if not (value >> bit) & 1:
            s.write_x(i.rd, 63 - bit)
            return
    s.write_x(i.rd, 64)


@_op("ff1")
def _ff1(s, i):
    value = s.regs[i.rs1]
    s.write_x(i.rd, 64 - value.bit_length())


@_op("rev")
def _rev(s, i):
    s.write_x(i.rd, int.from_bytes(s.regs[i.rs1].to_bytes(8, "little"), "big"))


@_op("revw")
def _revw(s, i):
    low = s.regs[i.rs1] & MASK32
    s.write_x(i.rd, sext32(int.from_bytes(low.to_bytes(4, "little"), "big")))


@_op("tstnbz")
def _tstnbz(s, i):
    """Set each result byte to 0xFF where the source byte is zero."""
    value = s.regs[i.rs1]
    out = 0
    for byte in range(8):
        if not (value >> (byte * 8)) & 0xFF:
            out |= 0xFF << (byte * 8)
    s.write_x(i.rd, out)


@_op("srri")
def _srri(s, i):
    amount = i.imm & 63
    value = s.regs[i.rs1]
    s.write_x(i.rd, (value >> amount) | (value << (64 - amount)))


@_op("srriw")
def _srriw(s, i):
    amount = i.imm & 31
    value = s.regs[i.rs1] & MASK32
    rotated = ((value >> amount) | (value << (32 - amount))) & MASK32
    s.write_x(i.rd, sext32(rotated))


@_op("mula")
def _mula(s, i):
    s.write_x(i.rd, s.regs[i.rd] + s.regs[i.rs1] * s.regs[i.rs2])


@_op("muls")
def _muls(s, i):
    s.write_x(i.rd, s.regs[i.rd] - s.regs[i.rs1] * s.regs[i.rs2])


@_op("mulaw")
def _mulaw(s, i):
    s.write_x(i.rd, sext32(s.regs[i.rd] + s.regs[i.rs1] * s.regs[i.rs2]))


@_op("mulsw")
def _mulsw(s, i):
    s.write_x(i.rd, sext32(s.regs[i.rd] - s.regs[i.rs1] * s.regs[i.rs2]))


@_op("mulah")
def _mulah(s, i):
    prod = to_signed(s.regs[i.rs1], 16) * to_signed(s.regs[i.rs2], 16)
    s.write_x(i.rd, sext32(s.regs[i.rd] + prod))


@_op("mulsh")
def _mulsh(s, i):
    prod = to_signed(s.regs[i.rs1], 16) * to_signed(s.regs[i.rs2], 16)
    s.write_x(i.rd, sext32(s.regs[i.rd] - prod))
