"""Functional simulation substrate: emulator, memory, machine state."""

from .emulator import (  # noqa: F401
    Emulator,
    EmulatorError,
    MachineCheckError,
    WatchdogExpired,
    run_program,
)
from .memory import Memory  # noqa: F401
from .state import MachineState  # noqa: F401
from .syscalls import ExitRequest, SyscallShim  # noqa: F401
from .trace import DynInst  # noqa: F401
