"""Binary encode/decode for the 32-bit instruction formats.

The encoder produces real RISC-V machine words for the standard
instructions and well-formed custom-opcode words for the vector and XT
extensions; the decoder inverts the mapping.  The assembler writes these
words into program memory and the functional emulator decodes them back,
so the two directions are exercised against each other constantly (and
round-trip property tests in ``tests/isa`` pin them down).
"""

from __future__ import annotations

from .instructions import Instruction, InstrSpec, SPECS, compute_operands

MASK32 = 0xFFFFFFFF


class EncodingError(Exception):
    """Raised when an instruction cannot be encoded or decoded."""


def _field(value: int, lo: int, width: int) -> int:
    return (value >> lo) & ((1 << width) - 1)


def _sign_extend(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _check_signed(imm: int, bits: int, mnemonic: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= imm <= hi:
        raise EncodingError(
            f"{mnemonic}: immediate {imm} does not fit in {bits} signed bits")
    return imm & ((1 << bits) - 1)


# --------------------------------------------------------------------------
# Encoding
# --------------------------------------------------------------------------

def encode(inst: Instruction) -> int:
    """Encode a decoded/assembled instruction into a 32-bit word."""
    spec = inst.spec
    op = spec.opcode
    f3 = spec.funct3 or 0
    fmt = spec.fmt
    rd, rs1, rs2, rs3 = inst.rd, inst.rs1, inst.rs2, inst.rs3
    imm = inst.imm

    if fmt == "R":
        rd_slot = rd if spec.rd_file is not None else 0  # e.g. sfence.vma
        return ((spec.funct7 or 0) << 25 | rs2 << 20 | rs1 << 15
                | f3 << 12 | rd_slot << 7 | op)
    if fmt == "I":
        return (_check_signed(imm, 12, spec.mnemonic) << 20 | rs1 << 15
                | f3 << 12 | rd << 7 | op)
    if fmt == "S":
        v = _check_signed(imm, 12, spec.mnemonic)
        return (_field(v, 5, 7) << 25 | rs2 << 20 | rs1 << 15 | f3 << 12
                | _field(v, 0, 5) << 7 | op)
    if fmt == "B":
        if imm % 2:
            raise EncodingError(f"{spec.mnemonic}: branch offset {imm} is odd")
        v = _check_signed(imm, 13, spec.mnemonic)
        return (_field(v, 12, 1) << 31 | _field(v, 5, 6) << 25 | rs2 << 20
                | rs1 << 15 | f3 << 12 | _field(v, 1, 4) << 8
                | _field(v, 11, 1) << 7 | op)
    if fmt == "U":
        if not -(1 << 31) <= imm < (1 << 32):
            raise EncodingError(f"{spec.mnemonic}: U-imm {imm} out of range")
        return (imm & 0xFFFFF000) | rd << 7 | op
    if fmt == "J":
        if imm % 2:
            raise EncodingError(f"{spec.mnemonic}: jump offset {imm} is odd")
        v = _check_signed(imm, 21, spec.mnemonic)
        return (_field(v, 20, 1) << 31 | _field(v, 1, 10) << 21
                | _field(v, 11, 1) << 20 | _field(v, 12, 8) << 12
                | rd << 7 | op)
    if fmt == "SHIFT64":
        if not 0 <= imm < 64:
            raise EncodingError(f"{spec.mnemonic}: shamt {imm} out of range")
        return ((spec.funct7 or 0) << 26 | imm << 20 | rs1 << 15 | f3 << 12
                | rd << 7 | op)
    if fmt == "SHIFT32":
        if not 0 <= imm < 32:
            raise EncodingError(f"{spec.mnemonic}: shamt {imm} out of range")
        return ((spec.funct7 or 0) << 25 | imm << 20 | rs1 << 15 | f3 << 12
                | rd << 7 | op)
    if fmt == "CSR":
        return (imm & 0xFFF) << 20 | rs1 << 15 | f3 << 12 | rd << 7 | op
    if fmt == "CSRI":
        return ((imm & 0xFFF) << 20 | (inst.aux & 0x1F) << 15 | f3 << 12
                | rd << 7 | op)
    if fmt == "SYS":
        return (spec.funct7 or 0) << 20 | op
    if fmt == "FENCE":
        return f3 << 12 | op
    if fmt == "AMO":
        rs2_slot = rs2 if spec.rs2_file is not None else 0  # lr: rs2 = 0
        return ((spec.funct7 or 0) << 27 | (inst.aux & 0x3) << 25
                | rs2_slot << 20 | rs1 << 15 | f3 << 12 | rd << 7 | op)
    if fmt == "FR":
        return ((spec.funct7 or 0) << 25 | rs2 << 20 | rs1 << 15 | 0 << 12
                | rd << 7 | op)
    if fmt == "FR1":
        return ((spec.funct7 or 0) << 25 | 0 << 20 | rs1 << 15 | f3 << 12
                | rd << 7 | op)
    if fmt == "FR3":
        return ((spec.funct7 or 0) << 25 | rs2 << 20 | rs1 << 15 | f3 << 12
                | rd << 7 | op)
    if fmt == "FCVT":
        # spec.funct3 carries the rs2-slot sub-opcode; rm field is 0.
        return ((spec.funct7 or 0) << 25 | f3 << 20 | rs1 << 15 | 0 << 12
                | rd << 7 | op)
    if fmt == "R4":
        return (rs3 << 27 | (spec.funct7 or 0) << 25 | rs2 << 20 | rs1 << 15
                | 0 << 12 | rd << 7 | op)
    if fmt == "VSETVLI":
        return (imm & 0x7FF) << 20 | rs1 << 15 | 7 << 12 | rd << 7 | op
    if fmt == "VSETVL":
        return 0x40 << 25 | rs2 << 20 | rs1 << 15 | 7 << 12 | rd << 7 | op
    if fmt == "OPV":
        vm = inst.aux & 1
        if spec.rs1_file is None and spec.mnemonic.startswith("vmv.v"):
            rs1_slot = imm & 0x1F
        elif spec.rs1_file is None:
            rs1_slot = 0
        elif spec.rs1_file == "v" or spec.rs1_file in ("x", "f"):
            rs1_slot = rs1
        else:  # pragma: no cover - table guards this
            rs1_slot = 0
        if spec.funct3 == 3:  # OPIVI: immediate in the rs1 slot
            rs1_slot = imm & 0x1F
        rs2_slot = rs2 if spec.rs2_file is not None else 0
        return ((spec.funct7 or 0) << 26 | vm << 25 | rs2_slot << 20
                | rs1_slot << 15 | f3 << 12 | rd << 7 | op)
    if fmt in ("VL", "VLS", "VLX"):
        mop = {"VL": 0, "VLS": 2, "VLX": 3}[fmt]
        vm = inst.aux & 1
        stride = rs2 if fmt in ("VLS", "VLX") else 0  # unit-stride: lumop=0
        return (mop << 26 | vm << 25 | stride << 20 | rs1 << 15 | f3 << 12
                | rd << 7 | op)
    if fmt in ("VS", "VSS", "VSX"):
        mop = {"VS": 0, "VSS": 2, "VSX": 3}[fmt]
        vm = inst.aux & 1
        stride = rs2 if fmt in ("VSS", "VSX") else 0
        return (mop << 26 | vm << 25 | stride << 20 | rs1 << 15 | f3 << 12
                | rs3 << 7 | op)
    if fmt == "XTIDX":
        return (((spec.funct7 or 0) | (inst.aux & 3)) << 25 | rs2 << 20
                | rs1 << 15 | f3 << 12 | rd << 7 | op)
    if fmt == "XTIDXS":
        return (((spec.funct7 or 0) | (inst.aux & 3)) << 25 | rs2 << 20
                | rs1 << 15 | f3 << 12 | rs3 << 7 | op)
    if fmt == "XTBF":
        msb, lsb = _field(imm, 6, 6), _field(imm, 0, 6)
        return (msb << 26 | lsb << 20 | rs1 << 15 | f3 << 12 | rd << 7 | op)
    if fmt == "XTR1":
        return ((spec.funct7 or 0) << 25 | rs1 << 15 | f3 << 12 | rd << 7 | op)
    if fmt == "XTSH":
        if not 0 <= imm < 64:
            raise EncodingError(f"{spec.mnemonic}: shamt {imm} out of range")
        return 0x11 << 26 | imm << 20 | rs1 << 15 | f3 << 12 | rd << 7 | op
    if fmt == "XTMAC":
        return ((spec.funct7 or 0) << 25 | rs2 << 20 | rs1 << 15 | f3 << 12
                | rd << 7 | op)
    if fmt == "XTCMO":
        rs1_slot = rs1 if spec.rs1_file is not None else 0
        return ((spec.funct7 or 0) << 25 | rs1_slot << 15 | f3 << 12 | op)
    raise EncodingError(f"unknown format {fmt} for {spec.mnemonic}")


# --------------------------------------------------------------------------
# Decode tables built from SPECS
# --------------------------------------------------------------------------

_BY_OPCODE: dict[int, list[InstrSpec]] = {}
for _s in SPECS.values():
    _BY_OPCODE.setdefault(_s.opcode, []).append(_s)


def _index(fmt_set: tuple[str, ...], key_fn) -> dict:
    table: dict = {}
    for s in SPECS.values():
        if s.fmt in fmt_set:
            key = key_fn(s)
            if key in table:
                raise EncodingError(
                    f"decode-key collision: {s.mnemonic} vs {table[key].mnemonic}")
            table[key] = s
    return table


_I_TABLE = _index(("I",), lambda s: (s.opcode, s.funct3))
_S_TABLE = _index(("S",), lambda s: (s.opcode, s.funct3))
_B_TABLE = _index(("B",), lambda s: (s.opcode, s.funct3))
_R_TABLE = _index(("R",), lambda s: (s.opcode, s.funct3, s.funct7))
_SH64_TABLE = _index(("SHIFT64",), lambda s: (s.opcode, s.funct3, s.funct7))
_SH32_TABLE = _index(("SHIFT32",), lambda s: (s.opcode, s.funct3, s.funct7))
_CSR_TABLE = _index(("CSR", "CSRI"), lambda s: s.funct3)
_SYS_TABLE = _index(("SYS",), lambda s: s.funct7)
_AMO_TABLE = _index(("AMO",), lambda s: (s.funct3, s.funct7))
_FR_TABLE = _index(("FR",), lambda s: s.funct7)
_FR1_TABLE = _index(("FR1",), lambda s: (s.funct7, s.funct3 or 0))
_FR3_TABLE = _index(("FR3",), lambda s: (s.funct7, s.funct3))
_FCVT_TABLE = _index(("FCVT",), lambda s: (s.funct7, s.funct3))
_R4_TABLE = _index(("R4",), lambda s: (s.opcode, s.funct7))
_OPV_TABLE = _index(("OPV",), lambda s: (s.funct3, s.funct7))
_VL_TABLE = _index(("VL", "VLS", "VLX"), lambda s: (s.fmt, s.funct3))
_VS_TABLE = _index(("VS", "VSS", "VSX"), lambda s: (s.fmt, s.funct3))
_XTIDX_TABLE = _index(("XTIDX", "XTIDXS"), lambda s: (s.funct3, s.funct7))
_XT2_TABLE = _index(("XTBF", "XTR1", "XTSH", "XTMAC", "XTCMO"),
                    lambda s: (s.funct3, s.funct7))
_FENCE_TABLE = _index(("FENCE",), lambda s: s.funct3)


def _mk(spec: InstrSpec, raw: int, **kw) -> Instruction:
    inst = Instruction(spec=spec, raw=raw, size=4, **kw)
    compute_operands(inst)
    return inst


def decode_word(word: int) -> Instruction:
    """Decode a 32-bit instruction word."""
    word &= MASK32
    op = word & 0x7F
    rd = _field(word, 7, 5)
    f3 = _field(word, 12, 3)
    rs1 = _field(word, 15, 5)
    rs2 = _field(word, 20, 5)
    f7 = _field(word, 25, 7)

    if op in (0x37, 0x17):  # lui / auipc
        spec = SPECS["lui" if op == 0x37 else "auipc"]
        return _mk(spec, word, rd=rd, imm=_sign_extend(word & 0xFFFFF000, 32))
    if op == 0x6F:  # jal
        imm = (_field(word, 31, 1) << 20 | _field(word, 12, 8) << 12
               | _field(word, 20, 1) << 11 | _field(word, 21, 10) << 1)
        return _mk(SPECS["jal"], word, rd=rd, imm=_sign_extend(imm, 21))
    if op == 0x67:
        return _mk(SPECS["jalr"], word, rd=rd, rs1=rs1,
                   imm=_sign_extend(word >> 20, 12))
    if op == 0x63:
        spec = _B_TABLE.get((op, f3))
        if spec is None:
            raise EncodingError(f"bad branch funct3 {f3}")
        imm = (_field(word, 31, 1) << 12 | _field(word, 7, 1) << 11
               | _field(word, 25, 6) << 5 | _field(word, 8, 4) << 1)
        return _mk(spec, word, rs1=rs1, rs2=rs2, imm=_sign_extend(imm, 13))
    if op == 0x03 or (op == 0x07 and f3 in (2, 3)):
        spec = _I_TABLE.get((op, f3))
        if spec is None:
            raise EncodingError(f"bad load opcode {op:#x} funct3 {f3}")
        return _mk(spec, word, rd=rd, rs1=rs1,
                   imm=_sign_extend(word >> 20, 12))
    if op == 0x07:  # vector loads
        fmt = {0: "VL", 2: "VLS", 3: "VLX"}.get(_field(word, 26, 2), "VLS")
        spec = _VL_TABLE.get((fmt, f3))
        if spec is None:
            raise EncodingError(f"bad vector load funct3 {f3}")
        return _mk(spec, word, rd=rd, rs1=rs1, rs2=rs2,
                   aux=_field(word, 25, 1))
    if op == 0x23 or (op == 0x27 and f3 in (2, 3)):
        spec = _S_TABLE.get((op, f3))
        if spec is None:
            raise EncodingError(f"bad store opcode {op:#x} funct3 {f3}")
        imm = _field(word, 25, 7) << 5 | _field(word, 7, 5)
        return _mk(spec, word, rs1=rs1, rs2=rs2, imm=_sign_extend(imm, 12))
    if op == 0x27:  # vector stores
        fmt = {0: "VS", 2: "VSS", 3: "VSX"}.get(_field(word, 26, 2), "VSS")
        spec = _VS_TABLE.get((fmt, f3))
        if spec is None:
            raise EncodingError(f"bad vector store funct3 {f3}")
        return _mk(spec, word, rs1=rs1, rs2=rs2, rs3=rd,
                   aux=_field(word, 25, 1))
    if op in (0x13, 0x1B):
        if f3 in (1, 5):  # shifts
            if op == 0x13:
                spec = _SH64_TABLE.get((op, f3, _field(word, 26, 6)))
                shamt = _field(word, 20, 6)
            else:
                spec = _SH32_TABLE.get((op, f3, f7))
                shamt = _field(word, 20, 5)
            if spec is None:
                raise EncodingError(f"bad shift encoding {word:#010x}")
            return _mk(spec, word, rd=rd, rs1=rs1, imm=shamt)
        spec = _I_TABLE.get((op, f3))
        if spec is None:
            raise EncodingError(f"bad op-imm funct3 {f3}")
        return _mk(spec, word, rd=rd, rs1=rs1,
                   imm=_sign_extend(word >> 20, 12))
    if op in (0x33, 0x3B):
        spec = _R_TABLE.get((op, f3, f7))
        if spec is None:
            raise EncodingError(f"bad R-type {word:#010x}")
        return _mk(spec, word, rd=rd, rs1=rs1, rs2=rs2)
    if op == 0x0F:
        spec = _FENCE_TABLE.get(f3)
        if spec is None:
            raise EncodingError(f"bad fence funct3 {f3}")
        return _mk(spec, word)
    if op == 0x73:
        if f3 == 0:
            if f7 == 0x09:
                return _mk(SPECS["sfence.vma"], word, rs1=rs1, rs2=rs2)
            spec = _SYS_TABLE.get(word >> 20)
            if spec is None:
                raise EncodingError(f"bad system instruction {word:#010x}")
            return _mk(spec, word)
        spec = _CSR_TABLE.get(f3)
        if spec is None:
            raise EncodingError(f"bad csr funct3 {f3}")
        if spec.fmt == "CSRI":
            return _mk(spec, word, rd=rd, imm=word >> 20, aux=rs1)
        return _mk(spec, word, rd=rd, rs1=rs1, imm=word >> 20)
    if op == 0x2F:
        spec = _AMO_TABLE.get((f3, _field(word, 27, 5)))
        if spec is None:
            raise EncodingError(f"bad AMO {word:#010x}")
        return _mk(spec, word, rd=rd, rs1=rs1, rs2=rs2,
                   aux=_field(word, 25, 2))
    if op == 0x53:
        if f7 in _FR_TABLE:
            return _mk(_FR_TABLE[f7], word, rd=rd, rs1=rs1, rs2=rs2)
        if (f7, rs2) in _FCVT_TABLE:
            return _mk(_FCVT_TABLE[(f7, rs2)], word, rd=rd, rs1=rs1)
        if (f7, f3) in _FR3_TABLE:
            return _mk(_FR3_TABLE[(f7, f3)], word, rd=rd, rs1=rs1, rs2=rs2)
        if (f7, f3) in _FR1_TABLE:
            return _mk(_FR1_TABLE[(f7, f3)], word, rd=rd, rs1=rs1)
        raise EncodingError(f"bad FP instruction {word:#010x}")
    if op in (0x43, 0x47, 0x4B, 0x4F):
        spec = _R4_TABLE.get((op, _field(word, 25, 2)))
        if spec is None:
            raise EncodingError(f"bad R4 instruction {word:#010x}")
        return _mk(spec, word, rd=rd, rs1=rs1, rs2=rs2,
                   rs3=_field(word, 27, 5))
    if op == 0x57:
        if f3 == 7:
            if _field(word, 31, 1):
                return _mk(SPECS["vsetvl"], word, rd=rd, rs1=rs1, rs2=rs2)
            return _mk(SPECS["vsetvli"], word, rd=rd, rs1=rs1,
                       imm=_field(word, 20, 11))
        funct6 = _field(word, 26, 6)
        spec = _OPV_TABLE.get((f3, funct6))
        if spec is None:
            raise EncodingError(f"bad OP-V instruction {word:#010x}")
        vm = _field(word, 25, 1)
        kw: dict = {"rd": rd, "rs2": rs2, "aux": vm}
        if spec.funct3 == 3 or (spec.rs1_file is None
                                and spec.mnemonic.startswith("vmv.v")):
            kw["imm"] = _sign_extend(rs1, 5)
        elif spec.rs1_file is not None:
            kw["rs1"] = rs1
        return _mk(spec, word, **kw)
    if op == 0x0B:
        spec = _XTIDX_TABLE.get((f3, f7 & ~3))
        if spec is None:
            raise EncodingError(f"bad XT custom-0 instruction {word:#010x}")
        if spec.fmt == "XTIDXS":
            return _mk(spec, word, rs1=rs1, rs2=rs2, rs3=rd, aux=f7 & 3)
        return _mk(spec, word, rd=rd, rs1=rs1, rs2=rs2, aux=f7 & 3)
    if op == 0x2B:
        if f3 in (0, 1):  # ext/extu
            spec = _XT2_TABLE.get((f3, None))
            return _mk(spec, word, rd=rd, rs1=rs1,
                       imm=_field(word, 26, 6) << 6 | _field(word, 20, 6))
        if f3 == 2:
            spec = _XT2_TABLE.get((f3, f7))
            if spec is None:
                raise EncodingError(f"bad XT bitop {word:#010x}")
            return _mk(spec, word, rd=rd, rs1=rs1)
        if f3 in (3, 4):  # srri / srriw
            spec = _XT2_TABLE.get((f3, None))
            return _mk(spec, word, rd=rd, rs1=rs1, imm=_field(word, 20, 6))
        if f3 == 5:  # MAC family
            spec = _XT2_TABLE.get((f3, f7))
            if spec is None:
                raise EncodingError(f"bad XT MAC {word:#010x}")
            return _mk(spec, word, rd=rd, rs1=rs1, rs2=rs2)
        if f3 == 6:  # cache/TLB maintenance
            spec = _XT2_TABLE.get((f3, f7))
            if spec is None:
                raise EncodingError(f"bad XT cache op {word:#010x}")
            if spec.rs1_file is not None:
                return _mk(spec, word, rs1=rs1)
            return _mk(spec, word)
        raise EncodingError(f"bad XT custom-1 instruction {word:#010x}")
    raise EncodingError(f"unknown opcode {op:#04x} in word {word:#010x}")
