"""ISA definition: registers, instruction specs, encodings, CSRs.

Public surface:

* :mod:`repro.isa.registers` — register files and ABI names.
* :mod:`repro.isa.instructions` — :class:`InstrClass`,
  :class:`InstrSpec`, :class:`Instruction` and the ``SPECS`` table.
* :mod:`repro.isa.encoding` — 32-bit encode/decode.
* :mod:`repro.isa.compressed` — RVC expand/compress.
* :mod:`repro.isa.csr` — CSR addresses, privilege modes, ``CsrFile``.
"""

from .instructions import (  # noqa: F401
    CONTROL_CLASSES,
    Instruction,
    InstrClass,
    InstrSpec,
    LOAD_CLASSES,
    SPECS,
    STORE_CLASSES,
    VECTOR_CLASSES,
    compute_operands,
)
from .registers import Reg, f, v, x  # noqa: F401
from .encoding import EncodingError, decode_word, encode  # noqa: F401
from .compressed import compress, expand, is_compressed  # noqa: F401
from .csr import CsrFile, PrivMode, TrapCause  # noqa: F401
