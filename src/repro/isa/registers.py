"""Register files and ABI names for the RV64 ISA model.

XT-910 implements RV64GCV: 32 integer registers (x0-x31), 32 floating
point registers (f0-f31) and 32 vector registers (v0-v31).  The timing
model tracks operands as ``Reg`` tuples of (register file, index) so that
renaming and dependence tracking treat the three files uniformly.
"""

from __future__ import annotations

from typing import NamedTuple

XLEN = 64
NUM_GPRS = 32
NUM_FPRS = 32
NUM_VREGS = 32


class Reg(NamedTuple):
    """An architectural register operand: ('x'|'f'|'v', index)."""

    file: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.file}{self.index}"


def x(index: int) -> Reg:
    """Integer register ``x<index>``."""
    return Reg("x", index)


def f(index: int) -> Reg:
    """Floating point register ``f<index>``."""
    return Reg("f", index)


def v(index: int) -> Reg:
    """Vector register ``v<index>``."""
    return Reg("v", index)


ZERO = x(0)

# ABI names from the RISC-V calling convention.
ABI_GPR_NAMES = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
]

ABI_FPR_NAMES = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
]

_GPR_LOOKUP: dict[str, int] = {}
for _i, _name in enumerate(ABI_GPR_NAMES):
    _GPR_LOOKUP[_name] = _i
    _GPR_LOOKUP[f"x{_i}"] = _i
_GPR_LOOKUP["fp"] = 8  # alias for s0

_FPR_LOOKUP: dict[str, int] = {}
for _i, _name in enumerate(ABI_FPR_NAMES):
    _FPR_LOOKUP[_name] = _i
    _FPR_LOOKUP[f"f{_i}"] = _i

_VREG_LOOKUP: dict[str, int] = {f"v{_i}": _i for _i in range(NUM_VREGS)}


def parse_gpr(name: str) -> int:
    """Parse an integer-register name ('a0', 'x10', 'fp') to its index."""
    try:
        return _GPR_LOOKUP[name]
    except KeyError:
        raise ValueError(f"unknown integer register {name!r}") from None


def parse_fpr(name: str) -> int:
    """Parse a floating-point register name ('fa0', 'f10') to its index."""
    try:
        return _FPR_LOOKUP[name]
    except KeyError:
        raise ValueError(f"unknown FP register {name!r}") from None


def parse_vreg(name: str) -> int:
    """Parse a vector register name ('v0'..'v31') to its index."""
    try:
        return _VREG_LOOKUP[name]
    except KeyError:
        raise ValueError(f"unknown vector register {name!r}") from None


def gpr_name(index: int) -> str:
    """ABI name for integer register index."""
    return ABI_GPR_NAMES[index]


def fpr_name(index: int) -> str:
    """ABI name for floating point register index."""
    return ABI_FPR_NAMES[index]
