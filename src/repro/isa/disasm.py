"""Disassembler: Instruction -> assembly text.

Used by the profiler (the paper's CDS IDE ships a graphical profiler,
Fig. 16 — ours is textual) and by debugging tools.  Output round-trips
through the assembler for every encodable instruction, which the test
suite verifies property-style.
"""

from __future__ import annotations

from .csr import CSR_NAMES
from .instructions import Instruction
from .registers import fpr_name, gpr_name

_CSR_BY_ADDR = {addr: name for name, addr in CSR_NAMES.items()}


def _x(index: int) -> str:
    return gpr_name(index)


def _f(index: int) -> str:
    return fpr_name(index)


def _v(index: int) -> str:
    return f"v{index}"


def _csr(addr: int) -> str:
    return _CSR_BY_ADDR.get(addr, hex(addr))


def disassemble(inst: Instruction, pc: int | None = None) -> str:
    """Render *inst* as assembler-compatible text.

    Branch/jump targets are rendered as absolute addresses when *pc*
    is given, else as relative offsets (``. + imm``).
    """
    spec = inst.spec
    mn = spec.mnemonic
    fmt = spec.fmt

    def target() -> str:
        if pc is not None:
            return hex(pc + inst.imm)
        return f". + {inst.imm}" if inst.imm >= 0 else f". - {-inst.imm}"

    if fmt == "R":
        if mn == "sfence.vma":
            return f"sfence.vma {_x(inst.rs1)}, {_x(inst.rs2)}"
        return f"{mn} {_x(inst.rd)}, {_x(inst.rs1)}, {_x(inst.rs2)}"
    if fmt == "I":
        if spec.iclass.value == "load":
            reg = _f(inst.rd) if spec.rd_file == "f" else _x(inst.rd)
            return f"{mn} {reg}, {inst.imm}({_x(inst.rs1)})"
        if mn == "jalr":
            return f"jalr {_x(inst.rd)}, {inst.imm}({_x(inst.rs1)})"
        return f"{mn} {_x(inst.rd)}, {_x(inst.rs1)}, {inst.imm}"
    if fmt == "S":
        reg = _f(inst.rs2) if spec.rs2_file == "f" else _x(inst.rs2)
        return f"{mn} {reg}, {inst.imm}({_x(inst.rs1)})"
    if fmt == "B":
        return f"{mn} {_x(inst.rs1)}, {_x(inst.rs2)}, {target()}"
    if fmt == "U":
        return f"{mn} {_x(inst.rd)}, {inst.imm >> 12}"
    if fmt == "J":
        return f"{mn} {_x(inst.rd)}, {target()}"
    if fmt in ("SHIFT64", "SHIFT32"):
        return f"{mn} {_x(inst.rd)}, {_x(inst.rs1)}, {inst.imm}"
    if fmt == "CSR":
        return f"{mn} {_x(inst.rd)}, {_csr(inst.imm)}, {_x(inst.rs1)}"
    if fmt == "CSRI":
        return f"{mn} {_x(inst.rd)}, {_csr(inst.imm)}, {inst.aux}"
    if fmt in ("SYS", "FENCE"):
        return mn
    if fmt == "AMO":
        if mn.startswith("lr."):
            return f"{mn} {_x(inst.rd)}, ({_x(inst.rs1)})"
        return f"{mn} {_x(inst.rd)}, {_x(inst.rs2)}, ({_x(inst.rs1)})"
    if fmt in ("FR", "FR3"):
        rd = _x(inst.rd) if spec.rd_file == "x" else _f(inst.rd)
        return f"{mn} {rd}, {_f(inst.rs1)}, {_f(inst.rs2)}"
    if fmt in ("FR1", "FCVT"):
        rd = _x(inst.rd) if spec.rd_file == "x" else _f(inst.rd)
        rs1 = _x(inst.rs1) if spec.rs1_file == "x" else _f(inst.rs1)
        return f"{mn} {rd}, {rs1}"
    if fmt == "R4":
        return (f"{mn} {_f(inst.rd)}, {_f(inst.rs1)}, {_f(inst.rs2)}, "
                f"{_f(inst.rs3)}")
    if fmt == "VSETVLI":
        from ..asm.assembler import decode_vtype

        sew, lmul = decode_vtype(inst.imm)
        return (f"vsetvli {_x(inst.rd)}, {_x(inst.rs1)}, e{sew}, m{lmul}")
    if fmt == "VSETVL":
        return f"vsetvl {_x(inst.rd)}, {_x(inst.rs1)}, {_x(inst.rs2)}"
    if fmt == "OPV":
        return _disasm_opv(inst)
    if fmt in ("VL", "VS"):
        reg = _v(inst.rd if fmt == "VL" else inst.rs3)
        mask = "" if inst.aux else ", v0.t"
        return f"{mn} {reg}, ({_x(inst.rs1)}){mask}"
    if fmt in ("VLS", "VSS"):
        reg = _v(inst.rd if fmt == "VLS" else inst.rs3)
        mask = "" if inst.aux else ", v0.t"
        return f"{mn} {reg}, ({_x(inst.rs1)}), {_x(inst.rs2)}{mask}"
    if fmt in ("VLX", "VSX"):
        reg = _v(inst.rd if fmt == "VLX" else inst.rs3)
        mask = "" if inst.aux else ", v0.t"
        return f"{mn} {reg}, ({_x(inst.rs1)}), {_v(inst.rs2)}{mask}"
    if fmt == "XTIDX":
        return (f"{mn} {_x(inst.rd)}, {_x(inst.rs1)}, {_x(inst.rs2)}, "
                f"{inst.aux}")
    if fmt == "XTIDXS":
        return (f"{mn} {_x(inst.rs3)}, {_x(inst.rs1)}, {_x(inst.rs2)}, "
                f"{inst.aux}")
    if fmt == "XTBF":
        return (f"{mn} {_x(inst.rd)}, {_x(inst.rs1)}, "
                f"{inst.imm >> 6 & 0x3F}, {inst.imm & 0x3F}")
    if fmt == "XTR1":
        return f"{mn} {_x(inst.rd)}, {_x(inst.rs1)}"
    if fmt == "XTSH":
        return f"{mn} {_x(inst.rd)}, {_x(inst.rs1)}, {inst.imm}"
    if fmt == "XTMAC":
        return f"{mn} {_x(inst.rd)}, {_x(inst.rs1)}, {_x(inst.rs2)}"
    if fmt == "XTCMO":
        if spec.rs1_file is not None:
            return f"{mn} {_x(inst.rs1)}"
        return mn
    return mn  # pragma: no cover


def _disasm_opv(inst: Instruction) -> str:
    spec = inst.spec
    mn = spec.mnemonic
    mask = "" if inst.aux else ", v0.t"
    if mn == "vmv.v.v":
        return f"{mn} {_v(inst.rd)}, {_v(inst.rs1)}"
    if mn == "vmv.v.x":
        return f"{mn} {_v(inst.rd)}, {_x(inst.rs1)}"
    if mn == "vmv.v.i":
        return f"{mn} {_v(inst.rd)}, {inst.imm}"
    if mn == "vmv.x.s":
        return f"{mn} {_x(inst.rd)}, {_v(inst.rs2)}"
    if mn == "vmv.s.x":
        return f"{mn} {_v(inst.rd)}, {_x(inst.rs1)}"
    if mn == "vfsqrt.v":
        return f"{mn} {_v(inst.rd)}, {_v(inst.rs2)}{mask}"
    base = mn.split(".", 1)[0]
    mac = base in ("vmacc", "vnmsac", "vmadd", "vwmacc", "vwmaccu",
                   "vfmacc", "vfnmacc", "vfmadd")
    if spec.rs1_file == "v":
        operand = _v(inst.rs1)
    elif spec.rs1_file == "x":
        operand = _x(inst.rs1)
    elif spec.rs1_file == "f":
        operand = _f(inst.rs1)
    else:
        operand = str(inst.imm)
    rd = _v(inst.rd) if spec.rd_file == "v" else _x(inst.rd)
    if mac:
        return f"{mn} {rd}, {operand}, {_v(inst.rs2)}{mask}"
    return f"{mn} {rd}, {_v(inst.rs2)}, {operand}{mask}"


def disassemble_program(program, limit: int | None = None) -> list[str]:
    """Disassemble a Program's text section; returns 'addr: text' lines."""
    from .classify import iter_parcels

    lines: list[str] = []
    for addr, inst, half in iter_parcels(program):
        if limit is not None and len(lines) >= limit:
            break
        if inst is None:
            lines.append(f"{addr:#x}: .half {half:#06x}")
        else:
            lines.append(f"{addr:#x}: {disassemble(inst, pc=addr)}")
    return lines
