"""Decode iteration and instruction classification helpers.

Shared by the disassembler, the static analyzer (:mod:`repro.analysis`)
and the runtime sanitizer: one place that knows how to walk a
``Program``'s text section parcel by parcel and how to tell calls,
returns, indirect jumps and vector-configured instructions apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING

from .compressed import expand, is_compressed
from .encoding import decode_word
from .instructions import VECTOR_CLASSES, Instruction, InstrClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (asm -> isa)
    from ..asm.program import Program

#: ABI link / stack / global-pointer register indices.
RA = 1
SP = 2
GP = 3

#: Integer registers the RISC-V calling convention requires a callee to
#: preserve (s0-s11; sp is checked separately by the stack-balance pass).
CALLEE_SAVED_X = frozenset({8, 9, *range(18, 28)})
#: FP callee-saved registers (fs0-fs11).
CALLEE_SAVED_F = frozenset({8, 9, *range(18, 28)})
#: Caller-saved integer registers (ra, t0-t6, a0-a7): an unknown callee
#: must be assumed to clobber these.
CALLER_SAVED_X = frozenset({1, *range(5, 8), *range(10, 18),
                            *range(28, 32)})

#: Vector classes that require a prior ``vsetvl``/``vsetvli`` to have
#: established SEW/LMUL/VL (every vector instruction except the config
#: instructions themselves).
VECTOR_CONFIGURED_CLASSES = frozenset(
    (VECTOR_CLASSES - {InstrClass.VSET})
    | {InstrClass.VLOAD, InstrClass.VSTORE})


@dataclass(frozen=True)
class DecodedInst:
    """One statically decoded text-section instruction.

    ``line`` is the 1-based source line the assembler recorded for this
    address (0 when the program carries no provenance, e.g. raw blobs).
    """

    addr: int
    inst: Instruction
    line: int

    @property
    def end(self) -> int:
        return self.addr + self.inst.size


def iter_parcels(program: Program) -> Iterator[tuple[int, Instruction | None, int]]:
    """Walk the text section, yielding ``(addr, inst | None, halfword)``.

    Undecodable parcels yield ``inst=None`` and advance by two bytes,
    matching the disassembler's resynchronisation behaviour.
    """
    text = program.text
    pos = 0
    while pos < len(text):
        addr = program.text_base + pos
        half = int.from_bytes(text[pos:pos + 2], "little")
        try:
            if is_compressed(half):
                inst = expand(half)
            else:
                word = int.from_bytes(text[pos:pos + 4], "little")
                inst = decode_word(word)
        except Exception:
            yield addr, None, half
            pos += 2
            continue
        yield addr, inst, half
        pos += inst.size


def iter_text(program: Program) -> Iterator[DecodedInst]:
    """Decode the whole text section into :class:`DecodedInst` records,
    skipping undecodable parcels."""
    lines = getattr(program, "lines", None) or {}
    for addr, inst, _half in iter_parcels(program):
        if inst is not None:
            yield DecodedInst(addr=addr, inst=inst,
                              line=lines.get(addr, 0))


# -- control-flow classification -------------------------------------------

def is_branch(inst: Instruction) -> bool:
    """Conditional branch (two successors)."""
    return inst.spec.iclass is InstrClass.BRANCH


def is_call(inst: Instruction) -> bool:
    """``jal``/``jalr`` writing the link register (function call)."""
    return (inst.spec.iclass is InstrClass.JUMP and inst.rd == RA)


def is_ret(inst: Instruction) -> bool:
    """``jalr x0, 0(ra)`` — the canonical function return."""
    return (inst.spec.mnemonic == "jalr" and inst.rd == 0
            and inst.rs1 == RA and inst.imm == 0)


def is_plain_jump(inst: Instruction) -> bool:
    """``jal x0, target`` — unconditional direct jump."""
    return inst.spec.mnemonic == "jal" and inst.rd == 0


def is_indirect_jump(inst: Instruction) -> bool:
    """``jalr`` that is neither a call nor a return (jump tables)."""
    return (inst.spec.mnemonic == "jalr" and inst.rd != RA
            and not is_ret(inst))


def jump_target(inst: Instruction, addr: int) -> int:
    """Static target of a direct branch or ``jal`` at *addr*."""
    return (addr + inst.imm) & ((1 << 64) - 1)


def needs_vector_config(inst: Instruction) -> bool:
    """Whether *inst* executes under the vtype/vl set by ``vsetvl``."""
    return inst.spec.iclass in VECTOR_CONFIGURED_CLASSES


def is_vector_config(inst: Instruction) -> bool:
    return inst.spec.iclass is InstrClass.VSET


def exit_syscall_value(insts: list[DecodedInst], index: int) -> int | None:
    """Static a7 value at the ``ecall`` at ``insts[index]``, if known.

    Scans backwards within the straight-line run for the closest write
    to a7 (x17); returns its immediate when it is a plain
    ``addi a7, x0, imm`` (the ``li`` expansion), else ``None``.
    """
    for prior in reversed(insts[:index]):
        inst = prior.inst
        if inst.rd == 17 and inst.spec.rd_file == "x":
            if inst.spec.mnemonic == "addi" and inst.rs1 == 0:
                return inst.imm
            return None
        if inst.spec.iclass in (InstrClass.BRANCH, InstrClass.JUMP):
            return None
    return None
