"""Instruction specifications for the XT-910 ISA model.

The table below covers:

* RV64I base integer ISA (the G in RV64GCV, minus CSR plumbing handled
  by :mod:`repro.isa.csr`),
* the M (multiply/divide) and A (atomics) standard extensions,
* a working subset of F/D (single/double float) sufficient for the
  paper's workloads,
* an RVV-0.7.1-flavoured vector extension (section VII of the paper),
* the XT-910 non-standard extensions (section VIII): indexed loads and
  stores, address-generation zero extension, bit manipulation, and
  multiply-accumulate.

Each mnemonic maps to an :class:`InstrSpec` that records its binary
format, opcode fields, and timing class.  Decoded instructions are
:class:`Instruction` instances carrying resolved operand indices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .registers import Reg


class InstrClass(enum.Enum):
    """Timing class: selects the execution pipe and latency in the core."""

    ALU = "alu"            # single-cycle integer ALU
    MUL = "mul"            # integer multiply (shares pipe with ALUs)
    DIV = "div"            # integer divide (shares pipe with multi-cycle ALU)
    BRANCH = "branch"      # conditional branch (BJU)
    JUMP = "jump"          # jal/jalr (BJU)
    LOAD = "load"          # LSU load pipe
    STORE = "store"        # LSU store pipe (split into st.addr / st.data uops)
    AMO = "amo"            # atomic memory op (LSU, serialized)
    FP = "fp"              # FP add/sub/convert/compare/move
    FMUL = "fmul"          # FP multiply / fused multiply-add
    FDIV = "fdiv"          # FP divide / sqrt
    CSR = "csr"            # CSR access (serializing)
    SYSTEM = "system"      # ecall/ebreak/fence/sfence
    VSET = "vset"          # vsetvl/vsetvli configuration
    VALU = "valu"          # vector integer ALU
    VMUL = "vmul"          # vector multiply / MAC
    VDIV = "vdiv"          # vector divide
    VFP = "vfp"            # vector FP add-class
    VFMUL = "vfmul"        # vector FP multiply / FMA
    VFDIV = "vfdiv"        # vector FP divide / sqrt
    VLOAD = "vload"        # vector load
    VSTORE = "vstore"      # vector store
    VREDUCE = "vreduce"    # vector reduction
    VPERM = "vperm"        # cross-slice permutation (slide, gather, ...)


#: Classes executed by the LSU load pipe.
LOAD_CLASSES = frozenset({InstrClass.LOAD, InstrClass.VLOAD, InstrClass.AMO})
#: Classes executed by the LSU store pipe.
STORE_CLASSES = frozenset({InstrClass.STORE, InstrClass.VSTORE})
#: Control-flow classes.
CONTROL_CLASSES = frozenset({InstrClass.BRANCH, InstrClass.JUMP})
#: Vector classes (dispatched to the vector slices).
VECTOR_CLASSES = frozenset(
    {
        InstrClass.VALU,
        InstrClass.VMUL,
        InstrClass.VDIV,
        InstrClass.VFP,
        InstrClass.VFMUL,
        InstrClass.VFDIV,
        InstrClass.VREDUCE,
        InstrClass.VPERM,
        InstrClass.VSET,
    }
)


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic.

    ``fmt`` selects the binary layout understood by
    :mod:`repro.isa.encoding`; the ``*_file`` fields say which register
    file (``'x'``, ``'f'``, ``'v'`` or ``None``) each operand slot uses,
    which drives both operand parsing in the assembler and dependence
    tracking in the timing model.
    """

    mnemonic: str
    fmt: str
    iclass: InstrClass
    opcode: int
    funct3: int | None = None
    funct7: int | None = None
    rd_file: str | None = "x"
    rs1_file: str | None = "x"
    rs2_file: str | None = None
    rs3_file: str | None = None
    mem_bytes: int = 0        # access width for loads/stores
    mem_unsigned: bool = False


@dataclass(slots=True)
class Instruction:
    """A decoded instruction instance."""

    spec: InstrSpec
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    rs3: int = 0
    imm: int = 0
    aux: int = 0          # XT shift amount, vector vm bit, AMO aq/rl, ...
    size: int = 4         # 4 or 2 (compressed)
    raw: int = 0
    srcs: tuple[Reg, ...] = field(default=())
    dests: tuple[Reg, ...] = field(default=())

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def iclass(self) -> InstrClass:
        return self.spec.iclass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Instruction({self.spec.mnemonic} rd={self.rd} rs1={self.rs1} "
            f"rs2={self.rs2} imm={self.imm})"
        )


def compute_operands(inst: Instruction) -> None:
    """Fill ``inst.srcs``/``inst.dests`` from the spec's register files.

    x0 never appears as a tracked operand: it is hardwired zero, reads
    are free and writes are discarded, so the renamer must not create a
    dependence through it.
    """
    spec = inst.spec
    srcs: list[Reg] = []
    dests: list[Reg] = []
    if spec.rs1_file and not (spec.rs1_file == "x" and inst.rs1 == 0):
        srcs.append(Reg(spec.rs1_file, inst.rs1))
    if spec.rs2_file and not (spec.rs2_file == "x" and inst.rs2 == 0):
        srcs.append(Reg(spec.rs2_file, inst.rs2))
    if spec.rs3_file and not (spec.rs3_file == "x" and inst.rs3 == 0):
        srcs.append(Reg(spec.rs3_file, inst.rs3))
    if spec.rd_file and not (spec.rd_file == "x" and inst.rd == 0):
        dests.append(Reg(spec.rd_file, inst.rd))
    # Vector ops under mask implicitly read v0; widening MACs read vd.
    if (spec.fmt in ("OPV", "VL", "VS", "VLS", "VSS", "VLX", "VSX")
            and inst.aux == 0):
        srcs.append(Reg("v", 0))
    if spec.mnemonic in _VD_IS_SOURCE:
        srcs.append(Reg("v", inst.rd))
    if spec.mnemonic in _XT_RD_IS_SOURCE and inst.rd != 0:
        srcs.append(Reg("x", inst.rd))
    inst.srcs = tuple(srcs)
    inst.dests = tuple(dests)


#: Vector mnemonics whose destination is also a source (accumulators).
_VD_IS_SOURCE = frozenset(
    {"vmacc.vv", "vmacc.vx", "vnmsac.vv", "vnmsac.vx",
     "vmadd.vv", "vmadd.vx", "vwmacc.vv", "vwmacc.vx",
     "vfmacc.vv", "vfmacc.vf", "vfnmacc.vv", "vfnmacc.vf",
     "vfmadd.vv", "vfmadd.vf", "vwmaccu.vv", "vwmaccu.vx"}
)

#: XT MAC mnemonics whose rd is an accumulator (read-modify-write).
_XT_RD_IS_SOURCE = frozenset(
    {"mula", "muls", "mulaw", "mulsw", "mulah", "mulsh"}
)


SPECS: dict[str, InstrSpec] = {}


def _spec(mnemonic: str, **kwargs) -> InstrSpec:
    spec = InstrSpec(mnemonic=mnemonic, **kwargs)
    if mnemonic in SPECS:
        raise ValueError(f"duplicate spec {mnemonic}")
    SPECS[mnemonic] = spec
    return spec


# --------------------------------------------------------------------------
# RV64I base
# --------------------------------------------------------------------------

_spec("lui", fmt="U", iclass=InstrClass.ALU, opcode=0x37, rs1_file=None)
_spec("auipc", fmt="U", iclass=InstrClass.ALU, opcode=0x17, rs1_file=None)
_spec("jal", fmt="J", iclass=InstrClass.JUMP, opcode=0x6F, rs1_file=None)
_spec("jalr", fmt="I", iclass=InstrClass.JUMP, opcode=0x67, funct3=0)

for _i, _br in enumerate(["beq", "bne", None, None, "blt", "bge", "bltu", "bgeu"]):
    if _br:
        _spec(_br, fmt="B", iclass=InstrClass.BRANCH, opcode=0x63, funct3=_i,
              rd_file=None, rs2_file="x")

for _f3, (_ld, _nbytes, _uns) in {
    0: ("lb", 1, False), 1: ("lh", 2, False), 2: ("lw", 4, False),
    3: ("ld", 8, False), 4: ("lbu", 1, True), 5: ("lhu", 2, True),
    6: ("lwu", 4, True),
}.items():
    _spec(_ld, fmt="I", iclass=InstrClass.LOAD, opcode=0x03, funct3=_f3,
          mem_bytes=_nbytes, mem_unsigned=_uns)

for _f3, (_st, _nbytes) in {0: ("sb", 1), 1: ("sh", 2), 2: ("sw", 4), 3: ("sd", 8)}.items():
    _spec(_st, fmt="S", iclass=InstrClass.STORE, opcode=0x23, funct3=_f3,
          rd_file=None, rs2_file="x", mem_bytes=_nbytes)

for _f3, _op in {0: "addi", 2: "slti", 3: "sltiu", 4: "xori", 6: "ori", 7: "andi"}.items():
    _spec(_op, fmt="I", iclass=InstrClass.ALU, opcode=0x13, funct3=_f3)

_spec("slli", fmt="SHIFT64", iclass=InstrClass.ALU, opcode=0x13, funct3=1, funct7=0x00)
_spec("srli", fmt="SHIFT64", iclass=InstrClass.ALU, opcode=0x13, funct3=5, funct7=0x00)
_spec("srai", fmt="SHIFT64", iclass=InstrClass.ALU, opcode=0x13, funct3=5, funct7=0x10)

for _f3, _f7, _op in [
    (0, 0x00, "add"), (0, 0x20, "sub"), (1, 0x00, "sll"), (2, 0x00, "slt"),
    (3, 0x00, "sltu"), (4, 0x00, "xor"), (5, 0x00, "srl"), (5, 0x20, "sra"),
    (6, 0x00, "or"), (7, 0x00, "and"),
]:
    _spec(_op, fmt="R", iclass=InstrClass.ALU, opcode=0x33, funct3=_f3,
          funct7=_f7, rs2_file="x")

_spec("addiw", fmt="I", iclass=InstrClass.ALU, opcode=0x1B, funct3=0)
_spec("slliw", fmt="SHIFT32", iclass=InstrClass.ALU, opcode=0x1B, funct3=1, funct7=0x00)
_spec("srliw", fmt="SHIFT32", iclass=InstrClass.ALU, opcode=0x1B, funct3=5, funct7=0x00)
_spec("sraiw", fmt="SHIFT32", iclass=InstrClass.ALU, opcode=0x1B, funct3=5, funct7=0x20)

for _f3, _f7, _op in [
    (0, 0x00, "addw"), (0, 0x20, "subw"), (1, 0x00, "sllw"),
    (5, 0x00, "srlw"), (5, 0x20, "sraw"),
]:
    _spec(_op, fmt="R", iclass=InstrClass.ALU, opcode=0x3B, funct3=_f3,
          funct7=_f7, rs2_file="x")

_spec("fence", fmt="FENCE", iclass=InstrClass.SYSTEM, opcode=0x0F, funct3=0,
      rd_file=None, rs1_file=None)
_spec("fence.i", fmt="FENCE", iclass=InstrClass.SYSTEM, opcode=0x0F, funct3=1,
      rd_file=None, rs1_file=None)
_spec("ecall", fmt="SYS", iclass=InstrClass.SYSTEM, opcode=0x73, funct3=0,
      funct7=0x00, rd_file=None, rs1_file=None)
_spec("ebreak", fmt="SYS", iclass=InstrClass.SYSTEM, opcode=0x73, funct3=0,
      funct7=0x01, rd_file=None, rs1_file=None)
_spec("mret", fmt="SYS", iclass=InstrClass.SYSTEM, opcode=0x73, funct3=0,
      funct7=0x302, rd_file=None, rs1_file=None)
_spec("sret", fmt="SYS", iclass=InstrClass.SYSTEM, opcode=0x73, funct3=0,
      funct7=0x102, rd_file=None, rs1_file=None)
_spec("wfi", fmt="SYS", iclass=InstrClass.SYSTEM, opcode=0x73, funct3=0,
      funct7=0x105, rd_file=None, rs1_file=None)
_spec("sfence.vma", fmt="R", iclass=InstrClass.SYSTEM, opcode=0x73, funct3=0,
      funct7=0x09, rd_file=None, rs2_file="x")

for _f3, _op in {1: "csrrw", 2: "csrrs", 3: "csrrc"}.items():
    _spec(_op, fmt="CSR", iclass=InstrClass.CSR, opcode=0x73, funct3=_f3)
for _f3, _op in {5: "csrrwi", 6: "csrrsi", 7: "csrrci"}.items():
    _spec(_op, fmt="CSRI", iclass=InstrClass.CSR, opcode=0x73, funct3=_f3,
          rs1_file=None)

# --------------------------------------------------------------------------
# RV64M multiply / divide
# --------------------------------------------------------------------------

for _f3, _op, _cls in [
    (0, "mul", InstrClass.MUL), (1, "mulh", InstrClass.MUL),
    (2, "mulhsu", InstrClass.MUL), (3, "mulhu", InstrClass.MUL),
    (4, "div", InstrClass.DIV), (5, "divu", InstrClass.DIV),
    (6, "rem", InstrClass.DIV), (7, "remu", InstrClass.DIV),
]:
    _spec(_op, fmt="R", iclass=_cls, opcode=0x33, funct3=_f3, funct7=0x01,
          rs2_file="x")

for _f3, _op, _cls in [
    (0, "mulw", InstrClass.MUL), (4, "divw", InstrClass.DIV),
    (5, "divuw", InstrClass.DIV), (6, "remw", InstrClass.DIV),
    (7, "remuw", InstrClass.DIV),
]:
    _spec(_op, fmt="R", iclass=_cls, opcode=0x3B, funct3=_f3, funct7=0x01,
          rs2_file="x")

# --------------------------------------------------------------------------
# RV64A atomics (exclusive access, used by the SMP workloads)
# --------------------------------------------------------------------------

for _f3, _suffix, _nbytes in [(2, "w", 4), (3, "d", 8)]:
    for _f5, _op in [
        (0x02, "lr"), (0x03, "sc"), (0x01, "amoswap"), (0x00, "amoadd"),
        (0x04, "amoxor"), (0x0C, "amoand"), (0x08, "amoor"),
        (0x10, "amomin"), (0x14, "amomax"), (0x18, "amominu"), (0x1C, "amomaxu"),
    ]:
        _spec(f"{_op}.{_suffix}", fmt="AMO", iclass=InstrClass.AMO,
              opcode=0x2F, funct3=_f3, funct7=_f5,
              rs2_file=None if _op == "lr" else "x", mem_bytes=_nbytes)

# --------------------------------------------------------------------------
# RV64F / RV64D subset
# --------------------------------------------------------------------------

_spec("flw", fmt="I", iclass=InstrClass.LOAD, opcode=0x07, funct3=2,
      rd_file="f", mem_bytes=4)
_spec("fld", fmt="I", iclass=InstrClass.LOAD, opcode=0x07, funct3=3,
      rd_file="f", mem_bytes=8)
_spec("fsw", fmt="S", iclass=InstrClass.STORE, opcode=0x27, funct3=2,
      rd_file=None, rs2_file="f", mem_bytes=4)
_spec("fsd", fmt="S", iclass=InstrClass.STORE, opcode=0x27, funct3=3,
      rd_file=None, rs2_file="f", mem_bytes=8)

for _fmtbits, _sfx in [(0, "s"), (1, "d")]:
    _spec(f"fadd.{_sfx}", fmt="FR", iclass=InstrClass.FP, opcode=0x53,
          funct7=0x00 | _fmtbits, rd_file="f", rs1_file="f", rs2_file="f")
    _spec(f"fsub.{_sfx}", fmt="FR", iclass=InstrClass.FP, opcode=0x53,
          funct7=0x04 | _fmtbits, rd_file="f", rs1_file="f", rs2_file="f")
    _spec(f"fmul.{_sfx}", fmt="FR", iclass=InstrClass.FMUL, opcode=0x53,
          funct7=0x08 | _fmtbits, rd_file="f", rs1_file="f", rs2_file="f")
    _spec(f"fdiv.{_sfx}", fmt="FR", iclass=InstrClass.FDIV, opcode=0x53,
          funct7=0x0C | _fmtbits, rd_file="f", rs1_file="f", rs2_file="f")
    _spec(f"fsqrt.{_sfx}", fmt="FR1", iclass=InstrClass.FDIV, opcode=0x53,
          funct7=0x2C | _fmtbits, rd_file="f", rs1_file="f")
    for _f3, _op in [(0, "fsgnj"), (1, "fsgnjn"), (2, "fsgnjx")]:
        _spec(f"{_op}.{_sfx}", fmt="FR3", iclass=InstrClass.FP, opcode=0x53,
              funct3=_f3, funct7=0x10 | _fmtbits, rd_file="f", rs1_file="f",
              rs2_file="f")
    for _f3, _op in [(0, "fmin"), (1, "fmax")]:
        _spec(f"{_op}.{_sfx}", fmt="FR3", iclass=InstrClass.FP, opcode=0x53,
              funct3=_f3, funct7=0x14 | _fmtbits, rd_file="f", rs1_file="f",
              rs2_file="f")
    for _f3, _op in [(2, "feq"), (1, "flt"), (0, "fle")]:
        _spec(f"{_op}.{_sfx}", fmt="FR3", iclass=InstrClass.FP, opcode=0x53,
              funct3=_f3, funct7=0x50 | _fmtbits, rd_file="x", rs1_file="f",
              rs2_file="f")
    _spec(f"fclass.{_sfx}", fmt="FR1", iclass=InstrClass.FP, opcode=0x53,
          funct3=1, funct7=0x70 | _fmtbits, rd_file="x", rs1_file="f")
    # int <-> float conversions; rs2 field encodes the integer width.
    for _rs2, _int in [(0, "w"), (1, "wu"), (2, "l"), (3, "lu")]:
        _spec(f"fcvt.{_int}.{_sfx}", fmt="FCVT", iclass=InstrClass.FP,
              opcode=0x53, funct7=0x60 | _fmtbits, rd_file="x", rs1_file="f",
              funct3=_rs2)
        _spec(f"fcvt.{_sfx}.{_int}", fmt="FCVT", iclass=InstrClass.FP,
              opcode=0x53, funct7=0x68 | _fmtbits, rd_file="f", rs1_file="x",
              funct3=_rs2)
    for _r4op, _f2base in [("fmadd", 0x43), ("fmsub", 0x47),
                           ("fnmsub", 0x4B), ("fnmadd", 0x4F)]:
        _spec(f"{_r4op}.{_sfx}", fmt="R4", iclass=InstrClass.FMUL,
              opcode=_f2base, funct7=_fmtbits, rd_file="f", rs1_file="f",
              rs2_file="f", rs3_file="f")

_spec("fcvt.s.d", fmt="FCVT", iclass=InstrClass.FP, opcode=0x53, funct7=0x20,
      funct3=1, rd_file="f", rs1_file="f")
_spec("fcvt.d.s", fmt="FCVT", iclass=InstrClass.FP, opcode=0x53, funct7=0x21,
      funct3=0, rd_file="f", rs1_file="f")
_spec("fmv.x.w", fmt="FR1", iclass=InstrClass.FP, opcode=0x53, funct3=0,
      funct7=0x70, rd_file="x", rs1_file="f")
_spec("fmv.w.x", fmt="FR1", iclass=InstrClass.FP, opcode=0x53, funct3=0,
      funct7=0x78, rd_file="f", rs1_file="x")
_spec("fmv.x.d", fmt="FR1", iclass=InstrClass.FP, opcode=0x53, funct3=0,
      funct7=0x71, rd_file="x", rs1_file="f")
_spec("fmv.d.x", fmt="FR1", iclass=InstrClass.FP, opcode=0x53, funct3=0,
      funct7=0x79, rd_file="f", rs1_file="x")

# --------------------------------------------------------------------------
# Vector extension (RVV 0.7.1 flavour; section VII)
# --------------------------------------------------------------------------
# Encodings follow the 0.7.1 draft layout: OP-V major opcode 0x57 with
# funct3 selecting the operand style and funct6 the operation; unit-stride
# and strided loads/stores live under the FP load/store opcodes with the
# vector width encodings.

_spec("vsetvli", fmt="VSETVLI", iclass=InstrClass.VSET, opcode=0x57, funct3=7)
_spec("vsetvl", fmt="VSETVL", iclass=InstrClass.VSET, opcode=0x57, funct3=7,
      funct7=0x40, rs2_file="x")

_OPIVV, _OPFVV, _OPMVV, _OPIVI, _OPIVX, _OPFVF, _OPMVX = range(7)


def _vspec(mnemonic: str, funct6: int, style: int, iclass: InstrClass,
           rd_file: str = "v") -> None:
    """Register one OP-V instruction.

    ``style`` picks the funct3 slot (vv / vx / vi / vf) which in turn
    dictates whether rs1 is a vector, scalar, or immediate operand.
    """
    rs1_file = {"vv": "v", "vx": "x", "vi": None, "vf": "f"}[
        {_OPIVV: "vv", _OPFVV: "vv", _OPMVV: "vv", _OPIVI: "vi",
         _OPIVX: "vx", _OPFVF: "vf", _OPMVX: "vx"}[style]]
    _spec(mnemonic, fmt="OPV", iclass=iclass, opcode=0x57, funct3=style,
          funct7=funct6, rd_file=rd_file, rs1_file=rs1_file, rs2_file="v")


# Integer ALU ops: .vv / .vx / (.vi for a subset)
for _funct6, _name in [
    (0x00, "vadd"), (0x02, "vsub"), (0x03, "vrsub"), (0x09, "vand"),
    (0x0A, "vor"), (0x0B, "vxor"), (0x25, "vsll"), (0x28, "vsrl"),
    (0x29, "vsra"), (0x04, "vminu"), (0x05, "vmin"), (0x06, "vmaxu"),
    (0x07, "vmax"),
]:
    _vspec(f"{_name}.vv", _funct6, _OPIVV, InstrClass.VALU)
    _vspec(f"{_name}.vx", _funct6, _OPIVX, InstrClass.VALU)
    if _name not in ("vminu", "vmin", "vmaxu", "vmax"):
        _vspec(f"{_name}.vi", _funct6, _OPIVI, InstrClass.VALU)

# Compares produce mask registers.
for _funct6, _name in [
    (0x18, "vmseq"), (0x19, "vmsne"), (0x1A, "vmsltu"), (0x1B, "vmslt"),
    (0x1C, "vmsleu"), (0x1D, "vmsle"),
]:
    _vspec(f"{_name}.vv", _funct6, _OPIVV, InstrClass.VALU)
    _vspec(f"{_name}.vx", _funct6, _OPIVX, InstrClass.VALU)

# Merge / move.
_vspec("vmerge.vvm", 0x17, _OPIVV, InstrClass.VALU)
_vspec("vmerge.vxm", 0x17, _OPIVX, InstrClass.VALU)
_spec("vmv.v.v", fmt="OPV", iclass=InstrClass.VALU, opcode=0x57,
      funct3=_OPIVV, funct7=0x3E, rd_file="v", rs1_file="v", rs2_file=None)
_spec("vmv.v.x", fmt="OPV", iclass=InstrClass.VALU, opcode=0x57,
      funct3=_OPIVX, funct7=0x3E, rd_file="v", rs1_file="x", rs2_file=None)
_spec("vmv.v.i", fmt="OPV", iclass=InstrClass.VALU, opcode=0x57,
      funct3=_OPIVI, funct7=0x3E, rd_file="v", rs1_file=None, rs2_file=None)
_spec("vmv.x.s", fmt="OPV", iclass=InstrClass.VALU, opcode=0x57,
      funct3=_OPMVV, funct7=0x32, rd_file="x", rs1_file=None, rs2_file="v")
_spec("vmv.s.x", fmt="OPV", iclass=InstrClass.VALU, opcode=0x57,
      funct3=_OPMVX, funct7=0x32, rd_file="v", rs1_file="x", rs2_file=None)

# Integer multiply / MAC (OPM styles).
for _funct6, _name, _cls in [
    (0x24, "vmulhu", InstrClass.VMUL), (0x25, "vmul", InstrClass.VMUL),
    (0x27, "vmulh", InstrClass.VMUL), (0x20, "vdivu", InstrClass.VDIV),
    (0x21, "vdiv", InstrClass.VDIV), (0x22, "vremu", InstrClass.VDIV),
    (0x23, "vrem", InstrClass.VDIV), (0x2D, "vmacc", InstrClass.VMUL),
    (0x2F, "vnmsac", InstrClass.VMUL), (0x29, "vmadd", InstrClass.VMUL),
    (0x3B, "vwmul", InstrClass.VMUL), (0x38, "vwmulu", InstrClass.VMUL),
    (0x3D, "vwmacc", InstrClass.VMUL), (0x3C, "vwmaccu", InstrClass.VMUL),
    (0x30, "vwaddu", InstrClass.VALU), (0x31, "vwadd", InstrClass.VALU),
]:
    _vspec(f"{_name}.vv", _funct6, _OPMVV, _cls)
    _vspec(f"{_name}.vx", _funct6, _OPMVX, _cls)

# Reductions.
for _funct6, _name in [(0x00, "vredsum"), (0x07, "vredmax"), (0x05, "vredmin"),
                       (0x06, "vredmaxu"), (0x04, "vredminu"),
                       (0x01, "vredand"), (0x02, "vredor"), (0x03, "vredxor")]:
    _vspec(f"{_name}.vs", _funct6, _OPMVV, InstrClass.VREDUCE)

# Mask-register logical ops (mask manipulation runs on the mask unit).
for _funct6, _name in [(0x19, "vmand"), (0x1A, "vmor"), (0x1B, "vmxor"),
                       (0x1D, "vmnand"), (0x1E, "vmnor"), (0x1F, "vmxnor")]:
    _spec(f"{_name}.mm", fmt="OPV", iclass=InstrClass.VALU, opcode=0x57,
          funct3=_OPMVV, funct7=_funct6, rd_file="v", rs1_file="v",
          rs2_file="v")

# vid.v (element indices) and vcpop.m (mask population count).
_spec("vid.v", fmt="OPV", iclass=InstrClass.VALU, opcode=0x57,
      funct3=_OPMVV, funct7=0x14, rd_file="v", rs1_file=None, rs2_file=None)
_spec("vcpop.m", fmt="OPV", iclass=InstrClass.VREDUCE, opcode=0x57,
      funct3=_OPMVV, funct7=0x10, rd_file="x", rs1_file=None, rs2_file="v")

# Permutations (cross-slice traffic).
_vspec("vslideup.vx", 0x0E, _OPIVX, InstrClass.VPERM)
_vspec("vslidedown.vx", 0x0F, _OPIVX, InstrClass.VPERM)
_vspec("vslideup.vi", 0x0E, _OPIVI, InstrClass.VPERM)
_vspec("vslidedown.vi", 0x0F, _OPIVI, InstrClass.VPERM)
_vspec("vrgather.vv", 0x0C, _OPIVV, InstrClass.VPERM)

# FP vector ops.
for _funct6, _name, _cls in [
    (0x00, "vfadd", InstrClass.VFP), (0x02, "vfsub", InstrClass.VFP),
    (0x24, "vfmul", InstrClass.VFMUL), (0x20, "vfdiv", InstrClass.VFDIV),
    (0x2C, "vfmacc", InstrClass.VFMUL), (0x2A, "vfmadd", InstrClass.VFMUL),
    (0x29, "vfnmacc", InstrClass.VFMUL),
    (0x04, "vfmin", InstrClass.VFP), (0x06, "vfmax", InstrClass.VFP),
]:
    _vspec(f"{_name}.vv", _funct6, _OPFVV, _cls)
    _vspec(f"{_name}.vf", _funct6, _OPFVF, _cls)

_spec("vfsqrt.v", fmt="OPV", iclass=InstrClass.VFDIV, opcode=0x57,
      funct3=_OPFVV, funct7=0x13, rd_file="v", rs1_file=None, rs2_file="v")
_vspec("vfredsum.vs", 0x01, _OPFVV, InstrClass.VREDUCE)
_vspec("vfredmax.vs", 0x07, _OPFVV, InstrClass.VREDUCE)
_vspec("vfredmin.vs", 0x05, _OPFVV, InstrClass.VREDUCE)

# Vector loads/stores: unit-stride and strided, element widths 8-64.
for _width, _f3 in [(8, 0), (16, 5), (32, 6), (64, 7)]:
    _spec(f"vle{_width}.v", fmt="VL", iclass=InstrClass.VLOAD, opcode=0x07,
          funct3=_f3, rd_file="v", mem_bytes=_width // 8)
    _spec(f"vse{_width}.v", fmt="VS", iclass=InstrClass.VSTORE, opcode=0x27,
          funct3=_f3, rd_file=None, rs3_file="v", mem_bytes=_width // 8)
    _spec(f"vlse{_width}.v", fmt="VLS", iclass=InstrClass.VLOAD, opcode=0x07,
          funct3=_f3, rd_file="v", rs2_file="x", mem_bytes=_width // 8)
    _spec(f"vsse{_width}.v", fmt="VSS", iclass=InstrClass.VSTORE, opcode=0x27,
          funct3=_f3, rd_file=None, rs2_file="x", rs3_file="v",
          mem_bytes=_width // 8)
    # Indexed (gather/scatter): data EEW from the mnemonic, byte
    # offsets read from the vs2 group at the current SEW.
    _spec(f"vlxei{_width}.v", fmt="VLX", iclass=InstrClass.VLOAD,
          opcode=0x07, funct3=_f3, rd_file="v", rs2_file="v",
          mem_bytes=_width // 8)
    _spec(f"vsxei{_width}.v", fmt="VSX", iclass=InstrClass.VSTORE,
          opcode=0x27, funct3=_f3, rd_file=None, rs2_file="v",
          rs3_file="v", mem_bytes=_width // 8)

# --------------------------------------------------------------------------
# XT-910 non-standard extensions (section VIII)
# --------------------------------------------------------------------------
# Modeled on the (later-published) T-Head extension set.  Indexed loads
# and stores use register+register addressing with a 2-bit scale:
#   lrw rd, rs1, rs2, imm2   =>  rd = sext(mem32[rs1 + (rs2 << imm2)])
# The *u* address variants ("address generation zero-extension") compute
# rs1 + (zext32(rs2) << imm2), saving the shift+mask pair the base ISA
# needs when indexing with 32-bit induction variables.

_XT_OPCODE = 0x0B  # custom-0 major opcode

for _f3, (_name, _nbytes, _uns) in {
    0: ("lrb", 1, False), 1: ("lrh", 2, False), 2: ("lrw", 4, False),
    3: ("lrd", 8, False), 4: ("lrbu", 1, True), 5: ("lrhu", 2, True),
    6: ("lrwu", 4, True),
}.items():
    _spec(_name, fmt="XTIDX", iclass=InstrClass.LOAD, opcode=_XT_OPCODE,
          funct3=_f3, funct7=0x00, rs2_file="x", mem_bytes=_nbytes,
          mem_unsigned=_uns)
    # Address-zero-extended variants (funct7 bit 3 set).
    _spec(f"{_name}.u", fmt="XTIDX", iclass=InstrClass.LOAD,
          opcode=_XT_OPCODE, funct3=_f3, funct7=0x08, rs2_file="x",
          mem_bytes=_nbytes, mem_unsigned=_uns)

for _f3, (_name, _nbytes) in {0: ("srb", 1), 1: ("srh", 2), 2: ("srw", 4),
                              3: ("srd", 8)}.items():
    _spec(_name, fmt="XTIDXS", iclass=InstrClass.STORE, opcode=_XT_OPCODE,
          funct3=_f3, funct7=0x10, rd_file=None, rs2_file="x", rs3_file="x",
          mem_bytes=_nbytes)
    _spec(f"{_name}.u", fmt="XTIDXS", iclass=InstrClass.STORE,
          opcode=_XT_OPCODE, funct3=_f3, funct7=0x18, rd_file=None,
          rs2_file="x", rs3_file="x", mem_bytes=_nbytes)

# addsl rd, rs1, rs2, imm2: rd = rs1 + (rs2 << imm2) — one-instruction
# scaled index computation.
_spec("addsl", fmt="XTIDX", iclass=InstrClass.ALU, opcode=_XT_OPCODE,
      funct3=7, funct7=0x00, rs2_file="x")

_XT2_OPCODE = 0x2B  # custom-1: bit manipulation and MAC

# Bit manipulation: ext/extu (bit-field extract), ff0/ff1 (find first
# zero/one), rev (byte reverse), srri (rotate right), tstnbz (test no
# byte is zero — string ops).
_spec("ext", fmt="XTBF", iclass=InstrClass.ALU, opcode=_XT2_OPCODE, funct3=0)
_spec("extu", fmt="XTBF", iclass=InstrClass.ALU, opcode=_XT2_OPCODE, funct3=1)
_spec("ff0", fmt="XTR1", iclass=InstrClass.ALU, opcode=_XT2_OPCODE, funct3=2,
      funct7=0x00)
_spec("ff1", fmt="XTR1", iclass=InstrClass.ALU, opcode=_XT2_OPCODE, funct3=2,
      funct7=0x01)
_spec("rev", fmt="XTR1", iclass=InstrClass.ALU, opcode=_XT2_OPCODE, funct3=2,
      funct7=0x02)
_spec("revw", fmt="XTR1", iclass=InstrClass.ALU, opcode=_XT2_OPCODE, funct3=2,
      funct7=0x03)
_spec("tstnbz", fmt="XTR1", iclass=InstrClass.ALU, opcode=_XT2_OPCODE,
      funct3=2, funct7=0x04)
_spec("srri", fmt="XTSH", iclass=InstrClass.ALU, opcode=_XT2_OPCODE, funct3=3)
_spec("srriw", fmt="XTSH", iclass=InstrClass.ALU, opcode=_XT2_OPCODE, funct3=4)

# Multiply-accumulate: mula rd, rs1, rs2: rd += rs1 * rs2 (rd is both a
# source and a destination).
for _f7, _name in [(0x00, "mula"), (0x01, "muls"),
                   (0x02, "mulaw"), (0x03, "mulsw"),
                   (0x04, "mulah"), (0x05, "mulsh")]:
    _spec(_name, fmt="XTMAC", iclass=InstrClass.MUL, opcode=_XT2_OPCODE,
          funct3=5, funct7=_f7, rs2_file="x")

# Cache/TLB maintenance operations (section VIII / conclusion: "some of
# the extensions (such as cache operations) have already drawn
# attention and are considered into future RISC-V standard ISA
# release").  dcache.* clean/invalidate data-cache lines, icache.*
# invalidates instruction-cache state, tlbi.bcast broadcasts TLB
# maintenance over the interconnect (section V.E item i).
for _f7, _name, _has_rs1 in [(0x00, "dcache.call", False),
                             (0x01, "dcache.iall", False),
                             (0x02, "dcache.ciall", False),
                             (0x04, "dcache.cva", True),
                             (0x05, "dcache.iva", True),
                             (0x06, "dcache.civa", True),
                             (0x08, "icache.iall", False),
                             (0x09, "icache.iva", True),
                             (0x0C, "tlbi.bcast", False)]:
    _spec(_name, fmt="XTCMO", iclass=InstrClass.SYSTEM, opcode=_XT2_OPCODE,
          funct3=6, funct7=_f7, rd_file=None,
          rs1_file="x" if _has_rs1 else None)
