"""RVC compressed-instruction support (the C in RV64GCV).

XT-910 fetches 128-bit lines holding up to 8 compressed instructions, so
code density directly shapes frontend behaviour.  This module expands
16-bit compressed words into their base-ISA :class:`Instruction`
equivalents (with ``size=2`` so the fetch and PC logic stay correct) and
offers :func:`compress`, the opportunistic compressor the assembler runs
when ``compress=True``.

The supported subset is the RV64C catalogue minus the FP forms
(c.fld/c.fsd), which the workloads do not need.
"""

from __future__ import annotations

from .encoding import EncodingError, _sign_extend
from .instructions import Instruction, SPECS, compute_operands


def is_compressed(halfword: int) -> bool:
    """A 16-bit parcel is compressed iff its low two bits are not 0b11."""
    return (halfword & 0x3) != 0x3


def _mk(mnemonic: str, raw: int, **kw) -> Instruction:
    inst = Instruction(spec=SPECS[mnemonic], raw=raw, size=2, **kw)
    compute_operands(inst)
    return inst


def _f(word: int, lo: int, width: int) -> int:
    return (word >> lo) & ((1 << width) - 1)


def expand(word: int) -> Instruction:
    """Expand a 16-bit compressed word into its base instruction."""
    word &= 0xFFFF
    quadrant = word & 0x3
    funct3 = _f(word, 13, 3)

    if quadrant == 0:
        rdp = _f(word, 2, 3) + 8
        rs1p = _f(word, 7, 3) + 8
        if funct3 == 0:  # c.addi4spn
            imm = (_f(word, 7, 4) << 6 | _f(word, 11, 2) << 4
                   | _f(word, 5, 1) << 3 | _f(word, 6, 1) << 2)
            if imm == 0:
                raise EncodingError(f"illegal compressed word {word:#06x}")
            return _mk("addi", word, rd=rdp, rs1=2, imm=imm)
        if funct3 == 2:  # c.lw
            imm = _f(word, 5, 1) << 6 | _f(word, 10, 3) << 3 | _f(word, 6, 1) << 2
            return _mk("lw", word, rd=rdp, rs1=rs1p, imm=imm)
        if funct3 == 3:  # c.ld
            imm = _f(word, 5, 2) << 6 | _f(word, 10, 3) << 3
            return _mk("ld", word, rd=rdp, rs1=rs1p, imm=imm)
        if funct3 == 6:  # c.sw
            imm = _f(word, 5, 1) << 6 | _f(word, 10, 3) << 3 | _f(word, 6, 1) << 2
            return _mk("sw", word, rs1=rs1p, rs2=rdp, imm=imm)
        if funct3 == 7:  # c.sd
            imm = _f(word, 5, 2) << 6 | _f(word, 10, 3) << 3
            return _mk("sd", word, rs1=rs1p, rs2=rdp, imm=imm)
        raise EncodingError(f"unsupported compressed word {word:#06x}")

    if quadrant == 1:
        rd = _f(word, 7, 5)
        imm6 = _sign_extend(_f(word, 12, 1) << 5 | _f(word, 2, 5), 6)
        if funct3 == 0:  # c.addi / c.nop
            return _mk("addi", word, rd=rd, rs1=rd, imm=imm6)
        if funct3 == 1:  # c.addiw (RV64)
            if rd == 0:
                raise EncodingError(f"illegal c.addiw {word:#06x}")
            return _mk("addiw", word, rd=rd, rs1=rd, imm=imm6)
        if funct3 == 2:  # c.li
            return _mk("addi", word, rd=rd, rs1=0, imm=imm6)
        if funct3 == 3:
            if rd == 2:  # c.addi16sp
                imm = _sign_extend(
                    _f(word, 12, 1) << 9 | _f(word, 3, 2) << 7
                    | _f(word, 5, 1) << 6 | _f(word, 2, 1) << 5
                    | _f(word, 6, 1) << 4, 10)
                if imm == 0:
                    raise EncodingError(f"illegal c.addi16sp {word:#06x}")
                return _mk("addi", word, rd=2, rs1=2, imm=imm)
            if imm6 == 0:
                raise EncodingError(f"illegal c.lui {word:#06x}")
            return _mk("lui", word, rd=rd, imm=imm6 << 12)  # c.lui
        if funct3 == 4:
            sub = _f(word, 10, 2)
            rdp = _f(word, 7, 3) + 8
            if sub == 0 or sub == 1:  # c.srli / c.srai
                shamt = _f(word, 12, 1) << 5 | _f(word, 2, 5)
                mn = "srli" if sub == 0 else "srai"
                return _mk(mn, word, rd=rdp, rs1=rdp, imm=shamt)
            if sub == 2:  # c.andi
                return _mk("andi", word, rd=rdp, rs1=rdp, imm=imm6)
            rs2p = _f(word, 2, 3) + 8
            hi = _f(word, 12, 1)
            op2 = _f(word, 5, 2)
            table = {(0, 0): "sub", (0, 1): "xor", (0, 2): "or", (0, 3): "and",
                     (1, 0): "subw", (1, 1): "addw"}
            alu_mn = table.get((hi, op2))
            if alu_mn is None:
                raise EncodingError(f"bad compressed ALU word {word:#06x}")
            return _mk(alu_mn, word, rd=rdp, rs1=rdp, rs2=rs2p)
        if funct3 == 5:  # c.j
            imm = _sign_extend(
                _f(word, 12, 1) << 11 | _f(word, 8, 1) << 10
                | _f(word, 9, 2) << 8 | _f(word, 6, 1) << 7
                | _f(word, 7, 1) << 6 | _f(word, 2, 1) << 5
                | _f(word, 11, 1) << 4 | _f(word, 3, 3) << 1, 12)
            return _mk("jal", word, rd=0, imm=imm)
        # c.beqz / c.bnez
        rs1p = _f(word, 7, 3) + 8
        imm = _sign_extend(
            _f(word, 12, 1) << 8 | _f(word, 5, 2) << 6
            | _f(word, 2, 1) << 5 | _f(word, 10, 2) << 3
            | _f(word, 3, 2) << 1, 9)
        mn = "beq" if funct3 == 6 else "bne"
        return _mk(mn, word, rs1=rs1p, rs2=0, imm=imm)

    # quadrant == 2
    rd = _f(word, 7, 5)
    if funct3 == 0:  # c.slli
        shamt = _f(word, 12, 1) << 5 | _f(word, 2, 5)
        return _mk("slli", word, rd=rd, rs1=rd, imm=shamt)
    if funct3 == 2:  # c.lwsp
        imm = _f(word, 2, 2) << 6 | _f(word, 12, 1) << 5 | _f(word, 4, 3) << 2
        return _mk("lw", word, rd=rd, rs1=2, imm=imm)
    if funct3 == 3:  # c.ldsp
        imm = _f(word, 2, 3) << 6 | _f(word, 12, 1) << 5 | _f(word, 5, 2) << 3
        return _mk("ld", word, rd=rd, rs1=2, imm=imm)
    if funct3 == 4:
        rs2 = _f(word, 2, 5)
        hi = _f(word, 12, 1)
        if hi == 0:
            if rs2 == 0:  # c.jr
                if rd == 0:
                    raise EncodingError(f"illegal c.jr {word:#06x}")
                return _mk("jalr", word, rd=0, rs1=rd, imm=0)
            return _mk("add", word, rd=rd, rs1=0, rs2=rs2)  # c.mv
        if rs2 == 0 and rd == 0:
            return _mk("ebreak", word)
        if rs2 == 0:  # c.jalr
            return _mk("jalr", word, rd=1, rs1=rd, imm=0)
        return _mk("add", word, rd=rd, rs1=rd, rs2=rs2)  # c.add
    if funct3 == 6:  # c.swsp
        imm = _f(word, 7, 2) << 6 | _f(word, 9, 4) << 2
        return _mk("sw", word, rs1=2, rs2=_f(word, 2, 5), imm=imm)
    if funct3 == 7:  # c.sdsp
        imm = _f(word, 7, 3) << 6 | _f(word, 10, 3) << 3
        return _mk("sd", word, rs1=2, rs2=_f(word, 2, 5), imm=imm)
    raise EncodingError(f"unsupported compressed word {word:#06x}")


def _is_prime(reg: int) -> bool:
    return 8 <= reg <= 15


def compress(inst: Instruction) -> int | None:
    """Return a 16-bit encoding for *inst*, or None if not compressible.

    Branch/jump offsets are only compressed when the immediate fits, so
    the assembler runs compression as a fixpoint relaxation pass.
    """
    mn = inst.spec.mnemonic
    rd, rs1, rs2, imm = inst.rd, inst.rs1, inst.rs2, inst.imm

    if mn == "addi":
        if rd == rs1 and rd != 0 and -32 <= imm < 32:  # c.addi (incl. c.nop)
            return (0 << 13 | _f(imm, 5, 1) << 12 | rd << 7
                    | _f(imm, 0, 5) << 2 | 0x1)
        if rs1 == 0 and rd != 0 and -32 <= imm < 32:  # c.li
            return (2 << 13 | _f(imm, 5, 1) << 12 | rd << 7
                    | _f(imm, 0, 5) << 2 | 0x1)
        if (rd == rs1 == 2 and imm != 0 and -512 <= imm < 512
                and imm % 16 == 0):  # c.addi16sp
            return (3 << 13 | _f(imm, 9, 1) << 12 | 2 << 7
                    | _f(imm, 4, 1) << 6 | _f(imm, 6, 1) << 5
                    | _f(imm, 7, 2) << 3 | _f(imm, 5, 1) << 2 | 0x1)
        if (rs1 == 2 and _is_prime(rd) and 0 < imm < 1024
                and imm % 4 == 0):  # c.addi4spn
            return (0 << 13 | _f(imm, 4, 2) << 11 | _f(imm, 6, 4) << 7
                    | _f(imm, 2, 1) << 6 | _f(imm, 3, 1) << 5
                    | (rd - 8) << 2 | 0x0)
        return None
    if mn == "addiw" and rd == rs1 and rd != 0 and -32 <= imm < 32:
        return (1 << 13 | _f(imm, 5, 1) << 12 | rd << 7
                | _f(imm, 0, 5) << 2 | 0x1)
    if mn == "lui" and rd not in (0, 2):
        value = imm >> 12
        if value != 0 and -32 <= value < 32:
            return (3 << 13 | _f(value, 5, 1) << 12 | rd << 7
                    | _f(value, 0, 5) << 2 | 0x1)
        return None
    if mn in ("srli", "srai") and rd == rs1 and _is_prime(rd) and imm != 0:
        sub = 0 if mn == "srli" else 1
        return (4 << 13 | _f(imm, 5, 1) << 12 | sub << 10 | (rd - 8) << 7
                | _f(imm, 0, 5) << 2 | 0x1)
    if mn == "andi" and rd == rs1 and _is_prime(rd) and -32 <= imm < 32:
        return (4 << 13 | _f(imm, 5, 1) << 12 | 2 << 10 | (rd - 8) << 7
                | _f(imm, 0, 5) << 2 | 0x1)
    if mn == "slli" and rd == rs1 and rd != 0 and imm != 0:
        return (0 << 13 | _f(imm, 5, 1) << 12 | rd << 7
                | _f(imm, 0, 5) << 2 | 0x2)
    if mn in ("sub", "xor", "or", "and", "subw", "addw"):
        if rd == rs1 and _is_prime(rd) and _is_prime(rs2):
            hi, op2 = {"sub": (0, 0), "xor": (0, 1), "or": (0, 2),
                       "and": (0, 3), "subw": (1, 0), "addw": (1, 1)}[mn]
            return (4 << 13 | hi << 12 | 3 << 10 | (rd - 8) << 7
                    | op2 << 5 | (rs2 - 8) << 2 | 0x1)
    if mn == "add":
        if rd != 0 and rs1 == 0 and rs2 != 0:  # c.mv
            return 4 << 13 | 0 << 12 | rd << 7 | rs2 << 2 | 0x2
        if rd == rs1 and rd != 0 and rs2 != 0:  # c.add
            return 4 << 13 | 1 << 12 | rd << 7 | rs2 << 2 | 0x2
        return None
    if mn == "lw":
        if (_is_prime(rd) and _is_prime(rs1) and 0 <= imm < 128
                and imm % 4 == 0):
            return (2 << 13 | _f(imm, 3, 3) << 10 | (rs1 - 8) << 7
                    | _f(imm, 2, 1) << 6 | _f(imm, 6, 1) << 5
                    | (rd - 8) << 2 | 0x0)
        if rs1 == 2 and rd != 0 and 0 <= imm < 256 and imm % 4 == 0:
            return (2 << 13 | _f(imm, 5, 1) << 12 | rd << 7
                    | _f(imm, 2, 3) << 4 | _f(imm, 6, 2) << 2 | 0x2)
        return None
    if mn == "ld":
        if (_is_prime(rd) and _is_prime(rs1) and 0 <= imm < 256
                and imm % 8 == 0):
            return (3 << 13 | _f(imm, 3, 3) << 10 | (rs1 - 8) << 7
                    | _f(imm, 6, 2) << 5 | (rd - 8) << 2 | 0x0)
        if rs1 == 2 and rd != 0 and 0 <= imm < 512 and imm % 8 == 0:
            return (3 << 13 | _f(imm, 5, 1) << 12 | rd << 7
                    | _f(imm, 3, 2) << 5 | _f(imm, 6, 3) << 2 | 0x2)
        return None
    if mn == "sw":
        if (_is_prime(rs2) and _is_prime(rs1) and 0 <= imm < 128
                and imm % 4 == 0):
            return (6 << 13 | _f(imm, 3, 3) << 10 | (rs1 - 8) << 7
                    | _f(imm, 2, 1) << 6 | _f(imm, 6, 1) << 5
                    | (rs2 - 8) << 2 | 0x0)
        if rs1 == 2 and 0 <= imm < 256 and imm % 4 == 0:
            return (6 << 13 | _f(imm, 2, 4) << 9 | _f(imm, 6, 2) << 7
                    | rs2 << 2 | 0x2)
        return None
    if mn == "sd":
        if (_is_prime(rs2) and _is_prime(rs1) and 0 <= imm < 256
                and imm % 8 == 0):
            return (7 << 13 | _f(imm, 3, 3) << 10 | (rs1 - 8) << 7
                    | _f(imm, 6, 2) << 5 | (rs2 - 8) << 2 | 0x0)
        if rs1 == 2 and 0 <= imm < 512 and imm % 8 == 0:
            return (7 << 13 | _f(imm, 3, 3) << 10 | _f(imm, 6, 3) << 7
                    | rs2 << 2 | 0x2)
        return None
    if mn == "jal" and rd == 0 and -2048 <= imm < 2048 and imm % 2 == 0:
        return (5 << 13 | _f(imm, 11, 1) << 12 | _f(imm, 4, 1) << 11
                | _f(imm, 8, 2) << 9 | _f(imm, 10, 1) << 8
                | _f(imm, 6, 1) << 7 | _f(imm, 7, 1) << 6
                | _f(imm, 1, 3) << 3 | _f(imm, 5, 1) << 2 | 0x1)
    if mn == "jalr" and imm == 0 and rs1 != 0:
        if rd == 0:  # c.jr
            return 4 << 13 | 0 << 12 | rs1 << 7 | 0x2
        if rd == 1:  # c.jalr
            return 4 << 13 | 1 << 12 | rs1 << 7 | 0x2
        return None
    if mn in ("beq", "bne") and rs2 == 0 and _is_prime(rs1):
        if -256 <= imm < 256 and imm % 2 == 0:
            f3 = 6 if mn == "beq" else 7
            return (f3 << 13 | _f(imm, 8, 1) << 12 | _f(imm, 3, 2) << 10
                    | (rs1 - 8) << 7 | _f(imm, 6, 2) << 5
                    | _f(imm, 5, 1) << 2 | _f(imm, 1, 2) << 3 | 0x1)
    if mn == "ebreak":
        return 4 << 13 | 1 << 12 | 0x2
    return None
