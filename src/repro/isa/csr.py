"""Control and status registers and privilege modes (paper Fig. 1).

XT-910 supports the standard U/S/M privilege modes.  The functional
model implements the CSRs the workloads and OS-flavoured tests touch:
machine trap handling, SV39 ``satp``, the counter set, and the vector
configuration registers from the 0.7.1 vector spec.
"""

from __future__ import annotations

import enum
from collections.abc import Callable


class PrivMode(enum.IntEnum):
    """RISC-V privilege modes (Fig. 1)."""

    USER = 0
    SUPERVISOR = 1
    MACHINE = 3


# CSR addresses (subset of the privileged spec).
CSR_FFLAGS = 0x001
CSR_FRM = 0x002
CSR_FCSR = 0x003
CSR_VSTART = 0x008
CSR_VL = 0xC20
CSR_VTYPE = 0xC21
CSR_VLENB = 0xC22
CSR_SSTATUS = 0x100
CSR_SIE = 0x104
CSR_STVEC = 0x105
CSR_SSCRATCH = 0x140
CSR_SEPC = 0x141
CSR_SCAUSE = 0x142
CSR_STVAL = 0x143
CSR_SIP = 0x144
CSR_SATP = 0x180
CSR_MSTATUS = 0x300
CSR_MISA = 0x301
CSR_MEDELEG = 0x302
CSR_MIDELEG = 0x303
CSR_MIE = 0x304
CSR_MTVEC = 0x305
CSR_MSCRATCH = 0x340
CSR_MEPC = 0x341
CSR_MCAUSE = 0x342
CSR_MTVAL = 0x343
CSR_MIP = 0x344
CSR_CYCLE = 0xC00
CSR_TIME = 0xC01
CSR_INSTRET = 0xC02
CSR_MHARTID = 0xF14

# RAS error-banking CSRs (custom M-mode range, 0x7C0-0x7FF).  A machine
# check banks the failing address and a status word here before the trap
# is delivered, so guest handlers can log and recover (the XT-910 carries
# comparable T-Head extended error CSRs).
CSR_MCERR = 0x7C0       # status: valid | uncorrectable | source | info
CSR_MCERR_ADDR = 0x7C1  # failing physical/virtual address (or reg index)
CSR_MCECNT = 0x7C2      # running count of hardware-corrected errors

MCERR_VALID = 1 << 63
MCERR_UNCORRECTABLE = 1 << 62
MCERR_SOURCE_SHIFT = 8
MCERR_SOURCE_MASK = 0xFF

# Error-source identifiers reported in mcerr[15:8].
MCERR_SOURCES: dict[str, int] = {
    "L1I": 1, "L1D": 2, "L2": 3, "TLB": 4, "REGFILE": 5, "OTHER": 0,
}

CSR_NAMES: dict[str, int] = {
    "fflags": CSR_FFLAGS, "frm": CSR_FRM, "fcsr": CSR_FCSR,
    "vstart": CSR_VSTART, "vl": CSR_VL, "vtype": CSR_VTYPE,
    "vlenb": CSR_VLENB,
    "sstatus": CSR_SSTATUS, "sie": CSR_SIE, "stvec": CSR_STVEC,
    "sscratch": CSR_SSCRATCH, "sepc": CSR_SEPC, "scause": CSR_SCAUSE,
    "stval": CSR_STVAL, "sip": CSR_SIP, "satp": CSR_SATP,
    "mstatus": CSR_MSTATUS, "misa": CSR_MISA, "medeleg": CSR_MEDELEG,
    "mideleg": CSR_MIDELEG, "mie": CSR_MIE, "mtvec": CSR_MTVEC,
    "mscratch": CSR_MSCRATCH, "mepc": CSR_MEPC, "mcause": CSR_MCAUSE,
    "mtval": CSR_MTVAL, "mip": CSR_MIP,
    "cycle": CSR_CYCLE, "time": CSR_TIME, "instret": CSR_INSTRET,
    "mhartid": CSR_MHARTID,
    "mcerr": CSR_MCERR, "mcerraddr": CSR_MCERR_ADDR, "mcecnt": CSR_MCECNT,
}

MASK64 = (1 << 64) - 1

# misa: RV64 with I, M, A, F, D, C, V, U, S bits set.
_MISA_RV64GCV = (
    (2 << 62)
    | (1 << 0)   # A
    | (1 << 2)   # C
    | (1 << 3)   # D
    | (1 << 5)   # F
    | (1 << 8)   # I
    | (1 << 12)  # M
    | (1 << 18)  # S
    | (1 << 20)  # U
    | (1 << 21)  # V
) & MASK64


class TrapCause(enum.IntEnum):
    """Synchronous exception causes used by the model."""

    INSTRUCTION_MISALIGNED = 0
    ILLEGAL_INSTRUCTION = 2
    BREAKPOINT = 3
    LOAD_MISALIGNED = 4
    LOAD_ACCESS_FAULT = 5
    STORE_MISALIGNED = 6
    STORE_ACCESS_FAULT = 7
    ECALL_FROM_U = 8
    ECALL_FROM_S = 9
    ECALL_FROM_M = 11
    INSTRUCTION_PAGE_FAULT = 12
    LOAD_PAGE_FAULT = 13
    STORE_PAGE_FAULT = 15
    # Cause 19 is the privileged spec's "hardware error" exception; we
    # deliver uncorrectable ECC/parity errors (machine checks) on it.
    MACHINE_CHECK = 19


class CsrFile:
    """A flat CSR register file with a few read-side specials.

    Counter CSRs (cycle/time/instret) are backed by callables so the
    emulator can expose its live counters without copying them on every
    retire.
    """

    def __init__(self, hart_id: int = 0):
        self._regs: dict[int, int] = {CSR_MISA: _MISA_RV64GCV,
                                      CSR_MHARTID: hart_id}
        self._hooks: dict[int, Callable[[], int]] = {}

    def bind_counter(self, addr: int, fn: Callable[[], int]) -> None:
        """Back CSR *addr* with a zero-argument callable."""
        self._hooks[addr] = fn

    def read(self, addr: int) -> int:
        hook = self._hooks.get(addr)
        if hook is not None:
            return hook() & MASK64
        return self._regs.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        if addr == CSR_MISA or addr == CSR_MHARTID:
            return  # WARL: writes ignored in this model
        self._regs[addr] = value & MASK64

    def set_bits(self, addr: int, mask: int) -> int:
        old = self.read(addr)
        self.write(addr, old | mask)
        return old

    def clear_bits(self, addr: int, mask: int) -> int:
        old = self.read(addr)
        self.write(addr, old & ~mask)
        return old
