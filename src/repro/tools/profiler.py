"""Per-PC cycle profiler (the paper's CDS profiling tool, Fig. 15/16).

The CDS IDE ships a graphical profiler over the instruction-accurate
simulator; this is its textual equivalent over our cycle model.  It
attributes retired instructions and *approximate* stall cycles to
static PCs, aggregates them into source regions (symbols), and renders
a hot-spot report annotated with disassembly.

Usage::

    profile = Profiler(config).run(program)
    print(profile.report(top=10))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..isa.disasm import disassemble
from ..sim.emulator import Emulator
from ..uarch.config import CoreConfig
from ..uarch.core import PipelineModel
from ..uarch.presets import get_preset
from ..uarch.stats import CoreStats


@dataclass
class PcSample:
    """Aggregated behaviour of one static instruction."""

    pc: int
    text: str = ""
    executions: int = 0
    issue_stall_cycles: int = 0   # issue - earliest-possible-issue
    mem_stall_cycles: int = 0     # completion beyond the best-case latency
    mispredicts: int = 0

    @property
    def total_stalls(self) -> int:
        return self.issue_stall_cycles + self.mem_stall_cycles


@dataclass
class SymbolRegion:
    name: str
    start: int
    end: int
    executions: int = 0
    stalls: int = 0


@dataclass
class Profile:
    """The result of one profiling run."""

    stats: CoreStats
    samples: dict[int, PcSample] = field(default_factory=dict)
    regions: list[SymbolRegion] = field(default_factory=list)

    def hottest(self, count: int = 10) -> list[PcSample]:
        return sorted(self.samples.values(),
                      key=lambda s: s.total_stalls, reverse=True)[:count]

    def most_executed(self, count: int = 10) -> list[PcSample]:
        return sorted(self.samples.values(),
                      key=lambda s: s.executions, reverse=True)[:count]

    def report(self, top: int = 10) -> str:
        lines = [
            f"cycles {self.stats.cycles}  instructions "
            f"{self.stats.instructions}  IPC {self.stats.ipc:.3f}",
            "",
            "hottest instructions (by attributed stall cycles):",
            f"{'pc':>10} {'execs':>8} {'stalls':>8}  instruction",
        ]
        for sample in self.hottest(top):
            lines.append(
                f"{sample.pc:#10x} {sample.executions:8d} "
                f"{sample.total_stalls:8d}  {sample.text}")
        if self.regions:
            lines.append("")
            lines.append("by symbol region:")
            for region in sorted(self.regions, key=lambda r: r.stalls,
                                 reverse=True):
                if not region.executions:
                    continue
                lines.append(
                    f"  {region.name:24s} execs={region.executions:8d} "
                    f"stalls={region.stalls:8d}")
        return "\n".join(lines)


class Profiler:
    """Wraps the pipeline model with per-PC attribution."""

    def __init__(self, config: CoreConfig | str = "xt910"):
        self.config = get_preset(config) if isinstance(config, str) \
            else config

    def run(self, program: Program,
            max_steps: int | None = None) -> Profile:
        emulator = Emulator(program)
        pipeline = PipelineModel(self.config)
        pipeline._reset_run_state()
        samples: dict[int, PcSample] = {}
        load_best = self.config.lsu.load_to_use + 1

        for dyn in emulator.trace(max_steps):
            pipeline.stats.instructions += 1
            fetch = pipeline._frontend(dyn)
            dispatch = pipeline._dispatch(dyn, fetch)
            issue, complete = pipeline._execute(dyn, dispatch)
            pipeline._retire(dyn, dispatch, complete)
            before = pipeline.stats.direction_mispredicts \
                + pipeline.stats.ras_mispredicts \
                + pipeline.stats.indirect_mispredicts
            pipeline._resolve_control(dyn, fetch, complete)
            after = pipeline.stats.direction_mispredicts \
                + pipeline.stats.ras_mispredicts \
                + pipeline.stats.indirect_mispredicts

            sample = samples.get(dyn.pc)
            if sample is None:
                sample = PcSample(pc=dyn.pc,
                                  text=disassemble(dyn.inst, pc=dyn.pc))
                samples[dyn.pc] = sample
            sample.executions += 1
            sample.issue_stall_cycles += max(0, issue - (dispatch + 1))
            if dyn.is_load:
                sample.mem_stall_cycles += max(
                    0, (complete - issue) - load_best)
            sample.mispredicts += after - before
        pipeline._drain()

        profile = Profile(stats=pipeline.stats, samples=samples)
        profile.regions = self._regions(program, samples)
        return profile

    @staticmethod
    def _regions(program: Program,
                 samples: dict[int, PcSample]) -> list[SymbolRegion]:
        text_symbols = sorted(
            (addr, name) for name, addr in program.symbols.items()
            if program.text_base <= addr < program.text_end)
        regions: list[SymbolRegion] = []
        for index, (addr, name) in enumerate(text_symbols):
            end = text_symbols[index + 1][0] if index + 1 < len(text_symbols) \
                else program.text_end
            regions.append(SymbolRegion(name=name, start=addr, end=end))
        for sample in samples.values():
            for region in regions:
                if region.start <= sample.pc < region.end:
                    region.executions += sample.executions
                    region.stalls += sample.total_stalls
                    break
        return regions


def profile_program(program: Program, core: CoreConfig | str = "xt910",
                    max_steps: int | None = None) -> Profile:
    """Convenience one-shot profiling."""
    return Profiler(core).run(program, max_steps)
