"""Developer tools: profiler (the paper's CDS tooling, section IX)."""

from .profiler import Profile, Profiler, profile_program  # noqa: F401
