"""Code generation: IR -> RV64 assembly, base or extended+optimized.

Two compiler personalities (paper Fig. 20):

* ``CodegenOptions.base()`` — models stock RISC-V GCC of the paper's
  era: 32-bit unsigned indices cost a slli/srli zero-extension pair,
  array element addresses are recomputed (shift + add) at every access,
  every global access materializes its own absolute address, and no
  dead-store elimination.  (Loop bounds are hoisted — every real
  compiler does that.)
* ``CodegenOptions.optimized()`` — the XT-910 toolchain: XT indexed
  loads/stores with address zero-extension (one instruction per
  access), pointer strength-reduction and hoisted loop bounds
  (induction-variable optimization), the anchor scheme for globals,
  MAC fusion onto ``mula``/``mulah``, and IR-level DSE.

Both personalities are verified against the IR interpreter, so the
Fig. 20 speedup is measured between two *correct* compilers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ir import (
    Bin,
    Const,
    Expr,
    For,
    Function,
    Let,
    Load,
    LoadGlobal,
    Stmt,
    Store,
    StoreGlobal,
    U32,
    Var,
)
from .passes import dead_store_elimination, fold_function


class CodegenError(Exception):
    """Raised when a kernel exceeds the simple register allocator."""


@dataclass
class CodegenOptions:
    use_extensions: bool = True      # XT indexed ld/st, addsl, mula/mulah
    induction_opt: bool = True       # pointer strength reduction + hoisting
    anchor_opt: bool = True          # single anchor register for globals
    dse: bool = True                 # IR dead-store elimination

    @classmethod
    def base(cls) -> "CodegenOptions":
        return cls(use_extensions=False, induction_opt=False,
                   anchor_opt=False, dse=False)

    @classmethod
    def optimized(cls) -> "CodegenOptions":
        return cls()


_SCALAR_POOL = ["s1", "s2", "s3", "s4", "s5", "s6"]
_ARRAY_POOL = ["a2", "a3", "a4", "a5", "a6", "a7"]
_PTR_POOL = ["s7", "s8", "s9"]
_TMP_POOL = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "a1"]
_ANCHOR = "s10"

_LOAD_OP = {(1, True): "lb", (1, False): "lbu", (2, True): "lh",
            (2, False): "lhu", (4, True): "lw", (4, False): "lwu",
            (8, True): "ld", (8, False): "ld"}
_STORE_OP = {1: "sb", 2: "sh", 4: "sw", 8: "sd"}
_XT_LOAD_OP = {(1, True): "lrb", (1, False): "lrbu", (2, True): "lrh",
               (2, False): "lrhu", (4, True): "lrw", (4, False): "lrwu",
               (8, True): "lrd", (8, False): "lrd"}
_XT_STORE_OP = {1: "srb", 2: "srh", 4: "srw", 8: "srd"}


class Codegen:
    """Tree-walking code generator with a stack of temporaries."""

    def __init__(self, function: Function,
                 options: CodegenOptions | None = None):
        self.fn = function
        self.options = options if options is not None else CodegenOptions()
        self.lines: list[str] = []
        self.scalar_regs: dict[str, str] = {}
        self.array_regs: dict[str, str] = {}
        self._tmp_depth = 0
        self._label = 0
        self._ptr_ctx: list[dict[str, str]] = []   # per-loop pointer regs
        self._free_ptrs = list(_PTR_POOL)
        self.stats = {"instructions": 0, "dse_removed": 0}

    # -- public -----------------------------------------------------------------

    def generate(self) -> str:
        fn = self.fn
        if self.options.dse:
            fn, removed = dead_store_elimination(fn)
            self.stats["dse_removed"] = removed
        fn = fold_function(fn)

        data_lines = ["    .data", "    .align 3"]
        for decl in fn.arrays:
            directive = {1: ".byte", 2: ".half", 4: ".word",
                         8: ".dword"}[decl.elem_bytes]
            if decl.init:
                init = list(decl.init) + [0] * (decl.elems - len(decl.init))
                data_lines.append(f"{decl.name}:")
                for chunk_start in range(0, decl.elems, 16):
                    chunk = init[chunk_start:chunk_start + 16]
                    data_lines.append(
                        f"    {directive} " + ", ".join(map(str, chunk)))
            else:
                data_lines.append(
                    f"{decl.name}: .zero {decl.elems * decl.elem_bytes}")
            data_lines.append("    .align 3")
        for g in fn.globals_:
            data_lines.append(f"{g.name}: .dword {g.init}")
        data_lines.append("result: .dword 0")

        self._allocate_registers()
        self._emit_prologue()
        for stmt in fn.body:
            self._stmt(stmt)
        self._emit_epilogue()
        text = "\n".join(data_lines) + "\n    .text\n_start:\n" \
            + "\n".join(self.lines) + "\n"
        return text

    # -- register allocation --------------------------------------------------------

    def _allocate_registers(self) -> None:
        scalars = sorted(self._collect_scalars())
        pool = list(_SCALAR_POOL)
        for name in scalars:
            if not pool:
                raise CodegenError(
                    f"{self.fn.name}: too many scalars ({len(scalars)})")
            self.scalar_regs[name] = pool.pop(0)
        pool = list(_ARRAY_POOL)
        for decl in self.fn.arrays:
            if not pool:
                raise CodegenError(f"{self.fn.name}: too many arrays")
            self.array_regs[decl.name] = pool.pop(0)

    def _collect_scalars(self) -> set[str]:
        names: set[str] = set()

        def walk_expr(expr: Expr) -> None:
            if isinstance(expr, Var):
                names.add(expr.name)
            elif isinstance(expr, Bin):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, U32):
                walk_expr(expr.operand)
            elif isinstance(expr, Load):
                walk_expr(expr.index)

        def walk(stmt: Stmt) -> None:
            if isinstance(stmt, Let):
                names.add(stmt.name)
                walk_expr(stmt.expr)
            elif isinstance(stmt, Store):
                walk_expr(stmt.index)
                walk_expr(stmt.value)
            elif isinstance(stmt, StoreGlobal):
                walk_expr(stmt.value)
            elif isinstance(stmt, For):
                names.add(stmt.var)
                walk_expr(stmt.count)
                for inner in stmt.body:
                    walk(inner)

        for stmt in self.fn.body:
            walk(stmt)
        return names

    # -- emission helpers -------------------------------------------------------------

    def _emit(self, line: str) -> None:
        self.lines.append(f"    {line}")
        self.stats["instructions"] += 1

    def _emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def _new_label(self, prefix: str) -> str:
        self._label += 1
        return f".L{prefix}{self._label}"

    def _push_tmp(self) -> str:
        if self._tmp_depth >= len(_TMP_POOL):
            raise CodegenError(f"{self.fn.name}: expression too deep")
        reg = _TMP_POOL[self._tmp_depth]
        self._tmp_depth += 1
        return reg

    def _pop_tmp(self, count: int = 1) -> None:
        self._tmp_depth -= count

    def _emit_prologue(self) -> None:
        for decl in self.fn.arrays:
            self._emit(f"la {self.array_regs[decl.name]}, {decl.name}")
        if self.options.anchor_opt and self.fn.globals_:
            # Anchor scheme: one register addresses the whole cluster
            # of a function's globals (section IX item 2).
            self._emit(f"la {_ANCHOR}, {self.fn.globals_[0].name}")
        for _name, reg in sorted(self.scalar_regs.items()):
            self._emit(f"li {reg}, 0")

    def _emit_epilogue(self) -> None:
        result_reg = self.scalar_regs.get(self.fn.result)
        tmp = self._push_tmp()
        self._emit(f"la {tmp}, result")
        if result_reg is None:
            self._emit(f"sd x0, 0({tmp})")
        else:
            self._emit(f"sd {result_reg}, 0({tmp})")
        self._pop_tmp()
        self._emit("li a0, 0")
        self._emit("li a7, 93")
        self._emit("ecall")

    def _global_offset(self, name: str) -> int:
        for position, g in enumerate(self.fn.globals_):
            if g.name == name:
                return position * 8
        raise KeyError(f"global {name!r} not declared")

    # -- statements ----------------------------------------------------------------------

    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Let):
            reg = self._expr(stmt.expr)
            self._emit(f"mv {self.scalar_regs[stmt.name]}, {reg}")
            self._pop_tmp()
        elif isinstance(stmt, Store):
            self._store(stmt)
        elif isinstance(stmt, StoreGlobal):
            value = self._expr(stmt.value)
            if self.options.anchor_opt:
                self._emit(f"sd {value}, {self._global_offset(stmt.name)}"
                           f"({_ANCHOR})")
            else:
                addr = self._push_tmp()
                self._emit(f"la {addr}, {stmt.name}")
                self._emit(f"sd {value}, 0({addr})")
                self._pop_tmp()
            self._pop_tmp()
        elif isinstance(stmt, For):
            self._for(stmt)
        else:  # pragma: no cover
            raise TypeError(f"unknown statement {stmt}")

    def _for(self, stmt: For) -> None:
        var_reg = self.scalar_regs[stmt.var]
        head = self._new_label("loop")
        done = self._new_label("done")
        self._emit(f"li {var_reg}, 0")

        # Loop bounds are hoisted by every real compiler; only the
        # pointer strength reduction is the XT-910-specific part.
        hoisted_count = self._expr(stmt.count)
        ptrs = self._setup_pointers(stmt) if self.options.induction_opt \
            else {}

        self._emit_label(head)
        self._emit(f"bge {var_reg}, {hoisted_count}, {done}")

        self._ptr_ctx.append(ptrs)
        for inner in stmt.body:
            self._stmt(inner)
        # induction step (+ pointer strength reduction increments)
        for array, reg in ptrs.items():
            self._emit(f"addi {reg}, {reg}, {self.fn.array(array).elem_bytes}")
        self._emit(f"addi {var_reg}, {var_reg}, 1")
        self._emit(f"j {head}")
        self._emit_label(done)
        self._ptr_ctx.pop()
        for array in ptrs:
            self._free_ptrs.append(ptrs[array])
        self._pop_tmp()  # the hoisted bound

    def _setup_pointers(self, stmt: For) -> dict[str, str]:
        """Pointer strength reduction for arrays indexed by the loop var."""
        arrays = self._arrays_indexed_by(stmt.body, stmt.var)
        ptrs: dict[str, str] = {}
        for array in sorted(arrays):
            if not self._free_ptrs:
                break
            reg = self._free_ptrs.pop()
            self._emit(f"mv {reg}, {self.array_regs[array]}")
            ptrs[array] = reg
        return ptrs

    def _arrays_indexed_by(self, body: tuple[Stmt, ...],
                           var: str) -> set[str]:
        found: set[str] = set()

        def is_var(index: Expr) -> bool:
            return (isinstance(index, Var) and index.name == var) or \
                (isinstance(index, U32) and is_var(index.operand))

        def walk_expr(expr: Expr) -> None:
            if isinstance(expr, Load):
                if is_var(expr.index):
                    found.add(expr.array)
                walk_expr(expr.index)
            elif isinstance(expr, Bin):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, U32):
                walk_expr(expr.operand)

        def walk(stmt: Stmt) -> None:
            if isinstance(stmt, Let):
                walk_expr(stmt.expr)
            elif isinstance(stmt, Store):
                if is_var(stmt.index):
                    found.add(stmt.array)
                walk_expr(stmt.index)
                walk_expr(stmt.value)
            elif isinstance(stmt, StoreGlobal):
                walk_expr(stmt.value)
            elif isinstance(stmt, For):
                # inner loops manage their own pointers
                return

        for inner in body:
            walk(inner)
        return found

    def _current_ptr(self, array: str, index: Expr) -> str | None:
        if not self._ptr_ctx:
            return None
        ptrs = self._ptr_ctx[-1]
        if array not in ptrs:
            return None
        if isinstance(index, U32):
            index = index.operand
        if isinstance(index, Var):
            # only valid when indexed by the innermost loop variable,
            # which is what _setup_pointers established
            return ptrs[array]
        return None

    # -- memory access -----------------------------------------------------------------------

    def _store(self, stmt: Store) -> None:
        decl = self.fn.array(stmt.array)
        ptr = self._current_ptr(stmt.array, stmt.index) \
            if self.options.induction_opt else None
        value = self._expr(stmt.value)
        if ptr is not None:
            self._emit(f"{_STORE_OP[decl.elem_bytes]} {value}, 0({ptr})")
            self._pop_tmp()
            return
        index, zero_extended = self._index_value(stmt.index)
        shift = decl.elem_bytes.bit_length() - 1
        if self.options.use_extensions:
            op = _XT_STORE_OP[decl.elem_bytes]
            if zero_extended:
                op += ".u"
            self._emit(f"{op} {value}, {self.array_regs[stmt.array]}, "
                       f"{index}, {shift}")
            self._pop_tmp(2)
            return
        addr = self._push_tmp()
        if shift:
            self._emit(f"slli {addr}, {index}, {shift}")
            self._emit(f"add {addr}, {addr}, {self.array_regs[stmt.array]}")
        else:
            self._emit(f"add {addr}, {index}, {self.array_regs[stmt.array]}")
        self._emit(f"{_STORE_OP[decl.elem_bytes]} {value}, 0({addr})")
        self._pop_tmp(3)

    def _index_value(self, index: Expr) -> tuple[str, bool]:
        """Evaluate an index; returns (reg, needs-zero-extension).

        With extensions the U32 wrapper maps onto the ``.u`` addressing
        mode; on the base ISA it costs an slli/srli pair right here.
        """
        if isinstance(index, U32):
            reg = self._expr(index.operand)
            if self.options.use_extensions:
                return reg, True
            self._emit(f"slli {reg}, {reg}, 32")
            self._emit(f"srli {reg}, {reg}, 32")
            return reg, False
        return self._expr(index), False

    # -- expressions -----------------------------------------------------------------------------

    def _expr(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            reg = self._push_tmp()
            self._emit(f"li {reg}, {expr.value}")
            return reg
        if isinstance(expr, Var):
            reg = self._push_tmp()
            self._emit(f"mv {reg}, {self.scalar_regs[expr.name]}")
            return reg
        if isinstance(expr, U32):
            reg = self._expr(expr.operand)
            self._emit(f"slli {reg}, {reg}, 32")
            self._emit(f"srli {reg}, {reg}, 32")
            return reg
        if isinstance(expr, LoadGlobal):
            reg = self._push_tmp()
            if self.options.anchor_opt:
                self._emit(f"ld {reg}, {self._global_offset(expr.name)}"
                           f"({_ANCHOR})")
            else:
                self._emit(f"la {reg}, {expr.name}")
                self._emit(f"ld {reg}, 0({reg})")
            return reg
        if isinstance(expr, Load):
            return self._load(expr)
        if isinstance(expr, Bin):
            return self._bin(expr)
        raise TypeError(f"unknown expression {expr}")  # pragma: no cover

    def _load(self, expr: Load) -> str:
        decl = self.fn.array(expr.array)
        op = _LOAD_OP[(decl.elem_bytes, decl.signed)]
        ptr = self._current_ptr(expr.array, expr.index) \
            if self.options.induction_opt else None
        if ptr is not None:
            reg = self._push_tmp()
            self._emit(f"{op} {reg}, 0({ptr})")
            return reg
        index, zero_extended = self._index_value(expr.index)
        shift = decl.elem_bytes.bit_length() - 1
        if self.options.use_extensions:
            xt_op = _XT_LOAD_OP[(decl.elem_bytes, decl.signed)]
            if zero_extended:
                xt_op += ".u"
            self._emit(f"{xt_op} {index}, {self.array_regs[expr.array]}, "
                       f"{index}, {shift}")
            return index
        if shift:
            self._emit(f"slli {index}, {index}, {shift}")
        self._emit(f"add {index}, {index}, {self.array_regs[expr.array]}")
        self._emit(f"{op} {index}, 0({index})")
        return index

    _BIN_OPS = {"add": "add", "sub": "sub", "mul": "mul", "div": "div",
                "rem": "rem", "and": "and", "or": "or", "xor": "xor",
                "shl": "sll", "shr": "srl", "sra": "sra"}

    def _bin(self, expr: Bin) -> str:
        # MAC fusion: add(x, mul(a, b)) -> mula when extensions are on.
        if (self.options.use_extensions and expr.op == "add"
                and isinstance(expr.right, Bin) and expr.right.op == "mul"):
            acc = self._expr(expr.left)
            lhs = self._expr(expr.right.left)
            rhs = self._expr(expr.right.right)
            self._emit(f"mula {acc}, {lhs}, {rhs}")
            self._pop_tmp(2)
            return acc
        if expr.op == "rotr32":
            if self.options.use_extensions \
                    and isinstance(expr.right, Const):
                reg = self._expr(expr.left)
                self._emit(f"srriw {reg}, {reg}, {expr.right.value & 31}")
                self._emit(f"slli {reg}, {reg}, 32")
                self._emit(f"srli {reg}, {reg}, 32")
                return reg
            return self._rotr32_base(expr)
        left = self._expr(expr.left)
        # Immediate forms where available.
        if isinstance(expr.right, Const) and expr.op in ("add", "and", "or",
                                                         "xor") \
                and -2048 <= expr.right.value < 2048:
            mn = {"add": "addi", "and": "andi", "or": "ori",
                  "xor": "xori"}[expr.op]
            self._emit(f"{mn} {left}, {left}, {expr.right.value}")
            return left
        if isinstance(expr.right, Const) and expr.op in ("shl", "shr", "sra") \
                and 0 <= expr.right.value < 64:
            mn = {"shl": "slli", "shr": "srli", "sra": "srai"}[expr.op]
            self._emit(f"{mn} {left}, {left}, {expr.right.value}")
            return left
        right = self._expr(expr.right)
        self._emit(f"{self._BIN_OPS[expr.op]} {left}, {left}, {right}")
        self._pop_tmp()
        return left

    def _rotr32_base(self, expr: Bin) -> str:
        reg = self._expr(expr.left)
        if isinstance(expr.right, Const):
            amount = expr.right.value & 31
            tmp = self._push_tmp()
            self._emit(f"srliw {tmp}, {reg}, {amount}")
            self._emit(f"slliw {reg}, {reg}, {32 - amount}")
            self._emit(f"or {reg}, {reg}, {tmp}")
            self._emit(f"slli {reg}, {reg}, 32")
            self._emit(f"srli {reg}, {reg}, 32")
            self._pop_tmp()
            return reg
        raise CodegenError("rotr32 requires a constant amount")


def compile_function(function: Function,
                     options: CodegenOptions | None = None) -> str:
    """Compile *function* to assembly source."""
    return Codegen(function, options).generate()
