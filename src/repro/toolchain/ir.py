"""A small loop-oriented IR for the compiler experiments (section IX).

The paper's Fig. 20 measures "XT-910 with instruction extensions and
optimized compiler" against "native RISC-V ISA and compiler".  To
reproduce that we need a compiler with both behaviours, which needs a
program representation: this IR describes the array/global/loop kernels
the experiment compiles.

The IR also has a direct interpreter used as the reference semantics —
generated code is always validated against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1


def _signed(value: int, bits: int = 64) -> int:
    value &= (1 << bits) - 1
    return value - (1 << bits) if value >= 1 << (bits - 1) else value


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Const(Expr):
    value: int


@dataclass(frozen=True)
class Var(Expr):
    """A 64-bit scalar variable (or loop counter)."""

    name: str


@dataclass(frozen=True)
class U32(Expr):
    """Treat the operand as an unsigned 32-bit value.

    On the base ISA this costs a slli/srli zero-extension pair (the
    section VIII.A complaint); the extended ISA folds it into the
    addressing mode of indexed loads/stores.
    """

    operand: Expr


@dataclass(frozen=True)
class Bin(Expr):
    op: str          # add sub mul div rem and or xor shl shr sra rotr32
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Load(Expr):
    array: str
    index: Expr


@dataclass(frozen=True)
class LoadGlobal(Expr):
    name: str


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class Let(Stmt):
    name: str
    expr: Expr


@dataclass(frozen=True)
class Store(Stmt):
    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class StoreGlobal(Stmt):
    name: str
    value: Expr


@dataclass(frozen=True)
class For(Stmt):
    var: str
    count: Expr
    body: tuple[Stmt, ...]


# --------------------------------------------------------------------------
# Declarations / function
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ArrayDecl:
    name: str
    elems: int
    elem_bytes: int = 8
    signed: bool = True
    init: tuple[int, ...] = ()   # initial contents (zero-filled if short)


@dataclass(frozen=True)
class GlobalDecl:
    name: str
    init: int = 0


@dataclass
class Function:
    """One kernel: declarations, body, and the scalar result."""

    name: str
    arrays: list[ArrayDecl] = field(default_factory=list)
    globals_: list[GlobalDecl] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    result: str = "acc"

    def array(self, name: str) -> ArrayDecl:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise KeyError(f"array {name!r} not declared in {self.name}")


# --------------------------------------------------------------------------
# Reference interpreter
# --------------------------------------------------------------------------

class Interpreter:
    """Executes a Function with the exact RV64 semantics codegen targets."""

    def __init__(self, function: Function):
        self.function = function
        self.scalars: dict[str, int] = {}
        self.globals_: dict[str, int] = {g.name: g.init & MASK64
                                         for g in function.globals_}
        self.arrays: dict[str, list[int]] = {}
        for decl in function.arrays:
            data = list(decl.init[:decl.elems])
            data += [0] * (decl.elems - len(data))
            self.arrays[decl.name] = [v & ((1 << (decl.elem_bytes * 8)) - 1)
                                      for v in data]

    def run(self) -> int:
        for stmt in self.function.body:
            self._stmt(stmt)
        return self.scalars.get(self.function.result, 0) & MASK64

    # -- statements ----------------------------------------------------------

    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Let):
            self.scalars[stmt.name] = self._expr(stmt.expr) & MASK64
        elif isinstance(stmt, Store):
            decl = self.function.array(stmt.array)
            index = self._expr(stmt.index) & MASK64
            value = self._expr(stmt.value)
            mask = (1 << (decl.elem_bytes * 8)) - 1
            self.arrays[stmt.array][index] = value & mask
        elif isinstance(stmt, StoreGlobal):
            self.globals_[stmt.name] = self._expr(stmt.value) & MASK64
        elif isinstance(stmt, For):
            count = self._expr(stmt.count)
            for i in range(count):
                self.scalars[stmt.var] = i
                for inner in stmt.body:
                    self._stmt(inner)
        else:  # pragma: no cover
            raise TypeError(f"unknown statement {stmt}")

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr: Expr) -> int:
        if isinstance(expr, Const):
            return expr.value & MASK64
        if isinstance(expr, Var):
            return self.scalars.get(expr.name, 0)
        if isinstance(expr, U32):
            return self._expr(expr.operand) & MASK32
        if isinstance(expr, LoadGlobal):
            return self.globals_[expr.name]
        if isinstance(expr, Load):
            decl = self.function.array(expr.array)
            index = self._expr(expr.index) & MASK64
            raw = self.arrays[expr.array][index]
            if decl.signed:
                raw = _signed(raw, decl.elem_bytes * 8) & MASK64
            return raw
        if isinstance(expr, Bin):
            a = self._expr(expr.left)
            b = self._expr(expr.right)
            return self._bin(expr.op, a, b)
        raise TypeError(f"unknown expression {expr}")  # pragma: no cover

    @staticmethod
    def _bin(op: str, a: int, b: int) -> int:
        if op == "add":
            return (a + b) & MASK64
        if op == "sub":
            return (a - b) & MASK64
        if op == "mul":
            return (a * b) & MASK64
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return (a << (b & 63)) & MASK64
        if op == "shr":
            return a >> (b & 63)
        if op == "sra":
            return (_signed(a) >> (b & 63)) & MASK64
        if op == "div":
            sa, sb = _signed(a), _signed(b)
            if sb == 0:
                return MASK64
            q = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                q = -q
            return q & MASK64
        if op == "rem":
            sa, sb = _signed(a), _signed(b)
            if sb == 0:
                return a
            q = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                q = -q
            return (sa - q * sb) & MASK64
        if op == "rotr32":
            a &= MASK32
            b &= 31
            return ((a >> b) | (a << (32 - b))) & MASK32
        raise ValueError(f"unknown op {op}")
