"""IR kernels for the compiler/extension experiment (Fig. 20).

Each kernel stresses one of the paper's optimization targets:

* ``saxpy_u32``       — 32-bit unsigned induction indexing (zero-extension
  elimination + indexed load/store + MAC fusion),
* ``dot_mac``         — multiply-accumulate reduction (mula fusion),
* ``global_counters`` — several hot globals (the anchor scheme),
* ``blur_dse``        — naive double-write pattern (dead-store elimination),
* ``crypto_mix``      — 32-bit rotates (srriw),
* ``gather_u32``      — indirection table with unsigned 32-bit indices.
"""

from __future__ import annotations

from .ir import (
    ArrayDecl,
    Bin,
    Const,
    For,
    Function,
    GlobalDecl,
    Let,
    Load,
    LoadGlobal,
    Store,
    StoreGlobal,
    U32,
    Var,
)


def _add(a, b):
    return Bin("add", a, b)


def _mul(a, b):
    return Bin("mul", a, b)


def saxpy_u32(n: int = 256) -> Function:
    x_init = tuple((i * 7 + 1) % 1000 for i in range(n))
    y_init = tuple((i * 3 + 2) % 1000 for i in range(n))
    body = [
        For("i", Const(n), (
            Store("y", U32(Var("i")),
                  _add(Load("y", U32(Var("i"))),
                       _mul(Const(12), Load("x", U32(Var("i")))))),
            # surrounding scalar work, identical under both compilers
            Let("t", Bin("xor", Var("t"), Var("i"))),
            Let("t", Bin("shl", Var("t"), Const(1))),
            Let("t", _add(Var("t"), Const(3))),
            Let("u", Bin("sra", Var("t"), Const(2))),
            Let("u", Bin("and", Var("u"), Const(1023))),
        )),
        For("i", Const(n), (
            Let("acc", _add(Var("acc"), Load("y", U32(Var("i"))))),
            Let("acc", Bin("xor", Var("acc"), Var("u"))),
        )),
    ]
    return Function(
        name="saxpy_u32",
        arrays=[ArrayDecl("x", n, 4, True, x_init),
                ArrayDecl("y", n, 4, True, y_init)],
        body=body)


def dot_mac(n: int = 300) -> Function:
    a_init = tuple((i * 13 + 5) % 200 for i in range(n))
    b_init = tuple((i * 11 + 3) % 200 for i in range(n))
    body = [
        For("i", Const(n), (
            Let("acc", _add(Var("acc"),
                            _mul(Load("a", Var("i")), Load("b", Var("i"))))),
        )),
    ]
    return Function(
        name="dot_mac",
        arrays=[ArrayDecl("a", n, 4, True, a_init),
                ArrayDecl("b", n, 4, True, b_init)],
        body=body)


def global_counters(n: int = 250) -> Function:
    data = tuple((i * 37 + 11) % 256 for i in range(n))
    body = [
        For("i", Const(n), (
            Let("v", Load("data", Var("i"))),
            Let("bucket", Bin("and", Var("v"), Const(3))),
            Let("v", Bin("xor", Var("v"), Bin("shr", Var("v"), Const(3)))),
            Let("v", _add(Var("v"), Bin("shl", Var("bucket"), Const(2)))),
            Let("v", Bin("and", Var("v"), Const(2047))),
            StoreGlobal("hits", _add(LoadGlobal("hits"), Const(1))),
            StoreGlobal("sum", _add(LoadGlobal("sum"), Var("v"))),
            StoreGlobal("wsum", _add(LoadGlobal("wsum"),
                                     _mul(Var("v"), Var("bucket")))),
        )),
        Let("acc", _add(LoadGlobal("hits"),
                        _add(LoadGlobal("sum"), LoadGlobal("wsum")))),
    ]
    return Function(
        name="global_counters",
        arrays=[ArrayDecl("data", n, 4, True, data)],
        globals_=[GlobalDecl("hits"), GlobalDecl("sum"),
                  GlobalDecl("wsum")],
        body=body)


def blur_dse(n: int = 200) -> Function:
    src = tuple((i * 29 + 7) % 512 for i in range(n))
    body = [
        For("i", Const(n), (
            # The naive frontend writes a default, then overwrites it —
            # the classic pattern DSE removes.
            Store("out", Var("i"), Load("src", Var("i"))),
            Let("w", _add(Load("src", Var("i")), Const(100))),
            Let("w", Bin("xor", Var("w"), Bin("shr", Var("w"), Const(5)))),
            Let("w", _mul(Var("w"), Const(3))),
            Let("w", Bin("and", Var("w"), Const(4095))),
            Store("out", Var("i"),
                  Bin("shr", _add(Load("src", Var("i")), Const(100)),
                      Const(1))),
        )),
        For("i", Const(n), (
            Let("acc", _add(Var("acc"), Load("out", Var("i")))),
        )),
    ]
    return Function(
        name="blur_dse",
        arrays=[ArrayDecl("src", n, 4, True, src),
                ArrayDecl("out", n, 4, True)],
        body=body)


def crypto_mix(n: int = 200) -> Function:
    msg = tuple((i * 2654435761) & 0xFFFFFFFF for i in range(n))
    body = [
        For("i", Const(n), (
            Let("w", Load("msg", Var("i"))),
            Let("m", Bin("xor",
                         Bin("rotr32", U32(Var("w")), Const(7)),
                         Bin("rotr32", U32(Var("w")), Const(18)))),
            Let("m", Bin("xor", Var("m"),
                         Bin("shr", U32(Var("w")), Const(3)))),
            Let("acc", _add(Var("acc"), Var("m"))),
        )),
    ]
    return Function(
        name="crypto_mix",
        arrays=[ArrayDecl("msg", n, 4, False, msg)],
        body=body)


def gather_u32(n: int = 220) -> Function:
    table = tuple((i * i * 3 + 1) % 4096 for i in range(n))
    idx = tuple((i * 53 + 9) % n for i in range(n))
    body = [
        For("i", Const(n), (
            Let("j", Load("idx", U32(Var("i")))),
            Let("acc", _add(Var("acc"), Load("table", U32(Var("j"))))),
        )),
    ]
    return Function(
        name="gather_u32",
        arrays=[ArrayDecl("table", n, 4, True, table),
                ArrayDecl("idx", n, 4, False, idx)],
        body=body)


def fig20_kernels() -> list[Function]:
    """The kernel set driving the Fig. 20 experiment."""
    return [saxpy_u32(), dot_mac(), global_counters(), blur_dse(),
            crypto_mix(), gather_u32()]
