"""IR optimization passes (paper section IX).

The XT-910 compiler's three published optimizations over stock RISC-V
GCC are reproduced here at the IR/codegen level:

1. induction-variable optimization — implemented in the code generator
   (loop-bound hoisting + pointer strength reduction), enabled by
   ``CodegenOptions.induction_opt``;
2. the anchor scheme for global variables — also a codegen behaviour
   (``anchor_opt``);
3. dead-store elimination — :func:`dead_store_elimination` below, an
   IR-to-IR pass ("the existing RISC-V compilers do not support DSE
   optimization, XT-910 compiler tool does").

Constant folding is included as the baseline cleanup both compilers do.
"""

from __future__ import annotations

from .ir import Bin, Const, Expr, For, Function, Let, Load, Store, Stmt
from .ir import Interpreter, LoadGlobal, StoreGlobal, U32, Var


def constant_fold(expr: Expr) -> Expr:
    """Fold Bin(Const, Const) subtrees."""
    if isinstance(expr, Bin):
        left = constant_fold(expr.left)
        right = constant_fold(expr.right)
        if isinstance(left, Const) and isinstance(right, Const):
            value = Interpreter._bin(expr.op, left.value & ((1 << 64) - 1),
                                     right.value & ((1 << 64) - 1))
            return Const(value)
        return Bin(expr.op, left, right)
    if isinstance(expr, U32):
        inner = constant_fold(expr.operand)
        if isinstance(inner, Const):
            return Const(inner.value & 0xFFFFFFFF)
        return U32(inner)
    if isinstance(expr, Load):
        return Load(expr.array, constant_fold(expr.index))
    return expr


def fold_function(function: Function) -> Function:
    """Apply constant folding through all statements."""
    function.body = [_fold_stmt(s) for s in function.body]
    return function


def _fold_stmt(stmt: Stmt) -> Stmt:
    if isinstance(stmt, Let):
        return Let(stmt.name, constant_fold(stmt.expr))
    if isinstance(stmt, Store):
        return Store(stmt.array, constant_fold(stmt.index),
                     constant_fold(stmt.value))
    if isinstance(stmt, StoreGlobal):
        return StoreGlobal(stmt.name, constant_fold(stmt.value))
    if isinstance(stmt, For):
        return For(stmt.var, constant_fold(stmt.count),
                   tuple(_fold_stmt(s) for s in stmt.body))
    return stmt


# --------------------------------------------------------------------------
# Dead store elimination
# --------------------------------------------------------------------------

def _reads_array(expr: Expr, array: str) -> bool:
    if isinstance(expr, Load):
        return expr.array == array or _reads_array(expr.index, array)
    if isinstance(expr, Bin):
        return _reads_array(expr.left, array) or _reads_array(expr.right, array)
    if isinstance(expr, U32):
        return _reads_array(expr.operand, array)
    return False


def _reads_global(expr: Expr, name: str) -> bool:
    if isinstance(expr, LoadGlobal):
        return expr.name == name
    if isinstance(expr, Bin):
        return _reads_global(expr.left, name) or _reads_global(expr.right, name)
    if isinstance(expr, U32):
        return _reads_global(expr.operand, name)
    if isinstance(expr, Load):
        return _reads_global(expr.index, name)
    return False


def dead_store_elimination(function: Function) -> tuple[Function, int]:
    """Remove stores that are provably overwritten before any read.

    Conservative block-local analysis: a ``Store(a, i, v)`` is dead if a
    later statement in the same block stores to the syntactically
    identical ``(a, i)`` with no intervening read of array ``a`` and no
    intervening loop (whose body might read it).  Same for globals.
    Returns (function, number of removed stores).
    """
    removed = 0

    def process(block: tuple[Stmt, ...] | list[Stmt]) -> list[Stmt]:
        nonlocal removed
        out: list[Stmt] = []
        block = [For(s.var, s.count, tuple(process(s.body)))
                 if isinstance(s, For) else s for s in block]
        for pos, stmt in enumerate(block):
            if isinstance(stmt, Store):
                if _store_is_dead(block, pos):
                    removed += 1
                    continue
            if isinstance(stmt, StoreGlobal):
                if _global_store_is_dead(block, pos):
                    removed += 1
                    continue
            out.append(stmt)
        return out

    def _store_is_dead(block: list[Stmt], pos: int) -> bool:
        me = block[pos]
        assert isinstance(me, Store)
        for later in block[pos + 1:]:
            if isinstance(later, For):
                return False
            if isinstance(later, Let) and _reads_array(later.expr, me.array):
                return False
            if isinstance(later, Store):
                if _reads_array(later.value, me.array) \
                        or _reads_array(later.index, me.array):
                    return False
                if later.array == me.array and later.index == me.index:
                    return True
            if isinstance(later, StoreGlobal) \
                    and _reads_array(later.value, me.array):
                return False
        return False

    def _global_store_is_dead(block: list[Stmt], pos: int) -> bool:
        me = block[pos]
        assert isinstance(me, StoreGlobal)
        for later in block[pos + 1:]:
            if isinstance(later, For):
                return False
            if isinstance(later, Let) and _reads_global(later.expr, me.name):
                return False
            if isinstance(later, Store) \
                    and (_reads_global(later.value, me.name)
                         or _reads_global(later.index, me.name)):
                return False
            if isinstance(later, StoreGlobal):
                if _reads_global(later.value, me.name):
                    return False
                if later.name == me.name:
                    return True
        return False

    function.body = process(function.body)
    return function, removed


# --------------------------------------------------------------------------
# Loop unrolling
# --------------------------------------------------------------------------

def unroll_loops(function: Function, factor: int = 4) -> tuple[Function, int]:
    """Unroll constant-trip-count loops by *factor*.

    Applies to ``For`` loops whose count is a ``Const`` divisible by
    the factor and whose body contains no nested loop.  The loop
    variable is re-derived per unrolled block
    (``v = v_outer*factor + k``), so semantics are preserved exactly —
    verified against the interpreter in the test suite.

    The paper discusses how unrolling interacts badly with the stock
    compiler's induction-variable handling (section IX item 1); this
    pass exists so that interaction can be measured.
    """
    unrolled = 0

    def process(block) -> list[Stmt]:
        nonlocal unrolled
        out: list[Stmt] = []
        for stmt in block:
            if isinstance(stmt, For):
                body = tuple(process(stmt.body))
                stmt = For(stmt.var, stmt.count, body)
                if (isinstance(stmt.count, Const)
                        and stmt.count.value % factor == 0
                        and stmt.count.value >= factor
                        and not any(isinstance(s, For) for s in body)):
                    outer = f"{stmt.var}__u"
                    new_body: list[Stmt] = []
                    for k in range(factor):
                        new_body.append(Let(stmt.var, Bin(
                            "add",
                            Bin("mul", Var(outer), Const(factor)),
                            Const(k))))
                        new_body.extend(body)
                    stmt = For(outer, Const(stmt.count.value // factor),
                               tuple(new_body))
                    unrolled += 1
            out.append(stmt)
        return out

    function.body = process(function.body)
    return function, unrolled
