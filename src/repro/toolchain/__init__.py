"""Mini compiler toolchain: IR, passes, base & extended codegen."""

from __future__ import annotations

from ..asm import Program, assemble
from .codegen import Codegen, CodegenError, CodegenOptions, compile_function  # noqa: F401
from .ir import (  # noqa: F401
    ArrayDecl,
    Bin,
    Const,
    Expr,
    For,
    Function,
    GlobalDecl,
    Interpreter,
    Let,
    Load,
    LoadGlobal,
    Stmt,
    Store,
    StoreGlobal,
    U32,
    Var,
)
from .kernels import fig20_kernels  # noqa: F401
from .passes import constant_fold, dead_store_elimination, fold_function  # noqa: F401


def build_program(function: Function,
                  options: CodegenOptions | None = None,
                  compress: bool = True) -> Program:
    """Compile an IR function and assemble it into a Program."""
    return assemble(compile_function(function, options), compress=compress)
