"""Analytical silicon model (Table II substitution — see DESIGN.md)."""

from .model import (  # noqa: F401
    OperatingPoint,
    PhysicalEstimate,
    PhysicalModel,
    ProcessNode,
    table2_rows,
)
