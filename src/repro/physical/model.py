"""Analytical area / frequency / power model (paper Table II).

Silicon cannot be measured from Python; this model reproduces Table II
the only defensible way — as an analytical model whose per-structure
coefficients are calibrated against the paper's published data points:

* 0.8 mm^2 per core with the vector unit, 0.6 mm^2 without (12nm,
  excluding L2),
* 2.0 GHz at 0.8 V with LVT cells / 2.5 GHz at 1.0 V with 30% ULVT
  cells (TT, 85C), 2.8 GHz in 7nm,
* ~100 uW/MHz dynamic power (32/64K L1, 256/512K L2, no VEC).

The model exposes how each microarchitectural structure contributes,
so configuration sweeps (Table I) produce physically-plausible trends:
bigger caches cost SRAM area, wider issue costs wiring-dominated logic
area, voltage scales frequency roughly linearly in this regime and
power quadratically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uarch.config import CoreConfig


@dataclass
class ProcessNode:
    """Technology node scaling anchors."""

    name: str
    density_scale: float   # area multiplier vs 12nm
    speed_scale: float     # frequency multiplier vs 12nm

    @classmethod
    def tsmc12(cls) -> "ProcessNode":
        return cls("TSMC 12nm FinFET", 1.0, 1.0)

    @classmethod
    def tsmc7(cls) -> "ProcessNode":
        # Calibrated to the paper's 7nm data point: 2.8 GHz vs 2.5 GHz.
        return cls("TSMC 7nm FinFET", 0.55, 1.12)


@dataclass
class OperatingPoint:
    """Voltage / cell-library corner (Table II footnotes a, b)."""

    vdd: float = 0.8
    ulvt_fraction: float = 0.0   # fraction of ULVT standard cells

    @classmethod
    def nominal(cls) -> "OperatingPoint":
        """0.8V, LVT cells, ULVT SRAM: the 2.0 GHz corner."""
        return cls(vdd=0.8, ulvt_fraction=0.0)

    @classmethod
    def boost(cls) -> "OperatingPoint":
        """1.0V, 30% ULVT cells: the 2.5 GHz voltage-boost corner."""
        return cls(vdd=1.0, ulvt_fraction=0.30)


# Area coefficients, mm^2 in 12nm.  SRAM density ~0.55 mm^2 per MB for
# dense arrays; logic terms calibrated so the XT-910 configuration
# lands on the published 0.6/0.8 mm^2 split.
_SRAM_MM2_PER_KB = 0.00135
_FRONTEND_BASE = 0.045          # fetch + predictors at reference sizes
_DECODE_PER_WIDTH = 0.011
_RENAME_PER_WIDTH = 0.008
_ROB_PER_ENTRY = 0.00022
_IQ_PER_ENTRY = 0.0006
_ALU_EACH = 0.012
_FPU_EACH = 0.030
_LSU_BASE = 0.050
_LSU_DUAL_EXTRA = 0.022
_VEC_SLICE_EACH = 0.100         # the with/without-VEC delta is 0.2 mm^2
_BTB_PER_KENTRY = 0.008
_MISC_BASE = 0.082              # CLINT/PLIC/debug/PMP/MMU

# Frequency: pipeline-depth-normalized; calibrated at depth 12.
_BASE_GHZ_12NM = 2.00           # 0.8V LVT
_VDD_SLOPE = 1.9                # GHz per volt around the calibration point
_ULVT_SPEEDUP_FULL = 0.165    # +16.5% if the whole library were ULVT

# Power: uW/MHz contributions; calibrated to ~100 uW/MHz total for the
# no-VEC reference configuration at 0.8V.
_PWR_LOGIC_BASE = 25.5
_PWR_PER_ISSUE = 3.2
_PWR_PER_ROB_ENTRY = 0.055
_PWR_SRAM_PER_KB = 0.30
_PWR_VEC_SLICE = 11.0


@dataclass
class PhysicalEstimate:
    area_mm2: float
    frequency_ghz: float
    dynamic_uw_per_mhz: float

    @property
    def power_mw_at_fmax(self) -> float:
        return self.dynamic_uw_per_mhz * self.frequency_ghz * 1000.0 / 1000.0


class PhysicalModel:
    """Estimates Table II quantities for a :class:`CoreConfig`."""

    def __init__(self, node: ProcessNode | None = None):
        self.node = node if node is not None else ProcessNode.tsmc12()

    # -- area ------------------------------------------------------------------

    def area_mm2(self, config: CoreConfig, include_l2: bool = False) -> float:
        """Core area in mm^2 (paper reports it excluding the L2)."""
        mem = config.mem
        sram_kb = (mem.l1i_size + mem.l1d_size) / 1024
        if include_l2:
            sram_kb += mem.l2_size / 1024
        area = (
            _FRONTEND_BASE
            + _DECODE_PER_WIDTH * config.decode_width
            + _RENAME_PER_WIDTH * config.rename_width
            + _ROB_PER_ENTRY * config.rob_entries
            + _IQ_PER_ENTRY * config.iq_entries
            + _ALU_EACH * config.fu.alu_count
            + _FPU_EACH * config.fu.fpu_count
            + _LSU_BASE
            + (_LSU_DUAL_EXTRA if config.lsu.dual_issue else 0.0)
            + _BTB_PER_KENTRY * config.frontend.btb.l1_entries / 1024
            + _MISC_BASE
            + _SRAM_MM2_PER_KB * sram_kb
        )
        if config.vector_enabled:
            area += _VEC_SLICE_EACH * config.fu.vec_slices
        return area * self.node.density_scale

    # -- frequency ------------------------------------------------------------------

    def frequency_ghz(self, config: CoreConfig,
                      op: OperatingPoint | None = None) -> float:
        """Maximum frequency at the given operating point (TT 85C)."""
        op = op if op is not None else OperatingPoint.nominal()
        base = _BASE_GHZ_12NM + _VDD_SLOPE * (op.vdd - 0.8)
        base *= 1.0 + _ULVT_SPEEDUP_FULL * op.ulvt_fraction
        # Deeper pipelines clock higher: stage delay ~ 1/depth with
        # diminishing returns (latch overhead).
        depth = config.frontend.depth + 5   # frontend + backend stages
        depth_factor = (depth / 12.0) ** 0.6
        return base * depth_factor * self.node.speed_scale

    # -- power -----------------------------------------------------------------------

    def dynamic_uw_per_mhz(self, config: CoreConfig,
                           op: OperatingPoint | None = None) -> float:
        """Dynamic power per MHz (the paper's ~100 uW/MHz metric)."""
        op = op if op is not None else OperatingPoint.nominal()
        mem = config.mem
        sram_kb = (mem.l1i_size + mem.l1d_size) / 1024
        power = (
            _PWR_LOGIC_BASE
            + _PWR_PER_ISSUE * config.issue_width
            + _PWR_PER_ROB_ENTRY * config.rob_entries
            + _PWR_SRAM_PER_KB * sram_kb
        )
        if config.vector_enabled:
            power += _PWR_VEC_SLICE * config.fu.vec_slices
        # CV^2f: normalize to the 0.8V calibration point.
        power *= (op.vdd / 0.8) ** 2
        return power

    def estimate(self, config: CoreConfig,
                 op: OperatingPoint | None = None) -> PhysicalEstimate:
        return PhysicalEstimate(
            area_mm2=self.area_mm2(config),
            frequency_ghz=self.frequency_ghz(config, op),
            dynamic_uw_per_mhz=self.dynamic_uw_per_mhz(config, op))


def table2_rows() -> dict[str, dict[str, float]]:
    """Regenerate Table II: paper value vs model value."""
    from ..uarch.presets import xt910

    model = PhysicalModel()
    with_vec = xt910(vector=True)
    without_vec = xt910(vector=False)
    # The power config from footnote c: 32/64K L1, no VEC.
    return {
        "frequency_nominal_ghz": {
            "paper": 2.0,
            "model": round(model.frequency_ghz(with_vec,
                                               OperatingPoint.nominal()), 3)},
        "frequency_boost_ghz": {
            "paper": 2.5,
            "model": round(model.frequency_ghz(with_vec,
                                               OperatingPoint.boost()), 3)},
        "frequency_7nm_ghz": {
            "paper": 2.8,
            "model": round(PhysicalModel(ProcessNode.tsmc7())
                           .frequency_ghz(with_vec, OperatingPoint.boost()),
                           3)},
        "area_with_vec_mm2": {
            "paper": 0.8,
            "model": round(model.area_mm2(with_vec), 3)},
        "area_without_vec_mm2": {
            "paper": 0.6,
            "model": round(model.area_mm2(without_vec), 3)},
        "dynamic_uw_per_mhz": {
            "paper": 100.0,
            "model": round(model.dynamic_uw_per_mhz(without_vec), 1)},
    }
