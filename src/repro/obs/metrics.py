"""Namespaced metrics registry with JSON/CSV export and a comparator.

Every counter surface in the model — :class:`~repro.uarch.stats.
CoreStats`, the cache/TLB/prefetcher/DRAM counters, the SMP coherence
counters, the emulator's block-cache counters — walks into one flat
``namespace.dotted.key -> value`` dict.  Keys are validated at
``set()`` time so the harness experiments that report through the
registry stay schema-stable, and :func:`diff_metrics` compares two
exported snapshots (``repro metrics --diff a.json b.json``).
"""

from __future__ import annotations

import csv
import io
import json
import re
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Union

MetricValue = Union[int, float, str]

#: lowercase dotted namespaces; segments may use digits, ``_`` and ``-``
#: (core and workload names such as ``cortex-a73`` / ``coremark-list``).
_KEY_RE = re.compile(r"^[a-z0-9_-]+(\.[a-z0-9_-]+)*$")


class MetricsRegistry:
    """A flat, validated ``namespace.key -> value`` store."""

    def __init__(self) -> None:
        self._values: dict[str, MetricValue] = {}

    def set(self, key: str, value: object) -> None:
        if not _KEY_RE.match(key):
            raise ValueError(
                f"bad metric key {key!r}: keys are dot-separated "
                "lowercase segments of [a-z0-9_-]")
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float, str)):
            raise TypeError(
                f"metric {key!r}: value must be int/float/str, "
                f"got {type(value).__name__}")
        self._values[key] = value

    def update(self, namespace: str, values: Mapping[str, object]) -> None:
        """Set every ``values`` entry under ``namespace.``."""
        for name, value in values.items():
            self.set(f"{namespace}.{name}", value)

    def as_dict(self) -> dict[str, MetricValue]:
        return dict(sorted(self._values.items()))

    def keys(self) -> list[str]:
        return sorted(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __getitem__(self, key: str) -> MetricValue:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    # -- export -------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["metric", "value"])
        for key, value in self.as_dict().items():
            writer.writerow([key, value])
        return buffer.getvalue()

    def save(self, path: str) -> None:
        """Write by extension: ``.csv`` → CSV, anything else JSON."""
        payload = self.to_csv() if path.endswith(".csv") else self.to_json()
        with open(path, "w") as handle:
            handle.write(payload)
            if not payload.endswith("\n"):
                handle.write("\n")

    @classmethod
    def from_dict(cls, values: Mapping[str, object]) -> "MetricsRegistry":
        registry = cls()
        for key, value in values.items():
            registry.set(key, value)
        return registry

    @classmethod
    def load(cls, path: str) -> "MetricsRegistry":
        with open(path) as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: expected a flat JSON object")
        return cls.from_dict(payload)


# -- counter-surface walkers ------------------------------------------------


def collect_core_stats(stats: Any,
                       registry: MetricsRegistry | None = None,
                       prefix: str = "core") -> MetricsRegistry:
    """Walk a :class:`~repro.uarch.stats.CoreStats` into the registry.

    Scalar fields land under ``core.*``; the ``extra`` dict (block-
    cache counters the runner copies in) lands under ``emu.*``, except
    the tier-3 translator's ``codegen_*`` counters (own
    ``sim.codegen.*`` namespace: blocks compiled, compile seconds,
    disk-cache hits/misses, ...) and the batched vector engine's
    ``vector_*`` counters (``sim.vector.*``: batched/specialized/
    fallback ops, mask density).
    """
    registry = registry if registry is not None else MetricsRegistry()
    for name, value in vars(stats).items():
        if name == "extra":
            continue
        registry.set(f"{prefix}.{name}", value)
    registry.set(f"{prefix}.ipc", stats.ipc)
    for name, value in getattr(stats, "extra", {}).items():
        if name.startswith("vector_"):
            registry.set(f"sim.vector.{name[len('vector_'):]}", value)
        elif name.startswith("codegen_"):
            registry.set(f"sim.codegen.{name[len('codegen_'):]}", value)
        else:
            registry.set(f"emu.{name}", value)
    return registry


def collect_hierarchy(hierarchy: Any,
                      registry: MetricsRegistry | None = None,
                      prefix: str = "mem") -> MetricsRegistry:
    """Walk a :class:`~repro.mem.hierarchy.MemoryHierarchy`'s counters."""
    registry = registry if registry is not None else MetricsRegistry()
    registry.update(prefix, hierarchy.stats.counters())
    for name, cache in (("l1i", hierarchy.l1i), ("l1d", hierarchy.l1d),
                        ("l2", hierarchy.l2)):
        registry.update(f"{prefix}.{name}", cache.stats.counters())
    registry.update(f"{prefix}.tlb", hierarchy.tlb.stats.counters())
    registry.update(f"{prefix}.l1_prefetch",
                    hierarchy.l1_prefetcher.stats.counters())
    registry.update(f"{prefix}.l2_prefetch",
                    hierarchy.l2_prefetcher.stats.counters())
    registry.update(f"{prefix}.dram", hierarchy.dram.counters())
    return registry


def collect_smp(smp_stats: Any,
                registry: MetricsRegistry | None = None,
                prefix: str = "smp") -> MetricsRegistry:
    """Walk SMP coherence counters (:class:`SmpTimingStats`)."""
    registry = registry if registry is not None else MetricsRegistry()
    registry.update(prefix, smp_stats.counters())
    return registry


def collect_service(service: Any,
                    registry: MetricsRegistry | None = None,
                    prefix: str = "service") -> MetricsRegistry:
    """Walk a :class:`~repro.service.core.JobService`'s counters.

    Everything lands under ``service.*``: job terminal-state counts,
    retry/fallback/crash/timeout totals, circuit-breaker and result-
    cache counters, and end-to-end latency percentiles.
    """
    registry = registry if registry is not None else MetricsRegistry()
    registry.update(prefix, service.counters())
    return registry


def collect_explore(report: Any,
                    registry: MetricsRegistry | None = None,
                    prefix: str = "explore") -> MetricsRegistry:
    """Walk an :class:`~repro.harness.explore.ExploreReport`.

    Sweep-level provenance lands under ``explore.*`` (points, cells,
    cache hits vs simulations, tier); each cell's headline numbers land
    under ``explore.<point>.<workload>.*`` with the point's axis
    values beside them (``explore.<point>.axis.<dotted.path>``), so a
    saved report diffs meaningfully against any other sweep of the
    same spec.
    """
    registry = registry if registry is not None else MetricsRegistry()
    registry.set(f"{prefix}.sweep", report.name)
    registry.set(f"{prefix}.tier", report.tier)
    registry.set(f"{prefix}.points", report.points)
    registry.set(f"{prefix}.cells", report.cells)
    registry.set(f"{prefix}.cache_hits", report.cache_hits)
    registry.set(f"{prefix}.simulated", report.simulated)
    for cell in report.results:
        head = f"{prefix}.{cell.point.label}.{cell.workload}"
        registry.set(f"{head}.cycles", cell.record["cycles"])
        registry.set(f"{head}.instructions",
                     cell.record["instructions"])
        registry.set(f"{head}.ipc", cell.record["ipc"])
        registry.set(f"{head}.cached", cell.cached)
        for path, value in cell.point.overrides.items():
            registry.set(f"{prefix}.{cell.point.label}.axis.{path}",
                         value)
    return registry


def collect_run(result: Any,
                registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Everything one :class:`~repro.harness.runner.RunResult` measured."""
    registry = registry if registry is not None else MetricsRegistry()
    collect_core_stats(result.stats, registry)
    collect_hierarchy(result.pipeline.hier, registry)
    return registry


# -- comparator -------------------------------------------------------------


@dataclass(slots=True)
class MetricDelta:
    """One key that differs between two snapshots.

    ``before``/``after`` is None when the key exists only on one side.
    """

    key: str
    before: MetricValue | None
    after: MetricValue | None

    @property
    def change(self) -> float | None:
        """Relative change for numeric pairs, else None."""
        if isinstance(self.before, (int, float)) \
                and isinstance(self.after, (int, float)) and self.before:
            return (self.after - self.before) / abs(self.before)
        return None


def diff_metrics(before: Mapping[str, MetricValue],
                 after: Mapping[str, MetricValue]) -> list[MetricDelta]:
    """Keys added, removed or changed between two metric snapshots."""
    deltas: list[MetricDelta] = []
    for key in sorted(set(before) | set(after)):
        old = before.get(key)
        new = after.get(key)
        if old != new:
            deltas.append(MetricDelta(key, old, new))
    return deltas


def render_diff(deltas: list[MetricDelta]) -> str:
    if not deltas:
        return "no differences"
    width = max(len(d.key) for d in deltas) + 2
    lines = [f"{'metric':<{width}}{'before':>14}{'after':>14}  change"]
    for delta in deltas:
        before = "-" if delta.before is None else _fmt(delta.before)
        after = "-" if delta.after is None else _fmt(delta.after)
        change = delta.change
        suffix = f"  {change:+.1%}" if change is not None else ""
        lines.append(f"{delta.key:<{width}}{before:>14}{after:>14}{suffix}")
    return "\n".join(lines)


def _fmt(value: MetricValue) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
