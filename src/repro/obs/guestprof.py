"""Guest profiler: cycle attribution by PC, rolled up to functions.

:class:`GuestProfiler` is the second timing-model hook (``PipelineModel
.profiler``, None-guarded like the tracer).  Attribution is by
completion progress: each instruction that advances the maximum
completion cycle is charged the delta, binned by its PC — the sum of
all bins equals the final completion clock, which is within a retire
skew of ``CoreStats.cycles``, so a whole run's cycles decompose over
the static code.

Function roll-up reuses ``repro.analysis.cfg``'s function partitioning
(blocks → owning function entry).  Cumulative time is tracked with a
dynamic call stack driven by the model's control classes (calls push
the callee entry, returns pop and charge the call period), with a
recursion guard so self-recursive functions are not double-counted.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..asm.program import Program

# Control classes from repro.uarch.core (kept numeric: the hot loop
# passes TimingInfo.ctrl straight through).
_CTRL_JAL_CALL = 2
_CTRL_RETURN = 4
_CTRL_IND_CALL = 5


@dataclass(slots=True)
class FunctionRow:
    """One recovered function's share of the run."""

    name: str
    entry: int
    self_cycles: int
    cum_cycles: int
    hot_pc: int
    hot_cycles: int
    hot_line: str


@dataclass
class ProfileReport:
    """Function-level attribution of one profiled run."""

    total_cycles: int
    attributed_cycles: int
    rows: list[FunctionRow]
    #: pc -> cycles that landed outside every recovered function
    unattributed: dict[int, int]

    @property
    def coverage(self) -> float:
        """Fraction of cycles attributed to recovered functions."""
        if not self.total_cycles:
            return 1.0
        return self.attributed_cycles / self.total_cycles

    def render(self, top: int = 20, cumulative: bool = False) -> str:
        key = (lambda r: r.cum_cycles) if cumulative \
            else (lambda r: r.self_cycles)
        rows = sorted(self.rows, key=key, reverse=True)[:top]
        total = self.total_cycles or 1
        width = max((len(r.name) for r in rows), default=8) + 2
        mode = "cumulative" if cumulative else "flat"
        lines = [
            f"guest profile ({mode}): {self.total_cycles} cycles, "
            f"{self.coverage:.1%} attributed to "
            f"{len(self.rows)} function(s)",
            f"{'function':<{width}}{'self':>12}{'self%':>8}"
            f"{'cum':>12}{'cum%':>8}  hottest line",
        ]
        for row in rows:
            hot = f"{row.hot_pc:#x}"
            if row.hot_line:
                hot += f": {row.hot_line}"
            lines.append(
                f"{row.name:<{width}}{row.self_cycles:>12}"
                f"{row.self_cycles / total:>8.1%}"
                f"{row.cum_cycles:>12}{row.cum_cycles / total:>8.1%}"
                f"  {hot}")
        return "\n".join(lines)


class GuestProfiler:
    """Per-PC cycle bins plus a dynamic call stack for cumulative time."""

    def __init__(self) -> None:
        self._bins: dict[int, int] = {}
        self._clock = 0                 # monotonic max completion cycle
        self.recorded = 0
        self._stack: list[tuple[int, int]] = []  # (callee entry, clock)
        self._depth: dict[int, int] = {}         # recursion guard
        self._cum: dict[int, int] = {}

    def record(self, pc: int, complete: int, ctrl: int,
               target: int) -> None:
        """Hot-loop hook: charge completion progress to *pc*."""
        self.recorded += 1
        clock = self._clock
        if complete > clock:
            bins = self._bins
            bins[pc] = bins.get(pc, 0) + (complete - clock)
            self._clock = complete
        if ctrl == _CTRL_JAL_CALL or ctrl == _CTRL_IND_CALL:
            self._stack.append((target, self._clock))
            self._depth[target] = self._depth.get(target, 0) + 1
        elif ctrl == _CTRL_RETURN and self._stack:
            entry, start = self._stack.pop()
            depth = self._depth.get(entry, 1) - 1
            self._depth[entry] = depth
            if depth == 0:
                self._cum[entry] = self._cum.get(entry, 0) \
                    + (self._clock - start)

    def bins(self) -> dict[int, int]:
        return dict(self._bins)

    @property
    def total_cycles(self) -> int:
        return self._clock

    def attribute(self, program: "Program") -> ProfileReport:
        """Roll the PC bins up to ``analysis.cfg``'s functions."""
        from ..analysis.cfg import build_cfg

        cfg = build_cfg(program)
        starts = cfg.order
        ends = [cfg.blocks[s].end for s in starts]

        func_self: dict[int, int] = {}
        func_hot: dict[int, tuple[int, int]] = {}
        unattributed: dict[int, int] = {}
        attributed = 0
        for pc, cycles in self._bins.items():
            i = bisect.bisect_right(starts, pc) - 1
            entry = None
            if i >= 0 and pc < ends[i]:
                entry = cfg.block_func.get(starts[i])
            if entry is None or entry not in cfg.functions:
                unattributed[pc] = cycles
                continue
            attributed += cycles
            func_self[entry] = func_self.get(entry, 0) + cycles
            hot = func_hot.get(entry)
            if hot is None or cycles > hot[1]:
                func_hot[entry] = (pc, cycles)

        # Close out calls still on the stack at end of run (oldest
        # frame wins per function, matching the recursion guard).
        cum = dict(self._cum)
        open_seen: set[int] = set()
        for entry, start in self._stack:
            if entry not in open_seen:
                cum[entry] = cum.get(entry, 0) + (self._clock - start)
                open_seen.add(entry)

        rows: list[FunctionRow] = []
        for entry, self_cycles in func_self.items():
            func = cfg.functions[entry]
            # A function's span covers at least its own cycles; the
            # program's root function was never called, so its span is
            # the whole run.
            cum_cycles = max(cum.get(entry, 0), self_cycles)
            if entry == cfg.entry:
                cum_cycles = self._clock
            hot_pc, hot_cycles = func_hot[entry]
            rows.append(FunctionRow(
                name=func.name, entry=entry, self_cycles=self_cycles,
                cum_cycles=cum_cycles, hot_pc=hot_pc,
                hot_cycles=hot_cycles,
                hot_line=program.source_line(hot_pc)))
        rows.sort(key=lambda r: r.self_cycles, reverse=True)
        return ProfileReport(
            total_cycles=self._clock, attributed_cycles=attributed,
            rows=rows, unattributed=unattributed)
