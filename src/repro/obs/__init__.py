"""Observability layer: pipeline traces, metrics, guest profiling.

Three opt-in instruments over the timing model, all None-guarded in the
hot loops exactly like the runtime sanitizer — with everything off the
model's behaviour and :class:`~repro.uarch.stats.CoreStats` stay
bit-identical to the committed golden oracle:

* :class:`PipelineTracer` — per-instruction stage-entry cycles in a
  bounded ring buffer, exported as Kanata/Konata pipeline-visualiser
  files or JSONL (``repro run --trace out.kanata``),
* :class:`MetricsRegistry` — every counter in the model walked into one
  namespaced flat dict with JSON/CSV export and a diff comparator
  (``repro metrics``),
* :class:`GuestProfiler` — cycle attribution binned by guest PC and
  rolled up to the functions ``repro.analysis.cfg`` recovers
  (``repro top``).
"""

from .guestprof import GuestProfiler, ProfileReport
from .metrics import (
    MetricDelta,
    MetricsRegistry,
    collect_core_stats,
    collect_explore,
    collect_hierarchy,
    collect_run,
    collect_service,
    collect_smp,
    diff_metrics,
    render_diff,
)
from .trace import (
    KANATA_HEADER,
    STAGES,
    PipelineTracer,
    TraceRecord,
    parse_kanata,
    read_kanata,
    render_kanata,
)

__all__ = [
    "GuestProfiler",
    "ProfileReport",
    "KANATA_HEADER",
    "MetricDelta",
    "MetricsRegistry",
    "PipelineTracer",
    "STAGES",
    "TraceRecord",
    "collect_core_stats",
    "collect_explore",
    "collect_hierarchy",
    "collect_run",
    "collect_service",
    "collect_smp",
    "diff_metrics",
    "parse_kanata",
    "read_kanata",
    "render_diff",
    "render_kanata",
]
