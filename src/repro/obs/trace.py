"""Pipeline event trace: per-instruction stage-entry cycles.

:class:`PipelineTracer` is the hook object the timing model calls once
per instruction from both the batched hot loop and the staged path
(``PipelineModel.tracer``, None-guarded like the sanitizer hooks).
Records land in a bounded ring buffer — the ``--trace-window`` knob —
and export in two formats:

* **Kanata** (a.k.a. Konata), the pipeline-visualiser format: a
  ``Kanata\\t0004`` header, a cycle cursor (``C=`` start, ``C`` delta)
  and per-instruction ``I``/``L``/``S``/``E``/``R`` lines.  The five
  modeled stages map onto lane 0 as F → Dc → Rn → Is → Cm.
* **JSONL**, one object per instruction for ad-hoc tooling.

The model does not time retirement per instruction (the ROB drains at
``complete + 2`` — see ``PipelineModel._drain``), so the exported
retire cycle is that same synthetic skew.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, TextIO

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..isa.instructions import Instruction
    from ..sim.trace import DynInst

KANATA_HEADER = "Kanata\t0004"

#: modeled stage names in pipeline order (fetch, decode, rename/
#: dispatch, issue, complete) — the Konata lane-0 sequence.
STAGES = ("F", "Dc", "Rn", "Is", "Cm")

#: synthetic retire skew: the ROB retires entries at complete + 2.
RETIRE_SKEW = 2

DEFAULT_WINDOW = 65_536


@dataclass(slots=True)
class TraceRecord:
    """Stage-entry cycles of one dynamic instruction."""

    seq: int
    pc: int
    inst: "Instruction"
    fetch: int
    decode: int
    dispatch: int
    issue: int
    complete: int

    @property
    def retire(self) -> int:
        return self.complete + RETIRE_SKEW

    def stage_cycles(self) -> tuple[int, int, int, int, int]:
        """Cycles in :data:`STAGES` order."""
        return (self.fetch, self.decode, self.dispatch, self.issue,
                self.complete)

    def text(self) -> str:
        from ..isa.disasm import disassemble

        return disassemble(self.inst, self.pc)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "pc": self.pc,
            "asm": self.text(),
            "fetch": self.fetch,
            "decode": self.decode,
            "dispatch": self.dispatch,
            "issue": self.issue,
            "complete": self.complete,
            "retire": self.retire,
        }


class PipelineTracer:
    """Bounded ring buffer of per-instruction stage timings.

    The hot loop hands over the live ``DynInst`` whose slot the block
    engine reuses between batches, so :meth:`record` copies the
    primitives immediately; the ``Instruction`` itself persists in the
    decode cache and is kept by reference.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window <= 0:
            raise ValueError(f"trace window must be positive, got {window}")
        self.window = window
        self._records: deque[TraceRecord] = deque(maxlen=window)
        #: total instructions seen (the ring may have dropped older ones)
        self.recorded = 0

    def record(self, dyn: "DynInst", fetch: int, decode: int,
               dispatch: int, issue: int, complete: int) -> None:
        """Hot-loop hook: capture one instruction's stage cycles."""
        self.recorded += 1
        self._records.append(TraceRecord(
            dyn.seq, dyn.pc, dyn.inst, fetch, decode, dispatch, issue,
            complete))

    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # -- export -------------------------------------------------------------

    def write(self, path: str) -> None:
        """Export by extension: ``.jsonl`` → JSONL, anything else Kanata."""
        if path.endswith(".jsonl"):
            self.write_jsonl(path)
        else:
            self.write_kanata(path)

    def write_kanata(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(render_kanata(self.records()))

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            self.dump_jsonl(handle)

    def dump_jsonl(self, handle: TextIO) -> None:
        for rec in self._records:
            handle.write(json.dumps(rec.as_dict()) + "\n")


def render_kanata(records: list[TraceRecord]) -> str:
    """Render trace records as Kanata text.

    Events from all instructions are merged into one monotonic cycle
    stream (the format's cycle cursor only moves forward); each record
    becomes an ``I``/``L`` pair, one ``S`` per stage entry, an ``E``
    closing the last stage and an ``R`` retire line.
    """
    if not records:
        return f"{KANATA_HEADER}\nC=\t0\n"
    # (cycle, record index, intra-record order, line)
    events: list[tuple[int, int, int, str]] = []
    for lane_id, rec in enumerate(records):
        stages = rec.stage_cycles()
        events.append((stages[0], lane_id, 0,
                       f"I\t{lane_id}\t{rec.seq}\t0"))
        events.append((stages[0], lane_id, 1,
                       f"L\t{lane_id}\t0\t{rec.pc:#x}: {rec.text()}"))
        for sidx, (name, cyc) in enumerate(zip(STAGES, stages)):
            events.append((cyc, lane_id, 2 + sidx,
                           f"S\t{lane_id}\t0\t{name}"))
        retire = rec.retire
        events.append((retire, lane_id, 2 + len(STAGES),
                       f"E\t{lane_id}\t0\t{STAGES[-1]}"))
        events.append((retire, lane_id, 3 + len(STAGES),
                       f"R\t{lane_id}\t{rec.seq}\t0"))
    events.sort()
    start = events[0][0]
    lines = [KANATA_HEADER, f"C=\t{start}"]
    current = start
    for cycle, _lane, _order, text in events:
        if cycle > current:
            lines.append(f"C\t{cycle - current}")
            current = cycle
        lines.append(text)
    return "\n".join(lines) + "\n"


@dataclass
class ParsedInst:
    """One instruction reconstructed from a Kanata file."""

    lane_id: int
    seq: int
    thread: int
    label: str = ""
    #: stage name -> entry cycle, in first-seen order
    stages: dict[str, int] | None = None
    ended: dict[str, int] | None = None
    retired: int | None = None
    retire_type: int = 0


def parse_kanata(text: str) -> dict[int, ParsedInst]:
    """Parse Kanata text back into per-instruction stage cycles.

    Strict enough to act as the format validator for the golden test:
    raises ``ValueError`` on a bad header, an unknown line type, a
    non-monotonic cycle cursor, or an event for an undeclared id.
    """
    lines = text.splitlines()
    if not lines or lines[0] != KANATA_HEADER:
        raise ValueError("not a Kanata file: missing Kanata\\t0004 header")
    insts: dict[int, ParsedInst] = {}
    cycle: int | None = None
    for lineno, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        fields = line.split("\t")
        kind = fields[0]
        if kind == "C=":
            cycle = int(fields[1])
            continue
        if kind == "C":
            if cycle is None:
                raise ValueError(f"line {lineno}: C before C=")
            delta = int(fields[1])
            if delta < 0:
                raise ValueError(f"line {lineno}: cycle cursor moved "
                                 f"backwards ({delta})")
            cycle += delta
            continue
        if kind == "I":
            lane_id = int(fields[1])
            insts[lane_id] = ParsedInst(
                lane_id=lane_id, seq=int(fields[2]), thread=int(fields[3]),
                stages={}, ended={})
            continue
        if kind not in ("L", "S", "E", "R"):
            raise ValueError(f"line {lineno}: unknown record {kind!r}")
        lane_id = int(fields[1])
        inst = insts.get(lane_id)
        if inst is None:
            raise ValueError(f"line {lineno}: {kind} for undeclared id "
                             f"{lane_id}")
        if kind == "L":
            inst.label = fields[3]
        elif kind == "S":
            if cycle is None:
                raise ValueError(f"line {lineno}: S before C=")
            assert inst.stages is not None
            inst.stages[fields[3]] = cycle
        elif kind == "E":
            if cycle is None:
                raise ValueError(f"line {lineno}: E before C=")
            assert inst.ended is not None
            inst.ended[fields[3]] = cycle
        elif kind == "R":
            if cycle is None:
                raise ValueError(f"line {lineno}: R before C=")
            inst.retired = cycle
            inst.retire_type = int(fields[3])
    return insts


def read_kanata(path: str) -> dict[int, ParsedInst]:
    with open(path) as handle:
        return parse_kanata(handle.read())
