"""Dhrystone-like workload: the classic embedded integer mix.

Not one of the paper's figures, but the canonical "industrial control
flow" benchmark class the paper's abstract claims ("the highest
performance ... for a number of industrial control flow ... benchmarks").
The loop reproduces Dhrystone's behaviour mix: record (struct) copies,
30-character string compares, call-heavy small procedures, global
updates, and an enumeration switch implemented with a jump table
(exercising the indirect branch predictor).
"""

from __future__ import annotations

from .base import Workload

ITERATIONS = 60
STR_A = "DHRYSTONE PROGRAM, 1ST STRING"
STR_B = "DHRYSTONE PROGRAM, 2ND STRING"


def dhrystone(iterations: int = ITERATIONS) -> Workload:
    source = f"""
    .equ ITERS, {iterations}
    .data
record1:                       # Dhrystone Rec_Type: 6 dwords
    .dword 0, 1, 2, 3, 4, 5
record2:
    .zero 48
str_a: .asciz "{STR_A}"
    .align 3
str_b: .asciz "{STR_B}"
    .align 3
jumptab:
    .dword case0, case1, case2, case3
    .align 3
int_glob: .dword 0
bool_glob: .dword 0
result: .dword 0
    .text
_start:
    li s11, 0                 # checksum
    li s10, 0                 # iteration
main_loop:
    # --- Proc: record copy (structure assignment) ---
    la a0, record1
    la a1, record2
    call copy_record
    # mutate the source record a little
    la t0, record1
    ld t1, 16(t0)
    addi t1, t1, 3
    sd t1, 16(t0)

    # --- string comparison (Func_2 flavour) ---
    la a0, str_a
    la a1, str_b
    call str_cmp
    beqz a0, strings_equal
    la t0, int_glob
    ld t1, 0(t0)
    addi t1, t1, 1
    sd t1, 0(t0)
strings_equal:

    # --- enumeration switch via jump table (Proc_6 flavour) ---
    andi t2, s10, 3           # discriminant 0..3
    la t3, jumptab
    slli t4, t2, 3
    add t3, t3, t4
    ld t5, 0(t3)
    jr t5
case0:
    addi s11, s11, 1
    j switch_done
case1:
    la t0, bool_glob
    li t1, 1
    sd t1, 0(t0)
    addi s11, s11, 2
    j switch_done
case2:
    slli s11, s11, 1
    j switch_done
case3:
    la t0, int_glob
    ld t1, 0(t0)
    add s11, s11, t1
switch_done:

    # --- call-heavy small procedures (Proc_7: add with globals) ---
    mv a0, s10
    li a1, 17
    call proc_add
    add s11, s11, a0
    li t6, 0xffff
    and s11, s11, t6

    addi s10, s10, 1
    li t0, ITERS
    blt s10, t0, main_loop

    # fold in the copied record and globals
    la t0, record2
    ld t1, 40(t0)
    add s11, s11, t1
    la t0, int_glob
    ld t1, 0(t0)
    add s11, s11, t1
    la t2, result
    sd s11, 0(t2)
    li a0, 0
    li a7, 93
    ecall

copy_record:                  # 6-dword struct copy
    ld t0, 0(a0)
    sd t0, 0(a1)
    ld t0, 8(a0)
    sd t0, 8(a1)
    ld t0, 16(a0)
    sd t0, 16(a1)
    ld t0, 24(a0)
    sd t0, 24(a1)
    ld t0, 32(a0)
    sd t0, 32(a1)
    ld t0, 40(a0)
    sd t0, 40(a1)
    ret

str_cmp:                      # returns 0 if equal, nonzero otherwise
    lbu t0, 0(a0)
    lbu t1, 0(a1)
    bne t0, t1, cmp_diff
    beqz t0, cmp_equal
    addi a0, a0, 1
    addi a1, a1, 1
    j str_cmp
cmp_equal:
    li a0, 0
    ret
cmp_diff:
    sub a0, t0, t1
    ret

proc_add:                     # a0 = a0 + a1 + int_glob%7
    la t0, int_glob
    ld t1, 0(t0)
    li t2, 7
    rem t1, t1, t2
    add a0, a0, a1
    add a0, a0, t1
    ret
"""

    def reference() -> int:
        record1 = [0, 1, 2, 3, 4, 5]
        record2 = [0] * 6
        int_glob = 0
        checksum = 0
        for i in range(iterations):
            record2 = list(record1)
            record1[2] += 3
            if STR_A != STR_B:
                int_glob += 1
            case = i & 3
            if case == 0:
                checksum += 1
            elif case == 1:
                checksum += 2
            elif case == 2:
                checksum <<= 1
            else:
                checksum += int_glob
            checksum += i + 17 + (int_glob % 7)
            checksum &= 0xFFFF
        checksum += record2[5] + int_glob
        return checksum & ((1 << 64) - 1)

    return Workload(name="dhrystone-like", source=source,
                    reference=reference, category="dhrystone")
