"""NBench-like kernels (paper Fig. 19).

Covers NBench's behaviour classes: numeric sort, string sort, bitfield
operations, integer block cipher (IDEA-like), FP series evaluation
(Fourier), FP matrix work (neural-net forward pass, LU elimination).
FP kernels verify against the same arithmetic done in Python floats —
bit-exact because both sides use IEEE double operations in the same
order.
"""

from __future__ import annotations


from .base import Workload

_TAIL = """
    la t0, result
    sd s11, 0(t0)
    li a0, 0
    li a7, 93
    ecall
"""


def _wrap(body: str, data: str = "") -> str:
    return f"""
    .data
    .align 3
{data}
result: .dword 0
    .text
_start:
    li s11, 0
{body}
{_TAIL}
"""


# --- numeric sort: shellsort over int64 ----------------------------------------

_NSORT_N = 400

_NSORT_DATA = f"arr: .zero {_NSORT_N * 8}\n"

_NSORT_BODY = f"""
    la s0, arr
    li t0, 0
    li t1, {_NSORT_N}
ns_init:                     # arr[i] = (i*8191 + 3) % 65536
    li t2, 8191
    mul t3, t0, t2
    addi t3, t3, 3
    slli t4, t3, 48
    srli t3, t4, 48
    slli t4, t0, 3
    add t4, s0, t4
    sd t3, 0(t4)
    addi t0, t0, 1
    blt t0, t1, ns_init

    # shellsort, gap sequence n/2, n/4, ...
    li s1, {_NSORT_N // 2}    # gap
ns_gap:
    mv s2, s1                 # i = gap
ns_outer:
    slli t0, s2, 3
    add t0, s0, t0
    ld s3, 0(t0)              # tmp = arr[i]
    mv s4, s2                 # j
ns_inner:
    blt s4, s1, ns_place      # j < gap
    sub t1, s4, s1
    slli t2, t1, 3
    add t2, s0, t2
    ld t3, 0(t2)              # arr[j-gap]
    bge s3, t3, ns_place      # tmp >= arr[j-gap]: stop
    slli t4, s4, 3
    add t4, s0, t4
    sd t3, 0(t4)              # arr[j] = arr[j-gap]
    mv s4, t1
    j ns_inner
ns_place:
    slli t4, s4, 3
    add t4, s0, t4
    sd s3, 0(t4)
    addi s2, s2, 1
    li t5, {_NSORT_N}
    blt s2, t5, ns_outer
    srai s1, s1, 1
    bnez s1, ns_gap

    # checksum: arr[0] + arr[N-1] + arr[N/2]*3
    ld t0, 0(s0)
    add s11, s11, t0
    li t1, {(_NSORT_N - 1) * 8}
    add t1, s0, t1
    ld t0, 0(t1)
    add s11, s11, t0
    li t1, {(_NSORT_N // 2) * 8}
    add t1, s0, t1
    ld t0, 0(t1)
    li t1, 3
    mul t0, t0, t1
    add s11, s11, t0
"""


def _nsort_ref() -> int:
    arr = sorted(((i * 8191 + 3) & 0xFFFF) for i in range(_NSORT_N))
    return (arr[0] + arr[-1] + arr[_NSORT_N // 2] * 3) & ((1 << 64) - 1)


# --- string sort: insertion sort of 12-byte strings ------------------------------

_SSORT_N = 40
_SSORT_LEN = 12


def _ssort_strings() -> list[bytes]:
    out = []
    for i in range(_SSORT_N):
        s = bytes(((i * 7 + j * 13 + (i * j) % 5) % 26) + 97
                  for j in range(_SSORT_LEN - 1))
        out.append(s + b"\0")
    return out


_SSORT_DATA = "strs:\n" + "\n".join(
    '    .ascii "' + s[:-1].decode() + '\\0"' for s in _ssort_strings()
) + f"\nptrs: .zero {_SSORT_N * 8}\n"

_SSORT_BODY = f"""
    # build the pointer array
    la s0, strs
    la s1, ptrs
    li t0, 0
    li t1, {_SSORT_N}
ss_build:
    li t2, {_SSORT_LEN}
    mul t3, t0, t2
    add t3, s0, t3
    slli t4, t0, 3
    add t4, s1, t4
    sd t3, 0(t4)
    addi t0, t0, 1
    blt t0, t1, ss_build

    # insertion sort on pointers by strcmp
    li s2, 1                  # i
ss_outer:
    slli t0, s2, 3
    add t0, s1, t0
    ld s3, 0(t0)              # key ptr
    addi s4, s2, -1           # j
ss_inner:
    bltz s4, ss_place
    slli t1, s4, 3
    add t1, s1, t1
    ld s5, 0(t1)              # cand ptr
    # strcmp(cand, key)
    mv t2, s5
    mv t3, s3
ss_cmp:
    lbu t4, 0(t2)
    lbu t5, 0(t3)
    bne t4, t5, ss_cmp_done
    beqz t4, ss_cmp_done
    addi t2, t2, 1
    addi t3, t3, 1
    j ss_cmp
ss_cmp_done:
    bleu t4, t5, ss_place     # cand <= key: stop
    addi t6, s4, 1
    slli t6, t6, 3
    add t6, s1, t6
    sd s5, 0(t6)              # shift right
    addi s4, s4, -1
    j ss_inner
ss_place:
    addi t6, s4, 1
    slli t6, t6, 3
    add t6, s1, t6
    sd s3, 0(t6)
    addi s2, s2, 1
    li t0, {_SSORT_N}
    blt s2, t0, ss_outer

    # checksum: rolling hash of first 2 chars of each sorted string
    li t0, 0
ss_chk:
    slli t1, t0, 3
    add t1, s1, t1
    ld t2, 0(t1)
    lbu t3, 0(t2)
    lbu t4, 1(t2)
    slli t5, s11, 5
    add s11, t5, s11          # s11 *= 33
    add s11, s11, t3
    add s11, s11, t4
    addi t0, t0, 1
    li t1, {_SSORT_N}
    blt t0, t1, ss_chk
    slli s11, s11, 16
    srli s11, s11, 16
"""


def _ssort_ref() -> int:
    strings = sorted(s.rstrip(b"\0") for s in _ssort_strings())
    h = 0
    for s in strings:
        h = (h * 33 + s[0] + s[1]) & ((1 << 64) - 1)
    return h & 0xFFFF_FFFF_FFFF


# --- bitfield operations ------------------------------------------------------------

_BITF_WORDS = 32
_BITF_OPS = 400

_BITF_DATA = f"bitmap: .zero {_BITF_WORDS * 8}\n"

_BITF_BODY = f"""
    la s0, bitmap
    li s1, 0                  # op counter
    li s2, {_BITF_OPS}
bf_loop:
    li t0, 1103515245
    mul t1, s1, t0
    li t0, 12345
    add t1, t1, t0
    srli t2, t1, 8
    li t3, {_BITF_WORDS * 64}
    remu t2, t2, t3           # bit index
    srli t3, t2, 6            # word
    andi t4, t2, 63           # bit
    slli t5, t3, 3
    add t5, s0, t5
    ld t6, 0(t5)
    li a1, 1
    sll a1, a1, t4
    # op: set / clear / toggle by counter % 3
    li a2, 3
    rem a3, s1, a2
    beqz a3, bf_set
    li a2, 1
    beq a3, a2, bf_clear
    xor t6, t6, a1
    j bf_store
bf_set:
    or t6, t6, a1
    j bf_store
bf_clear:
    not a1, a1
    and t6, t6, a1
bf_store:
    sd t6, 0(t5)
    addi s1, s1, 1
    blt s1, s2, bf_loop

    # checksum: popcount of the whole bitmap
    li t0, 0
bf_chk_word:
    slli t1, t0, 3
    add t1, s0, t1
    ld t2, 0(t1)
bf_pop:
    beqz t2, bf_next
    andi t3, t2, 1
    add s11, s11, t3
    srli t2, t2, 1
    j bf_pop
bf_next:
    addi t0, t0, 1
    li t1, {_BITF_WORDS}
    blt t0, t1, bf_chk_word
"""


def _bitf_ref() -> int:
    bitmap = [0] * _BITF_WORDS
    for i in range(_BITF_OPS):
        value = (i * 1103515245 + 12345) & ((1 << 64) - 1)
        bit = (value >> 8) % (_BITF_WORDS * 64)
        word, offset = bit >> 6, bit & 63
        mask = 1 << offset
        op = i % 3
        if op == 0:
            bitmap[word] |= mask
        elif op == 1:
            bitmap[word] &= ~mask
        else:
            bitmap[word] ^= mask
    return sum(bin(w).count("1") for w in bitmap)


# --- IDEA-like cipher rounds -----------------------------------------------------------

_IDEA_BLOCKS = 150

_IDEA_BODY = f"""
    # 4 rounds of mul-mod-65537 / add-mod-65536 mixing per block.
    li s0, 0
    li s1, {_IDEA_BLOCKS}
id_loop:
    li t0, 40503
    mul t1, s0, t0
    addi t1, t1, 1
    slli t1, t1, 48
    srli t1, t1, 48           # x1
    addi t2, t1, 77
    slli t2, t2, 48
    srli t2, t2, 48           # x2
    li s2, 0                  # round
id_round:
    # x1 = (x1 * 2003) % 65537 (the IDEA multiply; 0 means 65536)
    bnez t1, id_nz
    li t1, 65536
id_nz:
    li t3, 2003
    mul t1, t1, t3
    li t3, 65537
    remu t1, t1, t3
    li t3, 65536
    bne t1, t3, id_keep
    li t1, 0
id_keep:
    # x2 = (x2 + x1) % 65536 ; swap halves
    add t2, t2, t1
    slli t2, t2, 48
    srli t2, t2, 48
    xor t4, t1, t2
    mv t1, t2
    mv t2, t4
    slli t2, t2, 48
    srli t2, t2, 48
    addi s2, s2, 1
    li t5, 4
    blt s2, t5, id_round
    slli t6, t1, 16
    or t6, t6, t2
    add s11, s11, t6
    addi s0, s0, 1
    blt s0, s1, id_loop
"""


def _idea_ref() -> int:
    acc = 0
    for i in range(_IDEA_BLOCKS):
        x1 = (i * 40503 + 1) & 0xFFFF
        x2 = (x1 + 77) & 0xFFFF
        for _ in range(4):
            v = x1 if x1 else 65536
            v = (v * 2003) % 65537
            x1 = 0 if v == 65536 else v
            x2 = (x2 + x1) & 0xFFFF
            x1, x2 = x2, (x1 ^ x2) & 0xFFFF
        acc += (x1 << 16) | x2
    return acc & ((1 << 64) - 1)


# --- fourier: FP series evaluation -------------------------------------------------------

_FOURIER_TERMS = 24

_FOURIER_BODY = f"""
    # acc = sum over n of sin_taylor(n * 0.1) / (n+1), doubles.
    fcvt.d.l fa0, x0          # acc = 0.0
    li t0, 1
    li t1, 10
    fcvt.d.l fa1, t0
    fcvt.d.l fa2, t1
    fdiv.d fa1, fa1, fa2      # 0.1
    li s0, 0
    li s1, {_FOURIER_TERMS}
fr_loop:
    fcvt.d.l fa3, s0
    fmul.d fa3, fa3, fa1      # x = n * 0.1
    # sin(x) ~ x - x^3/6 + x^5/120 - x^7/5040
    fmul.d fa4, fa3, fa3      # x^2
    fmul.d fa5, fa4, fa3      # x^3
    li t2, 6
    fcvt.d.l ft0, t2
    fdiv.d ft1, fa5, ft0
    fsub.d ft2, fa3, ft1
    fmul.d fa5, fa5, fa4      # x^5
    li t2, 120
    fcvt.d.l ft0, t2
    fdiv.d ft1, fa5, ft0
    fadd.d ft2, ft2, ft1
    fmul.d fa5, fa5, fa4      # x^7
    li t2, 5040
    fcvt.d.l ft0, t2
    fdiv.d ft1, fa5, ft0
    fsub.d ft2, ft2, ft1      # sin
    addi t3, s0, 1
    fcvt.d.l ft3, t3
    fdiv.d ft2, ft2, ft3
    fadd.d fa0, fa0, ft2
    addi s0, s0, 1
    blt s0, s1, fr_loop
    # scale by 2^20 and convert to int
    li t4, 1048576
    fcvt.d.l ft4, t4
    fmul.d fa0, fa0, ft4
    fcvt.l.d s11, fa0
"""


def _fourier_ref() -> int:
    acc = 0.0
    for n in range(_FOURIER_TERMS):
        x = float(n) * (1.0 / 10.0)
        x2 = x * x
        x3 = x2 * x
        s = x - x3 / 6.0
        x5 = x3 * x2
        s += x5 / 120.0
        x7 = x5 * x2
        s -= x7 / 5040.0
        acc += s / float(n + 1)
    return int(acc * 1048576.0) & ((1 << 64) - 1)


# --- neural net: forward pass ---------------------------------------------------------------

_NN_IN = 16
_NN_OUT = 8

_NN_BODY = f"""
    # out[j] = clamp(sum_i w[j][i]*x[i]), weights/inputs synthesized.
    li s0, 0                  # j
fnn_j:
    fcvt.d.l fa0, x0          # acc
    li s1, 0                  # i
fnn_i:
    # w = ((j*16+i) % 7 - 3) / 4.0 ; x = (i % 5 - 2) / 2.0
    slli t0, s0, 4
    add t0, t0, s1
    li t1, 7
    rem t0, t0, t1
    addi t0, t0, -3
    fcvt.d.l ft0, t0
    li t1, 4
    fcvt.d.l ft1, t1
    fdiv.d ft0, ft0, ft1
    li t1, 5
    rem t2, s1, t1
    addi t2, t2, -2
    fcvt.d.l ft2, t2
    li t1, 2
    fcvt.d.l ft3, t1
    fdiv.d ft2, ft2, ft3
    fmadd.d fa0, ft0, ft2, fa0
    addi s1, s1, 1
    li t3, {_NN_IN}
    blt s1, t3, fnn_i
    # piecewise sigmoid: y = 0 if acc < -1, 1 if acc > 1, else (acc+1)/2
    li t0, 1
    fcvt.d.l ft4, t0
    fneg.d ft5, ft4
    flt.d t1, fa0, ft5
    bnez t1, fnn_zero
    flt.d t1, ft4, fa0
    bnez t1, fnn_one
    fadd.d fa0, fa0, ft4
    li t0, 2
    fcvt.d.l ft6, t0
    fdiv.d fa0, fa0, ft6
    j fnn_out
fnn_zero:
    fcvt.d.l fa0, x0
    j fnn_out
fnn_one:
    fmv.d fa0, ft4
fnn_out:
    li t0, 4096
    fcvt.d.l ft6, t0
    fmul.d fa0, fa0, ft6
    fcvt.l.d t1, fa0
    add s11, s11, t1
    addi s0, s0, 1
    li t2, {_NN_OUT}
    blt s0, t2, fnn_j
"""


def _nn_ref() -> int:
    acc_total = 0
    for j in range(_NN_OUT):
        acc = 0.0
        for i in range(_NN_IN):
            w = float((j * 16 + i) % 7 - 3) / 4.0
            x = float(i % 5 - 2) / 2.0
            acc = w * x + acc
        if acc < -1.0:
            y = 0.0
        elif acc > 1.0:
            y = 1.0
        else:
            y = (acc + 1.0) / 2.0
        acc_total += int(y * 4096.0)
    return acc_total & ((1 << 64) - 1)


# --- LU decomposition (Gaussian elimination) ---------------------------------------------------

_LU_N = 8

_LU_DATA = f"lumat: .zero {_LU_N * _LU_N * 8}\n"

_LU_BODY = f"""
    .equ N, {_LU_N}
    la s0, lumat
    li t0, 0
    li t1, {_LU_N * _LU_N}
lu_init:                     # m[k] = ((k*31+7) % 19) + 1 + (k/N==k%N ? 40 : 0)
    li t2, 31
    mul t3, t0, t2
    addi t3, t3, 7
    li t2, 19
    rem t3, t3, t2
    addi t3, t3, 1
    li t2, N
    div t4, t0, t2
    rem t5, t0, t2
    bne t4, t5, lu_off_diag
    addi t3, t3, 40           # diagonal dominance
lu_off_diag:
    fcvt.d.l ft0, t3
    slli t6, t0, 3
    add t6, s0, t6
    fsd ft0, 0(t6)
    addi t0, t0, 1
    blt t0, t1, lu_init

    # elimination
    li s1, 0                  # k
lu_k:
    li s2, N
    addi s3, s1, 1            # i = k+1
lu_i:
    bge s3, s2, lu_k_next
    # factor = m[i][k] / m[k][k]
    li t0, N
    mul t1, s3, t0
    add t1, t1, s1
    slli t1, t1, 3
    add t1, s0, t1
    fld ft0, 0(t1)            # m[i][k]
    mul t2, s1, t0
    add t2, t2, s1
    slli t2, t2, 3
    add t2, s0, t2
    fld ft1, 0(t2)            # m[k][k]
    fdiv.d ft2, ft0, ft1      # factor
    fsd ft2, 0(t1)            # store L entry in place
    addi s4, s1, 1            # j
lu_j:
    bge s4, s2, lu_i_next
    li t0, N
    mul t3, s3, t0
    add t3, t3, s4
    slli t3, t3, 3
    add t3, s0, t3            # &m[i][j]
    mul t4, s1, t0
    add t4, t4, s4
    slli t4, t4, 3
    add t4, s0, t4            # &m[k][j]
    fld ft3, 0(t3)
    fld ft4, 0(t4)
    fnmsub.d ft3, ft2, ft4, ft3   # m[i][j] - factor*m[k][j]
    fsd ft3, 0(t3)
    addi s4, s4, 1
    j lu_j
lu_i_next:
    addi s3, s3, 1
    j lu_i
lu_k_next:
    addi s1, s1, 1
    li t0, N - 1
    blt s1, t0, lu_k

    # checksum: sum of diagonal (the U pivots) scaled by 2^8
    li t0, 0
    fcvt.d.l fa0, x0
lu_chk:
    li t1, N
    mul t2, t0, t1
    add t2, t2, t0
    slli t2, t2, 3
    add t2, s0, t2
    fld ft0, 0(t2)
    fadd.d fa0, fa0, ft0
    addi t0, t0, 1
    blt t0, t1, lu_chk
    li t3, 256
    fcvt.d.l ft1, t3
    fmul.d fa0, fa0, ft1
    fcvt.l.d s11, fa0
"""


def _lu_ref() -> int:
    n = _LU_N
    m = [[0.0] * n for _ in range(n)]
    for k in range(n * n):
        value = float((k * 31 + 7) % 19 + 1)
        i, j = divmod(k, n)
        if i == j:
            value += 40.0
        m[i][j] = value
    for k in range(n - 1):
        for i in range(k + 1, n):
            factor = m[i][k] / m[k][k]
            m[i][k] = factor
            for j in range(k + 1, n):
                m[i][j] = m[i][j] - factor * m[k][j]
    diag = 0.0
    for i in range(n):
        diag += m[i][i]
    return int(diag * 256.0) & ((1 << 64) - 1)


# ---------------------------------------------------------------------------

def nbench_suite() -> list[Workload]:
    """Seven NBench-like kernels."""
    specs = [
        ("nbench-numsort", _NSORT_BODY, _NSORT_DATA, _nsort_ref),
        ("nbench-strsort", _SSORT_BODY, _SSORT_DATA, _ssort_ref),
        ("nbench-bitfield", _BITF_BODY, _BITF_DATA, _bitf_ref),
        ("nbench-idea", _IDEA_BODY, "", _idea_ref),
        ("nbench-fourier", _FOURIER_BODY, "", _fourier_ref),
        ("nbench-neural", _NN_BODY, "", _nn_ref),
        ("nbench-lu", _LU_BODY, _LU_DATA, _lu_ref),
    ]
    return [Workload(name=name, source=_wrap(body, data), reference=ref,
                     category="nbench")
            for name, body, data, ref in specs]
