"""Blockchain transaction-acceleration kernel (paper section I).

The paper's FPGA deployment accelerates blockchain transactions, whose
hot loop is hash computation.  This kernel is a SHA-256-style
compression function: a message schedule built from rotate-xor sigma
functions and 32-bit modular-add rounds.

Two variants are generated from the same template:

* ``base``  — standard RV64GC only: each 32-bit rotate costs a
  srliw/slliw/or triple,
* ``xt``    — uses the XT bit-manipulation extension's ``srriw``
  (rotate) directly, one instruction per rotate.

The pair quantifies the section VIII.B claim that the custom
arithmetic/bit-manipulation instructions directly accelerate security
workloads.
"""

from __future__ import annotations

from .base import MASK32, Workload

ROUNDS = 16
BLOCKS = 24

_K = [0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
      0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
      0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
      0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174]

_IV = [0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
       0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19]


def _rotr_asm(dst: str, src: str, amount: int, xt: bool,
              tmp: str = "a6") -> str:
    if xt:
        return f"    srriw {dst}, {src}, {amount}\n"
    return (f"    srliw {tmp}, {src}, {amount}\n"
            f"    slliw {dst}, {src}, {32 - amount}\n"
            f"    or {dst}, {dst}, {tmp}\n"
            f"    sext.w {dst}, {dst}\n")


def _source(xt: bool, blocks: int) -> str:
    k_words = ", ".join(hex(k) for k in _K)
    iv_words = ", ".join(hex(v) for v in _IV)
    # sigma0(x) = rotr(x,7) ^ rotr(x,18) ^ (x >> 3)   on w[i-15] (t0)
    # sigma1(x) = rotr(x,17) ^ rotr(x,19) ^ (x >> 10) on w[i-2]  (t1)
    sigma0 = (_rotr_asm("t2", "t0", 7, xt)
              + _rotr_asm("t3", "t0", 18, xt)
              + "    xor t2, t2, t3\n"
              + "    srliw t3, t0, 3\n"
              + "    xor t2, t2, t3\n")
    sigma1 = (_rotr_asm("t3", "t1", 17, xt)
              + _rotr_asm("t4", "t1", 19, xt)
              + "    xor t3, t3, t4\n"
              + "    srliw t4, t1, 10\n"
              + "    xor t3, t3, t4\n")
    # Sigma1(e) rotr 6,11,25 on s5 (e); Sigma0(a) rotr 2,13,22 on s1 (a)
    big1 = (_rotr_asm("t2", "s5", 6, xt)
            + _rotr_asm("t3", "s5", 11, xt)
            + "    xor t2, t2, t3\n"
            + _rotr_asm("t3", "s5", 25, xt)
            + "    xor t2, t2, t3\n")
    big0 = (_rotr_asm("t3", "s1", 2, xt)
            + _rotr_asm("t4", "s1", 13, xt)
            + "    xor t3, t3, t4\n"
            + _rotr_asm("t4", "s1", 22, xt)
            + "    xor t3, t3, t4\n")
    return f"""
    .equ ROUNDS, {ROUNDS}
    .equ BLOCKS, {blocks}
    .data
    .align 3
ktab:   .word {k_words}
iv:     .word {iv_words}
w:      .zero 64
state:  .zero 32
result: .dword 0
    .text
_start:
    # state = IV
    la t0, iv
    la t1, state
    li t2, 0
init_state:
    slli t3, t2, 2
    add t4, t0, t3
    lw t5, 0(t4)
    add t4, t1, t3
    sw t5, 0(t4)
    addi t2, t2, 1
    li t3, 8
    blt t2, t3, init_state

    li s10, 0                  # block counter
block_loop:
    # message schedule seed: w[i] = (block*73 + i*2654435769) mod 2^32
    la s0, w
    li t0, 0
    li t5, 0x9E3779B9
seed_w:
    mul t1, t0, t5
    li t2, 73
    mul t3, s10, t2
    addw t1, t1, t3
    slli t2, t0, 2
    add t2, s0, t2
    sw t1, 0(t2)
    addi t0, t0, 1
    li t2, 16
    blt t0, t2, seed_w

    # schedule expansion is folded into the rounds for i>=16 is skipped
    # (ROUNDS=16), but each round still computes both sigmas on live
    # schedule words, matching SHA-256's per-round work.

    # load working registers a..h = state[0..7]
    la t0, state
    lw s1, 0(t0)
    lw s2, 4(t0)
    lw s3, 8(t0)
    lw s4, 12(t0)
    lw s5, 16(t0)
    lw s6, 20(t0)
    lw s7, 24(t0)
    lw s8, 28(t0)

    li s9, 0                   # round
round_loop:
    # schedule words for the sigma mills
    slli t2, s9, 2
    la t3, w
    add t3, t3, t2
    lw t0, 0(t3)               # w[i] (stands in for w[i-15] mill input)
    lw t1, 0(t3)               # and w[i-2]
{sigma0}
{sigma1}
    addw t0, t0, t2
    addw t0, t0, t3            # w' = w[i] + sigma0 + sigma1
    sw t0, 0(t3)

    # T1 = h + Sigma1(e) + Ch(e,f,g) + K[i] + w'
{big1}
    and t4, s5, s6
    not t5, s5
    and t5, t5, s7
    xor t4, t4, t5             # Ch
    addw t2, t2, t4
    addw t2, t2, s8
    la t4, ktab
    slli t5, s9, 2
    add t4, t4, t5
    lw t5, 0(t4)
    addw t2, t2, t5
    addw t2, t2, t0            # T1

    # T2 = Sigma0(a) + Maj(a,b,c)
{big0}
    and t4, s1, s2
    and t5, s1, s3
    xor t4, t4, t5
    and t5, s2, s3
    xor t4, t4, t5             # Maj
    addw t3, t3, t4            # T2

    # rotate the eight working registers
    mv s8, s7
    mv s7, s6
    mv s6, s5
    addw s5, s4, t2            # e = d + T1
    mv s4, s3
    mv s3, s2
    mv s2, s1
    addw s1, t2, t3            # a = T1 + T2

    addi s9, s9, 1
    li t4, ROUNDS
    blt s9, t4, round_loop

    # state += working registers
    la t0, state
    lw t1, 0(t0)
    addw t1, t1, s1
    sw t1, 0(t0)
    lw t1, 4(t0)
    addw t1, t1, s2
    sw t1, 4(t0)
    lw t1, 8(t0)
    addw t1, t1, s3
    sw t1, 8(t0)
    lw t1, 12(t0)
    addw t1, t1, s4
    sw t1, 12(t0)
    lw t1, 16(t0)
    addw t1, t1, s5
    sw t1, 16(t0)
    lw t1, 20(t0)
    addw t1, t1, s6
    sw t1, 20(t0)
    lw t1, 24(t0)
    addw t1, t1, s7
    sw t1, 24(t0)
    lw t1, 28(t0)
    addw t1, t1, s8
    sw t1, 28(t0)

    addi s10, s10, 1
    li t0, BLOCKS
    blt s10, t0, block_loop

    # result = state[0] ^ state[4] (unsigned fold)
    la t0, state
    lwu t1, 0(t0)
    lwu t2, 16(t0)
    xor t1, t1, t2
    la t3, result
    sd t1, 0(t3)
    li a0, 0
    li a7, 93
    ecall
"""


def _rotr(x: int, r: int) -> int:
    x &= MASK32
    return ((x >> r) | (x << (32 - r))) & MASK32


def _reference(blocks: int) -> int:
    state = list(_IV)
    for block in range(blocks):
        w = [((i * 0x9E3779B9) + block * 73) & MASK32 for i in range(16)]
        a, b, c, d, e, f, g, h = state
        for i in range(ROUNDS):
            wi = w[i]
            s0 = _rotr(wi, 7) ^ _rotr(wi, 18) ^ (wi >> 3)
            s1 = _rotr(wi, 17) ^ _rotr(wi, 19) ^ (wi >> 10)
            wp = (wi + s0 + s1) & MASK32
            w[i] = wp
            big1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
            ch = (e & f) ^ (~e & g & MASK32)
            t1 = (h + big1 + ch + _K[i] + wp) & MASK32
            big0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            t2 = (big0 + maj) & MASK32
            h, g, f = g, f, e
            e = (d + t1) & MASK32
            d, c, b = c, b, a
            a = (t1 + t2) & MASK32
        state = [(s + v) & MASK32
                 for s, v in zip(state, (a, b, c, d, e, f, g, h))]
    return (state[0] ^ state[4]) & MASK32


def blockchain_kernel(xt: bool = True, blocks: int = BLOCKS) -> Workload:
    """The SHA-256-style hashing kernel; xt selects the extension ISA."""
    return Workload(
        name=f"blockchain-{'xt' if xt else 'base'}",
        source=_source(xt, blocks),
        reference=lambda: _reference(blocks),
        category="blockchain")
