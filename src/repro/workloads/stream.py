"""STREAM-like memory bandwidth kernels (paper Fig. 21).

"stream is a set of benchmark that tests memory access performance and
prefetch performance."  The four classic kernels — copy, scale, add,
triad — stream over arrays sized to overflow the L2, with the DRAM
model pinned at the paper's 200-cycle latency by the Fig. 21 harness.

The kernels use 64-bit integer elements rather than doubles: the
experiment measures the *memory system* (stride detection, prefetch
depth/distance, TLB prefetch at page crossings), and integer elements
keep the emulator fast while producing the identical access pattern.
"""

from __future__ import annotations

from .base import Workload

STREAM_ELEMS = 24576            # 3 arrays x 192 KiB: overflows a 256K L2


def _stream_source(kernel: str, elems: int, passes: int) -> str:
    bodies = {
        "copy": """
stream_loop:
    ld t0, 0(s1)
    sd t0, 0(s3)
""",
        "scale": """
stream_loop:
    ld t0, 0(s3)
    mul t0, t0, s6
    sd t0, 0(s1)
""",
        "add": """
stream_loop:
    ld t0, 0(s1)
    ld t1, 0(s2)
    add t0, t0, t1
    sd t0, 0(s3)
""",
        "triad": """
stream_loop:
    ld t0, 0(s2)
    ld t1, 0(s3)
    mul t1, t1, s6
    add t0, t0, t1
    sd t0, 0(s1)
""",
    }
    body = bodies[kernel]
    bytes_per = elems * 8
    return f"""
    .equ ELEMS, {elems}
    .equ PASSES, {passes}
    .data
    .align 3
result: .dword 0
    .text
_start:
    li s7, 0x200000           # array region base (off the static data)
    mv s1, s7                  # a
    li t0, {bytes_per}
    add s2, s1, t0             # b
    add s3, s2, t0             # c
    li s6, 3                   # scalar

    # init: a[i] = i, b[i] = 2i  (c written by the kernels)
    mv t1, s1
    mv t2, s2
    li t3, 0
    li t4, ELEMS
init:
    sd t3, 0(t1)
    slli t5, t3, 1
    sd t5, 0(t2)
    addi t1, t1, 8
    addi t2, t2, 8
    addi t3, t3, 1
    blt t3, t4, init

    li s8, 0                   # pass
pass_loop:
    mv s4, s1
    mv s5, s2
    li s9, 0                   # index
    mv a1, s1
    mv a2, s2
    mv a3, s3
stream_outer:
{body}
    addi s1, s1, 8
    addi s2, s2, 8
    addi s3, s3, 8
    addi s9, s9, 1
    li t6, ELEMS
    blt s9, t6, stream_outer
    mv s1, a1
    mv s2, a2
    mv s3, a3
    addi s8, s8, 1
    li t6, PASSES
    blt s8, t6, pass_loop

    # checksum: xor of 8 sampled destination elements
    li t0, 0
    li t1, 0
    li t2, ELEMS
    srli t2, t2, 3             # step = ELEMS/8
    slli t2, t2, 3             # bytes
    {"mv t3, s3" if kernel in ("copy", "add") else "mv t3, s1"}
    li t4, 8
chk_loop:
    ld t5, 0(t3)
    xor t1, t1, t5
    add t3, t3, t2
    addi t0, t0, 1
    blt t0, t4, chk_loop
    la t6, result
    sd t1, 0(t6)
    li a0, 0
    li a7, 93
    ecall
"""


def _reference(kernel: str, elems: int, passes: int) -> int:
    a = list(range(elems))
    b = [2 * i for i in range(elems)]
    c = [0] * elems
    mask = (1 << 64) - 1
    for _ in range(passes):
        if kernel == "copy":
            c = a[:]
        elif kernel == "scale":
            a = [(3 * x) & mask for x in c]
        elif kernel == "add":
            c = [(x + y) & mask for x, y in zip(a, b)]
        else:  # triad
            a = [(y + 3 * z) & mask for y, z in zip(b, c)]
    dest = c if kernel in ("copy", "add") else a
    step = elems // 8
    chk = 0
    for i in range(8):
        chk ^= dest[i * step]
    return chk & mask


def stream_kernel(kernel: str = "triad", elems: int = STREAM_ELEMS,
                  passes: int = 1) -> Workload:
    """One STREAM kernel ('copy' | 'scale' | 'add' | 'triad')."""
    if kernel not in ("copy", "scale", "add", "triad"):
        raise ValueError(f"unknown STREAM kernel {kernel!r}")
    return Workload(
        name=f"stream-{kernel}",
        source=_stream_source(kernel, elems, passes),
        reference=lambda: _reference(kernel, elems, passes),
        category="stream")


def stream_suite(elems: int = STREAM_ELEMS, passes: int = 1) -> list[Workload]:
    return [stream_kernel(k, elems, passes)
            for k in ("copy", "scale", "add", "triad")]
