"""String-processing kernels (paper section VIII.B).

"Security encryption algorithms need to perform frequent shift, and,
or and other operations on certain bytes" and the ``tstnbz``
instruction exists precisely for string scanning: it flags zero bytes
in a 64-bit word, so strlen can scan 8 bytes per iteration instead
of 1.  The two variants quantify that:

* ``strlen_base`` — byte-at-a-time loop (plain RV64GC),
* ``strlen_xt``   — word-at-a-time with ``tstnbz`` + ``ff1`` locating
  the terminator inside the final word.
"""

from __future__ import annotations

from .base import Workload


def _make_strings(count: int, max_len: int) -> list[bytes]:
    out = []
    for i in range(count):
        length = (i * 37 + 11) % max_len + 1
        out.append(bytes(97 + (i + j) % 26 for j in range(length)))
    return out


def _data_section(strings: list[bytes], align_pad: int = 8) -> str:
    lines = []
    for index, s in enumerate(strings):
        lines.append(f"str{index}: .asciz \"{s.decode()}\"")
    lines.append("    .align 3")
    count = len(strings)
    lines.append("ptrs:")
    for index in range(count):
        lines.append(f"    .dword str{index}")
    return "\n".join(lines)


def strlen_base(count: int = 48, max_len: int = 60,
                passes: int = 4) -> Workload:
    strings = _make_strings(count, max_len)
    source = f"""
    .data
{_data_section(strings)}
    .align 3
result: .dword 0
    .text
_start:
    li s5, 0                  # total length
    li s6, 0                  # pass
pass_loop:
    la s0, ptrs
    li s1, 0
str_loop:
    slli t0, s1, 3
    add t0, s0, t0
    ld t1, 0(t0)              # string pointer
    li t2, 0                  # length
byte_loop:
    lbu t3, 0(t1)
    beqz t3, str_done
    addi t1, t1, 1
    addi t2, t2, 1
    j byte_loop
str_done:
    add s5, s5, t2
    addi s1, s1, 1
    li t4, {count}
    blt s1, t4, str_loop
    addi s6, s6, 1
    li t4, {passes}
    blt s6, t4, pass_loop
    la t5, result
    sd s5, 0(t5)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        return sum(len(s) for s in strings) * passes

    return Workload(name="strlen-base", source=source, reference=reference,
                    category="stringops")


def strlen_xt(count: int = 48, max_len: int = 60,
              passes: int = 4) -> Workload:
    """Word-at-a-time strlen with tstnbz + ff1.

    The strings are .asciz in padded memory, so reading up to 7 bytes
    past the terminator is safe (real implementations align first).
    """
    strings = _make_strings(count, max_len)
    source = f"""
    .data
{_data_section(strings)}
    .zero 16                  # over-read guard
    .align 3
result: .dword 0
    .text
_start:
    li s5, 0
    li s6, 0
pass_loop:
    la s0, ptrs
    li s1, 0
str_loop:
    slli t0, s1, 3
    add t0, s0, t0
    ld t1, 0(t0)
    mv t6, t1                 # start pointer
word_loop:
    ld t3, 0(t1)              # 8 bytes at once
    tstnbz t4, t3             # 0xFF in each zero byte's lane
    bnez t4, found_zero
    addi t1, t1, 8
    j word_loop
found_zero:
    # Isolate the lowest flag bit, then ff1 (count leading zeros)
    # turns it into the terminator's byte offset within the word.
    neg a2, t4
    and t4, t4, a2            # lowest set bit only
    ff1 t5, t4                # leading-zero count of that bit
    li a1, 63
    sub t5, a1, t5            # its bit index
    srli t5, t5, 3            # -> byte offset within the word
    sub t1, t1, t6            # full words scanned (bytes)
    add t1, t1, t5
    add s5, s5, t1
    addi s1, s1, 1
    li t4, {count}
    blt s1, t4, str_loop
    addi s6, s6, 1
    li t4, {passes}
    blt s6, t4, pass_loop
    la t0, result
    sd s5, 0(t0)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        return sum(len(s) for s in strings) * passes

    return Workload(name="strlen-xt", source=source, reference=reference,
                    category="stringops")
