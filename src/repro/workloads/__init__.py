"""Benchmark workloads: each an assembly kernel + Python reference."""

from .base import Workload, crc16_update  # noqa: F401
from .blockchain import blockchain_kernel  # noqa: F401
from .coremark import coremark_suite  # noqa: F401
from .dhrystone import dhrystone  # noqa: F401
from .eembc import eembc_suite  # noqa: F401
from .nbench import nbench_suite  # noqa: F401
from .specint import specint_workload  # noqa: F401
from .stream import stream_kernel, stream_suite  # noqa: F401
from .stringops import strlen_base, strlen_xt  # noqa: F401
from .vector import (  # noqa: F401
    scalar_mac16,
    vec_axpy_f32,
    vec_axpy_f64,
    vec_fp16_axpy,
    vec_gather,
    vec_mac16,
    vec_memcpy,
    vec_stencil32,
    vec_strcmp,
    vector_suite,
)


def all_workloads() -> list[Workload]:
    """Every verified workload in the repository."""
    return (coremark_suite() + eembc_suite() + nbench_suite()
            + stream_suite(elems=2048) + [specint_workload(
                chase_nodes=4096, scan_elems=8192, chase_steps=4000,
                scan_passes=1, hash_ops=2000)]
            + vector_suite()
            + [blockchain_kernel(xt=False, blocks=4),
               blockchain_kernel(xt=True, blocks=4),
               strlen_base(), strlen_xt(), dhrystone()])
