"""SPECint2006-like large-footprint workload (paper section X).

"SPECInt2006 uses very large programs that frequently incur L2 cache
misses.  It factors in core performance, cache size, cache miss, DDR
latency, etc."  This synthetic equivalent mixes the three behaviours
that dominate SPECint on an embedded memory system:

* pointer chasing over a multi-megabyte permutation (mcf/omnetpp-like
  latency-bound phases that no prefetcher can cover),
* strided scans with arithmetic over a large array (bzip2/hmmer-like
  bandwidth phases),
* a branchy hash/histogram phase (gcc/perlbench-like control flow).

Footprint is parameterized; the default (4 MiB region) overflows every
L2 configuration of Table I except the 8 MB maximum.
"""

from __future__ import annotations

from .base import Workload

CHASE_NODES = 65536          # 64K nodes x 64B = 4 MiB pointer region
SCAN_ELEMS = 131072          # 1 MiB of 8-byte elements
CHASE_STEPS = 30000
SCAN_PASSES = 1
HASH_OPS = 8000


def _specint_source(chase_nodes: int, scan_elems: int, chase_steps: int,
                    scan_passes: int, hash_ops: int) -> str:
    return f"""
    .equ CHASE_NODES, {chase_nodes}
    .equ SCAN_ELEMS, {scan_elems}
    .equ CHASE_STEPS, {chase_steps}
    .equ SCAN_PASSES, {scan_passes}
    .equ HASH_OPS, {hash_ops}
    .data
    .align 3
result: .dword 0
    .text
_start:
    li s0, 0x2000000           # chase region (up to 4 MiB)
    li s1, 0x2800000           # scan region
    li s2, 0x2C00000           # histogram region (64K buckets)

    # --- build the pointer-chase permutation:
    # next[i] = (i * 97 + 31) % CHASE_NODES  (97 coprime to 2^k)
    li t0, 0
    li t1, CHASE_NODES
build_chase:
    li t2, 97
    mul t3, t0, t2
    addi t3, t3, 31
    li t4, CHASE_NODES
    rem t3, t3, t4             # successor index
    slli t4, t3, 6             # 64B nodes: one cache line each
    add t4, s0, t4             # &node[succ]
    slli t5, t0, 6
    add t5, s0, t5             # &node[i]
    sd t4, 0(t5)               # node.next
    sd t0, 8(t5)               # node.payload = i
    addi t0, t0, 1
    blt t0, t1, build_chase

    # --- init the scan array: v[i] = i*3+1
    li t0, 0
    li t1, SCAN_ELEMS
build_scan:
    li t2, 3
    mul t3, t0, t2
    addi t3, t3, 1
    slli t4, t0, 3
    add t4, s1, t4
    sd t3, 0(t4)
    addi t0, t0, 1
    blt t0, t1, build_scan

    li s3, 0                   # checksum

    # === phase 1: pointer chase (latency bound) ===
    mv t0, s0                  # cursor
    li t1, 0
chase_loop:
    ld t2, 8(t0)               # payload
    add s3, s3, t2
    ld t0, 0(t0)               # next
    addi t1, t1, 1
    li t3, CHASE_STEPS
    blt t1, t3, chase_loop

    # === phase 2: strided scan with compute (bandwidth bound) ===
    li t5, 0                   # pass
scan_pass:
    mv t0, s1
    li t1, 0
scan_loop:
    ld t2, 0(t0)
    slli t3, t2, 1
    xor t3, t3, t2
    add s3, s3, t3
    sd t3, 0(t0)
    addi t0, t0, 8
    addi t1, t1, 1
    li t4, SCAN_ELEMS
    blt t1, t4, scan_loop
    addi t5, t5, 1
    li t4, SCAN_PASSES
    blt t5, t4, scan_pass

    # === phase 3: branchy hash/histogram (control bound) ===
    li t0, 0
    li t1, 0x9E3779B9          # golden-ratio hash multiplier
hash_loop:
    mul t2, t0, t1
    srli t3, t2, 12
    slli t3, t3, 48            # keep the low 16 bits: 64K buckets
    srli t3, t3, 48
    slli t4, t3, 3
    add t4, s2, t4
    ld t5, 0(t4)
    # data-dependent branch: bucket parity decides the update
    andi t6, t5, 1
    beqz t6, hash_even
    slli t5, t5, 1
    xor t5, t5, t3
    j hash_store
hash_even:
    addi t5, t5, 3
hash_store:
    sd t5, 0(t4)
    add s3, s3, t5
    addi t0, t0, 1
    li t6, HASH_OPS
    blt t0, t6, hash_loop

    la t0, result
    sd s3, 0(t0)
    li a0, 0
    li a7, 93
    ecall
"""


def _specint_reference(chase_nodes: int, scan_elems: int, chase_steps: int,
                       scan_passes: int, hash_ops: int) -> int:
    mask = (1 << 64) - 1
    chk = 0
    # Phase 1
    cursor = 0
    for _ in range(chase_steps):
        chk = (chk + cursor) & mask
        cursor = (cursor * 97 + 31) % chase_nodes
    # Phase 2
    values = [(i * 3 + 1) & mask for i in range(scan_elems)]
    for _ in range(scan_passes):
        for i in range(scan_elems):
            v = values[i]
            new = ((v << 1) ^ v) & mask
            chk = (chk + new) & mask
            values[i] = new
    # Phase 3
    buckets: dict[int, int] = {}
    mult = 0x9E3779B9
    for i in range(hash_ops):
        bucket = ((i * mult) >> 12) & 0xFFFF
        value = buckets.get(bucket, 0)
        if value & 1:
            value = ((value << 1) ^ bucket) & mask
        else:
            value = (value + 3) & mask
        buckets[bucket] = value
        chk = (chk + value) & mask
    return chk


def specint_workload(chase_nodes: int = CHASE_NODES,
                     scan_elems: int = SCAN_ELEMS,
                     chase_steps: int = CHASE_STEPS,
                     scan_passes: int = SCAN_PASSES,
                     hash_ops: int = HASH_OPS) -> Workload:
    return Workload(
        name="specint-like",
        source=_specint_source(chase_nodes, scan_elems, chase_steps,
                               scan_passes, hash_ops),
        reference=lambda: _specint_reference(
            chase_nodes, scan_elems, chase_steps, scan_passes, hash_ops),
        category="spec")
