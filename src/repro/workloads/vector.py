"""Vector workloads (paper section VII).

The paper's AI/ML argument: with two 64-bit slices XT-910 executes
16 16-bit MACs per cycle — twice the Cortex-A73's 8x16-bit NEON MAC —
and additionally supports half-precision float, which NEON (ARMv8.0)
does not.  These kernels exercise exactly those paths:

* ``vec_mac16``   — int16 dot product via vwmacc (widening MAC),
* ``scalar_mac16`` — the same computation with scalar mulah ops,
* ``vec_fp16``    — half-precision AXPY,
* ``vec_fp32``    — single-precision AXPY for comparison.
"""

from __future__ import annotations

import struct

from .base import Workload


def _mac16_data(n: int) -> tuple[list[int], list[int]]:
    a = [((i * 7 + 1) % 251) - 125 for i in range(n)]
    b = [((i * 13 + 5) % 239) - 119 for i in range(n)]
    return a, b


def vec_mac16(n: int = 512, unroll_passes: int = 4) -> Workload:
    """int16 dot product with the widening vector MAC.

    Unrolled onto four accumulator groups (v8/v12/v16/v20) so the MACs
    pipeline instead of chaining on one accumulator — the schedule any
    vectorizing compiler emits for a reduction with a 4-cycle MAC.
    """
    if n % 32:
        raise ValueError("n must be a multiple of 32 (4 x 8-element chunks)")
    a, b = _mac16_data(n)
    a_words = ", ".join(str(v) for v in a)
    b_words = ", ".join(str(v) for v in b)
    chunk_pair = """
    vle16.v v{va}, (s0)
    vle16.v v{vb}, (s1)
    addi s0, s0, 16
    addi s1, s1, 16
    vwmacc.vv v{acc}, v{va}, v{vb}
"""
    body = "".join(
        chunk_pair.format(va=24 + 2 * k, vb=25 + 2 * k, acc=8 + 4 * k)
        for k in range(4))
    source = f"""
    .data
    .align 3
va_data: .half {a_words}
vb_data: .half {b_words}
result:  .dword 0
    .text
_start:
    li s5, 0                   # total
    li s6, 0                   # pass
vm_pass:
    la s0, va_data
    la s1, vb_data
    li t0, 8
    vsetvli t0, t0, e32, m2
    vmv.v.i v8, 0              # four wide accumulator groups
    vmv.v.i v12, 0
    vmv.v.i v16, 0
    vmv.v.i v20, 0
    li s2, {n // 32}           # iterations of 4 chunks
    li t0, 8
    vsetvli t0, t0, e16, m1
vm_loop:
{body}
    addi s2, s2, -1
    bnez s2, vm_loop
    # combine the accumulators and reduce
    li t0, 8
    vsetvli t0, t0, e32, m2
    vadd.vv v8, v8, v12
    vadd.vv v16, v16, v20
    vadd.vv v8, v8, v16
    vmv.v.i v4, 0
    vredsum.vs v6, v8, v4
    vmv.x.s t3, v6
    add s5, s5, t3
    addi s6, s6, 1
    li t4, {unroll_passes}
    blt s6, t4, vm_pass
    la t5, result
    sd s5, 0(t5)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        dot = sum(x * y for x, y in zip(a, b))
        return (dot * unroll_passes) & ((1 << 64) - 1)

    return Workload(name="vec-mac16", source=source, reference=reference,
                    category="vector")


def scalar_mac16(n: int = 512, unroll_passes: int = 4) -> Workload:
    """The same int16 dot product with scalar XT mulah MACs."""
    a, b = _mac16_data(n)
    a_words = ", ".join(str(v) for v in a)
    b_words = ", ".join(str(v) for v in b)
    source = f"""
    .data
    .align 3
sa_data: .half {a_words}
sb_data: .half {b_words}
result:  .dword 0
    .text
_start:
    li s5, 0
    li s6, 0
sm_pass:
    la s0, sa_data
    la s1, sb_data
    li s2, 0
    li s3, {n}
    li s4, 0                   # acc (32-bit semantics via mulah)
sm_loop:
    slli t0, s2, 1
    add t1, s0, t0
    lh t2, 0(t1)
    add t1, s1, t0
    lh t3, 0(t1)
    mulah s4, t2, t3           # acc += (int16)a * (int16)b
    addi s2, s2, 1
    blt s2, s3, sm_loop
    add s5, s5, s4
    addi s6, s6, 1
    li t4, {unroll_passes}
    blt s6, t4, sm_pass
    la t5, result
    sd s5, 0(t5)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        dot = sum(x * y for x, y in zip(a, b))  # fits in 32 bits
        return (dot * unroll_passes) & ((1 << 64) - 1)

    return Workload(name="scalar-mac16", source=source, reference=reference,
                    category="vector")


def vec_fp16_axpy(n: int = 192, passes: int = 32) -> Workload:
    """Half-precision y = a*x + y (unsupported by A73's NEON),
    strip-mined at e16/m8 (64 lanes per op at VLEN=128) and repeated
    *passes* times so the kernel stays vector-dominated."""
    x = [struct.unpack("<e", struct.pack("<e", 0.25 * (i % 8)))[0]
         for i in range(n)]
    y = [struct.unpack("<e", struct.pack("<e", 0.5 * (i % 4)))[0]
         for i in range(n)]
    x_bits = ", ".join(hex(struct.unpack("<H", struct.pack("<e", v))[0])
                       for v in x)
    y_bits = ", ".join(hex(struct.unpack("<H", struct.pack("<e", v))[0])
                       for v in y)
    source = f"""
    .data
    .align 3
fx: .half {x_bits}
fy: .half {y_bits}
result: .dword 0
    .text
_start:
    li t0, 0x4000              # fp16 bit pattern of 2.0
    fmv.w.x fa0, t0            # scalar operand: low 16 bits are the fp16
    li s6, {passes}
axpy_pass:
    la s0, fx
    la s1, fy
    li s2, {n}
axpy_loop:
    vsetvli t0, s2, e16, m8
    vle16.v v8, (s0)
    vle16.v v16, (s1)
    vfmacc.vf v16, fa0, v8     # y += a*x  (fp16 lanes, fp32 scalar bits)
    vse16.v v16, (s1)
    slli t1, t0, 1
    add s0, s0, t1
    add s1, s1, t1
    sub s2, s2, t0
    bnez s2, axpy_loop
    addi s6, s6, -1
    bnez s6, axpy_pass
    # checksum: sum of result bit patterns
    la s1, fy
    li s2, {n}
    li t2, 0
chk:
    lhu t3, 0(s1)
    add t2, t2, t3
    addi s1, s1, 2
    addi s2, s2, -1
    bnez s2, chk
    la t4, result
    sd t2, 0(t4)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        total = 0
        import struct as st

        a_val = 2.0  # fp16 0x4000 broadcast as the scalar operand
        for xv, yv in zip(x, y):
            acc = yv
            for _ in range(passes):
                acc = st.unpack("<e", st.pack("<e", a_val * xv + acc))[0]
            total += st.unpack("<H", st.pack("<e", acc))[0]
        return total & ((1 << 64) - 1)

    return Workload(name="vec-fp16-axpy", source=source, reference=reference,
                    category="vector")


def _f32_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _f32_round(value: float) -> float:
    return struct.unpack("<f", struct.pack("<f", value))[0]


def _f64_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def vec_axpy_f32(n: int = 128, passes: int = 32) -> Workload:
    """Single-precision y = a*x + y (the BSC suite's axpy kernel),
    strip-mined at e32/m8 and repeated *passes* times so the kernel is
    dominated by vector work rather than the scalar checksum."""
    x = [0.25 * (i % 16) - 1.5 for i in range(n)]
    y = [0.5 * (i % 8) + 0.125 for i in range(n)]
    x_bits = ", ".join(hex(_f32_bits(v)) for v in x)
    y_bits = ", ".join(hex(_f32_bits(v)) for v in y)
    source = f"""
    .data
    .align 3
ax: .word {x_bits}
ay: .word {y_bits}
result: .dword 0
    .text
_start:
    li t0, 0x40000000          # f32 bit pattern of 2.0
    fmv.w.x fa0, t0
    li s6, {passes}
af_pass:
    la s0, ax
    la s1, ay
    li s2, {n}
af_loop:
    vsetvli t0, s2, e32, m8
    vle32.v v8, (s0)
    vle32.v v16, (s1)
    vfmacc.vf v16, fa0, v8     # y += a*x
    vse32.v v16, (s1)
    slli t1, t0, 2
    add s0, s0, t1
    add s1, s1, t1
    sub s2, s2, t0
    bnez s2, af_loop
    addi s6, s6, -1
    bnez s6, af_pass
    # checksum: sum of result bit patterns
    la s1, ay
    li s2, {n}
    li t2, 0
af_chk:
    lwu t3, 0(s1)
    add t2, t2, t3
    addi s1, s1, 4
    addi s2, s2, -1
    bnez s2, af_chk
    la t4, result
    sd t2, 0(t4)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        total = 0
        for xv, yv in zip(x, y):
            # the emulator computes a*x+y in double then rounds to f32
            acc = _f32_round(yv)
            for _ in range(passes):
                acc = _f32_round(2.0 * _f32_round(xv) + acc)
            total += _f32_bits(acc)
        return total & ((1 << 64) - 1)

    return Workload(name="vec-axpy-f32", source=source, reference=reference,
                    category="vector")


def vec_axpy_f64(n: int = 128, passes: int = 32) -> Workload:
    """Double-precision y = a*x + y, repeated *passes* times."""
    x = [0.03125 * (i % 32) - 0.5 for i in range(n)]
    y = [0.0625 * (i % 16) + 1.0 for i in range(n)]
    x_bits = ", ".join(hex(_f64_bits(v)) for v in x)
    y_bits = ", ".join(hex(_f64_bits(v)) for v in y)
    source = f"""
    .data
    .align 3
dx: .dword {x_bits}
dy: .dword {y_bits}
result: .dword 0
    .text
_start:
    li t0, 0x4004000000000000  # f64 bit pattern of 2.5
    fmv.d.x fa0, t0
    li s6, {passes}
ad_pass:
    la s0, dx
    la s1, dy
    li s2, {n}
ad_loop:
    vsetvli t0, s2, e64, m8
    vle64.v v8, (s0)
    vle64.v v16, (s1)
    vfmacc.vf v16, fa0, v8     # y += a*x
    vse64.v v16, (s1)
    slli t1, t0, 3
    add s0, s0, t1
    add s1, s1, t1
    sub s2, s2, t0
    bnez s2, ad_loop
    addi s6, s6, -1
    bnez s6, ad_pass
    # checksum: sum of result bit patterns mod 2^64
    la s1, dy
    li s2, {n}
    li t2, 0
ad_chk:
    ld t3, 0(s1)
    add t2, t2, t3
    addi s1, s1, 8
    addi s2, s2, -1
    bnez s2, ad_chk
    la t4, result
    sd t2, 0(t4)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        total = 0
        for xv, yv in zip(x, y):
            acc = yv
            for _ in range(passes):
                acc = 2.5 * xv + acc    # Python float == IEEE binary64
            total += _f64_bits(acc)
        return total & ((1 << 64) - 1)

    return Workload(name="vec-axpy-f64", source=source, reference=reference,
                    category="vector")


def vec_stencil32(n: int = 128, passes: int = 32) -> Workload:
    """1-D 3-point int32 stencil: out[i] = in[i] + in[i+1] + in[i+2].

    The three input taps are unaligned overlapping unit-stride loads
    (base, base+4, base+8) — the slowest shape for per-element
    emulation and the bread-and-butter case for the batched engine.
    The stencil is idempotent in its output, so it is re-run *passes*
    times to keep the kernel vector-dominated.
    """
    data = [((i * 2654435761) >> 7) & 0xFFFF for i in range(n + 2)]
    in_words = ", ".join(str(v) for v in data)
    source = f"""
    .data
    .align 3
st_in:  .word {in_words}
st_out: .zero {4 * n}
result: .dword 0
    .text
_start:
    li s6, {passes}
stn_pass:
    la s0, st_in
    la s1, st_out
    li s2, {n}
stn_loop:
    vsetvli t0, s2, e32, m8
    vle32.v v8, (s0)
    addi t1, s0, 4
    vle32.v v16, (t1)
    vadd.vv v8, v8, v16
    addi t1, s0, 8
    vle32.v v16, (t1)
    vadd.vv v8, v8, v16
    vse32.v v8, (s1)
    slli t1, t0, 2
    add s0, s0, t1
    add s1, s1, t1
    sub s2, s2, t0
    bnez s2, stn_loop
    addi s6, s6, -1
    bnez s6, stn_pass
    la s1, st_out
    li s2, {n}
    li t2, 0
stn_chk:
    lwu t3, 0(s1)
    add t2, t2, t3
    addi s1, s1, 4
    addi s2, s2, -1
    bnez s2, stn_chk
    la t4, result
    sd t2, 0(t4)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        total = 0
        for i in range(n):
            total += (data[i] + data[i + 1] + data[i + 2]) & 0xFFFFFFFF
        return total & ((1 << 64) - 1)

    return Workload(name="vec-stencil32", source=source, reference=reference,
                    category="vector")


def vec_gather(n: int = 128, passes: int = 32) -> Workload:
    """Sparse gather/scatter through the indexed vector ops.

    Byte-offset indices form a full permutation (stride 37 mod n), so
    the scatter writes every output slot exactly once — the sparse
    SpMV-style access pattern from the BSC suite.  The gather/reduce/
    scatter body runs *passes* times, accumulating the reduced sum.
    """
    table = [(i * 40503) & 0xFFFF for i in range(n)]
    perm = [((i * 37) % n) * 4 for i in range(n)]
    t_words = ", ".join(str(v) for v in table)
    p_words = ", ".join(str(v) for v in perm)
    source = f"""
    .data
    .align 3
g_tab: .word {t_words}
g_idx: .word {p_words}
g_out: .zero {4 * n}
result: .dword 0
    .text
_start:
    la s1, g_tab
    la s3, g_out
    li t2, 0                   # gathered-value checksum
    li s6, {passes}
ga_pass:
    la s0, g_idx
    li s2, {n}
ga_loop:
    vsetvli t0, s2, e32, m8
    vle32.v v8, (s0)           # byte offsets
    vlxei32.v v16, (s1), v8    # gather table[perm[i]]
    vsxei32.v v16, (s3), v8    # scatter back to the same slots
    vmv.v.i v24, 0
    vredsum.vs v24, v16, v24
    vmv.x.s t3, v24
    add t2, t2, t3
    slli t1, t0, 2
    add s0, s0, t1
    sub s2, s2, t0
    bnez s2, ga_loop
    addi s6, s6, -1
    bnez s6, ga_pass
    # fold in the scattered output (== table, full permutation)
    la s1, g_out
    li s2, {n}
ga_chk:
    lwu t3, 0(s1)
    add t2, t2, t3
    addi s1, s1, 4
    addi s2, s2, -1
    bnez s2, ga_chk
    la t4, result
    sd t2, 0(t4)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        total = sum(table[off // 4] for off in perm) * passes
        total += sum(table)             # scattered output == table
        return total & ((1 << 64) - 1)

    return Workload(name="vec-gather", source=source, reference=reference,
                    category="vector")


def vec_memcpy(n: int = 250, passes: int = 32) -> Workload:
    """Vector byte memcpy with a tail (n deliberately not a multiple of
    VLEN/8, so the last stripmine iteration runs with a partial vl).
    The copy is idempotent, so it repeats *passes* times."""
    data = [(i * 73 + 11) & 0xFF for i in range(n)]
    src_bytes = ", ".join(str(v) for v in data)
    source = f"""
    .data
    .align 3
mc_src: .byte {src_bytes}
    .align 3
mc_dst: .zero {n}
    .align 3
result: .dword 0
    .text
_start:
    li s6, {passes}
mc_pass:
    la s0, mc_src
    la s1, mc_dst
    li s2, {n}
mc_loop:
    vsetvli t0, s2, e8, m8
    vle8.v v8, (s0)
    vse8.v v8, (s1)
    add s0, s0, t0
    add s1, s1, t0
    sub s2, s2, t0
    bnez s2, mc_loop
    addi s6, s6, -1
    bnez s6, mc_pass
    la s1, mc_dst
    li s2, {n}
    li t2, 0
mc_chk:
    lbu t3, 0(s1)
    add t2, t2, t3
    addi s1, s1, 1
    addi s2, s2, -1
    bnez s2, mc_chk
    la t4, result
    sd t2, 0(t4)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        return sum(data) & ((1 << 64) - 1)

    return Workload(name="vec-memcpy", source=source, reference=reference,
                    category="vector")


def vec_strcmp(n: int = 192, diff_at: int = 131, passes: int = 32) -> Workload:
    """Vectorized strcmp-style scan: compare VLEN-sized chunks (e8 m8,
    128 bytes at VLEN=128) with vmsne + vcpop, drop to a scalar scan
    only in the chunk holding the first mismatch.  The scan repeats
    *passes* times (the comparison is pure, so each pass recomputes
    the same answer).  Result = (index << 8) | (a[i]-b[i] & 0xFF)."""
    a = [((i * 31 + 7) % 255) + 1 for i in range(n)]
    b = list(a)
    b[diff_at] = (b[diff_at] + 3) & 0xFF or 1
    a_bytes = ", ".join(str(v) for v in a)
    b_bytes = ", ".join(str(v) for v in b)
    source = f"""
    .data
    .align 3
sc_a: .byte {a_bytes}
    .align 3
sc_b: .byte {b_bytes}
    .align 3
result: .dword 0
    .text
_start:
    li s6, {passes}
sc_pass:
    la s0, sc_a
    la s1, sc_b
    li s2, {n}
    li s3, 0                   # global byte index
sc_loop:
    vsetvli t0, s2, e8, m8
    vle8.v v8, (s0)
    vle8.v v16, (s1)
    vmsne.vv v24, v8, v16
    vcpop.m t3, v24
    bnez t3, sc_found
    add s0, s0, t0
    add s1, s1, t0
    add s3, s3, t0
    sub s2, s2, t0
    bnez s2, sc_loop
    slli t5, s3, 8             # equal: result = n << 8
    j sc_done
sc_found:                      # scalar scan inside the hit chunk
    lbu t3, 0(s0)
    lbu t4, 0(s1)
    bne t3, t4, sc_diff
    addi s0, s0, 1
    addi s1, s1, 1
    addi s3, s3, 1
    j sc_found
sc_diff:
    sub t5, t3, t4
    andi t5, t5, 0xFF
    slli t6, s3, 8
    or t5, t5, t6
sc_done:
    addi s6, s6, -1
    bnez s6, sc_pass
    la t4, result
    sd t5, 0(t4)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        for i, (av, bv) in enumerate(zip(a, b)):
            if av != bv:
                return (i << 8) | ((av - bv) & 0xFF)
        return n << 8

    return Workload(name="vec-strcmp", source=source, reference=reference,
                    category="vector")


def vector_suite() -> list[Workload]:
    return [vec_mac16(), scalar_mac16(), vec_fp16_axpy(),
            vec_axpy_f32(), vec_axpy_f64(), vec_stencil32(),
            vec_gather(), vec_memcpy(), vec_strcmp()]
