"""Vector workloads (paper section VII).

The paper's AI/ML argument: with two 64-bit slices XT-910 executes
16 16-bit MACs per cycle — twice the Cortex-A73's 8x16-bit NEON MAC —
and additionally supports half-precision float, which NEON (ARMv8.0)
does not.  These kernels exercise exactly those paths:

* ``vec_mac16``   — int16 dot product via vwmacc (widening MAC),
* ``scalar_mac16`` — the same computation with scalar mulah ops,
* ``vec_fp16``    — half-precision AXPY,
* ``vec_fp32``    — single-precision AXPY for comparison.
"""

from __future__ import annotations

import struct

from .base import Workload


def _mac16_data(n: int) -> tuple[list[int], list[int]]:
    a = [((i * 7 + 1) % 251) - 125 for i in range(n)]
    b = [((i * 13 + 5) % 239) - 119 for i in range(n)]
    return a, b


def vec_mac16(n: int = 512, unroll_passes: int = 4) -> Workload:
    """int16 dot product with the widening vector MAC.

    Unrolled onto four accumulator groups (v8/v12/v16/v20) so the MACs
    pipeline instead of chaining on one accumulator — the schedule any
    vectorizing compiler emits for a reduction with a 4-cycle MAC.
    """
    if n % 32:
        raise ValueError("n must be a multiple of 32 (4 x 8-element chunks)")
    a, b = _mac16_data(n)
    a_words = ", ".join(str(v) for v in a)
    b_words = ", ".join(str(v) for v in b)
    chunk_pair = """
    vle16.v v{va}, (s0)
    vle16.v v{vb}, (s1)
    addi s0, s0, 16
    addi s1, s1, 16
    vwmacc.vv v{acc}, v{va}, v{vb}
"""
    body = "".join(
        chunk_pair.format(va=24 + 2 * k, vb=25 + 2 * k, acc=8 + 4 * k)
        for k in range(4))
    source = f"""
    .data
    .align 3
va_data: .half {a_words}
vb_data: .half {b_words}
result:  .dword 0
    .text
_start:
    li s5, 0                   # total
    li s6, 0                   # pass
vm_pass:
    la s0, va_data
    la s1, vb_data
    li t0, 8
    vsetvli t0, t0, e32, m2
    vmv.v.i v8, 0              # four wide accumulator groups
    vmv.v.i v12, 0
    vmv.v.i v16, 0
    vmv.v.i v20, 0
    li s2, {n // 32}           # iterations of 4 chunks
    li t0, 8
    vsetvli t0, t0, e16, m1
vm_loop:
{body}
    addi s2, s2, -1
    bnez s2, vm_loop
    # combine the accumulators and reduce
    li t0, 8
    vsetvli t0, t0, e32, m2
    vadd.vv v8, v8, v12
    vadd.vv v16, v16, v20
    vadd.vv v8, v8, v16
    vmv.v.i v4, 0
    vredsum.vs v6, v8, v4
    vmv.x.s t3, v6
    add s5, s5, t3
    addi s6, s6, 1
    li t4, {unroll_passes}
    blt s6, t4, vm_pass
    la t5, result
    sd s5, 0(t5)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        dot = sum(x * y for x, y in zip(a, b))
        return (dot * unroll_passes) & ((1 << 64) - 1)

    return Workload(name="vec-mac16", source=source, reference=reference,
                    category="vector")


def scalar_mac16(n: int = 512, unroll_passes: int = 4) -> Workload:
    """The same int16 dot product with scalar XT mulah MACs."""
    a, b = _mac16_data(n)
    a_words = ", ".join(str(v) for v in a)
    b_words = ", ".join(str(v) for v in b)
    source = f"""
    .data
    .align 3
sa_data: .half {a_words}
sb_data: .half {b_words}
result:  .dword 0
    .text
_start:
    li s5, 0
    li s6, 0
sm_pass:
    la s0, sa_data
    la s1, sb_data
    li s2, 0
    li s3, {n}
    li s4, 0                   # acc (32-bit semantics via mulah)
sm_loop:
    slli t0, s2, 1
    add t1, s0, t0
    lh t2, 0(t1)
    add t1, s1, t0
    lh t3, 0(t1)
    mulah s4, t2, t3           # acc += (int16)a * (int16)b
    addi s2, s2, 1
    blt s2, s3, sm_loop
    add s5, s5, s4
    addi s6, s6, 1
    li t4, {unroll_passes}
    blt s6, t4, sm_pass
    la t5, result
    sd s5, 0(t5)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        dot = sum(x * y for x, y in zip(a, b))  # fits in 32 bits
        return (dot * unroll_passes) & ((1 << 64) - 1)

    return Workload(name="scalar-mac16", source=source, reference=reference,
                    category="vector")


def vec_fp16_axpy(n: int = 64) -> Workload:
    """Half-precision y = a*x + y (unsupported by A73's NEON)."""
    x = [struct.unpack("<e", struct.pack("<e", 0.25 * (i % 8)))[0]
         for i in range(n)]
    y = [struct.unpack("<e", struct.pack("<e", 0.5 * (i % 4)))[0]
         for i in range(n)]
    x_bits = ", ".join(hex(struct.unpack("<H", struct.pack("<e", v))[0])
                       for v in x)
    y_bits = ", ".join(hex(struct.unpack("<H", struct.pack("<e", v))[0])
                       for v in y)
    source = f"""
    .data
    .align 3
fx: .half {x_bits}
fy: .half {y_bits}
result: .dword 0
    .text
_start:
    la s0, fx
    la s1, fy
    li s2, {n}
    li t0, 0x4000              # fp16 bit pattern of 2.0
    fmv.w.x fa0, t0            # scalar operand: low 16 bits are the fp16
axpy_loop:
    vsetvli t0, s2, e16, m1
    vle16.v v1, (s0)
    vle16.v v2, (s1)
    vfmacc.vf v2, fa0, v1      # y += a*x  (fp16 lanes, fp32 scalar bits)
    vse16.v v2, (s1)
    slli t1, t0, 1
    add s0, s0, t1
    add s1, s1, t1
    sub s2, s2, t0
    bnez s2, axpy_loop
    # checksum: sum of result bit patterns
    la s1, fy
    li s2, {n}
    li t2, 0
chk:
    lhu t3, 0(s1)
    add t2, t2, t3
    addi s1, s1, 2
    addi s2, s2, -1
    bnez s2, chk
    la t4, result
    sd t2, 0(t4)
    li a0, 0
    li a7, 93
    ecall
"""

    def reference() -> int:
        total = 0
        import struct as st

        a_val = 2.0  # fp16 0x4000 broadcast as the scalar operand
        for xv, yv in zip(x, y):
            r = st.unpack("<e", st.pack(
                "<e", a_val * xv + yv))[0]
            total += st.unpack("<H", st.pack("<e", r))[0]
        return total & ((1 << 64) - 1)

    return Workload(name="vec-fp16-axpy", source=source, reference=reference,
                    category="vector")


def vector_suite() -> list[Workload]:
    return [vec_mac16(), scalar_mac16(), vec_fp16_axpy()]
