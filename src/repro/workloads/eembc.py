"""EEMBC-like automotive/industrial kernels (paper Fig. 18).

"EEMBC ... is a benchmark for the hardware and software used in
autonomous driving, the Internet of Things, mobile devices" — the
paper normalizes per-kernel scores against Cortex-A73.  The kernels
below cover the EEMBC automotive suite's behaviour classes: sensor
arithmetic (a2time, rspeed), filters (aifirf, iirflt), bit twiddling
(bitmnp, canrdr), transforms (idctrn), pointer chasing (pntrch) and
table lookup with interpolation (tblook).
"""

from __future__ import annotations

from .base import MASK32, Workload

_TAIL = """
    la t0, result
    sd s11, 0(t0)
    li a0, 0
    li a7, 93
    ecall
"""


def _wrap(name: str, body: str, data: str = "") -> str:
    return f"""
    .data
    .align 3
{data}
result: .dword 0
    .text
_start:
    li s11, 0
{body}
{_TAIL}
"""


# --- a2time: angle-to-time pulse computation --------------------------------

_A2TIME_N = 600

_A2TIME_BODY = f"""
    li s0, 0                  # i
    li s1, {_A2TIME_N}
a2_loop:
    li t0, 37
    mul t1, s0, t0
    li t0, 720
    rem t1, t1, t0            # angle
    li t0, 360
    blt t1, t0, a2_low
    sub t2, t1, t0
    li t3, 7
    mul t2, t2, t3
    li t3, 3
    div t2, t2, t3
    j a2_acc
a2_low:
    li t3, 5
    mul t2, t1, t3
    li t3, 2
    div t2, t2, t3
a2_acc:
    add s11, s11, t2
    addi s0, s0, 1
    blt s0, s1, a2_loop
"""


def _a2time_ref() -> int:
    acc = 0
    for i in range(_A2TIME_N):
        angle = (i * 37) % 720
        if angle >= 360:
            acc += (angle - 360) * 7 // 3
        else:
            acc += angle * 5 // 2
    return acc & ((1 << 64) - 1)


# --- aifirf: 16-tap FIR filter ------------------------------------------------

_FIR_N = 256
_FIR_TAPS = 16

_FIR_DATA = f"""
samples: .zero {_FIR_N * 4}
taps:    .zero {_FIR_TAPS * 4}
"""

_FIR_BODY = f"""
    la s0, samples
    la s1, taps
    li t0, 0
    li t1, {_FIR_N}
fir_init_x:                  # x[i] = ((i*31) % 199) - 99
    li t2, 31
    mul t3, t0, t2
    li t2, 199
    rem t3, t3, t2
    addi t3, t3, -99
    slli t4, t0, 2
    add t4, s0, t4
    sw t3, 0(t4)
    addi t0, t0, 1
    blt t0, t1, fir_init_x
    li t0, 0
    li t1, {_FIR_TAPS}
fir_init_h:                  # h[k] = (k*k) % 17 - 8
    mul t3, t0, t0
    li t2, 17
    rem t3, t3, t2
    addi t3, t3, -8
    slli t4, t0, 2
    add t4, s1, t4
    sw t3, 0(t4)
    addi t0, t0, 1
    blt t0, t1, fir_init_h

    li s2, {_FIR_TAPS - 1}    # n
    li s3, {_FIR_N}
fir_outer:
    li t0, 0                  # k
    li t1, 0                  # acc
fir_inner:
    sub t2, s2, t0            # n - k
    slli t3, t2, 2
    add t3, s0, t3
    lw t4, 0(t3)              # x[n-k]
    slli t3, t0, 2
    add t3, s1, t3
    lw t5, 0(t3)              # h[k]
    mul t6, t4, t5
    addw t1, t1, t6
    addi t0, t0, 1
    li t2, {_FIR_TAPS}
    blt t0, t2, fir_inner
    addw s11, s11, t1
    addi s2, s2, 1
    blt s2, s3, fir_outer
    slli s11, s11, 32
    srli s11, s11, 32
"""


def _fir_ref() -> int:
    x = [((i * 31) % 199) - 99 for i in range(_FIR_N)]
    h = [(k * k) % 17 - 8 for k in range(_FIR_TAPS)]
    acc = 0

    def w32(v: int) -> int:
        v &= MASK32
        return v - (1 << 32) if v >= 1 << 31 else v

    for n in range(_FIR_TAPS - 1, _FIR_N):
        y = 0
        for k in range(_FIR_TAPS):
            y = w32(y + x[n - k] * h[k])
        acc = w32(acc + y)
    return acc & MASK32


# --- iirflt: biquad IIR filter -------------------------------------------------

_IIR_N = 512

_IIR_BODY = f"""
    # y[n] = (3*x[n] + 2*x[n-1] + x[n-2] + y[n-1] - y[n-2]) >> 2 (arith)
    li s0, 0                  # x[n-1]
    li s1, 0                  # x[n-2]
    li s2, 0                  # y[n-1]
    li s3, 0                  # y[n-2]
    li s4, 0                  # n
    li s5, {_IIR_N}
iir_loop:
    li t0, 57
    mul t1, s4, t0
    li t0, 251
    rem t1, t1, t0
    addi t1, t1, -125         # x[n]
    li t2, 3
    mul t3, t1, t2
    slli t4, s0, 1
    add t3, t3, t4
    add t3, t3, s1
    add t3, t3, s2
    sub t3, t3, s3
    srai t3, t3, 2            # y[n]
    add s11, s11, t3
    mv s1, s0
    mv s0, t1
    mv s3, s2
    mv s2, t3
    addi s4, s4, 1
    blt s4, s5, iir_loop
"""


def _iir_ref() -> int:
    xm1 = xm2 = ym1 = ym2 = 0
    acc = 0
    for n in range(_IIR_N):
        x = (n * 57) % 251 - 125
        y = (3 * x + 2 * xm1 + xm2 + ym1 - ym2) >> 2
        acc += y
        xm2, xm1 = xm1, x
        ym2, ym1 = ym1, y
    return acc & ((1 << 64) - 1)


# --- bitmnp: bit manipulation ---------------------------------------------------

_BITMNP_N = 300

_BITMNP_BODY = f"""
    li s0, 0
    li s1, {_BITMNP_N}
bm_loop:
    li t0, 0x5DEECE66D
    mul t1, s0, t0
    addi t1, t1, 11           # value
    # popcount
    mv t2, t1
    li t3, 0                  # count
bm_pop:
    andi t4, t2, 1
    add t3, t3, t4
    srli t2, t2, 1
    bnez t2, bm_pop
    add s11, s11, t3
    # reverse low byte via shifts
    andi t2, t1, 255
    li t4, 0
    li t5, 8
bm_rev:
    slli t4, t4, 1
    andi t6, t2, 1
    or t4, t4, t6
    srli t2, t2, 1
    addi t5, t5, -1
    bnez t5, bm_rev
    xor s11, s11, t4
    addi s0, s0, 1
    blt s0, s1, bm_loop
"""


def _bitmnp_ref() -> int:
    acc = 0
    for i in range(_BITMNP_N):
        value = (i * 0x5DEECE66D + 11) & ((1 << 64) - 1)
        acc += bin(value).count("1")
        byte = value & 255
        rev = 0
        for _ in range(8):
            rev = (rev << 1) | (byte & 1)
            byte >>= 1
        acc ^= rev
    return acc & ((1 << 64) - 1)


# --- canrdr: CAN message field pack/unpack ----------------------------------------

_CAN_N = 256

_CAN_BODY = f"""
    li s0, 0
    li s1, {_CAN_N}
can_loop:
    li t0, 2654435761
    mul t1, s0, t0            # raw message word
    # unpack: id = bits 21..31 (11b), dlc = bits 17..20, data = low 16
    srli t2, t1, 21
    andi t3, t2, 0x7FF        # ... 11 bits
    li t4, 0x7FF
    and t3, t2, t4
    srli t2, t1, 17
    andi t4, t2, 0xF          # dlc
    slli t5, t1, 48
    srli t5, t5, 48           # data16
    # remote frame if dlc == 0: respond by echoing id<<4 | 0xF
    bnez t4, can_data
    slli t6, t3, 4
    ori t6, t6, 0xF
    add s11, s11, t6
    j can_next
can_data:
    xor t6, t5, t3
    add s11, s11, t6
can_next:
    addi s0, s0, 1
    blt s0, s1, can_loop
"""


def _can_ref() -> int:
    acc = 0
    for i in range(_CAN_N):
        raw = (i * 2654435761) & ((1 << 64) - 1)
        msg_id = (raw >> 21) & 0x7FF
        dlc = (raw >> 17) & 0xF
        data = raw & 0xFFFF
        if dlc == 0:
            acc += (msg_id << 4) | 0xF
        else:
            acc += data ^ msg_id
    return acc & ((1 << 64) - 1)


# --- idctrn: 8x8 integer transform -------------------------------------------------

_IDCT_BODY = """
    # out[i][j] = sum_k coef[i][k]*blk[k][j], coef/blk synthesized.
    li s0, 0                  # i
idct_i:
    li s1, 0                  # j
idct_j:
    li s2, 0                  # k
    li s3, 0                  # acc
idct_k:
    # coef[i][k] = ((i+1)*(2k+1)) % 13 - 6
    addi t0, s0, 1
    slli t1, s2, 1
    addi t1, t1, 1
    mul t2, t0, t1
    li t3, 13
    rem t2, t2, t3
    addi t2, t2, -6
    # blk[k][j] = (k*8+j)*5 % 256 - 128
    slli t3, s2, 3
    add t3, t3, s1
    li t4, 5
    mul t3, t3, t4
    andi t3, t3, 255
    addi t3, t3, -128
    mul t5, t2, t3
    add s3, s3, t5
    addi s2, s2, 1
    li t6, 8
    blt s2, t6, idct_k
    srai s3, s3, 3            # descale
    add s11, s11, s3
    addi s1, s1, 1
    li t6, 8
    blt s1, t6, idct_j
    addi s0, s0, 1
    blt s0, t6, idct_i
"""


def _idct_ref() -> int:
    acc = 0
    for i in range(8):
        for j in range(8):
            s = 0
            for k in range(8):
                coef = ((i + 1) * (2 * k + 1)) % 13 - 6
                blk = ((k * 8 + j) * 5) % 256 - 128
                s += coef * blk
            acc += s >> 3
    return acc & ((1 << 64) - 1)


# --- pntrch: pointer chase over a small graph ----------------------------------------

_PNTRCH_NODES = 64
_PNTRCH_STEPS = 2000

_PNTRCH_DATA = f"""
pnodes: .zero {_PNTRCH_NODES * 16}
"""

_PNTRCH_BODY = f"""
    la s0, pnodes
    li t0, 0
    li t1, {_PNTRCH_NODES}
pc_build:                    # next[i] = nodes[(i*29+13) % N]; val = i*i
    li t2, 29
    mul t3, t0, t2
    addi t3, t3, 13
    li t2, {_PNTRCH_NODES}
    rem t3, t3, t2
    slli t3, t3, 4
    add t3, s0, t3
    slli t4, t0, 4
    add t4, s0, t4
    sd t3, 0(t4)
    mul t5, t0, t0
    sd t5, 8(t4)
    addi t0, t0, 1
    blt t0, t1, pc_build

    mv t0, s0
    li t1, 0
pc_chase:
    ld t2, 8(t0)
    add s11, s11, t2
    ld t0, 0(t0)
    addi t1, t1, 1
    li t3, {_PNTRCH_STEPS}
    blt t1, t3, pc_chase
"""


def _pntrch_ref() -> int:
    n = _PNTRCH_NODES
    acc = 0
    cur = 0
    for _ in range(_PNTRCH_STEPS):
        acc += cur * cur
        cur = (cur * 29 + 13) % n
    return acc & ((1 << 64) - 1)


# --- rspeed: road speed (division heavy) -----------------------------------------------

_RSPEED_N = 400

_RSPEED_BODY = f"""
    li s0, 1
    li s1, {_RSPEED_N + 1}
rs_loop:
    li t0, 1771
    mul t1, s0, t0
    li t0, 4096
    rem t1, t1, t0
    addi t1, t1, 64           # distance ticks
    andi t2, s0, 127
    addi t2, t2, 5            # time ticks
    li t3, 3600
    mul t1, t1, t3
    div t4, t1, t2            # speed
    li t5, 200000
    blt t4, t5, rs_ok
    li t4, 200000             # clamp
rs_ok:
    add s11, s11, t4
    addi s0, s0, 1
    blt s0, s1, rs_loop
"""


def _rspeed_ref() -> int:
    acc = 0
    for i in range(1, _RSPEED_N + 1):
        dist = (i * 1771) % 4096 + 64
        ticks = (i & 127) + 5
        speed = dist * 3600 // ticks
        acc += min(speed, 200000)
    return acc & ((1 << 64) - 1)


# --- tblook: table lookup with interpolation ----------------------------------------------

_TBL_SIZE = 64
_TBL_N = 500

_TBL_DATA = f"""
table: .zero {_TBL_SIZE * 4}
"""

_TBL_BODY = f"""
    la s0, table
    li t0, 0
    li t1, {_TBL_SIZE}
tb_init:                     # table[i] = i*i*3
    mul t2, t0, t0
    li t3, 3
    mul t2, t2, t3
    slli t4, t0, 2
    add t4, s0, t4
    sw t2, 0(t4)
    addi t0, t0, 1
    blt t0, t1, tb_init

    li s1, 0
    li s2, {_TBL_N}
tb_loop:
    li t0, 97
    mul t1, s1, t0
    li t0, {(_TBL_SIZE - 1) * 16}
    rem t1, t1, t0            # query in fixed point (x16)
    srai t2, t1, 4            # index
    andi t3, t1, 15           # fraction
    slli t4, t2, 2
    add t4, s0, t4
    lw t5, 0(t4)              # table[idx]
    lw t6, 4(t4)              # table[idx+1]
    sub t6, t6, t5
    mul t6, t6, t3
    srai t6, t6, 4
    add t5, t5, t6            # interpolated
    add s11, s11, t5
    addi s1, s1, 1
    blt s1, s2, tb_loop
"""


def _tblook_ref() -> int:
    table = [i * i * 3 for i in range(_TBL_SIZE)]
    acc = 0
    for i in range(_TBL_N):
        q = (i * 97) % ((_TBL_SIZE - 1) * 16)
        idx, frac = q >> 4, q & 15
        val = table[idx] + ((table[idx + 1] - table[idx]) * frac >> 4)
        acc += val
    return acc & ((1 << 64) - 1)


# ---------------------------------------------------------------------------

def eembc_suite() -> list[Workload]:
    """Nine EEMBC-automotive-like kernels."""
    specs = [
        ("eembc-a2time", _A2TIME_BODY, "", _a2time_ref),
        ("eembc-aifirf", _FIR_BODY, _FIR_DATA, _fir_ref),
        ("eembc-iirflt", _IIR_BODY, "", _iir_ref),
        ("eembc-bitmnp", _BITMNP_BODY, "", _bitmnp_ref),
        ("eembc-canrdr", _CAN_BODY, "", _can_ref),
        ("eembc-idctrn", _IDCT_BODY, "", _idct_ref),
        ("eembc-pntrch", _PNTRCH_BODY, _PNTRCH_DATA, _pntrch_ref),
        ("eembc-rspeed", _RSPEED_BODY, "", _rspeed_ref),
        ("eembc-tblook", _TBL_BODY, _TBL_DATA, _tblook_ref),
    ]
    return [Workload(name=name, source=_wrap(name, body, data),
                     reference=ref, category="eembc")
            for name, body, data, ref in specs]
