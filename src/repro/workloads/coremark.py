"""CoreMark-like benchmark suite (paper section X, Fig. 17).

The paper: "the Coremark ... contains implementations of the following
algorithms: list processing (find and sort), matrix manipulation
(common matrix operations), state machine (determine if an input
stream contains valid numbers), and CRC".  The four kernels below
implement those algorithm classes from scratch in our assembler, each
with a Python reference model verifying its checksum.  Like CoreMark
itself, everything is sized to stay cache-resident ("basically all
cache-hit and hardly affected by DDR latency").
"""

from __future__ import annotations

from .base import MASK16, MASK32, Workload, crc16_update

LIST_NODES = 24
LIST_ITERS = 20
MAT_N = 10
MAT_ITERS = 4
STATE_ITERS = 12
CRC_BYTES = 200
CRC_ITERS = 6


def _rotl16(value: int, amount: int = 1) -> int:
    value &= MASK16
    return ((value << amount) | (value >> (16 - amount))) & MASK16


# ---------------------------------------------------------------------------
# Kernel 1: list processing (find and sort)
# ---------------------------------------------------------------------------

_LIST_SRC = f"""
    .equ N, {LIST_NODES}
    .equ ITERS, {LIST_ITERS}
    .data
    .align 3
nodes:  .zero {LIST_NODES * 16}
result: .dword 0
    .text
_start:
    la s0, nodes
    li t0, 0
    li t1, N
build:                        # node: [0]=next ptr, [8]=value
    slli t2, t0, 4
    add t3, s0, t2
    addi t4, t0, 1
    slli t5, t4, 4
    add t5, s0, t5
    blt t4, t1, build_link
    li t5, 0
build_link:
    sd t5, 0(t3)
    li t6, 13
    mul a1, t0, t6
    addi a1, a1, 7
    andi a1, a1, 255
    sw a1, 8(t3)
    addi t0, t0, 1
    blt t0, t1, build

    mv s1, s0                 # head
    li s2, 0                  # chk
    li s3, 0                  # iter
    li s4, ITERS
iter_loop:
    # --- find: value (iter%N)*13+7 ---
    li t0, N
    rem t1, s3, t0
    li t2, 13
    mul t1, t1, t2
    addi t1, t1, 7
    andi t1, t1, 255          # target value
    mv t3, s1                 # cursor
    li t4, 0                  # hops
find_loop:
    lw t5, 8(t3)
    beq t5, t1, found
    ld t3, 0(t3)
    addi t4, t4, 1
    bnez t3, find_loop
found:
    xor s2, s2, t4            # chk ^= hops

    # --- reverse the list ---
    li t0, 0                  # prev
    mv t1, s1                 # cur
rev_loop:
    ld t2, 0(t1)              # next
    sd t0, 0(t1)
    mv t0, t1
    mv t1, t2
    bnez t1, rev_loop
    mv s1, t0                 # new head

    # --- checksum traversal: chk = rotl16(chk) ^ value ---
    mv t3, s1
sum_loop:
    slli t4, s2, 1
    srli t5, s2, 15
    or s2, t4, t5
    li t6, 0xffff
    and s2, s2, t6
    lw t4, 8(t3)
    xor s2, s2, t4
    ld t3, 0(t3)
    bnez t3, sum_loop

    addi s3, s3, 1
    blt s3, s4, iter_loop

    la t0, result
    sd s2, 0(t0)
    li a0, 0
    li a7, 93
    ecall
"""


def _list_reference() -> int:
    values = [(i * 13 + 7) & 255 for i in range(LIST_NODES)]
    order = list(range(LIST_NODES))
    chk = 0
    for it in range(LIST_ITERS):
        target = ((it % LIST_NODES) * 13 + 7) & 255
        hops = 0
        for idx in order:
            if values[idx] == target:
                break
            hops += 1
        chk ^= hops
        order.reverse()
        for idx in order:
            chk = _rotl16(chk) ^ values[idx]
    return chk


# ---------------------------------------------------------------------------
# Kernel 2: matrix manipulation
# ---------------------------------------------------------------------------

_MATRIX_SRC = f"""
    .equ N, {MAT_N}
    .equ ITERS, {MAT_ITERS}
    .data
    .align 3
mat_a:  .zero {MAT_N * MAT_N * 4}
mat_b:  .zero {MAT_N * MAT_N * 4}
mat_c:  .zero {MAT_N * MAT_N * 4}
result: .dword 0
    .text
_start:
    la s0, mat_a
    la s1, mat_b
    la s2, mat_c
    li t0, 0
    li t1, {MAT_N * MAT_N}
init:                         # a[k]=(k*3+1)&0x7fff ; b[k]=(k*5+2)&0x7fff
    slli t2, t0, 2
    add t3, s0, t2
    li t4, 3
    mul t5, t0, t4
    addi t5, t5, 1
    li t6, 0x7fff
    and t5, t5, t6
    sw t5, 0(t3)
    add t3, s1, t2
    li t4, 5
    mul t5, t0, t4
    addi t5, t5, 2
    and t5, t5, t6
    sw t5, 0(t3)
    addi t0, t0, 1
    blt t0, t1, init

    li s3, 0                  # chk
    li s4, 0                  # iter
matmul_iter:
    li t0, 0                  # i
    li a4, N                  # loop bound hoisted (-O2 style)
mm_i:
    mul a5, t0, a4            # i*N hoisted out of the j/k loops
    li t1, 0                  # j
mm_j:
    li t2, 0                  # k
    li a3, 0                  # acc
    # Strength-reduced pointers (-O2 style): t3 walks a's row, a6
    # walks b's column by a whole row per step.
    slli t3, a5, 2
    add t3, s0, t3            # &a[i][0]
    slli a6, t1, 2
    add a6, s1, a6            # &b[0][j]
mm_k:
    lw t5, 0(t3)              # a[i][k]
    lw t6, 0(a6)              # b[k][j]
    addi t3, t3, 4
    addi a6, a6, {MAT_N * 4}
    addi t2, t2, 1
    mul t5, t5, t6
    addw a3, a3, t5
    blt t2, a4, mm_k
    add t3, a5, t1
    slli t3, t3, 2
    add t3, s2, t3
    sw a3, 0(t3)              # c[i][j]
    # chk = (chk + c*(i+j+1)) mod 2^32
    add t4, t0, t1
    addi t4, t4, 1
    mul t5, a3, t4
    addw s3, s3, t5
    addi t1, t1, 1
    li a4, N
    blt t1, a4, mm_j
    addi t0, t0, 1
    blt t0, a4, mm_i

    # a[k] += iter+1 (matrix-constant add between passes)
    li t0, 0
    li t1, {MAT_N * MAT_N}
add_const:
    slli t2, t0, 2
    add t3, s0, t2
    lw t4, 0(t3)
    addi t5, s4, 1
    addw t4, t4, t5
    sw t4, 0(t3)
    addi t0, t0, 1
    blt t0, t1, add_const

    addi s4, s4, 1
    li t0, ITERS
    blt s4, t0, matmul_iter

    # fold checksum to unsigned 32-bit
    slli s3, s3, 32
    srli s3, s3, 32
    la t0, result
    sd s3, 0(t0)
    li a0, 0
    li a7, 93
    ecall
"""


def _matrix_reference() -> int:
    n = MAT_N
    a = [(k * 3 + 1) & 0x7FFF for k in range(n * n)]
    b = [(k * 5 + 2) & 0x7FFF for k in range(n * n)]
    chk = 0
    for it in range(MAT_ITERS):
        for i in range(n):
            for j in range(n):
                acc = 0
                for k in range(n):
                    acc = (acc + a[i * n + k] * b[k * n + j]) & MASK32
                    if acc >= 1 << 31:
                        acc -= 1 << 32
                    acc &= MASK32
                c = acc
                chk = (chk + c * (i + j + 1)) & MASK32
        a = [(v + it + 1) & MASK32 for v in a]
    return chk


# ---------------------------------------------------------------------------
# Kernel 3: state machine (validate numbers in an input stream)
# ---------------------------------------------------------------------------

_STATE_INPUT = "512,19.9,-7,+42e3,1x2,.5,100,9.,e9,777,-0.01,12e,5,abc,+3.1,"

_STATE_SRC = f"""
    .equ ITERS, {STATE_ITERS}
    .data
input:  .asciz "{_STATE_INPUT}"
    .align 3
counts: .zero 32              # [int, float, sci, invalid]
result: .dword 0
    .text
    # States: 0=start 1=int 2=dot 3=float 4=e 5=esign 6=sci 7=invalid
_start:
    li s5, 0                  # chk
    li s6, 0                  # iter
state_iter:
    la s0, input
    li s1, 0                  # state
token_loop:
    lbu t0, 0(s0)
    addi s0, s0, 1
    beqz t0, pass_done
    li t1, ','
    beq t0, t1, token_end
    # classify char: digit / dot / e / sign / other
    li t1, '0'
    blt t0, t1, not_digit
    li t1, '9'
    bgt t0, t1, not_digit
    # --- digit ---
    beqz s1, to_int           # start -> int
    li t1, 2
    beq s1, t1, to_float      # dot -> float
    li t1, 4
    beq s1, t1, to_sci        # e -> sci
    li t1, 5
    beq s1, t1, to_sci        # esign -> sci
    j token_loop              # int/float/sci stay
to_int:
    li s1, 1
    j token_loop
to_float:
    li s1, 3
    j token_loop
to_sci:
    li s1, 6
    j token_loop
not_digit:
    li t1, '.'
    bne t0, t1, not_dot
    beqz s1, dot_ok           # start -> dot
    li t1, 1
    beq s1, t1, dot_ok        # int -> dot(fraction)
    li s1, 7
    j token_loop
dot_ok:
    li s1, 2
    j token_loop
not_dot:
    li t1, 'e'
    bne t0, t1, not_e
    li t1, 1
    beq s1, t1, e_ok          # int -> e
    li t1, 3
    beq s1, t1, e_ok          # float -> e
    li s1, 7
    j token_loop
e_ok:
    li s1, 4
    j token_loop
not_e:
    li t1, '+'
    beq t0, t1, sign
    li t1, '-'
    beq t0, t1, sign
    li s1, 7                  # anything else: invalid
    j token_loop
sign:
    beqz s1, sign_start
    li t1, 4
    beq s1, t1, sign_exp      # e -> esign
    li s1, 7
    j token_loop
sign_start:
    li s1, 0                  # sign before digits: stay in start
    j token_loop
sign_exp:
    li s1, 5
    j token_loop

token_end:                    # classify final state
    la t2, counts
    li t1, 1
    beq s1, t1, cls_int
    li t1, 3
    beq s1, t1, cls_float
    li t1, 6
    beq s1, t1, cls_sci
    li t3, 24                 # invalid bucket
    j cls_store
cls_int:
    li t3, 0
    j cls_store
cls_float:
    li t3, 8
    j cls_store
cls_sci:
    li t3, 16
cls_store:
    add t2, t2, t3
    ld t4, 0(t2)
    addi t4, t4, 1
    sd t4, 0(t2)
    li s1, 0                  # reset DFA
    j token_loop

pass_done:
    # chk = rotl16(chk) ^ (ints + 3*floats + 5*sci + 7*invalid)
    la t2, counts
    ld t3, 0(t2)
    ld t4, 8(t2)
    li t5, 3
    mul t4, t4, t5
    add t3, t3, t4
    ld t4, 16(t2)
    li t5, 5
    mul t4, t4, t5
    add t3, t3, t4
    ld t4, 24(t2)
    li t5, 7
    mul t4, t4, t5
    add t3, t3, t4
    slli t4, s5, 1
    srli t5, s5, 15
    or s5, t4, t5
    li t6, 0xffff
    and s5, s5, t6
    xor s5, s5, t3
    addi s6, s6, 1
    li t0, ITERS
    blt s6, t0, state_iter

    la t0, result
    sd s5, 0(t0)
    li a0, 0
    li a7, 93
    ecall
"""


def _state_classify(token: str) -> str:
    state = 0
    for ch in token:
        if ch.isdigit():
            state = {0: 1, 1: 1, 2: 3, 3: 3, 4: 6, 5: 6, 6: 6}.get(state, 7)
        elif ch == ".":
            state = {0: 2, 1: 2}.get(state, 7)
        elif ch == "e":
            state = {1: 4, 3: 4}.get(state, 7)
        elif ch in "+-":
            state = {0: 0, 4: 5}.get(state, 7)
        else:
            state = 7
    return {1: "int", 3: "float", 6: "sci"}.get(state, "invalid")


def _state_reference() -> int:
    counts = {"int": 0, "float": 0, "sci": 0, "invalid": 0}
    chk = 0
    tokens = _STATE_INPUT.split(",")[:-1]
    for _ in range(STATE_ITERS):
        for token in tokens:
            counts[_state_classify(token)] += 1
        mixed = (counts["int"] + 3 * counts["float"] + 5 * counts["sci"]
                 + 7 * counts["invalid"])
        chk = _rotl16(chk) ^ mixed
        chk &= MASK16
    return chk


# ---------------------------------------------------------------------------
# Kernel 4: CRC16
# ---------------------------------------------------------------------------

_CRC_SRC = f"""
    .equ BYTES, {CRC_BYTES}
    .equ ITERS, {CRC_ITERS}
    .data
buf:    .zero {CRC_BYTES}
    .align 3
result: .dword 0
    .text
_start:
    la s0, buf
    li t0, 0
    li t1, BYTES
fill:                         # buf[i] = (i*i + i) & 0xff
    mul t2, t0, t0
    add t2, t2, t0
    andi t2, t2, 255
    add t3, s0, t0
    sb t2, 0(t3)
    addi t0, t0, 1
    blt t0, t1, fill

    li s1, 0                  # crc
    li s2, 0                  # iter
crc_iter:
    li t0, 0                  # byte index
crc_byte:
    add t1, s0, t0
    lbu t2, 0(t1)             # data byte
    li t3, 0                  # bit
crc_bit:
    srl t4, t2, t3
    andi t4, t4, 1            # data bit
    xor t5, s1, t4
    andi t5, t5, 1            # carry
    srli s1, s1, 1
    beqz t5, no_poly
    li t6, 0xA001
    xor s1, s1, t6
no_poly:
    addi t3, t3, 1
    li t4, 8
    blt t3, t4, crc_bit
    addi t0, t0, 1
    li t4, BYTES
    blt t0, t4, crc_byte
    addi s2, s2, 1
    li t0, ITERS
    blt s2, t0, crc_iter

    la t0, result
    sd s1, 0(t0)
    li a0, 0
    li a7, 93
    ecall
"""


def _crc_reference() -> int:
    crc = 0
    data = [(i * i + i) & 255 for i in range(CRC_BYTES)]
    for _ in range(CRC_ITERS):
        for byte in data:
            crc = crc16_update(crc, byte, bits=8)
    return crc


# ---------------------------------------------------------------------------

def list_kernel() -> Workload:
    return Workload(name="coremark-list", source=_LIST_SRC,
                    reference=_list_reference, category="coremark")


def matrix_kernel() -> Workload:
    return Workload(name="coremark-matrix", source=_MATRIX_SRC,
                    reference=_matrix_reference, category="coremark")


def state_kernel() -> Workload:
    return Workload(name="coremark-state", source=_STATE_SRC,
                    reference=_state_reference, category="coremark")


def crc_kernel() -> Workload:
    return Workload(name="coremark-crc", source=_CRC_SRC,
                    reference=_crc_reference, category="coremark")


def coremark_suite() -> list[Workload]:
    """The four CoreMark algorithm classes."""
    return [list_kernel(), matrix_kernel(), state_kernel(), crc_kernel()]
