"""Workload framework: assembly kernels with Python reference models.

Every benchmark kernel is an assembly program plus a pure-Python
reference function computing the same checksum.  Tests run the kernel
on the functional emulator and compare the memory-resident result
against the reference, so the timing experiments are built on verified
binaries (the same discipline CoreMark's seed-verified checksums give
the paper's numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..asm import Program, assemble
from ..sim.emulator import Emulator

MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF


@dataclass
class Workload:
    """One benchmark kernel."""

    name: str
    source: str
    reference: Callable[[], int] | None = None
    result_symbol: str = "result"
    compress: bool = True
    category: str = "misc"
    _program: Program | None = field(default=None, repr=False)

    def program(self) -> Program:
        if self._program is None:
            self._program = assemble(self.source, compress=self.compress)
        return self._program

    def run_functional(self, max_steps: int = 20_000_000) -> tuple[int, int]:
        """Emulate; returns (exit_code, checksum-at-result-symbol)."""
        emulator = Emulator(self.program())
        emulator.run(max_steps)
        checksum = emulator.state.memory.load_int(
            self.program().symbol(self.result_symbol), 8)
        return emulator.exit_code or 0, checksum

    def verify(self) -> None:
        """Assert the kernel's checksum matches the Python reference."""
        if self.reference is None:
            return
        exit_code, checksum = self.run_functional()
        expected = self.reference()
        if exit_code != 0:
            raise AssertionError(
                f"{self.name}: kernel exited with {exit_code}")
        if checksum != expected:
            raise AssertionError(
                f"{self.name}: checksum {checksum:#x} != "
                f"reference {expected:#x}")


def crc16_update(crc: int, data: int, bits: int = 16) -> int:
    """The CoreMark-style CRC step (polynomial 0xA001, LSB-first)."""
    for i in range(bits):
        bit = (data >> i) & 1
        carry = (crc ^ bit) & 1
        crc >>= 1
        if carry:
            crc ^= 0xA001
    return crc & MASK16
