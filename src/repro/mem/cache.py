"""Set-associative cache model with MOSEI line states.

Used for the L1 instruction/data caches (32/64 KB) and the shared
inclusive L2 (256 KB - 8 MB, 8/16-way) described in section II of the
paper.  Lines carry a MOSEI coherence state so the same structure
backs both the single-core hierarchy and the SMP cluster (section VI).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field


class LineState(enum.Enum):
    """MOSEI coherence states (the paper's L2 protocol, section VI)."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


VALID_STATES = frozenset(
    {LineState.MODIFIED, LineState.OWNED, LineState.EXCLUSIVE,
     LineState.SHARED})


@dataclass
class CacheStats:
    """Hit/miss accounting, including prefetch usefulness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0      # demand hits on prefetched lines

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


@dataclass
class CacheLine:
    tag: int
    state: LineState = LineState.EXCLUSIVE
    dirty: bool = False
    prefetched: bool = False
    sharers: set[int] = field(default_factory=set)  # L2 snoop filter bits


class Cache:
    """An LRU set-associative cache.

    Addresses are split as ``| tag | set | offset |``.  The model tracks
    line presence and state only (data lives in the functional memory),
    which is exactly what the timing model needs.
    """

    def __init__(self, name: str, size: int, assoc: int,
                 line_size: int = 64):
        if size % (assoc * line_size):
            raise ValueError(
                f"{name}: size {size} not divisible by assoc*line_size")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size // (assoc * line_size)
        self._offset_bits = line_size.bit_length() - 1
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # -- address helpers ------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr >> self._offset_bits

    def _index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    # -- operations ------------------------------------------------------------

    def lookup(self, addr: int, update_lru: bool = True) -> CacheLine | None:
        """Probe for the line containing *addr*; None on miss."""
        laddr = self.line_addr(addr)
        cache_set = self._sets[self._index(laddr)]
        line = cache_set.get(laddr)
        if line is None or line.state is LineState.INVALID:
            return None
        if update_lru:
            cache_set.move_to_end(laddr)
        return line

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Demand access; returns True on hit and updates stats/state."""
        line = self.lookup(addr)
        if line is None:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        if line.prefetched:
            self.stats.prefetch_hits += 1
            line.prefetched = False
        if is_write:
            line.dirty = True
            if line.state in (LineState.EXCLUSIVE, LineState.SHARED,
                              LineState.OWNED):
                line.state = LineState.MODIFIED
        return True

    def fill(self, addr: int, state: LineState = LineState.EXCLUSIVE,
             prefetched: bool = False) -> CacheLine | None:
        """Insert the line for *addr*; returns the evicted line (if any)."""
        laddr = self.line_addr(addr)
        cache_set = self._sets[self._index(laddr)]
        victim: CacheLine | None = None
        if laddr in cache_set:
            line = cache_set[laddr]
            line.state = state
            line.prefetched = prefetched
            cache_set.move_to_end(laddr)
            return None
        if len(cache_set) >= self.assoc:
            _, victim = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
        cache_set[laddr] = CacheLine(tag=laddr, state=state,
                                     prefetched=prefetched)
        if prefetched:
            self.stats.prefetch_fills += 1
        return victim

    def invalidate(self, addr: int) -> CacheLine | None:
        """Drop the line containing *addr*; returns it if present."""
        laddr = self.line_addr(addr)
        cache_set = self._sets[self._index(laddr)]
        return cache_set.pop(laddr, None)

    def contains(self, addr: int) -> bool:
        return self.lookup(addr, update_lru=False) is not None

    def flush_all(self) -> int:
        """Invalidate everything; returns the number of dirty lines."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for line in cache_set.values() if line.dirty)
            cache_set.clear()
        return dirty

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self):
        """Iterate over all (line_addr, CacheLine) pairs."""
        for cache_set in self._sets:
            yield from cache_set.items()
