"""Set-associative cache model with MOSEI line states.

Used for the L1 instruction/data caches (32/64 KB) and the shared
inclusive L2 (256 KB - 8 MB, 8/16-way) described in section II of the
paper.  Lines carry a MOSEI coherence state so the same structure
backs both the single-core hierarchy and the SMP cluster (section VI).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field


class LineState(enum.Enum):
    """MOSEI coherence states (the paper's L2 protocol, section VI)."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


VALID_STATES = frozenset(
    {LineState.MODIFIED, LineState.OWNED, LineState.EXCLUSIVE,
     LineState.SHARED})


@dataclass
class CacheStats:
    """Hit/miss accounting, including prefetch usefulness and RAS events."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0      # demand hits on prefetched lines
    # RAS: ECC on the data array, parity on the tag array.
    ecc_corrected: int = 0      # single-bit data errors repaired in place
    ecc_uncorrectable: int = 0  # multi-bit data errors -> machine check
    parity_errors: int = 0      # tag parity hits -> line dropped, refetched
    ways_disabled: int = 0      # ways quarantined after repeated correctables

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0

    def counters(self) -> dict[str, int]:
        """Flat counter dict (the repro.obs metrics surface)."""
        return dict(vars(self))


@dataclass
class CacheLine:
    tag: int
    state: LineState = LineState.EXCLUSIVE
    dirty: bool = False
    prefetched: bool = False
    sharers: set[int] = field(default_factory=set)  # L2 snoop filter bits
    way: int = 0                # physical way this line occupies
    data_faults: int = 0        # flipped bits pending in the data array
    tag_fault: bool = False     # flipped bit pending in the tag array


class Cache:
    """An LRU set-associative cache.

    Addresses are split as ``| tag | set | offset |``.  The model tracks
    line presence and state only (data lives in the functional memory),
    which is exactly what the timing model needs.
    """

    #: correctable errors on one (set, way) before it is quarantined
    QUARANTINE_THRESHOLD = 3

    def __init__(self, name: str, size: int, assoc: int,
                 line_size: int = 64,
                 quarantine_threshold: int | None = None):
        if size % (assoc * line_size):
            raise ValueError(
                f"{name}: size {size} not divisible by assoc*line_size")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size // (assoc * line_size)
        self._offset_bits = line_size.bit_length() - 1
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()
        # RAS: per-(set, way) correctable-error history, quarantined ways,
        # and callbacks into the machine-check path.
        self.quarantine_threshold = (
            quarantine_threshold if quarantine_threshold is not None
            else self.QUARANTINE_THRESHOLD)
        self._corr_counts: dict[tuple[int, int], int] = {}
        self._disabled_ways: dict[int, set[int]] = {}
        # While True, every set's occupied ways are exactly {0..len-1}
        # (fills append the next way, evictions reuse the victim's), so
        # fill() can assign ways without scanning.  Any out-of-order
        # removal — invalidate, parity/ECC drop, quarantine — clears it.
        self._ways_dense = True
        self.on_corrected = None        # callable(addr, cache_name)
        self.on_uncorrectable = None    # callable(addr, cache_name)

    # -- address helpers ------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr >> self._offset_bits

    def _index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    # -- operations ------------------------------------------------------------

    def lookup(self, addr: int, update_lru: bool = True) -> CacheLine | None:
        """Probe for the line containing *addr*; None on miss.

        The probe is where the arrays are actually read, so pending
        ECC/parity faults resolve here: a tag parity error drops the
        line (refetch recovers it), a single data-bit error is corrected
        and counted, a multi-bit error escalates to a machine check.
        """
        laddr = self.line_addr(addr)
        index = self._index(laddr)
        cache_set = self._sets[index]
        line = cache_set.get(laddr)
        if line is None or line.state is LineState.INVALID:
            return None
        if line.tag_fault or line.data_faults:
            line = self._resolve_faults(addr, laddr, index, line)
            if line is None:
                return None
        if update_lru:
            cache_set.move_to_end(laddr)
        return line

    # -- RAS: ECC/parity resolution and fault injection hooks -----------------

    def _resolve_faults(self, addr: int, laddr: int, index: int,
                        line: CacheLine) -> CacheLine | None:
        """Apply SEC-DED/parity semantics to a faulted line being read."""
        cache_set = self._sets[index]
        if line.tag_fault:
            # Tag parity: the match cannot be trusted, so the line is
            # dropped and the access replays as a miss (clean recovery —
            # the data is refetched from the next level).
            self.stats.parity_errors += 1
            del cache_set[laddr]
            self._ways_dense = False
            return None
        if line.data_faults == 1:
            # SEC-DED corrects a single flipped data bit in place.
            self.stats.ecc_corrected += 1
            line.data_faults = 0
            if self.on_corrected is not None:
                self.on_corrected(addr, self.name)
            self._note_corrected(index, line.way)
            if line.way in self._disabled_ways.get(index, ()):
                return None     # correction triggered quarantine
            return line
        # Two or more flipped bits: detected but uncorrectable.
        self.stats.ecc_uncorrectable += 1
        del cache_set[laddr]
        self._ways_dense = False
        if self.on_uncorrectable is not None:
            self.on_uncorrectable(addr, self.name)
        return None

    def _note_corrected(self, index: int, way: int) -> None:
        """Track per-way correctable history; quarantine a weak way."""
        key = (index, way)
        count = self._corr_counts.get(key, 0) + 1
        self._corr_counts[key] = count
        disabled = self._disabled_ways.setdefault(index, set())
        if count >= self.quarantine_threshold \
                and len(disabled) < self.assoc - 1:
            disabled.add(way)
            self.stats.ways_disabled += 1
            self._ways_dense = False
            cache_set = self._sets[index]
            stale = [tag for tag, line in cache_set.items()
                     if line.way == way]
            for tag in stale:
                del cache_set[tag]

    def inject_data_fault(self, addr: int | None = None, bits: int = 1,
                          rng=None) -> int | None:
        """Flip *bits* bits in the data array of a resident line.

        Targets the line holding *addr*, or (with *rng*) a random
        resident line biased toward recently used entries.  Returns the
        faulted line address, or None when nothing is resident.
        """
        line = self._pick_line(addr, rng)
        if line is None:
            return None
        line.data_faults += bits
        return line.tag << self._offset_bits

    def inject_tag_fault(self, addr: int | None = None,
                         rng=None) -> int | None:
        """Flip a bit in the tag array of a resident line."""
        line = self._pick_line(addr, rng)
        if line is None:
            return None
        line.tag_fault = True
        return line.tag << self._offset_bits

    def _pick_line(self, addr: int | None, rng) -> CacheLine | None:
        if addr is not None:
            laddr = self.line_addr(addr)
            line = self._sets[self._index(laddr)].get(laddr)
            return None if line is None \
                or line.state is LineState.INVALID else line
        candidates = []
        for cache_set in self._sets:
            if cache_set:
                # MRU end of the per-set LRU order: the lines a running
                # workload is most likely to touch again.
                line = next(reversed(cache_set.values()))
                if line.state is not LineState.INVALID:
                    candidates.append(line)
        if not candidates:
            return None
        if rng is None:
            return candidates[0]
        return rng.choice(candidates)

    def scrub(self) -> dict[str, int]:
        """Background scrubber: sweep every line, resolving latent faults.

        Returns the delta of RAS events this sweep produced.
        """
        before = (self.stats.ecc_corrected, self.stats.ecc_uncorrectable,
                  self.stats.parity_errors)
        for index, cache_set in enumerate(self._sets):
            for laddr, line in list(cache_set.items()):
                if line.tag_fault or line.data_faults:
                    self._resolve_faults(laddr << self._offset_bits,
                                         laddr, index, line)
        return {
            "corrected": self.stats.ecc_corrected - before[0],
            "uncorrectable": self.stats.ecc_uncorrectable - before[1],
            "parity": self.stats.parity_errors - before[2],
        }

    def disabled_way_count(self) -> int:
        """Total quarantined ways across all sets."""
        return sum(len(ways) for ways in self._disabled_ways.values())

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Demand access; returns True on hit and updates stats/state."""
        # Inlined lookup(): this runs once per demand access at every
        # level, so the common clean-hit path avoids the extra call.
        laddr = addr >> self._offset_bits
        index = laddr % self.num_sets
        cache_set = self._sets[index]
        line = cache_set.get(laddr)
        if line is None or line.state is LineState.INVALID:
            self.stats.misses += 1
            return False
        if line.tag_fault or line.data_faults:
            line = self._resolve_faults(addr, laddr, index, line)
            if line is None:
                self.stats.misses += 1
                return False
        cache_set.move_to_end(laddr)
        self.stats.hits += 1
        if line.prefetched:
            self.stats.prefetch_hits += 1
            line.prefetched = False
        if is_write:
            line.dirty = True
            if line.state in (LineState.EXCLUSIVE, LineState.SHARED,
                              LineState.OWNED):
                line.state = LineState.MODIFIED
        return True

    def fill(self, addr: int, state: LineState = LineState.EXCLUSIVE,
             prefetched: bool = False) -> CacheLine | None:
        """Insert the line for *addr*; returns the evicted line (if any)."""
        laddr = self.line_addr(addr)
        index = self._index(laddr)
        cache_set = self._sets[index]
        victim: CacheLine | None = None
        if laddr in cache_set:
            line = cache_set[laddr]
            line.state = state
            line.prefetched = prefetched
            cache_set.move_to_end(laddr)
            return None
        disabled = self._disabled_ways.get(index, ())
        if len(cache_set) >= self.assoc - len(disabled):
            _, victim = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
        if victim is not None:
            way = victim.way
        elif self._ways_dense and not disabled:
            way = len(cache_set)
        else:
            used = {line.way for line in cache_set.values()}
            way = next((w for w in range(self.assoc)
                        if w not in used and w not in disabled), 0)
        cache_set[laddr] = CacheLine(tag=laddr, state=state,
                                     prefetched=prefetched, way=way)
        if prefetched:
            self.stats.prefetch_fills += 1
        return victim

    def invalidate(self, addr: int) -> CacheLine | None:
        """Drop the line containing *addr*; returns it if present."""
        laddr = self.line_addr(addr)
        cache_set = self._sets[self._index(laddr)]
        line = cache_set.pop(laddr, None)
        if line is not None:
            self._ways_dense = False
        return line

    def contains(self, addr: int) -> bool:
        return self.lookup(addr, update_lru=False) is not None

    def flush_all(self) -> int:
        """Invalidate everything; returns the number of dirty lines."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for line in cache_set.values() if line.dirty)
            cache_set.clear()
        if not self._disabled_ways:
            self._ways_dense = True      # empty sets are trivially dense
        return dirty

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self):
        """Iterate over all (line_addr, CacheLine) pairs."""
        for cache_set in self._sets:
            yield from cache_set.items()
