"""Fixed-latency DRAM model.

The paper's Fig. 21 testbed pins "memory access delay ... to about 200
CPU clock cycles (by specifying the bus delay and DDR delay)".  The
model exposes exactly that knob, plus a small bandwidth limiter so that
flooding the bus with prefetches has a cost.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramConfig:
    latency: int = 200          # CPU cycles from request to data (paper Fig. 21)
    bytes_per_cycle: int = 16   # bus bandwidth for the occupancy model


class Dram:
    """Latency/bandwidth model; data itself lives in functional memory."""

    def __init__(self, config: DramConfig | None = None):
        self.config = config if config is not None else DramConfig()
        self._busy_until = 0
        self.requests = 0
        self.busy_cycles = 0

    def request(self, cycle: int, size: int = 64) -> int:
        """Issue a request at *cycle*; returns the completion cycle."""
        self.requests += 1
        transfer = max(1, size // self.config.bytes_per_cycle)
        start = max(cycle, self._busy_until)
        self._busy_until = start + transfer
        self.busy_cycles += transfer
        return start + self.config.latency + transfer

    def counters(self) -> dict[str, int]:
        """Flat counter dict (the repro.obs metrics surface)."""
        return {"requests": self.requests, "busy_cycles": self.busy_cycles}

    def reset(self) -> None:
        self._busy_until = 0
        self.requests = 0
        self.busy_cycles = 0
