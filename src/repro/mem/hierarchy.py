"""The per-core memory hierarchy timing model.

Composes the L1I/L1D caches, the shared inclusive L2, the multi-size
TLBs, the multi-mode multi-stream prefetchers and the fixed-latency
DRAM into one object with two entry points:

* :meth:`MemoryHierarchy.access_data` — loads/stores from the LSU,
* :meth:`MemoryHierarchy.access_inst` — fetch-line requests from the IFU.

Both return a latency in cycles.  Prefetches are timeliness-modeled: an
in-flight prefetch has a ready-cycle, and a demand access that arrives
early pays only the remaining latency (this is what makes the Fig. 21
small-vs-large distance experiment behave like the paper's).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .cache import Cache, LineState
from .dram import Dram, DramConfig
from .prefetch import PrefetchConfig, StreamPrefetcher
from .tlb import Tlb, TlbConfig


@dataclass
class MemHierConfig:
    """Sizes/latencies for one core's hierarchy (paper Table I defaults)."""

    line_size: int = 64
    l1i_size: int = 64 << 10
    l1i_assoc: int = 4
    l1d_size: int = 64 << 10
    l1d_assoc: int = 4
    l2_size: int = 1 << 20
    l2_assoc: int = 16
    l1_latency: int = 1          # beyond the pipelined load-to-use stages
    l2_latency: int = 12
    dram: DramConfig = field(default_factory=DramConfig)
    l1_prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    l2_prefetch: PrefetchConfig = field(
        default_factory=lambda: PrefetchConfig(distance=8, max_depth=64))
    tlb: TlbConfig = field(default_factory=TlbConfig)
    tlb_prefetch: bool = True
    model_tlb: bool = True
    ptw_latency: int = 90        # 3 PTE loads, typically L2-resident tables
    mshrs: int = 4               # outstanding demand-load misses (MLP cap)


@dataclass
class HierarchyStats:
    loads: int = 0
    stores: int = 0
    inst_fetches: int = 0
    tlb_stall_cycles: int = 0
    l1d_miss_stall_cycles: int = 0

    def counters(self) -> dict[str, int]:
        """Flat counter dict (the repro.obs metrics surface)."""
        return dict(vars(self))


class MemoryHierarchy:
    """One core's view of the memory system."""

    def __init__(self, config: MemHierConfig | None = None,
                 l2: Cache | None = None, dram: Dram | None = None):
        self.config = config = config if config is not None else MemHierConfig()
        ls = config.line_size
        self.l1i = Cache("L1I", config.l1i_size, config.l1i_assoc, ls)
        self.l1d = Cache("L1D", config.l1d_size, config.l1d_assoc, ls)
        self.l2 = l2 if l2 is not None else Cache(
            "L2", config.l2_size, config.l2_assoc, ls)
        self.dram = dram if dram is not None else Dram(config.dram)
        self.tlb = Tlb(config.tlb)
        self.stats = HierarchyStats()
        self._line_shift = ls.bit_length() - 1
        self._pending_l1: dict[int, int] = {}   # line -> ready cycle
        self._pending_l2: dict[int, int] = {}
        self._mshr_heap: list[int] = []          # demand-miss completions

        # RAS: forward per-cache ECC events to whoever owns the hart
        # (the campaign/emulator wires these to the machine-check path).
        self.on_corrected = None        # callable(addr, source_name)
        self.on_uncorrectable = None    # callable(addr, source_name)
        for cache in (self.l1i, self.l1d, self.l2):
            cache.on_corrected = self._ras_corrected
            cache.on_uncorrectable = self._ras_uncorrectable

        tlb_fn = self._tlb_prefetch if (config.tlb_prefetch
                                        and config.model_tlb) else None
        self.l1_prefetcher = StreamPrefetcher(
            config.l1_prefetch, ls, self._issue_l1_prefetch, tlb_fn)
        self.l2_prefetcher = StreamPrefetcher(
            config.l2_prefetch, ls, self._issue_l2_prefetch, tlb_fn)

    # -- translation --------------------------------------------------------------

    def translate(self, vaddr: int, cycle: int) -> int:
        """TLB lookup; returns added latency (0 on uTLB hit)."""
        if not self.config.model_tlb:
            return 0
        latency, entry = self.tlb.translate(vaddr)
        if entry is None:
            latency += self.config.ptw_latency
            self.tlb.refill(vaddr)
        self.stats.tlb_stall_cycles += latency
        return latency

    # -- RAS ----------------------------------------------------------------------

    def _ras_corrected(self, addr: int, source: str) -> None:
        if self.on_corrected is not None:
            self.on_corrected(addr, source)

    def _ras_uncorrectable(self, addr: int, source: str) -> None:
        if self.on_uncorrectable is not None:
            self.on_uncorrectable(addr, source)

    def scrub(self) -> dict[str, dict[str, int]]:
        """Sweep every array for latent faults (end-of-run scrubber)."""
        report = {cache.name: cache.scrub()
                  for cache in (self.l1i, self.l1d, self.l2)}
        report["TLB"] = {"parity": self.tlb.scrub()}
        return report

    def ras_summary(self) -> dict[str, int]:
        """Aggregate RAS counters across all arrays."""
        caches = (self.l1i, self.l1d, self.l2)
        return {
            "ecc_corrected": sum(c.stats.ecc_corrected for c in caches),
            "ecc_uncorrectable": sum(
                c.stats.ecc_uncorrectable for c in caches),
            "parity_errors": sum(c.stats.parity_errors for c in caches)
            + self.tlb.stats.parity_errors,
            "ways_disabled": sum(c.disabled_way_count() for c in caches),
        }

    def _tlb_prefetch(self, vpage: int) -> None:
        vaddr = vpage << 12
        if not self.tlb.contains(vaddr):
            self.tlb.refill(vaddr, prefetched=True)

    # -- demand paths --------------------------------------------------------------

    def access_data(self, vaddr: int, cycle: int, is_write: bool = False,
                    size: int = 8) -> int:
        """One LSU access; returns total latency in cycles."""
        stats = self.stats
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        shift = self._line_shift
        latency = self.translate(vaddr, cycle)
        first_line = vaddr >> shift
        last_line = (vaddr + max(size, 1) - 1) >> shift
        latency += self._access_line(vaddr, cycle + latency, is_write)
        if last_line != first_line:  # line-crossing access: second lookup
            next_addr = (first_line + 1) << shift
            latency += 1 + self._access_line(next_addr, cycle + latency,
                                             is_write)
        self.l1_prefetcher.observe(vaddr, cycle)
        return latency

    def _access_line(self, addr: int, cycle: int, is_write: bool) -> int:
        cfg = self.config
        if self.l1d.access(addr, is_write):
            return cfg.l1_latency
        # L1 miss: maybe an in-flight prefetch covers it.
        line = self.l1d.line_addr(addr)
        stall = self._consume_pending(self._pending_l1, line, cycle)
        if stall is not None:
            self.l1d.fill(addr, LineState.MODIFIED if is_write
                          else LineState.EXCLUSIVE, prefetched=True)
            self.l1d.stats.prefetch_hits += 1
            self.stats.l1d_miss_stall_cycles += stall
            return cfg.l1_latency + stall
        # Demand-load misses contend for MSHRs: the LSU can only track
        # a handful of outstanding misses, capping memory-level
        # parallelism (stores drain through the write buffer instead).
        mshr_wait = 0 if is_write else self._mshr_wait(cycle)
        start = cycle + mshr_wait
        self.l2_prefetcher.observe(addr, start)
        downstream = self._access_l2(addr, start, is_write)
        latency = cfg.l1_latency + mshr_wait + downstream
        if not is_write:
            heapq.heappush(self._mshr_heap, start + downstream)
        self.l1d.fill(addr, LineState.MODIFIED if is_write
                      else LineState.EXCLUSIVE)
        self.stats.l1d_miss_stall_cycles += latency - cfg.l1_latency
        return latency

    def _mshr_wait(self, cycle: int) -> int:
        heap = self._mshr_heap
        while heap and heap[0] <= cycle:
            heapq.heappop(heap)
        if len(heap) < self.config.mshrs:
            return 0
        earliest = heapq.heappop(heap)
        return max(0, earliest - cycle)

    def _access_l2(self, addr: int, cycle: int, is_write: bool) -> int:
        cfg = self.config
        if self.l2.access(addr, is_write):
            return cfg.l2_latency
        line = self.l2.line_addr(addr)
        stall = self._consume_pending(self._pending_l2, line, cycle)
        if stall is not None:
            self.l2.fill(addr, prefetched=True)
            self.l2.stats.prefetch_hits += 1
            return cfg.l2_latency + stall
        ready = self.dram.request(cycle, cfg.line_size)
        self.l2.fill(addr)
        return cfg.l2_latency + (ready - cycle)

    def access_inst(self, vaddr: int, cycle: int) -> int:
        """IFU line fetch; returns latency (0 = same-cycle L1I hit)."""
        self.stats.inst_fetches += 1
        if self.l1i.access(vaddr):
            return 0
        if self.l2.access(vaddr):
            self.l1i.fill(vaddr, LineState.SHARED)
            return self.config.l2_latency
        ready = self.dram.request(cycle, self.config.line_size)
        self.l2.fill(vaddr)
        self.l1i.fill(vaddr, LineState.SHARED)
        return self.config.l2_latency + (ready - cycle)

    # -- prefetch plumbing ------------------------------------------------------------

    @staticmethod
    def _consume_pending(pending: dict[int, int], line: int,
                         cycle: int) -> int | None:
        """Pop an in-flight prefetch; returns the residual stall or None."""
        ready = pending.pop(line, None)
        if ready is None:
            return None
        return max(0, ready - cycle)

    def _issue_l1_prefetch(self, addr: int, cycle: int) -> None:
        line = self.l1d.line_addr(addr)
        if self.l1d.contains(addr) or line in self._pending_l1:
            return
        if self.l2.contains(addr):
            ready = cycle + self.config.l2_latency
        else:
            # The L2 prefetcher trains on all L2-reaching traffic,
            # including L1 prefetch fills — that is what lets it run a
            # full prefetch distance ahead of the L1 engine.
            self.l2_prefetcher.observe(addr, cycle)
            l2_line = self.l2.line_addr(addr)
            pending = self._pending_l2.get(l2_line)
            if pending is not None:
                ready = pending
            else:
                ready = self.dram.request(cycle, self.config.line_size)
            self.l2.fill(addr, prefetched=True)
        self._pending_l1[line] = ready

    def _issue_l2_prefetch(self, addr: int, cycle: int) -> None:
        line = self.l2.line_addr(addr)
        if self.l2.contains(addr) or line in self._pending_l2:
            return
        ready = self.dram.request(cycle, self.config.line_size)
        self._pending_l2[line] = ready

    def drain_pending(self) -> None:
        """Materialize all in-flight prefetches (end-of-run cleanup)."""
        for line in list(self._pending_l1):
            self.l1d.fill(line << (self.config.line_size.bit_length() - 1),
                          prefetched=True)
        for line in list(self._pending_l2):
            self.l2.fill(line << (self.config.line_size.bit_length() - 1),
                         prefetched=True)
        self._pending_l1.clear()
        self._pending_l2.clear()
