"""Physical Memory Protection (paper section II: "a standard 8-16
region PMP").

Implements the RISC-V privileged-spec PMP semantics: up to 16 regions
with OFF/TOR/NA4/NAPOT address matching, R/W/X permission bits, region
locking, static priority (lowest-numbered matching region wins), and
the M-mode default-allow / S-U-mode default-deny rule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..isa.csr import PrivMode


class PmpMatch(enum.IntEnum):
    OFF = 0
    TOR = 1     # top-of-range: [previous.addr, this.addr)
    NA4 = 2     # naturally aligned 4 bytes
    NAPOT = 3   # naturally aligned power-of-two


class AccessType(enum.Enum):
    READ = "r"
    WRITE = "w"
    EXECUTE = "x"


@dataclass
class PmpEntry:
    """One pmpcfg/pmpaddr pair (decoded)."""

    match: PmpMatch = PmpMatch.OFF
    addr: int = 0               # pmpaddr value, i.e. address >> 2
    readable: bool = False
    writable: bool = False
    executable: bool = False
    locked: bool = False

    def permits(self, access: AccessType) -> bool:
        return {AccessType.READ: self.readable,
                AccessType.WRITE: self.writable,
                AccessType.EXECUTE: self.executable}[access]

    def range_for(self, previous_addr: int) -> tuple[int, int]:
        """Byte range [lo, hi) this entry covers."""
        if self.match == PmpMatch.TOR:
            return previous_addr << 2, self.addr << 2
        if self.match == PmpMatch.NA4:
            return self.addr << 2, (self.addr << 2) + 4
        if self.match == PmpMatch.NAPOT:
            # Trailing ones in pmpaddr encode the region size.
            trailing = 0
            value = self.addr
            while value & 1:
                trailing += 1
                value >>= 1
            size = 8 << trailing
            base = (self.addr & ~((1 << trailing) - 1)) << 2
            return base, base + size
        return 0, 0


class PmpError(Exception):
    """Raised when configuring a locked entry."""


class Pmp:
    """The PMP unit: 8 or 16 regions (Table I-adjacent configurability)."""

    def __init__(self, regions: int = 16):
        if regions not in (8, 16):
            raise ValueError("XT-910 supports 8 or 16 PMP regions")
        self.regions = regions
        self.entries = [PmpEntry() for _ in range(regions)]
        self.checks = 0
        self.denials = 0

    # -- configuration ------------------------------------------------------------

    def configure(self, index: int, match: PmpMatch, addr: int,
                  readable: bool = False, writable: bool = False,
                  executable: bool = False, locked: bool = False) -> None:
        """Program region *index*; addr is the pmpaddr value (addr >> 2)."""
        entry = self.entries[index]
        if entry.locked:
            raise PmpError(f"PMP entry {index} is locked")
        # TOR's base comes from the previous entry; locking it too is
        # the spec's rule, approximated by rejecting when prev is locked
        # ... (hardware treats prev.addr as locked; we keep it simple).
        self.entries[index] = PmpEntry(
            match=match, addr=addr, readable=readable, writable=writable,
            executable=executable, locked=locked)

    @staticmethod
    def napot_addr(base: int, size: int) -> int:
        """Encode a naturally-aligned power-of-two region as pmpaddr."""
        if size < 8 or size & (size - 1):
            raise ValueError("NAPOT size must be a power of two >= 8")
        if base % size:
            raise ValueError("NAPOT base must be size-aligned")
        return (base >> 2) | ((size >> 3) - 1)

    # -- checking ------------------------------------------------------------------

    def check(self, addr: int, size: int, access: AccessType,
              priv: PrivMode) -> bool:
        """True if the access is permitted."""
        self.checks += 1
        previous_addr = 0
        for entry in self.entries:
            if entry.match != PmpMatch.OFF:
                lo, hi = entry.range_for(previous_addr)
                if lo <= addr and addr + size <= hi:
                    # Lowest-numbered matching entry decides.
                    if priv == PrivMode.MACHINE and not entry.locked:
                        return True
                    allowed = entry.permits(access)
                    if not allowed:
                        self.denials += 1
                    return allowed
                if lo < addr + size and addr < hi:
                    # Partial overlap: the access fails outright.
                    self.denials += 1
                    return False
            previous_addr = entry.addr
        # No match: M-mode defaults to allow, S/U to deny (when any
        # entry is active).
        if priv == PrivMode.MACHINE:
            return True
        if all(e.match == PmpMatch.OFF for e in self.entries):
            return True
        self.denials += 1
        return False
