"""Multi-size multi-level TLBs (paper section V.D) with 16-bit ASIDs.

The XT-910 translation path:

* a fully-associative micro-TLB probed first (every entry carries a
  page-size property, so one probe covers 4K/2M/1G entries),
* a 4-way set-associative joint TLB (jTLB) probed per page size in the
  order 4K -> 2M -> 1G, each probe costing one extra cycle,
* a page-table walk on full miss.

ASIDs are 16 bits wide (section V.E): the TLB only needs flushing when
the ASID space wraps, which the paper credits with ~10x fewer flushes
on context-switch-heavy workloads.  ``asid_bits`` is a knob so the
harness can reproduce that comparison.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

PAGE_SIZES = (4 << 10, 2 << 20, 1 << 30)  # 4K, 2M, 1G


@dataclass
class TlbConfig:
    utlb_entries: int = 32
    jtlb_entries: int = 1024
    jtlb_ways: int = 4
    asid_bits: int = 16
    utlb_latency: int = 0       # folded into the load-to-use latency
    jtlb_probe_latency: int = 1  # per page-size probe


@dataclass
class TlbStats:
    utlb_hits: int = 0
    jtlb_hits: int = 0
    misses: int = 0             # full misses -> page-table walk
    flushes: int = 0
    prefetch_fills: int = 0
    parity_errors: int = 0      # poisoned entries detected and purged

    @property
    def accesses(self) -> int:
        return self.utlb_hits + self.jtlb_hits + self.misses

    def counters(self) -> dict[str, int]:
        """Flat counter dict (the repro.obs metrics surface)."""
        return dict(vars(self))


@dataclass
class TlbEntry:
    vpn: int                    # virtual page number (in units of its size)
    page_size: int
    asid: int
    ppn: int = 0
    global_page: bool = False
    poisoned: bool = False      # injected parity fault pending detection


class _SetAssocTlb:
    """The jTLB: 4-way set associative, one index per page size."""

    def __init__(self, entries: int, ways: int):
        self.ways = ways
        self.sets = max(1, entries // ways)
        self._data: list[OrderedDict[tuple, TlbEntry]] = [
            OrderedDict() for _ in range(self.sets)]

    def _index(self, vpn: int) -> int:
        return vpn % self.sets

    def lookup(self, vpn: int, page_size: int, asid: int) -> TlbEntry | None:
        tlb_set = self._data[self._index(vpn)]
        key = (vpn, page_size)
        entry = tlb_set.get(key)
        if entry is not None and (entry.asid == asid or entry.global_page):
            tlb_set.move_to_end(key)
            return entry
        return None

    def insert(self, entry: TlbEntry) -> None:
        tlb_set = self._data[self._index(entry.vpn)]
        key = (entry.vpn, entry.page_size)
        if key in tlb_set:
            tlb_set.pop(key)
        elif len(tlb_set) >= self.ways:
            tlb_set.popitem(last=False)
        tlb_set[key] = entry

    def flush(self) -> None:
        for tlb_set in self._data:
            tlb_set.clear()

    def remove(self, entry: TlbEntry) -> None:
        """Drop one entry (parity purge)."""
        tlb_set = self._data[self._index(entry.vpn)]
        tlb_set.pop((entry.vpn, entry.page_size), None)

    def entries(self):
        for tlb_set in self._data:
            yield from tlb_set.values()

    def flush_asid(self, asid: int) -> None:
        for tlb_set in self._data:
            stale = [k for k, e in tlb_set.items()
                     if e.asid == asid and not e.global_page]
            for key in stale:
                del tlb_set[key]


class Tlb:
    """The two-level multi-size TLB with ASID management."""

    def __init__(self, config: TlbConfig | None = None):
        self.config = config if config is not None else TlbConfig()
        self._utlb: OrderedDict[tuple, TlbEntry] = OrderedDict()
        self._jtlb = _SetAssocTlb(self.config.jtlb_entries,
                                  self.config.jtlb_ways)
        self.stats = TlbStats()
        self.asid = 1
        self._next_asid = 2
        # Count of uTLB entries that the direct-probe fast path cannot
        # represent (non-4K pages or global pages).  While zero — the
        # common case, since the walk model installs 4K private pages —
        # a covering entry is exactly the one under key
        # (vaddr >> 12, 4096, asid), so translate() probes the dict once
        # instead of scanning the whole fully-associative array.
        self._utlb_nonstd = 0

    # -- translation ---------------------------------------------------------------

    def translate(self, vaddr: int) -> tuple[int, TlbEntry | None]:
        """Probe the TLBs for *vaddr*.

        Returns ``(latency, entry)``; ``entry`` is None on a full miss
        (the caller runs the page-table walk and calls :meth:`refill`).
        """
        # uTLB: fully associative, every entry knows its page size.
        if not self._utlb_nonstd:
            # All-4K/private array: direct probe (see __init__).
            key = (vaddr >> 12, 4096, self.asid)
            entry = self._utlb.get(key)
            if entry is not None:
                if entry.poisoned:
                    self._purge_poisoned(entry, key)
                else:
                    self._utlb.move_to_end(key)
                    self.stats.utlb_hits += 1
                    return self.config.utlb_latency, entry
        else:
            for key, entry in list(self._utlb.items()):
                if self._covers(entry, vaddr):
                    if entry.poisoned:
                        self._purge_poisoned(entry, key)
                        continue  # parity caught it; fall through to jTLB
                    self._utlb.move_to_end(key)
                    self.stats.utlb_hits += 1
                    return self.config.utlb_latency, entry
        # jTLB: probe 4K, then 2M, then 1G indexes (paper Fig. 12).
        latency = self.config.utlb_latency
        for page_size in PAGE_SIZES:
            latency += self.config.jtlb_probe_latency
            vpn = vaddr // page_size
            entry = self._jtlb.lookup(vpn, page_size, self.asid)
            if entry is not None:
                if entry.poisoned:
                    self._purge_poisoned(entry)
                    continue     # treat as a miss at this page size
                self.stats.jtlb_hits += 1
                self._utlb_fill(entry)   # refill micro-TLB on page hit
                return latency, entry
        self.stats.misses += 1
        return latency, None

    def _purge_poisoned(self, entry: TlbEntry,
                        utlb_key: tuple | None = None) -> None:
        """Parity detected a corrupted entry: purge it everywhere.

        The next translate misses and the page-table walk reinstalls a
        clean entry — detection plus transparent recovery.
        """
        self.stats.parity_errors += 1
        entry.poisoned = False   # counted once, even if aliased in both
        if utlb_key is None:
            utlb_key = (entry.vpn, entry.page_size, entry.asid)
        popped = self._utlb.pop(utlb_key, None)
        if popped is not None and (popped.page_size != 4096
                                   or popped.global_page):
            self._utlb_nonstd -= 1
        self._jtlb.remove(entry)

    def _covers(self, entry: TlbEntry, vaddr: int) -> bool:
        if entry.asid != self.asid and not entry.global_page:
            return False
        return (vaddr // entry.page_size) == entry.vpn

    # -- fills ------------------------------------------------------------------------

    def refill(self, vaddr: int, page_size: int = 4096, ppn: int = 0,
               global_page: bool = False,
               prefetched: bool = False) -> TlbEntry:
        """Install a translation after a walk (or a TLB prefetch)."""
        entry = TlbEntry(vpn=vaddr // page_size, page_size=page_size,
                         asid=self.asid, ppn=ppn, global_page=global_page)
        self._jtlb.insert(entry)
        self._utlb_fill(entry)
        if prefetched:
            self.stats.prefetch_fills += 1
        return entry

    def _utlb_fill(self, entry: TlbEntry) -> None:
        key = (entry.vpn, entry.page_size, entry.asid)
        if key in self._utlb:
            self._utlb.move_to_end(key)
            return
        if len(self._utlb) >= self.config.utlb_entries:
            _, evicted = self._utlb.popitem(last=False)
            if evicted.page_size != 4096 or evicted.global_page:
                self._utlb_nonstd -= 1
        self._utlb[key] = entry
        if entry.page_size != 4096 or entry.global_page:
            self._utlb_nonstd += 1

    def contains(self, vaddr: int) -> bool:
        if any(self._covers(e, vaddr) and not e.poisoned
               for e in self._utlb.values()):
            return True
        for ps in PAGE_SIZES:
            entry = self._jtlb.lookup(vaddr // ps, ps, self.asid)
            if entry is not None and not entry.poisoned:
                return True
        return False

    # -- RAS: fault injection and scrubbing -------------------------------------------

    def inject_fault(self, rng=None, vaddr: int | None = None) -> bool:
        """Poison one cached translation (a parity fault in the array).

        Picks the entry covering *vaddr*, or (with *rng*) a random
        resident entry.  Returns False when nothing is resident.
        """
        if vaddr is not None:
            for entry in self._utlb.values():
                if self._covers(entry, vaddr):
                    entry.poisoned = True
                    return True
            for ps in PAGE_SIZES:
                entry = self._jtlb.lookup(vaddr // ps, ps, self.asid)
                if entry is not None:
                    entry.poisoned = True
                    return True
            return False
        candidates = list(self._utlb.values()) or list(self._jtlb.entries())
        if not candidates:
            return False
        entry = rng.choice(candidates) if rng is not None else candidates[-1]
        entry.poisoned = True
        return True

    def scrub(self) -> int:
        """Purge every latent poisoned entry; returns how many were found."""
        found = 0
        for entry in [e for e in self._utlb.values() if e.poisoned]:
            self._purge_poisoned(entry)
            found += 1
        for entry in [e for e in self._jtlb.entries() if e.poisoned]:
            self._purge_poisoned(entry)
            found += 1
        return found

    # -- ASID / flush management (section V.E) ---------------------------------------

    def flush(self) -> None:
        self._utlb.clear()
        self._utlb_nonstd = 0
        self._jtlb.flush()
        self.stats.flushes += 1

    def flush_asid(self, asid: int) -> None:
        stale = [k for k, e in self._utlb.items()
                 if e.asid == asid and not e.global_page]
        for key in stale:
            if self._utlb[key].page_size != 4096 \
                    or self._utlb[key].global_page:
                self._utlb_nonstd -= 1
            del self._utlb[key]
        self._jtlb.flush_asid(asid)

    def context_switch(self) -> bool:
        """Switch to a fresh ASID; returns True if a flush was required.

        When the ASID counter wraps (16-bit space by default) every
        cached translation becomes ambiguous and the whole TLB must be
        flushed — the event the wide ASID makes ~10x rarer.
        """
        limit = 1 << self.config.asid_bits
        self.asid = self._next_asid
        self._next_asid += 1
        if self._next_asid >= limit:
            self._next_asid = 1
            self.flush()
            return True
        return False
