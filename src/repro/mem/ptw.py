"""SV39 page tables and the hardware page-table walker (section V.E).

The XT-910 MMU is SV39 with 3-level tables where *each* level may be a
leaf, giving 4 KiB, 2 MiB and 1 GiB pages — the Linux huge-page support
the paper calls out.  ``PageTableBuilder`` constructs real in-memory
SV39 tables and ``PageTableWalker`` walks them, so the walker is tested
against tables a (modeled) OS would build.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.memory import Memory

PTE_V = 1 << 0
PTE_R = 1 << 1
PTE_W = 1 << 2
PTE_X = 1 << 3
PTE_U = 1 << 4
PTE_G = 1 << 5
PTE_A = 1 << 6
PTE_D = 1 << 7

LEVELS = 3
VPN_BITS = 9
PTE_SIZE = 8
PAGE_SHIFT = 12
LEVEL_SHIFTS = (30, 21, 12)       # 1G, 2M, 4K
LEVEL_SIZES = (1 << 30, 1 << 21, 1 << 12)


class PageFault(Exception):
    """Raised by the walker for invalid or misaligned mappings."""

    def __init__(self, vaddr: int, reason: str):
        super().__init__(f"page fault at {vaddr:#x}: {reason}")
        self.vaddr = vaddr
        self.reason = reason


@dataclass
class Translation:
    vaddr: int
    paddr: int
    page_size: int
    flags: int
    levels_walked: int


def _vpn(vaddr: int, level: int) -> int:
    return (vaddr >> LEVEL_SHIFTS[level]) & ((1 << VPN_BITS) - 1)


class PageTableBuilder:
    """Builds SV39 tables in a :class:`Memory` (the OS's job)."""

    def __init__(self, memory: Memory, table_base: int = 0x8000_0000):
        self.memory = memory
        self.root = table_base
        self._next_table = table_base + 0x1000

    def _alloc_table(self) -> int:
        addr = self._next_table
        self._next_table += 0x1000
        return addr

    def map_page(self, vaddr: int, paddr: int, page_size: int = 4096,
                 flags: int = PTE_R | PTE_W | PTE_X) -> None:
        """Install a mapping; page_size selects the leaf level."""
        if page_size not in LEVEL_SIZES:
            raise ValueError(f"unsupported page size {page_size}")
        if vaddr % page_size or paddr % page_size:
            raise ValueError("mapping not aligned to its page size")
        leaf_level = LEVEL_SIZES.index(page_size)
        table = self.root
        for level in range(leaf_level):
            pte_addr = table + _vpn(vaddr, level) * PTE_SIZE
            pte = self.memory.load_int(pte_addr, 8)
            if pte & PTE_V:
                table = (pte >> 10) << PAGE_SHIFT
            else:
                new_table = self._alloc_table()
                self.memory.store_int(
                    pte_addr, ((new_table >> PAGE_SHIFT) << 10) | PTE_V, 8)
                table = new_table
        pte_addr = table + _vpn(vaddr, leaf_level) * PTE_SIZE
        pte = ((paddr >> PAGE_SHIFT) << 10) | flags | PTE_V | PTE_A | PTE_D
        self.memory.store_int(pte_addr, pte, 8)

    def identity_map(self, start: int, size: int,
                     page_size: int = 4096) -> None:
        """Map [start, start+size) to itself."""
        addr = start - (start % page_size)
        end = start + size
        while addr < end:
            self.map_page(addr, addr, page_size)
            addr += page_size


class PageTableWalker:
    """The hardware walker: up to 3 sequential PTE loads."""

    def __init__(self, memory: Memory, root: int):
        self.memory = memory
        self.root = root
        self.walks = 0
        self.pte_loads = 0

    def walk(self, vaddr: int) -> Translation:
        self.walks += 1
        table = self.root
        for level in range(LEVELS):
            pte_addr = table + _vpn(vaddr, level) * PTE_SIZE
            pte = self.memory.load_int(pte_addr, 8)
            self.pte_loads += 1
            if not pte & PTE_V:
                raise PageFault(vaddr, f"invalid PTE at level {level}")
            if pte & (PTE_R | PTE_X):  # leaf (possibly a huge page)
                page_size = LEVEL_SIZES[level]
                ppn_base = (pte >> 10) << PAGE_SHIFT
                if ppn_base % page_size:
                    raise PageFault(vaddr, "misaligned huge page")
                offset = vaddr % page_size
                return Translation(
                    vaddr=vaddr, paddr=ppn_base + offset,
                    page_size=page_size, flags=pte & 0xFF,
                    levels_walked=level + 1)
            table = (pte >> 10) << PAGE_SHIFT
        raise PageFault(vaddr, "no leaf PTE after 3 levels")
