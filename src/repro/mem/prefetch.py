"""Multi-mode multi-stream data prefetch (paper section V.C).

Two modes, exactly as described:

* **global** — one stream detector for simple, continuous access
  patterns; supports any stride; prefetch depth up to 64 cache lines.
* **multi** — up to 8 concurrent streams with independent strides;
  depth up to 32 lines each.

The prefetch operation follows the paper's three steps: (1) stride
calculation from the load-address stream, (2) prefetch control — a
confidence counter per stream decides when to start, stop, or abandon
the policy, and the *distance* knob (how far ahead of the demand stream
to run) is the "small/large distance" configuration of Fig. 21, and
(3) execution — issuing line fills toward the target cache level.

Cross-page behaviour: prefetches that step into a new virtual page
request the translation ahead of time when TLB prefetch is enabled;
with TLB prefetch off the stream stops at the page boundary and must
wait for a demand miss to restart (the ~2.4% loss of Fig. 21 scenario e).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

PAGE_SHIFT = 12


@dataclass
class PrefetchConfig:
    """One prefetch engine's knobs (the Fig. 21 scenario switches)."""

    enabled: bool = True
    mode: str = "multi"             # 'global' or 'multi'
    streams: int = 8                # ignored in global mode
    max_depth: int = 32             # 64 for global mode per the paper
    distance: int = 4               # lines ahead of demand ("small"/"large")
    confidence_threshold: int = 2
    cross_page: bool = True         # virtual-address cross-page prefetch

    @classmethod
    def global_mode(cls, distance: int = 8, **kw) -> "PrefetchConfig":
        return cls(mode="global", streams=1, max_depth=64,
                   distance=distance, **kw)

    @classmethod
    def disabled(cls) -> "PrefetchConfig":
        return cls(enabled=False)


@dataclass
class _Stream:
    last_addr: int
    stride: int = 0
    confidence: int = 0
    next_line: int = 0              # next line address to prefetch
    last_used: int = 0


@dataclass
class PrefetchStats:
    issued: int = 0
    dropped_page_boundary: int = 0
    streams_allocated: int = 0
    streams_abandoned: int = 0
    tlb_prefetches: int = 0


class StreamPrefetcher:
    """Stride/stream prefetcher attached to one cache level.

    ``issue_fn(line_addr, cycle)`` performs the actual fill;
    ``tlb_prefetch_fn(vpage)`` warms the TLB when crossing pages (None
    disables TLB prefetching — Fig. 21 scenarios b/e).
    """

    def __init__(self, config: PrefetchConfig, line_size: int,
                 issue_fn: Callable[[int, int], None],
                 tlb_prefetch_fn: Callable[[int], None] | None = None):
        self.config = config
        self.line_size = line_size
        self._line_shift = line_size.bit_length() - 1
        self.issue_fn = issue_fn
        self.tlb_prefetch_fn = tlb_prefetch_fn
        self._streams: dict[int, _Stream] = {}
        self._next_key = 1
        self.stats = PrefetchStats()

    # -- demand-stream observation ------------------------------------------------

    def observe(self, addr: int, cycle: int) -> None:
        """Feed one demand access; may issue prefetches."""
        if not self.config.enabled:
            return
        stream = self._match_stream(addr, cycle)
        if stream is None:
            return
        if stream.confidence < self.config.confidence_threshold:
            return
        self._run_ahead(stream, addr, cycle)

    # -- stride calculation (step 1) -----------------------------------------------

    def _match_stream(self, addr: int, cycle: int) -> _Stream | None:
        stream = self._find_stream(addr)
        if stream is None:
            return self._allocate(addr, cycle)
        stride = addr - stream.last_addr
        if stride == 0:
            stream.last_used = cycle
            return stream
        if stride == stream.stride:
            stream.confidence = min(stream.confidence + 1, 7)
        else:
            # Prefetch control: evaluate whether to modify or abandon.
            stream.confidence -= 1
            if stream.confidence <= 0:
                stream.stride = stride
                stream.confidence = 1
                stream.next_line = self._line(addr)
                self.stats.streams_abandoned += 1
        stream.last_addr = addr
        stream.last_used = cycle
        return stream

    # Proximity window for stream ownership: an access trains the
    # stream whose last address is nearest, within this many bytes.
    _MATCH_WINDOW = 1024

    def _find_stream(self, addr: int) -> _Stream | None:
        """Proximity matching: the nearest stream owns the access."""
        if self.config.mode == "global":
            return self._streams.get(0)
        best: _Stream | None = None
        best_distance = self._MATCH_WINDOW + 1
        for stream in self._streams.values():
            distance = abs(addr - stream.last_addr)
            if stream.stride:
                distance = min(distance,
                               abs(addr - (stream.last_addr + stream.stride)))
            if distance < best_distance:
                best = stream
                best_distance = distance
        return best

    def _allocate(self, addr: int, cycle: int) -> _Stream:
        capacity = 1 if self.config.mode == "global" \
            else max(self.config.streams, 1)
        if len(self._streams) >= capacity:
            lru_key = min(self._streams,
                          key=lambda k: self._streams[k].last_used)
            del self._streams[lru_key]
        stream = _Stream(last_addr=addr, next_line=self._line(addr) + 1,
                         last_used=cycle)
        self._streams[self._next_key] = stream
        self._next_key += 1
        if self.config.mode == "global":
            self._streams = {0: stream}
        self.stats.streams_allocated += 1
        return stream

    # -- execution (step 3) ----------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr >> self._line_shift

    def _run_ahead(self, stream: _Stream, addr: int, cycle: int) -> None:
        if stream.stride == 0:
            return
        stride_lines = max(1, abs(stream.stride) >> self._line_shift) \
            if abs(stream.stride) >= self.line_size else 1
        direction = 1 if stream.stride > 0 else -1
        current_line = self._line(addr)
        horizon = current_line + direction * self.config.distance * stride_lines
        depth_limit = current_line + direction * self.config.max_depth
        if direction > 0:
            horizon = min(horizon, depth_limit)
        else:
            horizon = max(horizon, depth_limit)
        # Restart the run-ahead pointer if the demand stream jumped.
        if direction > 0 and stream.next_line <= current_line:
            stream.next_line = current_line + 1
        if direction < 0 and stream.next_line >= current_line:
            stream.next_line = current_line - 1
        issued = 0
        while (issued < 8 and
               (stream.next_line <= horizon if direction > 0
                else stream.next_line >= horizon)):
            target_addr = stream.next_line << self._line_shift
            if not self._check_page(addr, target_addr):
                self.stats.dropped_page_boundary += 1
                return  # stall at page boundary until demand restarts us
            self.issue_fn(target_addr, cycle)
            self.stats.issued += 1
            stream.next_line += direction * stride_lines
            issued += 1

    def _check_page(self, demand_addr: int, target_addr: int) -> bool:
        """Page-boundary policy: True if the prefetch may proceed."""
        if (demand_addr >> PAGE_SHIFT) == (target_addr >> PAGE_SHIFT):
            return True
        if not self.config.cross_page:
            return False
        if self.tlb_prefetch_fn is not None:
            # Automatically request translation of the next virtual page.
            self.tlb_prefetch_fn(target_addr >> PAGE_SHIFT)
            self.stats.tlb_prefetches += 1
            return True
        # Cross-page allowed but no TLB prefetch: the prefetch itself can
        # proceed only if the mapping is already present; we model this
        # as a stop at the boundary (demand miss will restart the stream).
        return False
