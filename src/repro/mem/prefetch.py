"""Multi-mode multi-stream data prefetch (paper section V.C).

Two modes, exactly as described:

* **global** — one stream detector for simple, continuous access
  patterns; supports any stride; prefetch depth up to 64 cache lines.
* **multi** — up to 8 concurrent streams with independent strides;
  depth up to 32 lines each.

The prefetch operation follows the paper's three steps: (1) stride
calculation from the load-address stream, (2) prefetch control — a
confidence counter per stream decides when to start, stop, or abandon
the policy, and the *distance* knob (how far ahead of the demand stream
to run) is the "small/large distance" configuration of Fig. 21, and
(3) execution — issuing line fills toward the target cache level.

Cross-page behaviour: prefetches that step into a new virtual page
request the translation ahead of time when TLB prefetch is enabled;
with TLB prefetch off the stream stops at the page boundary and must
wait for a demand miss to restart (the ~2.4% loss of Fig. 21 scenario e).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

PAGE_SHIFT = 12


@dataclass
class PrefetchConfig:
    """One prefetch engine's knobs (the Fig. 21 scenario switches)."""

    enabled: bool = True
    mode: str = "multi"             # 'global' or 'multi'
    streams: int = 8                # ignored in global mode
    max_depth: int = 32             # 64 for global mode per the paper
    distance: int = 4               # lines ahead of demand ("small"/"large")
    confidence_threshold: int = 2
    cross_page: bool = True         # virtual-address cross-page prefetch

    @classmethod
    def global_mode(cls, distance: int = 8, **kw) -> "PrefetchConfig":
        return cls(mode="global", streams=1, max_depth=64,
                   distance=distance, **kw)

    @classmethod
    def disabled(cls) -> "PrefetchConfig":
        return cls(enabled=False)


@dataclass(slots=True)
class _Stream:
    last_addr: int
    stride: int = 0
    confidence: int = 0
    next_line: int = 0              # next line address to prefetch
    last_used: int = 0


@dataclass
class PrefetchStats:
    issued: int = 0
    dropped_page_boundary: int = 0
    streams_allocated: int = 0
    streams_abandoned: int = 0
    tlb_prefetches: int = 0

    def counters(self) -> dict[str, int]:
        """Flat counter dict (the repro.obs metrics surface)."""
        return dict(vars(self))


class StreamPrefetcher:
    """Stride/stream prefetcher attached to one cache level.

    ``issue_fn(line_addr, cycle)`` performs the actual fill;
    ``tlb_prefetch_fn(vpage)`` warms the TLB when crossing pages (None
    disables TLB prefetching — Fig. 21 scenarios b/e).
    """

    def __init__(self, config: PrefetchConfig, line_size: int,
                 issue_fn: Callable[[int, int], None],
                 tlb_prefetch_fn: Callable[[int], None] | None = None):
        self.config = config
        self.line_size = line_size
        self._line_shift = line_size.bit_length() - 1
        self._global_mode = config.mode == "global"
        self.issue_fn = issue_fn
        self.tlb_prefetch_fn = tlb_prefetch_fn
        self._streams: dict[int, _Stream] = {}
        self._next_key = 1
        self.stats = PrefetchStats()

    # -- demand-stream observation ------------------------------------------------

    def observe(self, addr: int, cycle: int) -> None:
        """Feed one demand access; trains the stride detector (step 1)
        and may issue prefetches."""
        cfg = self.config
        if not cfg.enabled:
            return
        stream = self._find_stream(addr)
        if stream is None:
            stream = self._allocate(addr, cycle)
        else:
            stride = addr - stream.last_addr
            if stride == 0:
                stream.last_used = cycle
            else:
                if stride == stream.stride:
                    if stream.confidence < 7:
                        stream.confidence += 1
                else:
                    # Prefetch control: modify or abandon the policy.
                    stream.confidence -= 1
                    if stream.confidence <= 0:
                        stream.stride = stride
                        stream.confidence = 1
                        stream.next_line = addr >> self._line_shift
                        self.stats.streams_abandoned += 1
                stream.last_addr = addr
                stream.last_used = cycle
        if stream.confidence < cfg.confidence_threshold:
            return
        self._run_ahead(stream, addr, cycle)

    # Proximity window for stream ownership: an access trains the
    # stream whose last address is nearest, within this many bytes.
    _MATCH_WINDOW = 1024

    def _find_stream(self, addr: int) -> _Stream | None:
        """Proximity matching: the nearest stream owns the access."""
        if self._global_mode:
            return self._streams.get(0)
        best: _Stream | None = None
        best_distance = self._MATCH_WINDOW + 1
        for stream in self._streams.values():
            last = stream.last_addr
            distance = addr - last
            if distance < 0:
                distance = -distance
            stride = stream.stride
            if stride:
                d2 = addr - last - stride
                if d2 < 0:
                    d2 = -d2
                if d2 < distance:
                    distance = d2
            if distance < best_distance:
                best = stream
                best_distance = distance
                if distance == 0:
                    break   # nothing can beat an exact match
        return best

    def _allocate(self, addr: int, cycle: int) -> _Stream:
        capacity = 1 if self._global_mode \
            else max(self.config.streams, 1)
        if len(self._streams) >= capacity:
            lru_key = min(self._streams,
                          key=lambda k: self._streams[k].last_used)
            del self._streams[lru_key]
        stream = _Stream(last_addr=addr, next_line=self._line(addr) + 1,
                         last_used=cycle)
        self._streams[self._next_key] = stream
        self._next_key += 1
        if self._global_mode:
            self._streams = {0: stream}
        self.stats.streams_allocated += 1
        return stream

    # -- execution (step 3) ----------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr >> self._line_shift

    def _run_ahead(self, stream: _Stream, addr: int, cycle: int) -> None:
        stride = stream.stride
        if stride == 0:
            return
        shift = self._line_shift
        astride = stride if stride > 0 else -stride
        stride_lines = astride >> shift if astride >= self.line_size else 1
        cfg = self.config
        current_line = addr >> shift
        next_line = stream.next_line
        if stride > 0:
            horizon = current_line + cfg.distance * stride_lines
            depth_limit = current_line + cfg.max_depth
            if horizon > depth_limit:
                horizon = depth_limit
            # Restart the run-ahead pointer if the demand stream jumped.
            if next_line <= current_line:
                next_line = current_line + 1
            step = stride_lines
        else:
            horizon = current_line - cfg.distance * stride_lines
            depth_limit = current_line - cfg.max_depth
            if horizon < depth_limit:
                horizon = depth_limit
            if next_line >= current_line:
                next_line = current_line - 1
            step = -stride_lines
        issued = 0
        while (issued < 8 and
               (next_line <= horizon if stride > 0
                else next_line >= horizon)):
            target_addr = next_line << shift
            if not self._check_page(addr, target_addr):
                self.stats.dropped_page_boundary += 1
                stream.next_line = next_line
                return  # stall at page boundary until demand restarts us
            self.issue_fn(target_addr, cycle)
            self.stats.issued += 1
            next_line += step
            issued += 1
        stream.next_line = next_line

    def _check_page(self, demand_addr: int, target_addr: int) -> bool:
        """Page-boundary policy: True if the prefetch may proceed."""
        if (demand_addr >> PAGE_SHIFT) == (target_addr >> PAGE_SHIFT):
            return True
        if not self.config.cross_page:
            return False
        if self.tlb_prefetch_fn is not None:
            # Automatically request translation of the next virtual page.
            self.tlb_prefetch_fn(target_addr >> PAGE_SHIFT)
            self.stats.tlb_prefetches += 1
            return True
        # Cross-page allowed but no TLB prefetch: the prefetch itself can
        # proceed only if the mapping is already present; we model this
        # as a stop at the boundary (demand miss will restart the stream).
        return False
