"""Memory subsystem models: caches, TLBs, prefetch, DRAM, page tables."""

from .cache import Cache, CacheStats, LineState  # noqa: F401
from .dram import Dram, DramConfig  # noqa: F401
from .hierarchy import MemHierConfig, MemoryHierarchy  # noqa: F401
from .prefetch import PrefetchConfig, StreamPrefetcher  # noqa: F401
from .ptw import (  # noqa: F401
    PageFault,
    PageTableBuilder,
    PageTableWalker,
    Translation,
)
from .tlb import Tlb, TlbConfig, TlbEntry  # noqa: F401
