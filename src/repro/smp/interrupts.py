"""CLINT and PLIC interrupt controllers (paper section II).

"It also incorporates standard CLint and PLIC multi-core interrupt
controllers, timers ..." — both are implemented with the standard
RISC-V memory maps so bare-metal code programs them exactly as it
would on silicon:

* **CLINT** at its usual base: per-hart ``msip`` (software interrupts,
  the IPI mechanism), per-hart ``mtimecmp`` and the shared ``mtime``.
* **PLIC**: per-source priorities, per-context enables and thresholds,
  and the claim/complete protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

CLINT_BASE = 0x0200_0000
CLINT_SIZE = 0x1_0000
_MSIP_OFFSET = 0x0
_MTIMECMP_OFFSET = 0x4000
_MTIME_OFFSET = 0xBFF8

PLIC_BASE = 0x0C00_0000
PLIC_SIZE = 0x400_0000
_PRIORITY_OFFSET = 0x0
_PENDING_OFFSET = 0x1000
_ENABLE_OFFSET = 0x2000
_ENABLE_STRIDE = 0x80
_CONTEXT_OFFSET = 0x20_0000
_CONTEXT_STRIDE = 0x1000

MIP_MSIP = 1 << 3    # machine software interrupt
MIP_MTIP = 1 << 7    # machine timer interrupt
MIP_MEIP = 1 << 11   # machine external interrupt


class Clint:
    """Core-local interruptor: software + timer interrupts per hart."""

    def __init__(self, harts: int = 4,
                 time_fn: Callable[[], int] | None = None):
        self.harts = harts
        self.msip = [0] * harts
        self.mtimecmp = [(1 << 64) - 1] * harts
        self._time_fn = time_fn
        self._mtime = 0

    # -- time source --------------------------------------------------------------

    @property
    def mtime(self) -> int:
        return self._time_fn() if self._time_fn is not None else self._mtime

    def tick(self, cycles: int = 1) -> None:
        """Advance the internal counter (when no time_fn is bound)."""
        self._mtime += cycles

    # -- interrupt lines ------------------------------------------------------------

    def pending(self, hart: int) -> int:
        """mip bits this controller asserts for *hart*."""
        bits = 0
        if self.msip[hart]:
            bits |= MIP_MSIP
        if self.mtime >= self.mtimecmp[hart]:
            bits |= MIP_MTIP
        return bits

    def send_ipi(self, hart: int) -> None:
        self.msip[hart] = 1

    # -- MMIO ------------------------------------------------------------------------

    def load(self, offset: int, size: int) -> int:
        if _MSIP_OFFSET <= offset < _MSIP_OFFSET + 4 * self.harts:
            return self.msip[(offset - _MSIP_OFFSET) // 4]
        if _MTIMECMP_OFFSET <= offset < _MTIMECMP_OFFSET + 8 * self.harts:
            hart = (offset - _MTIMECMP_OFFSET) // 8
            return self.mtimecmp[hart]
        if offset == _MTIME_OFFSET:
            return self.mtime
        return 0

    def store(self, offset: int, value: int, size: int) -> None:
        if _MSIP_OFFSET <= offset < _MSIP_OFFSET + 4 * self.harts:
            self.msip[(offset - _MSIP_OFFSET) // 4] = value & 1
            return
        if _MTIMECMP_OFFSET <= offset < _MTIMECMP_OFFSET + 8 * self.harts:
            hart = (offset - _MTIMECMP_OFFSET) // 8
            self.mtimecmp[hart] = value & ((1 << 64) - 1)
            return
        if offset == _MTIME_OFFSET and self._time_fn is None:
            self._mtime = value


@dataclass
class _PlicContext:
    enables: int = 0          # bitmask over sources
    threshold: int = 0
    claimed: set[int] = field(default_factory=set)


class Plic:
    """Platform-level interrupt controller with claim/complete."""

    def __init__(self, sources: int = 32, contexts: int = 4):
        self.sources = sources
        self.priority = [0] * (sources + 1)    # source 0 reserved
        self.pending_bits = 0
        self.contexts = [_PlicContext() for _ in range(contexts)]

    # -- device side -------------------------------------------------------------------

    def raise_interrupt(self, source: int) -> None:
        if not 1 <= source <= self.sources:
            raise ValueError(f"bad interrupt source {source}")
        self.pending_bits |= 1 << source

    # -- core side ------------------------------------------------------------------------

    def _best_source(self, context: int) -> int:
        ctx = self.contexts[context]
        best, best_priority = 0, ctx.threshold
        for source in range(1, self.sources + 1):
            if not (self.pending_bits >> source) & 1:
                continue
            if not (ctx.enables >> source) & 1:
                continue
            if source in ctx.claimed:
                continue
            if self.priority[source] > best_priority:
                best, best_priority = source, self.priority[source]
        return best

    def pending(self, context: int) -> int:
        """mip bits (MEIP or 0) for *context*."""
        return MIP_MEIP if self._best_source(context) else 0

    def claim(self, context: int) -> int:
        source = self._best_source(context)
        if source:
            self.pending_bits &= ~(1 << source)
            self.contexts[context].claimed.add(source)
        return source

    def complete(self, context: int, source: int) -> None:
        self.contexts[context].claimed.discard(source)

    # -- MMIO ---------------------------------------------------------------------------------

    def load(self, offset: int, size: int) -> int:
        if offset < _PENDING_OFFSET:
            source = offset // 4
            return self.priority[source] if source <= self.sources else 0
        if _PENDING_OFFSET <= offset < _ENABLE_OFFSET:
            word = (offset - _PENDING_OFFSET) // 4
            return (self.pending_bits >> (word * 32)) & 0xFFFFFFFF
        if _ENABLE_OFFSET <= offset < _CONTEXT_OFFSET:
            context = (offset - _ENABLE_OFFSET) // _ENABLE_STRIDE
            word = ((offset - _ENABLE_OFFSET) % _ENABLE_STRIDE) // 4
            if context < len(self.contexts):
                return (self.contexts[context].enables >> (word * 32)) \
                    & 0xFFFFFFFF
            return 0
        context = (offset - _CONTEXT_OFFSET) // _CONTEXT_STRIDE
        reg = (offset - _CONTEXT_OFFSET) % _CONTEXT_STRIDE
        if context < len(self.contexts):
            if reg == 0:
                return self.contexts[context].threshold
            if reg == 4:
                return self.claim(context)
        return 0

    def store(self, offset: int, value: int, size: int) -> None:
        if offset < _PENDING_OFFSET:
            source = offset // 4
            if 1 <= source <= self.sources:
                self.priority[source] = value & 0x7
            return
        if _ENABLE_OFFSET <= offset < _CONTEXT_OFFSET:
            context = (offset - _ENABLE_OFFSET) // _ENABLE_STRIDE
            word = ((offset - _ENABLE_OFFSET) % _ENABLE_STRIDE) // 4
            if context < len(self.contexts):
                ctx = self.contexts[context]
                mask = 0xFFFFFFFF << (word * 32)
                ctx.enables = (ctx.enables & ~mask) \
                    | ((value & 0xFFFFFFFF) << (word * 32))
            return
        context = (offset - _CONTEXT_OFFSET) // _CONTEXT_STRIDE
        reg = (offset - _CONTEXT_OFFSET) % _CONTEXT_STRIDE
        if context < len(self.contexts):
            if reg == 0:
                self.contexts[context].threshold = value & 0x7
            elif reg == 4:
                self.complete(context, value)


def attach_interrupt_controllers(memory, harts: int = 1,
                                 time_fn: Callable[[], int] | None = None
                                 ) -> tuple[Clint, Plic]:
    """Map a CLINT and a PLIC into *memory* at the standard bases."""
    clint = Clint(harts=harts, time_fn=time_fn)
    plic = Plic(contexts=max(harts, 1))
    memory.register_mmio(CLINT_BASE, CLINT_SIZE, clint)
    memory.register_mmio(PLIC_BASE, PLIC_SIZE, plic)
    return clint, plic
