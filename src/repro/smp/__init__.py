"""SMP: cluster coherence, Ncore interconnect, multi-hart execution."""

from .coherence import CoherenceConfig, CoherenceStats, CoherentCluster  # noqa: F401
from .ncore import NcoreConfig, NcoreSystem  # noqa: F401
from .interrupts import Clint, Plic, attach_interrupt_controllers  # noqa: F401
from .runner import SmpMachine, SmpResult, run_smp  # noqa: F401
from .timing import SmpTimingResult, run_smp_timing  # noqa: F401
