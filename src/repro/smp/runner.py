"""Functional SMP execution: several harts sharing one memory.

The emulators share a single :class:`~repro.sim.memory.Memory` and step
round-robin; LR/SC reservations and AMOs provide synchronization, and
``mhartid`` tells each hart who it is — enough to run real parallel
kernels (the section VI claim that each cluster's cores boot one
coherent OS reduces, at this modeling level, to coherent shared-memory
execution with working atomics).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program, STACK_TOP
from ..sim.emulator import Emulator
from ..sim.memory import Memory


@dataclass
class SmpResult:
    exit_codes: list[int]
    steps: list[int]
    memory: Memory

    @property
    def all_succeeded(self) -> bool:
        return all(code == 0 for code in self.exit_codes)


class SmpMachine:
    """N harts, one physical memory, round-robin interleaving."""

    def __init__(self, program: Program, cores: int = 4,
                 interleave: int = 1):
        self.memory = Memory()
        self.memory.load_program(program)
        self.interleave = interleave
        self.harts = [
            Emulator(program, memory=self.memory, hart_id=i,
                     stack_top=STACK_TOP, load=False)
            for i in range(cores)
        ]
        # Any store by another hart breaks an LR reservation; emulators
        # share memory but not reservation state, so bridge it here.
        self._wrap_reservations()

    def _wrap_reservations(self) -> None:
        original_store = self.memory.store_bytes
        original_store_int = self.memory.store_int
        harts = self.harts

        def break_reservations(addr: int, size: int) -> None:
            for hart in harts:
                reservation = hart.state.reservation
                if reservation is not None and \
                        addr <= reservation < addr + max(size, 1):
                    hart.state.reservation = None

        def store_bytes(addr: int, data: bytes) -> None:
            original_store(addr, data)
            break_reservations(addr, len(data))

        def store_int(addr: int, value: int, size: int) -> None:
            original_store_int(addr, value, size)
            break_reservations(addr, size)

        # Both entry points must be wrapped: store_int has a single-page
        # RAM fast path that writes pages directly without going through
        # store_bytes.
        self.memory.store_bytes = store_bytes  # type: ignore[method-assign]
        self.memory.store_int = store_int  # type: ignore[method-assign]

    def run(self, max_steps_per_hart: int = 5_000_000) -> SmpResult:
        """Round-robin step all harts until they all exit."""
        steps = [0] * len(self.harts)
        active = True
        while active:
            active = False
            for index, hart in enumerate(self.harts):
                if hart.halted:
                    continue
                for _ in range(self.interleave):
                    if hart.halted:
                        break
                    hart.step()
                    steps[index] += 1
                    if steps[index] > max_steps_per_hart:
                        raise RuntimeError(
                            f"hart {index} exceeded {max_steps_per_hart} steps")
                active = True
        return SmpResult(
            exit_codes=[h.exit_code if h.exit_code is not None else -1
                        for h in self.harts],
            steps=steps, memory=self.memory)


def run_smp(program: Program, cores: int = 4,
            interleave: int = 1) -> SmpResult:
    """Run *program* on all harts simultaneously."""
    machine = SmpMachine(program, cores=cores, interleave=interleave)
    return machine.run()
