"""MOSEI cache coherence for one XT-910 cluster (paper section VI).

Up to 4 cores share an inclusive L2 whose lines carry a sharer bitmap —
the snoop filter: "a snoop filter that monitors access by the cores to
the shared L2 cache effectively reduces the inter-core communications".
With the filter, an access only disturbs the cores the bitmap names;
without it every miss broadcasts to all cores (the counter difference
is the experiment).

State machine (M-O-S-E-I):

* read miss, no other sharer      -> E
* read miss, other sharer present -> S (owner M downgrades to O and
  supplies the data cache-to-cache)
* write                           -> M (other copies invalidated)
* L2 eviction back-invalidates L1 copies (inclusive).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mem.cache import Cache, LineState
from ..mem.dram import Dram, DramConfig


@dataclass
class CoherenceConfig:
    cores: int = 4
    l1_size: int = 64 << 10
    l1_assoc: int = 4
    l2_size: int = 2 << 20
    l2_assoc: int = 16
    line_size: int = 64
    l1_latency: int = 1
    l2_latency: int = 12
    snoop_latency: int = 8          # cache-to-cache transfer
    snoop_filter: bool = True
    dram: DramConfig = field(default_factory=DramConfig)


@dataclass
class CoherenceStats:
    reads: int = 0
    writes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    dram_fills: int = 0
    cache_to_cache: int = 0
    invalidations: int = 0
    snoops_sent: int = 0            # probe messages to other cores
    upgrades: int = 0               # S/O -> M transitions
    back_invalidations: int = 0


class CoherentCluster:
    """N private L1Ds + one shared inclusive L2 with a snoop filter."""

    def __init__(self, config: CoherenceConfig | None = None):
        self.config = config = config if config is not None \
            else CoherenceConfig()
        if not 1 <= config.cores <= 4:
            raise ValueError("a cluster holds 1 to 4 cores (Table I)")
        self.l1s = [Cache(f"L1D{i}", config.l1_size, config.l1_assoc,
                          config.line_size) for i in range(config.cores)]
        self.l2 = Cache("L2", config.l2_size, config.l2_assoc,
                        config.line_size)
        self.dram = Dram(config.dram)
        self.stats = CoherenceStats()

    # -- public ------------------------------------------------------------------

    def access(self, core: int, addr: int, is_write: bool,
               cycle: int = 0) -> int:
        """One data access by *core*; returns the latency."""
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        l1 = self.l1s[core]
        line = l1.lookup(addr)
        if line is not None:
            if not is_write or line.state in (LineState.MODIFIED,
                                              LineState.EXCLUSIVE):
                self.stats.l1_hits += 1
                l1.access(addr, is_write)
                return self.config.l1_latency
            # Write hit on a shared/owned line: upgrade.
            latency = self._invalidate_others(core, addr)
            line.state = LineState.MODIFIED
            line.dirty = True
            self.stats.upgrades += 1
            self.stats.l1_hits += 1
            return self.config.l1_latency + latency
        return self._miss(core, addr, is_write, cycle)

    def _invalidate_others(self, core: int, addr: int) -> int:
        """Upgrade path: invalidate every other copy; returns latency."""
        l2_line = self.l2.lookup(addr, update_lru=False)
        holders = (set(l2_line.sharers) - {core}) if l2_line is not None \
            else set(range(self.config.cores)) - {core}
        if not holders:
            return 0
        self.stats.snoops_sent += len(holders)
        for other in holders:
            if self.l1s[other].invalidate(addr) is not None:
                self.stats.invalidations += 1
        if l2_line is not None:
            l2_line.sharers = {core}
        return self.config.snoop_latency

    # -- misses ------------------------------------------------------------------

    def _miss(self, core: int, addr: int, is_write: bool, cycle: int) -> int:
        cfg = self.config
        latency = cfg.l1_latency + cfg.l2_latency
        l2_line = self.l2.lookup(addr)

        if l2_line is None:
            ready = self.dram.request(cycle, cfg.line_size)
            latency += ready - cycle
            self.stats.dram_fills += 1
            victim = self.l2.fill(addr)
            if victim is not None:
                self._back_invalidate(victim.tag)
            l2_line = self.l2.lookup(addr)
        else:
            self.l2.access(addr, False)
            self.stats.l2_hits += 1

        holders = set(l2_line.sharers) - {core}
        if holders:
            latency += self._handle_remote_copies(core, addr, holders,
                                                  is_write)
        elif not cfg.snoop_filter:
            # Without the filter, every miss probes every other core.
            self.stats.snoops_sent += cfg.cores - 1
            latency += cfg.snoop_latency

        state = LineState.MODIFIED if is_write else (
            LineState.SHARED if holders and not is_write
            else LineState.EXCLUSIVE)
        self.l1s[core].fill(addr, state)
        if is_write:
            self.l1s[core].lookup(addr).dirty = True
        l2_line.sharers.add(core)
        if is_write:
            l2_line.sharers = {core}
        return latency

    def _handle_remote_copies(self, core: int, addr: int, holders: set[int],
                              is_write: bool) -> int:
        """Probe the cores the snoop filter names; returns added latency."""
        cfg = self.config
        latency = cfg.snoop_latency
        self.stats.snoops_sent += len(holders)
        transferred = False
        for other in holders:
            other_line = self.l1s[other].lookup(addr, update_lru=False)
            if other_line is None:
                continue  # stale filter bit: line was silently evicted
            if other_line.state in (LineState.MODIFIED, LineState.OWNED):
                transferred = True
            if is_write:
                self.l1s[other].invalidate(addr)
                self.stats.invalidations += 1
            elif other_line.state is LineState.MODIFIED:
                other_line.state = LineState.OWNED  # keeps supplying data
            elif other_line.state is LineState.EXCLUSIVE:
                other_line.state = LineState.SHARED
        if is_write:
            l2_line = self.l2.lookup(addr, update_lru=False)
            if l2_line is not None:
                l2_line.sharers.clear()
        if transferred:
            self.stats.cache_to_cache += 1
        return latency

    def _back_invalidate(self, line_tag: int) -> None:
        """Inclusive L2: an evicted line leaves no L1 copies behind."""
        addr = line_tag << (self.config.line_size.bit_length() - 1)
        for l1 in self.l1s:
            if l1.invalidate(addr) is not None:
                self.stats.back_invalidations += 1

    # -- introspection --------------------------------------------------------------

    def state_of(self, core: int, addr: int) -> LineState:
        line = self.l1s[core].lookup(addr, update_lru=False)
        return line.state if line is not None else LineState.INVALID

    def check_invariants(self) -> None:
        """MOSEI single-writer / inclusive invariants (for tests)."""
        seen: dict[int, list[tuple[int, LineState]]] = {}
        for core, l1 in enumerate(self.l1s):
            for line_addr, line in l1.lines():
                seen.setdefault(line_addr, []).append((core, line.state))
        for line_addr, copies in seen.items():
            states = [s for _, s in copies]
            modified = states.count(LineState.MODIFIED)
            exclusive = states.count(LineState.EXCLUSIVE)
            if modified + exclusive > 0 and len(copies) > 1:
                raise AssertionError(
                    f"line {line_addr:#x}: M/E copy coexists with others: "
                    f"{copies}")
            addr = line_addr << (self.config.line_size.bit_length() - 1)
            if not self.l2.contains(addr):
                raise AssertionError(
                    f"line {line_addr:#x} in L1 but not in inclusive L2")
