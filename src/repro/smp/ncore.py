"""Multi-cluster interconnect ("Ncore", paper section VI, Fig. 13).

Up to 4 clusters of up to 4 cores connect through the Ncore coherent
interconnect.  Each cluster keeps its own L2 + snoop filter; Ncore adds
a system-level directory that tracks which clusters hold each line and
forwards cross-cluster requests at a higher latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .coherence import CoherenceConfig, CoherentCluster


@dataclass
class NcoreConfig:
    clusters: int = 2
    cluster: CoherenceConfig = field(default_factory=CoherenceConfig)
    cross_cluster_latency: int = 40


@dataclass
class NcoreStats:
    cross_cluster_transfers: int = 0
    directory_lookups: int = 0


class NcoreSystem:
    """Multi-cluster SMP: cluster-of-clusters with a global directory."""

    def __init__(self, config: NcoreConfig | None = None):
        self.config = config = config if config is not None else NcoreConfig()
        if not 1 <= config.clusters <= 4:
            raise ValueError("Ncore connects 1 to 4 clusters")
        self.clusters = [CoherentCluster(config.cluster)
                         for _ in range(config.clusters)]
        self._directory: dict[int, set[int]] = {}   # line -> cluster ids
        self.stats = NcoreStats()
        self._line_shift = config.cluster.line_size.bit_length() - 1

    @property
    def total_cores(self) -> int:
        return self.config.clusters * self.config.cluster.cores

    def _locate(self, core: int) -> tuple[int, int]:
        per = self.config.cluster.cores
        return core // per, core % per

    def access(self, core: int, addr: int, is_write: bool,
               cycle: int = 0) -> int:
        """System-level access; returns total latency."""
        cluster_id, local_core = self._locate(core)
        line = addr >> self._line_shift
        holders = self._directory.get(line, set())
        self.stats.directory_lookups += 1
        latency = 0
        remote = holders - {cluster_id}
        if remote and (is_write or cluster_id not in holders):
            # Cross-cluster transfer (and invalidation on writes).
            latency += self.config.cross_cluster_latency
            self.stats.cross_cluster_transfers += 1
            if is_write:
                for other in remote:
                    other_cluster = self.clusters[other]
                    for l1 in other_cluster.l1s:
                        l1.invalidate(addr)
                    other_cluster.l2.invalidate(addr)
                holders = set()
        latency += self.clusters[cluster_id].access(
            local_core, addr, is_write, cycle)
        holders = holders | {cluster_id}
        if is_write:
            holders = {cluster_id}
        self._directory[line] = holders
        return latency
