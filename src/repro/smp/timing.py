"""Multi-core timing: per-core pipelines over one shared L2 (section VI).

Methodology: the functional SMP machine runs all harts round-robin
(real atomics, shared memory) while recording each hart's dynamic
trace; each trace then drives its own pipeline model.  The cores share
the L2 cache and the DRAM bandwidth model, and writes invalidate other
cores' L1 copies (write-invalidate coherence), so capacity contention,
bandwidth contention and sharing misses are all represented.  The
makespan is the slowest core's cycle count.

Approximation: the per-core cycle clocks are not lock-stepped, so
fine-grained timing interleavings (e.g. lock convoy dynamics) are
outside the model — standard for trace-driven multi-core simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program
from ..mem.cache import Cache
from ..mem.dram import Dram
from ..mem.hierarchy import MemHierConfig, MemoryHierarchy
from ..sim.trace import DynInst
from ..uarch.config import CoreConfig
from ..uarch.core import PipelineModel
from ..uarch.presets import xt910
from ..uarch.stats import CoreStats
from .runner import SmpMachine


@dataclass
class SmpTimingStats:
    sharing_invalidations: int = 0
    snoop_stall_cycles: int = 0

    def counters(self) -> dict[str, int]:
        """Flat counter dict (the repro.obs metrics surface)."""
        return dict(vars(self))


class _CoherentHierarchy(MemoryHierarchy):
    """A per-core hierarchy whose writes invalidate sibling L1 copies."""

    def __init__(self, config: MemHierConfig, l2: Cache, dram: Dram,
                 shared_stats: SmpTimingStats, snoop_latency: int = 8):
        super().__init__(config, l2=l2, dram=dram)
        self._siblings: list[_CoherentHierarchy] = []
        self._shared = shared_stats
        self._snoop_latency = snoop_latency

    def set_siblings(self, siblings: list["_CoherentHierarchy"]) -> None:
        self._siblings = [s for s in siblings if s is not self]

    def access_data(self, vaddr: int, cycle: int, is_write: bool = False,
                    size: int = 8) -> int:
        latency = super().access_data(vaddr, cycle, is_write, size)
        if is_write:
            snooped = False
            for sibling in self._siblings:
                if sibling.l1d.invalidate(vaddr) is not None:
                    self._shared.sharing_invalidations += 1
                    snooped = True
            if snooped:
                latency += self._snoop_latency
                self._shared.snoop_stall_cycles += self._snoop_latency
        return latency


@dataclass
class SmpTimingResult:
    per_core: list[CoreStats]
    coherence: SmpTimingStats
    exit_codes: list[int]

    @property
    def makespan(self) -> int:
        return max(stats.cycles for stats in self.per_core)

    @property
    def total_instructions(self) -> int:
        return sum(stats.instructions for stats in self.per_core)

    def speedup_vs(self, single_core_cycles: int) -> float:
        return single_core_cycles / self.makespan if self.makespan else 0.0

    def metrics(self) -> "MetricsRegistry":  # noqa: F821
        """Coherence + per-core counters as one metrics registry."""
        from ..obs.metrics import collect_core_stats, collect_smp

        registry = collect_smp(self.coherence)
        registry.set("smp.makespan_cycles", self.makespan)
        registry.set("smp.total_instructions", self.total_instructions)
        for index, stats in enumerate(self.per_core):
            collect_core_stats(stats, registry, prefix=f"smp.core{index}")
        return registry


def run_smp_timing(program: Program, cores: int = 4,
                   config: CoreConfig | None = None,
                   interleave: int = 4,
                   max_steps_per_hart: int = 5_000_000) -> SmpTimingResult:
    """Functionally execute on *cores* harts, then time every trace."""
    config = config if config is not None else xt910()

    # 1. Functional SMP run, collecting per-hart traces.
    machine = SmpMachine(program, cores=cores, interleave=interleave)
    traces: list[list[DynInst]] = [[] for _ in range(cores)]
    steps = [0] * cores
    active = True
    while active:
        active = False
        for index, hart in enumerate(machine.harts):
            if hart.halted:
                continue
            for _ in range(interleave):
                if hart.halted:
                    break
                traces[index].append(hart.step())
                steps[index] += 1
                if steps[index] > max_steps_per_hart:
                    raise RuntimeError(
                        f"hart {index} exceeded {max_steps_per_hart} steps")
            active = True

    # 2. Shared memory-system substrate.
    shared_stats = SmpTimingStats()
    mem = config.mem
    l2 = Cache("L2-shared", mem.l2_size, mem.l2_assoc, mem.line_size)
    dram = Dram(mem.dram)
    hierarchies = [
        _CoherentHierarchy(mem, l2=l2, dram=dram, shared_stats=shared_stats)
        for _ in range(cores)]
    for hierarchy in hierarchies:
        hierarchy.set_siblings(hierarchies)

    # 3. Per-core timing, interleaved in chunks so the per-core cycle
    # clocks stay roughly aligned (shared DRAM/L2 state is meaningful
    # only between cores at comparable times).
    pipelines = [PipelineModel(config, hierarchy=hierarchies[index])
                 for index in range(cores)]
    for pipeline in pipelines:
        pipeline._reset_run_state()
    positions = [0] * cores
    chunk = 64
    remaining = True
    while remaining:
        remaining = False
        for index in range(cores):
            trace = traces[index]
            pos = positions[index]
            end = min(pos + chunk, len(trace))
            for k in range(pos, end):
                pipelines[index].feed(trace[k])
            positions[index] = end
            if end < len(trace):
                remaining = True
    per_core = [pipeline.finish() for pipeline in pipelines]
    return SmpTimingResult(
        per_core=per_core, coherence=shared_stats,
        exit_codes=[h.exit_code if h.exit_code is not None else -1
                    for h in machine.harts])
