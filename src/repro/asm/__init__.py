"""Assembler substrate: two-pass assembler and program container."""

from .assembler import Assembler, AssemblerError, assemble, decode_vtype, encode_vtype  # noqa: F401
from .program import DATA_BASE, HEAP_BASE, Program, STACK_TOP, TEXT_BASE, TOHOST_ADDR  # noqa: F401
