"""A two-pass RISC-V assembler for the XT-910 ISA model.

Supports the standard GNU-flavoured syntax subset the workload kernels
use: labels, ``.text``/``.data`` sections, data directives, the common
pseudo-instructions (``li``/``la``/``call``/``ret``/branch aliases), the
vector 0.7.1 mnemonics, and the XT custom extensions.  With
``compress=True`` it runs an RVC relaxation pass so code density (and
therefore frontend behaviour) matches a real RV64GC toolchain.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field

from ..isa import compressed
from ..isa.csr import CSR_NAMES
from ..isa.encoding import EncodingError, encode
from ..isa.instructions import Instruction, SPECS, compute_operands
from ..isa.registers import parse_fpr, parse_gpr, parse_vreg
from .program import DATA_BASE, Program, TEXT_BASE


class AssemblerError(Exception):
    """Raised with file/line context on any assembly problem."""


_COMMENT_RE = re.compile(r"(#|//).*$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:")
_SEW_RE = re.compile(r"^e(\d+)$")
_LMUL_RE = re.compile(r"^m(\d+)$")

# vtype encoding used by vsetvli and the vector unit: lmul in bits 0-1
# (log2), sew code in bits 2-4 (log2(sew/8)).
SEW_CODES = {8: 0, 16: 1, 32: 2, 64: 3}


def encode_vtype(sew: int, lmul: int) -> int:
    """Pack (sew, lmul) into the vtype immediate."""
    if sew not in SEW_CODES:
        raise AssemblerError(f"unsupported SEW {sew}")
    if lmul not in (1, 2, 4, 8):
        raise AssemblerError(f"unsupported LMUL {lmul}")
    return SEW_CODES[sew] << 2 | {1: 0, 2: 1, 4: 2, 8: 3}[lmul]


def decode_vtype(vtype: int) -> tuple[int, int]:
    """Unpack the vtype immediate into (sew, lmul)."""
    sew = 8 << ((vtype >> 2) & 0x7)
    lmul = 1 << (vtype & 0x3)
    return sew, lmul


@dataclass
class _Item:
    """One text-section statement after parsing."""

    kind: str                     # 'inst'
    mnemonic: str
    operands: list[str]
    line: int
    size: int = 4                 # current size estimate (2 or 4)
    no_compress: bool = False
    inst: Instruction | None = None


@dataclass
class _Fixup:
    """A data word whose value references a not-yet-placed label."""

    offset: int
    width: int
    expr: str
    line: int


@dataclass
class _Section:
    data: bytearray = field(default_factory=bytearray)
    fixups: list[_Fixup] = field(default_factory=list)


class Assembler:
    """Two-pass assembler with optional RVC compression relaxation."""

    def __init__(self, compress: bool = False):
        self.compress = compress

    # -- public API --------------------------------------------------------

    def assemble(self, source: str, text_base: int = TEXT_BASE,
                 data_base: int = DATA_BASE) -> Program:
        items, data, symbols_data, equs = self._parse(source, data_base)
        symbols = dict(symbols_data)
        symbols.update(equs)

        # Relaxation: iterate label layout until instruction sizes settle.
        for _ in range(16):
            addr = text_base
            for item in items:
                if item.kind == "label":
                    symbols[item.mnemonic] = addr
                elif item.kind == "align":
                    addr = _align_up(addr, item.size)
                else:
                    addr += item.size
            changed = self._assign_sizes(items, symbols, text_base)
            if not changed:
                break
        else:  # pragma: no cover - relaxation always converges
            raise AssemblerError("compression relaxation did not converge")

        # Final pass: encode.  ``lines`` records address -> source line
        # so downstream tools (lint findings, sanitizer violations) can
        # point back at the source text.
        blob = bytearray()
        lines: dict[int, int] = {}
        addr = text_base
        for item in items:
            if item.kind == "label":
                continue
            if item.kind == "align":
                target = _align_up(addr, item.size)
                while addr < target:
                    blob += b"\x01\x00"  # c.nop padding
                    addr += 2
                continue
            if item.kind in ("li", "la"):
                for inst in self._expand_li_la(item, symbols):
                    blob += struct.pack("<I", encode(inst))
                    lines[addr] = item.line
                    addr += 4
                continue
            lines[addr] = item.line
            inst = self._build(item, symbols, addr)
            if item.size == 2:
                half = compressed.compress(inst)
                if half is None:
                    raise AssemblerError(
                        f"line {item.line}: compression regressed for "
                        f"{item.mnemonic}")
                blob += struct.pack("<H", half)
            else:
                blob += struct.pack("<I", encode(inst))
            addr += item.size

        # Resolve deferred data fixups against the final symbol table.
        for fixup in data.fixups:
            value = _parse_int(fixup.expr, symbols, fixup.line)
            data.data[fixup.offset:fixup.offset + fixup.width] = \
                (value & ((1 << (fixup.width * 8)) - 1)).to_bytes(
                    fixup.width, "little")

        entry = symbols.get("_start", text_base)
        program = Program(text=bytes(blob), data=bytes(data.data),
                          symbols=symbols, text_base=text_base,
                          data_base=data_base, entry=entry, source=source,
                          lines=lines)
        return program

    # -- parsing -----------------------------------------------------------

    def _parse(self, source: str, data_base: int):
        items: list[_Item] = []
        data = _Section()
        symbols: dict[str, int] = {}
        equs: dict[str, int] = {}
        section = "text"

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _COMMENT_RE.sub("", raw).strip()
            while line:
                m = _LABEL_RE.match(line)
                if m:
                    name = m.group(1)
                    if section == "text":
                        items.append(_Item("label", name, [], lineno, size=0))
                    else:
                        symbols[name] = data_base + len(data.data)
                    line = line[m.end():].strip()
                    continue
                break
            if not line:
                continue
            if line.startswith("."):
                section = self._directive(line, lineno, section, items, data,
                                          equs, symbols)
                continue
            if section != "text":
                raise AssemblerError(
                    f"line {lineno}: instruction outside .text: {line}")
            mnemonic, operands = self._split_operands(line)
            for expanded in self._expand_pseudo(mnemonic, operands, lineno):
                items.append(expanded)
        return items, data, symbols, equs

    @staticmethod
    def _split_operands(line: str) -> tuple[str, list[str]]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if len(parts) == 1:
            return mnemonic, []
        operands: list[str] = []
        current: list[str] = []
        in_quote = False
        for ch in parts[1]:
            if ch == "'":
                in_quote = not in_quote
                current.append(ch)
            elif ch == "," and not in_quote:
                operands.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
        operands.append("".join(current).strip())
        return mnemonic, [op for op in operands if op]

    def _directive(self, line: str, lineno: int, section: str,
                   items: list[_Item], data: _Section,
                   equs: dict[str, int],
                   symbols: dict[str, int] | None = None) -> str:
        # Expressions may reference .equ constants and already-defined
        # data labels (e.g. ``ptrs: .dword some_string``).
        env = dict(symbols) if symbols else {}
        env.update(equs)
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name in (".text", ".section.text"):
            return "text"
        if name == ".data" or name == ".bss" or name == ".rodata":
            return "data"
        if name == ".section":
            return "data" if "data" in rest or "bss" in rest else "text"
        if name in (".globl", ".global", ".type", ".size", ".option",
                    ".file", ".attribute", ".p2align"):
            return section
        if name == ".equ" or name == ".set":
            sym, value = [p.strip() for p in rest.split(",", 1)]
            equs[sym] = _parse_int(value, env, lineno)
            return section
        if name == ".align":
            n = _parse_int(rest, env, lineno)
            if section == "text":
                items.append(_Item("align", "", [], lineno, size=1 << n))
            else:
                pad = _align_up(len(data.data), 1 << n) - len(data.data)
                data.data += b"\x00" * pad
            return section
        if section != "data":
            raise AssemblerError(
                f"line {lineno}: data directive {name} outside .data")
        if name in (".byte", ".half", ".short", ".word", ".long", ".dword",
                    ".quad"):
            width = {".byte": 1, ".half": 2, ".short": 2, ".word": 4,
                     ".long": 4, ".dword": 8, ".quad": 8}[name]
            fmt = {1: "<b", 2: "<h", 4: "<i", 8: "<q"}[width]
            ufmt = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}[width]
            for tok in rest.split(","):
                try:
                    value = _parse_int(tok.strip(), env, lineno)
                except AssemblerError:
                    # Forward reference (e.g. a jump table of text
                    # labels): emit zeros now, patch after layout.
                    data.fixups.append(_Fixup(
                        offset=len(data.data), width=width,
                        expr=tok.strip(), line=lineno))
                    data.data += bytes(width)
                    continue
                try:
                    data.data += struct.pack(fmt, value)
                except struct.error:
                    data.data += struct.pack(ufmt, value & ((1 << width * 8) - 1))
            return section
        if name in (".zero", ".space", ".skip"):
            data.data += b"\x00" * _parse_int(rest, env, lineno)
            return section
        if name in (".asciz", ".string"):
            data.data += _parse_string(rest, lineno) + b"\x00"
            return section
        if name == ".ascii":
            data.data += _parse_string(rest, lineno)
            return section
        if name == ".float":
            for tok in rest.split(","):
                data.data += struct.pack("<f", float(tok.strip()))
            return section
        if name == ".double":
            for tok in rest.split(","):
                data.data += struct.pack("<d", float(tok.strip()))
            return section
        raise AssemblerError(f"line {lineno}: unknown directive {name}")

    # -- pseudo-instruction expansion ---------------------------------------

    def _expand_pseudo(self, mn: str, ops: list[str],
                       lineno: int) -> list[_Item]:
        def item(m, o):
            return _Item("inst", m, o, lineno)

        if mn == "nop":
            return [item("addi", ["x0", "x0", "0"])]
        if mn == "li":
            return [_Item("li", "li", ops, lineno, size=0)]
        if mn == "la":
            return [_Item("la", "la", ops, lineno, size=8)]
        if mn == "mv":
            return [item("addi", [ops[0], ops[1], "0"])]
        if mn == "not":
            return [item("xori", [ops[0], ops[1], "-1"])]
        if mn == "neg":
            return [item("sub", [ops[0], "x0", ops[1]])]
        if mn == "negw":
            return [item("subw", [ops[0], "x0", ops[1]])]
        if mn == "sext.w":
            return [item("addiw", [ops[0], ops[1], "0"])]
        if mn == "zext.w":
            return [item("slli", [ops[0], ops[1], "32"]),
                    item("srli", [ops[0], ops[0], "32"])]
        if mn == "seqz":
            return [item("sltiu", [ops[0], ops[1], "1"])]
        if mn == "snez":
            return [item("sltu", [ops[0], "x0", ops[1]])]
        if mn == "sltz":
            return [item("slt", [ops[0], ops[1], "x0"])]
        if mn == "sgtz":
            return [item("slt", [ops[0], "x0", ops[1]])]
        if mn == "beqz":
            return [item("beq", [ops[0], "x0", ops[1]])]
        if mn == "bnez":
            return [item("bne", [ops[0], "x0", ops[1]])]
        if mn == "blez":
            return [item("bge", ["x0", ops[0], ops[1]])]
        if mn == "bgez":
            return [item("bge", [ops[0], "x0", ops[1]])]
        if mn == "bltz":
            return [item("blt", [ops[0], "x0", ops[1]])]
        if mn == "bgtz":
            return [item("blt", ["x0", ops[0], ops[1]])]
        if mn == "bgt":
            return [item("blt", [ops[1], ops[0], ops[2]])]
        if mn == "ble":
            return [item("bge", [ops[1], ops[0], ops[2]])]
        if mn == "bgtu":
            return [item("bltu", [ops[1], ops[0], ops[2]])]
        if mn == "bleu":
            return [item("bgeu", [ops[1], ops[0], ops[2]])]
        if mn == "j":
            return [item("jal", ["x0", ops[0]])]
        if mn == "jal" and len(ops) == 1:
            return [item("jal", ["ra", ops[0]])]
        if mn == "jr":
            return [item("jalr", ["x0", ops[0], "0"])]
        if mn == "jalr" and len(ops) == 1:
            return [item("jalr", ["ra", ops[0], "0"])]
        if mn == "call":
            return [item("jal", ["ra", ops[0]])]
        if mn == "tail":
            return [item("jal", ["x0", ops[0]])]
        if mn == "ret":
            return [item("jalr", ["x0", "ra", "0"])]
        if mn == "csrr":
            return [item("csrrs", [ops[0], ops[1], "x0"])]
        if mn == "csrw":
            return [item("csrrw", ["x0", ops[0], ops[1]])]
        if mn == "csrwi":
            return [item("csrrwi", ["x0", ops[0], ops[1]])]
        if mn == "csrs":
            return [item("csrrs", ["x0", ops[0], ops[1]])]
        if mn == "csrc":
            return [item("csrrc", ["x0", ops[0], ops[1]])]
        if mn == "fmv.s":
            return [item("fsgnj.s", [ops[0], ops[1], ops[1]])]
        if mn == "fmv.d":
            return [item("fsgnj.d", [ops[0], ops[1], ops[1]])]
        if mn == "fneg.s":
            return [item("fsgnjn.s", [ops[0], ops[1], ops[1]])]
        if mn == "fneg.d":
            return [item("fsgnjn.d", [ops[0], ops[1], ops[1]])]
        if mn == "fabs.d":
            return [item("fsgnjx.d", [ops[0], ops[1], ops[1]])]
        if mn not in SPECS:
            raise AssemblerError(f"line {lineno}: unknown mnemonic {mn!r}")
        return [item(mn, ops)]

    # -- sizing / relaxation -------------------------------------------------

    def _assign_sizes(self, items: list[_Item], symbols: dict[str, int],
                      text_base: int) -> bool:
        """Recompute item sizes; returns True if anything changed."""
        changed = False
        addr = text_base
        for item in items:
            if item.kind == "label":
                continue
            if item.kind == "align":
                addr = _align_up(addr, item.size)
                continue
            new_size = item.size
            if item.kind == "li":
                try:
                    value = _parse_int(item.operands[1], symbols, item.line)
                except AssemblerError:
                    value = 1 << 40  # symbols not yet placed: assume big
                new_size = 4 * len(_li_sequence(0, value))
            elif item.kind == "la":
                new_size = 8
            elif self.compress and not item.no_compress:
                try:
                    inst = self._build(item, symbols, addr,
                                       size_probe=True)
                    half = compressed.compress(inst)
                except (AssemblerError, EncodingError, KeyError):
                    half = None
                if half is not None:
                    new_size = 2
                else:
                    if item.size == 2:
                        item.no_compress = True  # grow-only: keeps fixpoint
                    new_size = 4
            if new_size != item.size:
                item.size = new_size
                changed = True
            addr += item.size
        return changed

    # -- encoding one item ----------------------------------------------------

    def _expand_li_la(self, item: _Item,
                      symbols: dict[str, int]) -> list[Instruction]:
        """Materialize li/la pseudo items as base-ISA sequences."""
        try:
            rd = parse_gpr(item.operands[0])
            value = _parse_int(item.operands[1], symbols, item.line)
        except (ValueError, IndexError) as exc:
            raise AssemblerError(f"line {item.line}: {exc}") from exc
        insts: list[Instruction] = []

        def emit(mn: str, **kw) -> None:
            inst = Instruction(spec=SPECS[mn], **kw)
            compute_operands(inst)
            insts.append(inst)

        if item.kind == "la":
            hi = ((value + 0x800) >> 12) & 0xFFFFF
            lo = _to_signed64(value - ((_sext20(hi)) << 12))
            emit("lui", rd=rd, imm=_sext20(hi) << 12)
            emit("addi", rd=rd, rs1=rd, imm=lo)
            return insts
        for mn, src, imm in _li_sequence(rd, value):
            if mn == "lui":
                emit("lui", rd=rd, imm=_sext20(imm) << 12)
            elif mn == "slli":
                emit("slli", rd=rd, rs1=rd, imm=imm)
            else:
                emit(mn, rd=rd, rs1=src, imm=imm)
        return insts

    def _build(self, item: _Item, symbols: dict[str, int], addr: int,
               size_probe: bool = False) -> Instruction:
        try:
            return self._build_inner(item, symbols, addr)
        except (ValueError, KeyError, IndexError) as exc:
            if size_probe:
                raise AssemblerError(str(exc)) from exc
            raise AssemblerError(
                f"line {item.line}: {item.mnemonic} "
                f"{', '.join(item.operands)}: {exc}") from exc

    def _build_inner(self, item: _Item, symbols: dict[str, int],
                     addr: int) -> Instruction:
        mn, ops = item.mnemonic, item.operands
        if item.kind in ("li", "la"):
            raise AssemblerError("li/la handled by caller")  # pragma: no cover
        spec = SPECS[mn]
        fmt = spec.fmt
        kw: dict = {}

        def gx(i):
            return parse_gpr(ops[i])

        def imm(i):
            return _parse_int(ops[i], symbols, item.line)

        def target(i):
            return _parse_int(ops[i], symbols, item.line) - addr

        if fmt == "R":
            if mn == "sfence.vma":
                kw = {"rs1": gx(0) if ops else 0,
                      "rs2": gx(1) if len(ops) > 1 else 0}
            else:
                kw = {"rd": gx(0), "rs1": gx(1), "rs2": gx(2)}
        elif fmt == "I":
            if spec.iclass.value == "load":
                base, off = _parse_mem(ops[1], symbols, item.line)
                rd = parse_fpr(ops[0]) if spec.rd_file == "f" else gx(0)
                kw = {"rd": rd, "rs1": base, "imm": off}
            elif mn == "jalr":
                if "(" in ops[1]:
                    base, off = _parse_mem(ops[1], symbols, item.line)
                    kw = {"rd": gx(0), "rs1": base, "imm": off}
                else:
                    kw = {"rd": gx(0), "rs1": gx(1), "imm": imm(2)}
            else:
                kw = {"rd": gx(0), "rs1": gx(1), "imm": imm(2)}
        elif fmt == "S":
            base, off = _parse_mem(ops[1], symbols, item.line)
            rs2 = parse_fpr(ops[0]) if spec.rs2_file == "f" else gx(0)
            kw = {"rs1": base, "rs2": rs2, "imm": off}
        elif fmt == "B":
            kw = {"rs1": gx(0), "rs2": gx(1), "imm": target(2)}
        elif fmt == "U":
            kw = {"rd": gx(0), "imm": imm(1) << 12}
        elif fmt == "J":
            kw = {"rd": gx(0), "imm": target(1)}
        elif fmt in ("SHIFT64", "SHIFT32"):
            kw = {"rd": gx(0), "rs1": gx(1), "imm": imm(2)}
        elif fmt == "CSR":
            kw = {"rd": gx(0), "imm": _parse_csr(ops[1], item.line),
                  "rs1": gx(2)}
        elif fmt == "CSRI":
            kw = {"rd": gx(0), "imm": _parse_csr(ops[1], item.line),
                  "aux": imm(2)}
        elif fmt in ("SYS", "FENCE"):
            kw = {}
        elif fmt == "AMO":
            if mn.startswith("lr."):
                kw = {"rd": gx(0), "rs1": _parse_paren(ops[1], item.line)}
            else:
                kw = {"rd": gx(0), "rs2": gx(1),
                      "rs1": _parse_paren(ops[2], item.line)}
        elif fmt in ("FR", "FR3"):
            files = (spec.rd_file, spec.rs1_file, spec.rs2_file)
            regs = [parse_fpr(ops[i]) if files[i] == "f" else parse_gpr(ops[i])
                    for i in range(3)]
            kw = {"rd": regs[0], "rs1": regs[1], "rs2": regs[2]}
        elif fmt in ("FR1", "FCVT"):
            rd = parse_fpr(ops[0]) if spec.rd_file == "f" else gx(0)
            rs1 = parse_fpr(ops[1]) if spec.rs1_file == "f" else gx(1)
            kw = {"rd": rd, "rs1": rs1}
        elif fmt == "R4":
            kw = {"rd": parse_fpr(ops[0]), "rs1": parse_fpr(ops[1]),
                  "rs2": parse_fpr(ops[2]), "rs3": parse_fpr(ops[3])}
        elif fmt == "VSETVLI":
            sew, lmul = _parse_vtype(ops[2:], item.line)
            kw = {"rd": gx(0), "rs1": gx(1), "imm": encode_vtype(sew, lmul)}
        elif fmt == "VSETVL":
            kw = {"rd": gx(0), "rs1": gx(1), "rs2": gx(2)}
        elif fmt == "OPV":
            kw = self._parse_opv(spec, ops, symbols, item.line)
        elif fmt in ("VL", "VS"):
            reg = parse_vreg(ops[0])
            base = _parse_paren(ops[1], item.line)
            masked = len(ops) > 2 and ops[2] == "v0.t"
            key = "rd" if fmt == "VL" else "rs3"
            kw = {key: reg, "rs1": base, "aux": 0 if masked else 1}
        elif fmt in ("VLS", "VSS"):
            reg = parse_vreg(ops[0])
            base = _parse_paren(ops[1], item.line)
            stride = gx(2)
            masked = len(ops) > 3 and ops[3] == "v0.t"
            key = "rd" if fmt == "VLS" else "rs3"
            kw = {key: reg, "rs1": base, "rs2": stride,
                  "aux": 0 if masked else 1}
        elif fmt in ("VLX", "VSX"):
            # vlxei32.v vd, (rs1), vs2 [, v0.t]
            reg = parse_vreg(ops[0])
            base = _parse_paren(ops[1], item.line)
            index = parse_vreg(ops[2])
            masked = len(ops) > 3 and ops[3] == "v0.t"
            key = "rd" if fmt == "VLX" else "rs3"
            kw = {key: reg, "rs1": base, "rs2": index,
                  "aux": 0 if masked else 1}
        elif fmt == "XTIDX":
            kw = {"rd": gx(0), "rs1": gx(1), "rs2": gx(2),
                  "aux": imm(3) if len(ops) > 3 else 0}
        elif fmt == "XTIDXS":
            kw = {"rs3": gx(0), "rs1": gx(1), "rs2": gx(2),
                  "aux": imm(3) if len(ops) > 3 else 0}
        elif fmt == "XTBF":
            kw = {"rd": gx(0), "rs1": gx(1), "imm": imm(2) << 6 | imm(3)}
        elif fmt == "XTR1":
            kw = {"rd": gx(0), "rs1": gx(1)}
        elif fmt == "XTSH":
            kw = {"rd": gx(0), "rs1": gx(1), "imm": imm(2)}
        elif fmt == "XTMAC":
            kw = {"rd": gx(0), "rs1": gx(1), "rs2": gx(2)}
        elif fmt == "XTCMO":
            kw = {"rs1": gx(0)} if spec.rs1_file is not None and ops else {}
        else:  # pragma: no cover - all table formats handled
            raise AssemblerError(f"format {fmt} not handled")

        inst = Instruction(spec=spec, **kw)
        compute_operands(inst)
        return inst

    def _parse_opv(self, spec, ops: list[str], symbols, lineno: int) -> dict:
        masked = bool(ops) and ops[-1] == "v0.t"
        if masked:
            ops = ops[:-1]
        aux = 0 if masked else 1
        mn = spec.mnemonic
        if mn == "vmv.v.v":
            return {"rd": parse_vreg(ops[0]), "rs1": parse_vreg(ops[1]),
                    "aux": aux}
        if mn == "vmv.v.x":
            return {"rd": parse_vreg(ops[0]), "rs1": parse_gpr(ops[1]),
                    "aux": aux}
        if mn == "vmv.v.i":
            return {"rd": parse_vreg(ops[0]),
                    "imm": _parse_int(ops[1], symbols, lineno), "aux": aux}
        if mn == "vmv.x.s":
            return {"rd": parse_gpr(ops[0]), "rs2": parse_vreg(ops[1]),
                    "aux": aux}
        if mn == "vmv.s.x":
            return {"rd": parse_vreg(ops[0]), "rs1": parse_gpr(ops[1]),
                    "aux": aux}
        if mn == "vfsqrt.v":
            return {"rd": parse_vreg(ops[0]), "rs2": parse_vreg(ops[1]),
                    "aux": aux}
        if mn == "vid.v":
            return {"rd": parse_vreg(ops[0]), "aux": aux}
        if mn == "vcpop.m":
            return {"rd": parse_gpr(ops[0]), "rs2": parse_vreg(ops[1]),
                    "aux": aux}
        if mn.endswith(".mm"):
            return {"rd": parse_vreg(ops[0]), "rs2": parse_vreg(ops[1]),
                    "rs1": parse_vreg(ops[2]), "aux": 1}
        # MAC-family ops use RVV operand order vd, vs1/rs1, vs2;
        # everything else is vd, vs2, (vs1 | rs1 | fs1 | imm).
        base = mn.split(".", 1)[0]
        if base in ("vmacc", "vnmsac", "vmadd", "vwmacc", "vwmaccu",
                    "vfmacc", "vfnmacc", "vfmadd"):
            op1, op2 = ops[2], ops[1]
        else:
            op1, op2 = ops[1], ops[2]
        kw = {"rd": parse_vreg(ops[0]) if spec.rd_file == "v"
              else parse_gpr(ops[0]),
              "rs2": parse_vreg(op1), "aux": aux}
        if spec.rs1_file == "v":
            kw["rs1"] = parse_vreg(op2)
        elif spec.rs1_file == "x":
            kw["rs1"] = parse_gpr(op2)
        elif spec.rs1_file == "f":
            kw["rs1"] = parse_fpr(op2)
        else:  # immediate form
            kw["imm"] = _parse_int(op2, symbols, lineno)
        return kw


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------

def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


_MEM_RE = re.compile(r"^(.*)\(\s*(\w+)\s*\)$")


def _parse_mem(op: str, symbols: dict[str, int], lineno: int):
    m = _MEM_RE.match(op.strip())
    if not m:
        raise AssemblerError(f"line {lineno}: bad memory operand {op!r}")
    off_str = m.group(1).strip()
    offset = _parse_int(off_str, symbols, lineno) if off_str else 0
    return parse_gpr(m.group(2)), offset


def _parse_paren(op: str, lineno: int) -> int:
    op = op.strip()
    if op.startswith("(") and op.endswith(")"):
        return parse_gpr(op[1:-1].strip())
    raise AssemblerError(f"line {lineno}: expected (reg), got {op!r}")


def _parse_vtype(tokens: list[str], lineno: int) -> tuple[int, int]:
    """Parse the trailing 'e<sew>, m<lmul>' tokens of a vsetvli."""
    sew, lmul = 64, 1
    for token in tokens:
        token = token.strip().lower()
        m = _SEW_RE.match(token)
        if m:
            sew = int(m.group(1))
            continue
        m = _LMUL_RE.match(token)
        if m:
            lmul = int(m.group(1))
            continue
        if token in ("ta", "tu", "ma", "mu", "d1"):
            continue  # tail/mask agnosticism: accepted, ignored
        raise AssemblerError(f"line {lineno}: bad vtype token {token!r}")
    return sew, lmul


def _parse_csr(name: str, lineno: int) -> int:
    name = name.strip().lower()
    if name in CSR_NAMES:
        return CSR_NAMES[name]
    try:
        return int(name, 0)
    except ValueError:
        raise AssemblerError(f"line {lineno}: unknown CSR {name!r}") from None


_INT_TOKEN_RE = re.compile(r"^[\w.$+\-*()<>&|^~ ]+$")
_SYMBOL_RE = re.compile(r"[A-Za-z_.$][\w.$]*")


def _parse_int(text: str, symbols: dict[str, int], lineno: int) -> int:
    """Evaluate an immediate expression (ints, symbols, + - * << >> & | ^)."""
    text = text.strip()
    if not text:
        raise AssemblerError(f"line {lineno}: empty immediate")
    if len(text) == 3 and text[0] == text[2] == "'":
        return ord(text[1])
    try:
        return int(text, 0)
    except ValueError:
        pass
    if not _INT_TOKEN_RE.match(text):
        raise AssemblerError(f"line {lineno}: bad immediate {text!r}")

    def _sub(m: re.Match) -> str:
        name = m.group(0)
        if name in symbols:
            return str(symbols[name])
        if re.fullmatch(r"0[xXbBoO]\w+", name):
            return name
        raise AssemblerError(f"line {lineno}: undefined symbol {name!r}")

    expr = _SYMBOL_RE.sub(_sub, text)
    try:
        return int(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307
    except Exception as exc:
        raise AssemblerError(
            f"line {lineno}: cannot evaluate {text!r}: {exc}") from exc


def _parse_string(rest: str, lineno: int) -> bytes:
    rest = rest.strip()
    if not (rest.startswith('"') and rest.endswith('"')):
        raise AssemblerError(f"line {lineno}: expected string literal")
    body = rest[1:-1]
    return body.encode().decode("unicode_escape").encode("latin-1")


def _li_sequence(rd: int, value: int) -> list[tuple[str, int, int]]:
    """Decompose ``li rd, value`` into (mnemonic, rs1, imm) steps.

    Returns a list of ('addi'|'lui'|'addiw'|'slli', source-reg, imm)
    tuples forming the constant; the standard GAS recursive algorithm.
    """
    value = _to_signed64(value)
    if -2048 <= value < 2048:
        return [("addi", 0, value)]
    if -(1 << 31) <= value < (1 << 31):
        hi = (value + 0x800) >> 12
        lo = value - (hi << 12)
        seq: list[tuple[str, int, int]] = [("lui", 0, hi & 0xFFFFF)]
        if lo or not hi:
            seq.append(("addiw", rd, lo))
        return seq
    lo12 = ((value & 0xFFF) ^ 0x800) - 0x800
    hi = (value - lo12) >> 12
    seq = _li_sequence(rd, hi)
    seq.append(("slli", rd, 12))
    if lo12:
        seq.append(("addi", rd, lo12))
    return seq


def _sext20(value: int) -> int:
    value &= 0xFFFFF
    return value - (1 << 20) if value >= 1 << 19 else value


def _to_signed64(value: int) -> int:
    value &= (1 << 64) - 1
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def assemble(source: str, compress: bool = False,
             text_base: int = TEXT_BASE, data_base: int = DATA_BASE) -> Program:
    """Assemble *source* into a :class:`Program`."""
    return Assembler(compress=compress).assemble(source, text_base, data_base)
