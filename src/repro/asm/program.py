"""Assembled-program container and the default memory layout.

The layout mirrors a tiny bare-metal embedded map:

* text at ``TEXT_BASE``,
* data/bss at ``DATA_BASE``,
* a descending stack whose top is ``STACK_TOP``,
* an MMIO "tohost" word at ``TOHOST_ADDR`` used by the syscall shim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

TEXT_BASE = 0x0001_0000
DATA_BASE = 0x0010_0000
HEAP_BASE = 0x0080_0000
STACK_TOP = 0x0100_0000
TOHOST_ADDR = 0x4000_0000


@dataclass
class Program:
    """The output of the assembler: bytes plus a symbol table."""

    text: bytes
    data: bytes
    symbols: dict[str, int] = field(default_factory=dict)
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    entry: int = TEXT_BASE
    source: str = ""
    #: instruction address -> 1-based source line (assembler provenance)
    lines: dict[int, int] = field(default_factory=dict)

    def source_line(self, addr: int) -> str:
        """The source-text line an instruction address came from."""
        lineno = self.lines.get(addr, 0)
        if not lineno or not self.source:
            return ""
        all_lines = self.source.splitlines()
        if 1 <= lineno <= len(all_lines):
            return all_lines[lineno - 1].strip()
        return ""

    def symbol(self, name: str) -> int:
        """Address of a label; raises KeyError with context if absent."""
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(
                f"symbol {name!r} not defined (have: "
                f"{', '.join(sorted(self.symbols))})") from None

    @property
    def text_end(self) -> int:
        return self.text_base + len(self.text)

    @property
    def data_end(self) -> int:
        return self.data_base + len(self.data)
