"""Lockstep golden checker.

Runs a second, pristine shadow :class:`~repro.sim.emulator.Emulator`
instruction-by-instruction next to the primary and diffs architectural
state after every retire — the continuous cross-check-against-a-golden-
reference discipline of the RIKEN Post-K simulator validation.  The
first divergence is reported with the failing PC, the differing state,
and a disassembled window of the instructions leading up to it.

The shadow runs on its own memory, so a fault injected into the
primary (registers, PC, posted machine checks) shows up as a state
diff within one instruction of corrupting anything architectural.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..sim.emulator import Emulator, EmulatorError


@dataclass
class Divergence:
    """First point where the primary left the golden trajectory."""

    seq: int                 # retire count at divergence
    pc: int                  # pc of the diverging instruction
    reason: str              # "state-diff" | "primary-crash" | "exit"
    diffs: list[tuple[str, int, int]] = field(default_factory=list)
    window: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"lockstep divergence at pc={self.pc:#x} "
                 f"(instruction #{self.seq}, {self.reason})"]
        for name, golden, actual in self.diffs[:8]:
            lines.append(f"  {name}: golden={golden:#x} actual={actual:#x}")
        if len(self.diffs) > 8:
            lines.append(f"  ... and {len(self.diffs) - 8} more")
        if self.window:
            lines.append("instructions leading to divergence:")
            lines.extend(f"  {entry}" for entry in self.window)
        return "\n".join(lines)


@dataclass
class LockstepResult:
    steps: int
    divergence: Divergence | None

    @property
    def ok(self) -> bool:
        return self.divergence is None


class LockstepChecker:
    """Drive a primary and a golden shadow in lockstep."""

    def __init__(self, program: Program, primary: Emulator | None = None,
                 window: int = 8, compare_fp: bool = True,
                 shadow_kwargs: dict | None = None):
        self.primary = primary if primary is not None else Emulator(program)
        self.shadow = Emulator(program, **(shadow_kwargs or {}))
        self.window = window
        self.compare_fp = compare_fp

    def run(self, max_steps: int | None = None) -> LockstepResult:
        """Step both harts until exit, divergence, or *max_steps*."""
        primary, shadow = self.primary, self.shadow
        limit = max_steps if max_steps is not None \
            else primary.instruction_limit
        steps = 0
        while steps < limit:
            if primary.halted or shadow.halted:
                break
            try:
                record = primary.step()
            except EmulatorError as exc:
                # A crash is itself a detection: the golden shadow was
                # about to execute the same pc cleanly.
                return LockstepResult(steps, Divergence(
                    seq=steps, pc=primary.state.pc,
                    reason=f"primary-crash: {type(exc).__name__}",
                    window=primary.recent_instructions()[-self.window:]))
            shadow.step()
            steps += 1
            diffs = self._diff()
            if diffs:
                return LockstepResult(steps, Divergence(
                    seq=steps, pc=record.pc, reason="state-diff",
                    diffs=diffs,
                    window=primary.recent_instructions()[-self.window:]))
        if primary.halted != shadow.halted \
                or primary.exit_code != shadow.exit_code:
            return LockstepResult(steps, Divergence(
                seq=steps, pc=primary.state.pc, reason="exit",
                diffs=[("exit_code", shadow.exit_code or 0,
                        primary.exit_code or 0)],
                window=primary.recent_instructions()[-self.window:]))
        return LockstepResult(steps, None)

    def _diff(self) -> list[tuple[str, int, int]]:
        a = self.primary.state
        b = self.shadow.state
        diffs: list[tuple[str, int, int]] = []
        if a.pc != b.pc:
            diffs.append(("pc", b.pc, a.pc))
        if a.regs != b.regs:
            diffs.extend((f"x{i}", y, x)
                         for i, (x, y) in enumerate(zip(a.regs, b.regs))
                         if x != y)
        if self.compare_fp and a.fregs != b.fregs:
            diffs.extend((f"f{i}", y, x)
                         for i, (x, y) in enumerate(zip(a.fregs, b.fregs))
                         if x != y)
        if a.priv != b.priv:
            diffs.append(("priv", int(b.priv), int(a.priv)))
        return diffs


def check_program(program: Program, injector=None,
                  max_steps: int | None = None) -> LockstepResult:
    """Convenience: lockstep-run *program*, optionally under injection."""
    primary = Emulator(program, fault_injector=injector)
    return LockstepChecker(program, primary=primary).run(max_steps)
