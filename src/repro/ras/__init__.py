"""RAS (reliability/availability/serviceability) subsystem.

A commercial core survives soft errors; this package gives the model
the same story:

* :mod:`repro.ras.ecc` — SEC-DED codec and parity primitives,
* :mod:`repro.ras.injector` — deterministic seeded fault injection
  into registers, PC, cache data/tag arrays, and TLB entries,
* :mod:`repro.ras.lockstep` — a golden shadow emulator diffing
  architectural state every retire,
* machine-check delivery and the watchdog live in
  :mod:`repro.sim.emulator` (re-exported here),
* the injection campaign runner lives in
  :mod:`repro.harness.ras_campaign`.
"""

from ..sim.emulator import MachineCheckError, WatchdogExpired  # noqa: F401
from .ecc import (  # noqa: F401
    EccStatus,
    codeword_bits,
    flip_bits,
    parity,
    secded_decode,
    secded_encode,
)
from .injector import (  # noqa: F401
    ALL_TARGETS,
    ARCH_TARGETS,
    ARRAY_TARGETS,
    FaultInjector,
    FaultPlan,
    FaultRecord,
    FaultTarget,
)
from .lockstep import (  # noqa: F401
    Divergence,
    LockstepChecker,
    LockstepResult,
    check_program,
)
