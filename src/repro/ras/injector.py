"""Deterministic, seeded fault injector.

Follows the controlled-perturbation methodology: every fault is a
:class:`FaultPlan` naming a target array, a bit, and the instruction
count at which it strikes.  Plans are drawn from a seeded PRNG, so the
same seed always produces the same campaign — a divergence found at
seed 1234 reproduces forever.

Architectural targets (integer/FP registers, the PC) are flipped
directly in the emulator's :class:`~repro.sim.state.MachineState` by
the emulator's step hook.  Array targets (cache data/tag, TLB) are
applied to whatever :class:`~repro.mem.cache.Cache` / TLB objects the
campaign attaches, where the ECC/parity model resolves them.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass


class FaultTarget(enum.Enum):
    """Which array the bit flip lands in."""

    XREG = "xreg"            # integer register file
    FREG = "freg"            # FP register file
    PC = "pc"                # program counter latch
    CACHE_DATA = "cache-data"
    CACHE_TAG = "cache-tag"
    TLB = "tlb"


ARCH_TARGETS = (FaultTarget.XREG, FaultTarget.FREG, FaultTarget.PC)
ARRAY_TARGETS = (FaultTarget.CACHE_DATA, FaultTarget.CACHE_TAG,
                 FaultTarget.TLB)
ALL_TARGETS = ARCH_TARGETS + ARRAY_TARGETS


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled bit flip."""

    target: FaultTarget
    at_instret: int          # strike when state.instret reaches this
    index: int = 0           # register number (XREG/FREG); unused otherwise
    bit: int = 0             # bit position to flip
    bits: int = 1            # flipped bits (CACHE_DATA: 2 = uncorrectable)


@dataclass
class FaultRecord:
    """What actually happened when a plan fired."""

    plan: FaultPlan
    applied: bool
    note: str = ""


class FaultInjector:
    """Applies a schedule of faults to one hart and its arrays."""

    def __init__(self, seed: int = 0, plans: list[FaultPlan] | None = None):
        self.seed = seed
        self.rng = random.Random(seed)
        self.plans: list[FaultPlan] = sorted(
            plans or [], key=lambda p: p.at_instret)
        self.records: list[FaultRecord] = []
        self._next = 0
        self._caches: list = []
        self._tlb = None

    # -- wiring ---------------------------------------------------------------

    def attach_cache(self, cache) -> None:
        """Array faults may land in *cache* (call once per level)."""
        self._caches.append(cache)

    def attach_tlb(self, tlb) -> None:
        self._tlb = tlb

    # -- planning -------------------------------------------------------------

    def plan_random(self, count: int, window: int,
                    targets=ALL_TARGETS,
                    double_bit_rate: float = 0.0) -> list[FaultPlan]:
        """Draw *count* plans striking within the first *window* retires.

        Deterministic for a given seed/arguments.  *double_bit_rate* is
        the fraction of CACHE_DATA faults upgraded to uncorrectable
        two-bit flips.
        """
        rng = self.rng
        plans = []
        for _ in range(count):
            target = rng.choice(targets)
            at = rng.randrange(1, max(2, window))
            if target is FaultTarget.XREG:
                plan = FaultPlan(target, at, index=rng.randrange(1, 32),
                                 bit=rng.randrange(64))
            elif target is FaultTarget.FREG:
                plan = FaultPlan(target, at, index=rng.randrange(32),
                                 bit=rng.randrange(64))
            elif target is FaultTarget.PC:
                # Low-order bits: a realistic latch upset near the fetch
                # address (bit 0 would be masked by IALIGN anyway).
                plan = FaultPlan(target, at, bit=rng.randrange(1, 13))
            elif target is FaultTarget.CACHE_DATA:
                bits = 2 if rng.random() < double_bit_rate else 1
                plan = FaultPlan(target, at, bit=rng.randrange(512),
                                 bits=bits)
            elif target is FaultTarget.CACHE_TAG:
                plan = FaultPlan(target, at, bit=rng.randrange(40))
            else:
                plan = FaultPlan(FaultTarget.TLB, at,
                                 bit=rng.randrange(64))
            plans.append(plan)
        plans.sort(key=lambda p: p.at_instret)
        self.plans = sorted(self.plans + plans, key=lambda p: p.at_instret)
        return plans

    # -- application ----------------------------------------------------------

    def step_hook(self, emulator) -> None:
        """Called by the emulator at each instruction boundary."""
        instret = emulator.state.instret
        while (self._next < len(self.plans)
               and self.plans[self._next].at_instret <= instret):
            plan = self.plans[self._next]
            self._next += 1
            self.records.append(self._apply(emulator, plan))

    def _apply(self, emulator, plan: FaultPlan) -> FaultRecord:
        state = emulator.state
        target = plan.target
        if target is FaultTarget.XREG:
            if plan.index == 0:
                return FaultRecord(plan, False, "x0 is hardwired")
            state.regs[plan.index] ^= 1 << plan.bit
            return FaultRecord(plan, True,
                               f"x{plan.index} bit {plan.bit}")
        if target is FaultTarget.FREG:
            state.fregs[plan.index] ^= 1 << plan.bit
            return FaultRecord(plan, True,
                               f"f{plan.index} bit {plan.bit}")
        if target is FaultTarget.PC:
            state.pc ^= 1 << plan.bit
            return FaultRecord(plan, True, f"pc bit {plan.bit}")
        if target in (FaultTarget.CACHE_DATA, FaultTarget.CACHE_TAG):
            if not self._caches:
                return FaultRecord(plan, False, "no cache attached")
            cache = self.rng.choice(self._caches)
            if target is FaultTarget.CACHE_DATA:
                hit = cache.inject_data_fault(bits=plan.bits, rng=self.rng)
            else:
                hit = cache.inject_tag_fault(rng=self.rng)
            if hit is None:
                return FaultRecord(plan, False,
                                   f"{cache.name}: no resident line")
            return FaultRecord(plan, True,
                               f"{cache.name} line {hit:#x}")
        if target is FaultTarget.TLB:
            if self._tlb is None:
                return FaultRecord(plan, False, "no TLB attached")
            if not self._tlb.inject_fault(rng=self.rng):
                return FaultRecord(plan, False, "TLB empty")
            return FaultRecord(plan, True, "TLB entry poisoned")
        return FaultRecord(plan, False, "unknown target")

    @property
    def applied_count(self) -> int:
        return sum(1 for r in self.records if r.applied)
