"""SEC-DED (extended Hamming) codec and parity helpers.

Commercial cores protect their SRAM arrays the way section II of the
paper implies for a shippable part: data arrays carry SEC-DED ECC
(single-error-correct, double-error-detect) and tag arrays carry
parity.  This module implements the classic extended Hamming code for
an arbitrary data width (72,64 for the 64-bit words the model uses):

* check bits live at power-of-two codeword positions ``1, 2, 4, ...``,
* data bits fill the remaining positions ``3, 5, 6, 7, ...``,
* an overall parity bit at position 0 upgrades single-error-correct
  Hamming to double-error-*detect*.

Decoding classifies a codeword as clean, corrected (exactly one bit
flipped, repaired in place) or detected-uncorrectable (two bits
flipped).  Three or more flipped bits can alias onto a correction —
the same silent-corruption window real SEC-DED hardware has.
"""

from __future__ import annotations

import enum
from functools import lru_cache


class EccStatus(enum.Enum):
    """Outcome of decoding one protected word."""

    CLEAN = "clean"
    CORRECTED = "corrected"      # single-bit error repaired
    DETECTED = "detected"        # double-bit error: uncorrectable


def check_bits(data_bits: int = 64) -> int:
    """Number of Hamming check bits for *data_bits* of payload."""
    m = 0
    while (1 << m) < data_bits + m + 1:
        m += 1
    return m


def codeword_bits(data_bits: int = 64) -> int:
    """Total SEC-DED codeword width (payload + check + overall parity)."""
    return data_bits + check_bits(data_bits) + 1


@lru_cache(maxsize=8)
def _data_positions(data_bits: int) -> tuple[int, ...]:
    """Codeword positions holding data bits (non-powers-of-two)."""
    positions = []
    pos = 1
    while len(positions) < data_bits:
        if pos & (pos - 1):      # skip check-bit positions 1, 2, 4, ...
            positions.append(pos)
        pos += 1
    return tuple(positions)


def parity(word: int) -> int:
    """Even-parity bit of *word* (1 when the popcount is odd)."""
    return word.bit_count() & 1


def secded_encode(word: int, data_bits: int = 64) -> int:
    """Encode *word* into a SEC-DED codeword (bit i = position i)."""
    word &= (1 << data_bits) - 1
    codeword = 0
    syndrome = 0
    for i, pos in enumerate(_data_positions(data_bits)):
        if (word >> i) & 1:
            codeword |= 1 << pos
            syndrome ^= pos
    # Check bit 2^i zeroes syndrome bit i over the full codeword.
    m = check_bits(data_bits)
    for i in range(m):
        if (syndrome >> i) & 1:
            codeword |= 1 << (1 << i)
    # Overall parity (position 0) makes the whole codeword even-parity.
    codeword |= parity(codeword)
    return codeword


def secded_decode(codeword: int,
                  data_bits: int = 64) -> tuple[int, EccStatus]:
    """Decode a codeword; returns ``(word, status)``.

    A single flipped bit (anywhere, including the check/parity bits) is
    repaired and reported as CORRECTED; two flipped bits are DETECTED
    and the returned word is not to be trusted.
    """
    syndrome = 0
    bits = codeword >> 1
    pos = 1
    while bits:
        if bits & 1:
            syndrome ^= pos
        pos += 1
        bits >>= 1
    overall = parity(codeword)
    if syndrome == 0 and overall == 0:
        status = EccStatus.CLEAN
    elif overall == 1:
        # Odd overall parity: exactly one bit flipped.  The syndrome is
        # its position (0 means the overall-parity bit itself).
        codeword ^= 1 << syndrome
        status = EccStatus.CORRECTED
    else:
        # Even parity but nonzero syndrome: two bits flipped.
        status = EccStatus.DETECTED
    word = 0
    for i, position in enumerate(_data_positions(data_bits)):
        if (codeword >> position) & 1:
            word |= 1 << i
    return word, status


def flip_bits(codeword: int, positions) -> int:
    """Return *codeword* with each bit position in *positions* flipped."""
    for position in positions:
        codeword ^= 1 << position
    return codeword
