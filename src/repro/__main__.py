"""Command-line interface.

    python -m repro run program.s [--core xt910] [--mmu] [--profile]
    python -m repro run program.s --uarch my.yaml --extend overlay.yaml
    python -m repro run program.s --sanitize
    python -m repro lint program.s [--json]
    python -m repro lint --workloads [--update-baseline]
    python -m repro disasm program.s
    python -m repro profile program.s [--core xt910] [--top 15]
    python -m repro compare program.s --cores xt910 u74 cortex-a73
    python -m repro bench [--quick] [--out BENCH_emulator.json]
    python -m repro bench --pipeline [--out BENCH_pipeline.json]
    python -m repro bench --service [--out BENCH_service.json]
    python -m repro bench --tier 3 [--out BENCH_tier3.json]
    python -m repro bench --vector [--out BENCH_vector.json]
    python -m repro submit prog1.s prog2.s [--jobs 4] [--mode auto]
    python -m repro submit --workloads [coremark-int ...] --jobs 8
    python -m repro serve [--jobs 4]              (JSONL jobs on stdin)
    python -m repro explore sweep.yaml [--jobs 8] [--out report.json]
    python -m repro explore --depth [--out BENCH_explore.json]
    python -m repro harness [experiment ...]      (alias of repro.harness)

``--core`` everywhere takes a preset name *or* a config document path
(.yaml/.yml/.json); ``--extend`` merges overlay documents on top in
order (see ``repro.uarch.uconfig``).
"""

from __future__ import annotations

import argparse
import sys

from .asm import assemble
from .harness.runner import run_on_core
from .isa.disasm import disassemble_program
from .sim import Emulator, WatchdogExpired
from .tools import profile_program
from .uarch.presets import PRESETS


def _load(path: str, compress: bool) -> "Program":  # noqa: F821
    with open(path) as handle:
        return assemble(handle.read(), compress=compress)


def _core_config(core, extends=()):
    """Resolve a ``--core``/``--uarch`` value into a CoreConfig, lazily.

    argparse no longer bakes ``choices=sorted(PRESETS)`` into the
    parsers, so *core* may be a preset name or a config document path —
    and an unknown name gets the validator's error message (which
    lists the presets) instead of a parser rejection.
    """
    from .uarch import uconfig

    try:
        return uconfig.resolve_core(core, tuple(extends or ()))
    except uconfig.UconfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def cmd_run(args) -> int:
    program = _load(args.program, not args.no_compress)
    if args.core and args.uarch:
        print("error: --core and --uarch are exclusive (both name the "
              "timing config)", file=sys.stderr)
        return 2
    core_arg = args.uarch or args.core
    if args.extend and not core_arg:
        print("error: --extend overlays need a --core or --uarch base",
              file=sys.stderr)
        return 2
    if args.profile and not core_arg:
        print("error: --profile needs --core (it profiles the harness "
              "path: emulator + timing model)", file=sys.stderr)
        return 2
    if args.trace and not core_arg:
        print("error: --trace needs --core (stage cycles come from the "
              "timing model)", file=sys.stderr)
        return 2
    if args.trace and args.profile:
        print("error: --trace and --profile are exclusive",
              file=sys.stderr)
        return 2
    if args.sanitize:
        if core_arg or args.mmu or args.lockstep:
            print("error: --sanitize hooks the block-cache fast path "
                  "and excludes --core/--mmu/--lockstep", file=sys.stderr)
            return 2
        return _run_sanitized(program, args)
    if core_arg:
        config = _core_config(core_arg, args.extend)
        breakdown = None
        tracer = None
        if args.profile:
            from .harness.runner import profile_run, render_profile

            result, breakdown = profile_run(program, config)
        else:
            if args.trace:
                from .obs import PipelineTracer

                tracer = PipelineTracer(window=args.trace_window)
            result = run_on_core(program, config, tracer=tracer,
                                 max_insts=args.max_insts,
                                 partial_on_watchdog=True)
        if result.watchdog is not None:
            first_line = str(result.watchdog.args[0]).splitlines()[0]
            print(f"{first_line}; stats below cover the bounded prefix")
        print(f"core {config.name}: {result.cycles} cycles, "
              f"IPC {result.ipc:.3f}, exit {result.exit_code}")
        if result.stdout:
            print(result.stdout, end="")
        if args.stats:
            print(result.stats.summary())
        if breakdown is not None:
            print(render_profile(breakdown))
        if tracer is not None:
            tracer.write(args.trace)
            print(f"wrote {args.trace} ({len(tracer)} of "
                  f"{tracer.recorded} instructions in window)")
        return result.exit_code
    emulator = Emulator(program, enable_mmu=args.mmu,
                        instruction_limit=args.max_insts)
    if args.lockstep:
        from .ras.lockstep import LockstepChecker

        checker = LockstepChecker(
            program, primary=emulator,
            shadow_kwargs={"enable_mmu": args.mmu,
                           "instruction_limit": args.max_insts})
        result = checker.run(args.max_steps)
        if emulator.stdout:
            print(emulator.stdout, end="")
        if not result.ok:
            print(result.divergence.render())
            return 1
        if not emulator.halted:
            print(f"watchdog: lockstep stopped after {result.steps} "
                  f"instructions without exit (pc={emulator.state.pc:#x})")
            return 2
        print(f"lockstep: {result.steps} instructions, no divergence; "
              f"exit {emulator.exit_code}")
        return emulator.exit_code or 0
    try:
        code = emulator.run(args.max_steps)
    except WatchdogExpired as exc:
        print(exc)
        return 2
    if emulator.stdout:
        print(emulator.stdout, end="")
    print(f"exit {code} after {emulator.state.instret} instructions")
    return code


def _run_sanitized(program, args) -> int:
    from .analysis import Sanitizer, SanitizerViolation

    emulator = Emulator(program, instruction_limit=args.max_insts)
    emulator.sanitizer = Sanitizer(program)
    try:
        code = emulator.run_fast(args.max_steps)
    except SanitizerViolation as exc:
        if emulator.stdout:
            print(emulator.stdout, end="")
        print(f"sanitizer: {exc.violation.render()}")
        return 1
    except WatchdogExpired as exc:
        print(exc)
        return 2
    if emulator.stdout:
        print(emulator.stdout, end="")
    stats = emulator.sanitizer.summary()
    print(f"exit {code} after {emulator.state.instret} instructions "
          f"(sanitized: {stats['blocks_checked']} blocks, "
          f"max call depth {stats['max_call_depth']}, "
          f"{stats['violations']} violations)")
    return code


def cmd_lint(args) -> int:
    import json as json_mod

    from .analysis import (compare_to_baseline, lint_program,
                           lint_workloads, load_baseline, save_baseline)
    from .analysis.lint import DEFAULT_BASELINE

    if bool(args.program) == bool(args.workloads):
        print("error: lint needs a program file or --workloads",
              file=sys.stderr)
        return 2
    if args.workloads:
        reports = lint_workloads()
    else:
        program = _load(args.program, not args.no_compress)
        reports = [lint_program(program, name=args.program)]

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.update_baseline:
        save_baseline(reports, baseline_path)
        total = sum(len(r.keys) for r in reports)
        print(f"wrote {baseline_path} ({total} accepted findings)")
        return 0

    # A single-file lint only honors an explicitly-passed baseline; the
    # committed one keys findings by workload name.
    use_baseline = not args.no_baseline and (args.workloads
                                             or args.baseline is not None)
    baseline = load_baseline(baseline_path) if use_baseline else {}
    new, stale = compare_to_baseline(reports, baseline)
    if args.json:
        payload = {
            "programs": [r.to_dict() for r in reports],
            "new": [{"program": name, **_finding_json(f)}
                    for name, f in new],
            "stale": [{"program": name, "key": key}
                      for name, key in stale],
        }
        print(json_mod.dumps(payload, indent=2))
    else:
        for report in reports:
            status = "clean" if not report.findings else \
                f"{len(report.findings)} finding(s)"
            print(f"{report.name}: {report.instructions} insts, "
                  f"{report.blocks} blocks, {report.functions} "
                  f"function(s) -- {status}")
            for finding in report.findings:
                marker = " " if finding.key in \
                    set(baseline.get(report.name, ())) else "*"
                print(f"  {marker} {finding.render()}")
        for name, key in stale:
            print(f"stale baseline entry: {name}: {key}")
    if new:
        against = f"not in baseline ({baseline_path})" if use_baseline \
            else "reported"
        print(f"lint: {len(new)} finding(s) {against}", file=sys.stderr)
        return 1
    return 0


def _finding_json(finding) -> dict:
    from .analysis.lint import finding_dict

    return finding_dict(finding)


def cmd_disasm(args) -> int:
    program = _load(args.program, not args.no_compress)
    for line in disassemble_program(program):
        print(line)
    return 0


def cmd_profile(args) -> int:
    program = _load(args.program, not args.no_compress)
    profile = profile_program(program, core=_core_config(args.core))
    print(profile.report(top=args.top))
    return 0


def cmd_metrics(args) -> int:
    from .obs import MetricsRegistry, collect_run, diff_metrics, render_diff

    if args.diff:
        if args.program:
            print("error: --diff compares two saved snapshots and takes "
                  "no program", file=sys.stderr)
            return 2
        before = MetricsRegistry.load(args.diff[0])
        after = MetricsRegistry.load(args.diff[1])
        deltas = diff_metrics(before.as_dict(), after.as_dict())
        print(render_diff(deltas))
        return 1 if deltas else 0
    if not args.program:
        print("error: metrics needs a program file or --diff A B",
              file=sys.stderr)
        return 2
    program = _load(args.program, not args.no_compress)
    config = _core_config(args.uarch or args.core, args.extend)
    result = run_on_core(program, config, tier=args.tier)
    registry = collect_run(result)
    if args.out:
        registry.save(args.out)
        print(f"wrote {args.out} ({len(registry)} metrics)")
    elif args.csv:
        print(registry.to_csv(), end="")
    else:
        print(registry.to_json())
    return 0


def cmd_top(args) -> int:
    from .obs import GuestProfiler

    program = _load(args.program, not args.no_compress)
    profiler = GuestProfiler()
    run_on_core(program, _core_config(args.core), profiler=profiler)
    report = profiler.attribute(program)
    print(report.render(top=args.top, cumulative=args.cumulative))
    return 0


def cmd_compare(args) -> int:
    program = _load(args.program, not args.no_compress)
    rows = []
    for core in args.cores:
        config = _core_config(core, args.extend)
        result = run_on_core(program, config)
        rows.append((config.name, result.cycles, result.ipc))
    base = rows[0][1]
    print(f"{'core':14s}{'cycles':>10}{'IPC':>8}{'vs ' + rows[0][0]:>12}")
    for core, cycles, ipc in rows:
        print(f"{core:14s}{cycles:>10}{ipc:>8.3f}{base / cycles:>11.2f}x")
    return 0


def cmd_bench(args) -> int:
    import os

    exclusive = [flag for flag in ("pipeline", "service", "vector")
                 if getattr(args, flag)]
    if len(exclusive) > 1:
        print(f"error: --{' and --'.join(exclusive)} are exclusive",
              file=sys.stderr)
        return 2
    if args.tier is not None and exclusive:
        print("error: --tier applies to the emulator bench only",
              file=sys.stderr)
        return 2
    if args.pipeline:
        from .harness import pipebench as bench_mod
    elif args.service:
        from .service import bench as bench_mod
    elif args.vector:
        from .harness import vecbench as bench_mod
    elif args.tier == 3:
        from .harness import tierbench as bench_mod
    else:
        # tiers 1 and 2 are the emulator bench's precise/fast columns
        from .harness import perfbench as bench_mod

    if args.baseline and not os.path.exists(args.baseline):
        print(f"error: baseline {args.baseline} not found", file=sys.stderr)
        return 2
    if args.service:
        payload = bench_mod.run_bench(quick=args.quick)
    else:
        payload = bench_mod.run_bench(quick=args.quick, repeat=args.repeat)
    print(bench_mod.render(payload))
    if args.out:
        bench_mod.save(payload, args.out)
        print(f"wrote {args.out}")
    if args.baseline:
        tolerance = (args.tolerance if args.tolerance is not None
                     else bench_mod.DEFAULT_TOLERANCE)
        baseline = bench_mod.load(args.baseline)
        failures = bench_mod.check_regression(payload, baseline,
                                              tolerance=tolerance)
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            return 1
        print(f"no regression vs {args.baseline} "
              f"(tolerance {tolerance:.0%})")
    return 0


def _submit_specs(args) -> list:
    """Build the JobSpec batch from files or bundled workloads."""
    from .service import JobSpec

    core = None if args.core in (None, "none") else args.core
    uarch = None
    if args.uarch or args.extend:
        from .uarch import uconfig

        # Resolve and validate up front: a bad document fails the whole
        # submit with the validator's message, before any job runs.
        config = _core_config(args.uarch or core or "xt910", args.extend)
        uarch = uconfig.config_to_doc(config)
        core = config.name
    common = dict(core=core, uarch=uarch, mode=args.mode,
                  max_insts=args.max_insts,
                  wall_timeout_s=args.wall_timeout, vet=not args.no_vet)
    specs = []
    if args.workloads:
        from .workloads import all_workloads

        workloads = all_workloads()
        if args.targets:
            known = {w.name for w in workloads}
            missing = [name for name in args.targets if name not in known]
            if missing:
                raise SystemExit(
                    f"error: unknown workload(s) {', '.join(missing)}; "
                    f"known: {', '.join(sorted(known))}")
            workloads = [w for w in workloads if w.name in args.targets]
        for workload in workloads:
            specs.append(JobSpec(source=workload.source,
                                 name=workload.name,
                                 compress=workload.compress, **common))
    else:
        for path in args.targets:
            with open(path) as handle:
                specs.append(JobSpec(source=handle.read(), name=path,
                                     compress=not args.no_compress,
                                     **common))
    return specs


def cmd_submit(args) -> int:
    import json as json_mod

    from .service import JobService, RetryPolicy

    if not args.workloads and not args.targets:
        print("error: submit needs program files or --workloads",
              file=sys.stderr)
        return 2
    specs = _submit_specs(args)
    service = JobService(workers=args.jobs,
                         retry=RetryPolicy(max_attempts=args.max_attempts),
                         isolation=not args.no_isolation)
    results = service.run(specs)
    if args.json:
        print(json_mod.dumps({
            "results": [r.to_dict() for r in results],
            "counters": service.counters(),
        }, indent=2, sort_keys=True))
    else:
        for result in results:
            print(result.summary())
        counters = service.counters()
        print(f"-- {counters['jobs_completed']}/{len(results)} completed "
              f"({counters['jobs_degraded']} degraded, "
              f"{counters['retries']} retries, "
              f"{counters['cache_hits']} cache hits) "
              f"p50 {counters['latency_p50_ms']:.0f}ms "
              f"p99 {counters['latency_p99_ms']:.0f}ms")
    return 0 if all(r.ok for r in results) else 1


def cmd_explore(args) -> int:
    from .harness import explore
    from .uarch import uconfig

    if bool(args.spec) == bool(args.depth):
        print("error: explore needs a sweep spec file or --depth",
              file=sys.stderr)
        return 2
    store = explore.ExploreStore(args.store)
    if args.depth:
        payload = explore.run_bench(quick=args.quick, jobs=args.jobs,
                                    store=store)
        print(explore.render(payload))
        if args.out:
            explore.save(payload, args.out)
            print(f"wrote {args.out}")
        if args.baseline:
            baseline = explore.load(args.baseline)
            failures = explore.check_regression(payload, baseline)
            for failure in failures:
                print(f"REGRESSION: {failure}")
            if failures:
                return 1
            print(f"no regression vs {args.baseline} (simulated "
                  f"cycles compared exactly)")
        return 0
    try:
        spec = explore.load_sweep(args.spec)
        report = explore.run_sweep(spec, jobs=args.jobs, store=store,
                                   timeout=args.timeout, progress=print)
    except (explore.ExploreError, uconfig.UconfigError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{spec.name}: {report.points} point(s) x "
          f"{len(spec.workloads)} workload(s) = {report.cells} cells; "
          f"{report.cache_hits} cached, {report.simulated} simulated")
    if args.out:
        report.save(args.out)
        print(f"wrote {args.out}")
    return 0


def cmd_serve(args) -> int:
    """JSONL job server: one JobSpec per stdin line, one JobResult per
    stdout line.  Malformed lines get a rejected result, not a crash."""
    import json as json_mod

    from .service import GuestFault, JobResult, JobService, JobState

    service = JobService(workers=args.jobs,
                         isolation=not args.no_isolation)
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            from .service import JobSpec

            spec = JobSpec.from_dict(json_mod.loads(line))
        except Exception as exc:
            bad = JobResult(
                name="?", state=JobState.REJECTED,
                error=GuestFault(f"unparseable job line: {exc}",
                                 retryable=False).to_dict())
            print(json_mod.dumps(bad.to_dict()), flush=True)
            continue
        result = service.submit(spec)
        print(json_mod.dumps(result.to_dict()), flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Xuantie-910 reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("program", help="assembly source file")
        p.add_argument("--no-compress", action="store_true",
                       help="disable RVC compression")

    #: help-text tail shared by every --core option; the actual
    #: resolution is lazy (see _core_config), never an argparse choices
    #: list, so config files work everywhere a preset does.
    core_help = (f"preset ({', '.join(sorted(PRESETS))}) or config "
                 f"document path (.yaml/.json)")

    p_run = sub.add_parser("run", help="assemble and execute / time")
    add_common(p_run)
    p_run.add_argument("--core", default=None, metavar="CORE",
                       help=f"time on this core model: {core_help} "
                            f"(default: emulate only)")
    p_run.add_argument("--uarch", default=None, metavar="FILE",
                       help="core config document (equivalent to "
                            "--core FILE; exclusive with --core)")
    p_run.add_argument("--extend", action="append", default=[],
                       metavar="FILE",
                       help="overlay document(s) merged onto the "
                            "--core/--uarch base, in order (repeatable)")
    p_run.add_argument("--mmu", action="store_true",
                       help="enable SV39 translation in the emulator")
    p_run.add_argument("--stats", action="store_true")
    p_run.add_argument("--profile", action="store_true",
                       help="with --core: wall-time breakdown of the "
                            "harness (emulation vs timing model vs "
                            "memory hierarchy)")
    p_run.add_argument("--max-steps", type=int, default=None)
    p_run.add_argument("--max-insts", type=int, default=None,
                       help="watchdog instruction limit (default 50M); "
                            "expiry raises a post-mortem dump")
    p_run.add_argument("--lockstep", action="store_true",
                       help="run a golden shadow emulator and diff "
                            "architectural state every instruction")
    p_run.add_argument("--sanitize", action="store_true",
                       help="run on the block-cache path with shadow "
                            "init-state and call-stack checking; exits "
                            "1 on the first violation")
    p_run.add_argument("--trace", metavar="FILE", default=None,
                       help="with --core: write the pipeline event "
                            "trace here (Konata/Kanata format; a "
                            ".jsonl suffix selects JSONL)")
    p_run.add_argument("--trace-window", type=int, default=65536,
                       metavar="N",
                       help="trace ring-buffer size: keep the last N "
                            "instructions (default 65536)")
    p_run.set_defaults(fn=cmd_run)

    p_lint = sub.add_parser(
        "lint", help="static analysis: CFG recovery + checker suite")
    p_lint.add_argument("program", nargs="?", default=None,
                        help="assembly source file (or use --workloads)")
    p_lint.add_argument("--no-compress", action="store_true",
                        help="disable RVC compression")
    p_lint.add_argument("--workloads", action="store_true",
                        help="lint every bundled workload")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    p_lint.add_argument("--baseline", default=None,
                        help="accepted-findings JSON (default: the "
                             "committed lint_baseline.json)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignore the baseline")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's "
                             "findings")
    p_lint.set_defaults(fn=cmd_lint)

    p_dis = sub.add_parser("disasm", help="disassemble the text section")
    add_common(p_dis)
    p_dis.set_defaults(fn=cmd_disasm)

    p_prof = sub.add_parser("profile", help="per-PC hot-spot profile")
    add_common(p_prof)
    p_prof.add_argument("--core", default="xt910", metavar="CORE",
                        help=core_help)
    p_prof.add_argument("--top", type=int, default=15)
    p_prof.set_defaults(fn=cmd_profile)

    p_met = sub.add_parser(
        "metrics", help="walk every model counter into one namespaced "
                        "dict; or diff two saved snapshots")
    p_met.add_argument("program", nargs="?", default=None,
                       help="assembly source file (or use --diff)")
    p_met.add_argument("--no-compress", action="store_true",
                       help="disable RVC compression")
    p_met.add_argument("--core", default="xt910", metavar="CORE",
                       help=core_help)
    p_met.add_argument("--uarch", default=None, metavar="FILE",
                       help="core config document (overrides --core)")
    p_met.add_argument("--extend", action="append", default=[],
                       metavar="FILE",
                       help="overlay document(s) merged onto the base "
                            "config, in order (repeatable)")
    p_met.add_argument("--tier", type=int, default=None, choices=[1, 2, 3],
                       help="execution tier for the run; 3 adds the "
                            "sim.codegen.* translator counters")
    p_met.add_argument("--out", default=None, metavar="FILE",
                       help="write the snapshot (JSON; .csv for CSV)")
    p_met.add_argument("--csv", action="store_true",
                       help="print CSV instead of JSON")
    p_met.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                       help="compare two saved JSON snapshots; exits 1 "
                            "when they differ")
    p_met.set_defaults(fn=cmd_metrics)

    p_top = sub.add_parser(
        "top", help="guest cycle profile rolled up to functions")
    add_common(p_top)
    p_top.add_argument("--core", default="xt910", metavar="CORE",
                       help=core_help)
    p_top.add_argument("--top", type=int, default=20)
    p_top.add_argument("--cumulative", action="store_true",
                       help="rank by call-period (inclusive) cycles")
    p_top.set_defaults(fn=cmd_top)

    p_cmp = sub.add_parser("compare", help="same binary on several cores")
    add_common(p_cmp)
    p_cmp.add_argument("--cores", nargs="+", default=["xt910", "u74"],
                       metavar="CORE",
                       help=f"each a {core_help}")
    p_cmp.add_argument("--extend", action="append", default=[],
                       metavar="FILE",
                       help="overlay document(s) merged onto *every* "
                            "compared core, in order (repeatable)")
    p_cmp.set_defaults(fn=cmd_compare)

    p_sub = sub.add_parser(
        "submit", help="run a batch of jobs through the fault-tolerant "
                       "service (crash isolation, watchdogs, retry, "
                       "fast->precise fallback)")
    p_sub.add_argument("targets", nargs="*",
                       help="assembly source files (or workload names "
                            "with --workloads)")
    p_sub.add_argument("--workloads", action="store_true",
                       help="submit bundled workloads instead of files "
                            "(all of them, or the named subset)")
    p_sub.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker-pool width (default: up to 8)")
    p_sub.add_argument("--core", default="xt910", metavar="CORE",
                       help=f"timing core ({core_help}), or 'none' "
                            f"for functional-only")
    p_sub.add_argument("--uarch", default=None, metavar="FILE",
                       help="core config document; resolved and "
                            "validated up front, shipped inline in "
                            "each JobSpec")
    p_sub.add_argument("--extend", action="append", default=[],
                       metavar="FILE",
                       help="overlay document(s) merged onto the "
                            "--core/--uarch base, in order (repeatable)")
    p_sub.add_argument("--mode", default="auto",
                       choices=["auto", "tier3", "fast", "precise"],
                       help="execution tier; auto = tier3 with fast and "
                            "precise fallbacks on tier failure/divergence")
    p_sub.add_argument("--max-insts", type=int, default=5_000_000,
                       help="per-job instruction watchdog (default 5M)")
    p_sub.add_argument("--wall-timeout", type=float, default=60.0,
                       metavar="S",
                       help="per-job wall-clock watchdog in seconds")
    p_sub.add_argument("--max-attempts", type=int, default=3,
                       help="attempts per job for transient failures")
    p_sub.add_argument("--no-vet", action="store_true",
                       help="skip static admission vetting")
    p_sub.add_argument("--no-isolation", action="store_true",
                       help="run jobs inline (no crash containment)")
    p_sub.add_argument("--no-compress", action="store_true",
                       help="disable RVC compression")
    p_sub.add_argument("--json", action="store_true",
                       help="machine-readable results on stdout")
    p_sub.set_defaults(fn=cmd_submit)

    p_srv = sub.add_parser(
        "serve", help="JSONL job server: JobSpec per stdin line, "
                      "JobResult per stdout line")
    p_srv.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker-pool width (default: up to 8)")
    p_srv.add_argument("--no-isolation", action="store_true",
                       help="run jobs inline (no crash containment)")
    p_srv.set_defaults(fn=cmd_serve)

    p_exp = sub.add_parser(
        "explore", help="design-space sweep: expand config axes into "
                        "points, run them through the worker pool, "
                        "reuse results from the content-addressed "
                        "store")
    p_exp.add_argument("spec", nargs="?", default=None,
                       help="sweep spec file (YAML/JSON): base config, "
                            "workloads, axes (or use --depth)")
    p_exp.add_argument("--depth", action="store_true",
                       help="run the committed pipeline-depth bench "
                            "(the BENCH_explore.json payload: "
                            "frequency/depth trade-off over CoreMark)")
    p_exp.add_argument("--quick", action="store_true",
                       help="with --depth: coremark-list only (the CI "
                            "smoke column)")
    p_exp.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker-pool width (default: serial)")
    p_exp.add_argument("--store", default=None, metavar="DIR",
                       help="result store directory (default: "
                            "$REPRO_EXPLORE_CACHE_DIR or "
                            "~/.cache/repro-explore)")
    p_exp.add_argument("--timeout", type=float, default=None,
                       metavar="S",
                       help="per-cell wall-clock budget (parallel "
                            "runs only)")
    p_exp.add_argument("--out", default=None, metavar="FILE",
                       help="write the sweep report / bench payload "
                            "here (JSON)")
    p_exp.add_argument("--baseline", default=None, metavar="FILE",
                       help="with --depth: committed BENCH_explore."
                            "json to gate against; exits 1 on any "
                            "cycle difference")
    p_exp.set_defaults(fn=cmd_explore)

    p_bench = sub.add_parser(
        "bench", help="emulator MIPS + harness wall-clock benchmark")
    p_bench.add_argument("--pipeline", action="store_true",
                         help="benchmark the 12-stage timing model "
                              "(fast path vs frozen reference oracle) "
                              "instead of the emulator; writes/reads "
                              "BENCH_pipeline.json-shaped payloads")
    p_bench.add_argument("--service", action="store_true",
                         help="benchmark the job service (throughput + "
                              "latency percentiles under process "
                              "isolation); writes/reads "
                              "BENCH_service.json-shaped payloads")
    p_bench.add_argument("--tier", type=int, default=None,
                         choices=[1, 2, 3],
                         help="execution tier to benchmark: 3 runs the "
                              "cold/warm specializing-translator bench "
                              "(BENCH_tier3.json); 1 and 2 are the "
                              "precise/fast columns of the default "
                              "emulator bench")
    p_bench.add_argument("--vector", action="store_true",
                         help="benchmark the RVV kernel suite: numpy-"
                              "batched vs per-element reference vector "
                              "engine across tiers, with bit-identity "
                              "verified per run; writes/reads "
                              "BENCH_vector.json-shaped payloads")
    p_bench.add_argument("--quick", action="store_true",
                         help="CoreMark kernels only (the CI smoke set)")
    p_bench.add_argument("--repeat", type=int, default=3,
                         help="timing runs per cell; best is kept")
    p_bench.add_argument("--out", default=None,
                         help="write the JSON payload here "
                              "(e.g. BENCH_emulator.json)")
    p_bench.add_argument("--baseline", default=None,
                         help="committed BENCH_emulator.json to gate "
                              "against; exits 1 on regression")
    p_bench.add_argument("--tolerance", type=float, default=None,
                         help="allowed fractional drop vs baseline "
                              "(default: the bench's own tolerance, "
                              "0.30 for MIPS benches, 0.50 for "
                              "--service)")
    p_bench.set_defaults(fn=cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
