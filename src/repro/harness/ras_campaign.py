"""RAS fault-injection campaign over the CoreMark kernels.

Sweeps N deterministic seeded bit flips across architectural registers,
the PC, cache data/tag arrays, and TLB entries while a CoreMark kernel
runs, and classifies every injection:

* ``corrected``          — SEC-DED repaired a single data bit,
* ``detected-parity``    — tag/TLB parity caught it; line purged and
                           refetched (transparent recovery),
* ``detected-mcheck``    — uncorrectable: banked in the mcerr CSRs and
                           delivered as a machine-check trap,
* ``detected-lockstep``  — the golden shadow emulator diffed state,
* ``detected-crash``     — a structured EmulatorError/WatchdogExpired
                           (e.g. a PC flip fetching garbage),
* ``masked``             — applied but provably harmless (checksum ok),
* ``vanished``           — never latched (empty array / line evicted
                           clean — discarded faults cannot corrupt),
* ``silent``             — checksum wrong and nothing flagged it: the
                           number this whole subsystem exists to drive
                           to zero.

A control arm runs the same architectural faults *without* the lockstep
checker to show what the unprotected emulator would have reported.
Everything is seeded: rerunning a campaign reproduces every fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.csr import MCERR_SOURCES
from ..isa.instructions import InstrClass
from ..mem.hierarchy import MemoryHierarchy
from ..ras.injector import (
    ARCH_TARGETS,
    ARRAY_TARGETS,
    FaultInjector,
    FaultRecord,
)
from ..ras.lockstep import LockstepChecker
from ..sim.emulator import Emulator, EmulatorError, MachineCheckError
from ..workloads import coremark_suite
from .parallel import run_cells
from .report import ExperimentResult

DETECTED = ("detected-parity", "detected-mcheck", "detected-lockstep",
            "detected-crash", "detected-exit")
SAFE = ("corrected", "masked", "vanished") + DETECTED

_WRITE_CLASSES = (InstrClass.STORE, InstrClass.VSTORE, InstrClass.AMO)


@dataclass
class Injection:
    """One seeded fault and its classified outcome."""

    seed: int
    target: str
    outcome: str
    detail: str = ""
    divergence_pc: int | None = None


@dataclass
class CampaignResult:
    """Aggregate of one injection sweep."""

    workload: str
    injections: list[Injection] = field(default_factory=list)
    control: list[Injection] = field(default_factory=list)
    unhandled: int = 0          # raw Python exceptions (must stay 0)

    def count(self, outcome: str, control: bool = False) -> int:
        pool = self.control if control else self.injections
        return sum(1 for i in pool if i.outcome == outcome)

    @property
    def total(self) -> int:
        return len(self.injections)

    @property
    def coverage(self) -> float:
        """Fraction of injections that were corrected or detected."""
        if not self.injections:
            return 1.0
        safe = sum(1 for i in self.injections if i.outcome in SAFE)
        return safe / len(self.injections)

    @property
    def silent(self) -> int:
        return self.count("silent")


def _golden(workload) -> tuple[int, int, int]:
    """(instret, checksum, result_addr) of a clean reference run."""
    program = workload.program()
    emulator = Emulator(program)
    emulator.run()
    addr = program.symbol(workload.result_symbol)
    return (emulator.state.instret,
            emulator.state.memory.load_int(addr, 8), addr)


def _checksum(emulator: Emulator, addr: int) -> int:
    return emulator.state.memory.load_int(addr, 8)


def _arch_injection(workload, seed: int, window: int, golden_sum: int,
                    result_addr: int, lockstep: bool) -> Injection:
    """One architectural (register/PC) fault, with or without lockstep."""
    program = workload.program()
    injector = FaultInjector(seed=seed)
    plan = injector.plan_random(1, window, targets=ARCH_TARGETS)[0]
    primary = Emulator(program, fault_injector=injector,
                       instruction_limit=window * 4 + 10_000)
    target = plan.target.value
    if lockstep:
        checker = LockstepChecker(program, primary=primary)
        result = checker.run()
        if result.divergence is not None:
            reason = result.divergence.reason
            outcome = ("detected-crash" if reason.startswith("primary-crash")
                       else "detected-lockstep")
            return Injection(seed, target, outcome, reason,
                             divergence_pc=result.divergence.pc)
        if primary.halted and _checksum(primary, result_addr) == golden_sum:
            return Injection(seed, target, "masked", "no state divergence")
        return Injection(seed, target, "silent", "lockstep missed it")
    # Control arm: no checker, only the program's own behaviour.
    try:
        code = primary.run()
    except EmulatorError as exc:
        return Injection(seed, target, "detected-crash", type(exc).__name__)
    if code != 0:
        return Injection(seed, target, "detected-exit", f"exit {code}")
    if _checksum(primary, result_addr) != golden_sum:
        return Injection(seed, target, "silent", "checksum mismatch")
    return Injection(seed, target, "masked", "clean exit, checksum ok")


def _array_injection(workload, seed: int, window: int, golden_sum: int,
                     result_addr: int,
                     double_bit_rate: float) -> Injection:
    """One cache/TLB array fault, driven through the memory hierarchy."""
    program = workload.program()
    injector = FaultInjector(seed=seed)
    plan = injector.plan_random(1, window, targets=ARRAY_TARGETS,
                                double_bit_rate=double_bit_rate)[0]
    hierarchy = MemoryHierarchy()
    emulator = Emulator(program, fault_injector=injector,
                        instruction_limit=window * 4 + 10_000)
    injector.attach_cache(hierarchy.l1d)
    injector.attach_cache(hierarchy.l1i)
    injector.attach_cache(hierarchy.l2)
    injector.attach_tlb(hierarchy.tlb)
    hierarchy.on_uncorrectable = (
        lambda addr, src: emulator.post_machine_check(
            addr, MCERR_SOURCES.get(src, 0)))
    hierarchy.on_corrected = (
        lambda addr, src: emulator.report_corrected(addr))
    target = plan.target.value
    mcheck: MachineCheckError | None = None
    try:
        for dyn in emulator.trace():
            cycle = dyn.seq
            hierarchy.access_inst(dyn.pc, cycle)
            if dyn.mem_addr:
                hierarchy.access_data(
                    dyn.mem_addr, cycle,
                    is_write=dyn.inst.iclass in _WRITE_CLASSES,
                    size=dyn.mem_size or 8)
    except MachineCheckError as exc:
        mcheck = exc
    except EmulatorError as exc:
        return Injection(seed, target, "detected-crash", type(exc).__name__)
    hierarchy.scrub()           # resolve latent faults still resident
    summary = hierarchy.ras_summary()
    if mcheck is not None:
        return Injection(seed, target, "detected-mcheck",
                         f"machine check addr={mcheck.addr:#x}")
    if summary["ecc_uncorrectable"]:
        return Injection(seed, target, "detected-mcheck",
                         "uncorrectable found by scrub")
    if summary["parity_errors"]:
        return Injection(seed, target, "detected-parity",
                         f"{summary['parity_errors']} parity purges")
    if summary["ecc_corrected"]:
        return Injection(seed, target, "corrected",
                         f"{summary['ecc_corrected']} SEC-DED corrections")
    if emulator.halted and _checksum(emulator, result_addr) != golden_sum:
        return Injection(seed, target, "silent", "checksum mismatch")
    if injector.applied_count == 0:
        return Injection(seed, target, "vanished", "nothing resident")
    return Injection(seed, target, "vanished", "fault evicted clean")


def _campaign_cell(kind: str, workload_name: str, inj_seed: int,
                   window: int, golden_sum: int, result_addr: int,
                   double_bit_rate: float) -> Injection:
    """One seeded injection as a picklable parallel cell.

    Exceptions are contained here (not in the executor) because an
    unhandled raw exception is itself a campaign outcome to count.
    """
    workload = next(w for w in coremark_suite() if w.name == workload_name)
    try:
        if kind == "arch":
            return _arch_injection(workload, inj_seed, window, golden_sum,
                                   result_addr, lockstep=True)
        if kind == "array":
            return _array_injection(workload, inj_seed, window, golden_sum,
                                    result_addr, double_bit_rate)
        return _arch_injection(workload, inj_seed, window, golden_sum,
                               result_addr, lockstep=False)
    except Exception as exc:  # the campaign's own acceptance metric
        return Injection(inj_seed, "?", "unhandled",
                         f"{type(exc).__name__}: {exc}")


def run_campaign(n: int = 100, seed: int = 2020,
                 workload_name: str = "coremark-list",
                 double_bit_rate: float = 0.15,
                 control_n: int | None = None,
                 jobs: int | None = None) -> CampaignResult:
    """Sweep *n* seeded injections; returns the classified results.

    Each flip is an independent seeded run, so the sweep fans out over
    the shared :func:`repro.harness.parallel.run_cells` executor;
    ``jobs=None`` keeps the historical serial order bit-for-bit.
    """
    workload = next(w for w in coremark_suite() if w.name == workload_name)
    window, golden_sum, result_addr = _golden(workload)
    result = CampaignResult(workload=workload.name)
    # Alternate arch and array faults so both halves get even coverage.
    cells = [("arch" if i % 2 == 0 else "array", workload.name,
              seed * 1_000_003 + i, window, golden_sum, result_addr,
              double_bit_rate)
             for i in range(n)]
    # Control arm: the same architectural faults without the checker.
    control_n = control_n if control_n is not None else max(4, n // 10)
    cells += [("control", workload.name, seed * 1_000_003 + i * 2,
               window, golden_sum, result_addr, double_bit_rate)
              for i in range(control_n)]
    outcomes = run_cells(_campaign_cell, cells, jobs)
    result.injections = outcomes[:n]
    result.control = outcomes[n:]
    result.unhandled = sum(1 for inj in outcomes
                           if inj.outcome == "unhandled")
    return result


def run_ras(quick: bool = True, jobs: int | None = None) -> ExperimentResult:
    """Harness entry point: the RAS injection-coverage experiment."""
    n = 40 if quick else 120
    campaign = run_campaign(n=n, jobs=jobs)
    result = ExperimentResult(
        experiment="ras",
        title=f"fault-injection coverage, {n} seeded flips "
              f"on {campaign.workload}")
    result.add("injections", None, campaign.total)
    for outcome in ("corrected",) + DETECTED + ("masked", "vanished"):
        count = campaign.count(outcome)
        if count:
            result.add(outcome, None, count)
    result.add("silent corruption", 0, campaign.silent)
    result.add("unhandled exceptions", 0, campaign.unhandled)
    result.add("corrected-or-detected", ">=95%",
               f"{100 * campaign.coverage:.1f}%")
    control_silent = campaign.count("silent", control=True)
    result.add("control-arm silent (no lockstep)", None,
               f"{control_silent}/{len(campaign.control)}")
    result.notes.append(
        "control arm reruns the architectural faults without the golden "
        "checker: silent corruptions there are what lockstep eliminates")
    result.raw = {
        "coverage": campaign.coverage,
        "silent": campaign.silent,
        "unhandled": campaign.unhandled,
        "outcomes": {o: campaign.count(o) for o in SAFE + ("silent",)},
    }
    result.metric("injections", campaign.total)
    result.metric("coverage", campaign.coverage)
    result.metric("silent", campaign.silent)
    result.metric("unhandled", campaign.unhandled)
    for outcome in SAFE + ("silent",):
        result.metric(f"outcomes.{outcome}", campaign.count(outcome))
    result.metric("control.silent", control_silent)
    result.metric("control.total", len(campaign.control))
    return result
