"""Tiered-execution benchmark (``python -m repro bench --tier 3``).

Times the functional emulator across all three execution tiers — the
precise interpreter (tier 1), the block-translation cache (tier 2) and
the specializing translator (tier 3) — on the CoreMark and
dhrystone-like kernels, and writes the numbers to ``BENCH_tier3.json``.
Tier 3 is timed twice per kernel: **cold**, against an empty on-disk
code cache (so the run pays Python codegen + ``compile()``), and
**warm**, re-using the cache the cold run just persisted (translation
time collapses to a disk ``marshal.load`` + link check).

The committed JSON doubles as the CI regression baseline: the bench CI
job re-runs ``bench --tier 3 --quick`` and fails when warm tier-3
CoreMark MIPS or the tier-3/tier-2 speedup drops more than the
tolerance (default 30%) below the checked-in numbers.  The nightly lane
additionally asserts the warm-start invariant directly: a second
invocation compiles zero blocks.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time

from ..sim.emulator import Emulator
from ..workloads import all_workloads, coremark_suite
from .report import geomean

#: JSON schema version of BENCH_tier3.json
SCHEMA = 1
DEFAULT_TOLERANCE = 0.30


def _workloads(quick: bool):
    names = [w.name for w in coremark_suite()] + ["dhrystone-like"]
    if not quick:
        names += ["specint-like", "nbench-numsort", "nbench-idea",
                  "eembc-aifirf", "eembc-idctrn"]
    by_name = {w.name: w for w in all_workloads()}
    return [by_name[name] for name in names]


def _time_tier(workload, tier: int, repeat: int,
               cache_dir: str | None = None) -> tuple[int, float, dict]:
    """(retired insts, best-of-*repeat* seconds, last counters)."""
    best = float("inf")
    insts = 0
    counters: dict = {}
    for _ in range(repeat):
        emulator = Emulator(workload.program(), code_cache_dir=cache_dir)
        start = time.perf_counter()
        emulator.run(tier=tier)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        insts = emulator.state.instret
        counters = emulator.counters()
    return insts, best, counters


def bench_workload(workload, repeat: int, cache_dir: str) -> dict:
    """Tier-2 vs tier-3 (cold and warm) numbers for one kernel.

    ``cache_dir`` must start empty for the workload: the first tier-3
    run is the cold measurement (repeat=1 by definition — it populates
    the cache), the following runs are the warm best-of-*repeat*.
    """
    insts, tier2_s, _ = _time_tier(workload, tier=2, repeat=repeat)
    _, cold_s, cold = _time_tier(workload, tier=3, repeat=1,
                                 cache_dir=cache_dir)
    _, warm_s, warm = _time_tier(workload, tier=3, repeat=repeat,
                                 cache_dir=cache_dir)
    return {
        "insts": insts,
        "tier2_s": round(tier2_s, 6),
        "tier3_cold_s": round(cold_s, 6),
        "tier3_warm_s": round(warm_s, 6),
        "tier2_mips": round(insts / tier2_s / 1e6, 4),
        "tier3_mips": round(insts / warm_s / 1e6, 4),
        "speedup_vs_tier2": round(tier2_s / warm_s, 3),
        "blocks_compiled_cold": cold.get("codegen_blocks_compiled", 0),
        "compile_s_cold": cold.get("codegen_compile_s", 0.0),
        "blocks_compiled_warm": warm.get("codegen_blocks_compiled", 0),
        "compile_s_warm": warm.get("codegen_compile_s", 0.0),
        "disk_hits_warm": warm.get("codegen_disk_hits", 0),
    }


def run_bench(quick: bool = False, repeat: int = 3) -> dict:
    """Benchmark every kernel; returns the BENCH_tier3.json payload."""
    workloads = _workloads(quick)
    cache_dir = tempfile.mkdtemp(prefix="repro-tierbench-")
    try:
        results = {w.name: bench_workload(w, repeat=repeat,
                                          cache_dir=cache_dir)
                   for w in workloads}
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    coremark = [r for name, r in results.items()
                if name.startswith("coremark")]
    all_r = list(results.values())
    payload = {
        "schema": SCHEMA,
        "bench": "tier3",
        "quick": quick,
        "repeat": repeat,
        "workloads": results,
        "summary": {
            "geomean_speedup_vs_tier2": round(
                geomean([r["speedup_vs_tier2"] for r in all_r]), 3),
            "coremark_tier2_mips": round(
                geomean([r["tier2_mips"] for r in coremark]), 4),
            "coremark_tier3_mips": round(
                geomean([r["tier3_mips"] for r in coremark]), 4),
            "coremark_speedup_vs_tier2": round(
                geomean([r["speedup_vs_tier2"] for r in coremark]), 3),
            "cold_compile_s": round(
                sum(r["compile_s_cold"] for r in all_r), 6),
            "warm_compile_s": round(
                sum(r["compile_s_warm"] for r in all_r), 6),
            "warm_blocks_compiled": sum(
                r["blocks_compiled_warm"] for r in all_r),
        },
    }
    return payload


def check_regression(payload: dict, baseline: dict,
                     tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Compare a fresh tier bench against the committed baseline.

    Returns human-readable failure strings (empty = no regression).
    Gates warm tier-3 CoreMark MIPS and the tier-3/tier-2 speedup —
    both ratios, so absolute host-speed differences pass.  The
    warm-start invariant (zero blocks compiled on a warm cache) is
    absolute: any recompilation is a bug, not noise.
    """
    failures = []
    base_summary = baseline.get("summary", {})
    for key in ("coremark_tier3_mips", "coremark_speedup_vs_tier2"):
        base = base_summary.get(key)
        if not base:
            continue
        current = payload["summary"][key]
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{key} regressed: {current} < {floor:.4f} "
                f"(baseline {base}, tolerance {tolerance:.0%})")
    warm_compiled = payload["summary"].get("warm_blocks_compiled", 0)
    if warm_compiled:
        failures.append(
            f"warm-start violated: {warm_compiled} blocks recompiled "
            f"with a populated disk cache (expected 0)")
    return failures


def render(payload: dict) -> str:
    """Terminal table for the tier bench payload."""
    lines = [f"{'workload':18s}{'insts':>9}{'tier2':>9}{'t3 cold':>9}"
             f"{'t3 warm':>9}{'speedup':>9}{'blocks':>8}",
             f"{'':18s}{'':>9}{'MIPS':>9}{'MIPS':>9}{'MIPS':>9}"
             f"{'vs t2':>9}{'':>8}"]
    for name, r in payload["workloads"].items():
        cold_mips = r["insts"] / r["tier3_cold_s"] / 1e6
        lines.append(
            f"{name:18s}{r['insts']:>9}{r['tier2_mips']:>9.2f}"
            f"{cold_mips:>9.2f}{r['tier3_mips']:>9.2f}"
            f"{r['speedup_vs_tier2']:>8.2f}x"
            f"{r['blocks_compiled_cold']:>8}")
    s = payload["summary"]
    lines.append(
        f"{'geomean':18s}{'':>9}{s['coremark_tier2_mips']:>9.2f}"
        f"{'':>9}{s['coremark_tier3_mips']:>9.2f}"
        f"{s['coremark_speedup_vs_tier2']:>8.2f}x{'':>8}")
    lines.append(
        f"(coremark geomeans; all-kernel geomean speedup "
        f"{s['geomean_speedup_vs_tier2']:.2f}x; cold translation "
        f"{s['cold_compile_s']:.3f}s, warm {s['warm_compile_s']:.3f}s, "
        f"{s['warm_blocks_compiled']} blocks recompiled warm)")
    return "\n".join(lines)


def save(payload: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


__all__ = ["run_bench", "bench_workload", "check_regression", "render",
           "save", "load", "DEFAULT_TOLERANCE", "SCHEMA"]
