"""CLI: ``python -m repro.harness [experiment ...] [--full]``."""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*EXPERIMENTS, []],
                        help="experiments to run (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="full-size workloads (slower, closer shapes)")
    args = parser.parse_args(argv)
    names = args.experiments or list(EXPERIMENTS)
    for name in names:
        start = time.time()
        result = EXPERIMENTS[name](quick=not args.full)
        print(result.render())
        print(f"[{name} took {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
