"""CLI: ``python -m repro.harness [experiment ...] [--full] [--json]``."""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time

from . import EXPERIMENTS


def _run_one(fn, quick: bool, jobs: int | None):
    """Invoke one experiment, passing ``jobs`` only where supported."""
    kwargs = {"quick": quick}
    if jobs is not None and "jobs" in inspect.signature(fn).parameters:
        kwargs["jobs"] = jobs
    return fn(**kwargs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*EXPERIMENTS, []],
                        help="experiments to run (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="full-size workloads (slower, closer shapes)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="fan independent (core, workload) cells out "
                             "over N processes (default: serial)")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON array of results (schema-stable "
                             "metric keys from the repro.obs registry)")
    args = parser.parse_args(argv)
    names = args.experiments or list(EXPERIMENTS)
    results = []
    for name in names:
        start = time.time()
        result = _run_one(EXPERIMENTS[name], quick=not args.full,
                          jobs=args.jobs)
        results.append(result)
        if not args.json:
            print(result.render())
            print(f"[{name} took {time.time() - start:.1f}s]\n")
    if args.json:
        print(json.dumps([r.to_json_dict() for r in results], indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
