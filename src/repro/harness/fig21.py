"""Fig. 21: prefetch impact on STREAM (the memory-subsystem ablation).

The paper's five scenarios, all with memory latency pinned to ~200 CPU
cycles ("the CPU issues a read request and obtains the data from the
bus after 200 CPU cycles"):

  a) all prefetches off                                   -> 1.0x
  b) L1 prefetch on, small distance                       -> 3.8x
  c) L1 + L2 + TLB prefetch on, small distance            -> 4.9x
  d) L1 + L2 + TLB prefetch on, large distance            -> 5.4x (max)
  e) L1 + L2 on, TLB prefetch off, large distance         -> d - ~2.4%

Performance is 1 / cycles of the STREAM suite, normalized to scenario a.
"""

from __future__ import annotations

from dataclasses import replace

from ..mem.dram import DramConfig
from ..mem.hierarchy import MemHierConfig
from ..mem.prefetch import PrefetchConfig
from ..workloads.stream import stream_suite
from .parallel import run_cells
from .report import ExperimentResult
from .runner import run_on_core
from ..uarch.presets import xt910

PAPER = {"a": 1.0, "b": 3.8, "c": 4.9, "d": 5.4, "e": 5.4 * (1 - 0.024)}

SMALL_DISTANCE = 4
LARGE_DISTANCE = 20


def _scenario_mem(scenario: str) -> MemHierConfig:
    """Memory-hierarchy config for one Fig. 21 scenario."""
    off = PrefetchConfig.disabled()
    small_l1 = PrefetchConfig(distance=SMALL_DISTANCE, max_depth=32)
    large_l1 = PrefetchConfig(distance=LARGE_DISTANCE, max_depth=32)
    small_l2 = PrefetchConfig(distance=SMALL_DISTANCE, max_depth=64)
    large_l2 = PrefetchConfig(distance=LARGE_DISTANCE * 2, max_depth=64)
    table = {
        # (l1, l2, tlb_prefetch)
        "a": (off, off, False),
        "b": (small_l1, off, False),
        "c": (small_l1, small_l2, True),
        "d": (large_l1, large_l2, True),
        "e": (large_l1, large_l2, False),
    }
    l1_pf, l2_pf, tlb_pf = table[scenario]
    return MemHierConfig(
        l2_size=256 << 10,               # arrays overflow the L2
        dram=DramConfig(latency=200),    # the paper's testbed latency
        l1_prefetch=l1_pf, l2_prefetch=l2_pf,
        tlb_prefetch=tlb_pf, model_tlb=True)


def run_scenario(scenario: str, elems: int = 24576,
                 kernels: tuple[str, ...] = ("copy", "triad")) -> int:
    """Total cycles for the STREAM kernels under one scenario."""
    config = replace(xt910(), mem=_scenario_mem(scenario))
    total = 0
    for workload in stream_suite(elems=elems):
        if workload.name.split("-", 1)[1] not in kernels:
            continue
        result = run_on_core(workload.program(), config)
        total += result.cycles
    return total


def run_fig21(quick: bool = False, elems: int | None = None,
              jobs: int | None = None) -> ExperimentResult:
    elems = elems if elems is not None else (16384 if quick else 24576)
    kernels = ("triad",) if quick else ("copy", "triad")
    result = ExperimentResult(
        experiment="fig21",
        title="prefetch ablation on STREAM (200-cycle DRAM)")
    cells = [(s, elems, kernels) for s in "abcde"]
    totals = run_cells(run_scenario, cells, jobs)
    cycles = dict(zip("abcde", totals))
    base = cycles["a"]
    for scenario in "abcde":
        speedup = base / cycles[scenario]
        result.add(f"scenario {scenario}", round(PAPER[scenario], 2),
                   round(speedup, 2), "x vs a",
                   note=f"{cycles[scenario]} cycles")
        result.metric(f"cycles.{scenario}", cycles[scenario])
        result.metric(f"speedup.{scenario}", speedup)
    drop = (cycles["e"] - cycles["d"]) / cycles["d"] * 100 \
        if cycles["d"] else 0.0
    result.add("e vs d slowdown", 2.4, round(drop, 2), "%",
               note="cost of disabling TLB prefetch")
    result.raw = {"cycles": cycles}
    result.metric("e_vs_d_slowdown_pct", drop)
    return result
