"""Fig. 18: EEMBC performance normalized to Cortex-A73.

The paper plots per-kernel EEMBC scores normalized to the A73 and
concludes XT-910 is broadly on par (per-kernel ratios scattered around
1.0).  We run the EEMBC-like suite on both presets and report the
normalized-per-MHz ratio per kernel plus the geometric mean.
"""

from __future__ import annotations

from ..workloads.eembc import eembc_suite
from .report import ExperimentResult, geomean
from .runner import run_on_core


def run_fig18(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig18",
        title="EEMBC-like kernels, XT-910 normalized to Cortex-A73")
    ratios = []
    for workload in eembc_suite():
        xt = run_on_core(workload.program(), "xt910")
        a73 = run_on_core(workload.program(), "cortex-a73")
        ratio = xt.ipc / a73.ipc
        ratios.append(ratio)
        result.add(workload.name, None, round(ratio, 3), "x A73",
                   note=f"IPC {xt.ipc:.2f} vs {a73.ipc:.2f}")
    result.add("geometric mean", 1.0, round(geomean(ratios), 3), "x A73",
               note="paper: 'on par with the ARM Cortex-A73'")
    result.raw = {"ratios": ratios}
    return result
