"""Fig. 18: EEMBC performance normalized to Cortex-A73.

The paper plots per-kernel EEMBC scores normalized to the A73 and
concludes XT-910 is broadly on par (per-kernel ratios scattered around
1.0).  We run the EEMBC-like suite on both presets and report the
normalized-per-MHz ratio per kernel plus the geometric mean.
"""

from __future__ import annotations

from ..workloads.eembc import eembc_suite
from .parallel import run_cells
from .report import ExperimentResult, geomean
from .runner import run_on_core


def _eembc_cell(workload_name: str, core: str) -> float:
    """IPC of one EEMBC kernel on one core (picklable cell)."""
    workload = next(w for w in eembc_suite() if w.name == workload_name)
    return run_on_core(workload.program(), core).ipc


def run_fig18(quick: bool = False,
              jobs: int | None = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig18",
        title="EEMBC-like kernels, XT-910 normalized to Cortex-A73")
    names = [w.name for w in eembc_suite()]
    cells = [(name, core) for name in names
             for core in ("xt910", "cortex-a73")]
    ipcs = run_cells(_eembc_cell, cells, jobs)
    ratios = []
    for i, name in enumerate(names):
        xt_ipc, a73_ipc = ipcs[2 * i], ipcs[2 * i + 1]
        ratio = xt_ipc / a73_ipc
        ratios.append(ratio)
        result.add(name, None, round(ratio, 3), "x A73",
                   note=f"IPC {xt_ipc:.2f} vs {a73_ipc:.2f}")
        result.metric(f"ratio.{name}", ratio)
    result.add("geometric mean", 1.0, round(geomean(ratios), 3), "x A73",
               note="paper: 'on par with the ARM Cortex-A73'")
    result.raw = {"ratios": ratios}
    result.metric("geomean", geomean(ratios))
    return result
