"""SPECint2006-class comparison (paper section X, text result).

"The performance of XT-910 is 6.11 SPECInt/GHz, which is 10% lower
than the 6.75 SPECInt/GHz delivered by Cortex-A73."

SPECInt/GHz is per-clock performance on a large-footprint workload, so
the model quantity is IPC on the SPECint-like kernel (which "factors in
core performance, cache size, cache miss, DDR latency").  As with
Fig. 17 we scale to the paper's axis with one constant (A73 pinned to
6.75) and reproduce the *ratio*.
"""

from __future__ import annotations

from ..workloads.specint import specint_workload
from .report import ExperimentResult
from .runner import run_on_core

PAPER_XT910 = 6.11
PAPER_A73 = 6.75


def run_spec(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="spec", title="SPECint-like large-footprint comparison")
    if quick:
        # The chase region must still overflow the 2 MB L2 (49152
        # line-sized nodes = 3 MiB).
        workload = specint_workload(chase_nodes=49152, scan_elems=32768,
                                    chase_steps=12000, hash_ops=4000)
    else:
        workload = specint_workload()
    xt = run_on_core(workload.program(), "xt910")
    a73 = run_on_core(workload.program(), "cortex-a73")
    scale = PAPER_A73 / a73.ipc
    result.add("cortex-a73", PAPER_A73, round(a73.ipc * scale, 2),
               "SPECInt/GHz", note=f"model IPC {a73.ipc:.3f} (anchor)")
    result.add("xt910", PAPER_XT910, round(xt.ipc * scale, 2),
               "SPECInt/GHz", note=f"model IPC {xt.ipc:.3f}")
    result.add("xt910 / a73", PAPER_XT910 / PAPER_A73,
               round(xt.ipc / a73.ipc, 3), "x",
               note="paper: '10% lower than Cortex-A73'")
    result.raw = {"xt_ipc": xt.ipc, "a73_ipc": a73.ipc}
    return result
